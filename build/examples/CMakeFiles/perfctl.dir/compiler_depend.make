# Empty compiler generated dependencies file for perfctl.
# This may be replaced when dependencies are built.
