# Empty dependencies file for perfctl.
# This may be replaced when dependencies are built.
