file(REMOVE_RECURSE
  "CMakeFiles/perfctl.dir/perfctl.cpp.o"
  "CMakeFiles/perfctl.dir/perfctl.cpp.o.d"
  "perfctl"
  "perfctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
