# Empty compiler generated dependencies file for fit_from_logs.
# This may be replaced when dependencies are built.
