file(REMOVE_RECURSE
  "CMakeFiles/fit_from_logs.dir/fit_from_logs.cpp.o"
  "CMakeFiles/fit_from_logs.dir/fit_from_logs.cpp.o.d"
  "fit_from_logs"
  "fit_from_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_from_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
