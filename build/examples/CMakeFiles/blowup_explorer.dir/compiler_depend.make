# Empty compiler generated dependencies file for blowup_explorer.
# This may be replaced when dependencies are built.
