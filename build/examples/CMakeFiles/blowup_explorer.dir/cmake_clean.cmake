file(REMOVE_RECURSE
  "CMakeFiles/blowup_explorer.dir/blowup_explorer.cpp.o"
  "CMakeFiles/blowup_explorer.dir/blowup_explorer.cpp.o.d"
  "blowup_explorer"
  "blowup_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blowup_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
