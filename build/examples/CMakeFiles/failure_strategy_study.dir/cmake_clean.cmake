file(REMOVE_RECURSE
  "CMakeFiles/failure_strategy_study.dir/failure_strategy_study.cpp.o"
  "CMakeFiles/failure_strategy_study.dir/failure_strategy_study.cpp.o.d"
  "failure_strategy_study"
  "failure_strategy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_strategy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
