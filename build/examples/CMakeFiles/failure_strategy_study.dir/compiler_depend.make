# Empty compiler generated dependencies file for failure_strategy_study.
# This may be replaced when dependencies are built.
