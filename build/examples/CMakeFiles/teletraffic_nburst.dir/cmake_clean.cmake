file(REMOVE_RECURSE
  "CMakeFiles/teletraffic_nburst.dir/teletraffic_nburst.cpp.o"
  "CMakeFiles/teletraffic_nburst.dir/teletraffic_nburst.cpp.o.d"
  "teletraffic_nburst"
  "teletraffic_nburst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teletraffic_nburst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
