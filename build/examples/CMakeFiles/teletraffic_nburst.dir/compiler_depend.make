# Empty compiler generated dependencies file for teletraffic_nburst.
# This may be replaced when dependencies are built.
