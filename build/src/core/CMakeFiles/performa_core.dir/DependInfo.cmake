
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blowup.cpp" "src/core/CMakeFiles/performa_core.dir/blowup.cpp.o" "gcc" "src/core/CMakeFiles/performa_core.dir/blowup.cpp.o.d"
  "/root/repo/src/core/cluster_model.cpp" "src/core/CMakeFiles/performa_core.dir/cluster_model.cpp.o" "gcc" "src/core/CMakeFiles/performa_core.dir/cluster_model.cpp.o.d"
  "/root/repo/src/core/completion_time.cpp" "src/core/CMakeFiles/performa_core.dir/completion_time.cpp.o" "gcc" "src/core/CMakeFiles/performa_core.dir/completion_time.cpp.o.d"
  "/root/repo/src/core/mgc.cpp" "src/core/CMakeFiles/performa_core.dir/mgc.cpp.o" "gcc" "src/core/CMakeFiles/performa_core.dir/mgc.cpp.o.d"
  "/root/repo/src/core/mm1.cpp" "src/core/CMakeFiles/performa_core.dir/mm1.cpp.o" "gcc" "src/core/CMakeFiles/performa_core.dir/mm1.cpp.o.d"
  "/root/repo/src/core/nburst.cpp" "src/core/CMakeFiles/performa_core.dir/nburst.cpp.o" "gcc" "src/core/CMakeFiles/performa_core.dir/nburst.cpp.o.d"
  "/root/repo/src/core/qos.cpp" "src/core/CMakeFiles/performa_core.dir/qos.cpp.o" "gcc" "src/core/CMakeFiles/performa_core.dir/qos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qbd/CMakeFiles/performa_qbd.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/performa_map.dir/DependInfo.cmake"
  "/root/repo/build/src/medist/CMakeFiles/performa_medist.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/performa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
