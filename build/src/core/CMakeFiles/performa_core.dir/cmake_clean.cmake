file(REMOVE_RECURSE
  "CMakeFiles/performa_core.dir/blowup.cpp.o"
  "CMakeFiles/performa_core.dir/blowup.cpp.o.d"
  "CMakeFiles/performa_core.dir/cluster_model.cpp.o"
  "CMakeFiles/performa_core.dir/cluster_model.cpp.o.d"
  "CMakeFiles/performa_core.dir/completion_time.cpp.o"
  "CMakeFiles/performa_core.dir/completion_time.cpp.o.d"
  "CMakeFiles/performa_core.dir/mgc.cpp.o"
  "CMakeFiles/performa_core.dir/mgc.cpp.o.d"
  "CMakeFiles/performa_core.dir/mm1.cpp.o"
  "CMakeFiles/performa_core.dir/mm1.cpp.o.d"
  "CMakeFiles/performa_core.dir/nburst.cpp.o"
  "CMakeFiles/performa_core.dir/nburst.cpp.o.d"
  "CMakeFiles/performa_core.dir/qos.cpp.o"
  "CMakeFiles/performa_core.dir/qos.cpp.o.d"
  "libperforma_core.a"
  "libperforma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
