# Empty dependencies file for performa_core.
# This may be replaced when dependencies are built.
