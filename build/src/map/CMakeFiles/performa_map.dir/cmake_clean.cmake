file(REMOVE_RECURSE
  "CMakeFiles/performa_map.dir/kron_aggregate.cpp.o"
  "CMakeFiles/performa_map.dir/kron_aggregate.cpp.o.d"
  "CMakeFiles/performa_map.dir/lumped_aggregate.cpp.o"
  "CMakeFiles/performa_map.dir/lumped_aggregate.cpp.o.d"
  "CMakeFiles/performa_map.dir/map_process.cpp.o"
  "CMakeFiles/performa_map.dir/map_process.cpp.o.d"
  "CMakeFiles/performa_map.dir/mmpp.cpp.o"
  "CMakeFiles/performa_map.dir/mmpp.cpp.o.d"
  "CMakeFiles/performa_map.dir/server_model.cpp.o"
  "CMakeFiles/performa_map.dir/server_model.cpp.o.d"
  "CMakeFiles/performa_map.dir/server_task_model.cpp.o"
  "CMakeFiles/performa_map.dir/server_task_model.cpp.o.d"
  "libperforma_map.a"
  "libperforma_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
