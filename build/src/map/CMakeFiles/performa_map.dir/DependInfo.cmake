
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/map/kron_aggregate.cpp" "src/map/CMakeFiles/performa_map.dir/kron_aggregate.cpp.o" "gcc" "src/map/CMakeFiles/performa_map.dir/kron_aggregate.cpp.o.d"
  "/root/repo/src/map/lumped_aggregate.cpp" "src/map/CMakeFiles/performa_map.dir/lumped_aggregate.cpp.o" "gcc" "src/map/CMakeFiles/performa_map.dir/lumped_aggregate.cpp.o.d"
  "/root/repo/src/map/map_process.cpp" "src/map/CMakeFiles/performa_map.dir/map_process.cpp.o" "gcc" "src/map/CMakeFiles/performa_map.dir/map_process.cpp.o.d"
  "/root/repo/src/map/mmpp.cpp" "src/map/CMakeFiles/performa_map.dir/mmpp.cpp.o" "gcc" "src/map/CMakeFiles/performa_map.dir/mmpp.cpp.o.d"
  "/root/repo/src/map/server_model.cpp" "src/map/CMakeFiles/performa_map.dir/server_model.cpp.o" "gcc" "src/map/CMakeFiles/performa_map.dir/server_model.cpp.o.d"
  "/root/repo/src/map/server_task_model.cpp" "src/map/CMakeFiles/performa_map.dir/server_task_model.cpp.o" "gcc" "src/map/CMakeFiles/performa_map.dir/server_task_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/medist/CMakeFiles/performa_medist.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/performa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
