file(REMOVE_RECURSE
  "libperforma_map.a"
)
