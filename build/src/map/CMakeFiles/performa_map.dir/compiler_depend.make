# Empty compiler generated dependencies file for performa_map.
# This may be replaced when dependencies are built.
