file(REMOVE_RECURSE
  "libperforma_medist.a"
)
