# Empty dependencies file for performa_medist.
# This may be replaced when dependencies are built.
