file(REMOVE_RECURSE
  "CMakeFiles/performa_medist.dir/empirical.cpp.o"
  "CMakeFiles/performa_medist.dir/empirical.cpp.o.d"
  "CMakeFiles/performa_medist.dir/me_dist.cpp.o"
  "CMakeFiles/performa_medist.dir/me_dist.cpp.o.d"
  "CMakeFiles/performa_medist.dir/moment_fit.cpp.o"
  "CMakeFiles/performa_medist.dir/moment_fit.cpp.o.d"
  "CMakeFiles/performa_medist.dir/sampler.cpp.o"
  "CMakeFiles/performa_medist.dir/sampler.cpp.o.d"
  "CMakeFiles/performa_medist.dir/tpt.cpp.o"
  "CMakeFiles/performa_medist.dir/tpt.cpp.o.d"
  "libperforma_medist.a"
  "libperforma_medist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_medist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
