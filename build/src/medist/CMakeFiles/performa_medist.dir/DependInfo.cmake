
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/medist/empirical.cpp" "src/medist/CMakeFiles/performa_medist.dir/empirical.cpp.o" "gcc" "src/medist/CMakeFiles/performa_medist.dir/empirical.cpp.o.d"
  "/root/repo/src/medist/me_dist.cpp" "src/medist/CMakeFiles/performa_medist.dir/me_dist.cpp.o" "gcc" "src/medist/CMakeFiles/performa_medist.dir/me_dist.cpp.o.d"
  "/root/repo/src/medist/moment_fit.cpp" "src/medist/CMakeFiles/performa_medist.dir/moment_fit.cpp.o" "gcc" "src/medist/CMakeFiles/performa_medist.dir/moment_fit.cpp.o.d"
  "/root/repo/src/medist/sampler.cpp" "src/medist/CMakeFiles/performa_medist.dir/sampler.cpp.o" "gcc" "src/medist/CMakeFiles/performa_medist.dir/sampler.cpp.o.d"
  "/root/repo/src/medist/tpt.cpp" "src/medist/CMakeFiles/performa_medist.dir/tpt.cpp.o" "gcc" "src/medist/CMakeFiles/performa_medist.dir/tpt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/performa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
