file(REMOVE_RECURSE
  "CMakeFiles/performa_linalg.dir/ctmc.cpp.o"
  "CMakeFiles/performa_linalg.dir/ctmc.cpp.o.d"
  "CMakeFiles/performa_linalg.dir/expm.cpp.o"
  "CMakeFiles/performa_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/performa_linalg.dir/kron.cpp.o"
  "CMakeFiles/performa_linalg.dir/kron.cpp.o.d"
  "CMakeFiles/performa_linalg.dir/lu.cpp.o"
  "CMakeFiles/performa_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/performa_linalg.dir/matrix.cpp.o"
  "CMakeFiles/performa_linalg.dir/matrix.cpp.o.d"
  "libperforma_linalg.a"
  "libperforma_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
