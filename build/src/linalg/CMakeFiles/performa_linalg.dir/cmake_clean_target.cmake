file(REMOVE_RECURSE
  "libperforma_linalg.a"
)
