# Empty compiler generated dependencies file for performa_linalg.
# This may be replaced when dependencies are built.
