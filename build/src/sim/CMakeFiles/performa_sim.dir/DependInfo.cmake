
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster_sim.cpp" "src/sim/CMakeFiles/performa_sim.dir/cluster_sim.cpp.o" "gcc" "src/sim/CMakeFiles/performa_sim.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/sim/mmpp_queue_sim.cpp" "src/sim/CMakeFiles/performa_sim.dir/mmpp_queue_sim.cpp.o" "gcc" "src/sim/CMakeFiles/performa_sim.dir/mmpp_queue_sim.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/sim/CMakeFiles/performa_sim.dir/random.cpp.o" "gcc" "src/sim/CMakeFiles/performa_sim.dir/random.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/performa_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/performa_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/medist/CMakeFiles/performa_medist.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/performa_map.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/performa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
