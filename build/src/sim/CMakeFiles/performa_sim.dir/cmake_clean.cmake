file(REMOVE_RECURSE
  "CMakeFiles/performa_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/performa_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/performa_sim.dir/mmpp_queue_sim.cpp.o"
  "CMakeFiles/performa_sim.dir/mmpp_queue_sim.cpp.o.d"
  "CMakeFiles/performa_sim.dir/random.cpp.o"
  "CMakeFiles/performa_sim.dir/random.cpp.o.d"
  "CMakeFiles/performa_sim.dir/stats.cpp.o"
  "CMakeFiles/performa_sim.dir/stats.cpp.o.d"
  "libperforma_sim.a"
  "libperforma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
