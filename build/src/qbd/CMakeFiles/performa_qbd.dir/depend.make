# Empty dependencies file for performa_qbd.
# This may be replaced when dependencies are built.
