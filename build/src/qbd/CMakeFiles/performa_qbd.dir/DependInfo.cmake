
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qbd/finite.cpp" "src/qbd/CMakeFiles/performa_qbd.dir/finite.cpp.o" "gcc" "src/qbd/CMakeFiles/performa_qbd.dir/finite.cpp.o.d"
  "/root/repo/src/qbd/level_dependent.cpp" "src/qbd/CMakeFiles/performa_qbd.dir/level_dependent.cpp.o" "gcc" "src/qbd/CMakeFiles/performa_qbd.dir/level_dependent.cpp.o.d"
  "/root/repo/src/qbd/qbd.cpp" "src/qbd/CMakeFiles/performa_qbd.dir/qbd.cpp.o" "gcc" "src/qbd/CMakeFiles/performa_qbd.dir/qbd.cpp.o.d"
  "/root/repo/src/qbd/rsolver.cpp" "src/qbd/CMakeFiles/performa_qbd.dir/rsolver.cpp.o" "gcc" "src/qbd/CMakeFiles/performa_qbd.dir/rsolver.cpp.o.d"
  "/root/repo/src/qbd/solution.cpp" "src/qbd/CMakeFiles/performa_qbd.dir/solution.cpp.o" "gcc" "src/qbd/CMakeFiles/performa_qbd.dir/solution.cpp.o.d"
  "/root/repo/src/qbd/transient.cpp" "src/qbd/CMakeFiles/performa_qbd.dir/transient.cpp.o" "gcc" "src/qbd/CMakeFiles/performa_qbd.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/map/CMakeFiles/performa_map.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/performa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/medist/CMakeFiles/performa_medist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
