file(REMOVE_RECURSE
  "libperforma_qbd.a"
)
