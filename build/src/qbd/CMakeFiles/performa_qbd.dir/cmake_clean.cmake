file(REMOVE_RECURSE
  "CMakeFiles/performa_qbd.dir/finite.cpp.o"
  "CMakeFiles/performa_qbd.dir/finite.cpp.o.d"
  "CMakeFiles/performa_qbd.dir/level_dependent.cpp.o"
  "CMakeFiles/performa_qbd.dir/level_dependent.cpp.o.d"
  "CMakeFiles/performa_qbd.dir/qbd.cpp.o"
  "CMakeFiles/performa_qbd.dir/qbd.cpp.o.d"
  "CMakeFiles/performa_qbd.dir/rsolver.cpp.o"
  "CMakeFiles/performa_qbd.dir/rsolver.cpp.o.d"
  "CMakeFiles/performa_qbd.dir/solution.cpp.o"
  "CMakeFiles/performa_qbd.dir/solution.cpp.o.d"
  "CMakeFiles/performa_qbd.dir/transient.cpp.o"
  "CMakeFiles/performa_qbd.dir/transient.cpp.o.d"
  "libperforma_qbd.a"
  "libperforma_qbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performa_qbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
