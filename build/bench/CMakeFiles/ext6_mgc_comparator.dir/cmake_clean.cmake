file(REMOVE_RECURSE
  "CMakeFiles/ext6_mgc_comparator.dir/ext6_mgc_comparator.cpp.o"
  "CMakeFiles/ext6_mgc_comparator.dir/ext6_mgc_comparator.cpp.o.d"
  "ext6_mgc_comparator"
  "ext6_mgc_comparator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext6_mgc_comparator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
