# Empty compiler generated dependencies file for ext6_mgc_comparator.
# This may be replaced when dependencies are built.
