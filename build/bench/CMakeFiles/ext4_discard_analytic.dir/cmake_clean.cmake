file(REMOVE_RECURSE
  "CMakeFiles/ext4_discard_analytic.dir/ext4_discard_analytic.cpp.o"
  "CMakeFiles/ext4_discard_analytic.dir/ext4_discard_analytic.cpp.o.d"
  "ext4_discard_analytic"
  "ext4_discard_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext4_discard_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
