# Empty dependencies file for ext4_discard_analytic.
# This may be replaced when dependencies are built.
