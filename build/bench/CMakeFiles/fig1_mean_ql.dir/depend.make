# Empty dependencies file for fig1_mean_ql.
# This may be replaced when dependencies are built.
