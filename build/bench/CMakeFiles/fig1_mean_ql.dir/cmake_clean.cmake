file(REMOVE_RECURSE
  "CMakeFiles/fig1_mean_ql.dir/fig1_mean_ql.cpp.o"
  "CMakeFiles/fig1_mean_ql.dir/fig1_mean_ql.cpp.o.d"
  "fig1_mean_ql"
  "fig1_mean_ql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mean_ql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
