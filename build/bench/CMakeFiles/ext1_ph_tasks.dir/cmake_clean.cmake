file(REMOVE_RECURSE
  "CMakeFiles/ext1_ph_tasks.dir/ext1_ph_tasks.cpp.o"
  "CMakeFiles/ext1_ph_tasks.dir/ext1_ph_tasks.cpp.o.d"
  "ext1_ph_tasks"
  "ext1_ph_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_ph_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
