# Empty dependencies file for ext1_ph_tasks.
# This may be replaced when dependencies are built.
