file(REMOVE_RECURSE
  "CMakeFiles/ext7_transient_recovery.dir/ext7_transient_recovery.cpp.o"
  "CMakeFiles/ext7_transient_recovery.dir/ext7_transient_recovery.cpp.o.d"
  "ext7_transient_recovery"
  "ext7_transient_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext7_transient_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
