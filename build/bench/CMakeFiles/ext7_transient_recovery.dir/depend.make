# Empty dependencies file for ext7_transient_recovery.
# This may be replaced when dependencies are built.
