# Empty dependencies file for ext8_heterogeneity.
# This may be replaced when dependencies are built.
