file(REMOVE_RECURSE
  "CMakeFiles/ext8_heterogeneity.dir/ext8_heterogeneity.cpp.o"
  "CMakeFiles/ext8_heterogeneity.dir/ext8_heterogeneity.cpp.o.d"
  "ext8_heterogeneity"
  "ext8_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext8_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
