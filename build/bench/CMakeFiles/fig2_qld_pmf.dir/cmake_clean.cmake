file(REMOVE_RECURSE
  "CMakeFiles/fig2_qld_pmf.dir/fig2_qld_pmf.cpp.o"
  "CMakeFiles/fig2_qld_pmf.dir/fig2_qld_pmf.cpp.o.d"
  "fig2_qld_pmf"
  "fig2_qld_pmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_qld_pmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
