# Empty dependencies file for fig2_qld_pmf.
# This may be replaced when dependencies are built.
