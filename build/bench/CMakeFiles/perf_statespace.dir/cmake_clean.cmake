file(REMOVE_RECURSE
  "CMakeFiles/perf_statespace.dir/perf_statespace.cpp.o"
  "CMakeFiles/perf_statespace.dir/perf_statespace.cpp.o.d"
  "perf_statespace"
  "perf_statespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
