# Empty dependencies file for perf_statespace.
# This may be replaced when dependencies are built.
