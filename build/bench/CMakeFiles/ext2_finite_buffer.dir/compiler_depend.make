# Empty compiler generated dependencies file for ext2_finite_buffer.
# This may be replaced when dependencies are built.
