file(REMOVE_RECURSE
  "CMakeFiles/ext2_finite_buffer.dir/ext2_finite_buffer.cpp.o"
  "CMakeFiles/ext2_finite_buffer.dir/ext2_finite_buffer.cpp.o.d"
  "ext2_finite_buffer"
  "ext2_finite_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_finite_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
