# Empty dependencies file for fig6_n5_tails.
# This may be replaced when dependencies are built.
