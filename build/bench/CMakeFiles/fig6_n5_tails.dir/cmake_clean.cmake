file(REMOVE_RECURSE
  "CMakeFiles/fig6_n5_tails.dir/fig6_n5_tails.cpp.o"
  "CMakeFiles/fig6_n5_tails.dir/fig6_n5_tails.cpp.o.d"
  "fig6_n5_tails"
  "fig6_n5_tails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_n5_tails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
