# Empty dependencies file for fig3_tail_prob.
# This may be replaced when dependencies are built.
