file(REMOVE_RECURSE
  "CMakeFiles/fig3_tail_prob.dir/fig3_tail_prob.cpp.o"
  "CMakeFiles/fig3_tail_prob.dir/fig3_tail_prob.cpp.o.d"
  "fig3_tail_prob"
  "fig3_tail_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tail_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
