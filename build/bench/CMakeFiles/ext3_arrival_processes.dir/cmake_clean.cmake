file(REMOVE_RECURSE
  "CMakeFiles/ext3_arrival_processes.dir/ext3_arrival_processes.cpp.o"
  "CMakeFiles/ext3_arrival_processes.dir/ext3_arrival_processes.cpp.o.d"
  "ext3_arrival_processes"
  "ext3_arrival_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext3_arrival_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
