# Empty compiler generated dependencies file for ext3_arrival_processes.
# This may be replaced when dependencies are built.
