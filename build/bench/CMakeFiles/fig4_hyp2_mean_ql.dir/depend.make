# Empty dependencies file for fig4_hyp2_mean_ql.
# This may be replaced when dependencies are built.
