file(REMOVE_RECURSE
  "CMakeFiles/fig4_hyp2_mean_ql.dir/fig4_hyp2_mean_ql.cpp.o"
  "CMakeFiles/fig4_hyp2_mean_ql.dir/fig4_hyp2_mean_ql.cpp.o.d"
  "fig4_hyp2_mean_ql"
  "fig4_hyp2_mean_ql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hyp2_mean_ql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
