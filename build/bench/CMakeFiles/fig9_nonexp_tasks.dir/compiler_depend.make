# Empty compiler generated dependencies file for fig9_nonexp_tasks.
# This may be replaced when dependencies are built.
