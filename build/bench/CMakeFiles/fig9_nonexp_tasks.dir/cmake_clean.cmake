file(REMOVE_RECURSE
  "CMakeFiles/fig9_nonexp_tasks.dir/fig9_nonexp_tasks.cpp.o"
  "CMakeFiles/fig9_nonexp_tasks.dir/fig9_nonexp_tasks.cpp.o.d"
  "fig9_nonexp_tasks"
  "fig9_nonexp_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_nonexp_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
