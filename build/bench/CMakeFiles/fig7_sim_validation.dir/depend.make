# Empty dependencies file for fig7_sim_validation.
# This may be replaced when dependencies are built.
