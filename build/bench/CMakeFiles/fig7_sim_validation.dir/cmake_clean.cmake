file(REMOVE_RECURSE
  "CMakeFiles/fig7_sim_validation.dir/fig7_sim_validation.cpp.o"
  "CMakeFiles/fig7_sim_validation.dir/fig7_sim_validation.cpp.o.d"
  "fig7_sim_validation"
  "fig7_sim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
