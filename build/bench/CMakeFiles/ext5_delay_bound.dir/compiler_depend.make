# Empty compiler generated dependencies file for ext5_delay_bound.
# This may be replaced when dependencies are built.
