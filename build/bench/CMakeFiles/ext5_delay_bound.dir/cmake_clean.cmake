file(REMOVE_RECURSE
  "CMakeFiles/ext5_delay_bound.dir/ext5_delay_bound.cpp.o"
  "CMakeFiles/ext5_delay_bound.dir/ext5_delay_bound.cpp.o.d"
  "ext5_delay_bound"
  "ext5_delay_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext5_delay_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
