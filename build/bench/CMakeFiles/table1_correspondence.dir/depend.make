# Empty dependencies file for table1_correspondence.
# This may be replaced when dependencies are built.
