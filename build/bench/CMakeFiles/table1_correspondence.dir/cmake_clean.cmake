file(REMOVE_RECURSE
  "CMakeFiles/table1_correspondence.dir/table1_correspondence.cpp.o"
  "CMakeFiles/table1_correspondence.dir/table1_correspondence.cpp.o.d"
  "table1_correspondence"
  "table1_correspondence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_correspondence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
