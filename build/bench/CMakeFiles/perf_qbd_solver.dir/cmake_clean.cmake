file(REMOVE_RECURSE
  "CMakeFiles/perf_qbd_solver.dir/perf_qbd_solver.cpp.o"
  "CMakeFiles/perf_qbd_solver.dir/perf_qbd_solver.cpp.o.d"
  "perf_qbd_solver"
  "perf_qbd_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_qbd_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
