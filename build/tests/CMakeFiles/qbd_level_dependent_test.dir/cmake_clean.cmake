file(REMOVE_RECURSE
  "CMakeFiles/qbd_level_dependent_test.dir/qbd_level_dependent_test.cpp.o"
  "CMakeFiles/qbd_level_dependent_test.dir/qbd_level_dependent_test.cpp.o.d"
  "qbd_level_dependent_test"
  "qbd_level_dependent_test.pdb"
  "qbd_level_dependent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_level_dependent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
