# Empty compiler generated dependencies file for qbd_level_dependent_test.
# This may be replaced when dependencies are built.
