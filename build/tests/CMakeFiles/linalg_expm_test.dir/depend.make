# Empty dependencies file for linalg_expm_test.
# This may be replaced when dependencies are built.
