file(REMOVE_RECURSE
  "CMakeFiles/linalg_expm_test.dir/linalg_expm_test.cpp.o"
  "CMakeFiles/linalg_expm_test.dir/linalg_expm_test.cpp.o.d"
  "linalg_expm_test"
  "linalg_expm_test.pdb"
  "linalg_expm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_expm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
