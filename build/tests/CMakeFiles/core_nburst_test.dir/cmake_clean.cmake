file(REMOVE_RECURSE
  "CMakeFiles/core_nburst_test.dir/core_nburst_test.cpp.o"
  "CMakeFiles/core_nburst_test.dir/core_nburst_test.cpp.o.d"
  "core_nburst_test"
  "core_nburst_test.pdb"
  "core_nburst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_nburst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
