# Empty compiler generated dependencies file for core_nburst_test.
# This may be replaced when dependencies are built.
