file(REMOVE_RECURSE
  "CMakeFiles/qbd_ph_tasks_test.dir/qbd_ph_tasks_test.cpp.o"
  "CMakeFiles/qbd_ph_tasks_test.dir/qbd_ph_tasks_test.cpp.o.d"
  "qbd_ph_tasks_test"
  "qbd_ph_tasks_test.pdb"
  "qbd_ph_tasks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_ph_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
