# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qbd_ph_tasks_test.
