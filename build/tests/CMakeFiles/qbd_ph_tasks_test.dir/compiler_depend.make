# Empty compiler generated dependencies file for qbd_ph_tasks_test.
# This may be replaced when dependencies are built.
