# Empty dependencies file for linalg_ctmc_test.
# This may be replaced when dependencies are built.
