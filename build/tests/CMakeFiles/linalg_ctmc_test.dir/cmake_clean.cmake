file(REMOVE_RECURSE
  "CMakeFiles/linalg_ctmc_test.dir/linalg_ctmc_test.cpp.o"
  "CMakeFiles/linalg_ctmc_test.dir/linalg_ctmc_test.cpp.o.d"
  "linalg_ctmc_test"
  "linalg_ctmc_test.pdb"
  "linalg_ctmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_ctmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
