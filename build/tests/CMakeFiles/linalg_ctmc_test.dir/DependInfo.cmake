
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg_ctmc_test.cpp" "tests/CMakeFiles/linalg_ctmc_test.dir/linalg_ctmc_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_ctmc_test.dir/linalg_ctmc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/performa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qbd/CMakeFiles/performa_qbd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/performa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/performa_map.dir/DependInfo.cmake"
  "/root/repo/build/src/medist/CMakeFiles/performa_medist.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/performa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
