file(REMOVE_RECURSE
  "CMakeFiles/medist_fit_test.dir/medist_fit_test.cpp.o"
  "CMakeFiles/medist_fit_test.dir/medist_fit_test.cpp.o.d"
  "medist_fit_test"
  "medist_fit_test.pdb"
  "medist_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medist_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
