# Empty dependencies file for medist_fit_test.
# This may be replaced when dependencies are built.
