# Empty compiler generated dependencies file for sim_mmpp_queue_test.
# This may be replaced when dependencies are built.
