file(REMOVE_RECURSE
  "CMakeFiles/core_blowup_test.dir/core_blowup_test.cpp.o"
  "CMakeFiles/core_blowup_test.dir/core_blowup_test.cpp.o.d"
  "core_blowup_test"
  "core_blowup_test.pdb"
  "core_blowup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_blowup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
