# Empty dependencies file for core_blowup_test.
# This may be replaced when dependencies are built.
