# Empty dependencies file for qbd_discard_test.
# This may be replaced when dependencies are built.
