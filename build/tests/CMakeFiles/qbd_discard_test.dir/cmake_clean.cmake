file(REMOVE_RECURSE
  "CMakeFiles/qbd_discard_test.dir/qbd_discard_test.cpp.o"
  "CMakeFiles/qbd_discard_test.dir/qbd_discard_test.cpp.o.d"
  "qbd_discard_test"
  "qbd_discard_test.pdb"
  "qbd_discard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_discard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
