# Empty compiler generated dependencies file for qbd_transient_test.
# This may be replaced when dependencies are built.
