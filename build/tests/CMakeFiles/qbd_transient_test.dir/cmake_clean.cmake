file(REMOVE_RECURSE
  "CMakeFiles/qbd_transient_test.dir/qbd_transient_test.cpp.o"
  "CMakeFiles/qbd_transient_test.dir/qbd_transient_test.cpp.o.d"
  "qbd_transient_test"
  "qbd_transient_test.pdb"
  "qbd_transient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
