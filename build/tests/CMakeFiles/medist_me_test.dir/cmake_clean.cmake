file(REMOVE_RECURSE
  "CMakeFiles/medist_me_test.dir/medist_me_test.cpp.o"
  "CMakeFiles/medist_me_test.dir/medist_me_test.cpp.o.d"
  "medist_me_test"
  "medist_me_test.pdb"
  "medist_me_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medist_me_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
