# Empty dependencies file for medist_me_test.
# This may be replaced when dependencies are built.
