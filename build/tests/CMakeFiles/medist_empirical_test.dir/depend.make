# Empty dependencies file for medist_empirical_test.
# This may be replaced when dependencies are built.
