file(REMOVE_RECURSE
  "CMakeFiles/medist_empirical_test.dir/medist_empirical_test.cpp.o"
  "CMakeFiles/medist_empirical_test.dir/medist_empirical_test.cpp.o.d"
  "medist_empirical_test"
  "medist_empirical_test.pdb"
  "medist_empirical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medist_empirical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
