# Empty dependencies file for qbd_solver_test.
# This may be replaced when dependencies are built.
