file(REMOVE_RECURSE
  "CMakeFiles/qbd_solver_test.dir/qbd_solver_test.cpp.o"
  "CMakeFiles/qbd_solver_test.dir/qbd_solver_test.cpp.o.d"
  "qbd_solver_test"
  "qbd_solver_test.pdb"
  "qbd_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
