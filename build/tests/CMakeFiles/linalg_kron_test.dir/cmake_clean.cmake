file(REMOVE_RECURSE
  "CMakeFiles/linalg_kron_test.dir/linalg_kron_test.cpp.o"
  "CMakeFiles/linalg_kron_test.dir/linalg_kron_test.cpp.o.d"
  "linalg_kron_test"
  "linalg_kron_test.pdb"
  "linalg_kron_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_kron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
