file(REMOVE_RECURSE
  "CMakeFiles/map_process_test.dir/map_process_test.cpp.o"
  "CMakeFiles/map_process_test.dir/map_process_test.cpp.o.d"
  "map_process_test"
  "map_process_test.pdb"
  "map_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
