# Empty compiler generated dependencies file for map_process_test.
# This may be replaced when dependencies are built.
