# Empty compiler generated dependencies file for map_server_test.
# This may be replaced when dependencies are built.
