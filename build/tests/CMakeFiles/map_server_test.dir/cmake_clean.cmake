file(REMOVE_RECURSE
  "CMakeFiles/map_server_test.dir/map_server_test.cpp.o"
  "CMakeFiles/map_server_test.dir/map_server_test.cpp.o.d"
  "map_server_test"
  "map_server_test.pdb"
  "map_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
