file(REMOVE_RECURSE
  "CMakeFiles/qbd_finite_test.dir/qbd_finite_test.cpp.o"
  "CMakeFiles/qbd_finite_test.dir/qbd_finite_test.cpp.o.d"
  "qbd_finite_test"
  "qbd_finite_test.pdb"
  "qbd_finite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_finite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
