# Empty compiler generated dependencies file for qbd_finite_test.
# This may be replaced when dependencies are built.
