file(REMOVE_RECURSE
  "CMakeFiles/map_correlation_sim_test.dir/map_correlation_sim_test.cpp.o"
  "CMakeFiles/map_correlation_sim_test.dir/map_correlation_sim_test.cpp.o.d"
  "map_correlation_sim_test"
  "map_correlation_sim_test.pdb"
  "map_correlation_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_correlation_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
