# Empty dependencies file for map_correlation_sim_test.
# This may be replaced when dependencies are built.
