file(REMOVE_RECURSE
  "CMakeFiles/qbd_mm1_test.dir/qbd_mm1_test.cpp.o"
  "CMakeFiles/qbd_mm1_test.dir/qbd_mm1_test.cpp.o.d"
  "qbd_mm1_test"
  "qbd_mm1_test.pdb"
  "qbd_mm1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_mm1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
