# Empty dependencies file for qbd_mm1_test.
# This may be replaced when dependencies are built.
