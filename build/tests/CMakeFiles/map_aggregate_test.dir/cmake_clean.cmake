file(REMOVE_RECURSE
  "CMakeFiles/map_aggregate_test.dir/map_aggregate_test.cpp.o"
  "CMakeFiles/map_aggregate_test.dir/map_aggregate_test.cpp.o.d"
  "map_aggregate_test"
  "map_aggregate_test.pdb"
  "map_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
