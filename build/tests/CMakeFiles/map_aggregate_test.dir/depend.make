# Empty dependencies file for map_aggregate_test.
# This may be replaced when dependencies are built.
