# Empty compiler generated dependencies file for medist_sampler_test.
# This may be replaced when dependencies are built.
