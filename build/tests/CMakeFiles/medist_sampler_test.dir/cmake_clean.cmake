file(REMOVE_RECURSE
  "CMakeFiles/medist_sampler_test.dir/medist_sampler_test.cpp.o"
  "CMakeFiles/medist_sampler_test.dir/medist_sampler_test.cpp.o.d"
  "medist_sampler_test"
  "medist_sampler_test.pdb"
  "medist_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medist_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
