file(REMOVE_RECURSE
  "CMakeFiles/core_mgc_test.dir/core_mgc_test.cpp.o"
  "CMakeFiles/core_mgc_test.dir/core_mgc_test.cpp.o.d"
  "core_mgc_test"
  "core_mgc_test.pdb"
  "core_mgc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mgc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
