file(REMOVE_RECURSE
  "CMakeFiles/medist_tpt_test.dir/medist_tpt_test.cpp.o"
  "CMakeFiles/medist_tpt_test.dir/medist_tpt_test.cpp.o.d"
  "medist_tpt_test"
  "medist_tpt_test.pdb"
  "medist_tpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medist_tpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
