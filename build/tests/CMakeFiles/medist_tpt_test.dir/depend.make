# Empty dependencies file for medist_tpt_test.
# This may be replaced when dependencies are built.
