# Empty dependencies file for qbd_map_arrivals_test.
# This may be replaced when dependencies are built.
