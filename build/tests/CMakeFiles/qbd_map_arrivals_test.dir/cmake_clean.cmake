file(REMOVE_RECURSE
  "CMakeFiles/qbd_map_arrivals_test.dir/qbd_map_arrivals_test.cpp.o"
  "CMakeFiles/qbd_map_arrivals_test.dir/qbd_map_arrivals_test.cpp.o.d"
  "qbd_map_arrivals_test"
  "qbd_map_arrivals_test.pdb"
  "qbd_map_arrivals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbd_map_arrivals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
