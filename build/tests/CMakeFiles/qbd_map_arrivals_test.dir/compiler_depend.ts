# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qbd_map_arrivals_test.
