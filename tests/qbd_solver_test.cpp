#include <gtest/gtest.h>

#include "linalg/ctmc.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

map::Mmpp PaperClusterMmpp(unsigned t_phases, unsigned n_servers) {
  const map::ServerModel server(exponential_from_mean(90.0),
                                make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, n_servers).mmpp();
}

TEST(QbdBlocks, ClusterBlocksValidate) {
  const auto mmpp = PaperClusterMmpp(5, 2);
  EXPECT_NO_THROW(m_mmpp_1(mmpp, 1.0).validate());
  EXPECT_THROW(m_mmpp_1(mmpp, -1.0), InvalidArgument);
  EXPECT_THROW(m_mmpp_1(mmpp, 0.0), InvalidArgument);
}

TEST(QbdBlocks, BrokenBlocksRejected) {
  auto blocks = m_mmpp_1(PaperClusterMmpp(2, 2), 1.0);
  blocks.a0(0, 0) = -2.0;  // negative rate
  EXPECT_THROW(blocks.validate(), InvalidArgument);

  blocks = m_mmpp_1(PaperClusterMmpp(2, 2), 1.0);
  blocks.a1(0, 0) += 5.0;  // breaks row sums
  EXPECT_THROW(blocks.validate(), InvalidArgument);

  blocks = m_mmpp_1(PaperClusterMmpp(2, 2), 1.0);
  blocks.b01 = Matrix(2, 2, 0.0);  // wrong shape
  EXPECT_THROW(blocks.validate(), InvalidArgument);
}

TEST(RSolver, ResidualSmallOnClusterModel) {
  const auto blocks = m_mmpp_1(PaperClusterMmpp(9, 2), 2.5);
  const auto res = solve_r(blocks);
  EXPECT_LT(res.residual, 1e-8);
  // R must be entrywise non-negative.
  for (double x : res.r.data()) EXPECT_GE(x, -1e-12);
}

TEST(RSolver, AlgorithmsAgree) {
  // SS converges linearly at rate sp(R); use a mild model (exponential
  // repair, low load) where sp(R) is small enough for SS to be practical.
  // Heavy-tail models at high load drive sp(R) -> 1 and make SS useless;
  // that gap is quantified in bench/perf_qbd_solver.
  const auto blocks = m_mmpp_1(PaperClusterMmpp(2, 2), 1.0);
  SolverOptions ss;
  ss.algorithm = RAlgorithm::kSuccessiveSubstitution;
  ss.tolerance = 1e-12;
  const auto r_lr = solve_r(blocks).r;
  const auto r_ss = solve_r(blocks, ss).r;
  EXPECT_LT(linalg::max_abs_diff(r_lr, r_ss), 1e-7);
}

TEST(RSolver, GIsStochasticForStableQueue) {
  const auto blocks = m_mmpp_1(PaperClusterMmpp(5, 2), 2.0);
  const GSolveResult g = solve_g_logred(blocks);
  EXPECT_TRUE(linalg::is_stochastic(g.g, 1e-8));
  EXPECT_TRUE(g.converged);
  EXPECT_GT(g.iterations, 0u);
  EXPECT_LT(g.defect, 1e-7);
}

TEST(RSolver, SpectralRadiusBelowOneIffStable) {
  const auto mmpp = PaperClusterMmpp(5, 2);
  const double nu_bar = mmpp.mean_rate();
  const auto stable = solve_r(m_mmpp_1(mmpp, 0.9 * nu_bar));
  EXPECT_LT(spectral_radius(stable.r), 1.0);
  EXPECT_THROW(solve_r(m_mmpp_1(mmpp, 1.1 * nu_bar)), NumericalError);
}

TEST(RSolver, SpectralRadiusUtilities) {
  EXPECT_NEAR(spectral_radius(Matrix{{0.5}}), 0.5, 1e-10);
  EXPECT_NEAR(spectral_radius(Matrix{{0.0, 0.25}, {0.25, 0.0}}), 0.25, 1e-9);
  EXPECT_EQ(spectral_radius(Matrix(3, 3, 0.0)), 0.0);
  EXPECT_THROW(spectral_radius(Matrix(2, 3)), InvalidArgument);
}

TEST(QbdSolution, PhaseMarginalMatchesModulatingStationary) {
  const auto mmpp = PaperClusterMmpp(5, 2);
  const QbdSolution sol(m_mmpp_1(mmpp, 2.2));
  const auto marginal = sol.phase_marginal();
  const auto pi = mmpp.stationary_phases();
  EXPECT_LT(linalg::max_abs_diff(marginal, pi), 1e-9);
}

TEST(QbdSolution, PmfSumsToOne) {
  const QbdSolution sol(m_mmpp_1(PaperClusterMmpp(5, 2), 1.5));
  const Vector pmf = sol.pmf_upto(3000);
  double total = 0.0;
  for (double x : pmf) total += x;
  EXPECT_NEAR(total + sol.tail(3001), 1.0, 1e-9);
}

TEST(QbdSolution, TailMatchesPmfPartialSums) {
  const QbdSolution sol(m_mmpp_1(PaperClusterMmpp(3, 2), 2.0));
  const std::size_t k_max = 400;
  const Vector pmf = sol.pmf_upto(k_max);
  double acc = 0.0;
  for (std::size_t k = 0; k < 50; ++k) acc += pmf[k];
  // Pr(Q >= 50) = 1 - sum_{k<50} pmf
  ExpectClose(sol.tail(50), 1.0 - acc, 1e-9, "tail(50)");
}

TEST(QbdSolution, TailBinaryPoweringConsistent) {
  // tail() switches to binary powering above 64 steps; verify continuity
  // across the switch point.
  const QbdSolution sol(m_mmpp_1(PaperClusterMmpp(5, 2), 2.5));
  const double t64 = sol.tail(64);
  const double t65 = sol.tail(65);
  const double t66 = sol.tail(66);
  EXPECT_GT(t64, t65);
  EXPECT_GT(t65, t66);
  // Ratios in a geometric-ish regime vary smoothly.
  EXPECT_NEAR(t65 / t64, t66 / t65, 0.05);
}

TEST(QbdSolution, MeanFromPmfMatchesFormula) {
  const QbdSolution sol(m_mmpp_1(PaperClusterMmpp(2, 2), 1.8));
  const std::size_t k_max = 6000;
  const Vector pmf = sol.pmf_upto(k_max);
  double mean = 0.0;
  for (std::size_t k = 1; k <= k_max; ++k) mean += k * pmf[k];
  ExpectClose(mean, sol.mean_queue_length(), 1e-6, "E[Q]");
}

TEST(QbdSolution, MmppM1DualSolves) {
  // The N-Burst dual: MMPP arrivals into an exponential server.
  const auto arrivals = PaperClusterMmpp(5, 2);
  const double lam_bar = arrivals.mean_rate();
  const QbdSolution sol(mmpp_m_1(arrivals, lam_bar / 0.5));
  // Utilization 0.5 with bursty arrivals: worse than M/M/1 at 0.5.
  EXPECT_GT(sol.mean_queue_length(), 1.0);
}

}  // namespace
}  // namespace performa::qbd
