#include "core/blowup.h"

#include <gtest/gtest.h>

#include "linalg/errors.h"
#include "test_util.h"

namespace performa::core {
namespace {

// The paper's running example: N=2, nu_p=2, delta=0.2, A=0.9.
BlowupParams PaperParams() { return BlowupParams{2, 2.0, 0.2, 0.9}; }

TEST(Blowup, MeanServiceRateOfPaperExample) {
  // nu_bar = 2 * 2 * (0.9 + 0.2*0.1) = 3.68.
  EXPECT_NEAR(mean_service_rate(PaperParams()), 3.68, 1e-12);
}

TEST(Blowup, ServiceRateLadderOfPaperExample) {
  const auto nu = service_rate_ladder(PaperParams());
  ASSERT_EQ(nu.size(), 3u);
  EXPECT_NEAR(nu[0], 3.68, 1e-12);
  EXPECT_NEAR(nu[1], 1.84 + 0.4, 1e-12);  // one long repair
  EXPECT_NEAR(nu[2], 0.8, 1e-12);         // both in long repair
}

TEST(Blowup, PaperBlowupUtilizations) {
  // Sec. 3.1: boundaries at 21.7% and 60.9%.
  const auto rho = blowup_utilizations(PaperParams());
  ASSERT_EQ(rho.size(), 2u);
  EXPECT_NEAR(rho[0], 0.609, 5e-4);  // rho_1 = nu_1/nu_bar
  EXPECT_NEAR(rho[1], 0.217, 5e-4);  // rho_2 = nu_2/nu_bar
}

TEST(Blowup, RegionsOfPaperExample) {
  const auto p = PaperParams();
  EXPECT_EQ(blowup_region(p, 0.10), 0u);  // insensitive
  EXPECT_EQ(blowup_region(p, 0.30), 2u);  // needs both servers down
  EXPECT_EQ(blowup_region(p, 0.70), 1u);  // one long repair suffices
  EXPECT_EQ(blowup_region(p, 0.95), 1u);
  EXPECT_THROW(blowup_region(p, 1.0), InvalidArgument);
  EXPECT_THROW(blowup_region(p, -0.1), InvalidArgument);
}

TEST(Blowup, LadderIsMonotone) {
  const auto nu = service_rate_ladder(BlowupParams{5, 2.0, 0.2, 0.9});
  for (std::size_t i = 1; i < nu.size(); ++i) {
    EXPECT_LT(nu[i], nu[i - 1]) << i;
  }
}

TEST(Blowup, CrashFaultBottomsAtZero) {
  const auto nu = service_rate_ladder(BlowupParams{3, 2.0, 0.0, 0.9});
  EXPECT_NEAR(nu.back(), 0.0, 1e-14);
  // delta = 0: a blow-up region exists for every positive lambda.
  EXPECT_TRUE(has_blowup(BlowupParams{3, 2.0, 0.0, 0.9}, 0.01));
}

TEST(Blowup, NoBlowupWhenDegradedCapacitySuffices) {
  // lambda below N nu_p delta: even all-down keeps up.
  const BlowupParams p{2, 2.0, 0.5, 0.9};
  EXPECT_FALSE(has_blowup(p, 1.9));  // N nu_p delta = 2
  EXPECT_TRUE(has_blowup(p, 2.1));
}

TEST(Blowup, TailExponents) {
  // beta_i = i(alpha-1)+1 for alpha = 1.4.
  EXPECT_NEAR(tail_exponent(1, 1.4), 1.4, 1e-14);
  EXPECT_NEAR(tail_exponent(2, 1.4), 1.8, 1e-14);
  EXPECT_NEAR(tail_exponent(5, 1.4), 3.0, 1e-14);
  EXPECT_THROW(tail_exponent(0, 1.4), InvalidArgument);
  EXPECT_THROW(tail_exponent(1, 1.0), InvalidArgument);
}

TEST(Blowup, AvailabilityBoundariesFigure5) {
  // Fig. 5 setting: lambda = 1.8, nu_p = 2, delta = 0.2, N = 2.
  BlowupParams p = PaperParams();
  const double lambda = 1.8;
  // Stability threshold: lambda = nu_0(A) -> A ~ 0.3125.
  EXPECT_NEAR(stability_availability(p, lambda), 0.3125, 1e-10);
  // Region-1 boundary from Eq. (5): A_1 = ((1.8-0.4)/2 - 0.2)/0.8 = 0.625.
  EXPECT_NEAR(availability_boundary(p, 1, lambda), 0.625, 1e-10);
}

TEST(Blowup, AvailabilityBoundaryConsistentWithLadder) {
  // At A = A_i(lambda), nu_i equals lambda.
  BlowupParams p{3, 1.5, 0.3, 0.5};
  const double lambda = 2.0;
  for (unsigned i = 0; i < p.n_servers; ++i) {
    const double a_i = availability_boundary(p, i, lambda);
    if (a_i <= 0.0 || a_i >= 1.0) continue;
    BlowupParams at = p;
    at.availability = a_i;
    const auto nu = service_rate_ladder(at);
    EXPECT_NEAR(nu[i], lambda, 1e-10) << "i=" << i;
  }
}

TEST(Blowup, AvailabilityWindowsMapToRegions) {
  // For A strictly inside (A_{i-1}, A_i) the model at arrival rate lambda
  // sits exactly in blow-up region i.
  BlowupParams p{4, 2.0, 0.2, 0.9};
  const double lambda = 3.0;
  std::vector<double> bounds;  // A_0 .. A_{N-1}, increasing
  for (unsigned i = 0; i < p.n_servers; ++i) {
    bounds.push_back(availability_boundary(p, i, lambda));
  }
  for (unsigned i = 1; i + 1 <= bounds.size(); ++i) {
    ASSERT_LT(bounds[i - 1], bounds[i]);
    const double a_mid = 0.5 * (bounds[i - 1] + bounds[i]);
    if (a_mid <= 0.0 || a_mid >= 1.0) continue;
    BlowupParams at = p;
    at.availability = a_mid;
    const double rho = lambda / mean_service_rate(at);
    ASSERT_LT(rho, 1.0);
    EXPECT_EQ(blowup_region(at, rho), i) << "A=" << a_mid;
  }
  // Above A_{N-1}: region N, because lambda > N nu_p delta here.
  ASSERT_TRUE(has_blowup(p, lambda));
  BlowupParams high = p;
  high.availability = 0.5 * (bounds.back() + 1.0);
  const double rho = lambda / mean_service_rate(high);
  EXPECT_EQ(blowup_region(high, rho), p.n_servers);
}

TEST(Blowup, AvailabilityBoundaryValidation) {
  BlowupParams p = PaperParams();
  EXPECT_THROW(availability_boundary(p, 2, 1.8), InvalidArgument);  // i = N
  p.delta = 1.0;
  EXPECT_THROW(availability_boundary(p, 0, 1.8), InvalidArgument);
}

TEST(Blowup, ParamValidation) {
  EXPECT_THROW(service_rate_ladder(BlowupParams{0, 2.0, 0.2, 0.9}),
               InvalidArgument);
  EXPECT_THROW(service_rate_ladder(BlowupParams{2, -2.0, 0.2, 0.9}),
               InvalidArgument);
  EXPECT_THROW(service_rate_ladder(BlowupParams{2, 2.0, 1.2, 0.9}),
               InvalidArgument);
  EXPECT_THROW(service_rate_ladder(BlowupParams{2, 2.0, 0.2, 0.0}),
               InvalidArgument);
}

TEST(Blowup, DeltaOneDegeneratesToSingleRegionlessLadder) {
  // delta = 1: failures do not degrade anything; all nu_i equal.
  const auto nu = service_rate_ladder(BlowupParams{3, 2.0, 1.0, 0.5});
  for (double x : nu) EXPECT_NEAR(x, 6.0, 1e-12);
}

// Property: region boundaries partition (0,1) consistently with
// blowup_region across a parameter sweep.
struct RegionCase {
  unsigned n;
  double delta;
  double a;
};

class RegionProperty : public ::testing::TestWithParam<RegionCase> {};

TEST_P(RegionProperty, BoundariesMatchRegionIndex) {
  const auto [n, delta, a] = GetParam();
  const BlowupParams p{n, 2.0, delta, a};
  const auto rho_bounds = blowup_utilizations(p);  // descending rho_1..rho_N
  for (double rho = 0.02; rho < 1.0; rho += 0.02) {
    const unsigned region = blowup_region(p, rho);
    if (region == 0) {
      EXPECT_LE(rho, rho_bounds.back() + 1e-12);
    } else {
      // nu_region < lambda <= nu_{region-1}
      EXPECT_GT(rho, rho_bounds[region - 1] - 1e-12);
      if (region >= 2) {
        EXPECT_LE(rho, rho_bounds[region - 2] + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegionProperty,
    ::testing::Values(RegionCase{2, 0.2, 0.9}, RegionCase{2, 0.0, 0.9},
                      RegionCase{3, 0.1, 0.8}, RegionCase{5, 0.2, 0.9},
                      RegionCase{5, 0.0, 0.5}, RegionCase{10, 0.3, 0.95},
                      RegionCase{1, 0.2, 0.9}));

}  // namespace
}  // namespace performa::core
