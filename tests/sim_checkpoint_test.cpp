// RNG-stream serialization and mid-run pause/resume of the simulators.
//
// The contract under test is bit-exactness: a run paused at an arbitrary
// event boundary and resumed from its snapshot must replay the identical
// trajectory -- same statistics to the last bit, same final RNG-stream
// position -- as a run that was never interrupted. This is what makes
// sweep checkpoints trustworthy.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "core/cluster_model.h"
#include "linalg/errors.h"
#include "sim/cluster_sim.h"
#include "sim/fault_injection.h"
#include "sim/mmpp_queue_sim.h"
#include "sim/random.h"

namespace performa::sim {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// --- RNG-stream serialization ----------------------------------------

TEST(RngState, SaveRestoreRoundTripsStream) {
  Rng rng(12345);
  for (int i = 0; i < 1000; ++i) rng();  // advance mid-stream
  const std::string state = save_rng_state(rng);
  Rng restored = restore_rng_state(state);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(rng(), restored()) << "draw " << i;
  }
}

TEST(RngState, SaveIsStableAcrossRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 17; ++i) rng();
  const std::string once = save_rng_state(rng);
  EXPECT_EQ(save_rng_state(restore_rng_state(once)), once);
}

TEST(RngState, RestoreRejectsGarbage) {
  EXPECT_THROW(restore_rng_state(""), InvalidArgument);
  EXPECT_THROW(restore_rng_state("not an engine state"), InvalidArgument);
  Rng rng(3);
  EXPECT_THROW(restore_rng_state(save_rng_state(rng) + " trailing junk"),
               InvalidArgument);
}

// --- cluster simulator pause/resume ----------------------------------

ClusterSimConfig SmallCluster() {
  ClusterSimConfig cfg;
  cfg.n_servers = 2;
  cfg.lambda = 1.2;
  cfg.up = exponential_sampler_mean(90.0);
  cfg.down = exponential_sampler_mean(10.0);
  cfg.cycles = 300;
  cfg.warmup_cycles = 30;
  cfg.seed = 5;
  return cfg;
}

void ExpectClusterResultsBitIdentical(const ClusterSimResult& a,
                                      const ClusterSimResult& b) {
  EXPECT_TRUE(BitEqual(a.mean_queue_length, b.mean_queue_length));
  EXPECT_TRUE(BitEqual(a.probability_empty, b.probability_empty));
  EXPECT_TRUE(BitEqual(a.sim_time, b.sim_time));
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.discarded, b.discarded);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.injected_crashes, b.injected_crashes);
  EXPECT_EQ(a.injected_arrivals, b.injected_arrivals);
  EXPECT_EQ(a.repair_preemptions, b.repair_preemptions);
  EXPECT_EQ(a.system_time.count(), b.system_time.count());
  if (a.system_time.count() > 0) {
    EXPECT_TRUE(BitEqual(a.system_time.mean(), b.system_time.mean()));
  }
  EXPECT_EQ(a.final_rng_state, b.final_rng_state);
}

// Pause at `pause_events`, resume, and check against the uninterrupted
// reference run of the same config.
void CheckClusterPauseResume(const ClusterSimConfig& cfg,
                             std::size_t pause_events,
                             const ClusterSimResult& reference) {
  ClusterSimConfig paused_cfg = cfg;
  paused_cfg.pause_after_events = pause_events;
  const auto paused = simulate_cluster(paused_cfg);
  ASSERT_TRUE(paused.paused);
  ASSERT_NE(paused.state, nullptr);
  EXPECT_EQ(paused.final_rng_state, paused.state->rng_state);

  ClusterSimConfig resume_cfg = cfg;
  resume_cfg.pause_after_events = 0;
  resume_cfg.resume_from = paused.state;
  const auto resumed = simulate_cluster(resume_cfg);
  ASSERT_FALSE(resumed.paused);
  ExpectClusterResultsBitIdentical(resumed, reference);
}

TEST(ClusterSimCheckpoint, PauseResumeIsBitIdentical) {
  const auto cfg = SmallCluster();
  const auto reference = simulate_cluster(cfg);
  ASSERT_FALSE(reference.paused);
  ASSERT_GT(reference.events, 100u);

  // During warm-up, around the middle, and near the end of the run.
  CheckClusterPauseResume(cfg, 50, reference);
  CheckClusterPauseResume(cfg, reference.events / 2, reference);
  CheckClusterPauseResume(cfg, (reference.events * 9) / 10, reference);
}

TEST(ClusterSimCheckpoint, ChainedPausesStayBitIdentical) {
  const auto cfg = SmallCluster();
  const auto reference = simulate_cluster(cfg);

  // Pause twice along the way: snapshot -> snapshot -> completion.
  ClusterSimConfig first = cfg;
  first.pause_after_events = reference.events / 4;
  const auto leg1 = simulate_cluster(first);
  ASSERT_TRUE(leg1.paused);

  ClusterSimConfig second = cfg;
  second.pause_after_events = reference.events / 2;
  second.resume_from = leg1.state;
  const auto leg2 = simulate_cluster(second);
  ASSERT_TRUE(leg2.paused);

  ClusterSimConfig last = cfg;
  last.pause_after_events = 0;
  last.resume_from = leg2.state;
  const auto finished = simulate_cluster(last);
  ASSERT_FALSE(finished.paused);
  ExpectClusterResultsBitIdentical(finished, reference);
}

TEST(ClusterSimCheckpoint, PauseResumeUnderFaultInjection) {
  ClusterSimConfig cfg = SmallCluster();
  cfg.faults = parse_scenario("common-mode-2@50+burst-20@120+refail-0.3");
  const auto reference = simulate_cluster(cfg);
  ASSERT_FALSE(reference.paused);
  EXPECT_GT(reference.injected_crashes, 0u);
  EXPECT_GT(reference.injected_arrivals, 0u);

  CheckClusterPauseResume(cfg, reference.events / 3, reference);
  CheckClusterPauseResume(cfg, (reference.events * 3) / 4, reference);
}

TEST(ClusterSimCheckpoint, PauseResumeWithCrashStrategy) {
  // delta = 0 turns DOWN periods into crashes, exercising the failure
  // strategy and in-service task snapshot fields.
  ClusterSimConfig cfg = SmallCluster();
  cfg.delta = 0.0;
  cfg.strategy = FailureStrategy::kRestartBack;
  const auto reference = simulate_cluster(cfg);
  CheckClusterPauseResume(cfg, reference.events / 2, reference);

  cfg.strategy = FailureStrategy::kResumeFront;
  const auto reference2 = simulate_cluster(cfg);
  CheckClusterPauseResume(cfg, reference2.events / 2, reference2);
}

TEST(ClusterSimCheckpoint, ResumeValidatesTopology) {
  ClusterSimConfig cfg = SmallCluster();
  cfg.pause_after_events = 100;
  const auto paused = simulate_cluster(cfg);
  ASSERT_TRUE(paused.paused);

  ClusterSimConfig wrong = SmallCluster();
  wrong.n_servers = 3;  // snapshot was taken with 2 servers
  wrong.resume_from = paused.state;
  EXPECT_THROW(simulate_cluster(wrong), InvalidArgument);
}

// --- M/MMPP/1 simulator pause/resume ---------------------------------

TEST(MmppQueueSimCheckpoint, PauseResumeIsBitIdentical) {
  const core::ClusterModel model{core::ClusterParams{}};
  const auto mmpp = model.aggregate().mmpp();

  MmppQueueSimConfig cfg;
  cfg.lambda = model.lambda_for_rho(0.7);
  cfg.horizon = 2e4;
  cfg.warmup = 2e3;
  cfg.seed = 11;
  const auto reference = simulate_mmpp_queue(mmpp, cfg);
  ASSERT_FALSE(reference.paused);
  ASSERT_GT(reference.events, 1000u);

  // Pause during warm-up and well into measurement.
  for (std::size_t pause : {static_cast<std::size_t>(100),
                            reference.events / 2}) {
    MmppQueueSimConfig paused_cfg = cfg;
    paused_cfg.pause_after_events = pause;
    const auto paused = simulate_mmpp_queue(mmpp, paused_cfg);
    ASSERT_TRUE(paused.paused);
    ASSERT_NE(paused.state, nullptr);

    MmppQueueSimConfig resume_cfg = cfg;
    resume_cfg.resume_from = paused.state;
    const auto resumed = simulate_mmpp_queue(mmpp, resume_cfg);
    ASSERT_FALSE(resumed.paused);
    EXPECT_TRUE(
        BitEqual(resumed.mean_queue_length, reference.mean_queue_length));
    EXPECT_TRUE(
        BitEqual(resumed.probability_empty, reference.probability_empty));
    EXPECT_EQ(resumed.arrivals, reference.arrivals);
    EXPECT_EQ(resumed.services, reference.services);
    EXPECT_EQ(resumed.events, reference.events);
    EXPECT_EQ(resumed.final_rng_state, reference.final_rng_state);
  }
}

TEST(MmppQueueSimCheckpoint, ResumeValidatesPhase) {
  const core::ClusterModel model{core::ClusterParams{}};
  const auto mmpp = model.aggregate().mmpp();

  MmppQueueSimConfig cfg;
  cfg.lambda = model.lambda_for_rho(0.5);
  cfg.horizon = 5e3;
  cfg.warmup = 5e2;
  cfg.pause_after_events = 200;
  const auto paused = simulate_mmpp_queue(mmpp, cfg);
  ASSERT_TRUE(paused.paused);

  auto corrupt = std::make_shared<MmppQueueSimState>(*paused.state);
  corrupt->phase = 10'000;  // out of range for the service process
  MmppQueueSimConfig resume_cfg = cfg;
  resume_cfg.pause_after_events = 0;
  resume_cfg.resume_from = corrupt;
  EXPECT_THROW(simulate_mmpp_queue(mmpp, resume_cfg), InvalidArgument);
}

}  // namespace
}  // namespace performa::sim
