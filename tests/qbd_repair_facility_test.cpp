// Level-dependent QBD solves over the shared repair facility: the c >= N
// homogeneous path must reproduce the paper's independent-repair answers
// bit-for-bit, contention configurations must come back trust-certified,
// and the economics ordering (crews and spares buy queue length and tail
// mass) must hold.
#include "qbd/level_dependent.h"

#include <gtest/gtest.h>

#include "medist/tpt.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::MeDistribution;
using medist::TptSpec;

MeDistribution PaperUp() { return exponential_from_mean(90.0); }

MeDistribution PaperDown(unsigned t_phases) {
  if (t_phases <= 1) return exponential_from_mean(10.0);
  return make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0});
}

map::RepairFacility Facility(unsigned n, unsigned crews, unsigned spares,
                             unsigned t_phases) {
  return map::RepairFacility(PaperUp(), PaperDown(t_phases), 2.0, 0.2, n,
                             crews, spares);
}

TEST(QbdRepairFacility, HomogeneousPathReproducesIndependentRepairBitForBit) {
  // c >= N, s = 0: the facility process delegates to LumpedAggregate, so
  // the level-dependent solve must agree with the existing
  // independent-repair construction to the last bit, not just to
  // tolerance.
  const map::RepairFacility fac = Facility(2, 2, 0, 3);
  const map::LumpedAggregate agg(
      map::ServerModel(PaperUp(), PaperDown(3), 2.0, 0.2), 2);
  const double lambda = 0.5 * agg.mmpp().mean_rate();

  const LevelDependentSolution via_facility(
      repair_facility_level_dependent_blocks(fac, lambda));
  const LevelDependentSolution independent(
      cluster_level_dependent_blocks(agg, 2.0, 0.2, lambda));

  EXPECT_DOUBLE_EQ(via_facility.mean_queue_length(),
                   independent.mean_queue_length());
  EXPECT_DOUBLE_EQ(via_facility.probability_empty(),
                   independent.probability_empty());
  for (std::size_t k = 0; k <= 10; ++k) {
    EXPECT_DOUBLE_EQ(via_facility.pmf(k), independent.pmf(k)) << "k=" << k;
  }
  EXPECT_DOUBLE_EQ(via_facility.tail(4), independent.tail(4));
  EXPECT_TRUE(via_facility.trust().verified);
  EXPECT_EQ(via_facility.trust().verdict, TrustVerdict::kCertified)
      << via_facility.trust().summary();
}

TEST(QbdRepairFacility, ContentionSolveIsTrustCertified) {
  const map::RepairFacility fac = Facility(2, 1, 1, 5);
  const double lambda = 0.6 * fac.mmpp().mean_rate();
  const LevelDependentSolution sol(
      repair_facility_level_dependent_blocks(fac, lambda));
  EXPECT_TRUE(sol.trust().verified);
  EXPECT_EQ(sol.trust().verdict, TrustVerdict::kCertified)
      << sol.trust().summary();
  EXPECT_TRUE(sol.report().converged);
  ASSERT_EQ(sol.trust().checks.size(), 3u);
}

TEST(QbdRepairFacility, TrustCanBeDisabled) {
  const map::RepairFacility fac = Facility(2, 1, 0, 2);
  SolverOptions opts;
  opts.trust.enabled = false;
  const LevelDependentSolution sol(
      repair_facility_level_dependent_blocks(fac, 0.5 * fac.mmpp().mean_rate()),
      opts);
  EXPECT_FALSE(sol.trust().verified);
}

TEST(QbdRepairFacility, SerialRepairMateriallyWorseAtHighVariance) {
  // One crew vs. unconstrained repairs under TPT (T = 5) repair times at
  // the same arrival rate: contention must show up as a materially longer
  // queue and heavier tail, the ext9 headline effect.
  const map::RepairFacility serial = Facility(2, 1, 0, 5);
  const map::RepairFacility parallel = Facility(2, 2, 0, 5);
  const double lambda = 0.6 * serial.mmpp().mean_rate();  // stable for both

  const LevelDependentSolution slow(
      repair_facility_level_dependent_blocks(serial, lambda));
  const LevelDependentSolution fast(
      repair_facility_level_dependent_blocks(parallel, lambda));

  EXPECT_GT(slow.mean_queue_length(), 1.05 * fast.mean_queue_length())
      << "serial E[Q]=" << slow.mean_queue_length()
      << " parallel E[Q]=" << fast.mean_queue_length();
  EXPECT_GT(slow.tail(10), fast.tail(10));
}

TEST(QbdRepairFacility, SparesShortenTheQueue) {
  const map::RepairFacility bare = Facility(2, 1, 0, 5);
  const map::RepairFacility spared = Facility(2, 1, 2, 5);
  const double lambda = 0.6 * bare.mmpp().mean_rate();
  const LevelDependentSolution without(
      repair_facility_level_dependent_blocks(bare, lambda));
  const LevelDependentSolution with(
      repair_facility_level_dependent_blocks(spared, lambda));
  EXPECT_LE(with.mean_queue_length(), without.mean_queue_length() + 1e-9);
  EXPECT_LE(with.tail(10), without.tail(10) + 1e-12);
}

TEST(QbdRepairFacility, TopLevelServiceMatchesFacilityRates) {
  const map::RepairFacility fac = Facility(3, 1, 1, 2);
  const auto blocks = repair_facility_level_dependent_blocks(fac, 1.0);
  ASSERT_EQ(blocks.service.size(), 3u);
  ASSERT_EQ(blocks.phase_dim(), fac.state_count());
  for (std::size_t s = 0; s < fac.state_count(); ++s) {
    EXPECT_DOUBLE_EQ(blocks.service.back()(s, s), fac.mmpp().rates()[s]) << s;
  }
  // Rates grow weakly with the level in every phase.
  for (std::size_t k = 1; k < blocks.service.size(); ++k) {
    for (std::size_t s = 0; s < blocks.phase_dim(); ++s) {
      EXPECT_GE(blocks.service[k](s, s), blocks.service[k - 1](s, s) - 1e-12);
    }
  }
}

TEST(QbdRepairFacility, PmfNormalizesUnderContention) {
  const map::RepairFacility fac = Facility(2, 1, 1, 3);
  const LevelDependentSolution sol(
      repair_facility_level_dependent_blocks(fac, 0.5 * fac.mmpp().mean_rate()));
  double total = 0.0;
  for (std::size_t k = 0; k < 200; ++k) total += sol.pmf(k);
  total += sol.tail(200);
  EXPECT_NEAR(total, 1.0, 1e-8);
  EXPECT_NEAR(sol.tail(0), 1.0, 1e-10);
}

TEST(QbdRepairFacility, BoundaryAccessorsExposeSolution) {
  const map::RepairFacility fac = Facility(2, 1, 0, 2);
  const LevelDependentSolution sol(
      repair_facility_level_dependent_blocks(fac, 0.4 * fac.mmpp().mean_rate()));
  EXPECT_EQ(sol.boundary_levels(), 2u);
  EXPECT_EQ(sol.pi(0).size(), fac.state_count());
  EXPECT_NEAR(linalg::sum(sol.pi(0)), sol.probability_empty(), 1e-15);
  EXPECT_EQ(sol.r().rows(), fac.state_count());
  EXPECT_THROW(sol.pi(3), InvalidArgument);
}

}  // namespace
}  // namespace performa::qbd
