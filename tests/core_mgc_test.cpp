#include "core/mgc.h"

#include <gtest/gtest.h>

#include <random>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/sampler.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::core {
namespace {

using performa::testing::ExpectClose;

TEST(CompletionTime, NoFailuresIsTaskTime) {
  const auto task = medist::exponential_dist(2.0);
  const auto repair = medist::exponential_from_mean(10.0);
  const Moments2 c = resume_completion_moments(task, 0.0, repair);
  EXPECT_NEAR(c.m1, 0.5, 1e-14);
  EXPECT_NEAR(c.m2, 0.5, 1e-14);  // E[T^2] = 2/4
  EXPECT_NEAR(c.scv(), 1.0, 1e-12);
}

TEST(CompletionTime, FormulaAgainstMonteCarlo) {
  const auto task = medist::exponential_dist(2.0);
  const auto repair = medist::make_tpt(medist::TptSpec{3, 1.4, 0.2, 10.0});
  const double f = 1.0 / 90.0;
  const Moments2 c = resume_completion_moments(task, f, repair);

  std::mt19937_64 rng(7);
  const medist::PhaseSampler repair_sampler(repair);
  std::exponential_distribution<double> task_draw(2.0);
  double acc1 = 0.0, acc2 = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double t = task_draw(rng);
    std::poisson_distribution<int> n_fail(f * t);
    double total = t;
    const int failures = n_fail(rng);
    for (int j = 0; j < failures; ++j) total += repair_sampler.sample(rng);
    acc1 += total;
    acc2 += total * total;
  }
  ExpectClose(acc1 / n, c.m1, 0.01, "E[C]");
  ExpectClose(acc2 / n, c.m2, 0.10, "E[C^2]");
}

TEST(CompletionTime, RestartEqualsResumeForExpTasks) {
  const auto repair = medist::exponential_from_mean(10.0);
  const Moments2 a = restart_completion_moments_exp_task(2.0, 0.02, repair);
  const Moments2 b = resume_completion_moments(medist::exponential_dist(2.0),
                                               0.02, repair);
  EXPECT_EQ(a.m1, b.m1);
  EXPECT_EQ(a.m2, b.m2);
}

TEST(CompletionTime, HeavyRepairInflatesSecondMomentDramatically) {
  const auto task = medist::exponential_dist(2.0);
  const double f = 1.0 / 90.0;
  const auto exp_repair = medist::exponential_from_mean(10.0);
  const auto tpt_repair = medist::make_tpt(medist::TptSpec{10, 1.4, 0.2,
                                                           10.0});
  const Moments2 mild = resume_completion_moments(task, f, exp_repair);
  const Moments2 heavy = resume_completion_moments(task, f, tpt_repair);
  EXPECT_NEAR(mild.m1, heavy.m1, 1e-12);  // same mean!
  EXPECT_GT(heavy.m2, 50.0 * mild.m2);    // wildly different variance
}

TEST(ErlangC, KnownValues) {
  // M/M/1: C = rho.
  EXPECT_NEAR(mgc::erlang_c(0.7, 1), 0.7, 1e-12);
  // M/M/2 at a=1.2 (rho=0.6): C(2,1.2) = B/(1-rho(1-B)) with
  // B = Erlang-B(2, 1.2) = (1.2^2/2)/(1+1.2+1.2^2/2) = 0.72/2.92.
  const double b = 0.72 / 2.92;
  EXPECT_NEAR(mgc::erlang_c(1.2, 2), b / (1.0 - 0.6 * (1.0 - b)), 1e-12);
  EXPECT_THROW(mgc::erlang_c(2.0, 2), InvalidArgument);
}

TEST(Mmc, ReducesToMm1) {
  const double lambda = 0.7, mu = 1.0;
  ExpectClose(mgc::mmc_mean_number(lambda, mu, 1),
              mm1::mean_queue_length(0.7), 1e-12, "E[N]");
}

TEST(Mgc, ExponentialServiceReducesToMmc) {
  Moments2 exp_service{0.5, 0.5};  // exp(2): m2 = 2 m1^2
  ExpectClose(mgc::mgc_mean_number(2.4, exp_service, 2),
              mgc::mmc_mean_number(2.4, 2.0, 2), 1e-12, "E[N]");
}

TEST(Mgc, ComparatorMissesTheRegionStructure) {
  // The punchline of the comparator: the M/G/c completion-time view
  // applies one variance-driven multiplier at every load, so it cannot
  // reproduce the blow-up *regions*. Measured against the exact QBD it
  // overshoots by an order of magnitude in the intermediate region yet is
  // nearly exact deep inside the blow-up region -- no single correction
  // factor fixes both.
  ClusterParams p;
  p.delta = 0.0;
  p.down = medist::make_tpt(medist::TptSpec{10, 1.4, 0.2, 10.0});
  const ClusterModel model(p);
  const Moments2 c = resume_completion_moments(medist::exponential_dist(2.0),
                                               1.0 / 90.0, p.down);

  auto ratio = [&](double rho) {
    const double lambda = model.lambda_for_rho(rho);
    return mgc::mgc_mean_number(lambda, c, 2) /
           model.solve(lambda).mean_queue_length();
  };
  EXPECT_GT(ratio(0.3), 5.0);   // intermediate region: gross over-estimate
  EXPECT_LT(ratio(0.7), 2.0);   // blow-up region: roughly right
  EXPECT_GT(ratio(0.3), 4.0 * ratio(0.7));
}

TEST(Mgc, Validation) {
  EXPECT_THROW(mgc::mmc_mean_wait(3.0, 1.0, 2), InvalidArgument);
  EXPECT_THROW(mgc::mgc_mean_number(-1.0, Moments2{1.0, 2.0}, 1),
               InvalidArgument);
}

// Property: Erlang C lies in [0,1] and grows with load.
class ErlangCProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ErlangCProperty, MonotoneInLoad) {
  const unsigned c = GetParam();
  double prev = 0.0;
  for (double rho = 0.1; rho < 1.0; rho += 0.1) {
    const double value = mgc::erlang_c(rho * c, c);
    EXPECT_GE(value, prev);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    prev = value;
  }
}

INSTANTIATE_TEST_SUITE_P(Servers, ErlangCProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 50));

}  // namespace
}  // namespace performa::core
