// End-to-end checks of the analytic cluster model against the paper's
// qualitative and quantitative claims (Sec. 3, Figs. 1-6).
#include "core/cluster_model.h"

#include <gtest/gtest.h>

#include "core/mm1.h"
#include "medist/moment_fit.h"
#include "test_util.h"

namespace performa::core {
namespace {

using medist::exponential_from_mean;
using medist::fit_hyp2;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

ClusterParams PaperParams(unsigned t_phases) {
  ClusterParams p;
  p.n_servers = 2;
  p.nu_p = 2.0;
  p.delta = 0.2;
  p.up = exponential_from_mean(90.0);
  p.down = make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0});
  return p;
}

TEST(ClusterModel, BasicQuantities) {
  const ClusterModel m(PaperParams(10));
  EXPECT_NEAR(m.availability(), 0.9, 1e-9);
  EXPECT_NEAR(m.mean_service_rate(), 3.68, 1e-9);
  EXPECT_NEAR(m.lambda_for_rho(0.5), 1.84, 1e-9);
  EXPECT_NEAR(m.rho_for_lambda(1.84), 0.5, 1e-9);
  EXPECT_THROW(m.lambda_for_rho(1.5), InvalidArgument);
  EXPECT_THROW(m.rho_for_lambda(-1.0), InvalidArgument);
}

TEST(ClusterModel, BlowupParamsAdapter) {
  const ClusterModel m(PaperParams(10));
  const BlowupParams bp = m.blowup_params();
  EXPECT_EQ(bp.n_servers, 2u);
  EXPECT_NEAR(bp.availability, 0.9, 1e-9);
  const auto rho = blowup_utilizations(bp);
  EXPECT_NEAR(rho[0], 0.609, 5e-4);
  EXPECT_NEAR(rho[1], 0.217, 5e-4);
}

TEST(ClusterModel, ExponentialRepairIsMildlyWorseThanMm1) {
  // Fig. 1, solid line: normalized mean queue length grows smoothly and
  // stays moderate (service-rate fluctuation effect only).
  const ClusterModel m(PaperParams(1));
  double prev = 1.0;
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double nql = m.normalized_mean_queue_length(rho);
    EXPECT_GT(nql, 0.99) << rho;   // never better than M/M/1
    EXPECT_LT(nql, 10.0) << rho;   // no blow-up for exponential repair
    EXPECT_GT(nql, prev - 0.5) << rho;
  }
  (void)prev;
}

TEST(ClusterModel, BlowupRegionsVisibleForLargeT) {
  // Fig. 1, T=10 curve: three qualitatively different regions.
  const ClusterModel m(PaperParams(10));
  const double low = m.normalized_mean_queue_length(0.10);
  const double mid = m.normalized_mean_queue_length(0.40);
  const double high = m.normalized_mean_queue_length(0.70);
  // Region boundaries: the paper reports ~insensitive, elevated, and
  // blown-up (x100) regimes.
  const ClusterModel exp_repair(PaperParams(1));
  EXPECT_LT(low, 1.3);
  EXPECT_GT(mid, 1.4 * exp_repair.normalized_mean_queue_length(0.40));
  EXPECT_LT(mid, high);
  EXPECT_GT(high, 50.0);  // "100 times larger than M/M/1" in the paper
}

TEST(ClusterModel, InsensitiveRegionMatchesExponentialRepair) {
  // Below rho_N the repair-time distribution barely matters.
  const ClusterModel exp_repair(PaperParams(1));
  const ClusterModel tpt_repair(PaperParams(9));
  const double rho = 0.10;  // below 0.217
  const double a = exp_repair.normalized_mean_queue_length(rho);
  const double b = tpt_repair.normalized_mean_queue_length(rho);
  ExpectClose(a, b, 0.25, "normalized E[Q] in insensitive region");
}

TEST(ClusterModel, MeanQueueLengthGrowsWithT) {
  // Longer power-tail range -> strictly worse mean queue length in the
  // blow-up region.
  const double rho = 0.7;
  double prev = 0.0;
  for (unsigned t : {1u, 5u, 9u, 10u}) {
    const ClusterModel m(PaperParams(t));
    const double nql = m.normalized_mean_queue_length(rho);
    EXPECT_GT(nql, prev) << "T=" << t;
    prev = nql;
  }
}

TEST(ClusterModel, QueueLengthPmfShowsPowerLawInBlowupRegion) {
  // Fig. 2: at rho = 0.7 (region 1) the pmf follows a power law with
  // exponent ~ beta_1 = alpha = 1.4 over the mid range.
  const ClusterModel m(PaperParams(9));
  const auto sol = m.solve(m.lambda_for_rho(0.7));
  const auto pmf = sol.pmf_upto(2000);

  // Regress log pmf on log k between k=20 and k=600.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t k = 20; k <= 600; k += 10) {
    const double x = std::log(static_cast<double>(k));
    const double y = std::log(pmf[k]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, -1.4, 0.25) << "pmf power-law exponent at rho=0.7";
}

TEST(ClusterModel, PmfDecaysGeometricallyInInsensitiveRegion) {
  // Fig. 2, rho = 0.1: exponential decay like M/M/1 -- the pmf ratio
  // stabilizes instead of following a power law.
  const ClusterModel m(PaperParams(9));
  const auto sol = m.solve(m.lambda_for_rho(0.1));
  const auto pmf = sol.pmf_upto(60);
  const double r1 = pmf[30] / pmf[25];
  const double r2 = pmf[55] / pmf[50];
  ExpectClose(r1, r2, 0.05, "geometric ratio");
}

TEST(ClusterModel, TailProbabilitiesBlowUpAcrossBoundary) {
  // Fig. 3: Pr(Q >= 500) jumps by orders of magnitude across rho_1.
  const ClusterModel m(PaperParams(10));
  const double below = m.solve(m.lambda_for_rho(0.5)).tail(500);
  const double above = m.solve(m.lambda_for_rho(0.7)).tail(500);
  EXPECT_GT(above, below * 30.0);
  // And the region-2 boundary is even more dramatic (geometric -> power).
  const double insensitive = m.solve(m.lambda_for_rho(0.1)).tail(500);
  EXPECT_GT(below, insensitive * 1e10);
}

TEST(ClusterModel, Hyp2MatchesTptInWorstRegion) {
  // Fig. 4: HYP-2 with matched 3 moments closely reproduces the mean
  // queue length in the right-hand blow-up region.
  const ClusterParams tpt_params = PaperParams(10);
  ClusterParams hyp_params = tpt_params;
  hyp_params.down = fit_hyp2(tpt_params.down).to_distribution();

  const ClusterModel tpt_model(tpt_params);
  const ClusterModel hyp_model(hyp_params);
  const double rho = 0.75;
  ExpectClose(tpt_model.normalized_mean_queue_length(rho),
              hyp_model.normalized_mean_queue_length(rho), 0.30,
              "TPT vs HYP-2 normalized E[Q]");
}

TEST(ClusterModel, Hyp2IntermediateRegionSlightlyLower) {
  // Fig. 4 note: in the intermediate region the HYP-2 curve sits slightly
  // below the TPT curve.
  const ClusterParams tpt_params = PaperParams(10);
  ClusterParams hyp_params = tpt_params;
  hyp_params.down = fit_hyp2(tpt_params.down).to_distribution();
  const double rho = 0.4;
  const double tpt_nql =
      ClusterModel(tpt_params).normalized_mean_queue_length(rho);
  const double hyp_nql =
      ClusterModel(hyp_params).normalized_mean_queue_length(rho);
  EXPECT_LT(hyp_nql, tpt_nql * 1.05);
}

TEST(ClusterModel, UnstableArrivalRateThrows) {
  const ClusterModel m(PaperParams(5));
  EXPECT_THROW(m.solve(3.7), NumericalError);  // nu_bar = 3.68
}

TEST(ClusterModel, NormalizedConvergesAcrossModelsForHighRho) {
  // Fig. 1 note: for rho -> 1 every curve grows like 1/(1-rho); the
  // normalized value flattens (finite limit), so the ratio between rho =
  // 0.95 and rho = 0.90 normalized values stays moderate.
  const ClusterModel m(PaperParams(5));
  const double at90 = m.normalized_mean_queue_length(0.90);
  const double at95 = m.normalized_mean_queue_length(0.95);
  EXPECT_LT(at95 / at90, 3.0);
}

// Property: solution sanity across the utilization sweep used in Fig. 1.
class ClusterSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClusterSweep, SolutionInvariantsHold) {
  const double rho = GetParam();
  const ClusterModel m(PaperParams(9));
  const auto sol = m.solve(m.lambda_for_rho(rho));
  EXPECT_GT(sol.probability_empty(), 0.0);
  EXPECT_LT(sol.probability_empty(), 1.0);
  EXPECT_GT(sol.mean_queue_length(), core::mm1::mean_queue_length(rho) * 0.9);
  EXPECT_LT(sol.decay_rate(), 1.0);
  // Little's-law style sanity: utilization equals 1 - P(empty in service
  // terms) is not exact for MMPP service, but P(empty) < 1 - rho + margin.
  EXPECT_LT(sol.probability_empty(), 1.0 - rho + 0.35);
}

INSTANTIATE_TEST_SUITE_P(Rho, ClusterSweep,
                         ::testing::Values(0.05, 0.15, 0.25, 0.4, 0.55, 0.65,
                                           0.75, 0.85, 0.92));

}  // namespace
}  // namespace performa::core
