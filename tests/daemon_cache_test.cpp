// Tests for performad's solution cache and crash-only journal: LRU
// eviction under a byte budget, journal record round-trips (bit-exact
// via hex-floats), corruption tolerance (CRC-dropped records, torn
// tails), later-records-win semantics, atomic compaction, and
// engine-level rehydration.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/cluster_model.h"
#include "daemon/cache.h"
#include "daemon/journal.h"
#include "daemon/query.h"
#include "linalg/errors.h"

namespace performa::daemon {
namespace {

class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/performad_cache_test_XXXXXX";
    dir_ = ::mkdtemp(pattern);
  }
  ~TempDir() {
    if (!dir_.empty()) {
      std::string cmd = "rm -rf '" + dir_ + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

/// A real solved model entry (exp repair solves in microseconds).
CachedSolution make_entry(double rho) {
  core::ClusterParams params;  // paper defaults, exponential repair
  const core::ClusterModel model(params);
  const double lambda = model.lambda_for_rho(rho);
  CachedSolution entry;
  entry.solution =
      std::make_shared<qbd::QbdSolution>(model.solve(lambda));
  entry.nu_bar = model.mean_service_rate();
  entry.availability = model.availability();
  entry.utilization = rho;
  entry.lambda = lambda;
  return entry;
}

TEST(SolutionCacheTest, HitRefreshesRecencyAndCountsStats) {
  SolutionCache cache(std::size_t{1} << 20);
  cache.put("a", make_entry(0.3));
  CachedSolution out;
  EXPECT_FALSE(cache.get("missing", out));
  EXPECT_TRUE(cache.get("a", out));
  ASSERT_NE(out.solution, nullptr);
  EXPECT_DOUBLE_EQ(out.utilization, 0.3);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(SolutionCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  const CachedSolution probe = make_entry(0.3);
  const std::size_t one = solution_footprint_bytes(probe, "k1");
  // Budget for two entries, not three.
  SolutionCache cache(2 * one + one / 2);
  cache.put("k1", make_entry(0.3));
  cache.put("k2", make_entry(0.4));
  CachedSolution out;
  ASSERT_TRUE(cache.get("k1", out));  // k1 becomes MRU; k2 is now LRU
  cache.put("k3", make_entry(0.5));  // must evict k2
  EXPECT_TRUE(cache.get("k1", out, /*count_stats=*/false));
  EXPECT_FALSE(cache.get("k2", out, /*count_stats=*/false));
  EXPECT_TRUE(cache.get("k3", out, /*count_stats=*/false));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SolutionCacheTest, OversizedSoleEntryIsStillAdmitted) {
  SolutionCache cache(16);  // absurdly small budget
  cache.put("big", make_entry(0.3));
  CachedSolution out;
  EXPECT_TRUE(cache.get("big", out, /*count_stats=*/false));
}

TEST(SolutionCacheTest, ShrinkingBudgetEvictsImmediately) {
  SolutionCache cache(std::size_t{1} << 20);
  cache.put("a", make_entry(0.3));
  cache.put("b", make_entry(0.4));
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.set_budget_bytes(16);
  EXPECT_EQ(cache.stats().entries, 1u);  // only the MRU survives
  CachedSolution out;
  EXPECT_TRUE(cache.get("b", out, /*count_stats=*/false));
}

TEST(JournalRecordTest, RoundTripsBitExactly) {
  const CachedSolution entry = make_entry(0.65);
  const std::string record = encode_journal_record("model-key", entry, 3);
  std::string key;
  CachedSolution decoded;
  ASSERT_TRUE(decode_journal_record(record, key, decoded));
  EXPECT_EQ(key, "model-key");
  EXPECT_EQ(decoded.nu_bar, entry.nu_bar);
  EXPECT_EQ(decoded.availability, entry.availability);
  EXPECT_EQ(decoded.utilization, entry.utilization);
  EXPECT_EQ(decoded.lambda, entry.lambda);
  ASSERT_NE(decoded.solution, nullptr);
  const qbd::QbdSolution& a = *entry.solution;
  const qbd::QbdSolution& b = *decoded.solution;
  ASSERT_EQ(a.phase_dim(), b.phase_dim());
  for (std::size_t i = 0; i < a.phase_dim(); ++i) {
    EXPECT_EQ(a.pi0()[i], b.pi0()[i]);  // bit-exact, not approximate
    EXPECT_EQ(a.pi1()[i], b.pi1()[i]);
    for (std::size_t j = 0; j < a.phase_dim(); ++j) {
      EXPECT_EQ(a.r()(i, j), b.r()(i, j));
    }
  }
  // Derived metrics reproduce exactly too.
  EXPECT_EQ(a.mean_queue_length(), b.mean_queue_length());
  EXPECT_EQ(a.tail(40), b.tail(40));
}

TEST(JournalRecordTest, CorruptedRecordsRejected) {
  const CachedSolution entry = make_entry(0.5);
  std::string record = encode_journal_record("k", entry, 0);
  std::string key;
  CachedSolution out;

  std::string flipped = record;
  flipped[record.size() / 2] ^= 1;  // payload bit flip -> CRC mismatch
  EXPECT_FALSE(decode_journal_record(flipped, key, out));

  // Torn tail (SIGKILL mid-write of a non-atomic writer).
  EXPECT_FALSE(
      decode_journal_record(record.substr(0, record.size() / 2), key, out));

  // Well-formed record but numerically nonsensical content: the
  // rehydration constructor's validation must reject it (here: a pi
  // pair that cannot normalize to a distribution).
  const linalg::Vector zero(entry.solution->phase_dim(), 0.0);
  EXPECT_THROW(qbd::QbdSolution(entry.solution->r(), zero, zero),
               NumericalError);
}

TEST(JournalTest, AppendLoadRoundTripAndLaterRecordsWin) {
  TempDir tmp;
  const std::string path = tmp.path("cache.journal");
  {
    CacheJournal journal(path, /*sync=*/false);
    journal.append("m1", make_entry(0.3));
    journal.append("m2", make_entry(0.5));
    journal.append("m1", make_entry(0.7));  // supersedes the first m1
  }
  const JournalLoad load = load_journal(path);
  EXPECT_EQ(load.records, 3u);
  EXPECT_EQ(load.dropped_records, 0u);
  ASSERT_EQ(load.entries.size(), 2u);
  EXPECT_EQ(load.entries[0].first, "m1");
  EXPECT_DOUBLE_EQ(load.entries[0].second.utilization, 0.7);  // later wins
  EXPECT_EQ(load.entries[1].first, "m2");
}

TEST(JournalTest, ToleratesTornTailAndGarbageLines) {
  TempDir tmp;
  const std::string path = tmp.path("cache.journal");
  {
    CacheJournal journal(path, /*sync=*/false);
    journal.append("good", make_entry(0.4));
  }
  {
    // Simulate a torn append and line noise after the good record.
    std::ofstream out(path, std::ios::app);
    out << "P deadbeef torn|record|that|never|finish";  // no newline
  }
  const JournalLoad load = load_journal(path);
  EXPECT_EQ(load.entries.size(), 1u);
  EXPECT_EQ(load.records, 1u);
  EXPECT_EQ(load.dropped_records, 1u);
}

TEST(JournalTest, MissingFileIsFirstBoot) {
  const JournalLoad load = load_journal("/tmp/does-not-exist-performad");
  EXPECT_TRUE(load.entries.empty());
  EXPECT_EQ(load.records, 0u);
}

TEST(JournalTest, ForeignFileRejected) {
  TempDir tmp;
  const std::string path = tmp.path("notes.txt");
  {
    std::ofstream out(path);
    out << "this is not a journal\n";
  }
  EXPECT_THROW(load_journal(path), InvalidArgument);
  EXPECT_THROW(CacheJournal(path, false), InvalidArgument);
}

TEST(JournalTest, CompactionKeepsOnlyTheSnapshot) {
  TempDir tmp;
  const std::string path = tmp.path("cache.journal");
  CacheJournal journal(path, /*sync=*/false);
  journal.append("a", make_entry(0.3));
  journal.append("a", make_entry(0.4));
  journal.append("b", make_entry(0.5));

  SolutionCache cache(std::size_t{1} << 20);
  cache.put("b", make_entry(0.5));
  journal.compact(cache.snapshot());

  const JournalLoad load = load_journal(path);
  ASSERT_EQ(load.entries.size(), 1u);
  EXPECT_EQ(load.entries[0].first, "b");
  EXPECT_EQ(load.dropped_records, 0u);

  // The journal keeps accepting appends on the compacted file.
  journal.append("c", make_entry(0.6));
  EXPECT_EQ(load_journal(path).entries.size(), 2u);
}

TEST(EngineRehydrationTest, RestartsWarmFromTheJournal) {
  TempDir tmp;
  EngineConfig config;
  config.journal_path = tmp.path("engine.journal");
  config.sync_journal = false;

  // First life: solve once (one miss), which journals the solution.
  {
    QueryEngine engine(config);
    engine.rehydrate();
    const std::string response =
        engine.handle_line(R"({"op":"mean","rho":0.6,"id":"cold"})");
    EXPECT_NE(response.find("\"cached\":false"), std::string::npos)
        << response;
  }

  // Second life (the process died; no compaction ran): the same query
  // must be a cache hit immediately -- zero solves.
  {
    QueryEngine engine(config);
    const JournalLoad load = engine.rehydrate();
    EXPECT_EQ(load.entries.size(), 1u);
    EXPECT_EQ(load.dropped_records, 0u);
    const std::string response =
        engine.handle_line(R"({"op":"mean","rho":0.6,"id":"warm"})");
    EXPECT_NE(response.find("\"cached\":true"), std::string::npos)
        << response;
    EXPECT_EQ(engine.stats().solves, 0u);
    EXPECT_GT(engine.cache().stats().hits, 0u);
  }
}

TEST(EngineTrustTest, ServedAnswersCarryTrustVerdict) {
  EngineConfig config;  // default policy: healthy solves certify
  QueryEngine engine(config);
  const std::string response =
      engine.handle_line(R"({"op":"mean","rho":0.6})");
  EXPECT_NE(response.find("\"trust\":\"certified\""), std::string::npos)
      << response;
  EXPECT_EQ(engine.stats().rejected, 0u);
}

TEST(EngineTrustTest, RejectedAnswerIsExplicitAndNeverCachedOrJournaled) {
  TempDir tmp;
  EngineConfig config;
  config.journal_path = tmp.path("trust.journal");
  config.sync_journal = false;
  // Impossible certified band with a rejection threshold below any
  // achievable residual: every solve is rejected after the ladder.
  config.trust.r_residual_certified = 1e-32;
  config.trust.r_residual_rejected = 1e-30;
  {
    QueryEngine engine(config);
    engine.rehydrate();
    const std::string response =
        engine.handle_line(R"({"op":"mean","rho":0.6,"id":"q1"})");
    // No stale fallback exists, so the refusal is an error response with
    // the explicit outcome and the trust evidence.
    EXPECT_NE(response.find("\"outcome\":\"rejected-answer\""),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("r-residual"), std::string::npos) << response;
    EXPECT_EQ(engine.stats().rejected, 1u);
    EXPECT_EQ(engine.stats().solve_failures, 0u);
    // The wrong answer must not have entered the cache...
    EXPECT_EQ(engine.cache().stats().entries, 0u);
  }
  // ...nor the journal: a fresh engine rehydrates to nothing.
  {
    QueryEngine engine(config);
    const JournalLoad load = engine.rehydrate();
    EXPECT_EQ(load.entries.size(), 0u);
    EXPECT_EQ(load.dropped_records, 0u);
  }
}

TEST(EngineTrustTest, StatsOpReportsRejections) {
  EngineConfig config;
  config.trust.r_residual_certified = 1e-32;
  config.trust.r_residual_rejected = 1e-30;
  QueryEngine engine(config);
  engine.handle_line(R"({"op":"mean","rho":0.5})");
  const std::string stats = engine.handle_line(R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"rejected\":1"), std::string::npos) << stats;
}

}  // namespace
}  // namespace performa::daemon
