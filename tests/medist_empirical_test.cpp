#include "medist/empirical.h"

#include <gtest/gtest.h>

#include <random>

#include "medist/sampler.h"
#include "test_util.h"

namespace performa::medist {
namespace {

using performa::testing::ExpectClose;

std::vector<double> Draw(const MeDistribution& dist, std::size_t n,
                         unsigned seed) {
  const PhaseSampler sampler(dist);
  std::mt19937_64 rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = sampler.sample(rng);
  return out;
}

TEST(SampleMoments, HandComputed) {
  const auto m = sample_moments({1.0, 2.0, 3.0});
  EXPECT_EQ(m.count, 3u);
  EXPECT_NEAR(m.m1, 2.0, 1e-14);
  EXPECT_NEAR(m.m2, 14.0 / 3.0, 1e-14);
  EXPECT_NEAR(m.m3, 36.0 / 3.0, 1e-14);
  EXPECT_NEAR(m.variance(), 2.0 / 3.0, 1e-13);
}

TEST(SampleMoments, Validation) {
  EXPECT_THROW(sample_moments({}), InvalidArgument);
  EXPECT_THROW(sample_moments({1.0, -2.0}), InvalidArgument);
  EXPECT_THROW(sample_moments({1.0, 0.0}), InvalidArgument);
}

TEST(FitHyp2Samples, RecoversGeneratingDistribution) {
  const double p1 = 0.85, r1 = 2.0, r2 = 0.05;
  const auto source = hyperexponential_dist(Vector{p1, 1.0 - p1},
                                            Vector{r1, r2});
  const auto samples = Draw(source, 400000, 11);
  const Hyp2Fit fit = fit_hyp2_samples(samples);
  EXPECT_NEAR(fit.p1, p1, 0.05);
  EXPECT_NEAR(fit.rate1, r1, 0.25);
  EXPECT_NEAR(fit.rate2, r2, 0.01);
  // Fitted distribution matches the sample mean closely.
  const auto m = sample_moments(samples);
  ExpectClose(fit.to_distribution().mean(), m.m1, 1e-9, "mean");
}

TEST(FitHyp2Samples, UnderdispersedSamplesRejected) {
  // Deterministic-ish sample: SCV ~ 0.
  std::vector<double> samples(1000, 1.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] += 1e-3 * static_cast<double>(i % 7);
  }
  EXPECT_THROW(fit_hyp2_samples(samples), NumericalError);
}

TEST(Hill, RecoversParetoExponent) {
  // Pure Pareto(alpha = 1.4): Hill is consistent.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> samples(200000);
  for (double& x : samples) x = std::pow(1.0 - uni(rng), -1.0 / 1.4);
  const double alpha = hill_tail_exponent(samples, 2000);
  EXPECT_NEAR(alpha, 1.4, 0.1);
}

TEST(Hill, ExponentialSamplesGiveLargeExponent) {
  // Light tails: the Hill estimate grows with the threshold -- far above
  // any heavy-tail range for a modest k.
  const auto samples = Draw(exponential_dist(1.0), 100000, 3);
  EXPECT_GT(hill_tail_exponent(samples, 500), 3.0);
}

TEST(Hill, Validation) {
  std::vector<double> samples{1.0, 2.0, 3.0};
  EXPECT_THROW(hill_tail_exponent(samples, 1), InvalidArgument);
  EXPECT_THROW(hill_tail_exponent(samples, 3), InvalidArgument);
  EXPECT_THROW(hill_tail_exponent(std::vector<double>(100, 2.5), 10),
               NumericalError);  // all ties: degenerate
}

TEST(FitTpt, PipelineRecoversAlphaAndMean) {
  // Generate from a TPT with a long power-law stretch; refit.
  const TptSpec truth{12, 1.4, 0.2, 10.0};
  const auto samples = Draw(make_tpt(truth), 400000, 17);
  const TptSpec fitted = fit_tpt_from_samples(samples, 12, 0.2, 1500);
  ExpectClose(fitted.mean, 10.0, 0.05, "mean");
  EXPECT_NEAR(fitted.alpha, 1.4, 0.35);  // Hill on a *truncated* tail
  // The refitted model must be usable downstream.
  EXPECT_NO_THROW(make_tpt(fitted));
}

// Property: sample moments converge to distribution moments.
class MomentConvergence : public ::testing::TestWithParam<MeDistribution> {};

TEST_P(MomentConvergence, FirstTwoMoments) {
  const auto& dist = GetParam();
  const auto samples = Draw(dist, 300000, 23);
  const auto m = sample_moments(samples);
  ExpectClose(m.m1, dist.moment(1), 0.03, "m1");
  ExpectClose(m.m2, dist.moment(2), 0.15, "m2");
}

INSTANTIATE_TEST_SUITE_P(
    Dists, MomentConvergence,
    ::testing::Values(exponential_dist(0.5), erlang_dist(4, 3.0),
                      hyperexponential_dist(Vector{0.6, 0.4},
                                            Vector{3.0, 0.3})));

}  // namespace
}  // namespace performa::medist
