#include "map/map_process.h"

#include <gtest/gtest.h>

#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::map {
namespace {

using medist::erlang_dist;
using medist::exponential_from_mean;
using medist::hyperexponential_dist;
using performa::testing::ExpectClose;

TEST(Map, PoissonBasics) {
  const Map m = poisson_map(3.0);
  EXPECT_EQ(m.dim(), 1u);
  EXPECT_NEAR(m.mean_rate(), 3.0, 1e-12);
  EXPECT_NEAR(m.interarrival_scv(), 1.0, 1e-10);
  EXPECT_NEAR(m.interarrival_correlation(1), 0.0, 1e-10);
  EXPECT_THROW(poisson_map(0.0), InvalidArgument);
}

TEST(Map, Validation) {
  // D1 negative entry.
  EXPECT_THROW(Map(linalg::Matrix{{-1.0}}, linalg::Matrix{{-1.0}}),
               InvalidArgument);
  // Row sums of D0+D1 not zero.
  EXPECT_THROW(Map(linalg::Matrix{{-2.0}}, linalg::Matrix{{1.0}}),
               InvalidArgument);
  // D0 off-diagonal negative.
  EXPECT_THROW(Map(linalg::Matrix{{-1.0, -0.5}, {0.0, -1.0}},
                   linalg::Matrix{{0.5, 1.0}, {1.0, 0.0}}),
               InvalidArgument);
  // Shape mismatch.
  EXPECT_THROW(Map(linalg::Matrix{{-1.0}}, linalg::Matrix(2, 2, 0.5)),
               InvalidArgument);
}

TEST(Map, ErlangRenewalProcess) {
  const Map m = renewal_map(erlang_dist(4, 2.0));
  EXPECT_EQ(m.dim(), 4u);
  EXPECT_NEAR(m.mean_rate(), 0.5, 1e-10);         // one event per 2.0
  EXPECT_NEAR(m.interarrival_scv(), 0.25, 1e-9);  // Erlang-4 SCV
  // Renewal process: no interarrival correlation.
  EXPECT_NEAR(m.interarrival_correlation(1), 0.0, 1e-9);
  EXPECT_NEAR(m.interarrival_correlation(3), 0.0, 1e-9);
}

TEST(Map, HyperexponentialRenewalScv) {
  const auto h = hyperexponential_dist(linalg::Vector{0.9, 0.1},
                                       linalg::Vector{2.0, 0.1});
  const Map m = renewal_map(h);
  ExpectClose(m.interarrival_scv(), h.scv(), 1e-8, "scv");
  EXPECT_NEAR(m.interarrival_correlation(1), 0.0, 1e-9);
}

TEST(Map, RenewalRequiresPhaseType) {
  // A (valid) ME distribution without PH sign structure cannot be turned
  // into a MAP by this construction. Build one with a negative off-diag
  // rate structure: use a matrix-exponential with oscillating density.
  // Simpler: verify the guard via a direct non-PH matrix.
  const linalg::Vector p{1.0, 0.0};
  const linalg::Matrix b{{2.0, 0.5}, {0.0, 1.0}};  // positive off-diagonal
  const medist::MeDistribution me(p, b, "non-ph");
  EXPECT_FALSE(me.is_phase_type());
  EXPECT_THROW(renewal_map(me), InvalidArgument);
}

TEST(Map, SingleOnOffSourceIsRenewal) {
  // An interrupted Poisson process (one ON/OFF source) is equivalent to a
  // hyperexponential renewal process: SCV > 1 but zero correlation.
  const ServerModel server(exponential_from_mean(90.0),
                           exponential_from_mean(10.0), 2.0, 0.0);
  const Map m = as_map(server.mmpp());
  ExpectClose(m.mean_rate(), server.mean_service_rate(), 1e-10, "rate");
  EXPECT_GT(m.interarrival_scv(), 1.0);
  EXPECT_NEAR(m.interarrival_correlation(1), 0.0, 1e-9);
}

TEST(Map, AggregatedMmppIsCorrelated) {
  // Two superposed ON/OFF sources are no longer renewal: positive,
  // decaying interarrival correlation.
  const ServerModel server(exponential_from_mean(90.0),
                           exponential_from_mean(10.0), 2.0, 0.0);
  const LumpedAggregate agg(server, 2);
  const Map m = as_map(agg.mmpp());
  ExpectClose(m.mean_rate(), agg.mmpp().mean_rate(), 1e-10, "rate");
  EXPECT_GT(m.interarrival_scv(), 1.0);
  EXPECT_GT(m.interarrival_correlation(1), 1e-4);
  EXPECT_GT(m.interarrival_correlation(1), m.interarrival_correlation(5));
}

TEST(Map, SuperpositionRatesAdd) {
  const Map a = poisson_map(1.0);
  const Map b = renewal_map(erlang_dist(2, 0.5));
  const Map s = superpose(a, b);
  EXPECT_EQ(s.dim(), 2u);
  ExpectClose(s.mean_rate(), a.mean_rate() + b.mean_rate(), 1e-9, "rate");
}

TEST(Map, SuperpositionOfPoissonIsPoisson) {
  const Map s = superpose(poisson_map(1.0), poisson_map(2.0));
  EXPECT_NEAR(s.mean_rate(), 3.0, 1e-12);
  EXPECT_NEAR(s.interarrival_scv(), 1.0, 1e-9);
  EXPECT_NEAR(s.interarrival_correlation(1), 0.0, 1e-9);
}

TEST(Map, CorrelationLagValidation) {
  EXPECT_THROW(poisson_map(1.0).interarrival_correlation(0),
               InvalidArgument);
}

// Property: renewal MAPs reproduce the SCV of their interarrival
// distribution and stay uncorrelated.
class RenewalMapProperty
    : public ::testing::TestWithParam<medist::MeDistribution> {};

TEST_P(RenewalMapProperty, ScvMatchesAndUncorrelated) {
  const auto& dist = GetParam();
  const Map m = renewal_map(dist);
  ExpectClose(m.mean_rate(), 1.0 / dist.mean(), 1e-8, "rate");
  ExpectClose(m.interarrival_scv(), dist.scv(), 1e-7, "scv");
  EXPECT_NEAR(m.interarrival_correlation(2), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Dists, RenewalMapProperty,
    ::testing::Values(medist::exponential_dist(0.7), erlang_dist(3, 1.5),
                      hyperexponential_dist(linalg::Vector{0.3, 0.7},
                                            linalg::Vector{0.5, 5.0}),
                      medist::make_tpt(medist::TptSpec{5, 1.4, 0.2, 2.0})));

}  // namespace
}  // namespace performa::map
