// ClusterSim with the shared repair facility (repair_crews / spares):
// random (c, s) configurations must agree with the level-dependent
// analytic model within simulator confidence intervals, fault injection
// must pile onto the finite repair queue, and pause/resume must stay
// bit-exact with the new state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

#include "map/repair_facility.h"
#include "medist/tpt.h"
#include "qbd/level_dependent.h"
#include "sim/cluster_sim.h"
#include "sim/random.h"
#include "test_util.h"

namespace performa::sim {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::MeDistribution;
using medist::TptSpec;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// One random facility configuration drawn from a per-case deterministic
// stream: cluster size, crew count, spares, repair-time variance and
// utilization all vary, so the sweep covers the (c, s) grid while every
// run reproduces bit-for-bit.
struct RandomFacilityCase {
  unsigned n = 0;
  unsigned crews = 0;
  unsigned spares = 0;
  double nu_p = 0.0;
  double delta = 0.0;
  double rho = 0.0;
  MeDistribution up;
  MeDistribution down;

  explicit RandomFacilityCase(unsigned seed)
      : up(exponential_from_mean(1.0)), down(exponential_from_mean(1.0)) {
    std::mt19937_64 rng(seed);
    auto uni = [&rng](double lo, double hi) {
      return std::uniform_real_distribution<double>(lo, hi)(rng);
    };
    n = static_cast<unsigned>(2 + rng() % 2);
    crews = static_cast<unsigned>(1 + rng() % 2);
    spares = static_cast<unsigned>(rng() % 3);
    const auto t_phases = static_cast<unsigned>(1 + rng() % 3);
    nu_p = uni(1.0, 3.0);
    delta = uni(0.1, 0.5);
    const double mttf = uni(30.0, 120.0);
    const double mttr = uni(2.0, 10.0);
    rho = uni(0.2, 0.55);
    up = exponential_from_mean(mttf);
    down = t_phases <= 1
               ? exponential_from_mean(mttr)
               : make_tpt(TptSpec{t_phases, uni(1.2, 1.8), 0.2, mttr});
  }
};

ClusterSimConfig FacilityConfig(const RandomFacilityCase& rc, double lambda) {
  ClusterSimConfig cfg;
  cfg.n_servers = rc.n;
  cfg.nu_p = rc.nu_p;
  cfg.delta = rc.delta;
  cfg.lambda = lambda;
  cfg.up = me_sampler(rc.up);
  cfg.down = me_sampler(rc.down);
  cfg.task_work = exponential_sampler(1.0);
  cfg.repair_crews = rc.crews;
  cfg.spares = rc.spares;
  cfg.cycles = 8000;
  cfg.warmup_cycles = 1000;
  return cfg;
}

class FacilityMatch : public ::testing::TestWithParam<unsigned> {};

TEST_P(FacilityMatch, SimAgreesWithLevelDependentAnalytic) {
  const RandomFacilityCase rc(GetParam());
  const map::RepairFacility fac(rc.up, rc.down, rc.nu_p, rc.delta, rc.n,
                                rc.crews, rc.spares);
  const double lambda = rc.rho * fac.mmpp().mean_rate();

  const qbd::LevelDependentSolution exact(
      qbd::repair_facility_level_dependent_blocks(fac, lambda));
  ASSERT_EQ(exact.trust().verdict, qbd::TrustVerdict::kCertified)
      << exact.trust().summary();
  const double analytic = exact.mean_queue_length();

  std::vector<double> estimates;
  for (std::size_t rep = 0; rep < 4; ++rep) {
    ClusterSimConfig cfg = FacilityConfig(rc, lambda);
    cfg.seed = derive_seed(3000 + GetParam(), rep);
    estimates.push_back(simulate_cluster(cfg).mean_queue_length);
  }
  const ReplicationSummary summary = summarize_replications(estimates);

  // 2 CI half-widths for sampling noise plus a relative allowance for the
  // task-migration idealization of the analytic dispatcher (the same
  // modeling gap the level-dependent integration test accepts).
  const double slack = 2.0 * summary.ci_halfwidth + 0.10 * (1.0 + analytic);
  EXPECT_LE(std::abs(analytic - summary.mean), slack)
      << "analytic=" << analytic << " sim=" << summary.mean
      << " ci=" << summary.ci_halfwidth << " n=" << rc.n << " c=" << rc.crews
      << " s=" << rc.spares << " rho=" << rc.rho;
}

INSTANTIATE_TEST_SUITE_P(TwelveRandomConfigs, FacilityMatch,
                         ::testing::Range(0u, 12u));

ClusterSimConfig BaseFacility() {
  ClusterSimConfig cfg;
  cfg.n_servers = 3;
  cfg.nu_p = 2.0;
  cfg.delta = 0.2;
  cfg.lambda = 1.5;
  cfg.up = exponential_sampler_mean(60.0);
  cfg.down = exponential_sampler_mean(8.0);
  cfg.repair_crews = 1;
  cfg.spares = 1;
  cfg.cycles = 3000;
  cfg.warmup_cycles = 300;
  cfg.seed = 11;
  return cfg;
}

TEST(SimRepairFacility, CountersTrackFacilityActivity) {
  const auto res = simulate_cluster(BaseFacility());
  EXPECT_GT(res.repairs_completed, 0u);
  EXPECT_GT(res.spare_swaps, 0u);
  EXPECT_EQ(res.cycles, 3000u);  // cycles count repair completions
}

TEST(SimRepairFacility, SerialRepairWorseThanIndependentAtHighVariance) {
  // TPT repairs (T = 5) through one crew vs. one crew per server: the
  // cross-validation half of the ext9 headline effect.
  const MeDistribution down = make_tpt(TptSpec{5, 1.4, 0.2, 10.0});
  ClusterSimConfig cfg = BaseFacility();
  cfg.n_servers = 2;
  cfg.lambda = 1.6;
  cfg.up = exponential_sampler_mean(90.0);
  cfg.down = me_sampler(down);
  cfg.spares = 0;
  cfg.cycles = 8000;
  cfg.warmup_cycles = 800;

  ClusterSimConfig serial = cfg;
  serial.repair_crews = 1;
  ClusterSimConfig parallel = cfg;
  parallel.repair_crews = 2;

  const ReplicationSummary slow = mean_queue_length_summary(serial, 5);
  const ReplicationSummary fast = mean_queue_length_summary(parallel, 5);
  EXPECT_GT(slow.mean - slow.ci_halfwidth, fast.mean - fast.ci_halfwidth)
      << "serial=" << slow.mean << "+-" << slow.ci_halfwidth
      << " parallel=" << fast.mean << "+-" << fast.ci_halfwidth;
}

TEST(SimRepairFacility, CommonModeCrashPilesOntoRepairQueue) {
  // A 3-server common-mode crash against a single crew: two units must
  // queue for repair, which the backlog counter records.
  ClusterSimConfig cfg = BaseFacility();
  cfg.spares = 0;
  cfg.delta = 0.2;
  cfg.up = exponential_sampler_mean(1e5);  // renewal failures negligible
  cfg.cycles = 3;                          // the 3 injected repairs
  cfg.warmup_cycles = 0;
  cfg.faults.crashes.push_back({50.0, 3});
  const auto res = simulate_cluster(cfg);
  EXPECT_EQ(res.injected_crashes, 3u);
  EXPECT_GE(res.max_repair_backlog, 2u);
  EXPECT_EQ(res.repairs_completed, 3u);
}

TEST(SimRepairFacility, RepairPreemptionAppliesToFacilityRepairs) {
  ClusterSimConfig cfg = BaseFacility();
  cfg.faults.repair_preemption = 0.4;
  const auto res = simulate_cluster(cfg);
  EXPECT_GT(res.repair_preemptions, 0u);
}

TEST(SimRepairFacility, PauseResumeBitIdenticalWithFacilityState) {
  ClusterSimConfig cfg = BaseFacility();
  cfg.cycles = 600;
  cfg.warmup_cycles = 60;

  const auto full = simulate_cluster(cfg);

  ClusterSimConfig head = cfg;
  head.pause_after_events = 5000;
  const auto paused = simulate_cluster(head);
  ASSERT_TRUE(paused.paused);
  ASSERT_NE(paused.state, nullptr);

  ClusterSimConfig tail = cfg;
  tail.resume_from = paused.state;
  const auto resumed = simulate_cluster(tail);

  EXPECT_TRUE(BitEqual(full.mean_queue_length, resumed.mean_queue_length));
  EXPECT_TRUE(BitEqual(full.sim_time, resumed.sim_time));
  EXPECT_EQ(full.events, resumed.events);
  EXPECT_EQ(full.repairs_completed, resumed.repairs_completed);
  EXPECT_EQ(full.spare_swaps, resumed.spare_swaps);
  EXPECT_EQ(full.max_repair_backlog, resumed.max_repair_backlog);
  EXPECT_EQ(full.final_rng_state, resumed.final_rng_state);
}

TEST(SimRepairFacility, ValidatesFacilityConfig) {
  ClusterSimConfig cfg = BaseFacility();
  cfg.repair_crews = 0;
  cfg.spares = 1;  // spares require a facility
  EXPECT_THROW(simulate_cluster(cfg), InvalidArgument);

  // A legacy snapshot cannot resume into a facility run.
  ClusterSimConfig legacy = BaseFacility();
  legacy.repair_crews = 0;
  legacy.spares = 0;
  legacy.pause_after_events = 500;
  const auto paused = simulate_cluster(legacy);
  ASSERT_TRUE(paused.paused);
  ClusterSimConfig mismatched = BaseFacility();
  mismatched.resume_from = paused.state;
  EXPECT_THROW(simulate_cluster(mismatched), InvalidArgument);
}

}  // namespace
}  // namespace performa::sim
