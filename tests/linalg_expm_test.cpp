#include "linalg/expm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/ctmc.h"
#include "linalg/lu.h"
#include "test_util.h"

namespace performa::linalg {
namespace {

using performa::testing::RandomGenerator;
using performa::testing::RandomMatrix;

TEST(Expm, ZeroMatrixGivesIdentity) {
  const Matrix e = expm(Matrix(3, 3, 0.0));
  EXPECT_LT(max_abs_diff(e, Matrix::identity(3)), 1e-15);
}

TEST(Expm, ScalarCase) {
  const Matrix e = expm(Matrix{{1.0}});
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  const Matrix big = expm(Matrix{{25.0}});  // forces squaring stage
  EXPECT_NEAR(big(0, 0) / std::exp(25.0), 1.0, 1e-11);
}

TEST(Expm, DiagonalMatrix) {
  const Matrix e = expm(Matrix::diag({-1.0, 0.0, 2.0}));
  EXPECT_NEAR(e(0, 0), std::exp(-1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-13);
  EXPECT_NEAR(e(2, 2), std::exp(2.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentClosedForm) {
  // exp([[0,1],[0,0]]) = [[1,1],[0,1]]
  const Matrix e = expm(Matrix{{0, 1}, {0, 0}});
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(Expm, RotationClosedForm) {
  // exp([[0,-t],[t,0]]) = rotation by t.
  const double t = 1.234;
  const Matrix e = expm(Matrix{{0, -t}, {t, 0}});
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-13);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-13);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-13);
}

TEST(Expm, InverseProperty) {
  const Matrix a = RandomMatrix(5, 77);
  EXPECT_LT(max_abs_diff(expm(a) * expm(-a), Matrix::identity(5)), 1e-10);
}

TEST(Expm, CommutingSumFactorizes) {
  // A and A^2 commute: exp(A + A^2)= exp(A) exp(A^2).
  const Matrix a = 0.5 * RandomMatrix(4, 21);
  const Matrix a2 = a * a;
  EXPECT_LT(max_abs_diff(expm(a + a2), expm(a) * expm(a2)), 1e-10);
}

TEST(Expm, GeneratorGivesStochasticMatrix) {
  const Matrix q = RandomGenerator(5, 99);
  for (double t : {0.1, 1.0, 10.0, 100.0}) {
    const Matrix p = expm(t * q);
    EXPECT_TRUE(is_stochastic(p, 1e-8)) << "t=" << t;
  }
}

TEST(Expm, LongHorizonConvergesToStationary) {
  const Matrix q = RandomGenerator(4, 3);
  const Vector pi = stationary_distribution(q);
  const Matrix p = expm(1e4 * q);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(p(r, c), pi[c], 1e-8) << r << "," << c;
    }
  }
}

TEST(Expm, RejectsNonSquare) {
  EXPECT_THROW(expm(Matrix(2, 3)), InvalidArgument);
}

// Property: semigroup law exp(2A) = exp(A)^2 across sizes/scales.
struct ExpmCase {
  std::size_t n;
  double scale;
};

class ExpmProperty : public ::testing::TestWithParam<ExpmCase> {};

TEST_P(ExpmProperty, SemigroupLaw) {
  const auto [n, scale] = GetParam();
  const Matrix a = scale * RandomMatrix(n, static_cast<unsigned>(n + 7));
  const Matrix once = expm(a);
  const Matrix twice = expm(2.0 * a);
  const double tol = 1e-9 * std::max(1.0, norm_inf(twice));
  EXPECT_LT(max_abs_diff(twice, once * once), tol);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExpmProperty,
                         ::testing::Values(ExpmCase{2, 0.1}, ExpmCase{2, 5.0},
                                           ExpmCase{4, 1.0}, ExpmCase{6, 3.0},
                                           ExpmCase{8, 0.5},
                                           ExpmCase{10, 2.0}));

}  // namespace
}  // namespace performa::linalg
