// Matrix-free Kronecker-sum equivalence harness.
//
// The matrix-free kernels (linalg::kron_sum_apply and the KronMmpp view
// over them) must agree with the materialized Kronecker sums they
// replace: same vectors, same rates, same stationary phases, and --
// through qbd::m_mmpp_1_kron -- the same solved queue. Every check runs
// against random MAP generators for N = 2..5 factors, where the
// materialized operator is still small enough to build as the oracle.
#include "map/kron_aggregate.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "linalg/kron.h"
#include "medist/me_dist.h"
#include "medist/tpt.h"
#include "qbd/qbd.h"
#include "qbd/rsolver.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::map {
namespace {

using linalg::Matrix;
using linalg::Vector;
using performa::testing::ExpectClose;

// Random conservative generator: the phase process of a random MAP.
Matrix RandomGenerator(std::size_t m, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.05, 2.0);
  Matrix q(m, m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < m; ++c) {
      if (r == c) continue;
      q(r, c) = uni(rng);
      total += q(r, c);
    }
    q(r, r) = -total;
  }
  return q;
}

Vector RandomVector(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Vector v(n);
  for (double& x : v) x = uni(rng);
  return v;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

TEST(KronSumApply, MatchesMaterializedPowerForN2to5) {
  for (std::size_t n = 2; n <= 5; ++n) {
    for (const std::size_t m : {2u, 3u}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " m=" + std::to_string(m));
      const Matrix q =
          RandomGenerator(m, static_cast<unsigned>(100 * n + m));
      const Matrix big = linalg::kron_sum_power(q, n);
      const Vector v =
          RandomVector(big.rows(), static_cast<unsigned>(10 * n + m));

      const Vector direct = big * v;
      const Vector free = linalg::kron_sum_apply(q, n, v);
      // The walkers accumulate per-factor instead of per-row, so results
      // agree to rounding, not bitwise; entries are O(1), hence 1e-12.
      EXPECT_LE(MaxAbsDiff(direct, free), 1e-12);

      const Vector direct_left = v * big;
      const Vector free_left = linalg::kron_sum_apply_left(q, n, v);
      EXPECT_LE(MaxAbsDiff(direct_left, free_left), 1e-12);
    }
  }
}

TEST(KronSumApply, HeterogeneousFactorsMatchMaterializedSum) {
  // Mixed factor sizes 2, 3, 2: dim 12; fold kron_sum pairwise to get
  // the dense oracle.
  const Matrix a = RandomGenerator(2, 21);
  const Matrix b = RandomGenerator(3, 22);
  const Matrix c = RandomGenerator(2, 23);
  const Matrix big = linalg::kron_sum(linalg::kron_sum(a, b), c);
  const Vector v = RandomVector(big.rows(), 24);

  const Vector free = linalg::kron_sum_apply({a, b, c}, v);
  EXPECT_LE(MaxAbsDiff(big * v, free), 1e-12);

  const Vector free_left = linalg::kron_sum_apply_left({a, b, c}, v);
  EXPECT_LE(MaxAbsDiff(v * big, free_left), 1e-12);
}

TEST(KronSumApply, MatrixRowsApplyLikeVectors) {
  const Matrix q = RandomGenerator(3, 31);
  const std::size_t n = 3;
  const Matrix big = linalg::kron_sum_power(q, n);
  Matrix x(5, big.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    x.set_row(r, RandomVector(big.rows(), 40 + static_cast<unsigned>(r)));
  }
  const Matrix y = linalg::kron_sum_apply_left(q, n, x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    const Vector want = linalg::kron_sum_apply_left(q, n, x.row(r));
    EXPECT_LE(MaxAbsDiff(want, y.row(r)), 0.0)
        << "matrix path must reuse the vector walker bit-for-bit";
  }
}

TEST(KronSumApply, ShapeMismatchThrows) {
  const Matrix q = RandomGenerator(2, 51);
  EXPECT_THROW(linalg::kron_sum_apply(q, 3, Vector(4)),
               InvalidArgument);
  EXPECT_THROW(linalg::kron_sum_apply({}, Vector(4)),
               InvalidArgument);
  EXPECT_THROW(linalg::kron_sum_apply(Matrix(2, 3), 2, Vector(4)),
               InvalidArgument);
}

ServerModel TestServer(unsigned t_phases) {
  return ServerModel(medist::exponential_from_mean(90.0),
                     t_phases <= 1
                         ? medist::exponential_from_mean(10.0)
                         : medist::make_tpt(
                               medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                     2.0, 0.2);
}

TEST(KronMmpp, AgreesWithMaterializedAggregate) {
  for (const unsigned n : {2u, 3u, 4u}) {
    SCOPED_TRACE("N=" + std::to_string(n));
    const ServerModel server = TestServer(2);
    const KronMmpp cluster(server, n);
    const Mmpp dense = kron_aggregate(server, n);

    ASSERT_EQ(cluster.dim(), dense.dim());
    EXPECT_LE(MaxAbsDiff(cluster.rate_vector(), dense.rates()), 1e-12);
    for (std::size_t s = 0; s < cluster.dim(); s += 7) {
      ExpectClose(cluster.rate(s), dense.rates()[s], 1e-13, "rate(s)");
    }
    ExpectClose(cluster.mean_rate(), dense.mean_rate(), 1e-10, "mean_rate");

    // Operator action against the dense generator.
    const Vector v = RandomVector(cluster.dim(), 60 + n);
    EXPECT_LE(MaxAbsDiff(cluster.apply(v), dense.generator() * v), 1e-10);
    EXPECT_LE(MaxAbsDiff(cluster.apply_left(v),
                         v * dense.generator()),
              1e-10);

    // Product-form stationary phases vs the GTH elimination on the full
    // m^N-state chain.
    EXPECT_LE(MaxAbsDiff(cluster.stationary(), dense.stationary_phases()),
              1e-10);

    // materialize() must reproduce the kron_aggregate construction.
    const Mmpp mat = cluster.materialize();
    EXPECT_LE(MaxAbsDiff(mat.rates(), dense.rates()), 1e-12);
    double worst = 0.0;
    for (std::size_t i = 0; i < mat.generator().data().size(); ++i) {
      worst = std::max(worst, std::abs(mat.generator().data()[i] -
                                       dense.generator().data()[i]));
    }
    EXPECT_LE(worst, 1e-12);
  }
}

TEST(KronMmpp, StateOutOfRangeThrows) {
  const KronMmpp cluster(TestServer(1), 2);
  EXPECT_THROW(cluster.rate(cluster.dim()), InvalidArgument);
}

TEST(KronQbd, StructuredBlocksSolveLikeDenseBlocks) {
  // m_mmpp_1_kron carries the structure certificate; the answer must not
  // depend on whether the solver exploits it.
  const ServerModel server = TestServer(2);
  for (const unsigned n : {2u, 3u}) {
    SCOPED_TRACE("N=" + std::to_string(n));
    const KronMmpp cluster(server, n);
    const double lambda = 0.6 * cluster.mean_rate();

    const qbd::QbdSolution structured(qbd::m_mmpp_1_kron(cluster, lambda));
    const qbd::QbdSolution dense(
        qbd::m_mmpp_1(cluster.materialize(), lambda));

    ExpectClose(structured.mean_queue_length(), dense.mean_queue_length(),
                1e-9, "E[Q]");
    ExpectClose(structured.probability_empty(), dense.probability_empty(),
                1e-9, "P(empty)");
    ExpectClose(structured.tail(50), dense.tail(50), 1e-8, "tail(50)");
    EXPECT_EQ(structured.trust().verdict, qbd::TrustVerdict::kCertified);
  }
}

TEST(KronQbd, ResidualNormMatchesDensePath) {
  // The kron fast path in r_residual_norm rewrites A0 + R A1 + R^2 A2
  // using Q_N matrix-free; the value must match the dense formula on the
  // same R to tight tolerance (same quantities, different grouping).
  const ServerModel server = TestServer(2);
  const KronMmpp cluster(server, 3);
  const double lambda = 0.55 * cluster.mean_rate();

  qbd::QbdBlocks structured = qbd::m_mmpp_1_kron(cluster, lambda);
  qbd::QbdBlocks dense = structured;
  dense.phase_kron = nullptr;  // strip the certificate: dense path

  const auto result = qbd::solve_r(structured, qbd::SolverOptions{});
  const double via_kron = qbd::r_residual_norm(structured, result.r);
  const double via_dense = qbd::r_residual_norm(dense, result.r);
  // The residual of a converged R is pure cancellation noise (~1e-16),
  // so the two groupings agree only in absolute terms: both must report
  // "converged", and their gap must sit at rounding level.
  EXPECT_LE(via_kron, 1e-10);
  EXPECT_LE(via_dense, 1e-10);
  EXPECT_LE(std::abs(via_kron - via_dense), 1e-12);
}

TEST(KronQbd, UtilizationUsesProductFormAndMatchesDense) {
  const ServerModel server = TestServer(2);
  const KronMmpp cluster(server, 3);
  const double lambda = 0.5 * cluster.mean_rate();

  const qbd::QbdBlocks structured = qbd::m_mmpp_1_kron(cluster, lambda);
  qbd::QbdBlocks dense = structured;
  dense.phase_kron = nullptr;

  ExpectClose(qbd::utilization(structured), qbd::utilization(dense), 1e-10,
              "utilization");
}

}  // namespace
}  // namespace performa::map
