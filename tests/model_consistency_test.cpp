// Cross-cutting consistency sweep: for a grid of cluster configurations,
// every layer of the stack must agree with every other. These invariants
// are the contract a downstream user relies on; each one failed at least
// conceptually during development of some queueing library somewhere.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/tpt.h"
#include "qbd/finite.h"
#include "test_util.h"

namespace performa {
namespace {

using performa::testing::ExpectClose;

struct GridCase {
  unsigned n_servers;
  unsigned t_phases;
  double delta;
  double rho;
};

std::ostream& operator<<(std::ostream& os, const GridCase& c) {
  return os << "N=" << c.n_servers << " T=" << c.t_phases
            << " delta=" << c.delta << " rho=" << c.rho;
}

class ModelConsistency : public ::testing::TestWithParam<GridCase> {
 protected:
  core::ClusterModel MakeModel() const {
    const auto& c = GetParam();
    core::ClusterParams p;
    p.n_servers = c.n_servers;
    p.delta = c.delta;
    p.down = medist::make_tpt(medist::TptSpec{c.t_phases, 1.4, 0.2, 10.0});
    return core::ClusterModel(std::move(p));
  }
};

TEST_P(ModelConsistency, StationarySolutionInvariants) {
  const auto model = MakeModel();
  const double rho = GetParam().rho;
  const auto sol = model.solve(model.lambda_for_rho(rho));

  // Probabilities in range and normalized.
  EXPECT_GT(sol.probability_empty(), 0.0);
  EXPECT_LT(sol.probability_empty(), 1.0);
  const auto pmf = sol.pmf_upto(300);
  double mass = 0.0;
  for (double x : pmf) {
    EXPECT_GE(x, -1e-12);
    mass += x;
  }
  ExpectClose(mass + sol.tail(301), 1.0, 1e-8, "normalization");

  // Tails monotone nonincreasing.
  double prev = 1.0;
  for (std::size_t k : {1u, 2u, 5u, 20u, 100u, 400u}) {
    const double t = sol.tail(k);
    EXPECT_LE(t, prev + 1e-12) << k;
    prev = t;
  }

  // Phase marginal equals the modulating-process stationary vector.
  const auto marginal = sol.phase_marginal();
  const auto pi = model.aggregate().mmpp().stationary_phases();
  EXPECT_LT(linalg::max_abs_diff(marginal, pi), 1e-8);

  // Mean from the pmf (single iterative sweep; adapt the horizon to the
  // decay rate so the truncated mass stays negligible).
  const double sp = sol.decay_rate();
  const std::size_t k_max =
      sp > 0.999 ? 400000 : (sp > 0.99 ? 40000 : 4000);
  const auto full_pmf = sol.pmf_upto(k_max);
  double mean = 0.0;
  for (std::size_t k = 1; k <= k_max; ++k) {
    mean += static_cast<double>(k) * full_pmf[k];
  }
  if (sol.tail(k_max) < 1e-10) {
    ExpectClose(mean, sol.mean_queue_length(), 1e-4, "pmf mean");
  }

  // Never better than M/M/1 at the same utilization.
  EXPECT_GT(sol.mean_queue_length(),
            core::mm1::mean_queue_length(rho) * 0.95);

  // Decay rate strictly inside (0, 1).
  EXPECT_GT(sp, 0.0);
  EXPECT_LT(sp, 1.0 + 1e-9);
}

TEST_P(ModelConsistency, LoadDependentDominatesLoadIndependent) {
  const auto model = MakeModel();
  const double rho = GetParam().rho;
  const double lambda = model.lambda_for_rho(rho);
  const double li = model.solve(lambda).mean_queue_length();
  const double ld = model.solve_load_dependent(lambda).mean_queue_length();
  EXPECT_GE(ld, li - 1e-9);
  // And the gap is bounded by roughly the N tasks the boundary affects.
  EXPECT_LT(ld - li, static_cast<double>(GetParam().n_servers) + 1.0);
}

TEST_P(ModelConsistency, FiniteBufferConvergesFromBelow) {
  const auto model = MakeModel();
  const double rho = GetParam().rho;
  if (rho > 0.65 && GetParam().t_phases >= 9) {
    GTEST_SKIP() << "blow-up regime needs enormous buffers to converge";
  }
  if (model.aggregate().state_count() > 30) {
    GTEST_SKIP() << "large phase space: covered by qbd_finite_test";
  }
  const auto blocks =
      qbd::m_mmpp_1(model.aggregate().mmpp(), model.lambda_for_rho(rho));
  const double infinite = qbd::QbdSolution(blocks).mean_queue_length();
  double prev = 0.0;
  for (std::size_t cap : {50u, 200u, 800u}) {
    const double finite =
        qbd::FiniteQbdSolution(blocks, cap).mean_queue_length();
    EXPECT_GE(finite, prev - 1e-9) << cap;       // monotone in K
    EXPECT_LE(finite, infinite + 1e-6) << cap;   // from below
    prev = finite;
  }
  ExpectClose(prev, infinite, 0.05, "K=800 vs infinite");
}

TEST_P(ModelConsistency, BlowupRegionPredictsTailBehaviour) {
  const auto model = MakeModel();
  const auto& c = GetParam();
  const unsigned region = core::blowup_region(model.blowup_params(), c.rho);
  const auto sol = model.solve(model.lambda_for_rho(c.rho));
  if (region == 0 && c.rho < 0.5) {
    // Insensitive region: tail decays geometrically fast; Pr(Q>=400)
    // should be astronomically small.
    EXPECT_LT(sol.tail(400), 1e-12);
  }
  if (region == 1 && c.t_phases >= 9 && c.rho > 0.65) {
    // Deep blow-up: heavy tail clearly visible.
    EXPECT_GT(sol.tail(400), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelConsistency,
    ::testing::Values(GridCase{1, 2, 0.2, 0.5}, GridCase{2, 1, 0.2, 0.3},
                      GridCase{2, 2, 0.0, 0.5}, GridCase{2, 5, 0.2, 0.1},
                      GridCase{2, 5, 0.2, 0.7}, GridCase{2, 9, 0.2, 0.4},
                      GridCase{2, 9, 0.2, 0.7}, GridCase{2, 10, 0.2, 0.85},
                      GridCase{3, 2, 0.2, 0.6}, GridCase{3, 5, 0.0, 0.4},
                      GridCase{4, 2, 0.5, 0.7}, GridCase{5, 2, 0.2, 0.5}));

}  // namespace
}  // namespace performa
