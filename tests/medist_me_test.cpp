#include "medist/me_dist.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace performa::medist {
namespace {

using performa::testing::ExpectClose;

TEST(Exponential, MomentsClosedForm) {
  const MeDistribution d = exponential_dist(2.0);
  EXPECT_NEAR(d.mean(), 0.5, 1e-14);
  EXPECT_NEAR(d.moment(2), 2.0 * 0.25, 1e-14);  // E[X^2] = 2/rate^2
  EXPECT_NEAR(d.moment(3), 6.0 * 0.125, 1e-14);
  EXPECT_NEAR(d.variance(), 0.25, 1e-14);
  EXPECT_NEAR(d.scv(), 1.0, 1e-12);
}

TEST(Exponential, CdfAndDensity) {
  const MeDistribution d = exponential_dist(0.5);
  for (double t : {0.0, 0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(d.reliability(t), std::exp(-0.5 * t), 1e-12) << t;
    EXPECT_NEAR(d.density(t), 0.5 * std::exp(-0.5 * t), 1e-12) << t;
  }
  EXPECT_THROW(d.reliability(-1.0), InvalidArgument);
}

TEST(Exponential, FromMean) {
  EXPECT_NEAR(exponential_from_mean(4.0).mean(), 4.0, 1e-13);
  EXPECT_THROW(exponential_from_mean(0.0), InvalidArgument);
  EXPECT_THROW(exponential_dist(-1.0), InvalidArgument);
}

TEST(Erlang, MomentsClosedForm) {
  // Erlang-k, mean m: variance m^2/k, SCV 1/k.
  const MeDistribution d = erlang_dist(4, 2.0);
  EXPECT_NEAR(d.mean(), 2.0, 1e-13);
  EXPECT_NEAR(d.variance(), 4.0 / 4.0, 1e-12);
  EXPECT_NEAR(d.scv(), 0.25, 1e-12);
}

TEST(Erlang, ReliabilityClosedForm) {
  // Erlang-2 with rate r per stage: R(t) = e^{-rt}(1 + rt).
  const MeDistribution d = erlang_dist(2, 1.0);  // stage rate 2
  const double r = 2.0;
  for (double t : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(d.reliability(t), std::exp(-r * t) * (1.0 + r * t), 1e-11)
        << t;
  }
}

TEST(Erlang, DegenerateIsExponential) {
  const MeDistribution d = erlang_dist(1, 3.0);
  EXPECT_NEAR(d.scv(), 1.0, 1e-12);
}

TEST(Hyperexponential, MomentsClosedForm) {
  const Vector probs{0.4, 0.6};
  const Vector rates{1.0, 5.0};
  const MeDistribution d = hyperexponential_dist(probs, rates);
  const double m1 = 0.4 / 1.0 + 0.6 / 5.0;
  const double m2 = 2.0 * (0.4 / 1.0 + 0.6 / 25.0);
  EXPECT_NEAR(d.mean(), m1, 1e-13);
  EXPECT_NEAR(d.moment(2), m2, 1e-13);
  EXPECT_GT(d.scv(), 1.0);  // hyperexponentials are over-dispersed
}

TEST(Hyperexponential, ReliabilityIsMixture) {
  const MeDistribution d =
      hyperexponential_dist(Vector{0.3, 0.7}, Vector{0.1, 2.0});
  for (double t : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(d.reliability(t),
                0.3 * std::exp(-0.1 * t) + 0.7 * std::exp(-2.0 * t), 1e-11)
        << t;
  }
}

TEST(Hyperexponential, Validation) {
  EXPECT_THROW(hyperexponential_dist(Vector{0.5, 0.4}, Vector{1.0, 2.0}),
               InvalidArgument);  // probs don't sum to 1
  EXPECT_THROW(hyperexponential_dist(Vector{0.5, 0.5}, Vector{1.0, -2.0}),
               InvalidArgument);  // negative rate
  EXPECT_THROW(hyperexponential_dist(Vector{1.0}, Vector{1.0, 2.0}),
               InvalidArgument);  // length mismatch
}

TEST(MeDistribution, ConstructionValidation) {
  EXPECT_THROW(MeDistribution(Vector{}, Matrix{{1.0}}), InvalidArgument);
  EXPECT_THROW(MeDistribution(Vector{1.0}, Matrix(2, 2, 1.0)),
               InvalidArgument);
  EXPECT_THROW(MeDistribution(Vector{0.5, 0.6}, Matrix::identity(2)),
               InvalidArgument);
  EXPECT_THROW(MeDistribution(Vector{-0.5, 1.5}, Matrix::identity(2)),
               InvalidArgument);
}

TEST(MeDistribution, ScaledToMean) {
  const MeDistribution d =
      hyperexponential_dist(Vector{0.2, 0.8}, Vector{0.5, 4.0});
  const MeDistribution s = d.scaled_to_mean(10.0);
  EXPECT_NEAR(s.mean(), 10.0, 1e-11);
  // Scaling preserves the SCV (shape).
  ExpectClose(s.scv(), d.scv(), 1e-10, "scv");
  EXPECT_THROW(d.scaled_to_mean(-2.0), InvalidArgument);
}

TEST(MeDistribution, PhaseTypeDetection) {
  EXPECT_TRUE(exponential_dist(1.0).is_phase_type());
  EXPECT_TRUE(erlang_dist(3, 1.0).is_phase_type());
  EXPECT_TRUE(
      hyperexponential_dist(Vector{0.5, 0.5}, Vector{1.0, 2.0}).is_phase_type());
}

TEST(MeDistribution, ExitRatesOfErlang) {
  // Only the last Erlang stage exits.
  const MeDistribution d = erlang_dist(3, 1.0);
  const Vector exits = d.exit_rates();
  EXPECT_NEAR(exits[0], 0.0, 1e-14);
  EXPECT_NEAR(exits[1], 0.0, 1e-14);
  EXPECT_NEAR(exits[2], 3.0, 1e-14);
}

TEST(MeDistribution, MomentZeroRejected) {
  const MeDistribution d = exponential_dist(1.0);
  EXPECT_THROW(d.moment(0), InvalidArgument);
}

TEST(MeDistribution, DensityIntegratesToCdf) {
  // Midpoint-rule integral of the density matches the CDF increment.
  const MeDistribution d = erlang_dist(2, 1.0);
  const double a = 0.5, b = 1.5;
  const int steps = 2000;
  double integral = 0.0;
  const double h = (b - a) / steps;
  for (int i = 0; i < steps; ++i) {
    integral += d.density(a + (i + 0.5) * h) * h;
  }
  EXPECT_NEAR(integral, d.cdf(b) - d.cdf(a), 1e-6);
}

// Property sweep: cross-check moments against numerical integration of the
// reliability function: E[X^k] = k int_0^inf t^{k-1} R(t) dt.
class MomentIntegralProperty
    : public ::testing::TestWithParam<MeDistribution> {};

TEST_P(MomentIntegralProperty, FirstTwoMomentsMatchIntegral) {
  const MeDistribution& d = GetParam();
  const double horizon = 60.0 * d.mean();
  const int steps = 60000;
  const double h = horizon / steps;
  double m1 = 0.0, m2 = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t = (i + 0.5) * h;
    const double r = d.reliability(t);
    m1 += r * h;
    m2 += 2.0 * t * r * h;
  }
  ExpectClose(m1, d.mean(), 5e-3, "mean");
  ExpectClose(m2, d.moment(2), 5e-3, "second moment");
}

INSTANTIATE_TEST_SUITE_P(
    Dists, MomentIntegralProperty,
    ::testing::Values(exponential_dist(1.0), erlang_dist(3, 2.0),
                      hyperexponential_dist(Vector{0.9, 0.1},
                                            Vector{2.0, 0.25})));

}  // namespace
}  // namespace performa::medist
