#include <gtest/gtest.h>

#include <algorithm>

#include "linalg/ctmc.h"
#include "map/kron_aggregate.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::map {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

ServerModel PaperServer(unsigned t_phases) {
  return ServerModel(exponential_from_mean(90.0),
                     make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0}), 2.0, 0.2);
}

TEST(KronAggregate, StateCountIsPower) {
  const ServerModel s = PaperServer(3);
  EXPECT_EQ(kron_state_count(s, 2), 16u);  // (3+1)^2
  EXPECT_EQ(kron_aggregate(s, 2).dim(), 16u);
}

TEST(KronAggregate, SingleServerIsIdentity) {
  const ServerModel s = PaperServer(4);
  const Mmpp agg = kron_aggregate(s, 1);
  EXPECT_LT(linalg::max_abs_diff(agg.generator(), s.mmpp().generator()),
            1e-14);
  EXPECT_LT(linalg::max_abs_diff(agg.rates(), s.mmpp().rates()), 1e-14);
}

TEST(KronAggregate, MeanRateScalesLinearly) {
  const ServerModel s = PaperServer(2);
  const double one = s.mean_service_rate();
  for (unsigned n : {1u, 2u, 3u}) {
    ExpectClose(kron_aggregate(s, n).mean_rate(), n * one, 1e-9, "mean rate");
  }
}

TEST(KronAggregate, GeneratorValid) {
  const ServerModel s = PaperServer(2);
  EXPECT_TRUE(linalg::is_generator(kron_aggregate(s, 3).generator()));
}

TEST(LumpedAggregate, StateCountFormula) {
  EXPECT_EQ(lumped_state_count(2, 5), 6u);    // C(6,1)
  EXPECT_EQ(lumped_state_count(3, 5), 21u);   // C(7,2)
  EXPECT_EQ(lumped_state_count(11, 2), 66u);  // C(12,10)
  EXPECT_EQ(lumped_state_count(1, 9), 1u);

  const ServerModel s = PaperServer(10);
  const LumpedAggregate agg(s, 2);
  EXPECT_EQ(agg.state_count(), lumped_state_count(s.dim(), 2));
}

TEST(LumpedAggregate, OccupanciesSumToN) {
  const ServerModel s = PaperServer(3);
  const LumpedAggregate agg(s, 4);
  for (std::size_t i = 0; i < agg.state_count(); ++i) {
    unsigned total = 0;
    for (unsigned c : agg.occupancy(i)) total += c;
    EXPECT_EQ(total, 4u);
  }
}

TEST(LumpedAggregate, IndexRoundTrip) {
  const ServerModel s = PaperServer(2);
  const LumpedAggregate agg(s, 3);
  for (std::size_t i = 0; i < agg.state_count(); ++i) {
    EXPECT_EQ(agg.index_of(agg.occupancy(i)), i);
  }
  EXPECT_THROW(agg.index_of(Occupancy{1, 1}), InvalidArgument);
  EXPECT_THROW(agg.index_of(Occupancy{5, 0, 0}), InvalidArgument);
}

TEST(LumpedAggregate, GeneratorValid) {
  const ServerModel s = PaperServer(5);
  const LumpedAggregate agg(s, 3);
  EXPECT_TRUE(linalg::is_generator(agg.mmpp().generator()));
}

TEST(LumpedAggregate, MeanRateMatchesKron) {
  const ServerModel s = PaperServer(3);
  for (unsigned n : {1u, 2u, 3u}) {
    ExpectClose(LumpedAggregate(s, n).mmpp().mean_rate(),
                kron_aggregate(s, n).mean_rate(), 1e-9, "mean rate");
  }
}

TEST(LumpedAggregate, UpCountDistributionIsBinomialForExpPhases) {
  // With 1-phase UP and 1-phase DOWN, the N servers are independent
  // Bernoulli(A) in steady state.
  const ServerModel s(exponential_from_mean(90.0), exponential_from_mean(10.0),
                      1.0, 0.0);
  const unsigned n = 4;
  const LumpedAggregate agg(s, n);
  const auto dist = agg.up_count_distribution();
  const double a = 0.9;
  for (unsigned k = 0; k <= n; ++k) {
    double binom = 1.0;
    for (unsigned j = 0; j < k; ++j) binom = binom * (n - j) / (j + 1);
    const double expected =
        binom * std::pow(a, k) * std::pow(1.0 - a, static_cast<int>(n - k));
    EXPECT_NEAR(dist[k], expected, 1e-10) << "k=" << k;
  }
}

TEST(LumpedAggregate, StationaryPhaseMassMatchesKronMarginals) {
  // Aggregate per-phase stationary mass must agree between the lumped and
  // the full Kronecker representation.
  const ServerModel s = PaperServer(2);
  const unsigned n = 2;
  const std::size_t m = s.dim();

  const Mmpp kron = kron_aggregate(s, n);
  const auto pi_kron = kron.stationary_phases();
  // Expected occupancy counts from the kron chain.
  linalg::Vector phase_mass_kron(m, 0.0);
  for (std::size_t idx = 0; idx < pi_kron.size(); ++idx) {
    std::size_t rem = idx;
    for (unsigned srv = 0; srv < n; ++srv) {
      const std::size_t phase = rem % m;
      rem /= m;
      phase_mass_kron[phase] += pi_kron[idx];
    }
  }

  const LumpedAggregate lumped(s, n);
  const auto pi_lumped = lumped.mmpp().stationary_phases();
  linalg::Vector phase_mass_lumped(m, 0.0);
  for (std::size_t i = 0; i < lumped.state_count(); ++i) {
    const auto& occ = lumped.occupancy(i);
    for (std::size_t ph = 0; ph < m; ++ph) {
      phase_mass_lumped[ph] += pi_lumped[i] * occ[ph];
    }
  }
  EXPECT_LT(linalg::max_abs_diff(phase_mass_kron, phase_mass_lumped), 1e-10);
}

TEST(HeterogeneousAggregate, IdenticalServersMatchKron) {
  const ServerModel s = PaperServer(2);
  const Mmpp hetero = heterogeneous_aggregate({s, s, s});
  const Mmpp kron = kron_aggregate(s, 3);
  EXPECT_LT(linalg::max_abs_diff(hetero.generator(), kron.generator()),
            1e-12);
  EXPECT_LT(linalg::max_abs_diff(hetero.rates(), kron.rates()), 1e-12);
}

TEST(HeterogeneousAggregate, MixedClusterRates) {
  // One fast/flaky server + one slow/solid server.
  const ServerModel fast(exponential_from_mean(30.0),
                         exponential_from_mean(10.0), 4.0, 0.0);
  const ServerModel solid(exponential_from_mean(900.0),
                          exponential_from_mean(10.0), 1.0, 0.0);
  const Mmpp agg = heterogeneous_aggregate({fast, solid});
  EXPECT_EQ(agg.dim(), 4u);
  EXPECT_TRUE(linalg::is_generator(agg.generator()));
  ExpectClose(agg.mean_rate(),
              fast.mean_service_rate() + solid.mean_service_rate(), 1e-10,
              "mean rate");
  // Peak rate = both UP.
  EXPECT_NEAR(agg.max_rate(), 5.0, 1e-12);
  EXPECT_NEAR(agg.min_rate(), 0.0, 1e-12);
}

TEST(HeterogeneousAggregate, Validation) {
  EXPECT_THROW(heterogeneous_aggregate({}), InvalidArgument);
}

// The decisive lumping test: the rate *distribution* (stationary
// probability mass per distinct modulated rate level) must coincide
// between the kron and lumped representations.
class LumpingEquivalence
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(LumpingEquivalence, RateDistributionsMatch) {
  const auto [t_phases, n] = GetParam();
  const ServerModel s = PaperServer(t_phases);

  auto rate_histogram = [](const Mmpp& mmpp) {
    const auto pi = mmpp.stationary_phases();
    std::vector<std::pair<double, double>> hist;  // (rate, mass)
    for (std::size_t i = 0; i < mmpp.dim(); ++i) {
      const double rate = mmpp.rates()[i];
      bool found = false;
      for (auto& [r, mass] : hist) {
        if (std::abs(r - rate) < 1e-9) {
          mass += pi[i];
          found = true;
          break;
        }
      }
      if (!found) hist.emplace_back(rate, pi[i]);
    }
    std::sort(hist.begin(), hist.end());
    return hist;
  };

  const auto h_kron = rate_histogram(kron_aggregate(s, n));
  const auto h_lumped = rate_histogram(LumpedAggregate(s, n).mmpp());
  ASSERT_EQ(h_kron.size(), h_lumped.size());
  for (std::size_t i = 0; i < h_kron.size(); ++i) {
    EXPECT_NEAR(h_kron[i].first, h_lumped[i].first, 1e-9);
    EXPECT_NEAR(h_kron[i].second, h_lumped[i].second, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LumpingEquivalence,
                         ::testing::Values(std::pair<unsigned, unsigned>{1, 2},
                                           std::pair<unsigned, unsigned>{2, 2},
                                           std::pair<unsigned, unsigned>{2, 3},
                                           std::pair<unsigned, unsigned>{3, 2},
                                           std::pair<unsigned, unsigned>{3, 3},
                                           std::pair<unsigned, unsigned>{5, 2}));

}  // namespace
}  // namespace performa::map
