#include "medist/moment_fit.h"

#include <gtest/gtest.h>

#include "medist/tpt.h"
#include "test_util.h"

namespace performa::medist {
namespace {

using performa::testing::ExpectClose;

TEST(Hyp2Fit, RecoversKnownHyperexponential) {
  // Start from a known HYP-2, fit to its moments, compare parameters.
  const double p1 = 0.3, r1 = 4.0, r2 = 0.25;
  const MeDistribution source =
      hyperexponential_dist(Vector{p1, 1.0 - p1}, Vector{r1, r2});
  const Hyp2Fit fit = fit_hyp2(source);
  EXPECT_NEAR(fit.p1, p1, 1e-9);
  EXPECT_NEAR(fit.rate1, r1, 1e-8);
  EXPECT_NEAR(fit.rate2, r2, 1e-10);
}

TEST(Hyp2Fit, MatchesFirstThreeMomentsOfTpt) {
  // The paper's Fig. 4 construction: HYP-2 matched to the TPT moments.
  for (unsigned t : {2u, 5u, 9u, 10u}) {
    const MeDistribution tpt = make_tpt(TptSpec{t, 1.4, 0.2, 10.0});
    const Hyp2Fit fit = fit_hyp2(tpt);
    const MeDistribution hyp2 = fit.to_distribution();
    for (unsigned k = 1; k <= 3; ++k) {
      ExpectClose(hyp2.moment(k), tpt.moment(k), 1e-8,
                  ("moment " + std::to_string(k)).c_str());
    }
  }
}

TEST(Hyp2Fit, ExponentialBorderlineCollapses) {
  // Exact exponential moments: m_k = k!/rate^k, SCV = 1.
  const double rate = 0.5;
  const Hyp2Fit fit =
      fit_hyp2_moments(1.0 / rate, 2.0 / (rate * rate),
                       6.0 / (rate * rate * rate));
  EXPECT_EQ(fit.p1, 1.0);
  EXPECT_NEAR(fit.rate1, rate, 1e-12);
  EXPECT_NEAR(fit.to_distribution().mean(), 2.0, 1e-12);
}

TEST(Hyp2Fit, RejectsLowVariance) {
  // Erlang-4 has SCV = 1/4 < 1: infeasible for a hyperexponential.
  const MeDistribution erl = erlang_dist(4, 1.0);
  EXPECT_THROW(fit_hyp2(erl), NumericalError);
}

TEST(Hyp2Fit, RejectsNonPositiveMoments) {
  EXPECT_THROW(fit_hyp2_moments(-1.0, 2.0, 6.0), InvalidArgument);
  EXPECT_THROW(fit_hyp2_moments(1.0, 0.0, 6.0), InvalidArgument);
}

TEST(Hyp2Fit, RejectsInconsistentThirdMoment) {
  // SCV > 1 but third moment far too small for any HYP-2.
  EXPECT_THROW(fit_hyp2_moments(1.0, 3.0, 1.0), NumericalError);
}

TEST(Hyp2Fit, FittedDistributionIsValidPhaseType) {
  const MeDistribution tpt = make_tpt(TptSpec{10, 1.4, 0.2, 10.0});
  const MeDistribution hyp2 = fit_hyp2(tpt).to_distribution();
  EXPECT_TRUE(hyp2.is_phase_type());
  EXPECT_EQ(hyp2.dim(), 2u);
  EXPECT_GT(hyp2.scv(), 1.0);
}

TEST(HyperexpFromMeanScv, RealizesTargetMoments) {
  for (double scv : {1.5, 2.0, 5.3, 20.0}) {
    const MeDistribution d = hyperexp_from_mean_scv(2.0, scv);
    EXPECT_NEAR(d.mean(), 2.0, 1e-10) << scv;
    EXPECT_NEAR(d.scv(), scv, 1e-8) << scv;
  }
}

TEST(HyperexpFromMeanScv, BorderlineAndValidation) {
  const MeDistribution d = hyperexp_from_mean_scv(3.0, 1.0);
  EXPECT_EQ(d.dim(), 1u);  // exponential
  EXPECT_NEAR(d.mean(), 3.0, 1e-12);
  EXPECT_THROW(hyperexp_from_mean_scv(1.0, 0.5), InvalidArgument);
  EXPECT_THROW(hyperexp_from_mean_scv(-1.0, 2.0), InvalidArgument);
}

// Property: round-trip moment preservation across a parameter sweep of
// source HYP-2 distributions.
struct FitCase {
  double p1;
  double r1;
  double r2;
};

class Hyp2FitProperty : public ::testing::TestWithParam<FitCase> {};

TEST_P(Hyp2FitProperty, RoundTripMoments) {
  const auto [p1, r1, r2] = GetParam();
  const MeDistribution src =
      hyperexponential_dist(Vector{p1, 1.0 - p1}, Vector{r1, r2});
  const MeDistribution fitted = fit_hyp2(src).to_distribution();
  for (unsigned k = 1; k <= 3; ++k) {
    ExpectClose(fitted.moment(k), src.moment(k), 1e-7, "moment");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Hyp2FitProperty,
    ::testing::Values(FitCase{0.1, 1.0, 0.01}, FitCase{0.5, 2.0, 0.2},
                      FitCase{0.9, 10.0, 0.5}, FitCase{0.99, 100.0, 1.0},
                      FitCase{0.25, 0.8, 0.05}, FitCase{0.6, 5.0, 0.02}));

}  // namespace
}  // namespace performa::medist
