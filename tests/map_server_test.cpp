#include "map/server_model.h"

#include <gtest/gtest.h>

#include "linalg/ctmc.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::map {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

ServerModel PaperServer(unsigned t_phases) {
  return ServerModel(exponential_from_mean(90.0),
                     make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0}), 2.0, 0.2);
}

TEST(Mmpp, ValidatesInputs) {
  EXPECT_THROW(Mmpp(linalg::Matrix{{1.0, -1.0}, {1.0, -1.0}},
                    linalg::Vector{1.0, 1.0}),
               InvalidArgument);  // not a generator
  EXPECT_THROW(
      Mmpp(linalg::Matrix{{-1.0, 1.0}, {1.0, -1.0}}, linalg::Vector{1.0}),
      InvalidArgument);  // rate length mismatch
  EXPECT_THROW(Mmpp(linalg::Matrix{{-1.0, 1.0}, {1.0, -1.0}},
                    linalg::Vector{1.0, -2.0}),
               InvalidArgument);  // negative rate
}

TEST(Mmpp, MeanRateOfTwoStateChain) {
  // Symmetric 2-state chain: stationary (1/2, 1/2).
  const Mmpp m(linalg::Matrix{{-1.0, 1.0}, {1.0, -1.0}},
               linalg::Vector{0.0, 4.0});
  EXPECT_NEAR(m.mean_rate(), 2.0, 1e-13);
  EXPECT_EQ(m.max_rate(), 4.0);
  EXPECT_EQ(m.min_rate(), 0.0);
}

TEST(ServerModel, GeneratorIsValid) {
  const ServerModel s = PaperServer(10);
  EXPECT_TRUE(linalg::is_generator(s.mmpp().generator()));
  EXPECT_EQ(s.dim(), 11u);  // 10 TPT repair phases + 1 exp UP phase
  EXPECT_EQ(s.down_dim(), 10u);
  EXPECT_EQ(s.up_dim(), 1u);
}

TEST(ServerModel, AvailabilityMatchesRenewalFormula) {
  // A = MTTF / (MTTF + MTTR) = 90/100, regardless of repair distribution.
  for (unsigned t : {1u, 5u, 10u}) {
    const ServerModel s = PaperServer(t);
    EXPECT_NEAR(s.availability(), 0.9, 1e-10) << "T=" << t;
  }
}

TEST(ServerModel, AvailabilityWithErlangUp) {
  // The formula also holds with non-exponential TTF.
  const ServerModel s(medist::erlang_dist(4, 30.0),
                      exponential_from_mean(10.0), 1.0, 0.0);
  EXPECT_NEAR(s.availability(), 30.0 / 40.0, 1e-10);
}

TEST(ServerModel, MeanServiceRate) {
  const ServerModel s = PaperServer(10);
  // nu_p (A + delta (1-A)) = 2 (0.9 + 0.2*0.1) = 1.84.
  EXPECT_NEAR(s.mean_service_rate(), 1.84, 1e-10);
}

TEST(ServerModel, RatesAreDegradedInDownPhases) {
  const ServerModel s = PaperServer(3);
  const auto& rates = s.mmpp().rates();
  for (std::size_t i = 0; i < s.down_dim(); ++i) {
    EXPECT_NEAR(rates[i], 0.2 * 2.0, 1e-14) << i;
  }
  for (std::size_t i = s.down_dim(); i < s.dim(); ++i) {
    EXPECT_NEAR(rates[i], 2.0, 1e-14) << i;
  }
}

TEST(ServerModel, CrashFaultHasZeroDownRate) {
  const ServerModel s(exponential_from_mean(90.0), exponential_from_mean(10.0),
                      2.0, 0.0);
  EXPECT_EQ(s.mmpp().rates()[0], 0.0);
  EXPECT_NEAR(s.mean_service_rate(), 1.8, 1e-12);
}

TEST(ServerModel, ParameterValidation) {
  const auto up = exponential_from_mean(90.0);
  const auto down = exponential_from_mean(10.0);
  EXPECT_THROW(ServerModel(up, down, -1.0, 0.2), InvalidArgument);
  EXPECT_THROW(ServerModel(up, down, 1.0, -0.1), InvalidArgument);
  EXPECT_THROW(ServerModel(up, down, 1.0, 1.5), InvalidArgument);
}

TEST(ServerModel, UpDownCycleRatesBalance) {
  // Probability flux DOWN->UP equals flux UP->DOWN in steady state:
  // both equal 1/E[cycle].
  const ServerModel s = PaperServer(5);
  const auto pi = s.mmpp().stationary_phases();
  const auto& q = s.mmpp().generator();
  double down_to_up = 0.0, up_to_down = 0.0;
  for (std::size_t i = 0; i < s.down_dim(); ++i)
    for (std::size_t j = s.down_dim(); j < s.dim(); ++j)
      down_to_up += pi[i] * q(i, j);
  for (std::size_t i = s.down_dim(); i < s.dim(); ++i)
    for (std::size_t j = 0; j < s.down_dim(); ++j)
      up_to_down += pi[i] * q(i, j);
  EXPECT_NEAR(down_to_up, up_to_down, 1e-12);
  EXPECT_NEAR(down_to_up, 1.0 / 100.0, 1e-10);  // cycle = 90 + 10
}

// Property: availability formula across a sweep of MTTF/MTTR and
// distribution shapes.
struct AvailCase {
  double mttf;
  double mttr;
  unsigned t_phases;
};

class AvailabilityProperty : public ::testing::TestWithParam<AvailCase> {};

TEST_P(AvailabilityProperty, RenewalRewardHolds) {
  const auto [mttf, mttr, t] = GetParam();
  const ServerModel s(exponential_from_mean(mttf),
                      make_tpt(TptSpec{t, 1.4, 0.2, mttr}), 1.0, 0.5);
  ExpectClose(s.availability(), mttf / (mttf + mttr), 1e-9, "availability");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AvailabilityProperty,
    ::testing::Values(AvailCase{90, 10, 1}, AvailCase{90, 10, 10},
                      AvailCase{50, 50, 5}, AvailCase{999, 1, 7},
                      AvailCase{10, 90, 3}, AvailCase{70, 30, 9}));

}  // namespace
}  // namespace performa::map
