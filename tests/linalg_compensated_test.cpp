// Neumaier compensated summation: adversarial cancellation cases where a
// naive left-to-right sum loses every significant digit, plus the
// drift-free accumulation property the simulator's long runs rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/compensated.h"

namespace performa::linalg {
namespace {

TEST(CompensatedSumTest, NeumaierAdversarialCancellation) {
  // The classic case plain Kahan fails: the big term arrives *after* the
  // running sum is small, so the small terms' digits live in the
  // compensation, not the sum. Exact result is 2.0; a naive sum returns
  // 0.0 (1.0 is absorbed by 1e100 twice).
  const double xs[] = {1.0, 1e100, 1.0, -1e100};
  double naive = 0.0;
  for (double x : xs) naive += x;
  EXPECT_EQ(naive, 0.0);

  CompensatedSum<double> acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.value(), 2.0);

  EXPECT_EQ(sum_compensated(xs, 4), 2.0);
}

TEST(CompensatedSumTest, TenMillionTenthsStayExact) {
  // 0.1 is inexact in binary; accumulating 1e7 of them naively drifts by
  // ~1e-8 while the compensated total stays within one ulp of the
  // correctly rounded result.
  constexpr std::size_t n = 10'000'000;
  double naive = 0.0;
  CompensatedSum<double> acc;
  for (std::size_t i = 0; i < n; ++i) {
    naive += 0.1;
    acc.add(0.1);
  }
  const double exact = 1e6;
  EXPECT_GT(std::abs(naive - exact), 1e-9);  // naive visibly drifts
  EXPECT_LE(std::abs(acc.value() - exact), 1e-9 * exact * 1e-6)
      << "compensated drift " << acc.value() - exact;
}

TEST(CompensatedSumTest, DotProductCancellation) {
  // a.b with catastrophic cancellation between products.
  const double a[] = {1e80, 1.0, -1e80};
  const double b[] = {1.0, 3.0, 1.0};
  EXPECT_EQ(dot_compensated(a, b, 3), 3.0);
}

TEST(CompensatedSumTest, ResetAndOperatorPlusEq) {
  CompensatedSum<double> acc(5.0);
  acc += 2.5;
  EXPECT_DOUBLE_EQ(acc.value(), 7.5);
  acc.reset();
  EXPECT_EQ(acc.value(), 0.0);
  acc.reset(1.0);
  EXPECT_EQ(acc.value(), 1.0);
}

TEST(CompensatedSumTest, LongDoubleVariantCompiles) {
  CompensatedSum<long double> acc;
  acc.add(1.0L);
  acc.add(1e-30L);
  acc.add(-1.0L);
  EXPECT_NEAR(static_cast<double>(acc.value()), 1e-30, 1e-40);
}

TEST(CompensatedSumTest, ErrorIndependentOfSummationOrder) {
  // Neumaier's bound: the result is within ~eps * sum|x_i| of the exact
  // sum *regardless of order* (naive summation degrades with n and with
  // the ordering). Forward and reverse sweeps over a wildly-scaled
  // alternating sequence must both honor the bound, hence agree to 2x it.
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(std::pow(-1.0, i) * std::pow(1.7, i % 90) * 1e-10);
  }
  long double ref = 0.0L, abs_sum = 0.0L;
  for (double x : xs) {
    ref += x;
    abs_sum += std::abs(x);
  }
  CompensatedSum<double> fwd, bwd;
  for (std::size_t i = 0; i < xs.size(); ++i) fwd.add(xs[i]);
  for (std::size_t i = xs.size(); i-- > 0;) bwd.add(xs[i]);
  const double bound =
      2.3e-16 * static_cast<double>(abs_sum);  // ~eps * sum|x|
  EXPECT_LE(std::abs(fwd.value() - static_cast<double>(ref)), bound);
  EXPECT_LE(std::abs(bwd.value() - static_cast<double>(ref)), bound);
  EXPECT_LE(std::abs(fwd.value() - bwd.value()), 2.0 * bound);
}

}  // namespace
}  // namespace performa::linalg
