#include "medist/sampler.h"

#include <gtest/gtest.h>

#include <random>

#include "medist/moment_fit.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::medist {
namespace {

using performa::testing::ExpectClose;

struct SampleStats {
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
};

SampleStats Collect(const MeDistribution& d, std::size_t n, unsigned seed) {
  const PhaseSampler sampler(d);
  std::mt19937_64 rng(seed);
  double acc = 0.0, acc2 = 0.0, mn = 1e300;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = sampler.sample(rng);
    acc += x;
    acc2 += x * x;
    mn = std::min(mn, x);
  }
  return {acc / n, acc2 / n, mn};
}

TEST(PhaseSampler, ExponentialMomentsMatch) {
  const MeDistribution d = exponential_dist(2.0);
  const SampleStats s = Collect(d, 200000, 42);
  ExpectClose(s.mean, d.mean(), 0.01, "mean");
  ExpectClose(s.m2, d.moment(2), 0.03, "second moment");
  EXPECT_GE(s.min, 0.0);
}

TEST(PhaseSampler, ErlangMomentsMatch) {
  const MeDistribution d = erlang_dist(3, 4.0);
  const SampleStats s = Collect(d, 200000, 7);
  ExpectClose(s.mean, 4.0, 0.01, "mean");
  ExpectClose(s.m2, d.moment(2), 0.03, "second moment");
}

TEST(PhaseSampler, HyperexponentialMomentsMatch) {
  const MeDistribution d =
      hyperexponential_dist(Vector{0.8, 0.2}, Vector{4.0, 0.1});
  const SampleStats s = Collect(d, 400000, 11);
  ExpectClose(s.mean, d.mean(), 0.02, "mean");
  ExpectClose(s.m2, d.moment(2), 0.05, "second moment");
}

TEST(PhaseSampler, TptMeanMatches) {
  // High variance: the mean still converges at this sample size; the
  // second moment would need far more samples, so only check the mean.
  const MeDistribution d = make_tpt(TptSpec{9, 1.4, 0.2, 10.0});
  const SampleStats s = Collect(d, 500000, 3);
  ExpectClose(s.mean, 10.0, 0.05, "mean");
}

TEST(PhaseSampler, TailFrequencyMatchesReliability) {
  const MeDistribution d = make_tpt(TptSpec{5, 1.4, 0.2, 1.0});
  const PhaseSampler sampler(d);
  std::mt19937_64 rng(99);
  const double threshold = 5.0;
  const std::size_t n = 300000;
  std::size_t above = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sampler.sample(rng) > threshold) ++above;
  }
  const double expected = d.reliability(threshold);
  ExpectClose(static_cast<double>(above) / n, expected, 0.05 * expected + 1e-3,
              "tail frequency");
}

TEST(PhaseSampler, DeterministicGivenSeed) {
  const MeDistribution d = erlang_dist(2, 1.0);
  const PhaseSampler sampler(d);
  std::mt19937_64 rng1(5), rng2(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.sample(rng1), sampler.sample(rng2));
  }
}

TEST(PhaseSampler, SamplesAreNonNegative) {
  const MeDistribution d = make_tpt(TptSpec{10, 1.4, 0.2, 10.0});
  const PhaseSampler sampler(d);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sampler.sample(rng), 0.0);
  }
}

// Property: sampled mean matches analytic mean across distributions.
class SamplerProperty : public ::testing::TestWithParam<MeDistribution> {};

TEST_P(SamplerProperty, MeanConverges) {
  const MeDistribution& d = GetParam();
  const SampleStats s = Collect(d, 300000, 123);
  ExpectClose(s.mean, d.mean(), 0.05, "mean");
}

INSTANTIATE_TEST_SUITE_P(
    Dists, SamplerProperty,
    ::testing::Values(exponential_dist(0.1), exponential_dist(10.0),
                      erlang_dist(5, 2.0),
                      hyperexponential_dist(Vector{0.5, 0.5},
                                            Vector{1.0, 3.0}),
                      make_tpt(TptSpec{5, 1.4, 0.5, 10.0}),
                      fit_hyp2(make_tpt(TptSpec{10, 1.4, 0.2, 10.0}))
                          .to_distribution()));

}  // namespace
}  // namespace performa::medist
