// Randomized (fixed-seed) agreement property: for random *stable* cluster
// configurations, the analytic M/MMPP/1 mean queue length must fall inside
// the simulator's replication confidence interval; random *unstable*
// configurations must be rejected by the drift pre-check before any
// iteration budget is spent.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "sim/mmpp_queue_sim.h"
#include "sim/random.h"
#include "test_util.h"

namespace performa::sim {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;

// One random cluster drawn from a per-case deterministic stream: phase
// counts, degradation, failure/repair scales and utilization all vary, so
// 50 cases cover a broad slice of the parameter space while every run
// reproduces bit-for-bit.
struct RandomCase {
  double rho = 0.0;  // declared before mmpp: Build() writes it
  map::Mmpp mmpp;

  explicit RandomCase(unsigned seed) : mmpp(Build(seed, rho)) {}

 private:
  static map::Mmpp Build(unsigned seed, double& rho_out) {
    std::mt19937_64 rng(seed);
    auto uni = [&rng](double lo, double hi) {
      return std::uniform_real_distribution<double>(lo, hi)(rng);
    };
    const auto n_servers = static_cast<unsigned>(1 + rng() % 3);
    const auto t_phases = static_cast<unsigned>(1 + rng() % 4);
    const double nu_p = uni(1.0, 3.0);
    const double delta = uni(0.1, 0.5);
    const double mttf = uni(30.0, 120.0);
    const double mttr = uni(2.0, 15.0);
    rho_out = uni(0.2, 0.7);
    const auto down =
        t_phases <= 1 ? exponential_from_mean(mttr)
                      : make_tpt(TptSpec{t_phases, uni(1.2, 1.8), 0.2, mttr});
    const map::ServerModel server(exponential_from_mean(mttf), down, nu_p,
                                  delta);
    return map::LumpedAggregate(server, n_servers).mmpp();
  }
};

class AnalyticMatch : public ::testing::TestWithParam<unsigned> {};

TEST_P(AnalyticMatch, StableConfigAgreesWithinConfidenceInterval) {
  const RandomCase rc(GetParam());
  const double lambda = rc.rho * rc.mmpp.mean_rate();

  const qbd::QbdSolution exact(qbd::m_mmpp_1(rc.mmpp, lambda));
  ASSERT_TRUE(exact.report().converged);
  const double analytic = exact.mean_queue_length();

  std::vector<double> estimates;
  for (std::size_t rep = 0; rep < 4; ++rep) {
    MmppQueueSimConfig cfg;
    cfg.lambda = lambda;
    cfg.horizon = 5e4;
    cfg.warmup = 5e3;
    cfg.seed = derive_seed(1000 + GetParam(), rep);
    estimates.push_back(
        simulate_mmpp_queue(rc.mmpp, cfg).mean_queue_length);
  }
  const ReplicationSummary summary = summarize_replications(estimates);

  // The CI is itself a random quantity with 3 degrees of freedom, so give
  // it headroom: the analytic value must sit within 2 half-widths (plus a
  // small absolute floor for near-empty queues).
  const double slack = 2.0 * summary.ci_halfwidth + 0.05 * (1.0 + analytic);
  EXPECT_LE(std::abs(analytic - summary.mean), slack)
      << "analytic=" << analytic << " sim=" << summary.mean
      << " ci=" << summary.ci_halfwidth << " rho=" << rc.rho;
}

TEST_P(AnalyticMatch, UnstableConfigRejectedByDriftPrecheck) {
  const RandomCase rc(GetParam());
  std::mt19937_64 rng(777 + GetParam());
  const double rho_unstable =
      std::uniform_real_distribution<double>(1.0, 1.4)(rng);
  const double lambda = rho_unstable * rc.mmpp.mean_rate();
  try {
    qbd::QbdSolution sol(qbd::m_mmpp_1(rc.mmpp, lambda));
    FAIL() << "unstable rho=" << rho_unstable << " accepted";
  } catch (const qbd::UnstableModel& e) {
    EXPECT_GE(e.utilization(), 1.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(FiftyRandomConfigs, AnalyticMatch,
                         ::testing::Range(0u, 50u));

}  // namespace
}  // namespace performa::sim
