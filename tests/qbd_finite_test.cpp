// Finite-buffer ME/MMPP/1/K queue (paper Sec. 2.4, second bullet).
#include "qbd/finite.h"

#include <gtest/gtest.h>

#include <cmath>

#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::erlang_dist;
using medist::exponential_from_mean;
using performa::testing::ExpectClose;

map::Mmpp SinglePhase(double mu) {
  return map::Mmpp(Matrix{{0.0}}, Vector{mu});
}

map::Mmpp PaperClusterMmpp(unsigned t_phases) {
  const map::ServerModel server(exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, 2).mmpp();
}

TEST(FiniteQbd, Mm1KClosedForm) {
  // M/M/1/K: pi_n = (1-rho) rho^n / (1 - rho^{K+1}).
  const double rho = 0.8;
  const std::size_t k_cap = 10;
  const FiniteQbdSolution sol(m_mmpp_1(SinglePhase(1.0), rho), k_cap);
  const double norm = (1.0 - std::pow(rho, k_cap + 1.0));
  for (std::size_t n = 0; n <= k_cap; ++n) {
    ExpectClose(sol.pmf(n), (1.0 - rho) * std::pow(rho, n) / norm, 1e-9,
                "pmf");
  }
  ExpectClose(sol.blocking_probability(), sol.probability_full(), 1e-10,
              "PASTA");
  EXPECT_EQ(sol.pmf(k_cap + 3), 0.0);
}

TEST(FiniteQbd, Mm1KOverloadedStillSolves) {
  // Finite queues are stable even at rho > 1; M/M/1/K formulas hold.
  const double rho = 1.5;
  const std::size_t k_cap = 5;
  const FiniteQbdSolution sol(m_mmpp_1(SinglePhase(1.0), rho), k_cap);
  const double norm = (1.0 - std::pow(rho, k_cap + 1.0));
  ExpectClose(sol.probability_full(),
              (1.0 - rho) * std::pow(rho, k_cap) / norm, 1e-9, "P(full)");
  EXPECT_GT(sol.blocking_probability(), 0.3);
}

TEST(FiniteQbd, ConvergesToInfiniteBufferSolution) {
  const auto mmpp = PaperClusterMmpp(3);
  const double lambda = 0.5 * mmpp.mean_rate();
  const auto blocks = m_mmpp_1(mmpp, lambda);
  const QbdSolution infinite(blocks);
  const FiniteQbdSolution finite(blocks, 3000);
  ExpectClose(finite.mean_queue_length(), infinite.mean_queue_length(), 1e-4,
              "E[Q]");
  ExpectClose(finite.probability_empty(), infinite.probability_empty(), 1e-6,
              "P(empty)");
  EXPECT_LT(finite.blocking_probability(), 1e-4);
}

TEST(FiniteQbd, QualitativeBlowupSurvivesLargeBuffers) {
  // Paper Sec. 2.4: "for large buffer sizes qualitative results are
  // expected to be unchanged" -- the finite-buffer mean still jumps
  // across the blow-up boundary.
  const auto mmpp = PaperClusterMmpp(9);
  const std::size_t k_cap = 2000;
  auto normalized_mean_at = [&](double rho) {
    return FiniteQbdSolution(m_mmpp_1(mmpp, rho * mmpp.mean_rate()), k_cap)
               .mean_queue_length() /
           (rho / (1.0 - rho));
  };
  EXPECT_GT(normalized_mean_at(0.7), 5.0 * normalized_mean_at(0.3));
}

TEST(FiniteQbd, BlockingGrowsWithLoadAndShrinksWithBuffer) {
  const auto mmpp = PaperClusterMmpp(2);
  const auto at = [&](double rho, std::size_t cap) {
    return FiniteQbdSolution(m_mmpp_1(mmpp, rho * mmpp.mean_rate()), cap)
        .blocking_probability();
  };
  EXPECT_LT(at(0.3, 50), at(0.7, 50));
  EXPECT_LT(at(0.7, 200), at(0.7, 50));
}

TEST(FiniteQbd, PmfNormalized) {
  const auto mmpp = PaperClusterMmpp(2);
  const FiniteQbdSolution sol(m_mmpp_1(mmpp, 2.0), 100);
  double total = 0.0;
  for (std::size_t k = 0; k <= 100; ++k) total += sol.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
  EXPECT_NEAR(sol.tail(0), 1.0, 1e-10);
  ExpectClose(sol.tail(50) + sol.pmf(49) + sol.pmf(48),
              sol.tail(48), 1e-10, "tail recursion");
}

TEST(FiniteQbd, NonPoissonArrivalsBreakPasta) {
  // With Erlang-2 arrivals the arriving-customer blocking probability
  // differs from the time-stationary P(full).
  const auto mmpp = PaperClusterMmpp(1);
  const auto arr =
      map::renewal_map(erlang_dist(2, 1.0 / (0.9 * mmpp.mean_rate())));
  const FiniteQbdSolution sol(map_mmpp_1(arr, mmpp), 10);
  EXPECT_GT(std::abs(sol.blocking_probability() - sol.probability_full()),
            1e-4);
}

TEST(FiniteQbd, CapacityValidation) {
  const auto blocks = m_mmpp_1(SinglePhase(1.0), 0.5);
  EXPECT_THROW(FiniteQbdSolution(blocks, 0), InvalidArgument);
  const FiniteQbdSolution sol(blocks, 1);
  // M/M/1/1: pi_0 = 1/(1+rho), pi_1 = rho/(1+rho).
  ExpectClose(sol.pmf(0), 1.0 / 1.5, 1e-10, "pi0");
  ExpectClose(sol.pmf(1), 0.5 / 1.5, 1e-10, "pi1");
  EXPECT_THROW(sol.level(2), InvalidArgument);
}

// Property: Erlang-B / birth-death cross-check across capacities.
class FiniteSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FiniteSweep, Mm1KFormulaHolds) {
  const std::size_t cap = GetParam();
  const double rho = 0.9;
  const FiniteQbdSolution sol(m_mmpp_1(SinglePhase(2.0), 2.0 * rho), cap);
  const double norm = 1.0 - std::pow(rho, cap + 1.0);
  double expected_mean = 0.0;
  for (std::size_t n = 1; n <= cap; ++n) {
    expected_mean += n * (1.0 - rho) * std::pow(rho, n) / norm;
  }
  ExpectClose(sol.mean_queue_length(), expected_mean, 1e-8, "E[Q]");
}

INSTANTIATE_TEST_SUITE_P(Caps, FiniteSweep,
                         ::testing::Values(1, 2, 5, 20, 100, 500));

}  // namespace
}  // namespace performa::qbd
