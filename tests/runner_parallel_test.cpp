// Tests for the parallel sweep scheduler: bit-exact equivalence between
// -j1 and -jN runs (the ordering guarantee), the per-slot retry state
// machine under fault injection, v2 order-independent checkpoint resume
// (shuffled records ok, duplicated ok-records rejected, v1 still
// readable), SIGINT wind-down that drains in-flight workers, and the
// parallel flavour of the SIGKILL-mid-sweep acceptance drill.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "linalg/errors.h"
#include "linalg/pool.h"
#include "map/lumped_aggregate.h"
#include "medist/me_dist.h"
#include "medist/tpt.h"
#include "obs/metrics.h"
#include "qbd/qbd.h"
#include "qbd/solution.h"
#include "obs/trace.h"
#include "runner/checkpoint.h"
#include "runner/outcome.h"
#include "runner/retry.h"
#include "runner/sweep.h"
#include "runner/worker.h"
#include "sim/random.h"

namespace performa::runner {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "performa_parallel_" +
         std::to_string(::getpid()) + "_" + name;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// PointId(i) spelled without operator+(const char*, string&&),
// which trips GCC 12's -Wrestrict false positive under -O2 -Werror.
std::string PointId(int i) {
  std::string id = "p";
  id += std::to_string(i);
  return id;
}

std::size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::size_t>(in.tellg()) : 0;
}

void AppendByte(const std::string& path) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  out.put('x');
}

RetryPolicy FastRetries(unsigned attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff_seconds = 0.01;
  p.multiplier = 1.0;
  p.jitter = 0.0;
  return p;
}

// Deterministic RNG-backed point: what "bit-exact across schedules"
// actually has to hold for.
PointResult DeterministicPoint(int i) {
  sim::Rng rng(sim::derive_seed(7701, static_cast<std::uint64_t>(i)));
  auto uniform = [&rng]() {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };
  PointResult out;
  out.metrics.emplace_back("a", uniform());
  out.metrics.emplace_back("b", uniform() * 1.0e6);
  out.metrics.emplace_back("c", uniform() - 0.5);
  out.rng_state = sim::save_rng_state(rng);
  return out;
}

std::vector<SweepPointSpec> DeterministicSpecs(int n) {
  std::vector<SweepPointSpec> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({PointId(i), [i]() {
      // Stagger runtimes so high -j finishes out of request order.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(i % 3 == 0 ? 30 : 5));
      return DeterministicPoint(i);
    }});
  }
  return pts;
}

void ExpectBitIdentical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + a.points[i].id);
    EXPECT_EQ(a.points[i].id, b.points[i].id);
    EXPECT_EQ(a.points[i].index, b.points[i].index);
    EXPECT_EQ(a.points[i].outcome, b.points[i].outcome);
    EXPECT_EQ(a.points[i].rng_state, b.points[i].rng_state);
    ASSERT_EQ(a.points[i].metrics.size(), b.points[i].metrics.size());
    for (std::size_t m = 0; m < a.points[i].metrics.size(); ++m) {
      EXPECT_EQ(a.points[i].metrics[m].first, b.points[i].metrics[m].first);
      EXPECT_TRUE(BitEqual(a.points[i].metrics[m].second,
                           b.points[i].metrics[m].second))
          << a.points[i].metrics[m].first;
    }
  }
}

// --- options and plumbing ---------------------------------------------

TEST(ParallelSweep, ValidatesJobsOptions) {
  std::vector<SweepPointSpec> pts;
  pts.push_back({"p0", []() { return PointResult{}; }});
  SweepOptions parallel_inline;
  parallel_inline.isolate = false;
  parallel_inline.jobs = 4;
  EXPECT_THROW(run_sweep("s", pts, parallel_inline), InvalidArgument);

  SweepOptions bad_grace;
  bad_grace.drain_grace_seconds = -1.0;
  EXPECT_THROW(run_sweep("s", pts, bad_grace), InvalidArgument);

  EXPECT_GE(resolve_jobs(0), 1u);   // auto maps to >= 1 hardware thread
  EXPECT_EQ(resolve_jobs(7), 7u);   // explicit counts pass through
}

// --- the ordering guarantee -------------------------------------------

TEST(ParallelSweep, ParallelMatchesSequentialBitExact) {
  SweepOptions j1;
  j1.jobs = 1;
  const auto seq = run_sweep("order-j1", DeterministicSpecs(12), j1);
  ASSERT_EQ(seq.points.size(), 12u);
  EXPECT_FALSE(seq.interrupted);

  SweepOptions j8;
  j8.jobs = 8;
  const auto par = run_sweep("order-j8", DeterministicSpecs(12), j8);
  ASSERT_EQ(par.points.size(), 12u);
  EXPECT_EQ(par.degraded, 0u);
  for (std::size_t i = 0; i < par.points.size(); ++i) {
    EXPECT_EQ(par.points[i].id, PointId(i))
        << "results must be delivered in request order";
  }
  ExpectBitIdentical(seq, par);
}

TEST(ParallelSweep, RetryStateMachineUnderFaultInjection) {
  // Every point crashes on its first execution (counted on disk, so the
  // count survives the fork) and succeeds deterministically afterwards:
  // a -j4 run must converge to the same bits as a -j1 run.
  auto make_specs = [](const std::string& tag) {
    std::vector<SweepPointSpec> pts;
    for (int i = 0; i < 6; ++i) {
      const std::string counter =
          TempPath("fault_" + tag + "_" + std::to_string(i));
      std::remove(counter.c_str());
      pts.push_back({PointId(i), [i, counter]() -> PointResult {
        AppendByte(counter);
        if (FileSize(counter) < 2) std::abort();
        return DeterministicPoint(i);
      }});
    }
    return pts;
  };

  SweepOptions j1;
  j1.jobs = 1;
  j1.retry = FastRetries(3);
  const auto seq = run_sweep("fault-j1", make_specs("s"), j1);

  SweepOptions j4;
  j4.jobs = 4;
  j4.retry = FastRetries(3);
  const auto par = run_sweep("fault-j4", make_specs("p"), j4);

  ASSERT_EQ(par.points.size(), 6u);
  EXPECT_EQ(par.degraded, 0u);
  for (const auto& pt : par.points) {
    EXPECT_EQ(pt.outcome, Outcome::kOk);
    EXPECT_EQ(pt.attempts, 2u) << pt.id;  // crash once, then succeed
  }
  ExpectBitIdentical(seq, par);
}

TEST(ParallelSweep, TimeoutDegradesOnePointOthersComplete) {
  std::vector<SweepPointSpec> pts;
  pts.push_back({"hung", []() {
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return PointResult{};
  }});
  for (int i = 1; i < 5; ++i) {
    pts.push_back({PointId(i), [i]() {
      return DeterministicPoint(i);
    }});
  }
  SweepOptions opts;
  opts.jobs = 3;
  opts.timeout_seconds = 0.2;
  opts.retry = FastRetries(2);
  const auto sweep = run_sweep("timeout-pool", pts, opts);
  ASSERT_EQ(sweep.points.size(), 5u);
  EXPECT_EQ(sweep.points[0].outcome, Outcome::kTimeout);
  EXPECT_EQ(sweep.points[0].attempts, 2u);
  EXPECT_EQ(sweep.degraded, 1u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(sweep.points[i].outcome, Outcome::kOk) << i;
  }
}

// --- v2 checkpoints: order-independent resume -------------------------

TEST(ParallelCheckpoint, ShuffledRecordsResumeInFull) {
  const std::string path = TempPath("shuffled.ck");
  std::remove(path.c_str());
  open_checkpoint(path, "shuffle-sweep");
  // Records land in an order no sequential sweep would produce.
  for (int i : {4, 0, 5, 2, 1, 3}) {
    CheckpointPoint p;
    p.index = static_cast<std::size_t>(i);
    p.id = PointId(i);
    p.metrics = DeterministicPoint(i).metrics;
    append_point(path, p);
  }

  std::vector<SweepPointSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back({PointId(i), []() -> PointResult {
      ADD_FAILURE() << "every point is in the checkpoint; nothing may run";
      return PointResult{};
    }});
  }
  SweepOptions opts;
  opts.checkpoint_path = path;
  opts.resume = true;
  opts.jobs = 4;
  const auto sweep = run_sweep("shuffle-sweep", specs, opts);
  ASSERT_EQ(sweep.points.size(), 6u);
  EXPECT_EQ(sweep.reused, 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sweep.points[i].id, PointId(i));
    EXPECT_EQ(sweep.points[i].index, i);  // re-anchored to this sweep's grid
    const auto expect = DeterministicPoint(static_cast<int>(i));
    ASSERT_EQ(sweep.points[i].metrics.size(), expect.metrics.size());
    for (std::size_t m = 0; m < expect.metrics.size(); ++m) {
      EXPECT_TRUE(BitEqual(sweep.points[i].metrics[m].second,
                           expect.metrics[m].second));
    }
  }
  std::remove(path.c_str());
}

TEST(ParallelCheckpoint, DuplicateOkRecordIsRejected) {
  const std::string path = TempPath("dup.ck");
  std::remove(path.c_str());
  open_checkpoint(path, "dup-sweep");
  CheckpointPoint p;
  p.id = "p0";
  p.metrics = {{"v", 1.0}};
  append_point(path, p);
  p.metrics = {{"v", 2.0}};  // second ok record for the same id
  append_point(path, p);
  EXPECT_THROW(load_checkpoint(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(ParallelCheckpoint, OkRecordSupersedesDegradedRecord) {
  const std::string path = TempPath("supersede.ck");
  std::remove(path.c_str());
  open_checkpoint(path, "supersede-sweep");
  CheckpointPoint bad;
  bad.id = "p0";
  bad.outcome = Outcome::kTimeout;
  bad.message = "first try hung";
  append_point(path, bad);
  CheckpointPoint good;
  good.id = "p0";
  good.metrics = {{"v", 3.5}};
  append_point(path, good);  // how a resumed retry is persisted

  const auto ck = load_checkpoint(path);
  EXPECT_EQ(ck.version, 2);
  ASSERT_EQ(ck.points.size(), 2u);
  const CheckpointPoint* latest = ck.find("p0");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->outcome, Outcome::kOk);
  EXPECT_TRUE(BitEqual(latest->metric("v"), 3.5));
  std::remove(path.c_str());
}

TEST(ParallelCheckpoint, V1CheckpointsStillLoadAndResume) {
  const std::string path = TempPath("v1.ck");
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << "performa-checkpoint v1 legacy-sweep\n";
    CheckpointPoint p;
    p.id = "p0";
    p.metrics = {{"v", 1.0}};
    out << encode_point(p) << "\n";
    p.metrics = {{"v", 2.0}};
    out << encode_point(p) << "\n";  // v1 tolerates ok-after-ok: appends win
    CheckpointPoint q;
    q.index = 1;
    q.id = "p1";
    q.metrics = DeterministicPoint(1).metrics;
    out << encode_point(q) << "\n";
  }
  const auto ck = load_checkpoint(path);
  EXPECT_EQ(ck.version, 1);
  ASSERT_EQ(ck.points.size(), 3u);
  EXPECT_TRUE(BitEqual(ck.find("p0")->metric("v"), 2.0));

  // open_checkpoint accepts the v1 header, and a parallel resume reads
  // it: sequential-era checkpoints survive the scheduler upgrade.
  open_checkpoint(path, "legacy-sweep");
  std::vector<SweepPointSpec> specs;
  specs.push_back({"p0", []() -> PointResult { std::abort(); }});
  specs.push_back({"p1", []() -> PointResult { std::abort(); }});
  SweepOptions opts;
  opts.checkpoint_path = path;
  opts.resume = true;
  opts.jobs = 2;
  const auto sweep = run_sweep("legacy-sweep", specs, opts);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.reused, 2u);
  std::remove(path.c_str());
}

// --- wind-down: drain in-flight workers, record what finishes ---------

TEST(ParallelSweep, InterruptDrainsInFlightWorkers) {
  const std::string ck = TempPath("drain.ck");
  std::remove(ck.c_str());
  install_signal_handlers();
  clear_interrupt();

  auto make_specs = [](bool signal_parent) {
    std::vector<SweepPointSpec> pts;
    for (int i = 0; i < 6; ++i) {
      pts.push_back({PointId(i), [i, signal_parent]() {
        if (i == 0 && signal_parent) {
          ::kill(::getppid(), SIGINT);  // as if the user hit Ctrl-C
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        return DeterministicPoint(i);
      }});
    }
    return pts;
  };

  SweepOptions opts;
  opts.checkpoint_path = ck;
  opts.jobs = 2;
  opts.drain_grace_seconds = 5.0;
  const auto sweep = run_sweep("drain-sweep", make_specs(true), opts);
  EXPECT_TRUE(sweep.interrupted);
  // Nothing new was dispatched after the signal, but the two in-flight
  // workers had a grace period: whatever finished was recorded ok.
  EXPECT_LE(sweep.points.size(), 2u);
  EXPECT_GE(sweep.points.size(), 1u);
  for (const auto& pt : sweep.points) {
    EXPECT_EQ(pt.outcome, Outcome::kOk) << pt.id;
  }

  // Resume completes the sweep and the union is bit-exact.
  clear_interrupt();
  install_signal_handlers();
  SweepOptions resume_opts = opts;
  resume_opts.resume = true;
  const auto resumed = run_sweep("drain-sweep", make_specs(false),
                                 resume_opts);
  ASSERT_EQ(resumed.points.size(), 6u);
  EXPECT_GE(resumed.reused, sweep.points.size());
  const auto golden = run_sweep("drain-golden", make_specs(false),
                                SweepOptions{});
  ExpectBitIdentical(golden, resumed);
  std::remove(ck.c_str());
}

// --- the parallel acceptance drill: SIGKILL mid-flight, resume --------

TEST(ParallelSweep, SigkillMidParallelSweepResumesBitExact) {
  const std::string ck = TempPath("kill4.ck");
  const std::string marker = TempPath("kill4.marker");
  std::remove(ck.c_str());
  std::remove(marker.c_str());

  auto make_points = [&marker]() {
    std::vector<SweepPointSpec> pts;
    for (int i = 0; i < 8; ++i) {
      pts.push_back({PointId(i), [i, marker]() -> PointResult {
        if (i == 5 && !FileExists(marker)) {
          // First execution of p5: hard-kill the supervising process
          // exactly like a machine crash, then die payload-less.
          AppendByte(marker);
          ::kill(::getppid(), SIGKILL);
          std::this_thread::sleep_for(std::chrono::seconds(1));
          std::_Exit(kExitError);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return DeterministicPoint(i);
      }});
    }
    return pts;
  };

  // Run the -j4 sweep in a child process so the SIGKILL does not take
  // down the test binary.
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    SweepOptions opts;
    opts.checkpoint_path = ck;
    opts.jobs = 4;
    (void)run_sweep("kill4-drill", make_points(), opts);
    std::_Exit(7);  // unreachable: p5 kills this process mid-sweep
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "sweep must die from the SIGKILL";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The checkpoint holds a (possibly non-contiguous) strict subset of
  // the points, each of them intact; p5 cannot be among them.
  const auto mid = load_checkpoint(ck);
  EXPECT_LT(mid.points.size(), 8u);
  for (const auto& p : mid.points) {
    EXPECT_NE(p.id, "p5");
    EXPECT_EQ(p.outcome, Outcome::kOk);
  }

  // Resume at -j4: completed points come back from disk bit-exactly,
  // the rest (p5 included) run fresh.
  clear_interrupt();
  SweepOptions resume_opts;
  resume_opts.checkpoint_path = ck;
  resume_opts.resume = true;
  resume_opts.jobs = 4;
  const auto resumed = run_sweep("kill4-drill", make_points(), resume_opts);
  ASSERT_EQ(resumed.points.size(), 8u);
  EXPECT_EQ(resumed.reused, mid.points.size());
  EXPECT_EQ(resumed.degraded, 0u);

  const auto golden = run_sweep("kill4-golden", make_points(),
                                SweepOptions{});
  ExpectBitIdentical(golden, resumed);

  std::remove(ck.c_str());
  std::remove(marker.c_str());
}

// --- tracing across the fork boundary ---------------------------------

TEST(ParallelSweep, TraceMergesWorkerFragmentsWithDistinctPids) {
  const std::string trace = TempPath("trace.jsonl");
  std::remove(trace.c_str());
  obs::enable_trace_file(trace);
  SweepOptions opts;
  opts.jobs = 4;
  const auto sweep = run_sweep("trace-j4", DeterministicSpecs(8), opts);
  obs::flush_trace();
  obs::disable_trace();
  ASSERT_EQ(sweep.points.size(), 8u);

  // One merged file; every fragment was consumed on reap.
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(FileExists(trace + ".frag." + std::to_string(i))) << i;
  }

  std::ifstream in(trace);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "[");
  const int self = static_cast<int>(::getpid());
  std::set<std::string> pids;
  std::size_t records = 0;
  std::size_t worker_spans = 0;
  std::size_t parent_spans = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++records;
    // Structurally complete trace_event record, comma-terminated.
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.substr(line.size() - 2), "},") << line;
    EXPECT_NE(line.find("\"ph\":\"X\""), std::string::npos) << line;
    const std::size_t pid_at = line.find("\"pid\":");
    ASSERT_NE(pid_at, std::string::npos) << line;
    const std::size_t pid_end = line.find(',', pid_at);
    const std::string pid = line.substr(pid_at + 6, pid_end - pid_at - 6);
    pids.insert(pid);
    if (line.find("\"runner.worker.point\"") != std::string::npos) {
      ++worker_spans;
      // Worker records carry the worker's pid, not the supervisor's.
      EXPECT_NE(pid, std::to_string(self)) << line;
    }
    if (line.find("\"runner.point\"") != std::string::npos) {
      ++parent_spans;
      EXPECT_EQ(pid, std::to_string(self)) << line;
      EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos) << line;
    }
  }
  EXPECT_GE(records, 17u);  // 8 worker + 8 parent point spans + the sweep
  EXPECT_EQ(worker_spans, 8u);
  EXPECT_EQ(parent_spans, 8u);
  // A -j4 pool forks one process per point: the merged timeline must
  // show the supervisor plus several distinct worker pids.
  EXPECT_GE(pids.size(), 3u) << "want distinct worker pids in the merge";
  std::remove(trace.c_str());
}

// --- kernel thread-count determinism ----------------------------------

// One sweep point: solve a cluster large enough that the blocked kernels
// genuinely fan out across the linalg pool (T=2 repair, N=20 lumped:
// 231 phases, GEMM-dominated logred), and emit every released measure
// plus the trust verdict as metrics.
PointResult SolveClusterPoint(double rho) {
  const map::ServerModel server(
      medist::exponential_from_mean(90.0),
      medist::make_tpt(medist::TptSpec{2, 1.4, 0.2, 10.0}), 2.0, 0.2);
  const map::Mmpp mmpp = map::LumpedAggregate(server, 20).mmpp();
  const qbd::QbdSolution sol(qbd::m_mmpp_1(mmpp, rho * mmpp.mean_rate()));
  PointResult out;
  out.metrics.emplace_back("eq", sol.mean_queue_length());
  out.metrics.emplace_back("p_empty", sol.probability_empty());
  out.metrics.emplace_back("tail100", sol.tail(100));
  out.metrics.emplace_back(
      "verdict", static_cast<double>(sol.trust().verdict));
  return out;
}

std::vector<SweepPointSpec> SolveClusterSpecs() {
  std::vector<SweepPointSpec> pts;
  int i = 0;
  for (const double rho : {0.35, 0.6, 0.85}) {
    pts.push_back({PointId(i++), [rho]() { return SolveClusterPoint(rho); }});
  }
  return pts;
}

TEST(ThreadDeterminism, SweepIsByteIdenticalForAnyPoolWidth) {
  // The released CSV is a deterministic formatting of these doubles, so
  // byte-identical CSVs across PERFORMA_THREADS reduces to bit-identical
  // metric values -- including the verdict column. The pool override is
  // inherited across the sweep's fork into isolated workers.
  SweepOptions opts;
  opts.jobs = 2;
  linalg::set_pool_threads(1);
  const auto t1 = run_sweep("pool-w1", SolveClusterSpecs(), opts);
  linalg::set_pool_threads(2);
  const auto t2 = run_sweep("pool-w2", SolveClusterSpecs(), opts);
  linalg::set_pool_threads(8);
  const auto t8 = run_sweep("pool-w8", SolveClusterSpecs(), opts);
  linalg::set_pool_threads(0);  // back to the environment default

  ASSERT_EQ(t1.points.size(), 3u);
  EXPECT_EQ(t1.degraded, 0u);
  EXPECT_EQ(t8.degraded, 0u);
  ExpectBitIdentical(t1, t2);
  ExpectBitIdentical(t1, t8);
  for (const auto& pt : t1.points) {
    ASSERT_EQ(pt.metrics.back().first, "verdict");
    EXPECT_TRUE(BitEqual(
        pt.metrics.back().second,
        static_cast<double>(qbd::TrustVerdict::kCertified)))
        << pt.id;
  }
}

TEST(ParallelSweep, PoolMetricsCountPointsAndRetries) {
  obs::reset_metrics_for_test();
  auto make_specs = [](const std::string& tag) {
    std::vector<SweepPointSpec> pts;
    for (int i = 0; i < 4; ++i) {
      const std::string counter =
          TempPath("obsfault_" + tag + "_" + std::to_string(i));
      std::remove(counter.c_str());
      pts.push_back({PointId(i), [i, counter]() -> PointResult {
        AppendByte(counter);
        if (i == 0 && FileSize(counter) < 2) std::abort();
        return DeterministicPoint(i);
      }});
    }
    return pts;
  };
  SweepOptions opts;
  opts.jobs = 2;
  opts.retry = FastRetries(3);
  const auto sweep = run_sweep("obs-metrics", make_specs("m"), opts);
  ASSERT_EQ(sweep.points.size(), 4u);
  EXPECT_EQ(obs::counter("runner.points.done").value(), 4u);
  EXPECT_EQ(obs::counter("runner.points.degraded").value(), 0u);
  EXPECT_EQ(obs::counter("runner.retries").value(), 1u);  // p0 crashed once
  EXPECT_EQ(obs::histogram("runner.point.seconds").count(), 4u);
  EXPECT_GT(obs::gauge("runner.point.latency_ema").value(), 0.0);
  // The pool is idle again.
  EXPECT_EQ(obs::gauge("runner.points.inflight").value(), 0.0);
  EXPECT_EQ(obs::gauge("runner.points.retrying").value(), 0.0);
  obs::reset_metrics_for_test();
}

}  // namespace
}  // namespace performa::runner
