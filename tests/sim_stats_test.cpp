#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/errors.h"
#include "sim/random.h"
#include "test_util.h"

namespace performa::sim {
namespace {

TEST(SampleStats, HandComputed) {
  SampleStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-14);
  // Population variance is 4; sample variance 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(SampleStats, DegenerateCases) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(SampleStats, LargeShiftNumericallyStable) {
  // Welford must not lose precision with a large offset.
  SampleStats s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean() - offset, 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(TimeWeightedStats, HandComputed) {
  TimeWeightedStats t(10);
  t.add(0, 2.0);
  t.add(3, 1.0);
  t.add(1, 1.0);
  EXPECT_NEAR(t.total_time(), 4.0, 1e-14);
  EXPECT_NEAR(t.mean(), (0 * 2 + 3 * 1 + 1 * 1) / 4.0, 1e-14);
  EXPECT_NEAR(t.pmf(0), 0.5, 1e-14);
  EXPECT_NEAR(t.pmf(3), 0.25, 1e-14);
  EXPECT_NEAR(t.tail(1), 0.5, 1e-14);
  EXPECT_NEAR(t.tail(4), 0.0, 1e-14);
}

TEST(TimeWeightedStats, CapPoolsOverflow) {
  TimeWeightedStats t(5);
  t.add(100, 1.0);  // above cap -> pooled at 5
  t.add(2, 1.0);
  EXPECT_NEAR(t.pmf(5), 0.5, 1e-14);
  EXPECT_NEAR(t.tail(5), 0.5, 1e-14);
  // The mean keeps the exact level, not the capped one.
  EXPECT_NEAR(t.mean(), 51.0, 1e-12);
}

TEST(TimeWeightedStats, ResetClears) {
  TimeWeightedStats t(5);
  t.add(1, 1.0);
  t.reset();
  EXPECT_EQ(t.total_time(), 0.0);
  EXPECT_THROW(t.mean(), InvalidArgument);
}

TEST(TimeWeightedStats, RejectsNegativeDuration) {
  TimeWeightedStats t(5);
  EXPECT_THROW(t.add(1, -0.5), InvalidArgument);
}

TEST(TQuantile, TableValues) {
  EXPECT_NEAR(t_quantile_95(1), 12.706, 1e-9);
  EXPECT_NEAR(t_quantile_95(9), 2.262, 1e-9);
  EXPECT_NEAR(t_quantile_95(30), 2.042, 1e-9);
  EXPECT_NEAR(t_quantile_95(1000), 1.96, 1e-9);
  EXPECT_EQ(t_quantile_95(0), 0.0);
}

TEST(ReplicationSummary, HandComputed) {
  const auto s = summarize_replications({1.0, 2.0, 3.0});
  EXPECT_EQ(s.replications, 3u);
  EXPECT_NEAR(s.mean, 2.0, 1e-14);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  // t(2, 97.5%) = 4.303; CI = 4.303 * 1/sqrt(3).
  EXPECT_NEAR(s.ci_halfwidth, 4.303 / std::sqrt(3.0), 1e-9);
}

TEST(ReplicationSummary, SingleValueNoCi) {
  const auto s = summarize_replications({5.0});
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.ci_halfwidth, 0.0);
  EXPECT_THROW(summarize_replications({}), InvalidArgument);
}

TEST(BatchMeans, ConstantLevelGivesZeroVariance) {
  BatchMeans bm(4);
  bm.add(3.0, 100.0);
  ASSERT_GE(bm.complete_batches(), 2u);
  const auto s = bm.summary();
  EXPECT_NEAR(s.mean, 3.0, 1e-12);
  EXPECT_NEAR(s.ci_halfwidth, 0.0, 1e-10);
}

TEST(BatchMeans, MergesAndBoundsMemory) {
  BatchMeans bm(4);
  // Feed far more than 8 batch durations; batch count must stay < 8.
  for (int i = 0; i < 1000; ++i) bm.add(i % 2, 1.0);
  EXPECT_LT(bm.complete_batches(), 8u);
  EXPECT_GT(bm.batch_duration(), 1.0);
  EXPECT_NEAR(bm.summary().mean, 0.5, 0.05);
}

TEST(BatchMeans, CiCoversIidMean) {
  // Alternating exponential levels: time-average = 0.5 between levels 0/1.
  Rng rng(21);
  BatchMeans bm(16);
  std::exponential_distribution<double> exp1(1.0);
  for (int i = 0; i < 200000; ++i) bm.add(i % 2, exp1(rng));
  const auto s = bm.summary();
  EXPECT_NEAR(s.mean, 0.5, 3.0 * std::max(s.ci_halfwidth, 1e-3));
  EXPECT_GT(s.ci_halfwidth, 0.0);
}

TEST(BatchMeans, Validation) {
  EXPECT_THROW(BatchMeans(1), InvalidArgument);
  BatchMeans bm(4);
  EXPECT_THROW(bm.add(1.0, -1.0), InvalidArgument);
  EXPECT_THROW(bm.summary(), NumericalError);  // nothing observed yet
}

TEST(RandomSamplers, ExponentialMean) {
  Rng rng(7);
  auto s = exponential_sampler(2.0);
  SampleStats acc;
  for (int i = 0; i < 100000; ++i) acc.add(s(rng));
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_THROW(exponential_sampler(0.0), InvalidArgument);
}

TEST(RandomSamplers, Deterministic) {
  Rng rng(1);
  auto s = deterministic_sampler(3.5);
  EXPECT_EQ(s(rng), 3.5);
  EXPECT_THROW(deterministic_sampler(-1.0), InvalidArgument);
}

TEST(RandomSamplers, LognormalMoments) {
  Rng rng(3);
  auto s = lognormal_sampler(2.0, 5.3);
  SampleStats acc;
  for (int i = 0; i < 400000; ++i) acc.add(s(rng));
  EXPECT_NEAR(acc.mean(), 2.0, 0.05);
  EXPECT_NEAR(acc.variance() / (acc.mean() * acc.mean()), 5.3, 0.6);
  EXPECT_THROW(lognormal_sampler(-1.0, 1.0), InvalidArgument);
}

TEST(RandomSamplers, BoundedParetoRange) {
  Rng rng(5);
  auto s = bounded_pareto_sampler(1.4, 1.0, 100.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = s(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
  EXPECT_THROW(bounded_pareto_sampler(1.4, 5.0, 1.0), InvalidArgument);
}

TEST(RandomSamplers, BoundedParetoTailExponent) {
  // Empirical CCDF slope on [2, 20] should be ~ -alpha.
  Rng rng(11);
  auto s = bounded_pareto_sampler(1.4, 1.0, 1000.0);
  const int n = 400000;
  int above2 = 0, above20 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = s(rng);
    if (x > 2.0) ++above2;
    if (x > 20.0) ++above20;
  }
  const double slope = std::log(static_cast<double>(above20) / above2) /
                       std::log(10.0);
  EXPECT_NEAR(slope, -1.4, 0.1);
}

TEST(RandomSamplers, MeSamplerMatchesDistribution) {
  Rng rng(13);
  const auto dist = medist::erlang_dist(3, 2.0);
  auto s = me_sampler(dist);
  SampleStats acc;
  for (int i = 0; i < 100000; ++i) acc.add(s(rng));
  EXPECT_NEAR(acc.mean(), 2.0, 0.03);
}

TEST(DeriveSeed, ProducesDistinctStreams) {
  const std::uint64_t a = derive_seed(42, 0);
  const std::uint64_t b = derive_seed(42, 1);
  const std::uint64_t c = derive_seed(43, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(42, 0));  // deterministic
}

TEST(NonFiniteGuards, SampleStatsRejectsNanAndInf) {
  SampleStats s;
  s.add(1.0);
  EXPECT_THROW(s.add(std::nan("")), NonFiniteError);
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()), NonFiniteError);
  // The accumulator stays unpoisoned after a rejected sample.
  s.add(3.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(NonFiniteGuards, TimeWeightedStatsRejectsNonFiniteDuration) {
  TimeWeightedStats t(8);
  t.add(1, 2.0);
  EXPECT_THROW(t.add(1, std::nan("")), NonFiniteError);
  EXPECT_THROW(t.add(2, std::numeric_limits<double>::infinity()),
               NonFiniteError);
  EXPECT_DOUBLE_EQ(t.total_time(), 2.0);
  EXPECT_DOUBLE_EQ(t.mean(), 1.0);
}

TEST(NonFiniteGuards, BatchMeansRejectsNonFinite) {
  BatchMeans b(4);
  b.add(1.0, 1.0);
  EXPECT_THROW(b.add(std::nan(""), 1.0), NonFiniteError);
  EXPECT_THROW(b.add(1.0, std::numeric_limits<double>::infinity()),
               NonFiniteError);
}

TEST(NonFiniteGuards, LogHistogramRejectsNan) {
  LogHistogram h;
  h.add(1.0);
  EXPECT_THROW(h.add(std::nan("")), NonFiniteError);
  EXPECT_EQ(h.count(), 1u);
}

TEST(NonFiniteGuards, SummarizePropagatesTypedError) {
  // A NaN replication estimate must surface as the typed error, not as a
  // silently-NaN mean.
  EXPECT_THROW(summarize_replications({1.0, std::nan(""), 2.0}),
               NonFiniteError);
}

}  // namespace
}  // namespace performa::sim
