#include "linalg/kron.h"

#include <gtest/gtest.h>

#include "linalg/ctmc.h"
#include "test_util.h"

namespace performa::linalg {
namespace {

using performa::testing::RandomGenerator;
using performa::testing::RandomMatrix;

TEST(Kron, HandComputedProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0, 1}, {1, 0}};
  Matrix k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  // Block (0,0) = 1*B, block (0,1) = 2*B.
  EXPECT_EQ(k(0, 1), 1.0);
  EXPECT_EQ(k(0, 3), 2.0);
  EXPECT_EQ(k(2, 1), 3.0);
  EXPECT_EQ(k(3, 2), 4.0);
}

TEST(Kron, IdentityKronIdentityIsIdentity) {
  const Matrix k = kron(Matrix::identity(3), Matrix::identity(4));
  EXPECT_LT(max_abs_diff(k, Matrix::identity(12)), 1e-15);
}

TEST(Kron, MixedProductProperty) {
  // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
  const Matrix a = RandomMatrix(2, 1);
  const Matrix b = RandomMatrix(3, 2);
  const Matrix c = RandomMatrix(2, 3);
  const Matrix d = RandomMatrix(3, 4);
  EXPECT_LT(max_abs_diff(kron(a, b) * kron(c, d), kron(a * c, b * d)), 1e-12);
}

TEST(Kron, VectorIdentity) {
  // (A ⊗ B)(x ⊗ y) = (Ax) ⊗ (By)
  const Matrix a = RandomMatrix(3, 5);
  const Matrix b = RandomMatrix(2, 6);
  const Vector x{1.0, -2.0, 0.5};
  const Vector y{0.3, 2.0};
  EXPECT_LT(max_abs_diff(kron(a, b) * kron(x, y), kron(a * x, b * y)), 1e-13);
}

TEST(KronSum, RequiresSquare) {
  EXPECT_THROW(kron_sum(Matrix(2, 3), Matrix::identity(2)), InvalidArgument);
}

TEST(KronSum, GeneratorClosedUnderKronSum) {
  // The Kronecker sum of two generators is the generator of the joint
  // independent chain.
  const Matrix q1 = RandomGenerator(3, 7);
  const Matrix q2 = RandomGenerator(4, 8);
  const Matrix joint = kron_sum(q1, q2);
  EXPECT_TRUE(is_generator(joint));
}

TEST(KronSum, JointStationaryIsProduct) {
  // pi_joint = pi_1 ⊗ pi_2 for independent chains.
  const Matrix q1 = RandomGenerator(3, 17);
  const Matrix q2 = RandomGenerator(2, 18);
  const Vector pi1 = stationary_distribution(q1);
  const Vector pi2 = stationary_distribution(q2);
  const Vector joint = stationary_distribution(kron_sum(q1, q2));
  EXPECT_LT(max_abs_diff(joint, kron(pi1, pi2)), 1e-12);
}

TEST(KronPower, MatchesRepeatedKron) {
  const Matrix a = RandomMatrix(2, 33);
  EXPECT_LT(max_abs_diff(kron_power(a, 3), kron(kron(a, a), a)), 1e-13);
  EXPECT_LT(max_abs_diff(kron_power(a, 1), a), 1e-15);
  EXPECT_THROW(kron_power(a, 0), InvalidArgument);
}

TEST(KronSumPower, DimensionGrowth) {
  const Matrix q = RandomGenerator(3, 9);
  EXPECT_EQ(kron_sum_power(q, 2).rows(), 9u);
  EXPECT_EQ(kron_sum_power(q, 3).rows(), 27u);
  EXPECT_TRUE(is_generator(kron_sum_power(q, 3)));
}

// Property: exp over Kronecker sum factorizes -- checked indirectly via
// stationary vectors across a parameter sweep of chain sizes.
class KronSumProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KronSumProperty, StationaryFactorizes) {
  const auto [n1, n2] = GetParam();
  const Matrix q1 = RandomGenerator(n1, static_cast<unsigned>(10 * n1 + n2));
  const Matrix q2 = RandomGenerator(n2, static_cast<unsigned>(20 * n2 + n1));
  const Vector joint = stationary_distribution(kron_sum(q1, q2));
  const Vector product =
      kron(stationary_distribution(q1), stationary_distribution(q2));
  EXPECT_LT(max_abs_diff(joint, product), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KronSumProperty,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{2, 5},
                                           std::pair<std::size_t, std::size_t>{4, 3},
                                           std::pair<std::size_t, std::size_t>{6, 2},
                                           std::pair<std::size_t, std::size_t>{5, 5}));

}  // namespace
}  // namespace performa::linalg
