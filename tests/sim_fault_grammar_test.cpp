// Table-driven negative tests for the fault-injection scenario grammar:
// every malformed spec must be rejected with an InvalidArgument whose
// message pinpoints the offending token AND its 1-based position in the
// full spec -- the error contract that makes a typo deep inside a
// combined scenario debuggable from the CLI.
#include <gtest/gtest.h>

#include <string>

#include "linalg/errors.h"
#include "sim/fault_injection.h"

namespace performa::sim {
namespace {

struct MalformedCase {
  const char* name;     // test-output label
  const char* spec;     // the malformed scenario
  const char* token;    // token the error must quote (incl. quotes)
  int position;         // 1-based column the error must report
  const char* why;      // failure-kind phrase the message must contain
};

const MalformedCase kCases[] = {
    {"unknown_clause", "bogus", "'bogus'", 1, "unknown clause"},
    {"unknown_clause_after_valid", "common-mode-2@50+bogus", "'bogus'", 18,
     "unknown clause"},
    {"burst_size_not_number", "burst-x@120", "'x'", 7, "bad number"},
    {"missing_size", "common-mode-@50", "'common-mode-@50'", 1,
     "expected <size>@<time> in clause"},
    {"missing_at_sign", "common-mode-2", "'common-mode-2'", 1,
     "expected <size>@<time> in clause"},
    {"refail_not_number", "refail-abc", "'abc'", 8, "bad number"},
    {"fractional_crash_size", "common-mode-2.5@50", "'2.5'", 13,
     "size must be a positive integer"},
    {"zero_burst_size", "burst-0@10", "'0'", 7,
     "size must be a positive integer"},
    {"missing_time", "common-mode-2@", "'<empty>'", 15, "bad number"},
    {"trailing_plus", "zero-repair+", "'<empty>'", 13, "unknown clause"},
    {"double_at_sign", "burst-5@@9", "'@9'", 9, "bad number"},
    {"bad_second_clause", "refail-0.5+refail-oops", "'oops'", 19,
     "bad number"},
    {"word_as_size", "common-mode-two@50", "'two'", 13, "bad number"},
    {"truncated_exponent", "burst-3@1e", "'1e'", 9, "bad number"},
};

TEST(FaultGrammarTest, MalformedSpecsNameTokenAndPosition) {
  for (const MalformedCase& c : kCases) {
    SCOPED_TRACE(std::string(c.name) + ": spec '" + c.spec + "'");
    try {
      parse_scenario(c.spec);
      FAIL() << "expected InvalidArgument for '" << c.spec << "'";
    } catch (const InvalidArgument& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find(c.token), std::string::npos)
          << "message must quote the offending token " << c.token
          << ", got: " << message;
      const std::string at =
          "at position " + std::to_string(c.position) + " ";
      EXPECT_NE(message.find(at), std::string::npos)
          << "message must report '" << at << "', got: " << message;
      EXPECT_NE(message.find(c.why), std::string::npos)
          << "message must contain '" << c.why << "', got: " << message;
      // The full spec is echoed so the position is actionable.
      EXPECT_NE(message.find(std::string("in '") + c.spec + "'"),
                std::string::npos)
          << "message must echo the spec, got: " << message;
    }
  }
}

TEST(FaultGrammarTest, ErrorsIncludeTheGrammarReference) {
  try {
    parse_scenario("not-a-clause");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    // Every parse error appends the grammar so the fix is one read away.
    EXPECT_NE(std::string(e.what()).find("common-mode-<k>@<t>"),
              std::string::npos);
  }
}

TEST(FaultGrammarTest, ValidSpecStillParses) {
  // Guard against the negative table passing because parsing broke
  // entirely.
  const FaultPlan plan =
      parse_scenario("common-mode-2@50+burst-200@60+refail-0.3");
  EXPECT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.repair_preemption, 0.3);
}

}  // namespace
}  // namespace performa::sim
