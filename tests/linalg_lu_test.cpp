#include "linalg/lu.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace performa::linalg {
namespace {

using performa::testing::RandomDominantMatrix;
using performa::testing::RandomMatrix;

TEST(Lu, SolvesHandSystem) {
  Matrix a{{2, 1}, {1, 3}};
  Vector b{3, 5};
  Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-14);
  EXPECT_NEAR(x[1], 1.4, 1e-14);
}

TEST(Lu, DeterminantHandComputed) {
  EXPECT_NEAR(Lu(Matrix{{2, 1}, {1, 3}}).determinant(), 5.0, 1e-14);
  // Pivoting flips the sign internally; determinant must not.
  EXPECT_NEAR(Lu(Matrix{{0, 1}, {1, 0}}).determinant(), -1.0, 1e-14);
}

TEST(Lu, SingularThrows) {
  EXPECT_THROW(Lu(Matrix{{1, 2}, {2, 4}}), NumericalError);
  EXPECT_THROW(Lu(Matrix{{0, 0}, {0, 0}}), NumericalError);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(Lu(Matrix(2, 3)), InvalidArgument);
}

TEST(Lu, LengthMismatchThrows) {
  Lu lu(Matrix{{1, 0}, {0, 1}});
  EXPECT_THROW(lu.solve(Vector{1.0}), InvalidArgument);
  EXPECT_THROW(lu.solve_left(Vector{1.0, 2.0, 3.0}), InvalidArgument);
}

TEST(Lu, InverseOfIdentityIsIdentity) {
  const Matrix eye = Matrix::identity(4);
  EXPECT_LT(max_abs_diff(inverse(eye), eye), 1e-15);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a{{0, 1}, {1, 0}};
  Vector x = solve(a, Vector{2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, SolveLeftMatchesTransposedSolve) {
  const Matrix a = RandomDominantMatrix(7, 11);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Vector b(7);
  for (double& x : b) x = uni(rng);

  const Vector x_left = Lu(a).solve_left(b);
  const Vector x_t = Lu(a.transposed()).solve(b);
  EXPECT_LT(max_abs_diff(x_left, x_t), 1e-11);
}

TEST(Lu, MatrixRhsSolve) {
  const Matrix a = RandomDominantMatrix(5, 3);
  const Matrix b = RandomMatrix(5, 4);
  const Matrix x = solve(a, b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-11);
}

TEST(Lu, SolveLeftMatrixRhs) {
  const Matrix a = RandomDominantMatrix(5, 8);
  const Matrix b = RandomMatrix(5, 9);
  const Matrix x = Lu(a).solve_left(b);
  EXPECT_LT(max_abs_diff(x * a, b), 1e-11);
}

// Property sweep across sizes and seeds: residuals of solve/inverse.
struct LuCase {
  std::size_t n;
  unsigned seed;
};

class LuProperty : public ::testing::TestWithParam<LuCase> {};

TEST_P(LuProperty, ResidualsSmall) {
  const auto [n, seed] = GetParam();
  const Matrix a = RandomDominantMatrix(n, seed);
  std::mt19937_64 rng(seed + 1);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Vector b(n);
  for (double& x : b) x = uni(rng);

  const Lu lu(a);
  const Vector x = lu.solve(b);
  Vector residual = a * x;
  for (std::size_t i = 0; i < n; ++i) residual[i] -= b[i];
  EXPECT_LT(norm_inf(residual), 1e-10);

  const Matrix inv = lu.inverse();
  EXPECT_LT(max_abs_diff(a * inv, Matrix::identity(n)), 1e-9);
  EXPECT_LT(max_abs_diff(inv * a, Matrix::identity(n)), 1e-9);

  // det(A) * det(A^{-1}) == 1
  EXPECT_NEAR(lu.determinant() * Lu(inv).determinant(), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LuProperty,
    ::testing::Values(LuCase{1, 0}, LuCase{2, 1}, LuCase{3, 2}, LuCase{5, 3},
                      LuCase{8, 4}, LuCase{16, 5}, LuCase{32, 6},
                      LuCase{64, 7}, LuCase{100, 8}));

// Regression guard: general (non-dominant) random matrices force real row
// pivoting; a permutation-handling bug in solve() once survived the
// dominant-only sweep above.
class LuPivotingProperty : public ::testing::TestWithParam<LuCase> {};

TEST_P(LuPivotingProperty, PivotedSolvesAreAccurate) {
  const auto [n, seed] = GetParam();
  const Matrix a = RandomMatrix(n, seed);
  std::mt19937_64 rng(seed + 77);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Vector b(n);
  for (double& x : b) x = uni(rng);

  const Lu lu(a);
  {
    const Vector x = lu.solve(b);
    Vector residual = a * x;
    for (std::size_t i = 0; i < n; ++i) residual[i] -= b[i];
    EXPECT_LT(norm_inf(residual), 1e-9 * std::max(1.0, norm_inf(x)));
  }
  {
    const Vector x = lu.solve_left(b);
    Vector residual = x * a;
    for (std::size_t i = 0; i < n; ++i) residual[i] -= b[i];
    EXPECT_LT(norm_inf(residual), 1e-9 * std::max(1.0, norm_inf(x)));
  }
  EXPECT_LT(max_abs_diff(a * lu.inverse(), Matrix::identity(n)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LuPivotingProperty,
    ::testing::Values(LuCase{2, 10}, LuCase{3, 1}, LuCase{3, 11},
                      LuCase{4, 12}, LuCase{5, 13}, LuCase{8, 14},
                      LuCase{8, 15}, LuCase{16, 16}, LuCase{33, 17},
                      LuCase{64, 18}));

}  // namespace
}  // namespace performa::linalg
