// Kernel-equivalence harness for the pluggable linalg backends.
//
// The reference backend is the executable specification; these property
// tests pin the blocked/threaded backend to it:
//
//   * GEMM / GEMM-subtract, LU factorization, multi-RHS solves and the
//     matrix exponential agree element-wise to <= 8 ulps (signed zeros
//     compare equal) across sizes 1..97 -- prime and odd sizes exercise
//     every tile-remainder path -- and across sizes >= 128 where the
//     panel/GEMM LU formulation actually engages.
//   * Pivot decisions are *identical*, not merely close: the blocked LU
//     must choose the reference's permutation.
//   * Both backends raise the same error taxonomy (InvalidArgument,
//     NumericalError on singularity, DeadlineError on expiry) from the
//     same inputs.
//   * Results are bit-identical for any PERFORMA_THREADS value (the
//     determinism contract of DESIGN.md section 12), and pool_shutdown()
//     leaves no worker thread behind.
#include "linalg/kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "linalg/expm.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/pool.h"
#include "obs/deadline.h"
#include "test_util.h"

namespace performa::linalg {
namespace {

using performa::testing::RandomDominantMatrix;
using performa::testing::RandomMatrix;

// RAII backend override so a failing test cannot leak its backend (or a
// thread-count override) into the rest of the suite.
class BackendGuard {
 public:
  explicit BackendGuard(KernelBackend b) : saved_(kernel_backend()) {
    set_kernel_backend(b);
  }
  ~BackendGuard() { set_kernel_backend(saved_); }

 private:
  KernelBackend saved_;
};

class ThreadGuard {
 public:
  explicit ThreadGuard(unsigned n) { set_pool_threads(n); }
  ~ThreadGuard() { set_pool_threads(0); }
};

// Distance in representable doubles, the unit the equivalence contract is
// written in. Signed zeros are equal; any NaN/Inf disagreement is maximal.
std::uint64_t UlpDistance(double a, double b) {
  if (a == b) return 0;  // covers +0.0 vs -0.0
  if (!std::isfinite(a) || !std::isfinite(b)) return UINT64_MAX;
  if ((a < 0) != (b < 0)) return UINT64_MAX;
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua > ub ? ua - ub : ub - ua;
}

std::uint64_t MaxUlpDiff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    worst = std::max(worst, UlpDistance(a.data()[i], b.data()[i]));
  }
  return worst;
}

// Sizes 1..97 with every tile-remainder class represented: below/at/above
// the 4x8 micro-kernel, the 32-row GEMM strip, the 64-column solve chunk,
// and primes that are remainders against all of them at once.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17,
                              24, 31, 32, 33, 47, 48, 63, 64, 65, 79,
                              80, 89, 96, 97};

// Sizes past the 2*kPanel threshold where lu_factor dispatches the
// panel/GEMM formulation (prime 131/193 exercise ragged final panels).
const std::size_t kBlockedLuSizes[] = {128, 131, 160, 193};

Matrix RectRandom(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Matrix m(r, c);
  for (auto& x : m.data()) x = uni(rng);
  return m;
}

// A random matrix with ~60% exact zeros: drives the mostly_zero probe
// into the sparse (zero-skipping) path on one operand shape and not the
// other, so both dispatch arms get compared against the reference.
Matrix SparseRandom(std::size_t r, std::size_t c, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Matrix m(r, c, 0.0);
  for (auto& x : m.data()) {
    if (rng() % 10 < 4) x = uni(rng);
  }
  return m;
}

Matrix GemmWith(KernelBackend backend, const Matrix& a, const Matrix& b) {
  BackendGuard guard(backend);
  return a * b;
}

TEST(KernelEquivalence, GemmMatchesReferenceAcrossSizes) {
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Matrix a = RandomMatrix(n, static_cast<unsigned>(1000 + n));
    const Matrix b = RandomMatrix(n, static_cast<unsigned>(2000 + n));
    const Matrix ref = GemmWith(KernelBackend::kReference, a, b);
    const Matrix blk = GemmWith(KernelBackend::kBlocked, a, b);
    EXPECT_LE(MaxUlpDiff(ref, blk), 8u);
  }
}

TEST(KernelEquivalence, GemmMatchesReferenceOnRectangles) {
  // Non-square shapes: every (m, k, n) is a different remainder pattern.
  const std::size_t shapes[][3] = {{1, 97, 5},  {33, 1, 64}, {97, 13, 1},
                                   {5, 64, 33}, {64, 97, 7}, {31, 8, 89}};
  unsigned seed = 77;
  for (const auto& s : shapes) {
    SCOPED_TRACE(std::to_string(s[0]) + "x" + std::to_string(s[1]) + "x" +
                 std::to_string(s[2]));
    const Matrix a = RectRandom(s[0], s[1], ++seed);
    const Matrix b = RectRandom(s[1], s[2], ++seed);
    const Matrix ref = GemmWith(KernelBackend::kReference, a, b);
    const Matrix blk = GemmWith(KernelBackend::kBlocked, a, b);
    EXPECT_LE(MaxUlpDiff(ref, blk), 8u);
  }
}

TEST(KernelEquivalence, GemmSparseOperandTakesSameValuePath) {
  for (const std::size_t n : {17u, 64u, 97u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Matrix a = SparseRandom(n, n, 300 + static_cast<unsigned>(n));
    const Matrix b = RandomMatrix(n, 400 + static_cast<unsigned>(n));
    const Matrix ref = GemmWith(KernelBackend::kReference, a, b);
    const Matrix blk = GemmWith(KernelBackend::kBlocked, a, b);
    EXPECT_LE(MaxUlpDiff(ref, blk), 8u);
  }
}

TEST(KernelEquivalence, GemmSubMatchesReference) {
  for (const std::size_t n : {5u, 31u, 64u, 97u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Matrix a = RandomMatrix(n, 500 + static_cast<unsigned>(n));
    const Matrix b = RandomMatrix(n, 600 + static_cast<unsigned>(n));
    Matrix c_ref = RandomMatrix(n, 700 + static_cast<unsigned>(n));
    Matrix c_blk = c_ref;
    {
      BackendGuard guard(KernelBackend::kReference);
      kern::gemm_sub(n, n, n, a.data().data(), n, b.data().data(), n,
                     c_ref.data().data(), n);
    }
    {
      BackendGuard guard(KernelBackend::kBlocked);
      kern::gemm_sub(n, n, n, a.data().data(), n, b.data().data(), n,
                     c_blk.data().data(), n);
    }
    EXPECT_LE(MaxUlpDiff(c_ref, c_blk), 8u);
  }
}

struct LuFactors {
  Matrix lu{0, 0};
  std::vector<std::size_t> piv;
  int sign = 1;
  double min_pivot = 0.0;
};

LuFactors FactorWith(KernelBackend backend, const Matrix& a) {
  BackendGuard guard(backend);
  LuFactors f;
  f.lu = a;
  f.piv.resize(a.rows());
  f.min_pivot = std::numeric_limits<double>::infinity();
  kern::lu_factor(a.rows(), f.lu.data().data(), a.rows(), f.piv.data(),
                  &f.sign, &f.min_pivot);
  return f;
}

TEST(KernelEquivalence, LuFactorsMatchAcrossSmallSizes) {
  // Below 2*kPanel both backends share the rank-1 loop; the contract must
  // hold trivially (and exactly) there too.
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Matrix a = RandomDominantMatrix(n, 900 + static_cast<unsigned>(n));
    const LuFactors ref = FactorWith(KernelBackend::kReference, a);
    const LuFactors blk = FactorWith(KernelBackend::kBlocked, a);
    EXPECT_EQ(ref.piv, blk.piv);
    EXPECT_EQ(ref.sign, blk.sign);
    EXPECT_EQ(MaxUlpDiff(ref.lu, blk.lu), 0u);
    EXPECT_EQ(UlpDistance(ref.min_pivot, blk.min_pivot), 0u);
  }
}

TEST(KernelEquivalence, BlockedLuMatchesReferencePivotsAndFactors) {
  for (const std::size_t n : kBlockedLuSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    // Plain random (not diagonally dominant) so pivoting has real work:
    // row swaps happen at nearly every elimination step.
    Matrix a = RandomMatrix(n, 1100 + static_cast<unsigned>(n));
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.5;  // keep regular
    const LuFactors ref = FactorWith(KernelBackend::kReference, a);
    const LuFactors blk = FactorWith(KernelBackend::kBlocked, a);
    EXPECT_EQ(ref.piv, blk.piv) << "pivot chains diverged";
    EXPECT_EQ(ref.sign, blk.sign);
    EXPECT_LE(MaxUlpDiff(ref.lu, blk.lu), 8u);
    EXPECT_LE(UlpDistance(ref.min_pivot, blk.min_pivot), 8u);
  }
}

TEST(KernelEquivalence, LuSolveMultiRhsMatchesReference) {
  for (const std::size_t n : {7u, 33u, 65u, 97u}) {
    for (const std::size_t nrhs : {1u, 5u, 64u, 96u}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " nrhs=" + std::to_string(nrhs));
      const Matrix a =
          RandomDominantMatrix(n, 1300 + static_cast<unsigned>(n + nrhs));
      const Matrix b =
          RectRandom(n, nrhs, 1400 + static_cast<unsigned>(n + nrhs));
      Matrix x_ref(0, 0), x_blk(0, 0);
      {
        BackendGuard guard(KernelBackend::kReference);
        x_ref = Lu(a).solve(b);
      }
      {
        BackendGuard guard(KernelBackend::kBlocked);
        x_blk = Lu(a).solve(b);
      }
      EXPECT_LE(MaxUlpDiff(x_ref, x_blk), 8u);
    }
  }
}

TEST(KernelEquivalence, LuSolveLeftMultiRowMatchesReference) {
  for (const std::size_t n : {7u, 33u, 65u, 97u}) {
    for (const std::size_t nrows : {1u, 9u, 64u}) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " nrows=" + std::to_string(nrows));
      const Matrix a =
          RandomDominantMatrix(n, 1500 + static_cast<unsigned>(n + nrows));
      const Matrix b =
          RectRandom(nrows, n, 1600 + static_cast<unsigned>(n + nrows));
      Matrix x_ref(0, 0), x_blk(0, 0);
      {
        BackendGuard guard(KernelBackend::kReference);
        x_ref = Lu(a).solve_left(b);
      }
      {
        BackendGuard guard(KernelBackend::kBlocked);
        x_blk = Lu(a).solve_left(b);
      }
      EXPECT_LE(MaxUlpDiff(x_ref, x_blk), 8u);
    }
  }
}

TEST(KernelEquivalence, ExpmMatchesReference) {
  // expm = Pade-13 over repeated GEMMs + LU solve + squarings: an
  // end-to-end composition of every kernel under test.
  for (const std::size_t n : {3u, 17u, 48u, 65u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::mt19937_64 rng(1700 + n);
    std::uniform_real_distribution<double> uni(0.05, 2.0);
    Matrix q(n, n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      double total = 0.0;
      for (std::size_t c = 0; c < n; ++c) {
        if (r == c) continue;
        q(r, c) = uni(rng);
        total += q(r, c);
      }
      q(r, r) = -total;
    }
    Matrix e_ref(0, 0), e_blk(0, 0);
    {
      BackendGuard guard(KernelBackend::kReference);
      e_ref = expm(5.0 * q);
    }
    {
      BackendGuard guard(KernelBackend::kBlocked);
      e_blk = expm(5.0 * q);
    }
    EXPECT_LE(MaxUlpDiff(e_ref, e_blk), 8u);
  }
}

// --- Error taxonomy: both backends refuse the same inputs the same way ---

TEST(KernelErrorTaxonomy, SingularThrowsNumericalErrorInBothBackends) {
  for (const KernelBackend backend :
       {KernelBackend::kReference, KernelBackend::kBlocked}) {
    SCOPED_TRACE(to_string(backend));
    BackendGuard guard(backend);
    // Small: the shared rank-1 path.
    EXPECT_THROW(Lu(Matrix{{1, 2}, {2, 4}}), NumericalError);
    // Large enough for the blocked panel path, singular in the *second*
    // panel: a zero column at 140 only surfaces after one full panel and
    // its trailing update have run.
    Matrix a = RandomDominantMatrix(160, 42);
    for (std::size_t i = 0; i < 160; ++i) a(i, 140) = 0.0;
    EXPECT_THROW(Lu{a}, NumericalError);
  }
}

TEST(KernelErrorTaxonomy, ShapeErrorsAreBackendIndependent) {
  for (const KernelBackend backend :
       {KernelBackend::kReference, KernelBackend::kBlocked}) {
    SCOPED_TRACE(to_string(backend));
    BackendGuard guard(backend);
    EXPECT_THROW(Lu(Matrix(2, 3)), InvalidArgument);
    EXPECT_THROW(Matrix(2, 2) * Matrix(3, 3), InvalidArgument);
  }
}

TEST(KernelErrorTaxonomy, ExpiredDeadlineAbortsLargeLuInBothBackends) {
  for (const KernelBackend backend :
       {KernelBackend::kReference, KernelBackend::kBlocked}) {
    SCOPED_TRACE(to_string(backend));
    BackendGuard guard(backend);
    const Matrix a = RandomDominantMatrix(160, 43);
    obs::DeadlineScope scope(obs::Deadline::after_seconds(-1.0));
    EXPECT_THROW(Lu{a}, DeadlineError);
    // Small factorizations never poll: they must still complete.
    EXPECT_NO_THROW(Lu(RandomDominantMatrix(16, 44)));
  }
}

TEST(KernelErrorTaxonomy, IllConditionedStillFactorsIdentically) {
  // Near-singular but representable: a graded matrix with row scales down
  // to 1e-12. Both backends must agree on pivots, factors, and the
  // min-pivot diagnostic that feeds the condition estimate.
  const std::size_t n = 150;
  Matrix a = RandomDominantMatrix(n, 45);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::pow(10.0, -12.0 * static_cast<double>(i) /
                                            static_cast<double>(n - 1));
    for (std::size_t j = 0; j < n; ++j) a(i, j) *= scale;
  }
  const LuFactors ref = FactorWith(KernelBackend::kReference, a);
  const LuFactors blk = FactorWith(KernelBackend::kBlocked, a);
  EXPECT_EQ(ref.piv, blk.piv);
  EXPECT_LE(UlpDistance(ref.min_pivot, blk.min_pivot), 8u);
  EXPECT_LE(MaxUlpDiff(ref.lu, blk.lu), 8u);
}

// --- Determinism contract: bits do not depend on the thread count ---

TEST(KernelDeterminism, GemmBitIdenticalForAnyThreadCount) {
  // 300^3 multiply-adds is far past the fan-out threshold, so 2 and 8
  // threads genuinely run the pool; 1 runs inline.
  const std::size_t n = 300;
  const Matrix a = RandomMatrix(n, 46);
  const Matrix b = RandomMatrix(n, 47);
  BackendGuard backend(KernelBackend::kBlocked);
  Matrix first(0, 0);
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadGuard guard(threads);
    const Matrix c = a * b;
    if (first.rows() == 0) {
      first = c;
    } else {
      EXPECT_EQ(MaxUlpDiff(first, c), 0u)
          << "thread count changed result bits";
    }
  }
}

TEST(KernelDeterminism, BlockedLuBitIdenticalForAnyThreadCount) {
  const Matrix a = RandomDominantMatrix(193, 48);
  BackendGuard backend(KernelBackend::kBlocked);
  LuFactors first;
  bool have_first = false;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadGuard guard(threads);
    const LuFactors f = FactorWith(KernelBackend::kBlocked, a);
    if (!have_first) {
      first = f;
      have_first = true;
    } else {
      EXPECT_EQ(first.piv, f.piv);
      EXPECT_EQ(MaxUlpDiff(first.lu, f.lu), 0u);
    }
  }
}

// --- Pool contract ---

TEST(Pool, ParallelForRunsEveryTaskExactlyOnce) {
  ThreadGuard guard(4);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  parallel_for(kTasks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(Pool, ShutdownLeavesNoWorkers) {
  ThreadGuard guard(4);
  // Force workers into existence, then shut down.
  std::atomic<std::size_t> count{0};
  parallel_for(64, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64u);
  EXPECT_GT(pool_live_workers(), 0u);
  pool_shutdown();
  EXPECT_EQ(pool_live_workers(), 0u);
  // The pool must respawn transparently after a shutdown.
  count.store(0);
  parallel_for(64, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64u);
  pool_shutdown();
}

TEST(Pool, SingleThreadRunsInlineWithoutWorkers) {
  ThreadGuard guard(1);
  std::size_t count = 0;  // no atomics needed: everything is inline
  parallel_for(128, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 128u);
  EXPECT_EQ(pool_live_workers(), 0u);
}

TEST(Pool, ThreadCountReflectsOverride) {
  ThreadGuard guard(3);
  EXPECT_EQ(pool_threads(), 3u);
}

}  // namespace
}  // namespace performa::linalg
