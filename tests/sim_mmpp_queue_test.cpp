#include "sim/mmpp_queue_sim.h"

#include <gtest/gtest.h>

#include "core/mm1.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::sim {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

map::Mmpp SinglePhase(double mu) {
  return map::Mmpp(linalg::Matrix{{0.0}}, linalg::Vector{mu});
}

TEST(MmppQueueSim, Mm1MeanMatchesClosedForm) {
  MmppQueueSimConfig cfg;
  cfg.lambda = 0.6;
  cfg.horizon = 4e5;
  cfg.warmup = 2e4;
  cfg.seed = 42;
  const auto res = simulate_mmpp_queue(SinglePhase(1.0), cfg);
  ExpectClose(res.mean_queue_length, core::mm1::mean_queue_length(0.6), 0.04,
              "E[Q]");
  ExpectClose(res.probability_empty, 0.4, 0.03, "P(empty)");
}

TEST(MmppQueueSim, Mm1PmfGeometric) {
  MmppQueueSimConfig cfg;
  cfg.lambda = 0.5;
  cfg.horizon = 4e5;
  cfg.warmup = 1e4;
  cfg.seed = 7;
  const auto res = simulate_mmpp_queue(SinglePhase(1.0), cfg);
  for (std::size_t k : {0u, 1u, 2u, 4u}) {
    ExpectClose(res.queue_stats.pmf(k), core::mm1::pmf(0.5, k), 0.05, "pmf");
  }
}

TEST(MmppQueueSim, ArrivalRateRecovered) {
  MmppQueueSimConfig cfg;
  cfg.lambda = 0.8;
  cfg.horizon = 2e5;
  cfg.warmup = 1e3;
  cfg.seed = 3;
  const auto res = simulate_mmpp_queue(SinglePhase(1.0), cfg);
  ExpectClose(static_cast<double>(res.arrivals) / cfg.horizon, 0.8, 0.03,
              "arrival rate");
  // Flow balance: services track arrivals.
  ExpectClose(static_cast<double>(res.services),
              static_cast<double>(res.arrivals), 0.05, "flow balance");
}

TEST(MmppQueueSim, ClusterModelMatchesAnalyticSolution) {
  // The decisive validation: the simulated M/MMPP/1 queue must agree with
  // the matrix-geometric solution (crosses vs solid line in Fig. 7).
  const map::ServerModel server(exponential_from_mean(90.0),
                                make_tpt(TptSpec{2, 1.4, 0.2, 10.0}), 2.0,
                                0.2);
  const map::LumpedAggregate agg(server, 2);
  const double lambda = 0.5 * agg.mmpp().mean_rate();

  MmppQueueSimConfig cfg;
  cfg.lambda = lambda;
  cfg.horizon = 8e5;
  cfg.warmup = 4e4;
  cfg.seed = 11;
  const auto sim = simulate_mmpp_queue(agg.mmpp(), cfg);
  const qbd::QbdSolution exact(qbd::m_mmpp_1(agg.mmpp(), lambda));

  ExpectClose(sim.mean_queue_length, exact.mean_queue_length(), 0.10, "E[Q]");
  ExpectClose(sim.probability_empty, exact.probability_empty(), 0.05,
              "P(empty)");
}

TEST(MmppQueueSim, DeterministicGivenSeed) {
  MmppQueueSimConfig cfg;
  cfg.lambda = 0.5;
  cfg.horizon = 1e4;
  cfg.warmup = 0.0;
  cfg.seed = 99;
  const auto a = simulate_mmpp_queue(SinglePhase(1.0), cfg);
  const auto b = simulate_mmpp_queue(SinglePhase(1.0), cfg);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.arrivals, b.arrivals);
  cfg.seed = 100;
  const auto c = simulate_mmpp_queue(SinglePhase(1.0), cfg);
  EXPECT_NE(a.mean_queue_length, c.mean_queue_length);
}

TEST(MmppQueueSim, Validation) {
  MmppQueueSimConfig cfg;
  cfg.lambda = -1.0;
  EXPECT_THROW(simulate_mmpp_queue(SinglePhase(1.0), cfg), InvalidArgument);
  cfg.lambda = 0.5;
  cfg.horizon = 0.0;
  EXPECT_THROW(simulate_mmpp_queue(SinglePhase(1.0), cfg), InvalidArgument);
}

// Property: simulated mean tracks the analytic mean across utilizations
// for the paper's 2-node cluster with exponential repairs.
class MmppSimSweep : public ::testing::TestWithParam<double> {};

TEST_P(MmppSimSweep, TracksAnalyticMean) {
  const double rho = GetParam();
  const map::ServerModel server(exponential_from_mean(90.0),
                                exponential_from_mean(10.0), 2.0, 0.2);
  const map::LumpedAggregate agg(server, 2);
  const double lambda = rho * agg.mmpp().mean_rate();

  MmppQueueSimConfig cfg;
  cfg.lambda = lambda;
  cfg.horizon = 6e5;
  cfg.warmup = 3e4;
  cfg.seed = 1234;
  const auto sim = simulate_mmpp_queue(agg.mmpp(), cfg);
  const qbd::QbdSolution exact(qbd::m_mmpp_1(agg.mmpp(), lambda));
  ExpectClose(sim.mean_queue_length, exact.mean_queue_length(),
              0.05 + 0.1 * rho, "E[Q]");
}

INSTANTIATE_TEST_SUITE_P(Rho, MmppSimSweep,
                         ::testing::Values(0.2, 0.5, 0.7));

}  // namespace
}  // namespace performa::sim
