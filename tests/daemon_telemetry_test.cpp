// performad's telemetry plane: query ids on every wire reply, the
// Prometheus /metrics scrape endpoint on the socket listeners, and the
// threshold-based slow-query log.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "daemon/server.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace performa::daemon {
namespace {

class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/performad_telemetry_test_XXXXXX";
    dir_ = ::mkdtemp(pattern);
  }
  ~TempDir() {
    if (!dir_.empty()) {
      std::string cmd = "rm -rf '" + dir_ + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

class TestClient {
 public:
  explicit TestClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    while (true) {
      const std::size_t nl = carry_.find('\n');
      if (nl != std::string::npos) {
        std::string line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return line;
      }
      char buf[8192];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return "";
      carry_.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Drain until the server closes the connection (HTTP exchange).
  std::string recv_all() {
    std::string out = carry_;
    carry_.clear();
    char buf[8192];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return out;
      out.append(buf, static_cast<std::size_t>(n));
    }
  }

  std::string roundtrip(const std::string& line) {
    send_line(line);
    return recv_line();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string carry_;
};

class ServerFixture {
 public:
  explicit ServerFixture(DaemonConfig config)
      : server_(std::move(config)),
        thread_([this] { exit_code_ = server_.run(); }) {
    ready_ = server_.wait_ready(10.0);
  }
  ~ServerFixture() { shutdown(); }

  void shutdown() {
    server_.request_shutdown();
    if (thread_.joinable()) thread_.join();
  }

  bool ready() const { return ready_; }
  Server& server() { return server_; }

 private:
  Server server_;
  int exit_code_ = -1;
  std::thread thread_;
  bool ready_ = false;
};

DaemonConfig base_config(const TempDir& tmp) {
  DaemonConfig config;
  config.socket_path = tmp.path("daemon.sock");
  config.workers = 1;
  config.engine.debug_ops = true;
  return config;
}

std::string json_string_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  return end == std::string::npos ? "" : line.substr(start, end - start);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(DaemonTelemetryTest, EveryReplyCarriesAFreshQueryId) {
  TempDir tmp;
  ServerFixture fixture(base_config(tmp));
  ASSERT_TRUE(fixture.ready());
  TestClient client(fixture.server().config().socket_path);
  ASSERT_TRUE(client.connected());

  std::set<std::string> seen;
  // Liveness, solve, and error replies alike carry the qid.
  for (const char* req :
       {R"({"op":"ping"})", R"({"op":"mean","rho":0.5})",
        R"({"op":"no-such-op"})", "not json at all"}) {
    const std::string reply = client.roundtrip(req);
    const std::string qid = json_string_field(reply, "qid");
    ASSERT_EQ(qid.rfind("q-", 0), 0u) << "no qid in reply: " << reply;
    seen.insert(qid);
  }
  EXPECT_EQ(seen.size(), 4u);  // ids are per-request, never reused
}

TEST(DaemonTelemetryTest, MetricsEndpointSpeaksPrometheusText) {
  TempDir tmp;
  ServerFixture fixture(base_config(tmp));
  ASSERT_TRUE(fixture.ready());

  {
    // Prime a counter so the exposition is non-trivial.
    TestClient warm(fixture.server().config().socket_path);
    ASSERT_TRUE(warm.connected());
    warm.roundtrip(R"({"op":"ping"})");
  }

  TestClient scraper(fixture.server().config().socket_path);
  ASSERT_TRUE(scraper.connected());
  scraper.send_line("GET /metrics HTTP/1.0");
  const std::string reply = scraper.recv_all();

  EXPECT_EQ(reply.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(reply.find("Connection: close"), std::string::npos);
  EXPECT_NE(reply.find("# TYPE daemon_requests counter"), std::string::npos);
  EXPECT_NE(reply.find("# TYPE daemon_scrapes counter"), std::string::npos);

  // Content-Length matches the body byte count.
  const std::size_t cl_at = reply.find("Content-Length: ");
  ASSERT_NE(cl_at, std::string::npos);
  const std::size_t body_at = reply.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::size_t declared =
      std::strtoull(reply.c_str() + cl_at + 16, nullptr, 10);
  EXPECT_EQ(declared, reply.size() - (body_at + 4));

  TestClient other(fixture.server().config().socket_path);
  ASSERT_TRUE(other.connected());
  other.send_line("GET /nope HTTP/1.0");
  const std::string nope = other.recv_all();
  EXPECT_EQ(nope.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << nope;
}

#if !defined(PERFORMA_OBS_DISABLED)
TEST(DaemonTelemetryTest, SlowQueryLogJoinsWireReplyByQid) {
  TempDir tmp;
  DaemonConfig config = base_config(tmp);
  // Any real solve is slower than a nanosecond: every fresh solve logs.
  config.engine.slow_query_seconds = 1e-9;
  const std::string log_path = tmp.path("daemon.log");
  obs::set_log_file(log_path);

  std::string reply;
  {
    ServerFixture fixture(std::move(config));
    ASSERT_TRUE(fixture.ready());
    TestClient client(fixture.server().config().socket_path);
    ASSERT_TRUE(client.connected());
    reply = client.roundtrip(R"({"op":"solve","rho":0.7})");
  }
  obs::reset_log_for_test();

  const std::string qid = json_string_field(reply, "qid");
  ASSERT_FALSE(qid.empty()) << reply;
  ASSERT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;

  const std::string log = read_file(log_path);
  std::string slow_line;
  for (std::size_t start = 0; start < log.size();) {
    std::size_t nl = log.find('\n', start);
    if (nl == std::string::npos) nl = log.size();
    const std::string line = log.substr(start, nl - start);
    start = nl + 1;
    if (line.find("\"event\":\"daemon.slow_query\"") != std::string::npos) {
      slow_line = line;
    }
  }
  ASSERT_FALSE(slow_line.empty()) << log;
  // The record joins the wire reply via the qid and carries the solver
  // evidence a post-hoc investigation needs.
  EXPECT_NE(slow_line.find("\"qid\":\"" + qid + "\""), std::string::npos)
      << slow_line;
  EXPECT_NE(slow_line.find("\"disposition\":\"solved\""), std::string::npos)
      << slow_line;
  EXPECT_NE(slow_line.find("\"solver\":"), std::string::npos);
  EXPECT_NE(slow_line.find("\"trail\":"), std::string::npos);
  EXPECT_NE(slow_line.find("\"trust\":"), std::string::npos);
}

TEST(DaemonTelemetryTest, SlowQueryThresholdDisabledLogsNothing) {
  TempDir tmp;
  DaemonConfig config = base_config(tmp);
  config.engine.slow_query_seconds = 0.0;  // disabled
  const std::string log_path = tmp.path("daemon.log");
  obs::set_log_file(log_path);
  {
    ServerFixture fixture(std::move(config));
    ASSERT_TRUE(fixture.ready());
    TestClient client(fixture.server().config().socket_path);
    ASSERT_TRUE(client.connected());
    client.roundtrip(R"({"op":"solve","rho":0.7})");
  }
  obs::reset_log_for_test();
  EXPECT_EQ(read_file(log_path).find("daemon.slow_query"), std::string::npos);
}
#endif  // !PERFORMA_OBS_DISABLED

}  // namespace
}  // namespace performa::daemon
