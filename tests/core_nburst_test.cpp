#include "core/nburst.h"

#include <gtest/gtest.h>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::core {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

NBurstParams PaperDual(unsigned t_phases) {
  // The telco dual of the paper's cluster: ON periods play the role of
  // the repair (DOWN) periods -- the high-variance periods are the ones
  // during which the queue drifts up.
  NBurstParams p;
  p.n_sources = 2;
  p.lambda_p = 2.0;
  p.on = make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0});
  p.off = exponential_from_mean(90.0);
  return p;
}

TEST(NBurst, BurstinessAndMeanRate) {
  const NBurstModel m(PaperDual(1));
  // ON fraction = 10/100; b = OFF fraction = 0.9.
  EXPECT_NEAR(m.burstiness(), 0.9, 1e-9);
  EXPECT_NEAR(m.mean_arrival_rate(), 2 * 2.0 * 0.1, 1e-9);
}

TEST(NBurst, MuForRho) {
  const NBurstModel m(PaperDual(1));
  EXPECT_NEAR(m.mu_for_rho(0.5), m.mean_arrival_rate() / 0.5, 1e-12);
  EXPECT_THROW(m.mu_for_rho(0.0), InvalidArgument);
  EXPECT_THROW(m.mu_for_rho(1.0), InvalidArgument);
}

TEST(NBurst, SolveGivesStableQueue) {
  const NBurstModel m(PaperDual(5));
  const auto sol = m.solve(m.mu_for_rho(0.5));
  EXPECT_GT(sol.mean_queue_length(), 0.0);
  EXPECT_LT(sol.decay_rate(), 1.0);
}

TEST(NBurst, BurstyArrivalsWorseThanPoisson) {
  // At equal utilization, the MMPP/M/1 queue dominates M/M/1.
  const NBurstModel m(PaperDual(5));
  const double rho = 0.6;
  const auto sol = m.solve(m.mu_for_rho(rho));
  EXPECT_GT(sol.mean_queue_length(), mm1::mean_queue_length(rho));
}

TEST(NBurst, HighVarianceOnPeriodsBlowUpTheQueue) {
  // Mirror of the cluster blow-up: larger T -> heavier ON tail -> larger
  // mean queue length at fixed utilization.
  const double rho = 0.7;
  double prev = 0.0;
  for (unsigned t : {1u, 5u, 9u}) {
    const NBurstModel m(PaperDual(t));
    const double mql = m.solve(m.mu_for_rho(rho)).mean_queue_length();
    EXPECT_GT(mql, prev) << "T=" << t;
    prev = mql;
  }
}

TEST(NBurst, BackgroundTrafficShiftsArrivalRate) {
  NBurstParams p = PaperDual(1);
  p.background_rate = 0.5;
  const NBurstModel m(p);
  EXPECT_NEAR(m.mean_arrival_rate(), 0.4 + 0.5, 1e-9);
  const auto sol = m.solve(m.mu_for_rho(0.5));
  EXPECT_GT(sol.mean_queue_length(), 0.0);

  NBurstParams bad = PaperDual(1);
  bad.background_rate = -0.1;
  EXPECT_THROW(NBurstModel{bad}, InvalidArgument);
}

TEST(NBurst, CorrespondenceWithClusterModel) {
  // Sec. 2.3 table: the cluster availability A corresponds to 1-b, peak
  // service rate nu_p to peak arrival rate lambda_p.
  ClusterParams cp;  // defaults: N=2, nu_p=2, A=0.9, exp repair
  const ClusterModel cluster(cp);

  NBurstParams np;
  np.n_sources = cp.n_servers;
  np.lambda_p = cp.nu_p;
  np.on = cp.down;   // ON <-> DOWN: the rate-modulating burst periods
  np.off = cp.up;    // OFF <-> UP
  const NBurstModel telco(np);

  EXPECT_NEAR(1.0 - telco.burstiness(), 1.0 - cluster.availability(), 1e-9);
  // With delta = 0 the cluster's mean service rate N nu_p A equals the
  // dual's... (the dual aggregates over ON = DOWN periods instead):
  // N lambda_p (1-b) where 1-b = 1-A here.
  EXPECT_NEAR(telco.mean_arrival_rate(),
              cp.n_servers * cp.nu_p * (1.0 - cluster.availability()), 1e-9);
}

// Property: stability iff rho < 1 across utilization sweep.
class NBurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(NBurstSweep, SolvesAndNormalizes) {
  const double rho = GetParam();
  const NBurstModel m(PaperDual(5));
  const auto sol = m.solve(m.mu_for_rho(rho));
  const auto pmf = sol.pmf_upto(100);
  double total = 0.0;
  for (double x : pmf) total += x;
  total += sol.tail(101);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Rho, NBurstSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace performa::core
