#include "sim/cluster_sim.h"

#include <gtest/gtest.h>

#include "core/mm1.h"
#include "map/lumped_aggregate.h"
#include "medist/me_dist.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::sim {
namespace {

using performa::testing::ExpectClose;

// Baseline configuration: paper parameters with exponential repairs and a
// cycle budget small enough for fast unit tests.
ClusterSimConfig BaseConfig() {
  ClusterSimConfig cfg;
  cfg.n_servers = 2;
  cfg.nu_p = 2.0;
  cfg.delta = 0.2;
  cfg.lambda = 1.84;  // rho = 0.5 at nu_bar = 3.68
  cfg.up = exponential_sampler_mean(90.0);
  cfg.down = exponential_sampler_mean(10.0);
  cfg.task_work = exponential_sampler(1.0);
  cfg.cycles = 30000;
  cfg.warmup_cycles = 3000;
  cfg.seed = 42;
  return cfg;
}

TEST(ClusterSim, ReducesToMm2WithPerfectServers) {
  // Near-perfect availability and delta irrelevant: M/M/2 with mu = nu_p.
  ClusterSimConfig cfg = BaseConfig();
  cfg.up = exponential_sampler_mean(1e9);
  cfg.down = deterministic_sampler(1e-9);
  cfg.delta = 0.0;
  cfg.lambda = 2.4;  // rho = 0.6 on two servers of rate 2
  cfg.cycles = 10;   // cycles are useless as a clock here...
  cfg.warmup_cycles = 0;

  // ... so instead drive the run length through a huge up-time: with
  // MTTF=1e9 the first toggle practically never happens; use arrivals as
  // the budget by bounding cycles via a short up time on a third scale.
  // Simpler: shrink MTTF so cycles pass quickly but availability stays
  // ~ 1: MTTF=1e4, MTTR=1e-6.
  cfg.up = exponential_sampler_mean(1e4);
  cfg.down = deterministic_sampler(1e-6);
  cfg.cycles = 2000;
  cfg.warmup_cycles = 100;

  const auto res = simulate_cluster(cfg);
  // M/M/2 closed form at rho = 0.6: E[N] = 2 rho + rho/(1-rho) P_wait.
  const double rho = 0.6, a = 1.2;
  const double p0 = 1.0 / (1.0 + a + a * a / (2.0 * (1.0 - rho)));
  const double p_wait = a * a / (2.0 * (1.0 - rho)) * p0;
  const double expected = a + rho / (1.0 - rho) * p_wait;
  ExpectClose(res.mean_queue_length, expected, 0.06, "E[N] vs M/M/2");
}

TEST(ClusterSim, SingleServerPerfectIsMm1) {
  ClusterSimConfig cfg = BaseConfig();
  cfg.n_servers = 1;
  cfg.nu_p = 1.0;
  cfg.delta = 0.0;
  cfg.lambda = 0.7;
  cfg.up = exponential_sampler_mean(1e4);
  cfg.down = deterministic_sampler(1e-6);
  cfg.cycles = 3000;
  cfg.warmup_cycles = 200;
  const auto res = simulate_cluster(cfg);
  ExpectClose(res.mean_queue_length, core::mm1::mean_queue_length(0.7), 0.08,
              "E[N] vs M/M/1");
  // Little's law: E[T] = E[N]/lambda.
  ExpectClose(res.system_time.mean(), res.mean_queue_length / 0.7, 0.08,
              "Little's law");
}

TEST(ClusterSim, FlowBalanceAndCounters) {
  const auto res = simulate_cluster(BaseConfig());
  EXPECT_GT(res.arrivals, 0u);
  EXPECT_EQ(res.discarded, 0u);  // delta > 0: no crashes, nothing dropped
  // Completions track arrivals within stochastic noise.
  ExpectClose(static_cast<double>(res.completed),
              static_cast<double>(res.arrivals), 0.05, "flow balance");
  EXPECT_EQ(res.cycles, BaseConfig().cycles);
  EXPECT_GT(res.sim_time, 0.0);
}

TEST(ClusterSim, ArrivalRateRecovered) {
  const auto res = simulate_cluster(BaseConfig());
  ExpectClose(static_cast<double>(res.arrivals) / res.sim_time, 1.84, 0.03,
              "arrival rate");
}

TEST(ClusterSim, DeterministicGivenSeed) {
  const auto a = simulate_cluster(BaseConfig());
  const auto b = simulate_cluster(BaseConfig());
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.arrivals, b.arrivals);
  ClusterSimConfig other = BaseConfig();
  other.seed = 43;
  const auto c = simulate_cluster(other);
  EXPECT_NE(a.mean_queue_length, c.mean_queue_length);
}

TEST(ClusterSim, DiscardDropsTasksUnderCrashes) {
  ClusterSimConfig cfg = BaseConfig();
  cfg.delta = 0.0;
  cfg.strategy = FailureStrategy::kDiscard;
  cfg.lambda = 1.0;
  const auto res = simulate_cluster(cfg);
  EXPECT_GT(res.discarded, 0u);
  // Dropped + completed ~ arrivals.
  ExpectClose(static_cast<double>(res.completed + res.discarded),
              static_cast<double>(res.arrivals), 0.05, "task conservation");
}

TEST(ClusterSim, StrategyOrderingUnderCrashes) {
  // Paper Sec. 2/4: Discard <= Resume <= Restart in mean queue length.
  ClusterSimConfig cfg = BaseConfig();
  cfg.delta = 0.0;
  cfg.lambda = 1.2;
  cfg.cycles = 40000;
  cfg.warmup_cycles = 4000;

  auto run = [&](FailureStrategy s) {
    ClusterSimConfig c = cfg;
    c.strategy = s;
    return mean_queue_length_summary(c, 5).mean;
  };
  const double discard = run(FailureStrategy::kDiscard);
  const double resume = run(FailureStrategy::kResumeBack);
  const double restart = run(FailureStrategy::kRestartBack);
  EXPECT_LE(discard, resume * 1.05);
  EXPECT_LE(resume, restart * 1.05);
}

TEST(ClusterSim, DegradedModeSlowsServiceDown) {
  // Lower delta -> strictly worse mean queue length, all else equal.
  ClusterSimConfig cfg = BaseConfig();
  cfg.lambda = 1.5;
  ClusterSimConfig degraded = cfg;
  degraded.delta = 0.05;
  ClusterSimConfig healthy = cfg;
  healthy.delta = 0.8;
  const auto bad = simulate_cluster(degraded);
  const auto good = simulate_cluster(healthy);
  EXPECT_GT(bad.mean_queue_length, good.mean_queue_length);
}

TEST(ClusterSim, SystemTimeRecordedForCompletedTasks) {
  const auto res = simulate_cluster(BaseConfig());
  EXPECT_EQ(res.system_time.count(), res.completed);
  EXPECT_GT(res.system_time.mean(), 0.0);
  // A task needs at least its own service time: mean system time above
  // mean pure-service time 1/nu_p = 0.5 (for the UP case).
  EXPECT_GT(res.system_time.mean(), 0.4);
}

TEST(ClusterSim, ReplicationPlumbing) {
  ClusterSimConfig cfg = BaseConfig();
  cfg.cycles = 2000;
  cfg.warmup_cycles = 100;
  const auto results = replicate_cluster(cfg, 4);
  ASSERT_EQ(results.size(), 4u);
  // Replications use derived seeds: all runs differ.
  EXPECT_NE(results[0].mean_queue_length, results[1].mean_queue_length);
  const auto summary = mean_queue_length_summary(cfg, 4);
  EXPECT_GT(summary.ci_halfwidth, 0.0);
  EXPECT_EQ(summary.replications, 4u);
}

TEST(ClusterSim, Validation) {
  ClusterSimConfig cfg = BaseConfig();
  cfg.n_servers = 0;
  EXPECT_THROW(simulate_cluster(cfg), InvalidArgument);
  cfg = BaseConfig();
  cfg.delta = 1.5;
  EXPECT_THROW(simulate_cluster(cfg), InvalidArgument);
  cfg = BaseConfig();
  cfg.lambda = 0.0;
  EXPECT_THROW(simulate_cluster(cfg), InvalidArgument);
  cfg = BaseConfig();
  cfg.cycles = 0;
  EXPECT_THROW(simulate_cluster(cfg), InvalidArgument);
  EXPECT_THROW(replicate_cluster(BaseConfig(), 0), InvalidArgument);
}

TEST(ClusterSim, RenewalArrivalsSmoothTheQueue) {
  // Deterministic interarrivals (SCV 0) vs Poisson at the same rate:
  // strictly shorter queue.
  ClusterSimConfig poisson = BaseConfig();
  ClusterSimConfig det = BaseConfig();
  det.interarrival = deterministic_sampler(1.0 / det.lambda);
  const auto a = simulate_cluster(poisson);
  const auto b = simulate_cluster(det);
  EXPECT_LT(b.mean_queue_length, a.mean_queue_length);
  // Arrival rate preserved.
  EXPECT_NEAR(static_cast<double>(b.arrivals) / b.sim_time, det.lambda,
              0.05);
}

TEST(ClusterSim, ErlangArrivalsMatchMapAnalyticModel) {
  // Cross-validation of the MAP-arrivals analytic path: Erlang-2 renewal
  // arrivals into the (load-independent-comparable) cluster. At high rho
  // the multiprocessor sim approaches the ME/MMPP/1 QBD solution.
  ClusterSimConfig cfg = BaseConfig();
  cfg.lambda = 0.8 * 3.68;
  cfg.interarrival = me_sampler(medist::erlang_dist(2, 1.0 / cfg.lambda));
  cfg.cycles = 60000;
  cfg.warmup_cycles = 6000;
  const auto summary = mean_queue_length_summary(cfg, 5);

  const map::ServerModel server(medist::exponential_from_mean(90.0),
                                medist::exponential_from_mean(10.0), 2.0,
                                0.2);
  const map::LumpedAggregate agg(server, 2);
  const auto arrivals =
      map::renewal_map(medist::erlang_dist(2, 1.0 / cfg.lambda));
  const qbd::QbdSolution exact(qbd::map_mmpp_1(arrivals, agg.mmpp()));
  performa::testing::ExpectClose(summary.mean, exact.mean_queue_length(),
                                 0.12, "E[Q] Erlang arrivals");
}

TEST(ClusterSim, StrategyNames) {
  EXPECT_STREQ(to_string(FailureStrategy::kDiscard), "Discard");
  EXPECT_STREQ(to_string(FailureStrategy::kRestartFront), "Restart(front)");
  EXPECT_STREQ(to_string(FailureStrategy::kResumeBack), "Resume(back)");
}

// Property: stability and level accounting across deltas and loads.
struct SimCase {
  double delta;
  double rho;
};

class ClusterSimProperty : public ::testing::TestWithParam<SimCase> {};

TEST_P(ClusterSimProperty, PmfNormalizedAndMeanConsistent) {
  const auto [delta, rho] = GetParam();
  ClusterSimConfig cfg = BaseConfig();
  cfg.delta = delta;
  const double nu_bar = 2 * 2.0 * (0.9 + delta * 0.1);
  cfg.lambda = rho * nu_bar;
  cfg.cycles = 8000;
  cfg.warmup_cycles = 800;
  const auto res = simulate_cluster(cfg);

  // pmf sums to 1.
  double total = 0.0;
  for (std::size_t k = 0; k <= res.queue_stats.histogram_cap(); ++k) {
    total += res.queue_stats.pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  // tail(0) = 1 and tail is monotone.
  EXPECT_NEAR(res.queue_stats.tail(0), 1.0, 1e-12);
  EXPECT_GE(res.queue_stats.tail(1), res.queue_stats.tail(2));

  // Simulated mean is positive and finite.
  EXPECT_GT(res.mean_queue_length, 0.0);
  EXPECT_LT(res.mean_queue_length, 1e6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusterSimProperty,
                         ::testing::Values(SimCase{0.0, 0.3}, SimCase{0.0, 0.6},
                                           SimCase{0.2, 0.3}, SimCase{0.2, 0.6},
                                           SimCase{0.5, 0.5},
                                           SimCase{1.0, 0.7}));

// --- FailureStrategy edge cases -----------------------------------------

TEST(ClusterSimEdge, CrashWithZeroLengthRepairTerminates) {
  // Crash faults (delta = 0) whose repairs take exactly zero time: the
  // server bounces back in the same instant, but the interrupted task must
  // still go through the strategy's handling. The run must terminate with
  // the full cycle count for every strategy.
  for (const FailureStrategy s :
       {FailureStrategy::kDiscard, FailureStrategy::kRestartFront,
        FailureStrategy::kRestartBack, FailureStrategy::kResumeFront,
        FailureStrategy::kResumeBack}) {
    ClusterSimConfig cfg = BaseConfig();
    cfg.delta = 0.0;
    cfg.strategy = s;
    cfg.cycles = 2000;
    cfg.warmup_cycles = 200;
    cfg.faults.zero_length_repairs = true;
    const auto res = simulate_cluster(cfg);
    EXPECT_FALSE(res.degraded) << to_string(s);
    EXPECT_EQ(res.cycles, cfg.cycles) << to_string(s);
    EXPECT_GT(res.completed, 0u) << to_string(s);
  }
}

TEST(ClusterSimEdge, SimultaneousCrashAndArrivalDeterministic) {
  // Deterministic interarrivals put an arrival at every integer time; a
  // common-mode crash scheduled at t = 5.0 collides with the t = 5.0
  // arrival exactly. The tie must resolve in a fixed order (arrival
  // first, crash immediately after at the same timestamp) so reruns are
  // bit-identical.
  ClusterSimConfig cfg = BaseConfig();
  cfg.delta = 0.0;
  cfg.strategy = FailureStrategy::kResumeBack;
  cfg.interarrival = deterministic_sampler(1.0);
  cfg.cycles = 500;
  cfg.warmup_cycles = 0;
  cfg.faults.crashes.push_back({5.0, 2});

  const auto a = simulate_cluster(cfg);
  const auto b = simulate_cluster(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.injected_crashes, 2u);
  EXPECT_DOUBLE_EQ(a.mean_queue_length, b.mean_queue_length);
}

TEST(ClusterSimEdge, ResumePreservesWorkAcrossRepeatedCrashes) {
  // A 10-unit task on a server that crashes every ~3 time units: Resume
  // accumulates service across interruptions, so every completed task has
  // received exactly its work requirement; Restart loses the progress and
  // only finishes a task when a single up-period covers all 10 units
  // (probability e^{-10/3}), so it completes far fewer tasks.
  ClusterSimConfig cfg;
  cfg.n_servers = 1;
  cfg.nu_p = 1.0;
  cfg.delta = 0.0;
  cfg.lambda = 0.02;
  cfg.up = exponential_sampler_mean(3.0);
  cfg.down = exponential_sampler_mean(1.0);
  cfg.task_work = deterministic_sampler(10.0);
  cfg.strategy = FailureStrategy::kResumeBack;
  cfg.cycles = 4000;
  cfg.warmup_cycles = 400;
  cfg.seed = 5;

  const auto resume = simulate_cluster(cfg);
  ASSERT_GT(resume.completed, 0u);
  // Work conservation: a completed 10-unit task spent >= 10 time units in
  // the system (speed is 1), no matter how many crashes interrupted it.
  EXPECT_GE(resume.system_time.min(), 10.0 - 1e-9);

  ClusterSimConfig restart_cfg = cfg;
  restart_cfg.strategy = FailureStrategy::kRestartBack;
  const auto restart = simulate_cluster(restart_cfg);
  EXPECT_GT(resume.completed, restart.completed);
}

}  // namespace
}  // namespace performa::sim
