#include "core/qos.h"

#include <gtest/gtest.h>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/tpt.h"
#include "sim/cluster_sim.h"
#include "test_util.h"

namespace performa::core {
namespace {

using performa::testing::ExpectClose;

ClusterModel PaperModel(unsigned t) {
  ClusterParams p;
  p.down = medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, 10.0});
  return ClusterModel(std::move(p));
}

TEST(Qos, ViolationEqualsQueueTail) {
  const ClusterModel m = PaperModel(5);
  const auto sol = m.solve(m.lambda_for_rho(0.6));
  const double nu_bar = m.mean_service_rate();
  // d*nu_bar = 100 exactly: Pr(S > d) ~ Pr(Q > 100) = tail(101).
  const double d = 100.0 / nu_bar;
  EXPECT_NEAR(delay_violation_probability(sol, d, nu_bar), sol.tail(101),
              1e-15);
  EXPECT_NEAR(deadline_success_probability(sol, d, nu_bar),
              1.0 - sol.tail(101), 1e-15);
}

TEST(Qos, ViolationDecreasesWithDeadline) {
  const ClusterModel m = PaperModel(5);
  const auto sol = m.solve(m.lambda_for_rho(0.7));
  const double nu_bar = m.mean_service_rate();
  double prev = 1.1;
  for (double d : {1.0, 10.0, 50.0, 200.0, 1000.0}) {
    const double v = delay_violation_probability(sol, d, nu_bar);
    EXPECT_LE(v, prev) << d;
    prev = v;
  }
}

TEST(Qos, MinDeadlineInvertsViolation) {
  const ClusterModel m = PaperModel(5);
  const auto sol = m.solve(m.lambda_for_rho(0.5));
  const double nu_bar = m.mean_service_rate();
  for (double eps : {1e-2, 1e-4, 1e-6}) {
    const double d = min_deadline_for(sol, eps, nu_bar);
    EXPECT_LE(delay_violation_probability(sol, d, nu_bar), eps) << eps;
    // One task less must violate eps (minimality up to granularity).
    if (d > 2.0 / nu_bar) {
      EXPECT_GT(delay_violation_probability(sol, d - 1.5 / nu_bar, nu_bar),
                eps)
          << eps;
    }
  }
}

TEST(Qos, MinDeadlineGrowsExplosivelyAcrossBlowup) {
  // The deliverable-latency cost of crossing rho_1.
  const ClusterModel m = PaperModel(9);
  const double nu_bar = m.mean_service_rate();
  const double d_below =
      min_deadline_for(m.solve(m.lambda_for_rho(0.5)), 1e-4, nu_bar);
  const double d_above =
      min_deadline_for(m.solve(m.lambda_for_rho(0.7)), 1e-4, nu_bar);
  EXPECT_GT(d_above, 20.0 * d_below);
}

TEST(Qos, Validation) {
  const ClusterModel m = PaperModel(2);
  const auto sol = m.solve(1.0);
  EXPECT_THROW(delay_violation_probability(sol, -1.0, 3.68), InvalidArgument);
  EXPECT_THROW(delay_violation_probability(sol, 1.0, 0.0), InvalidArgument);
  EXPECT_THROW(min_deadline_for(sol, 0.0, 3.68), InvalidArgument);
  EXPECT_THROW(min_deadline_for(sol, 1e-300, 3.68, 64), NumericalError);
}

TEST(Qos, ApproximationTracksSimulatedSojournTail) {
  // The substantive check: compare Pr(S > d) from the queue-tail
  // approximation against the sojourn times measured in the
  // multiprocessor simulation. In the power-law region exact agreement
  // is not expected (the approximation ignores service-order effects and
  // load dependence); require the right order of magnitude.
  ClusterParams p;
  p.down = medist::make_tpt(medist::TptSpec{5, 1.4, 0.5, 10.0});
  const ClusterModel m(p);
  const double rho = 0.6;
  const double lambda = m.lambda_for_rho(rho);
  const double nu_bar = m.mean_service_rate();
  const auto sol = m.solve(lambda);

  sim::ClusterSimConfig cfg;
  cfg.lambda = lambda;
  cfg.up = sim::me_sampler(p.up);
  cfg.down = sim::me_sampler(p.down);
  cfg.cycles = 60000;
  cfg.warmup_cycles = 6000;
  cfg.seed = 31415;
  const auto res = sim::simulate_cluster(cfg);

  for (double d : {5.0, 20.0, 80.0}) {
    const double approx = delay_violation_probability(sol, d, nu_bar);
    const double simulated = res.system_time_hist.tail(d);
    if (simulated < 1e-4) continue;  // too few samples to compare
    EXPECT_LT(std::abs(std::log10(approx / simulated)), 1.0)
        << "d=" << d << " approx=" << approx << " sim=" << simulated;
  }
}

}  // namespace
}  // namespace performa::core
