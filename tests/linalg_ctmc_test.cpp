#include "linalg/ctmc.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace performa::linalg {
namespace {

using performa::testing::RandomGenerator;

TEST(GeneratorValidation, AcceptsValidGenerator) {
  const Matrix q{{-1.0, 1.0}, {2.0, -2.0}};
  EXPECT_TRUE(is_generator(q));
  EXPECT_NO_THROW(validate_generator(q));
}

TEST(GeneratorValidation, RejectsBadRowSum) {
  const Matrix q{{-1.0, 0.5}, {2.0, -2.0}};
  EXPECT_FALSE(is_generator(q));
  EXPECT_THROW(validate_generator(q), InvalidArgument);
}

TEST(GeneratorValidation, RejectsNegativeOffDiagonal) {
  const Matrix q{{1.0, -1.0}, {2.0, -2.0}};
  EXPECT_FALSE(is_generator(q));
  EXPECT_THROW(validate_generator(q), InvalidArgument);
}

TEST(GeneratorValidation, RejectsNonSquare) {
  EXPECT_FALSE(is_generator(Matrix(2, 3)));
}

TEST(StochasticValidation, Accepts) {
  EXPECT_TRUE(is_stochastic(Matrix{{0.5, 0.5}, {0.25, 0.75}}));
  EXPECT_FALSE(is_stochastic(Matrix{{0.5, 0.6}, {0.25, 0.75}}));
  EXPECT_FALSE(is_stochastic(Matrix{{1.5, -0.5}, {0.25, 0.75}}));
}

TEST(Gth, TwoStateClosedForm) {
  // Rates a: 0->1, b: 1->0; pi = (b, a)/(a+b).
  const double a = 0.3, b = 1.7;
  const Matrix q{{-a, a}, {b, -b}};
  const Vector pi = stationary_distribution(q);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-14);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-14);
}

TEST(Gth, SingleStateIsTrivial) {
  const Vector pi = stationary_distribution(Matrix{{0.0}});
  EXPECT_EQ(pi, Vector{1.0});
}

TEST(Gth, BirthDeathChainClosedForm) {
  // Birth rate l, death rate m on 4 states: pi_k ~ (l/m)^k.
  const double l = 0.7, m = 1.3;
  Matrix q(4, 4, 0.0);
  for (int i = 0; i < 4; ++i) {
    double out = 0.0;
    if (i < 3) {
      q(i, i + 1) = l;
      out += l;
    }
    if (i > 0) {
      q(i, i - 1) = m;
      out += m;
    }
    q(i, i) = -out;
  }
  const Vector pi = stationary_distribution(q);
  const double r = l / m;
  const double norm = 1.0 + r + r * r + r * r * r;
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(pi[k], std::pow(r, k) / norm, 1e-13) << "state " << k;
  }
}

TEST(Gth, ReducibleChainThrows) {
  // Two disconnected 1-state components.
  const Matrix q{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_THROW(stationary_distribution(q), NumericalError);
}

TEST(Gth, ExtremeRateScalesStayAccurate) {
  // Availability-style chain with rates spanning 8 decades; GTH must not
  // lose the small stationary mass to cancellation.
  const double fail = 1e-8, repair = 1.0;
  const Matrix q{{-fail, fail}, {repair, -repair}};
  const Vector pi = stationary_distribution(q);
  EXPECT_NEAR(pi[1], fail / (fail + repair), 1e-22);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-15);
}

TEST(GthDtmc, TwoStateChain) {
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const Vector pi = stationary_distribution_dtmc(p);
  // pi = (0.8, 0.2): detailed balance 0.8*0.1 = 0.2*0.4.
  EXPECT_NEAR(pi[0], 0.8, 1e-13);
  EXPECT_NEAR(pi[1], 0.2, 1e-13);
}

TEST(StationaryReward, MatchesDotProduct) {
  const Matrix q{{-1.0, 1.0}, {1.0, -1.0}};
  EXPECT_NEAR(stationary_reward(q, Vector{0.0, 10.0}), 5.0, 1e-13);
}

// Property: pi Q = 0, pi >= 0, pi e = 1 across random irreducible chains.
class GthProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GthProperty, StationaryEquationsHold) {
  const std::size_t n = GetParam();
  const Matrix q = RandomGenerator(n, static_cast<unsigned>(n * 31));
  const Vector pi = stationary_distribution(q);
  EXPECT_NEAR(sum(pi), 1.0, 1e-13);
  for (double x : pi) EXPECT_GE(x, 0.0);
  EXPECT_LT(norm_inf(pi * q), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GthProperty,
                         ::testing::Values(2, 3, 4, 8, 16, 33, 64));

}  // namespace
}  // namespace performa::linalg
