#include "qbd/level_dependent.h"

#include <gtest/gtest.h>

#include "core/mm1.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

map::LumpedAggregate PaperCluster(unsigned t_phases, unsigned n_servers) {
  const map::ServerModel server(exponential_from_mean(90.0),
                                make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, n_servers);
}

TEST(LevelDependent, MmcSpecialCase) {
  // Always-up servers (availability ~ 1): the load-dependent model is an
  // M/M/c queue. Check E[Q] against the Erlang-C closed form for c = 2.
  const map::ServerModel server(exponential_from_mean(1e9),
                                exponential_from_mean(1e-3), 1.0, 0.0);
  const map::LumpedAggregate agg(server, 2);
  const double mu = 1.0, lambda = 1.2;  // rho = 0.6 on 2 servers
  const auto blocks =
      cluster_level_dependent_blocks(agg, mu, 0.0, lambda);
  const LevelDependentSolution sol(blocks);

  // M/M/2: rho = lambda/(2 mu); ErlangC = 1/(1 + 2(1-rho)/ (2rho)) ... use
  // the standard form: P_wait = (2rho)^2 / (2! (1-rho)) * P0,
  // P0 = [sum_{k<2} (2rho)^k/k! + (2rho)^2/(2!(1-rho))]^{-1},
  // E[N] = 2rho + rho/(1-rho) P_wait.
  const double rho = lambda / (2 * mu);
  const double a = 2 * rho;
  const double p0 = 1.0 / (1.0 + a + a * a / (2.0 * (1.0 - rho)));
  const double p_wait = a * a / (2.0 * (1.0 - rho)) * p0;
  const double expected = a + rho / (1.0 - rho) * p_wait;

  ExpectClose(sol.mean_queue_length(), expected, 1e-6, "E[N] M/M/2");
  ExpectClose(sol.probability_empty(), p0, 1e-6, "P0 M/M/2");
}

TEST(LevelDependent, MoreConservativeThanLoadIndependent) {
  // The load-independent model serves level-1 tasks at the full cluster
  // rate, so it underestimates the queue: LD mean >= LI mean.
  const auto agg = PaperCluster(5, 2);
  for (double rho : {0.2, 0.5, 0.8}) {
    const double lambda = rho * agg.mmpp().mean_rate();
    const LevelDependentSolution ld(
        cluster_level_dependent_blocks(agg, 2.0, 0.2, lambda));
    const QbdSolution li(m_mmpp_1(agg.mmpp(), lambda));
    EXPECT_GE(ld.mean_queue_length(), li.mean_queue_length() - 1e-9)
        << "rho=" << rho;
  }
}

TEST(LevelDependent, ConvergesToLoadIndependentAtHighLoad) {
  // At high utilization the queue rarely drops below N, so the models agree.
  const auto agg = PaperCluster(5, 2);
  const double lambda = 0.9 * agg.mmpp().mean_rate();
  const LevelDependentSolution ld(
      cluster_level_dependent_blocks(agg, 2.0, 0.2, lambda));
  const QbdSolution li(m_mmpp_1(agg.mmpp(), lambda));
  ExpectClose(ld.mean_queue_length(), li.mean_queue_length(), 0.05,
              "E[Q] high load");
}

TEST(LevelDependent, TailConsistentWithPmf) {
  const auto agg = PaperCluster(3, 2);
  const LevelDependentSolution sol(
      cluster_level_dependent_blocks(agg, 2.0, 0.2, 2.0));
  double acc = 0.0;
  for (std::size_t k = 0; k < 30; ++k) acc += sol.pmf(k);
  ExpectClose(sol.tail(30), 1.0 - acc, 1e-8, "tail(30)");
  EXPECT_NEAR(sol.tail(0), 1.0, 1e-10);
}

TEST(LevelDependent, PmfSumsToOne) {
  const auto agg = PaperCluster(2, 3);
  const LevelDependentSolution sol(
      cluster_level_dependent_blocks(agg, 2.0, 0.2, 3.0));
  double total = 0.0;
  for (std::size_t k = 0; k < 2000; ++k) total += sol.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(LevelDependent, ValidatesInput) {
  const auto agg = PaperCluster(2, 2);
  LevelDependentBlocks blocks =
      cluster_level_dependent_blocks(agg, 2.0, 0.2, 1.0);
  blocks.service.clear();
  EXPECT_THROW(LevelDependentSolution{blocks}, InvalidArgument);

  blocks = cluster_level_dependent_blocks(agg, 2.0, 0.2, 1.0);
  blocks.lambda = 0.0;
  EXPECT_THROW(LevelDependentSolution{blocks}, InvalidArgument);

  EXPECT_THROW(cluster_level_dependent_blocks(agg, -2.0, 0.2, 1.0),
               InvalidArgument);
  EXPECT_THROW(cluster_level_dependent_blocks(agg, 2.0, 1.5, 1.0),
               InvalidArgument);
}

TEST(LevelDependent, ServiceMatricesScaleWithLevel) {
  const auto agg = PaperCluster(1, 3);  // exponential repair, 3 servers
  const auto blocks = cluster_level_dependent_blocks(agg, 2.0, 0.2, 1.0);
  ASSERT_EQ(blocks.service.size(), 3u);
  // Service rates grow (weakly) with level in every phase.
  for (std::size_t k = 1; k < blocks.service.size(); ++k) {
    for (std::size_t s = 0; s < blocks.phase_dim(); ++s) {
      EXPECT_GE(blocks.service[k](s, s), blocks.service[k - 1](s, s) - 1e-12);
    }
  }
  // At the top level the rates match the load-independent MMPP.
  for (std::size_t s = 0; s < blocks.phase_dim(); ++s) {
    EXPECT_NEAR(blocks.service.back()(s, s), agg.mmpp().rates()[s], 1e-12);
  }
}

// Property: LD <= LI ordering plus normalization across a sweep.
struct LdCase {
  unsigned t_phases;
  unsigned n;
  double rho;
};

class LdProperty : public ::testing::TestWithParam<LdCase> {};

TEST_P(LdProperty, OrderingAndNormalization) {
  const auto [t, n, rho] = GetParam();
  const auto agg = PaperCluster(t, n);
  const double lambda = rho * agg.mmpp().mean_rate();
  const LevelDependentSolution ld(
      cluster_level_dependent_blocks(agg, 2.0, 0.2, lambda));
  const QbdSolution li(m_mmpp_1(agg.mmpp(), lambda));
  EXPECT_GE(ld.mean_queue_length(), li.mean_queue_length() - 1e-9);
  double total = 0.0;
  for (std::size_t k = 0; k < 200; ++k) total += ld.pmf(k);
  total += ld.tail(200);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LdProperty,
                         ::testing::Values(LdCase{1, 2, 0.3}, LdCase{1, 4, 0.6},
                                           LdCase{2, 3, 0.5}, LdCase{5, 2, 0.7},
                                           LdCase{3, 2, 0.2},
                                           LdCase{2, 5, 0.4}));

}  // namespace
}  // namespace performa::qbd
