// Independent validation of Map::interarrival_scv /
// interarrival_correlation: simulate the MAP as a marked CTMC and compare
// sample statistics of consecutive interarrival times against the
// matrix formulas.
#include <gtest/gtest.h>

#include <random>

#include "map/lumped_aggregate.h"
#include "map/map_process.h"
#include "medist/tpt.h"
#include "test_util.h"

namespace performa::map {
namespace {

using performa::testing::ExpectClose;

struct SeriesStats {
  double mean = 0.0;
  double scv = 0.0;
  double lag1 = 0.0;
};

// Simulate `n` marked events of the MAP and return interarrival stats.
SeriesStats SimulateMap(const Map& m, std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  const std::size_t dim = m.dim();
  // Start in the stationary phase distribution.
  std::size_t phase = 0;
  {
    const auto pi = m.stationary_phases();
    double u = uni(rng), cum = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      cum += pi[i];
      if (u <= cum) {
        phase = i;
        break;
      }
    }
  }

  std::vector<double> gaps;
  gaps.reserve(n);
  double since_last = 0.0;
  while (gaps.size() < n) {
    // Total outflow rate of the current phase.
    const double hold = -m.d0()(phase, phase);
    since_last += std::exponential_distribution<double>(hold)(rng);
    // Pick the transition: D0 off-diagonal or D1 (marked).
    double u = uni(rng) * hold;
    bool marked = false;
    std::size_t next = phase;
    for (std::size_t j = 0; j < dim && u >= 0.0; ++j) {
      if (j != phase) {
        u -= m.d0()(phase, j);
        if (u < 0.0) {
          next = j;
          break;
        }
      }
      u -= m.d1()(phase, j);
      if (u < 0.0) {
        next = j;
        marked = true;
        break;
      }
    }
    phase = next;
    if (marked) {
      gaps.push_back(since_last);
      since_last = 0.0;
    }
  }

  SeriesStats out;
  double s1 = 0.0, s2 = 0.0;
  for (double x : gaps) {
    s1 += x;
    s2 += x * x;
  }
  out.mean = s1 / static_cast<double>(n);
  const double var = s2 / static_cast<double>(n) - out.mean * out.mean;
  out.scv = var / (out.mean * out.mean);
  double cov = 0.0;
  for (std::size_t i = 0; i + 1 < gaps.size(); ++i) {
    cov += (gaps[i] - out.mean) * (gaps[i + 1] - out.mean);
  }
  out.lag1 = cov / (static_cast<double>(n - 1) * var);
  return out;
}

TEST(MapSimulation, PoissonStatistics) {
  const Map m = poisson_map(2.0);
  const auto s = SimulateMap(m, 300000, 7);
  ExpectClose(s.mean, 0.5, 0.02, "mean");
  ExpectClose(s.scv, 1.0, 0.03, "scv");
  EXPECT_NEAR(s.lag1, 0.0, 0.01);
}

TEST(MapSimulation, AggregatedClusterMapMatchesFormulas) {
  const ServerModel server(medist::exponential_from_mean(90.0),
                           medist::exponential_from_mean(10.0), 2.0, 0.0);
  const LumpedAggregate agg(server, 2);
  const Map m = as_map(agg.mmpp());

  const auto s = SimulateMap(m, 2000000, 13);
  ExpectClose(s.mean, 1.0 / m.mean_rate(), 0.02, "mean interarrival");
  ExpectClose(s.scv, m.interarrival_scv(), 0.06, "scv");
  // Correlations are small; compare with generous absolute tolerance.
  EXPECT_NEAR(s.lag1, m.interarrival_correlation(1),
              0.15 * m.interarrival_correlation(1) + 0.002);
  EXPECT_GT(s.lag1, 0.0);
}

TEST(MapSimulation, RenewalMapUncorrelated) {
  const Map m = renewal_map(medist::make_tpt(medist::TptSpec{3, 1.4, 0.5,
                                                             2.0}));
  const auto s = SimulateMap(m, 400000, 5);
  ExpectClose(s.mean, 2.0, 0.03, "mean");
  EXPECT_NEAR(s.lag1, 0.0, 0.01);
}

}  // namespace
}  // namespace performa::map
