#include "qbd/transient.h"

#include <gtest/gtest.h>

#include "linalg/expm.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/finite.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::exponential_from_mean;
using performa::testing::ExpectClose;

map::Mmpp SinglePhase(double mu) {
  return map::Mmpp(Matrix{{0.0}}, Vector{mu});
}

map::Mmpp PaperClusterMmpp(unsigned t_phases) {
  const map::ServerModel server(exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, 2).mmpp();
}

TEST(Transient, ZeroTimeIsIdentity) {
  const TransientSolver solver(m_mmpp_1(SinglePhase(1.0), 0.5), 10);
  const auto init = solver.point_mass(3, Vector{1.0});
  const auto out = solver.evolve(init, 0.0);
  EXPECT_EQ(out[3][0], 1.0);
  EXPECT_NEAR(solver.mean_level(out), 3.0, 1e-14);
}

TEST(Transient, MassConserved) {
  const TransientSolver solver(m_mmpp_1(PaperClusterMmpp(2), 2.0), 60);
  const auto pi = PaperClusterMmpp(2).stationary_phases();
  auto state = solver.point_mass(30, pi);
  for (double t : {0.1, 1.0, 10.0, 100.0}) {
    state = solver.evolve(state, t);
    EXPECT_NEAR(solver.total_mass(state), 1.0, 1e-9) << t;
    for (const auto& level : state) {
      for (double x : level) EXPECT_GE(x, -1e-12);
    }
  }
}

TEST(Transient, MatchesDenseExpmOnSmallSystem) {
  // Build the full truncated generator densely and compare.
  const auto blocks = m_mmpp_1(PaperClusterMmpp(1), 1.5);
  const std::size_t m = blocks.phase_dim();
  const std::size_t cap = 4;
  const std::size_t n = (cap + 1) * m;

  Matrix q(n, n, 0.0);
  auto put = [&](std::size_t bl_r, std::size_t bl_c, const Matrix& b) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j) q(bl_r * m + i, bl_c * m + j) += b(i, j);
  };
  put(0, 0, blocks.b00);
  put(0, 1, blocks.b01);
  put(1, 0, blocks.b10);
  for (std::size_t k = 1; k <= cap; ++k) {
    put(k, k, k == cap ? blocks.a1 + blocks.a0 : blocks.a1);
    if (k + 1 <= cap) {
      put(k, k + 1, blocks.a0);
      put(k + 1, k, blocks.a2);
    }
  }

  const double t = 7.3;
  const Matrix p_t = linalg::expm(t * q);

  const TransientSolver solver(blocks, cap);
  Vector phases(m, 0.0);
  phases[0] = 1.0;
  const auto out = solver.evolve(solver.point_mass(2, phases), t, 1e-12);

  // Row of expm corresponding to initial state (level 2, phase 0).
  for (std::size_t k = 0; k <= cap; ++k) {
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(out[k][i], p_t(2 * m + 0, k * m + i), 1e-8)
          << "level " << k << " phase " << i;
    }
  }
}

TEST(Transient, ConvergesToStationary) {
  const auto mmpp = PaperClusterMmpp(2);
  const auto blocks = m_mmpp_1(mmpp, 0.5 * mmpp.mean_rate());
  const std::size_t cap = 80;
  const TransientSolver solver(blocks, cap);
  const FiniteQbdSolution stationary(blocks, cap);

  auto state = solver.point_mass(40, mmpp.stationary_phases());
  state = solver.evolve(state, 3000.0, 1e-10);
  const Vector pmf = solver.level_pmf(state);
  for (std::size_t k = 0; k <= cap; ++k) {
    EXPECT_NEAR(pmf[k], stationary.pmf(k), 1e-6) << k;
  }
  ExpectClose(solver.mean_level(state), stationary.mean_queue_length(), 1e-4,
              "E[Q]");
}

TEST(Transient, BacklogDrainsAtNetRate) {
  // Far from the boundary, the backlog drains at nu_bar - lambda.
  const auto mmpp = PaperClusterMmpp(1);
  const double lambda = 0.4 * mmpp.mean_rate();
  const TransientSolver solver(m_mmpp_1(mmpp, lambda), 400);
  auto state = solver.point_mass(300, mmpp.stationary_phases());
  const double t = 20.0;
  const auto out = solver.evolve(state, t);
  const double drained = 300.0 - solver.mean_level(out);
  ExpectClose(drained, (mmpp.mean_rate() - lambda) * t, 0.05, "drain rate");
}

TEST(Transient, HeavyTailedRepairSlowsConditionalRecovery) {
  // Start conditioned on "both servers DOWN" with a backlog: with TPT
  // repairs the remaining repair time is long (inspection paradox), so
  // recovery lags the exponential-repair cluster.
  auto recovery_mean = [](unsigned t_phases) {
    const map::ServerModel server(
        exponential_from_mean(90.0),
        medist::make_tpt(medist::TptSpec{t_phases, 1.4, 0.2, 10.0}), 2.0,
        0.2);
    const map::LumpedAggregate agg(server, 2);
    const auto mmpp = agg.mmpp();
    const double lambda = 0.4 * mmpp.mean_rate();
    const TransientSolver solver(m_mmpp_1(mmpp, lambda), 250);

    // Phase distribution: stationary conditioned on zero UP servers.
    Vector phases = mmpp.stationary_phases();
    for (std::size_t s = 0; s < agg.state_count(); ++s) {
      if (agg.up_count(s) != 0) phases[s] = 0.0;
    }
    const double mass = linalg::sum(phases);
    for (double& x : phases) x /= mass;

    auto state = solver.point_mass(150, phases);
    return solver.mean_level(solver.evolve(state, 40.0));
  };
  const double exp_mean = recovery_mean(1);
  const double tpt_mean = recovery_mean(9);
  EXPECT_GT(tpt_mean, exp_mean + 10.0);
}

TEST(Transient, Validation) {
  const auto blocks = m_mmpp_1(SinglePhase(1.0), 0.5);
  EXPECT_THROW(TransientSolver(blocks, 0), InvalidArgument);
  const TransientSolver solver(blocks, 5);
  EXPECT_THROW(solver.point_mass(9, Vector{1.0}), InvalidArgument);
  EXPECT_THROW(solver.point_mass(1, Vector{0.5}), InvalidArgument);
  const auto init = solver.point_mass(1, Vector{1.0});
  EXPECT_THROW(solver.evolve(init, -1.0), InvalidArgument);
  EXPECT_THROW(solver.evolve(init, 1.0, 0.0), InvalidArgument);
}

// Property: monotone relaxation from empty - the mean rises toward the
// stationary value without overshooting (M/M/1/K is stochastically
// monotone from the empty state).
class TransientSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransientSweep, MonotoneFromEmpty) {
  const double rho = GetParam();
  const auto blocks = m_mmpp_1(SinglePhase(1.0), rho);
  const std::size_t cap = 60;
  const TransientSolver solver(blocks, cap);
  const double limit = FiniteQbdSolution(blocks, cap).mean_queue_length();

  auto state = solver.point_mass(0, Vector{1.0});
  double prev = 0.0;
  for (int step = 0; step < 8; ++step) {
    state = solver.evolve(state, 5.0);
    const double mean = solver.mean_level(state);
    EXPECT_GE(mean, prev - 1e-9);
    EXPECT_LE(mean, limit + 1e-6);
    prev = mean;
  }
}

INSTANTIATE_TEST_SUITE_P(Rho, TransientSweep,
                         ::testing::Values(0.3, 0.6, 0.9));

}  // namespace
}  // namespace performa::qbd
