// The M/M/1 queue is the 1-phase special case of the QBD machinery; every
// quantity has a closed form, making this the sharpest end-to-end check of
// R-solver + boundary + metrics.
#include <gtest/gtest.h>

#include "core/mm1.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using performa::testing::ExpectClose;

QbdBlocks Mm1Blocks(double lambda, double mu) {
  const map::Mmpp service(Matrix{{0.0}}, Vector{mu});
  return m_mmpp_1(service, lambda);
}

TEST(QbdMm1, RIsScalarRho) {
  // For M/M/1, R = [lambda/mu].
  const auto res = solve_r(Mm1Blocks(0.3, 1.0));
  EXPECT_NEAR(res.r(0, 0), 0.3, 1e-12);
  EXPECT_LT(res.residual, 1e-10);
}

TEST(QbdMm1, MeanQueueLengthClosedForm) {
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95}) {
    const QbdSolution sol(Mm1Blocks(rho, 1.0));
    ExpectClose(sol.mean_queue_length(), core::mm1::mean_queue_length(rho),
                1e-9, "E[Q]");
  }
}

TEST(QbdMm1, PmfGeometric) {
  const double rho = 0.6;
  const QbdSolution sol(Mm1Blocks(rho, 1.0));
  for (std::size_t k : {0u, 1u, 2u, 5u, 10u, 50u}) {
    ExpectClose(sol.pmf(k), core::mm1::pmf(rho, k), 1e-9, "pmf");
  }
}

TEST(QbdMm1, TailGeometric) {
  const double rho = 0.8;
  const QbdSolution sol(Mm1Blocks(rho, 1.0));
  for (std::size_t k : {0u, 1u, 10u, 100u, 500u}) {
    ExpectClose(sol.tail(k), core::mm1::tail(rho, k), 1e-8, "tail");
  }
}

TEST(QbdMm1, VarianceClosedForm) {
  const double rho = 0.5;
  const QbdSolution sol(Mm1Blocks(rho, 1.0));
  ExpectClose(sol.variance(), core::mm1::variance(rho), 1e-9, "Var[Q]");
}

TEST(QbdMm1, DecayRateIsRho) {
  const QbdSolution sol(Mm1Blocks(0.45, 1.0));
  EXPECT_NEAR(sol.decay_rate(), 0.45, 1e-9);
}

TEST(QbdMm1, EmptyProbability) {
  const QbdSolution sol(Mm1Blocks(0.25, 1.0));
  EXPECT_NEAR(sol.probability_empty(), 0.75, 1e-10);
}

TEST(QbdMm1, UnstableThrows) {
  EXPECT_THROW(QbdSolution(Mm1Blocks(1.2, 1.0)), NumericalError);
  EXPECT_THROW(QbdSolution(Mm1Blocks(1.0, 1.0)), NumericalError);
}

TEST(QbdMm1, StabilityPredicate) {
  EXPECT_TRUE(is_stable(Mm1Blocks(0.99, 1.0)));
  EXPECT_FALSE(is_stable(Mm1Blocks(1.01, 1.0)));
  EXPECT_NEAR(utilization(Mm1Blocks(0.37, 1.0)), 0.37, 1e-12);
}

TEST(QbdMm1, PmfUptoMatchesPointwise) {
  const QbdSolution sol(Mm1Blocks(0.7, 1.0));
  const Vector pmf = sol.pmf_upto(40);
  for (std::size_t k = 0; k <= 40; ++k) {
    EXPECT_NEAR(pmf[k], sol.pmf(k), 1e-12) << k;
  }
}

TEST(QbdMm1, SuccessiveSubstitutionAgrees) {
  SolverOptions opts;
  opts.algorithm = RAlgorithm::kSuccessiveSubstitution;
  const QbdSolution sol(Mm1Blocks(0.6, 2.0), opts);
  ExpectClose(sol.mean_queue_length(), core::mm1::mean_queue_length(0.3),
              1e-7, "E[Q]");
}

TEST(Mm1ClosedForms, InputValidation) {
  EXPECT_THROW(core::mm1::mean_queue_length(1.0), InvalidArgument);
  EXPECT_THROW(core::mm1::mean_queue_length(-0.1), InvalidArgument);
  EXPECT_THROW(core::mm1::mean_system_time(2.0, 1.0), InvalidArgument);
  EXPECT_NEAR(core::mm1::mean_system_time(1.0, 2.0), 1.0, 1e-14);
}

// Property sweep: both algorithms, multiple utilizations and mu scales.
struct Mm1Case {
  double rho;
  double mu;
  RAlgorithm alg;
};

class Mm1Property : public ::testing::TestWithParam<Mm1Case> {};

TEST_P(Mm1Property, AllMetricsMatchClosedForms) {
  const auto [rho, mu, alg] = GetParam();
  SolverOptions opts;
  opts.algorithm = alg;
  const QbdSolution sol(Mm1Blocks(rho * mu, mu), opts);
  ExpectClose(sol.mean_queue_length(), core::mm1::mean_queue_length(rho),
              1e-7, "E[Q]");
  ExpectClose(sol.tail(20), core::mm1::tail(rho, 20), 1e-7, "tail(20)");
  ExpectClose(sol.probability_empty(), 1.0 - rho, 1e-8, "P(empty)");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Mm1Property,
    ::testing::Values(
        Mm1Case{0.1, 1.0, RAlgorithm::kLogarithmicReduction},
        Mm1Case{0.5, 1.0, RAlgorithm::kLogarithmicReduction},
        Mm1Case{0.9, 1.0, RAlgorithm::kLogarithmicReduction},
        Mm1Case{0.5, 100.0, RAlgorithm::kLogarithmicReduction},
        Mm1Case{0.5, 0.01, RAlgorithm::kLogarithmicReduction},
        Mm1Case{0.1, 1.0, RAlgorithm::kSuccessiveSubstitution},
        Mm1Case{0.5, 1.0, RAlgorithm::kSuccessiveSubstitution},
        Mm1Case{0.9, 1.0, RAlgorithm::kSuccessiveSubstitution}));

}  // namespace
}  // namespace performa::qbd
