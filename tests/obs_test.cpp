// The obs tracing/metrics subsystem: span nesting and balance (also
// under exceptions), trace_event JSONL structure, fragment merging with
// torn tails, race-free counters, snapshot JSON, and the disabled-mode
// no-output guarantee.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace performa::obs {
namespace {

// Every test leaves tracing disabled and the registry zeroed so order
// does not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable_trace();
    reset_metrics_for_test();
  }
  void TearDown() override {
    disable_trace();
    reset_metrics_for_test();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += '/';
  path += stem;
  path += '.';
  path += std::to_string(::getpid());
  return path;
}

TEST_F(ObsTest, SpanInertWhenDisabled) {
  EXPECT_FALSE(trace_enabled());
  {
    Span span("never.recorded");
    span.annotate("key", 1.0);
    EXPECT_EQ(span.elapsed_seconds(), 0.0);
  }
  enable_trace_memory();
  flush_trace();
  EXPECT_TRUE(drain_memory_trace().empty());
}

// Everything below exercises *enabled* recording, which the
// -DPERFORMA_OBS=OFF build compiles to no-ops by design -- only the
// inert-path and mechanical-file-work tests run there.
#if !defined(PERFORMA_OBS_DISABLED)
TEST_F(ObsTest, SpansNestAndBalance) {
  enable_trace_memory();
  {
    PERFORMA_SPAN("outer");
    {
      PERFORMA_SPAN("inner");
    }
  }
  flush_trace();
  const auto events = drain_memory_trace();
  ASSERT_EQ(events.size(), 2u);
  // Unwinding records innermost-first; the inner span must sit entirely
  // inside the outer one on the timeline.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1e-3);
  EXPECT_GT(events[1].dur_us, 0.0);
  EXPECT_EQ(events[0].pid, events[1].pid);
}

TEST_F(ObsTest, SpansBalanceUnderExceptions) {
  enable_trace_memory();
  try {
    PERFORMA_SPAN("throwing.outer");
    PERFORMA_SPAN("throwing.inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  flush_trace();
  const auto events = drain_memory_trace();
  ASSERT_EQ(events.size(), 2u);  // both spans closed by unwinding
  EXPECT_STREQ(events[0].name, "throwing.inner");
  EXPECT_STREQ(events[1].name, "throwing.outer");
}

TEST_F(ObsTest, AnnotationsRenderAsJsonArgs) {
  enable_trace_memory();
  {
    Span span("annotated");
    span.annotate("label", std::string("tier \"2\""));
    span.annotate("count", std::uint64_t{7});
    span.annotate("ratio", 0.5);
  }
  flush_trace();
  const auto events = drain_memory_trace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].args.find("\"label\":\"tier \\\"2\\\"\""),
            std::string::npos)
      << events[0].args;
  EXPECT_NE(events[0].args.find("\"count\":7"), std::string::npos);
  EXPECT_NE(events[0].args.find("\"ratio\":0.5"), std::string::npos);
}

TEST_F(ObsTest, FileSinkWritesParsableTraceEventLines) {
  const std::string path = temp_path("obs_trace");
  enable_trace_file(path);
  {
    PERFORMA_SPAN("file.span");
  }
  flush_trace();
  disable_trace();

  const std::string text = read_file(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "[");  // JSON-array header; ']' optional per the spec
  std::size_t records = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++records;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), ',') << line;
    EXPECT_NE(line.find("\"ph\":\"X\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"name\":\"file.span\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"cat\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"dur\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"pid\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
  }
  EXPECT_EQ(records, 1u);
}
#endif  // !PERFORMA_OBS_DISABLED

TEST_F(ObsTest, MergeFragmentKeepsCompleteRecordsDropsTornTail) {
  const std::string frag = temp_path("obs_frag");
  {
    std::ofstream out(frag, std::ios::binary);
    out << "[\n";
    out << "{\"name\":\"worker.span\",\"ph\":\"X\",\"pid\":4242},\n";
    out << "{\"name\":\"torn.span\",\"ph\":\"X\",\"pi";  // SIGKILL mid-write
  }
  enable_trace_memory();
  EXPECT_EQ(merge_trace_fragment(frag), 1u);
  const auto lines = drain_memory_raw_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("worker.span"), std::string::npos);
  EXPECT_NE(lines[0].find("4242"), std::string::npos);  // pid preserved
  // The fragment was consumed.
  EXPECT_TRUE(read_file(frag).empty());
  // Merging a nonexistent fragment (worker died pre-flush) is a no-op.
  EXPECT_EQ(merge_trace_fragment(frag), 0u);
}

#if !defined(PERFORMA_OBS_DISABLED)
TEST_F(ObsTest, CountersAreRaceFreeAcrossThreads) {
  Counter& hits = counter("test.race.hits");
  Histogram& lat = histogram("test.race.latency");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&hits, &lat, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        hits.add(1);
        lat.record(0.001 * (t + 1));
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(lat.count(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_NEAR(lat.sum(), 0.001 * (1 + kThreads) / 2.0 * kThreads *
                             kAddsPerThread,
              1e-6);
}

TEST_F(ObsTest, GaugeAndHistogramQuantiles) {
  Gauge& g = gauge("test.gauge");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  Histogram& h = histogram("test.quantiles");
  for (int i = 0; i < 90; ++i) h.record(0.010);  // bucket [2^-7, 2^-6)
  for (int i = 0; i < 10; ++i) h.record(10.0);   // bucket [8, 16)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.quantile(0.5), 0.020);  // <= one bucket above the sample
  EXPECT_GE(h.quantile(0.5), 0.010);
  EXPECT_GE(h.quantile(0.99), 10.0);
  EXPECT_LE(h.quantile(0.99), 16.0);
}
#endif  // !PERFORMA_OBS_DISABLED

// Registration-time kind checking happens in both build modes.
TEST_F(ObsTest, RegistryRejectsKindMismatch) {
  counter("test.kind");
  EXPECT_THROW(gauge("test.kind"), std::runtime_error);
  EXPECT_THROW(histogram("test.kind"), std::runtime_error);
}

#if !defined(PERFORMA_OBS_DISABLED)
TEST_F(ObsTest, SnapshotFindsAndSerializes) {
  counter("test.snap.counter").add(3);
  gauge("test.snap.gauge").set(1.25);
  histogram("test.snap.hist").record(2.0);
  const MetricsSnapshot snap = snapshot_metrics();
  const auto* c = snap.find("test.snap.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 3.0);
  EXPECT_EQ(snap.find("test.snap.missing"), nullptr);

  const std::string json = snap.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test.snap.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST_F(ObsTest, MetricsFileRoundTrip) {
  counter("test.file.counter").add(11);
  const std::string path = temp_path("obs_metrics");
  write_metrics_file(path);
  const std::string text = read_file(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"test.file.counter\""), std::string::npos);
  EXPECT_NE(text.find("11"), std::string::npos);
}

TEST_F(ObsTest, ReopenInChildDiscardsInheritedSpans) {
  // Simulate the fork protocol in-process: record a span into the
  // thread-local buffer, then "reopen" -- the buffered parent span must
  // NOT land in the child's fragment.
  enable_trace_memory();
  {
    PERFORMA_SPAN("parent.buffered");
  }
  // Not flushed: still sitting in the thread-local buffer.
  const std::string frag = temp_path("obs_child_frag");
  reopen_trace_in_child(frag);
  {
    PERFORMA_SPAN("child.own");
  }
  flush_trace();
  disable_trace();
  const std::string text = read_file(frag);
  std::remove(frag.c_str());
  EXPECT_EQ(text.find("parent.buffered"), std::string::npos) << text;
  EXPECT_NE(text.find("child.own"), std::string::npos) << text;
}
#endif  // !PERFORMA_OBS_DISABLED

#if defined(PERFORMA_OBS_DISABLED)
TEST_F(ObsTest, DisabledBuildCompilesSpansToNothing) {
  counter("test.disabled").add(5);
  EXPECT_EQ(counter("test.disabled").value(), 0u);  // add is a no-op
  PERFORMA_SPAN("vanishes");
}
#endif

}  // namespace
}  // namespace performa::obs
