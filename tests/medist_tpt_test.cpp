#include "medist/tpt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace performa::medist {
namespace {

using performa::testing::ExpectClose;

// The paper's repair-time setting: alpha = 1.4, theta = 0.2, MTTR = 10.
TptSpec PaperSpec(unsigned t) { return TptSpec{t, 1.4, 0.2, 10.0}; }

TEST(TptSpec, GammaFormula) {
  const TptSpec s = PaperSpec(10);
  EXPECT_NEAR(s.gamma(), std::pow(0.2, -1.0 / 1.4), 1e-14);
  EXPECT_GT(s.gamma(), 1.0);
}

TEST(TptSpec, Validation) {
  EXPECT_THROW(make_tpt(TptSpec{0, 1.4, 0.2, 1.0}), InvalidArgument);
  EXPECT_THROW(make_tpt(TptSpec{3, -1.0, 0.2, 1.0}), InvalidArgument);
  EXPECT_THROW(make_tpt(TptSpec{3, 1.4, 0.0, 1.0}), InvalidArgument);
  EXPECT_THROW(make_tpt(TptSpec{3, 1.4, 1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(make_tpt(TptSpec{3, 1.4, 0.2, 0.0}), InvalidArgument);
}

TEST(Tpt, EntryProbabilitiesGeometricAndNormalized) {
  const Vector p = tpt_entry_probabilities(PaperSpec(5));
  EXPECT_NEAR(linalg::sum(p), 1.0, 1e-13);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_NEAR(p[i] / p[i - 1], 0.2, 1e-12) << i;
  }
}

TEST(Tpt, PhaseRatesGeometric) {
  const TptSpec spec = PaperSpec(6);
  const Vector r = tpt_phase_rates(spec);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_NEAR(r[i - 1] / r[i], spec.gamma(), 1e-10) << i;
  }
}

TEST(Tpt, MeanMatchesTarget) {
  for (unsigned t : {1u, 2u, 5u, 9u, 10u, 20u}) {
    const MeDistribution d = make_tpt(PaperSpec(t));
    EXPECT_NEAR(d.mean(), 10.0, 1e-9) << "T=" << t;
  }
}

TEST(Tpt, TruncationOneIsExponential) {
  const MeDistribution d = make_tpt(PaperSpec(1));
  EXPECT_EQ(d.dim(), 1u);
  EXPECT_NEAR(d.scv(), 1.0, 1e-12);
  EXPECT_NEAR(d.reliability(10.0), std::exp(-1.0), 1e-10);
}

TEST(Tpt, VarianceGrowsWithTruncation) {
  // alpha = 1.4 < 2: the variance diverges as T grows.
  double prev = 0.0;
  for (unsigned t : {1u, 3u, 5u, 7u, 9u, 11u}) {
    const double var = make_tpt(PaperSpec(t)).variance();
    EXPECT_GT(var, prev) << "T=" << t;
    prev = var;
  }
  EXPECT_GT(make_tpt(PaperSpec(11)).scv(), 50.0);
}

TEST(Tpt, IsPhaseTypeAndHyperexponential) {
  const MeDistribution d = make_tpt(PaperSpec(10));
  EXPECT_TRUE(d.is_phase_type());
  // Diagonal rate matrix: a pure mixture.
  const auto& b = d.rate_matrix();
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      if (i != j) {
        EXPECT_EQ(b(i, j), 0.0);
      }
}

TEST(Tpt, ReliabilityShowsPowerLawOverMidRange) {
  // Fit a slope to log R(t) vs log t over the power-law window and check
  // it is close to -alpha. The window must stay away from both the short
  // initial transient and the exponential truncation.
  const TptSpec spec{14, 1.4, 0.2, 1.0};
  const MeDistribution d = make_tpt(spec);

  std::vector<double> xs, ys;
  for (double t = 10.0; t <= 1000.0; t *= 1.5) {
    xs.push_back(std::log(t));
    ys.push_back(std::log(d.reliability(t)));
  }
  // Least-squares slope.
  const std::size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, -1.4, 0.12) << "power-law exponent";
}

TEST(Tpt, TruncatedTailDropsExponentially) {
  // Far beyond the longest phase mean, the reliability must fall much
  // faster than the power law would predict.
  const TptSpec spec{5, 1.4, 0.2, 1.0};
  const MeDistribution d = make_tpt(spec);
  const double t_far = 2000.0;
  const double power_law_prediction = std::pow(t_far, -1.4);
  EXPECT_LT(d.reliability(t_far), power_law_prediction * 1e-3);
}

TEST(Tpt, RangeGrowsGeometrically) {
  const TptSpec s5 = PaperSpec(5);
  const TptSpec s6 = PaperSpec(6);
  EXPECT_NEAR(s6.range() / s5.range(), s5.gamma(), 1e-10);
}

// Property sweep over (T, alpha, theta): construction invariants.
struct TptCase {
  unsigned t;
  double alpha;
  double theta;
};

class TptProperty : public ::testing::TestWithParam<TptCase> {};

TEST_P(TptProperty, ConstructionInvariants) {
  const auto [t, alpha, theta] = GetParam();
  const TptSpec spec{t, alpha, theta, 3.0};
  const MeDistribution d = make_tpt(spec);
  EXPECT_EQ(d.dim(), t);
  EXPECT_NEAR(d.mean(), 3.0, 1e-8);
  EXPECT_TRUE(d.is_phase_type());
  EXPECT_NEAR(linalg::sum(d.entry_vector()), 1.0, 1e-12);
  EXPECT_GE(d.scv(), 1.0 - 1e-9);  // mixtures of exponentials: SCV >= 1
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TptProperty,
    ::testing::Values(TptCase{1, 1.4, 0.2}, TptCase{2, 1.4, 0.2},
                      TptCase{5, 1.4, 0.2}, TptCase{9, 1.4, 0.2},
                      TptCase{10, 1.4, 0.2}, TptCase{5, 1.4, 0.5},
                      TptCase{10, 1.1, 0.3}, TptCase{10, 1.9, 0.3},
                      TptCase{16, 1.5, 0.25}, TptCase{24, 1.2, 0.4}));

}  // namespace
}  // namespace performa::medist
