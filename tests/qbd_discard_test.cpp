// Analytic Discard model (paper Sec. 2.4, last bullet): crash transitions
// double as unsuccessful departures.
#include <gtest/gtest.h>

#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "sim/cluster_sim.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

map::LumpedAggregate CrashCluster(unsigned t_phases, unsigned n = 2) {
  const map::ServerModel server(exponential_from_mean(90.0),
                                make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, /*delta=*/0.0);
  return map::LumpedAggregate(server, n);
}

TEST(Discard, BlocksValidateAndDiffer) {
  const auto cluster = CrashCluster(2);
  const double lambda = 1.5;
  const auto discard = m_mmpp_1_discard(cluster, lambda);
  const auto resume = m_mmpp_1(cluster.mmpp(), lambda);
  EXPECT_NO_THROW(discard.validate());
  // The discard A2 dominates the resume A2 (extra crash departures).
  bool strictly_larger = false;
  for (std::size_t i = 0; i < discard.a2.data().size(); ++i) {
    EXPECT_GE(discard.a2.data()[i], resume.a2.data()[i] - 1e-12);
    if (discard.a2.data()[i] > resume.a2.data()[i] + 1e-12) {
      strictly_larger = true;
    }
  }
  EXPECT_TRUE(strictly_larger);
}

TEST(Discard, ShorterQueueThanResume) {
  // Dropping interrupted work can only relieve the queue.
  const auto cluster = CrashCluster(5);
  for (double rho : {0.3, 0.6, 0.8}) {
    const double lambda = rho * cluster.mmpp().mean_rate();
    const double q_discard =
        QbdSolution(m_mmpp_1_discard(cluster, lambda)).mean_queue_length();
    const double q_resume =
        QbdSolution(m_mmpp_1(cluster.mmpp(), lambda)).mean_queue_length();
    EXPECT_LT(q_discard, q_resume) << "rho=" << rho;
  }
}

TEST(Discard, FractionIsSmallAndPositive) {
  const auto cluster = CrashCluster(5);
  const double lambda = 0.6 * cluster.mmpp().mean_rate();
  const QbdSolution sol(m_mmpp_1_discard(cluster, lambda));
  const double frac =
      discard_fraction(cluster, lambda, sol.phase_marginal_busy());
  EXPECT_GT(frac, 0.0);
  // MTTF=90, service time 0.5: only a small share of tasks is hit.
  EXPECT_LT(frac, 0.05);
}

TEST(Discard, FractionMatchesSimulation) {
  const auto cluster = CrashCluster(1);
  const double lambda = 0.6 * cluster.mmpp().mean_rate();
  const QbdSolution sol(m_mmpp_1_discard(cluster, lambda));
  const double analytic_frac =
      discard_fraction(cluster, lambda, sol.phase_marginal_busy());

  sim::ClusterSimConfig cfg;
  cfg.delta = 0.0;
  cfg.lambda = lambda;
  cfg.up = sim::exponential_sampler_mean(90.0);
  cfg.down = sim::exponential_sampler_mean(10.0);
  cfg.strategy = sim::FailureStrategy::kDiscard;
  cfg.cycles = 40000;
  cfg.warmup_cycles = 4000;
  cfg.seed = 99;
  const auto res = sim::simulate_cluster(cfg);
  const double sim_frac = static_cast<double>(res.discarded) /
                          static_cast<double>(res.arrivals);
  // The load-independent analytic model over-counts interruptions a bit
  // (it serves even when fewer tasks than servers are present, and every
  // crash is assumed to hit a busy server); same ballpark is expected.
  ExpectClose(sim_frac, analytic_frac, 0.5 * analytic_frac, "discard frac");
}

TEST(Discard, RequiresCrashFaults) {
  const map::ServerModel degraded(exponential_from_mean(90.0),
                                  exponential_from_mean(10.0), 2.0, 0.2);
  const map::LumpedAggregate cluster(degraded, 2);
  EXPECT_THROW(m_mmpp_1_discard(cluster, 1.0), InvalidArgument);
  EXPECT_THROW(m_mmpp_1_discard(CrashCluster(1), 0.0), InvalidArgument);
}

TEST(Discard, StableBeyondResumeStabilityLimit) {
  // Discarding makes the system stable at arrival rates where the
  // work-conserving model saturates: the crash departures add capacity.
  const auto cluster = CrashCluster(2);
  const double nu_bar = cluster.mmpp().mean_rate();
  const double lambda = 1.005 * nu_bar;
  EXPECT_THROW(QbdSolution(m_mmpp_1(cluster.mmpp(), lambda)), NumericalError);
  EXPECT_NO_THROW(QbdSolution(m_mmpp_1_discard(cluster, lambda)));
}

TEST(Discard, MarginalLengthValidation) {
  const auto cluster = CrashCluster(1);
  EXPECT_THROW(discard_fraction(cluster, 1.0, linalg::Vector{0.5}),
               InvalidArgument);
}

// Property: discard relief grows with crash frequency (lower MTTF).
class DiscardProperty : public ::testing::TestWithParam<double> {};

TEST_P(DiscardProperty, OrderingHoldsAcrossAvailability) {
  const double mttf = GetParam();
  const map::ServerModel server(exponential_from_mean(mttf),
                                exponential_from_mean(10.0), 2.0, 0.0);
  const map::LumpedAggregate cluster(server, 2);
  const double lambda = 0.5 * cluster.mmpp().mean_rate();
  const QbdSolution discard(m_mmpp_1_discard(cluster, lambda));
  const QbdSolution resume(m_mmpp_1(cluster.mmpp(), lambda));
  EXPECT_LE(discard.mean_queue_length(), resume.mean_queue_length() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Mttf, DiscardProperty,
                         ::testing::Values(30.0, 90.0, 300.0, 900.0));

}  // namespace
}  // namespace performa::qbd
