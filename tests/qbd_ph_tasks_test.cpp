// Analytic cluster model with phase-type task times (paper Sec. 2.4,
// "Hyperexponential task times"): the per-server process becomes a MAP,
// aggregated over N servers, solved as an M/MAP/1 queue. With exponential
// tasks this must collapse exactly to the M/MMPP/1 model.
#include <gtest/gtest.h>

#include "core/mm1.h"
#include "map/server_task_model.h"
#include "medist/moment_fit.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::erlang_dist;
using medist::exponential_dist;
using medist::exponential_from_mean;
using performa::testing::ExpectClose;

map::Map ClusterServiceMap(const medist::MeDistribution& task,
                           unsigned t_repair, unsigned n, double delta) {
  const map::ServerTaskModel server(
      exponential_from_mean(90.0),
      medist::make_tpt(medist::TptSpec{t_repair, 1.4, 0.2, 10.0}), 2.0, delta,
      task);
  return map::LumpedMapAggregate(server.service_map(), n).aggregate();
}

TEST(PhTasks, ExponentialTasksCollapseToMmpp) {
  // exp(nu_p) tasks: one task phase; the MAP model must equal the MMPP
  // model to machine precision.
  const map::ServerModel plain(exponential_from_mean(90.0),
                               medist::make_tpt(medist::TptSpec{3, 1.4, 0.2,
                                                                10.0}),
                               2.0, 0.2);
  const map::LumpedAggregate mmpp_agg(plain, 2);
  const auto service_map = ClusterServiceMap(exponential_dist(2.0), 3, 2, 0.2);

  const double lambda = 0.6 * mmpp_agg.mmpp().mean_rate();
  const QbdSolution via_mmpp(m_mmpp_1(mmpp_agg.mmpp(), lambda));
  const QbdSolution via_map(m_map_1(service_map, lambda));

  ExpectClose(via_map.mean_queue_length(), via_mmpp.mean_queue_length(),
              1e-9, "E[Q]");
  ExpectClose(via_map.probability_empty(), via_mmpp.probability_empty(),
              1e-9, "P(empty)");
  ExpectClose(via_map.tail(100), via_mmpp.tail(100), 1e-8, "tail(100)");
}

TEST(PhTasks, ServerTaskModelBasics) {
  const map::ServerTaskModel m(exponential_from_mean(90.0),
                               exponential_from_mean(10.0), 2.0, 0.2,
                               erlang_dist(2, 0.5));
  EXPECT_EQ(m.server_dim(), 2u);
  EXPECT_EQ(m.task_dim(), 2u);
  EXPECT_EQ(m.dim(), 4u);
  EXPECT_EQ(m.phase_index(1, 1), 3u);
  EXPECT_THROW(m.phase_index(2, 0), InvalidArgument);
  // Completion rate of an always-busy server: work mean 0.5 at speed 1
  // (UP, fraction A) and speed delta (DOWN): rate = A/0.5 + (1-A)*0.2/0.5.
  ExpectClose(m.mean_completion_rate(), 0.9 / 0.5 + 0.1 * 0.2 / 0.5, 1e-9,
              "completion rate");
}

TEST(PhTasks, NonPhaseTypeTaskRejected) {
  const linalg::Vector p{1.0, 0.0};
  const linalg::Matrix b{{2.0, 0.5}, {0.0, 1.0}};
  const medist::MeDistribution non_ph(p, b, "non-ph");
  EXPECT_THROW(map::ServerTaskModel(exponential_from_mean(90.0),
                                    exponential_from_mean(10.0), 2.0, 0.2,
                                    non_ph),
               InvalidArgument);
}

TEST(PhTasks, TaskVarianceOrdersTheQueue) {
  // Erlang-2 tasks (SCV 0.5) < exponential < HYP-2 (SCV 5.3) in mean
  // queue length at equal utilization -- the analytic counterpart of the
  // Fig. 9 simulation.
  const auto erl = ClusterServiceMap(erlang_dist(2, 0.5), 2, 2, 0.2);
  const auto exp_t = ClusterServiceMap(exponential_dist(2.0), 2, 2, 0.2);
  const auto hyp = ClusterServiceMap(
      medist::hyperexp_from_mean_scv(0.5, 5.3), 2, 2, 0.2);

  const double rho = 0.7;
  const double lambda = rho * exp_t.mean_rate();
  ExpectClose(erl.mean_rate(), exp_t.mean_rate(), 1e-9, "rate erl");
  ExpectClose(hyp.mean_rate(), exp_t.mean_rate(), 1e-9, "rate hyp");

  const double q_erl = QbdSolution(m_map_1(erl, lambda)).mean_queue_length();
  const double q_exp = QbdSolution(m_map_1(exp_t, lambda)).mean_queue_length();
  const double q_hyp = QbdSolution(m_map_1(hyp, lambda)).mean_queue_length();
  EXPECT_LT(q_erl, q_exp);
  EXPECT_LT(q_exp, q_hyp);
}

TEST(PhTasks, BlowupSurvivesPhaseTypeTasks) {
  // The qualitative blow-up does not depend on exponential task times.
  const auto hyp = ClusterServiceMap(
      medist::hyperexp_from_mean_scv(0.5, 5.3), 5, 2, 0.2);
  auto nql = [&](double rho) {
    const double lambda = rho * hyp.mean_rate();
    return QbdSolution(m_map_1(hyp, lambda)).mean_queue_length() /
           core::mm1::mean_queue_length(rho);
  };
  EXPECT_GT(nql(0.70), 2.0 * nql(0.10));
}

TEST(PhTasks, LumpedMapAggregateInvariants) {
  const map::ServerTaskModel server(exponential_from_mean(90.0),
                                    exponential_from_mean(10.0), 2.0, 0.2,
                                    erlang_dist(2, 0.5));
  const map::LumpedMapAggregate agg(server.service_map(), 3);
  // State count: C(N + m - 1, m - 1) with m = 4 phases.
  EXPECT_EQ(agg.state_count(), map::lumped_state_count(4, 3));
  // Aggregate completion rate = N * per-server rate.
  ExpectClose(agg.aggregate().mean_rate(),
              3.0 * server.mean_completion_rate(), 1e-9, "rate");
  for (std::size_t i = 0; i < agg.state_count(); ++i) {
    unsigned total = 0;
    for (unsigned c : agg.occupancy(i)) total += c;
    EXPECT_EQ(total, 3u);
  }
  EXPECT_THROW(agg.occupancy(agg.state_count()), InvalidArgument);
}

TEST(PhTasks, CrashClusterWithPhTasks) {
  // delta = 0: task phases freeze while DOWN; the model still solves and
  // shows the heavy-task penalty.
  const auto service = ClusterServiceMap(
      medist::hyperexp_from_mean_scv(0.5, 5.3), 2, 2, 0.0);
  const double lambda = 0.6 * service.mean_rate();
  const QbdSolution sol(m_map_1(service, lambda));
  EXPECT_GT(sol.mean_queue_length(), core::mm1::mean_queue_length(0.6));
}

// Property: aggregate MAP mean rate scales with N and matches the
// MMPP-based mean service rate for exponential tasks.
class PhTaskSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PhTaskSweep, RatesConsistent) {
  const unsigned n = GetParam();
  const map::ServerTaskModel server(exponential_from_mean(90.0),
                                    exponential_from_mean(10.0), 2.0, 0.2,
                                    exponential_dist(2.0));
  const map::LumpedMapAggregate agg(server.service_map(), n);
  ExpectClose(agg.aggregate().mean_rate(), n * 1.84, 1e-9, "nu_bar");
}

INSTANTIATE_TEST_SUITE_P(N, PhTaskSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace performa::qbd
