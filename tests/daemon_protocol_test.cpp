// Wire-protocol tests for performad: the flat JSON codec (parse,
// escape, number round-trips, malformed-input rejection with
// positions), model-spec parsing with validation, and the canonical
// cache key's bit-exactness and field sensitivity.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "daemon/jsonio.h"
#include "daemon/query.h"

namespace performa::daemon {
namespace {

JsonObject parse_ok(const std::string& text) {
  JsonObject obj;
  std::string error;
  EXPECT_TRUE(parse_json_object(text, obj, error)) << error;
  return obj;
}

TEST(JsonIoTest, ParsesFlatObject) {
  const JsonObject obj = parse_ok(
      R"({"op":"tail","k":25,"rho":0.75,"refresh":true,"note":null})");
  EXPECT_EQ(obj.string("op", ""), "tail");
  EXPECT_DOUBLE_EQ(obj.number("k", -1.0), 25.0);
  EXPECT_DOUBLE_EQ(obj.number("rho", -1.0), 0.75);
  EXPECT_TRUE(obj.boolean("refresh", false));
  EXPECT_TRUE(obj.has("note"));
  EXPECT_EQ(obj.find("note")->kind, JsonValue::Kind::kNull);
  EXPECT_FALSE(obj.has("absent"));
  EXPECT_DOUBLE_EQ(obj.number("absent", 7.0), 7.0);
}

TEST(JsonIoTest, WhitespaceAndEmptyObject) {
  parse_ok("  { }  ");
  const JsonObject obj = parse_ok("{ \"a\" :\t1 ,\n \"b\" : \"x\" }");
  EXPECT_DOUBLE_EQ(obj.number("a", 0.0), 1.0);
  EXPECT_EQ(obj.string("b", ""), "x");
}

TEST(JsonIoTest, StringEscapes) {
  const JsonObject obj =
      parse_ok(R"({"s":"a\"b\\c\nd\teA"})");
  EXPECT_EQ(obj.string("s", ""), "a\"b\\c\nd\teA");
}

TEST(JsonIoTest, DuplicateKeysLastWins) {
  const JsonObject obj = parse_ok(R"({"k":1,"k":2})");
  EXPECT_DOUBLE_EQ(obj.number("k", 0.0), 2.0);
}

TEST(JsonIoTest, NumbersRoundTripThroughWriter) {
  const double values[] = {0.0,     1.0,       -1.5,  0.1,
                           1e-300,  1.7e308,   M_PI,  2.576,
                           4.669976421219476, -0.0};
  for (double v : values) {
    JsonWriter w;
    w.field("v", v);
    const JsonObject obj = parse_ok(std::move(w).str());
    EXPECT_EQ(obj.number("v", 99.0), v) << "value " << v;
  }
}

TEST(JsonIoTest, EdgeDoublesRoundTripBitExactly) {
  // The daemon's cache journal persists R/pi entries through this codec;
  // a single misrounded ulp would trip the rehydration mass check, so
  // the round-trip must be bit-exact across the entire double range.
  const double edges[] = {
      std::numeric_limits<double>::denorm_min(),   // smallest subnormal
      4.9406564584124654e-310,                     // mid-range subnormal
      std::numeric_limits<double>::min(),          // smallest normal
      std::nextafter(1.0, 0.0),                    // 1 - ulp/2
      std::nextafter(1.0, 2.0),                    // 1 + ulp
      std::numeric_limits<double>::max(),          // DBL_MAX
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
  };
  for (double v : edges) {
    JsonWriter w;
    w.field("v", v);
    const JsonObject obj = parse_ok(std::move(w).str());
    const double back = obj.number("v", 99.0);
    EXPECT_EQ(back, v) << "value " << v;
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << "sign of " << v;
  }
}

TEST(JsonIoTest, NegativeZeroKeepsItsSign) {
  JsonWriter w;
  w.field("v", -0.0);
  const std::string line = std::move(w).str();
  const JsonObject obj = parse_ok(line);
  const double back = obj.number("v", 99.0);
  EXPECT_EQ(back, 0.0);
  EXPECT_TRUE(std::signbit(back)) << "wire form: " << line;
}

TEST(JsonIoTest, NonFiniteNumbersSerializeAsNull) {
  JsonWriter w;
  w.field("nan", std::numeric_limits<double>::quiet_NaN());
  w.field("inf", std::numeric_limits<double>::infinity());
  const std::string line = std::move(w).str();
  EXPECT_EQ(line, R"({"nan":null,"inf":null})");
}

TEST(JsonIoTest, WriterEscapesStrings) {
  JsonWriter w;
  w.field("s", std::string("a\"b\\c\nd"));
  const std::string line = std::move(w).str();
  const JsonObject obj = parse_ok(line);
  EXPECT_EQ(obj.string("s", ""), "a\"b\\c\nd");
}

TEST(JsonIoTest, WriterArraysParseElsewhere) {
  JsonWriter w;
  w.field_array("xs", {1.0, 0.5, 0.25});
  EXPECT_EQ(std::move(w).str(), R"({"xs":[1,0.5,0.25]})");
}

TEST(JsonIoTest, MalformedInputsRejectedWithPosition) {
  const char* bad[] = {
      "",                      // empty
      "null",                  // not an object
      "[1,2]",                 // array at top level
      "{\"a\":1",              // unterminated object
      "{\"a\" 1}",             // missing colon
      "{\"a\":}",              // missing value
      "{\"a\":1,}",            // trailing comma
      "{\"a\":{\"b\":1}}",     // nested object (flat protocol)
      "{\"a\":[1]}",           // nested array
      "{\"a\":tru}",           // bad literal
      "{\"a\":1} x",           // trailing bytes
      "{\"a\":\"unterminated", // unterminated string
      "{\"a\":\"bad\\q\"}",    // unknown escape
      "{\"a\":--1}",           // malformed number
  };
  for (const char* text : bad) {
    JsonObject obj;
    std::string error;
    EXPECT_FALSE(parse_json_object(text, obj, error)) << "input: " << text;
    EXPECT_NE(error.find("at position"), std::string::npos)
        << "error must carry a position: " << error;
  }
}

TEST(ModelSpecTest, DefaultsMatchThePaperExample) {
  const JsonObject obj = parse_ok(R"({"op":"mean"})");
  ModelSpec spec;
  std::string error;
  ASSERT_TRUE(parse_model(obj, spec, error)) << error;
  EXPECT_EQ(spec.n_servers, 2u);
  EXPECT_DOUBLE_EQ(spec.nu_p, 2.0);
  EXPECT_DOUBLE_EQ(spec.delta, 0.2);
  EXPECT_DOUBLE_EQ(spec.availability(), 0.9);
  EXPECT_NEAR(spec.mean_service_rate(), 3.68, 1e-12);
}

TEST(ModelSpecTest, RejectsOutOfRangeFields) {
  const char* bad[] = {
      R"({"n":0})",            R"({"n":1.5})",
      R"({"nu_p":-1})",        R"({"delta":1.5})",
      R"({"mttf":0})",         R"({"mttr":-2})",
      R"({"repair":"weird"})", R"({"repair":7})",
      R"({"repair":"tpt","tpt_alpha":1.0})",
      R"({"repair":"tpt","tpt_theta":1.0})",
      R"({"repair":"tpt","tpt_phases":0})",
      R"({"repair":"erlang","erlang_k":0})",
      R"({"rho":0})",          R"({"rho":1})",
      R"({"rho":"high"})",
  };
  for (const char* text : bad) {
    const JsonObject obj = parse_ok(text);
    ModelSpec spec;
    std::string error;
    EXPECT_FALSE(parse_model(obj, spec, error)) << "input: " << text;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ModelSpecTest, TptShapeOnlyValidatedForTptRepair) {
  // Leftover tpt fields must not invalidate an exp-repair request.
  const JsonObject obj =
      parse_ok(R"({"repair":"exp","tpt_alpha":0.5,"tpt_theta":2})");
  ModelSpec spec;
  std::string error;
  EXPECT_TRUE(parse_model(obj, spec, error)) << error;
}

TEST(CanonicalKeyTest, IdenticalSpecsShareAKey) {
  ModelSpec a, b;
  a.repair = b.repair = "tpt";
  a.rho = b.rho = 0.7;
  EXPECT_EQ(canonical_model_key(a), canonical_model_key(b));
}

TEST(CanonicalKeyTest, EveryRelevantFieldChangesTheKey) {
  ModelSpec base;
  base.repair = "tpt";
  const std::string key = canonical_model_key(base);

  ModelSpec m = base;
  m.n_servers = 3;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.nu_p = 2.5;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.delta = 0.3;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.mttf = 80.0;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.mttr = 12.0;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.tpt_alpha = 1.6;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.tpt_theta = 0.4;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.tpt_phases = 12;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.rho = 0.71;
  EXPECT_NE(canonical_model_key(m), key);
  m = base;
  m.repair = "exp";
  EXPECT_NE(canonical_model_key(m), key);
}

TEST(CanonicalKeyTest, IrrelevantShapeFieldsDoNotChangeTheKey) {
  ModelSpec a, b;
  a.repair = b.repair = "exp";
  b.tpt_alpha = 1.9;  // unused by exp repair
  b.tpt_phases = 30;
  b.erlang_k = 7;
  EXPECT_EQ(canonical_model_key(a), canonical_model_key(b));
}

TEST(CanonicalKeyTest, KeyIsBitExactNotDecimal) {
  ModelSpec a, b;
  a.rho = 0.7;
  b.rho = 0.7 + 1e-17;  // same double after rounding
  EXPECT_EQ(canonical_model_key(a), canonical_model_key(b));
  b.rho = std::nextafter(0.7, 1.0);  // adjacent double: different key
  EXPECT_NE(canonical_model_key(a), canonical_model_key(b));
}

}  // namespace
}  // namespace performa::daemon
