// Seeded metamorphic cross-validation drill (src/verify).
//
// Each relation runs over a battery of randomly drawn cluster
// configurations; the battery size and seed base come from the
// environment so CI can scale the drill up and any failure replays
// locally:
//
//   PERFORMA_METAMORPHIC_MODELS=40 PERFORMA_METAMORPHIC_SEED=20260807 \
//     ctest -R Metamorphic
//
// Every failure message carries the seed and full model spec.
#include <gtest/gtest.h>

#include "verify/metamorphic.h"

namespace performa::verify {
namespace {

constexpr unsigned kDefaultModels = 8;
constexpr unsigned kDefaultSeedBase = 20260807;

unsigned Seed(unsigned index) {
  return metamorphic_seed_base(kDefaultSeedBase) + index;
}

class Metamorphic : public ::testing::TestWithParam<unsigned> {};

TEST_P(Metamorphic, RateScalingInvariance) {
  const RelationOutcome out = check_rate_scaling(draw_model(Seed(GetParam())));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST_P(Metamorphic, ServerPermutationInvariance) {
  const RelationOutcome out =
      check_server_permutation(draw_model(Seed(GetParam())));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST_P(Metamorphic, LumpedAgreesWithFullKroneckerChain) {
  const RelationOutcome out = check_lumped_vs_full(draw_model(Seed(GetParam())));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST_P(Metamorphic, MeanQueueLengthMonotoneInLambda) {
  const RelationOutcome out =
      check_lambda_monotonicity(draw_model(Seed(GetParam())));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST_P(Metamorphic, BlowupTailExponentMatchesBeta) {
  const RelationOutcome out = check_tail_exponent(draw_model(Seed(GetParam())));
  EXPECT_TRUE(out.pass) << out.detail;
}

TEST_P(Metamorphic, MatrixFreeKroneckerAgreesWithDense) {
  const RelationOutcome out =
      check_kron_matrix_free(draw_model(Seed(GetParam())));
  EXPECT_TRUE(out.pass) << out.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Battery, Metamorphic,
    ::testing::Range(0u, metamorphic_model_count(kDefaultModels)));

TEST(MetamorphicHarness, DrawIsDeterministicAndSeedSensitive) {
  const ModelDraw a = draw_model(42);
  const ModelDraw b = draw_model(42);
  const ModelDraw c = draw_model(43);
  EXPECT_EQ(a.spec(), b.spec());
  EXPECT_NE(a.spec(), c.spec());
}

TEST(MetamorphicHarness, SpecCarriesEveryParameter) {
  const ModelDraw d = draw_model(7);
  const std::string spec = d.spec();
  for (const char* field : {"seed=", "N=", "T=", "nu_p=", "delta=", "mttf=",
                            "mttr=", "alpha=", "theta=", "rho="}) {
    EXPECT_NE(spec.find(field), std::string::npos) << spec;
  }
}

}  // namespace
}  // namespace performa::verify
