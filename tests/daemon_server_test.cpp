// In-process tests of performad's socket server: liveness plane,
// admission control (bounded queue, explicit overload shedding),
// watchdog escalation on a wedged worker, SIGHUP-style config reload,
// and clean drain. Uses the gated debug-sleep op to make timing
// deterministic: a "stuck solve" is a sleep that ignores cancellation.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/server.h"

namespace performa::daemon {
namespace {

class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/performad_server_test_XXXXXX";
    dir_ = ::mkdtemp(pattern);
  }
  ~TempDir() {
    if (!dir_.empty()) {
      std::string cmd = "rm -rf '" + dir_ + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

/// Minimal synchronous NDJSON client.
class TestClient {
 public:
  explicit TestClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    while (true) {
      const std::size_t nl = carry_.find('\n');
      if (nl != std::string::npos) {
        std::string line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return line;
      }
      char buf[8192];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return "";
      carry_.append(buf, static_cast<std::size_t>(n));
    }
  }

  std::string roundtrip(const std::string& line) {
    send_line(line);
    return recv_line();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string carry_;
};

/// Server running on a background thread for one test.
class ServerFixture {
 public:
  explicit ServerFixture(DaemonConfig config)
      : server_(std::move(config)),
        thread_([this] { exit_code_ = server_.run(); }) {
    ready_ = server_.wait_ready(10.0);
  }
  ~ServerFixture() { shutdown(); }

  void shutdown() {
    server_.request_shutdown();
    if (thread_.joinable()) thread_.join();
  }

  bool ready() const { return ready_; }
  int exit_code() const { return exit_code_; }
  Server& server() { return server_; }

 private:
  Server server_;
  int exit_code_ = -1;
  std::thread thread_;
  bool ready_ = false;
};

DaemonConfig base_config(const TempDir& tmp) {
  DaemonConfig config;
  config.socket_path = tmp.path("daemon.sock");
  config.workers = 1;
  config.queue_capacity = 2;
  config.engine.debug_ops = true;
  return config;
}

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(DaemonServerTest, PingHealthReadyAndQueries) {
  TempDir tmp;
  ServerFixture fixture(base_config(tmp));
  ASSERT_TRUE(fixture.ready());

  TestClient client(tmp.path("daemon.sock"));
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(contains(client.roundtrip(R"({"op":"ping"})"), "\"ok\":true"));
  EXPECT_TRUE(
      contains(client.roundtrip(R"({"op":"healthz"})"), "\"ok\":true"));
  EXPECT_TRUE(
      contains(client.roundtrip(R"({"op":"readyz"})"), "\"ok\":true"));

  const std::string mean =
      client.roundtrip(R"({"op":"mean","rho":0.6,"id":"q"})");
  EXPECT_TRUE(contains(mean, "\"ok\":true")) << mean;
  EXPECT_TRUE(contains(mean, "\"id\":\"q\"")) << mean;
  EXPECT_TRUE(contains(mean, "\"cached\":false")) << mean;
  EXPECT_TRUE(contains(client.roundtrip(R"({"op":"mean","rho":0.6})"),
                       "\"cached\":true"));

  // Malformed line: typed parse error, connection stays usable.
  EXPECT_TRUE(contains(client.roundtrip("{oops"), "parse-error"));
  EXPECT_TRUE(contains(client.roundtrip(R"({"op":"ping"})"), "\"ok\":true"));

  fixture.shutdown();
  EXPECT_EQ(fixture.exit_code(), 0);
}

TEST(DaemonServerTest, ShedsExplicitlyPastTheWatermark) {
  TempDir tmp;
  ServerFixture fixture(base_config(tmp));  // 1 worker, queue of 2
  ASSERT_TRUE(fixture.ready());

  TestClient client(tmp.path("daemon.sock"));
  ASSERT_TRUE(client.connected());
  // Pipeline 8 slow requests at once: capacity is 1 in flight + 2
  // queued, so at least 4 must be shed immediately with an explicit
  // overloaded outcome (never buffered, never silently dropped).
  const int total = 8;
  for (int i = 0; i < total; ++i) {
    client.send_line(R"({"op":"debug-sleep","seconds":0.5,"id":"s"})");
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < total; ++i) {
    const std::string response = client.recv_line();
    ASSERT_FALSE(response.empty());
    if (contains(response, "\"outcome\":\"overloaded\"")) {
      ++overloaded;
      EXPECT_TRUE(contains(response, "\"ok\":false")) << response;
      EXPECT_TRUE(contains(response, "retry")) << response;
    } else if (contains(response, "\"ok\":true")) {
      ++ok;
    }
  }
  EXPECT_EQ(ok + overloaded, total);
  EXPECT_GE(overloaded, 4);  // >= 2x capacity load sheds, not queues
  // Admitted = 2 queued plus 0..2 the worker popped between dispatches
  // (timing-dependent under a loaded machine); all of them complete.
  EXPECT_GE(ok, 2);
  EXPECT_LE(ok, 4);
}

TEST(DaemonServerTest, LivenessAnswersWhileWorkersAreWedged) {
  TempDir tmp;
  ServerFixture fixture(base_config(tmp));
  ASSERT_TRUE(fixture.ready());

  TestClient wedger(tmp.path("daemon.sock"));
  ASSERT_TRUE(wedger.connected());
  // Wedge the only worker (ignores cancellation) and fill the queue.
  wedger.send_line(
      R"({"op":"debug-sleep","seconds":1.0,"ignore_cancel":true})");
  wedger.send_line(R"({"op":"debug-sleep","seconds":0.1})");
  wedger.send_line(R"({"op":"debug-sleep","seconds":0.1})");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The liveness plane lives on the IO thread: probes answer now.
  TestClient probe(tmp.path("daemon.sock"));
  ASSERT_TRUE(probe.connected());
  EXPECT_TRUE(
      contains(probe.roundtrip(R"({"op":"healthz"})"), "\"ok\":true"));
  EXPECT_TRUE(
      contains(probe.roundtrip(R"({"op":"readyz"})"), "\"ok\":true"));
}

TEST(DaemonServerTest, WatchdogAbandonsStuckWorkerAndRestoresCapacity) {
  TempDir tmp;
  DaemonConfig config = base_config(tmp);
  config.watchdog_grace_s = 0.1;
  ServerFixture fixture(std::move(config));
  ASSERT_TRUE(fixture.ready());

  TestClient client(tmp.path("daemon.sock"));
  ASSERT_TRUE(client.connected());
  // A request that blows its 100ms deadline and ignores the stage-1
  // cancel: the watchdog must abandon the worker at deadline+2*grace
  // and answer the client with a deadline error -- long before the
  // 2-second sleep finishes.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string response = client.roundtrip(
      R"({"op":"debug-sleep","seconds":2.0,"ignore_cancel":true,)"
      R"("deadline_ms":100})");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(contains(response, "\"outcome\":\"deadline-exceeded\""))
      << response;
  EXPECT_TRUE(contains(response, "watchdog")) << response;
  EXPECT_LT(elapsed, 1.5);  // answered by the watchdog, not the sleep

  // Capacity is restored by the replacement worker while the stuck
  // thread is still sleeping.
  const std::string after =
      client.roundtrip(R"({"op":"debug-sleep","seconds":0.05})");
  EXPECT_TRUE(contains(after, "\"ok\":true")) << after;
}

TEST(DaemonServerTest, CooperativeDeadlineAnsweredByWorkerItself) {
  TempDir tmp;
  ServerFixture fixture(base_config(tmp));
  ASSERT_TRUE(fixture.ready());

  TestClient client(tmp.path("daemon.sock"));
  ASSERT_TRUE(client.connected());
  // This sleep polls the deadline: it must answer quickly WITHOUT the
  // watchdog (outcome carries the op's own cancellation message).
  const std::string response = client.roundtrip(
      R"({"op":"debug-sleep","seconds":5.0,"deadline_ms":100})");
  EXPECT_TRUE(contains(response, "\"outcome\":\"deadline-exceeded\""))
      << response;
  EXPECT_TRUE(contains(response, "cancelled")) << response;
}

TEST(DaemonServerTest, ReloadAppliesCacheBudgetFromConfigFile) {
  TempDir tmp;
  DaemonConfig config = base_config(tmp);
  config.config_path = tmp.path("performad.conf");
  {
    std::ofstream out(config.config_path);
    out << "# budget applied on reload\n"
        << "cache_budget_bytes = 123456\n"
        << "watchdog_grace_s = 0.5\n";
  }
  ServerFixture fixture(std::move(config));
  ASSERT_TRUE(fixture.ready());

  TestClient client(tmp.path("daemon.sock"));
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(
      contains(client.roundtrip(R"({"op":"reload"})"), "\"ok\":true"));
  // The reload is applied by the IO loop; poll the stats op for it.
  bool applied = false;
  for (int i = 0; i < 100 && !applied; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    applied = contains(client.roundtrip(R"({"op":"stats"})"),
                       "\"cache_budget_bytes\":123456");
  }
  EXPECT_TRUE(applied);
}

TEST(DaemonServerTest, RejectsConfigFileWithUnknownKey) {
  TempDir tmp;
  DaemonConfig config;
  std::string error;
  const std::string path = tmp.path("bad.conf");
  {
    std::ofstream out(path);
    out << "cache_budget_bytes = 1\nnot_a_key = 2\n";
  }
  EXPECT_FALSE(parse_config_file(path, config, error));
  EXPECT_TRUE(contains(error, "not_a_key"));
  // The valid line above the typo must not have been half-applied.
  EXPECT_NE(config.engine.cache_budget_bytes, 1u);
}

TEST(DaemonServerTest, DrainAnswersQueuedWorkThenExitsZero) {
  TempDir tmp;
  ServerFixture fixture(base_config(tmp));
  ASSERT_TRUE(fixture.ready());

  TestClient client(tmp.path("daemon.sock"));
  ASSERT_TRUE(client.connected());
  client.send_line(R"({"op":"debug-sleep","seconds":0.3,"id":"inflight"})");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture.server().request_shutdown();

  // The in-flight request is answered during the drain.
  const std::string response = client.recv_line();
  EXPECT_TRUE(contains(response, "\"ok\":true")) << response;
  fixture.shutdown();
  EXPECT_EQ(fixture.exit_code(), 0);
}

}  // namespace
}  // namespace performa::daemon
