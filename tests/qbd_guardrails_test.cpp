// Guardrail behaviour of the QBD solver chain: drift pre-check, tiered
// fallbacks, SolveReport diagnostics, non-finite sentinels, and the
// near-blow-up acceptance scenario from the robustness issue.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "core/blowup.h"
#include "core/cluster_model.h"
#include "linalg/expm.h"
#include "linalg/lu.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;

map::Mmpp PaperClusterMmpp(unsigned t_phases, unsigned n_servers) {
  const map::ServerModel server(exponential_from_mean(90.0),
                                make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, n_servers).mmpp();
}

TEST(DriftPrecheck, UnstableModelRejectedBeforeIterating) {
  const auto mmpp = PaperClusterMmpp(5, 2);
  const double nu_bar = mmpp.mean_rate();
  // lambda > nu_bar: the mean-drift condition fails; the solver must throw
  // the typed error up front instead of burning max_iterations.
  const auto blocks = m_mmpp_1(mmpp, 1.05 * nu_bar);
  try {
    solve_r(blocks);
    FAIL() << "unstable model accepted";
  } catch (const UnstableModel& e) {
    EXPECT_GE(e.utilization(), 1.0);
    EXPECT_NE(std::string(e.what()).find("drift"), std::string::npos);
  }
}

TEST(DriftPrecheck, BoundaryCaseAtExactSaturation) {
  const auto mmpp = PaperClusterMmpp(3, 2);
  const auto blocks = m_mmpp_1(mmpp, mmpp.mean_rate());
  EXPECT_THROW(solve_r(blocks), UnstableModel);
}

TEST(DriftPrecheck, StableModelPassesAndReportsUtilization) {
  const auto mmpp = PaperClusterMmpp(5, 2);
  const auto res = solve_r(m_mmpp_1(mmpp, 0.6 * mmpp.mean_rate()));
  EXPECT_TRUE(res.report.converged);
  testing::ExpectClose(res.report.utilization, 0.6, 1e-6, "rho");
}

TEST(Guardrails, NearBlowupConvergesViaChainWithDiagnostics) {
  // Acceptance scenario: rho within 1e-3 of the first blow-up point
  // rho_1 (TPT repairs). The chain must either converge -- reporting the
  // winning algorithm -- or fail fast with a SolveReport diagnostic.
  core::ClusterParams params;
  params.down = make_tpt(TptSpec{10, 1.4, 0.2, 10.0});
  const core::ClusterModel model(params);
  const double rho1 = core::blowup_utilizations(model.blowup_params())[0];
  for (const double rho : {rho1 - 1e-3, rho1, rho1 + 1e-3}) {
    try {
      const auto sol = model.solve(model.lambda_for_rho(rho));
      EXPECT_TRUE(sol.report().converged) << "rho=" << rho;
      EXPECT_LT(sol.report().final_defect, 1e-8) << "rho=" << rho;
      EXPECT_GT(sol.report().spectral_radius, 0.0);
      EXPECT_LT(sol.report().spectral_radius, 1.0);
      EXPECT_GT(sol.mean_queue_length(), 0.0);
    } catch (const SolverFailure& e) {
      // Fail-fast is also acceptable -- but only with the diagnostics.
      EXPECT_FALSE(e.report().attempts.empty()) << "rho=" << rho;
      EXPECT_NE(std::string(e.what()).find("SolveReport"), std::string::npos);
    }
  }
}

TEST(Guardrails, ExhaustedChainThrowsSolverFailureWithAllAttempts) {
  // A hard model (heavy-tail repairs, rho = 0.95 -> sp(R) near 1) under a
  // 2-iteration budget: every tier must fail and be recorded.
  const auto mmpp = PaperClusterMmpp(10, 2);
  SolverOptions opts;
  opts.max_iterations = 2;
  try {
    solve_r(m_mmpp_1(mmpp, 0.95 * mmpp.mean_rate()), opts);
    FAIL() << "2 iterations cannot solve this model";
  } catch (const SolverFailure& e) {
    const SolveReport& report = e.report();
    EXPECT_FALSE(report.converged);
    EXPECT_EQ(report.attempts.size(), 3u);  // preferred + two fallbacks
    for (const SolveAttempt& a : report.attempts) {
      EXPECT_FALSE(a.converged) << to_string(a.algorithm);
    }
    // The message must be self-contained for log files.
    const std::string what = e.what();
    EXPECT_NE(what.find("SolveReport"), std::string::npos);
    EXPECT_NE(what.find("logarithmic-reduction"), std::string::npos);
  }
}

TEST(Guardrails, FallbacksCanBeDisabled) {
  const auto mmpp = PaperClusterMmpp(10, 2);
  SolverOptions opts;
  opts.max_iterations = 2;
  opts.enable_fallbacks = false;
  try {
    solve_r(m_mmpp_1(mmpp, 0.95 * mmpp.mean_rate()), opts);
    FAIL() << "expected SolverFailure";
  } catch (const SolverFailure& e) {
    EXPECT_EQ(e.report().attempts.size(), 1u);
  }
}

TEST(Guardrails, NewtonShiftedSolvesAndMatchesLogred) {
  const auto blocks = m_mmpp_1(PaperClusterMmpp(5, 2), 2.0);
  SolverOptions newton;
  newton.algorithm = RAlgorithm::kNewtonShifted;
  const auto a = solve_r(blocks, newton);
  const auto b = solve_r(blocks);
  EXPECT_EQ(a.report.winner, SolveAlgorithm::kNewtonShifted);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.r.data().size(); ++i) {
    diff = std::max(diff, std::abs(a.r.data()[i] - b.r.data()[i]));
  }
  EXPECT_LT(diff, 1e-9);
}

TEST(Guardrails, ReportDescribesWinningAttempt) {
  const auto mmpp = PaperClusterMmpp(5, 2);
  const auto res = solve_r(m_mmpp_1(mmpp, 0.7 * mmpp.mean_rate()));
  EXPECT_TRUE(res.report.converged);
  EXPECT_EQ(res.report.winner, SolveAlgorithm::kLogarithmicReduction);
  EXPECT_GT(res.report.iterations, 0u);
  EXPECT_GT(res.report.condition, 0.0);
  const std::string text = res.report.to_string();
  EXPECT_NE(text.find("converged"), std::string::npos);
  EXPECT_NE(text.find("logarithmic-reduction"), std::string::npos);
}

TEST(Guardrails, SolutionCarriesReport) {
  const core::ClusterModel model{core::ClusterParams{}};
  const auto sol = model.solve(model.lambda_for_rho(0.5));
  EXPECT_TRUE(sol.report().converged);
  EXPECT_LT(sol.report().final_defect, 1e-8);
}

TEST(Guardrails, SummaryCarriesPerAttemptTimingTrail) {
  // summary() is the one-line form used in sweep logs: it must name the
  // winning tier with its iteration count AND carry each attempt's
  // wall-clock time, so a slow fallback chain is visible without the
  // multi-line report.
  const core::ClusterModel model{core::ClusterParams{}};
  const auto sol = model.solve(model.lambda_for_rho(0.5));
  const SolveReport& report = sol.report();
  ASSERT_FALSE(report.attempts.empty());
  for (const SolveAttempt& a : report.attempts) {
    EXPECT_GE(a.seconds, 0.0) << to_string(a.algorithm);
  }

  const std::string s = report.summary();
  EXPECT_EQ(s.find('\n'), std::string::npos) << s;  // stays one line
  // The winning attempt renders as "*<algorithm>:<iterations>it/<t>s".
  char winner[96];
  std::snprintf(winner, sizeof winner, "*%s:%uit/", to_string(report.winner),
                report.iterations);
  EXPECT_NE(s.find(winner), std::string::npos) << s;
  // The trail is bracketed and every element carries a seconds suffix.
  const std::size_t open = s.find('[');
  ASSERT_NE(open, std::string::npos) << s;
  EXPECT_EQ(s.back(), ']') << s;
  std::size_t elements = 0;
  for (std::size_t pos = s.find("s", open); pos != std::string::npos;
       pos = s.find('s', pos + 1)) {
    if (s[pos + 1] == ' ' || s[pos + 1] == ']') ++elements;
  }
  EXPECT_EQ(elements, report.attempts.size()) << s;
}

TEST(Guardrails, SummaryMarksFailedChain) {
  const auto mmpp = PaperClusterMmpp(8, 2);
  SolverOptions opts;
  opts.max_iterations = 2;  // starve every tier
  try {
    solve_r(m_mmpp_1(mmpp, 0.95 * mmpp.mean_rate()), opts);
    FAIL() << "2 iterations cannot solve this model";
  } catch (const SolverFailure& e) {
    const std::string s = e.report().summary();
    EXPECT_NE(s.find("solver failed"), std::string::npos) << s;
    // No winner: the trail has no '*' marker.
    EXPECT_EQ(s.find('*'), std::string::npos) << s;
    EXPECT_NE(s.find('['), std::string::npos) << s;
  }
}

TEST(Guardrails, GSolveReportsAchievedDefect) {
  const auto blocks = m_mmpp_1(PaperClusterMmpp(5, 2), 2.0);
  SolverOptions opts;
  opts.max_iterations = 1;  // one doubling cannot reach 1e-13
  try {
    solve_g_logred(blocks, opts);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    // The achieved defect must appear in the message (satellite b).
    EXPECT_NE(std::string(e.what()).find("defect"), std::string::npos);
  }
}

TEST(NonFiniteSentinels, PoisonedBlocksRejected) {
  auto blocks = m_mmpp_1(PaperClusterMmpp(2, 2), 1.0);
  blocks.a1(0, 0) = std::nan("");
  EXPECT_THROW(blocks.validate(), NonFiniteError);
}

TEST(NonFiniteSentinels, LuRejectsNonFiniteInput) {
  linalg::Matrix a = testing::RandomDominantMatrix(4, 17);
  a(2, 1) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(linalg::Lu{a}, NonFiniteError);
}

TEST(NonFiniteSentinels, ExpmRejectsNonFiniteInput) {
  linalg::Matrix a = testing::RandomMatrix(3, 5);
  a(0, 0) = std::nan("");
  EXPECT_THROW(linalg::expm(a), NonFiniteError);
}

TEST(ConditionEstimate, SaneOnIdentityAndIllConditioned) {
  const linalg::Matrix eye = linalg::Matrix::identity(4);
  const double k_eye = linalg::Lu(eye).condition_estimate();
  EXPECT_GT(k_eye, 0.5);
  EXPECT_LT(k_eye, 2.0);

  // Nearly singular 2x2: condition must come out large.
  const linalg::Matrix bad{{1.0, 1.0}, {1.0, 1.0 + 1e-10}};
  EXPECT_GT(linalg::Lu(bad).condition_estimate(), 1e6);
}

}  // namespace
}  // namespace performa::qbd
