#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace performa::linalg {
namespace {

using performa::testing::ExpectClose;
using performa::testing::RandomMatrix;

TEST(MatrixBasics, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixBasics, FillConstruction) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 1.5);
}

TEST(MatrixBasics, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(MatrixBasics, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(MatrixBasics, MixedZeroDimensionsThrow) {
  EXPECT_THROW(Matrix(0, 3), InvalidArgument);
  EXPECT_THROW(Matrix(3, 0), InvalidArgument);
}

TEST(MatrixBasics, AtBoundsChecks) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(MatrixBasics, RowColRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.col(2), (Vector{3, 6}));
  m.set_row(0, {7, 8, 9});
  EXPECT_EQ(m.row(0), (Vector{7, 8, 9}));
  m.set_col(0, {0, 1});
  EXPECT_EQ(m.col(0), (Vector{0, 1}));
}

TEST(MatrixBasics, SetRowShapeMismatchThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.set_row(0, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(m.set_col(0, {1.0}), InvalidArgument);
}

TEST(MatrixBasics, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(t(c, r), m(r, c));
}

TEST(MatrixArithmetic, AddSubScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  Matrix s = a + b;
  for (double x : s.data()) EXPECT_EQ(x, 5.0);
  Matrix d = a - a;
  for (double x : d.data()) EXPECT_EQ(x, 0.0);
  Matrix sc = 2.0 * a;
  EXPECT_EQ(sc(1, 1), 8.0);
  sc /= 2.0;
  EXPECT_EQ(sc(1, 1), 4.0);
  EXPECT_THROW(sc /= 0.0, InvalidArgument);
}

TEST(MatrixArithmetic, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(3, 3);
  EXPECT_THROW(a += b, InvalidArgument);
  EXPECT_THROW(a - b, InvalidArgument);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(MatrixArithmetic, ProductAgainstHandComputed) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixArithmetic, IdentityIsNeutral) {
  const Matrix a = RandomMatrix(6, 42);
  const Matrix eye = Matrix::identity(6);
  EXPECT_LT(max_abs_diff(a * eye, a), 1e-15);
  EXPECT_LT(max_abs_diff(eye * a, a), 1e-15);
}

TEST(MatrixArithmetic, MatrixVectorProducts) {
  Matrix a{{1, 2}, {3, 4}};
  Vector x{1, 1};
  EXPECT_EQ(a * x, (Vector{3, 7}));
  EXPECT_EQ(x * a, (Vector{4, 6}));
}

TEST(MatrixArithmetic, AssociativityNumerically) {
  const Matrix a = RandomMatrix(5, 1);
  const Matrix b = RandomMatrix(5, 2);
  const Matrix c = RandomMatrix(5, 3);
  EXPECT_LT(max_abs_diff((a * b) * c, a * (b * c)), 1e-12);
}

TEST(VectorHelpers, DotSumAxpy) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_EQ(dot(a, b), 32.0);
  EXPECT_EQ(sum(a), 6.0);
  axpy(2.0, a, b);
  EXPECT_EQ(b, (Vector{6, 9, 12}));
  EXPECT_THROW(dot(a, Vector{1.0}), InvalidArgument);
}

TEST(VectorHelpers, OnesAndScale) {
  EXPECT_EQ(sum(ones(7)), 7.0);
  Vector v = 3.0 * ones(2);
  EXPECT_EQ(v, (Vector{3, 3}));
}

TEST(Norms, HandComputed) {
  Matrix m{{1, -2}, {-3, 4}};
  EXPECT_EQ(norm_inf(m), 7.0);  // row 1: 3+4
  EXPECT_EQ(norm_1(m), 6.0);    // col 1: 2+4
  ExpectClose(norm_fro(m), std::sqrt(30.0), 1e-15);
  Vector v{-5, 2};
  EXPECT_EQ(norm_inf(v), 5.0);
  EXPECT_EQ(norm_1(v), 7.0);
}

TEST(Norms, DiagFactory) {
  Matrix d = Matrix::diag({1, 2, 3});
  EXPECT_EQ(d(1, 1), 2.0);
  EXPECT_EQ(d(0, 1), 0.0);
  EXPECT_EQ(norm_inf(d), 3.0);
}

TEST(Printing, StreamOutputIsNonEmpty) {
  std::ostringstream os;
  os << Matrix{{1, 2}, {3, 4}};
  EXPECT_NE(os.str().find("1"), std::string::npos);
  EXPECT_NE(os.str().find("4"), std::string::npos);
}

// Property sweep: (A+B)^T = A^T + B^T and (AB)^T = B^T A^T across sizes.
class TransposeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransposeProperty, LinearityAndProductRule) {
  const std::size_t n = GetParam();
  const Matrix a = RandomMatrix(n, static_cast<unsigned>(n));
  const Matrix b = RandomMatrix(n, static_cast<unsigned>(n + 100));
  EXPECT_LT(max_abs_diff((a + b).transposed(),
                         a.transposed() + b.transposed()),
            1e-14);
  EXPECT_LT(max_abs_diff((a * b).transposed(),
                         b.transposed() * a.transposed()),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransposeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace performa::linalg
