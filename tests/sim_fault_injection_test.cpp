// Fault-injection harness: scenario grammar, deterministic injection,
// degenerate samplers, and the watchdog budgets that keep deliberately
// broken runs from hanging.
#include "sim/fault_injection.h"

#include <gtest/gtest.h>

#include "linalg/errors.h"
#include "sim/cluster_sim.h"

namespace performa::sim {
namespace {

ClusterSimConfig SmallConfig() {
  ClusterSimConfig cfg;
  cfg.n_servers = 2;
  cfg.nu_p = 2.0;
  cfg.delta = 0.2;
  cfg.lambda = 1.0;
  cfg.up = exponential_sampler_mean(90.0);
  cfg.down = exponential_sampler_mean(10.0);
  cfg.cycles = 400;
  cfg.warmup_cycles = 40;
  cfg.seed = 7;
  return cfg;
}

TEST(ScenarioParser, ParsesCombinedSpec) {
  const FaultPlan plan = parse_scenario(
      "common-mode-2@100+burst-50@200+refail-0.25+zero-repair+infinite-task");
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.crashes[0].time, 100.0);
  EXPECT_EQ(plan.crashes[0].servers, 2u);
  ASSERT_EQ(plan.bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.bursts[0].time, 200.0);
  EXPECT_EQ(plan.bursts[0].count, 50u);
  EXPECT_DOUBLE_EQ(plan.repair_preemption, 0.25);
  EXPECT_TRUE(plan.zero_length_repairs);
  EXPECT_TRUE(plan.infinite_first_task);
  EXPECT_FALSE(plan.empty());
}

TEST(ScenarioParser, RepeatedClausesAccumulate) {
  const FaultPlan plan = parse_scenario("common-mode-1@5+common-mode-2@10");
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].servers, 1u);
  EXPECT_EQ(plan.crashes[1].servers, 2u);
}

TEST(ScenarioParser, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_scenario(""), InvalidArgument);
  EXPECT_THROW(parse_scenario("frobnicate"), InvalidArgument);
  EXPECT_THROW(parse_scenario("common-mode-2"), InvalidArgument);
  EXPECT_THROW(parse_scenario("common-mode-x@3"), InvalidArgument);
  EXPECT_THROW(parse_scenario("burst-0.5@3"), InvalidArgument);
  EXPECT_THROW(parse_scenario("burst-4@"), InvalidArgument);
  EXPECT_THROW(parse_scenario("refail-1.5"), InvalidArgument);
  EXPECT_THROW(parse_scenario("common-mode-1@-3"), InvalidArgument);
  EXPECT_THROW(parse_scenario("zero-repair+"), InvalidArgument);
}

TEST(FaultInjection, DeterministicPerSeed) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.faults = parse_scenario("common-mode-2@50+burst-20@120+refail-0.3");

  const auto a = simulate_cluster(cfg);
  const auto b = simulate_cluster(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.repair_preemptions, b.repair_preemptions);
  EXPECT_DOUBLE_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_DOUBLE_EQ(a.sim_time, b.sim_time);

  cfg.seed = 8;
  const auto c = simulate_cluster(cfg);
  EXPECT_NE(a.events, c.events);
}

TEST(FaultInjection, FaultFreeStreamUnchangedByPlanStruct) {
  // An empty FaultPlan must leave the RNG stream -- and hence every
  // statistic -- identical to a run that never heard of fault injection.
  ClusterSimConfig cfg = SmallConfig();
  const auto base = simulate_cluster(cfg);
  cfg.faults = FaultPlan{};
  const auto with_empty_plan = simulate_cluster(cfg);
  EXPECT_DOUBLE_EQ(base.mean_queue_length, with_empty_plan.mean_queue_length);
  EXPECT_EQ(base.events, with_empty_plan.events);
}

TEST(FaultInjection, CommonModeCrashHitsUpServers) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.faults.crashes.push_back({60.0, 2});
  const auto res = simulate_cluster(cfg);
  EXPECT_EQ(res.injected_crashes, 2u);
  EXPECT_FALSE(res.degraded);
}

TEST(FaultInjection, OversizedCrashClampsToUpServers) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.faults.crashes.push_back({60.0, 100});  // only 2 servers exist
  const auto res = simulate_cluster(cfg);
  EXPECT_LE(res.injected_crashes, 2u);
  EXPECT_GE(res.injected_crashes, 1u);
}

TEST(FaultInjection, BurstInjectsExactArrivalCount) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.faults.bursts.push_back({80.0, 500});
  const auto res = simulate_cluster(cfg);
  EXPECT_EQ(res.injected_arrivals, 500u);
  // The burst is absorbed: the run still completes normally.
  EXPECT_FALSE(res.degraded);
  EXPECT_GT(res.completed, 0u);
}

TEST(FaultInjection, RepairPreemptionProlongsRepairs) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.faults.repair_preemption = 0.5;
  const auto res = simulate_cluster(cfg);
  EXPECT_GT(res.repair_preemptions, 0u);
  EXPECT_FALSE(res.degraded);
}

TEST(FaultInjection, ZeroLengthRepairsDoNotHang) {
  // Degenerate sampler: every repair takes exactly zero time. The toggle
  // events collapse to the same instant; the run must still terminate
  // with the full cycle count and no queueing artefacts.
  ClusterSimConfig cfg = SmallConfig();
  cfg.faults.zero_length_repairs = true;
  const auto res = simulate_cluster(cfg);
  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(res.cycles, cfg.cycles);
  EXPECT_GT(res.completed, 0u);
}

TEST(FaultInjection, InfiniteTaskPinsOneServerForever) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.n_servers = 1;
  cfg.lambda = 0.5;
  cfg.cycles = 100;
  cfg.warmup_cycles = 0;
  cfg.faults.infinite_first_task = true;
  const auto res = simulate_cluster(cfg);
  // The pinned server can never complete anything; the queue only grows.
  EXPECT_EQ(res.completed, 0u);
  EXPECT_GE(res.injected_arrivals, 1u);
  EXPECT_GT(res.mean_queue_length, 1.0);
}

TEST(Watchdog, EventBudgetStopsUnstableRun) {
  // Deliberately unstable: lambda far above capacity, cycle target far
  // beyond the budget. The watchdog must return degraded partials
  // instead of spinning until the cycle count is reached.
  ClusterSimConfig cfg = SmallConfig();
  cfg.lambda = 100.0;  // capacity is ~4
  cfg.cycles = 100000000;
  cfg.warmup_cycles = 0;
  cfg.budget.max_events = 20000;
  const auto res = simulate_cluster(cfg);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.degraded_reason, "event budget exhausted");
  EXPECT_EQ(res.events, 20000u);
  // Partial statistics survive the early exit.
  EXPECT_GT(res.mean_queue_length, 0.0);
  EXPECT_GT(res.arrivals, 0u);
}

TEST(Watchdog, SimTimeBudgetStopsRun) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.cycles = 100000000;
  cfg.budget.max_sim_time = 500.0;
  const auto res = simulate_cluster(cfg);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.degraded_reason, "simulated-time budget exhausted");
}

TEST(Watchdog, WallClockBudgetStopsRun) {
  ClusterSimConfig cfg = SmallConfig();
  cfg.lambda = 100.0;
  cfg.cycles = 100000000;
  cfg.warmup_cycles = 0;
  cfg.budget.max_wall_seconds = 0.05;
  const auto res = simulate_cluster(cfg);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.degraded_reason, "wall-clock budget exhausted");
}

TEST(Watchdog, UnlimitedByDefault) {
  EXPECT_TRUE(SimBudget{}.unlimited());
  EXPECT_TRUE(FaultPlan{}.empty());
  const auto res = simulate_cluster(SmallConfig());
  EXPECT_FALSE(res.degraded);
  EXPECT_TRUE(res.degraded_reason.empty());
}

TEST(FaultPlanValidate, RejectsBadFields) {
  FaultPlan plan;
  plan.crashes.push_back({-1.0, 2});
  EXPECT_THROW(plan.validate(), InvalidArgument);

  plan = FaultPlan{};
  plan.bursts.push_back({10.0, 0});
  EXPECT_THROW(plan.validate(), InvalidArgument);

  plan = FaultPlan{};
  plan.repair_preemption = 1.5;
  EXPECT_THROW(plan.validate(), InvalidArgument);
}

}  // namespace
}  // namespace performa::sim
