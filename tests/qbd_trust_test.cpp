// A posteriori trust verdicts: grading mechanics, the scaled residual,
// certification of healthy solves, detection of injected 1-ulp corruption
// and its recovery by refinement, the self-healing escalation ladder, and
// the TrustRejected terminal path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster_model.h"
#include "medist/tpt.h"
#include "qbd/qbd.h"
#include "qbd/solution.h"
#include "qbd/trust.h"

namespace performa::qbd {
namespace {

using core::ClusterModel;
using core::ClusterParams;

// The paper's 2-node TPT-repair cluster at rho = 0.9: heavy-tailed enough
// that the trust checks exercise a genuinely ill-conditioned regime while
// the solve stays fast (phase dim 66).
ClusterParams LoadedTptCluster() {
  ClusterParams p;
  p.down = medist::make_tpt(medist::TptSpec{10, 1.4, 0.5, 10.0});
  return p;
}

// A deeper TPT truncation with a heavier tail: E[Q] ~ 4300 at rho = 0.9,
// so the (I-R)^{-1} amplification makes per-ulp rot of R visible in the
// mass check (defect ~ eps * E[Q] ~ 5e-13, an order of magnitude above
// the certified threshold) while sp(R) stays safely below 1 after the
// corruption.
ClusterParams SaturatedTptCluster() {
  ClusterParams p;
  p.down = medist::make_tpt(medist::TptSpec{20, 1.2, 0.5, 10.0});
  return p;
}

TEST(TrustCheckTest, GradesAgainstBothThresholds) {
  TrustCheck c{"x", 1e-12, 1e-9, 1e-4, ""};
  EXPECT_EQ(c.verdict(), TrustVerdict::kCertified);
  c.measured = 1e-6;
  EXPECT_EQ(c.verdict(), TrustVerdict::kSuspect);
  c.measured = 1e-3;
  EXPECT_EQ(c.verdict(), TrustVerdict::kRejected);
  c.measured = std::nan("");
  EXPECT_EQ(c.verdict(), TrustVerdict::kRejected);
}

TEST(TrustReportTest, VerdictIsWorstCheck) {
  TrustReport r;
  r.checks.push_back({"a", 1e-12, 1e-9, 1e-4, ""});
  r.checks.push_back({"b", 1e-6, 1e-9, 1e-4, ""});
  r.grade();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.verdict, TrustVerdict::kSuspect);
  ASSERT_NE(r.worst(), nullptr);
  EXPECT_EQ(r.worst()->name, "b");
  EXPECT_GT(r.severity(), 1.0);
}

TEST(TrustSolveTest, HealthySolveIsCertifiedWithFullEvidence) {
  const ClusterModel model(LoadedTptCluster());
  const auto sol = model.solve(model.lambda_for_rho(0.9));
  const TrustReport& trust = sol.trust();
  ASSERT_TRUE(trust.verified);
  EXPECT_EQ(trust.verdict, TrustVerdict::kCertified);
  // All six independent checks must have run on the solving path.
  EXPECT_EQ(trust.checks.size(), 6u);
  for (const TrustCheck& c : trust.checks) {
    EXPECT_EQ(c.verdict(), TrustVerdict::kCertified) << c.name;
  }
  EXPECT_NE(trust.summary().find("certified"), std::string::npos);
}

TEST(TrustSolveTest, ResidualIsScaledAndRawIsPreserved) {
  const ClusterModel model(LoadedTptCluster());
  const double lambda = model.lambda_for_rho(0.9);
  const auto blocks = m_mmpp_1(model.aggregate().mmpp(), lambda);
  const auto sol = model.solve(lambda);

  const double scale = residual_scale(blocks);
  EXPECT_GT(scale, 1.0);  // block norms of this model are far above 1
  EXPECT_NEAR(sol.report().final_defect_raw,
              sol.report().final_defect * scale,
              1e-12 * sol.report().final_defect_raw + 1e-300);
  // The independently recomputed scaled residual agrees with the
  // solver-reported one.
  EXPECT_NEAR(r_residual_norm(blocks, sol.r()), sol.r_residual(),
              1e-2 * sol.r_residual() + 1e-18);
}

TEST(TrustSolveTest, UlpCorruptionDetectedAsSuspectAndHealedByRefinement) {
  const ClusterModel model(SaturatedTptCluster());
  const double lambda = model.lambda_for_rho(0.9);
  const auto blocks = m_mmpp_1(model.aggregate().mmpp(), lambda);

  SolverOptions opts;
  opts.trust.enabled = false;  // take the raw answer, corrupt it ourselves
  auto sol = model.solve(lambda, opts);

  // Rot every entry of R by one ulp upward -- the smallest representable
  // corruption a bad journal or bit flip could inject.
  linalg::Matrix r = sol.r();
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t j = 0; j < r.cols(); ++j) {
      r(i, j) = std::nextafter(r(i, j), 2.0);
    }
  }
  QbdSolution corrupted(std::move(r), sol.pi0(), sol.pi1(), sol.report());

  // The reduced rehydration checks alone must already flag it...
  EXPECT_EQ(corrupted.trust().verdict, TrustVerdict::kSuspect)
      << corrupted.trust().to_string();

  // ...and the full a posteriori verification pins it on the mass check.
  const TrustReport& before = corrupted.verify(blocks);
  EXPECT_EQ(before.verdict, TrustVerdict::kSuspect) << before.to_string();
  ASSERT_NE(before.worst(), nullptr);
  EXPECT_EQ(before.worst()->name, "mass-conservation");

  // One refinement pass recovers a certified answer.
  corrupted.refine(blocks);
  const TrustReport& after = corrupted.verify(blocks);
  EXPECT_EQ(after.verdict, TrustVerdict::kCertified) << after.to_string();
  EXPECT_NEAR(corrupted.mean_queue_length(), sol.mean_queue_length(),
              1e-6 * sol.mean_queue_length());
}

TEST(TrustSolveTest, EscalationLadderRunsAndReleasesBestSuspect) {
  // Impossible certified thresholds (below any double-precision floor)
  // with unreachable rejection thresholds: every rung runs, nothing can
  // certify, and the best state is released as suspect with the healing
  // trail attached.
  const ClusterModel model(LoadedTptCluster());
  SolverOptions opts;
  opts.trust.r_residual_certified = 1e-30;
  const auto sol = model.solve(model.lambda_for_rho(0.9), opts);
  const TrustReport& trust = sol.trust();
  EXPECT_EQ(trust.verdict, TrustVerdict::kSuspect);
  EXPECT_GE(trust.refinements + trust.resolves, 2u) << trust.to_string();
  EXPECT_NE(trust.healing.find("refine"), std::string::npos) << trust.healing;
  EXPECT_NE(trust.healing.find("suspect"), std::string::npos) << trust.healing;
}

TEST(TrustSolveTest, NoEscalationWhenDisabled) {
  const ClusterModel model(LoadedTptCluster());
  SolverOptions opts;
  opts.trust.r_residual_certified = 1e-30;
  opts.trust.escalate = false;
  const auto sol = model.solve(model.lambda_for_rho(0.9), opts);
  EXPECT_EQ(sol.trust().verdict, TrustVerdict::kSuspect);
  EXPECT_EQ(sol.trust().refinements, 0u);
  EXPECT_EQ(sol.trust().resolves, 0u);
}

TEST(TrustSolveTest, DraconianPolicyThrowsTrustRejectedWithEvidence) {
  const ClusterModel model(LoadedTptCluster());
  SolverOptions opts;
  opts.trust.r_residual_certified = 1e-32;
  opts.trust.r_residual_rejected = 1e-30;  // below any achievable residual
  try {
    model.solve(model.lambda_for_rho(0.9), opts);
    FAIL() << "rejected answer was released";
  } catch (const TrustRejected& e) {
    EXPECT_EQ(e.trust().verdict, TrustVerdict::kRejected);
    EXPECT_FALSE(e.trust().checks.empty());
    // The ladder must have tried to heal before giving up.
    EXPECT_GE(e.trust().refinements + e.trust().resolves, 1u);
    EXPECT_NE(std::string(e.what()).find("r-residual"), std::string::npos);
  }
}

TEST(TrustSolveTest, VerificationCanBeDisabledEntirely) {
  const ClusterModel model(LoadedTptCluster());
  SolverOptions opts;
  opts.trust.enabled = false;
  const auto sol = model.solve(model.lambda_for_rho(0.9), opts);
  EXPECT_FALSE(sol.trust().verified);
  EXPECT_TRUE(sol.trust().checks.empty());
}

TEST(TrustSolveTest, RehydratedSolutionCarriesReducedReport) {
  const ClusterModel model(LoadedTptCluster());
  const auto sol = model.solve(model.lambda_for_rho(0.7));
  const QbdSolution back(sol.r(), sol.pi0(), sol.pi1(), sol.report());
  const TrustReport& trust = back.trust();
  ASSERT_TRUE(trust.verified);
  EXPECT_EQ(trust.verdict, TrustVerdict::kCertified);
  // Reduced check set: the generator blocks are unavailable, so only the
  // blocks-free checks can run.
  EXPECT_LT(trust.checks.size(), 6u);
  EXPECT_FALSE(trust.checks.empty());
  EXPECT_NE(trust.healing.find("rehydrated"), std::string::npos);
}

}  // namespace
}  // namespace performa::qbd
