// Tests for the supervised sweep runner: outcome taxonomy, checksummed
// checkpoints, worker isolation/classification, retry backoff, golden
// comparison, and the headline acceptance drill -- a sweep SIGKILLed
// mid-run resumes bit-exactly from its checkpoint.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "linalg/errors.h"
#include "qbd/solve_report.h"
#include "runner/checkpoint.h"
#include "runner/golden.h"
#include "runner/outcome.h"
#include "runner/retry.h"
#include "runner/sweep.h"
#include "runner/worker.h"
#include "sim/random.h"

namespace performa::runner {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "performa_runner_" +
         std::to_string(::getpid()) + "_" + name;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// PointId(i) spelled without operator+(const char*, string&&),
// which trips GCC 12's -Wrestrict false positive under -O2 -Werror.
std::string PointId(int i) {
  std::string id = "p";
  id += std::to_string(i);
  return id;
}

std::size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::size_t>(in.tellg()) : 0;
}

void AppendByte(const std::string& path) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  out.put('x');
}

// --- outcome taxonomy ------------------------------------------------

TEST(Outcome, StringsRoundTrip) {
  for (Outcome o : {Outcome::kOk, Outcome::kTimeout, Outcome::kCrash,
                    Outcome::kSolverFailure, Outcome::kUnstableModel}) {
    Outcome back = Outcome::kCrash;
    ASSERT_TRUE(outcome_from_string(to_string(o), back)) << to_string(o);
    EXPECT_EQ(back, o);
  }
  Outcome back = Outcome::kOk;
  EXPECT_FALSE(outcome_from_string("partially-ok", back));
}

TEST(Outcome, TransientVsDeterministic) {
  EXPECT_TRUE(is_transient(Outcome::kTimeout));
  EXPECT_TRUE(is_transient(Outcome::kCrash));
  EXPECT_FALSE(is_transient(Outcome::kOk));
  EXPECT_FALSE(is_transient(Outcome::kSolverFailure));
  EXPECT_FALSE(is_transient(Outcome::kUnstableModel));
}

TEST(Outcome, ExitCodeMapping) {
  EXPECT_EQ(outcome_from_exit_code(kExitOk), Outcome::kOk);
  EXPECT_EQ(outcome_from_exit_code(kExitSolverFailure),
            Outcome::kSolverFailure);
  EXPECT_EQ(outcome_from_exit_code(kExitUnstableModel),
            Outcome::kUnstableModel);
  EXPECT_EQ(outcome_from_exit_code(kExitError), Outcome::kCrash);
  EXPECT_EQ(outcome_from_exit_code(7), Outcome::kCrash);  // unknown code
}

// --- checkpoint codec and file I/O -----------------------------------

TEST(Checkpoint, Crc32KnownVectors) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);  // IEEE 802.3 check value
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Checkpoint, PointCodecRoundTripsBitExactly) {
  CheckpointPoint p;
  p.index = 12;
  p.id = "rho=0.65";
  p.outcome = Outcome::kOk;
  p.attempts = 2;
  p.message = "second attempt won";
  p.rng_state = "12345 67890 42";
  p.metrics = {{"mean_ql", 62.0817234567891},
               {"tiny", 4.9406564584124654e-324},  // denormal min
               {"inf", std::numeric_limits<double>::infinity()},
               {"neg", -0.0}};
  CheckpointPoint q;
  ASSERT_TRUE(decode_point(encode_point(p), q));
  EXPECT_EQ(q.index, p.index);
  EXPECT_EQ(q.id, p.id);
  EXPECT_EQ(q.outcome, p.outcome);
  EXPECT_EQ(q.attempts, p.attempts);
  EXPECT_EQ(q.message, p.message);
  EXPECT_EQ(q.rng_state, p.rng_state);
  ASSERT_EQ(q.metrics.size(), p.metrics.size());
  for (std::size_t i = 0; i < p.metrics.size(); ++i) {
    EXPECT_EQ(q.metrics[i].first, p.metrics[i].first);
    EXPECT_TRUE(BitEqual(q.metrics[i].second, p.metrics[i].second))
        << p.metrics[i].first;
  }
}

TEST(Checkpoint, CodecRejectsCorruption) {
  CheckpointPoint p;
  p.id = "x";
  p.metrics = {{"a", 1.0}};
  std::string line = encode_point(p);
  CheckpointPoint out;
  ASSERT_TRUE(decode_point(line, out));
  std::string flipped = line;
  flipped[flipped.size() / 2] ^= 0x20;  // flip one payload character
  EXPECT_FALSE(decode_point(flipped, out));
  EXPECT_FALSE(decode_point(line.substr(0, line.size() - 3), out));
  EXPECT_FALSE(decode_point("not a record", out));
}

TEST(Checkpoint, AppendLoadRoundTripAndAppendsWin) {
  const std::string path = TempPath("roundtrip.ck");
  std::remove(path.c_str());
  open_checkpoint(path, "unit-sweep");

  CheckpointPoint ok;
  ok.index = 0;
  ok.id = "p0";
  ok.metrics = {{"v", 0.1234567890123456789}};
  ok.rng_state = "999 888";
  append_point(path, ok);

  CheckpointPoint bad;
  bad.index = 1;
  bad.id = "p1";
  bad.outcome = Outcome::kSolverFailure;
  bad.attempts = 1;
  bad.message = "fallback chain exhausted";
  append_point(path, bad);

  // A later record for p1 supersedes the degraded one.
  CheckpointPoint redo = bad;
  redo.outcome = Outcome::kOk;
  redo.attempts = 1;
  redo.message.clear();
  redo.metrics = {{"v", 2.5}};
  append_point(path, redo);

  const auto ck = load_checkpoint(path);
  EXPECT_EQ(ck.sweep_name, "unit-sweep");
  EXPECT_EQ(ck.dropped_records, 0u);
  ASSERT_EQ(ck.points.size(), 3u);
  EXPECT_TRUE(BitEqual(ck.points[0].metric("v"), ok.metrics[0].second));
  EXPECT_EQ(ck.points[0].rng_state, "999 888");
  EXPECT_EQ(ck.points[1].outcome, Outcome::kSolverFailure);
  EXPECT_TRUE(std::isnan(ck.points[1].metric("v")));

  const CheckpointPoint* latest = ck.find("p1");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->outcome, Outcome::kOk);
  EXPECT_TRUE(BitEqual(latest->metric("v"), 2.5));
  EXPECT_EQ(ck.find("nope"), nullptr);
  std::remove(path.c_str());
}

TEST(Checkpoint, SyncedAppendIsDurableAndLoadsBack) {
  // The sync flag fsyncs each record before append_point returns. The
  // data path is identical to the async flavor, so this asserts the
  // synced record loads back bit-exactly and the flag composes with
  // later async appends in the same file.
  const std::string path = TempPath("synced.ck");
  std::remove(path.c_str());
  open_checkpoint(path, "sync-sweep");

  CheckpointPoint p;
  p.index = 0;
  p.id = "durable";
  p.metrics = {{"v", 0.3333333333333333}};
  append_point(path, p, /*sync=*/true);

  CheckpointPoint q;
  q.index = 1;
  q.id = "buffered";
  q.metrics = {{"v", 1.5}};
  append_point(path, q, /*sync=*/false);

  const auto ck = load_checkpoint(path);
  EXPECT_EQ(ck.dropped_records, 0u);
  ASSERT_EQ(ck.points.size(), 2u);
  EXPECT_TRUE(BitEqual(ck.points[0].metric("v"), 0.3333333333333333));
  EXPECT_TRUE(BitEqual(ck.points[1].metric("v"), 1.5));
  std::remove(path.c_str());
}

TEST(Checkpoint, LoaderDropsTornAndCorruptTail) {
  const std::string path = TempPath("torn.ck");
  std::remove(path.c_str());
  open_checkpoint(path, "torn-sweep");
  CheckpointPoint p;
  p.id = "good";
  p.metrics = {{"v", 1.0}};
  append_point(path, p);
  {
    // Simulate a SIGKILL mid-append: a record missing its tail, then a
    // line of garbage.
    std::ofstream out(path, std::ios::app);
    out << "P deadbeef 1|torn|ok|1|||v=0x1.8p+";  // truncated, no newline
  }
  const auto ck = load_checkpoint(path);
  ASSERT_EQ(ck.points.size(), 1u);
  EXPECT_EQ(ck.points[0].id, "good");
  EXPECT_EQ(ck.dropped_records, 1u);
  std::remove(path.c_str());
}

TEST(Checkpoint, HeaderGuardsSweepIdentity) {
  const std::string path = TempPath("header.ck");
  std::remove(path.c_str());
  open_checkpoint(path, "sweep-a");
  open_checkpoint(path, "sweep-a");  // idempotent reopen is fine
  EXPECT_THROW(open_checkpoint(path, "sweep-b"), InvalidArgument);

  const std::string junk = TempPath("junk.ck");
  {
    std::ofstream out(junk);
    out << "this is not a checkpoint\n";
  }
  EXPECT_THROW(load_checkpoint(junk), InvalidArgument);
  std::remove(path.c_str());
  std::remove(junk.c_str());
}

// --- retry policy -----------------------------------------------------

TEST(Retry, BackoffIsDeterministicCappedAndJittered) {
  RetryPolicy plain;
  plain.initial_backoff_seconds = 0.5;
  plain.multiplier = 2.0;
  plain.max_backoff_seconds = 3.0;
  plain.jitter = 0.0;
  EXPECT_DOUBLE_EQ(plain.backoff_seconds(1, 9), 0.5);
  EXPECT_DOUBLE_EQ(plain.backoff_seconds(2, 9), 1.0);
  EXPECT_DOUBLE_EQ(plain.backoff_seconds(3, 9), 2.0);
  EXPECT_DOUBLE_EQ(plain.backoff_seconds(4, 9), 3.0);   // capped
  EXPECT_DOUBLE_EQ(plain.backoff_seconds(20, 9), 3.0);  // stays capped

  RetryPolicy jit;
  jit.jitter = 0.25;
  for (unsigned attempt = 1; attempt <= 5; ++attempt) {
    const double base = plain.backoff_seconds(
        attempt, 0);  // jitter-free reference with same schedule
    RetryPolicy ref = jit;
    ref.max_backoff_seconds = plain.max_backoff_seconds;
    const double a = ref.backoff_seconds(attempt, 1234);
    const double b = ref.backoff_seconds(attempt, 1234);
    EXPECT_TRUE(BitEqual(a, b)) << "backoff must be deterministic";
    EXPECT_GE(a, 0.75 * base);
    EXPECT_LE(a, 1.25 * base);
  }
}

TEST(Retry, PolicyValidation) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = RetryPolicy{};
  p.multiplier = 0.5;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = RetryPolicy{};
  p.jitter = 1.5;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = RetryPolicy{};
  p.initial_backoff_seconds = -1.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  RetryPolicy{}.validate();  // defaults are sane
}

// --- worker isolation and classification ------------------------------

TEST(Worker, ResultCodecRoundTrips) {
  PointResult r;
  r.metrics = {{"a", 1.5}, {"b", std::numeric_limits<double>::infinity()}};
  r.rng_state = "state with spaces 17";
  PointResult out;
  ASSERT_TRUE(decode_result(encode_result(r), out));
  ASSERT_EQ(out.metrics.size(), 2u);
  EXPECT_TRUE(BitEqual(out.metrics[0].second, 1.5));
  EXPECT_EQ(out.rng_state, r.rng_state);
  // A torn payload (no ok sentinel) must not decode as truth.
  EXPECT_FALSE(decode_result("metric a 0x1.8p+0\n", out));
}

TEST(Worker, DeliversResultFromSubprocess) {
  const auto report = run_point_isolated(
      []() {
        PointResult r;
        r.metrics = {{"answer", 42.0e-3}};
        r.rng_state = "rng here";
        return r;
      },
      0.0);
  ASSERT_EQ(report.outcome, Outcome::kOk);
  ASSERT_EQ(report.result.metrics.size(), 1u);
  EXPECT_TRUE(BitEqual(report.result.metrics[0].second, 42.0e-3));
  EXPECT_EQ(report.result.rng_state, "rng here");
  EXPECT_GE(report.elapsed_seconds, 0.0);
}

TEST(Worker, SigkillsHungPointAtTimeout) {
  const auto report = run_point_isolated(
      []() {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return PointResult{};
      },
      0.2);
  EXPECT_EQ(report.outcome, Outcome::kTimeout);
  EXPECT_LT(report.elapsed_seconds, 10.0);
}

TEST(Worker, ClassifiesCrash) {
  const auto report = run_point_isolated(
      []() -> PointResult { std::abort(); }, 0.0);
  EXPECT_EQ(report.outcome, Outcome::kCrash);
  EXPECT_FALSE(report.message.empty());
}

TEST(Worker, ClassifiesSolverFailure) {
  const auto report = run_point_isolated(
      []() -> PointResult {
        throw qbd::SolverFailure("no convergence", qbd::SolveReport{});
      },
      0.0);
  EXPECT_EQ(report.outcome, Outcome::kSolverFailure);
  EXPECT_FALSE(report.message.empty());
}

TEST(Worker, ClassifiesUnstableModel) {
  const auto report = run_point_isolated(
      []() -> PointResult { throw qbd::UnstableModel("rho >= 1", 1.07); },
      0.0);
  EXPECT_EQ(report.outcome, Outcome::kUnstableModel);
}

TEST(Worker, InlineExecutionClassifiesLikeSubprocess) {
  auto ok = run_point_inline([]() {
    PointResult r;
    r.metrics = {{"v", 7.0}};
    return r;
  });
  EXPECT_EQ(ok.outcome, Outcome::kOk);
  EXPECT_TRUE(BitEqual(ok.result.metrics.at(0).second, 7.0));

  auto unstable = run_point_inline(
      []() -> PointResult { throw qbd::UnstableModel("rho >= 1", 1.2); });
  EXPECT_EQ(unstable.outcome, Outcome::kUnstableModel);

  auto crash = run_point_inline(
      []() -> PointResult { throw std::runtime_error("boom"); });
  EXPECT_EQ(crash.outcome, Outcome::kCrash);
  EXPECT_EQ(crash.message, "boom");
}

// --- run_sweep supervision --------------------------------------------

RetryPolicy FastRetries(unsigned attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff_seconds = 0.01;
  p.multiplier = 1.0;
  p.jitter = 0.0;
  return p;
}

TEST(SweepRunner, ValidatesOptions) {
  std::vector<SweepPointSpec> pts;
  pts.push_back({"p0", []() { return PointResult{}; }});
  SweepOptions resume_without_path;
  resume_without_path.resume = true;
  EXPECT_THROW(run_sweep("s", pts, resume_without_path), InvalidArgument);

  SweepOptions timeout_inline;
  timeout_inline.isolate = false;
  timeout_inline.timeout_seconds = 1.0;
  EXPECT_THROW(run_sweep("s", pts, timeout_inline), InvalidArgument);

  pts.push_back({"p0", []() { return PointResult{}; }});  // duplicate id
  EXPECT_THROW(run_sweep("s", pts, SweepOptions{}), InvalidArgument);
}

TEST(SweepRunner, RetriesTransientCrashThenSucceeds) {
  const std::string counter = TempPath("crash_counter");
  std::remove(counter.c_str());
  std::vector<SweepPointSpec> pts;
  pts.push_back({"flaky", [counter]() -> PointResult {
    AppendByte(counter);  // executions are counted on disk, across forks
    if (FileSize(counter) < 3) std::abort();
    PointResult r;
    r.metrics = {{"v", 1.0}};
    return r;
  }});
  SweepOptions opts;
  opts.retry = FastRetries(3);
  const auto sweep = run_sweep("flaky-sweep", pts, opts);
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_EQ(sweep.points[0].outcome, Outcome::kOk);
  EXPECT_EQ(sweep.points[0].attempts, 3u);
  EXPECT_EQ(sweep.degraded, 0u);
  EXPECT_EQ(FileSize(counter), 3u);
  std::remove(counter.c_str());
}

TEST(SweepRunner, DeterministicFailureIsNotRetried) {
  const std::string counter = TempPath("unstable_counter");
  std::remove(counter.c_str());
  std::vector<SweepPointSpec> pts;
  pts.push_back({"unstable", [counter]() -> PointResult {
    AppendByte(counter);
    throw qbd::UnstableModel("rho >= 1", 1.3);
  }});
  pts.push_back({"fine", []() {
    PointResult r;
    r.metrics = {{"v", 2.0}};
    return r;
  }});
  SweepOptions opts;
  opts.retry = FastRetries(5);
  const auto sweep = run_sweep("degraded-sweep", pts, opts);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.points[0].outcome, Outcome::kUnstableModel);
  EXPECT_EQ(sweep.points[0].attempts, 1u);  // no retry for deterministic
  EXPECT_EQ(FileSize(counter), 1u);
  EXPECT_EQ(sweep.points[1].outcome, Outcome::kOk);  // sweep continued
  EXPECT_EQ(sweep.degraded, 1u);
  std::remove(counter.c_str());
}

TEST(SweepRunner, TimeoutRetriedWithBackoffThenDegraded) {
  std::vector<SweepPointSpec> pts;
  pts.push_back({"hung", []() {
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return PointResult{};
  }});
  pts.push_back({"after", []() {
    PointResult r;
    r.metrics = {{"v", 3.0}};
    return r;
  }});
  SweepOptions opts;
  opts.timeout_seconds = 0.2;
  opts.retry = FastRetries(2);
  const auto sweep = run_sweep("timeout-sweep", pts, opts);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.points[0].outcome, Outcome::kTimeout);
  EXPECT_EQ(sweep.points[0].attempts, 2u);  // retried once, then degraded
  EXPECT_EQ(sweep.points[1].outcome, Outcome::kOk);
  EXPECT_EQ(sweep.degraded, 1u);
}

// --- the acceptance drill: SIGKILL mid-sweep, resume bit-exactly ------

// Deterministic RNG-backed point: proves resume reproduces stochastic
// results bit-for-bit, not just analytically recomputable ones.
PointResult DeterministicPoint(int i) {
  sim::Rng rng(sim::derive_seed(2024, static_cast<std::uint64_t>(i)));
  auto uniform = [&rng]() {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };
  PointResult out;
  out.metrics.emplace_back("a", uniform());
  out.metrics.emplace_back("b", uniform() * 1.0e6);
  out.metrics.emplace_back("c", uniform() - 0.5);
  out.rng_state = sim::save_rng_state(rng);
  return out;
}

TEST(SweepRunner, SigkillMidSweepResumesBitExact) {
  const std::string ck = TempPath("kill_drill.ck");
  const std::string marker = TempPath("kill_drill.marker");
  std::remove(ck.c_str());
  std::remove(marker.c_str());

  auto make_points = [&marker]() {
    std::vector<SweepPointSpec> pts;
    for (int i = 0; i < 6; ++i) {
      pts.push_back({PointId(i), [i, marker]() -> PointResult {
        if (i == 3 && !FileExists(marker)) {
          // First execution of p3: hard-kill the supervising sweep
          // process (our parent) exactly as a machine crash would, then
          // die without producing a payload.
          AppendByte(marker);
          ::kill(::getppid(), SIGKILL);
          std::this_thread::sleep_for(std::chrono::seconds(5));
          std::_Exit(kExitError);
        }
        return DeterministicPoint(i);
      }});
    }
    return pts;
  };

  // Run the sweep in a child process so the SIGKILL does not take down
  // the test binary.
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    SweepOptions opts;
    opts.checkpoint_path = ck;
    (void)run_sweep("kill-drill", make_points(), opts);
    std::_Exit(7);  // unreachable: p3 kills this process mid-sweep
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "sweep must die from the SIGKILL";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The checkpoint holds exactly the points completed before the kill.
  const auto mid = load_checkpoint(ck);
  ASSERT_EQ(mid.points.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(mid.points[i].id, PointId(i));
    EXPECT_EQ(mid.points[i].outcome, Outcome::kOk);
  }

  // Resume: completed points come back from disk, the rest run fresh.
  clear_interrupt();
  SweepOptions resume_opts;
  resume_opts.checkpoint_path = ck;
  resume_opts.resume = true;
  const auto resumed = run_sweep("kill-drill", make_points(), resume_opts);
  ASSERT_EQ(resumed.points.size(), 6u);
  EXPECT_EQ(resumed.reused, 3u);
  EXPECT_EQ(resumed.degraded, 0u);
  EXPECT_FALSE(resumed.interrupted);

  // Reference: the same sweep, never interrupted (marker exists, so p3
  // computes normally).
  const auto golden = run_sweep("kill-drill-golden", make_points(),
                                SweepOptions{});
  ASSERT_EQ(golden.points.size(), 6u);

  for (std::size_t i = 0; i < 6; ++i) {
    SCOPED_TRACE("point " + golden.points[i].id);
    EXPECT_EQ(resumed.points[i].id, golden.points[i].id);
    EXPECT_EQ(resumed.points[i].rng_state, golden.points[i].rng_state);
    ASSERT_EQ(resumed.points[i].metrics.size(),
              golden.points[i].metrics.size());
    for (std::size_t m = 0; m < golden.points[i].metrics.size(); ++m) {
      EXPECT_EQ(resumed.points[i].metrics[m].first,
                golden.points[i].metrics[m].first);
      EXPECT_TRUE(BitEqual(resumed.points[i].metrics[m].second,
                           golden.points[i].metrics[m].second))
          << golden.points[i].metrics[m].first;
    }
  }

  // The golden comparator agrees at its tightest (bit-exact) setting.
  SweepCheckpoint gold_ck;
  gold_ck.sweep_name = "kill-drill";
  gold_ck.points = golden.points;
  SweepCheckpoint act_ck;
  act_ck.sweep_name = "kill-drill";
  act_ck.points = resumed.points;
  GoldenTolerances exact;
  exact.default_rel_tol = 0.0;
  EXPECT_TRUE(compare_to_golden(gold_ck, act_ck, exact).ok());

  std::remove(ck.c_str());
  std::remove(marker.c_str());
}

// --- golden comparison ------------------------------------------------

SweepCheckpoint MakeGolden() {
  SweepCheckpoint g;
  g.sweep_name = "g";
  CheckpointPoint p0;
  p0.id = "p0";
  p0.metrics = {{"x", 1.0}, {"y", 0.0}};
  CheckpointPoint p1;
  p1.id = "p1";
  p1.outcome = Outcome::kUnstableModel;  // degraded golden point
  g.points = {p0, p1};
  return g;
}

TEST(Golden, IdenticalSweepsAgree) {
  const auto g = MakeGolden();
  const auto report = compare_to_golden(g, g);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.points_compared, 2u);
  EXPECT_EQ(report.metrics_compared, 2u);
}

TEST(Golden, FlagsValueDriftBeyondTolerance) {
  const auto g = MakeGolden();
  auto a = g;
  a.points[0].metrics[0].second = 1.0 + 1e-6;
  const auto report = compare_to_golden(g, a);
  ASSERT_EQ(report.diffs.size(), 1u);
  EXPECT_EQ(report.diffs[0].kind, GoldenDiff::Kind::kValue);
  EXPECT_EQ(report.diffs[0].metric, "x");
  EXPECT_NEAR(report.diffs[0].rel_error, 1e-6, 1e-8);
  EXPECT_FALSE(report.to_string().empty());

  // A per-metric override loosens exactly that metric.
  GoldenTolerances tol;
  tol.per_metric = {{"x", 1e-3}};
  EXPECT_TRUE(compare_to_golden(g, a, tol).ok());
}

TEST(Golden, AbsFloorGuardsZeroValuedMetrics) {
  const auto g = MakeGolden();
  auto a = g;
  a.points[0].metrics[1].second = 1e-15;  // golden y is exactly 0
  EXPECT_FALSE(compare_to_golden(g, a).ok());
  GoldenTolerances tol;
  tol.abs_floor = 1e-12;
  EXPECT_TRUE(compare_to_golden(g, a, tol).ok());
}

TEST(Golden, FlagsMissingPointMetricAndOutcomeChanges) {
  const auto g = MakeGolden();

  SweepCheckpoint missing_point;
  missing_point.sweep_name = "g";
  missing_point.points = {g.points[1]};
  {
    const auto r = compare_to_golden(g, missing_point);
    ASSERT_EQ(r.diffs.size(), 1u);
    EXPECT_EQ(r.diffs[0].kind, GoldenDiff::Kind::kMissingPoint);
    EXPECT_EQ(r.diffs[0].point_id, "p0");
  }

  auto missing_metric = g;
  missing_metric.points[0].metrics.pop_back();
  {
    const auto r = compare_to_golden(g, missing_metric);
    ASSERT_EQ(r.diffs.size(), 1u);
    EXPECT_EQ(r.diffs[0].kind, GoldenDiff::Kind::kMissingMetric);
    EXPECT_EQ(r.diffs[0].metric, "y");
  }

  auto outcome_change = g;
  outcome_change.points[1].outcome = Outcome::kOk;
  {
    const auto r = compare_to_golden(g, outcome_change);
    ASSERT_EQ(r.diffs.size(), 1u);
    EXPECT_EQ(r.diffs[0].kind, GoldenDiff::Kind::kOutcome);
    EXPECT_EQ(r.diffs[0].point_id, "p1");
  }

  // Extra actual points are fine (supersets pass).
  auto superset = g;
  CheckpointPoint extra;
  extra.id = "p2";
  extra.metrics = {{"x", 9.0}};
  superset.points.push_back(extra);
  EXPECT_TRUE(compare_to_golden(g, superset).ok());
}

}  // namespace
}  // namespace performa::runner
