// Shared helpers for the performa test suite.
#pragma once

#include <gtest/gtest.h>

#include <random>

#include "linalg/matrix.h"

namespace performa::testing {

/// EXPECT that |a-b| <= tol * max(1, |a|, |b|): relative with an absolute
/// floor, the right shape for quantities spanning many decades.
inline void ExpectClose(double a, double b, double tol,
                        const char* what = "value") {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  EXPECT_LE(std::abs(a - b), tol * scale)
      << what << ": " << a << " vs " << b;
}

/// Random test matrix with entries uniform in [-1, 1], seeded
/// deterministically per (seed) so failures reproduce.
inline linalg::Matrix RandomMatrix(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  linalg::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = uni(rng);
  return m;
}

/// Diagonally dominant random matrix: guaranteed nonsingular.
inline linalg::Matrix RandomDominantMatrix(std::size_t n, unsigned seed) {
  linalg::Matrix m = RandomMatrix(n, seed);
  for (std::size_t r = 0; r < n; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < n; ++c) row += std::abs(m(r, c));
    m(r, r) += row + 1.0;
  }
  return m;
}

/// Random irreducible CTMC generator (all off-diagonal rates positive).
inline linalg::Matrix RandomGenerator(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.05, 2.0);
  linalg::Matrix q(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      q(r, c) = uni(rng);
      total += q(r, c);
    }
    q(r, r) = -total;
  }
  return q;
}

}  // namespace performa::testing
