// Cross-module integration tests: the analytic model, the load-independent
// simulator and the multiprocessor simulator must tell one consistent
// story (the content of Fig. 7 and the Sec. 4 robustness claims).
#include <gtest/gtest.h>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/moment_fit.h"
#include "sim/cluster_sim.h"
#include "sim/mmpp_queue_sim.h"
#include "test_util.h"

namespace performa {
namespace {

using core::ClusterModel;
using core::ClusterParams;
using medist::exponential_from_mean;
using medist::make_tpt;
using medist::TptSpec;
using performa::testing::ExpectClose;

ClusterParams PaperParams(unsigned t_phases) {
  ClusterParams p;
  p.down = make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0});
  return p;
}

sim::ClusterSimConfig SimFor(const ClusterParams& p, double lambda) {
  sim::ClusterSimConfig cfg;
  cfg.n_servers = p.n_servers;
  cfg.nu_p = p.nu_p;
  cfg.delta = p.delta;
  cfg.lambda = lambda;
  cfg.up = sim::me_sampler(p.up);
  cfg.down = sim::me_sampler(p.down);
  cfg.cycles = 30000;
  cfg.warmup_cycles = 3000;
  cfg.seed = 2024;
  return cfg;
}

TEST(Integration, LoadIndependentSimulationValidatesAnalyticModel) {
  // Fig. 7 crosses: simulating exactly the M/MMPP/1 process reproduces
  // the matrix-geometric numbers.
  const ClusterModel model(PaperParams(2));
  const double lambda = model.lambda_for_rho(0.5);

  sim::MmppQueueSimConfig cfg;
  cfg.lambda = lambda;
  cfg.horizon = 1e6;
  cfg.warmup = 5e4;
  cfg.seed = 5;
  const auto sim_res = sim::simulate_mmpp_queue(model.aggregate().mmpp(), cfg);
  const auto exact = model.solve(lambda);
  ExpectClose(sim_res.mean_queue_length, exact.mean_queue_length(), 0.10,
              "E[Q] load-independent");
}

TEST(Integration, MultiprocessorSimExceedsLoadIndependentModel) {
  // Fig. 7 circles: the real multiprocessor queue is longer than the
  // load-independent approximation (which lets a single task use the
  // whole cluster), and the gap shows at low-to-mid utilization.
  const ClusterParams params = PaperParams(2);
  const ClusterModel model(params);
  for (double rho : {0.3, 0.6}) {
    const double lambda = model.lambda_for_rho(rho);
    const auto sim_summary =
        sim::mean_queue_length_summary(SimFor(params, lambda), 5);
    const double analytic = model.solve(lambda).mean_queue_length();
    EXPECT_GT(sim_summary.mean + sim_summary.ci_halfwidth, analytic)
        << "rho=" << rho;
  }
}

TEST(Integration, MultiprocessorSimMatchesLevelDependentModel) {
  // The level-dependent analytic extension should land close to the
  // multiprocessor simulation (it models exactly the reduced service
  // capacity below N tasks, up to the task-migration idealization).
  const ClusterParams params = PaperParams(1);
  const ClusterModel model(params);
  const double rho = 0.5;
  const double lambda = model.lambda_for_rho(rho);

  const auto sim_summary =
      sim::mean_queue_length_summary(SimFor(params, lambda), 5);
  const double ld = model.solve_load_dependent(lambda).mean_queue_length();
  ExpectClose(sim_summary.mean, ld, 0.10, "E[Q] level-dependent vs sim");
}

TEST(Integration, LoadIndependenceGapVanishesAtHighLoad) {
  // Fig. 7: at high rho the load-independence approximation is excellent.
  const ClusterParams params = PaperParams(1);
  const ClusterModel model(params);
  const double lambda = model.lambda_for_rho(0.85);
  auto cfg = SimFor(params, lambda);
  cfg.cycles = 60000;
  cfg.warmup_cycles = 6000;
  const auto sim_summary = sim::mean_queue_length_summary(cfg, 5);
  const double analytic = model.solve(lambda).mean_queue_length();
  // Within 15% (pure sampling noise dominates at this load).
  ExpectClose(sim_summary.mean, analytic, 0.15, "E[Q] at rho=0.85");
}

TEST(Integration, BlowupSurvivesLoadDependence) {
  // The paper's core robustness claim: the blow-up is not an artifact of
  // the load-independence assumption. Compare the multiprocessor
  // simulation at rho = 0.10 vs 0.70 normalized by M/M/1.
  const ClusterParams params = PaperParams(5);
  const ClusterModel model(params);

  auto normalized = [&](double rho) {
    const double lambda = model.lambda_for_rho(rho);
    auto cfg = SimFor(params, lambda);
    cfg.cycles = 40000;
    cfg.warmup_cycles = 4000;
    const auto s = sim::mean_queue_length_summary(cfg, 5);
    return s.mean / core::mm1::mean_queue_length(rho);
  };

  const double low = normalized(0.10);
  const double high = normalized(0.70);
  // T=5 gives a moderate blow-up (analytic normalized E[Q] ~ 3.8 at
  // rho=0.7 vs ~1.1 at rho=0.1); the multiprocessor simulation must show
  // the same escalation and land near the analytic prediction.
  EXPECT_GT(high, low * 1.7);
  const ClusterModel reference(params);
  const double analytic_high = reference.normalized_mean_queue_length(0.70);
  EXPECT_LT(std::abs(std::log(high / analytic_high)), std::log(1.6));
}

TEST(Integration, Hyp2AndTptSimulationsAgree) {
  // Fig. 4's moment-matching claim carried to the simulator: HYP-2 repair
  // with the TPT's first three moments produces a similar mean queue.
  const ClusterParams tpt_params = PaperParams(5);
  ClusterParams hyp_params = tpt_params;
  hyp_params.down = medist::fit_hyp2(tpt_params.down).to_distribution();

  const ClusterModel model(tpt_params);
  const double lambda = model.lambda_for_rho(0.7);

  auto cfg_tpt = SimFor(tpt_params, lambda);
  auto cfg_hyp = SimFor(hyp_params, lambda);
  cfg_tpt.cycles = cfg_hyp.cycles = 50000;
  cfg_tpt.warmup_cycles = cfg_hyp.warmup_cycles = 5000;

  const auto tpt = sim::mean_queue_length_summary(cfg_tpt, 5);
  const auto hyp = sim::mean_queue_length_summary(cfg_hyp, 5);
  // High-variance estimators: just require the same ballpark (factor 2).
  EXPECT_LT(std::abs(std::log(tpt.mean / hyp.mean)), std::log(2.0));
}

}  // namespace
}  // namespace performa
