// Deterministic tests of cooperative deadline propagation and graceful
// degradation -- the acceptance drill for performad's robustness story:
//
//   1. A solve under an already-expired deadline aborts *cooperatively*
//      (typed DeadlineExceeded carrying a SolveReport with the
//      deadline_exceeded flag, not a timeout or a crash).
//   2. The runner taxonomy classifies it as Outcome::kDeadlineExceeded.
//   3. The engine serves the last known-good cached answer tagged
//      stale:true when a refresh blows its deadline, and a hard error
//      only when the cache has nothing to offer.
//
// Everything here uses zero/negative deadline budgets, so the tests are
// deterministic: no sleeps, no timing races.
#include <gtest/gtest.h>

#include <string>

#include "core/cluster_model.h"
#include "daemon/query.h"
#include "linalg/errors.h"
#include "obs/deadline.h"
#include "qbd/solve_report.h"
#include "runner/outcome.h"

namespace performa {
namespace {

TEST(DeadlineSolveTest, ExpiredDeadlineAbortsCooperativelyWithReport) {
  core::ClusterParams params;
  const core::ClusterModel model(params);
  const double lambda = model.lambda_for_rho(0.7);

  obs::DeadlineScope scope(obs::Deadline::after_seconds(0.0));
  ASSERT_TRUE(obs::deadline_expired());
  try {
    model.solve(lambda);
    FAIL() << "expected qbd::DeadlineExceeded";
  } catch (const qbd::DeadlineExceeded& e) {
    // The exception carries the diagnostics of the aborted solve, with
    // the deadline flag raised, and renders it in summaries.
    EXPECT_TRUE(e.report().deadline_exceeded);
    EXPECT_FALSE(e.report().converged);
    EXPECT_NE(e.report().summary().find("deadline exceeded"),
              std::string::npos);
  }
}

TEST(DeadlineSolveTest, CancellationIsObservedMidSolve) {
  // cancel() (the watchdog's lever) trips the same cooperative path as
  // wall-clock expiry.
  core::ClusterParams params;
  const core::ClusterModel model(params);
  obs::Deadline deadline;  // unlimited, but cancellable
  deadline.cancel();
  obs::DeadlineScope scope(deadline);
  EXPECT_THROW(model.solve(model.lambda_for_rho(0.7)),
               qbd::DeadlineExceeded);
}

TEST(DeadlineSolveTest, RunnerClassifiesDeadlineExceeded) {
  runner::ClassifiedError classified;
  try {
    core::ClusterParams params;
    const core::ClusterModel model(params);
    obs::DeadlineScope scope(obs::Deadline::after_seconds(-1.0));
    model.solve(model.lambda_for_rho(0.7));
  } catch (...) {
    classified = runner::classify_current_exception();
  }
  EXPECT_EQ(classified.outcome, runner::Outcome::kDeadlineExceeded);
  EXPECT_EQ(classified.exit_code, runner::kExitDeadlineExceeded);
  EXPECT_EQ(to_string(classified.outcome), std::string("deadline-exceeded"));
  // Retries get a fresh budget, so the outcome is transient.
  EXPECT_TRUE(runner::is_transient(classified.outcome));
  EXPECT_FALSE(classified.message.empty());
}

TEST(DeadlineSolveTest, NestedScopeCannotExtendTheBudget) {
  obs::DeadlineScope outer(obs::Deadline::after_seconds(0.0));
  obs::DeadlineScope inner(obs::Deadline::after_seconds(3600.0));
  // The inner scope's generous budget must not override the outer
  // expired one.
  EXPECT_TRUE(obs::deadline_expired());
}

class EngineDegradationTest : public ::testing::Test {
 protected:
  EngineDegradationTest() : engine_(daemon::EngineConfig{}) {}

  std::string handle_with_deadline(const std::string& line,
                                   double deadline_s) {
    obs::DeadlineScope scope(obs::Deadline::after_seconds(deadline_s));
    return engine_.handle_line(line);
  }

  daemon::QueryEngine engine_;
};

TEST_F(EngineDegradationTest, ServesStaleCachedAnswerOnBlownDeadline) {
  // Warm the cache with a generous budget.
  const std::string warm =
      handle_with_deadline(R"({"op":"mean","rho":0.7,"id":"warm"})", 60.0);
  ASSERT_NE(warm.find("\"ok\":true"), std::string::npos) << warm;
  ASSERT_NE(warm.find("\"stale\":false"), std::string::npos) << warm;

  // Force a recompute under an already-expired deadline: the solve
  // aborts cooperatively and the engine falls back to the cached
  // solution, tagged stale with the failure's outcome.
  const std::string stale = handle_with_deadline(
      R"({"op":"mean","rho":0.7,"refresh":true,"id":"stale"})", 0.0);
  EXPECT_NE(stale.find("\"ok\":true"), std::string::npos) << stale;
  EXPECT_NE(stale.find("\"stale\":true"), std::string::npos) << stale;
  EXPECT_NE(stale.find("\"outcome\":\"deadline-exceeded\""),
            std::string::npos)
      << stale;
  // Stale or not, the answer is the real cached value.
  EXPECT_NE(stale.find("\"value\":"), std::string::npos) << stale;
  EXPECT_EQ(engine_.stats().deadline_exceeded, 1u);
  EXPECT_EQ(engine_.cache().stats().stale_serves, 1u);
}

TEST_F(EngineDegradationTest, ColdCacheDeadlineIsAnExplicitError) {
  const std::string response = handle_with_deadline(
      R"({"op":"mean","rho":0.8,"id":"cold"})", -1.0);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"outcome\":\"deadline-exceeded\""),
            std::string::npos)
      << response;
  EXPECT_EQ(response.find("\"stale\""), std::string::npos) << response;
}

TEST_F(EngineDegradationTest, SolverFailureAlsoDegradesToStale) {
  // Warm the cache, then ask for a refresh of a spec that now fails:
  // rho extremely close to 1 still solves, so instead drive failure by
  // cancelling -- covered above -- and by an unstable refresh via a
  // *different* key, which must NOT borrow this key's cache entry.
  const std::string warm =
      handle_with_deadline(R"({"op":"mean","rho":0.5})", 60.0);
  ASSERT_NE(warm.find("\"ok\":true"), std::string::npos);
  // A different rho is a different model key: no stale fallback there.
  const std::string other = handle_with_deadline(
      R"({"op":"mean","rho":0.51,"refresh":true})", 0.0);
  EXPECT_NE(other.find("\"ok\":false"), std::string::npos) << other;
}

TEST_F(EngineDegradationTest, ParameterOpsIgnoreTheSolverDeadline) {
  // blowup/availability need no solve; an expired deadline must not
  // block them (they are the queries an operator fires when the system
  // is struggling).
  const std::string response = handle_with_deadline(
      R"({"op":"blowup","repair":"tpt","rho":0.9})", 0.0);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("\"region\":"), std::string::npos) << response;
}

}  // namespace
}  // namespace performa
