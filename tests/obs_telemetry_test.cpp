// Production-telemetry subsystem: histogram overflow accounting,
// Prometheus text exposition (sanitization, labels, kind conflicts,
// cumulative histogram invariants), structured NDJSON logging (shape,
// level gate, per-site rate limiting, fragment merge, query-id scopes)
// and the crash flight recorder (ring parse, fork + fatal-signal
// marker, clean-exit unlink).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace performa::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += '/';
  path += stem;
  path += '.';
  path += std::to_string(::getpid());
  return path;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_metrics_for_test();
    reset_log_for_test();
    disable_flight();
  }
  void TearDown() override {
    reset_metrics_for_test();
    reset_log_for_test();
    disable_flight();
  }
};

// ---------------------------------------------------------------- histogram

TEST_F(TelemetryTest, HistogramOverflowBinTracksSamplesAboveTopBucket) {
  Histogram& h = histogram("tel.h.overflow");
  const double big = std::ldexp(1.0, 40);  // >= 2^32: above every bucket
  h.record(0.5);
  h.record(big);
  h.record(2.0 * big);

  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.overflow_max(), 2.0 * big);
  // The regression this guards: quantiles landing in the overflow bin
  // must report the true maximum, not clamp to the last finite edge.
  EXPECT_EQ(h.quantile(0.99), 2.0 * big);
  EXPECT_LE(h.quantile(0.10), 1.0);  // small sample stays bucketed

  const MetricsSnapshot snap = snapshot_metrics();
  const auto* e = snap.find("tel.h.overflow");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->overflow, 2u);
  EXPECT_EQ(e->overflow_max, 2.0 * big);
  EXPECT_NE(snap.to_json().find("\"overflow\":2"), std::string::npos);

  h.reset();
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.overflow_max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

// --------------------------------------------------------------- prometheus

TEST_F(TelemetryTest, SanitizeMetricAndLabelNames) {
  EXPECT_EQ(sanitize_metric_name("qbd.rsolver.solves"), "qbd_rsolver_solves");
  EXPECT_EQ(sanitize_metric_name("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name(""), "_");
  EXPECT_EQ(sanitize_metric_name("ns:ok_name"), "ns:ok_name");
  EXPECT_EQ(sanitize_label_name("op.kind"), "op_kind");
  EXPECT_EQ(sanitize_label_name("ns:x"), "ns_x");  // ':' invalid in labels
}

TEST_F(TelemetryTest, EscapeLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
}

TEST_F(TelemetryTest, ParseLabelledRegistryNames) {
  const ParsedMetricName p =
      parse_metric_name("daemon.requests{op=\"solve\",tier=\"1\"}");
  EXPECT_EQ(p.base, "daemon.requests");
  ASSERT_EQ(p.labels.size(), 2u);
  EXPECT_EQ(p.labels[0].first, "op");
  EXPECT_EQ(p.labels[0].second, "solve");
  EXPECT_EQ(p.labels[1].first, "tier");
  EXPECT_EQ(p.labels[1].second, "1");
  // Malformed blocks stay part of the base name.
  EXPECT_EQ(parse_metric_name("broken{op=solve}").base, "broken{op=solve}");
}

TEST_F(TelemetryTest, ExpositionRendersCountersGaugesAndLabels) {
  counter("tel.prom.requests{op=\"solve\"}").add(3);
  counter("tel.prom.requests{op=\"tail\"}").add(1);
  gauge("tel.prom.depth").set(2.5);

  const std::string text = to_prometheus(snapshot_metrics());
  EXPECT_NE(text.find("# TYPE tel_prom_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("tel_prom_requests{op=\"solve\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("tel_prom_requests{op=\"tail\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tel_prom_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("tel_prom_depth 2.5"), std::string::npos);
  // One TYPE line per family even with several labelled samples.
  std::size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE tel_prom_requests ", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST_F(TelemetryTest, ExpositionDropsKindConflictsInsteadOfDoubleType) {
  // Same family from two different kinds: the first (name-sorted) entry
  // wins, the conflicting sample is dropped, and exactly one TYPE line
  // is emitted -- a double-TYPE family is a scrape error.
  counter("tel.kind{l=\"a\"}").add(1);
  gauge("tel.kind{l=\"b\"}").set(9.0);
  const std::string text = to_prometheus(snapshot_metrics());
  EXPECT_NE(text.find("tel_kind{l=\"a\"} 1"), std::string::npos);
  EXPECT_EQ(text.find("tel_kind{l=\"b\"}"), std::string::npos);
  std::size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE tel_kind ", pos)) != std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST_F(TelemetryTest, ExpositionHistogramIsCumulativeWithHonestInf) {
  Histogram& h = histogram("tel.prom.lat");
  h.record(0.5);
  h.record(0.6);
  h.record(3.0);
  h.record(std::ldexp(1.0, 40));  // overflow: only +Inf may hold it

  const std::string text = to_prometheus(snapshot_metrics());
  EXPECT_NE(text.find("# TYPE tel_prom_lat histogram\n"), std::string::npos);
  // Cumulative, non-decreasing bucket counts ending at +Inf == count.
  std::uint64_t prev = 0;
  std::uint64_t inf_value = 0;
  bool saw_inf = false;
  for (const std::string& line : split_lines(text)) {
    if (line.rfind("tel_prom_lat_bucket{le=\"", 0) != 0) continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos);
    const std::uint64_t v = std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    EXPECT_GE(v, prev) << line;
    prev = v;
    if (line.find("le=\"+Inf\"") != std::string::npos) {
      saw_inf = true;
      inf_value = v;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_value, 4u);
  EXPECT_NE(text.find("tel_prom_lat_count 4"), std::string::npos);
  EXPECT_NE(text.find("tel_prom_lat_sum "), std::string::npos);
}

// ---------------------------------------------------------------------- log

#if !defined(PERFORMA_OBS_DISABLED)
TEST_F(TelemetryTest, LogLinesAreStructuredNdjson) {
  const std::string path = temp_path("tel_log_shape");
  set_log_file(path);
  PERFORMA_LOG(kInfo, "tel.event")
      .kv("text", "with \"quotes\" and \\slash")
      .kv("ratio", 0.5)
      .kv("n", std::uint64_t{7})
      .kv("flag", true);
  reset_log_for_test();

  const std::string content = read_file(path);
  ::unlink(path.c_str());
  ASSERT_FALSE(content.empty());
  ASSERT_EQ(content.back(), '\n');
  const std::string line = split_lines(content)[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"tel.event\""), std::string::npos);
  EXPECT_NE(line.find("\"ts\":"), std::string::npos);
  EXPECT_NE(line.find("\"pid\":"), std::string::npos);
  EXPECT_NE(line.find("\"text\":\"with \\\"quotes\\\" and \\\\slash\""),
            std::string::npos);
  EXPECT_NE(line.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"n\":7"), std::string::npos);
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos);
}

TEST_F(TelemetryTest, LogLevelGateSuppressesBelowThreshold) {
  const std::string path = temp_path("tel_log_level");
  set_log_file(path);
  set_log_level(LogLevel::kWarn);
  PERFORMA_LOG(kInfo, "tel.dropped").kv("x", 1);
  PERFORMA_LOG(kError, "tel.kept").kv("x", 2);
  reset_log_for_test();

  const std::string content = read_file(path);
  ::unlink(path.c_str());
  EXPECT_EQ(content.find("tel.dropped"), std::string::npos);
  EXPECT_NE(content.find("tel.kept"), std::string::npos);
}

TEST_F(TelemetryTest, LogSiteTokenBucketLimitsAndCountsSuppressed) {
  LogSite site;
  int admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (site.admit()) ++admitted;
  }
  EXPECT_EQ(admitted, static_cast<int>(LogSite::kBurst));
  EXPECT_EQ(site.take_suppressed(), 100u - LogSite::kBurst);
  EXPECT_EQ(site.take_suppressed(), 0u);  // counter resets on read
}

TEST_F(TelemetryTest, HotLogSiteIsRateLimitedThroughTheMacro) {
  const std::string path = temp_path("tel_log_rate");
  set_log_file(path);
  for (int i = 0; i < 200; ++i) {
    PERFORMA_LOG(kWarn, "tel.hot").kv("i", i);
  }
  reset_log_for_test();

  const std::string content = read_file(path);
  ::unlink(path.c_str());
  std::size_t lines = 0, pos = 0;
  while ((pos = content.find("\"event\":\"tel.hot\"", pos)) !=
         std::string::npos) {
    ++lines;
    pos += 1;
  }
  EXPECT_GE(lines, 1u);
  // Burst cap, plus a small allowance for refill while the loop runs.
  EXPECT_LE(lines, static_cast<std::size_t>(LogSite::kBurst) + 2);
}

TEST_F(TelemetryTest, MergeLogFragmentKeepsCompleteLinesDropsTornTail) {
  const std::string sink = temp_path("tel_log_sink");
  const std::string frag = temp_path("tel_log_frag");
  {
    std::ofstream out(frag, std::ios::binary);
    out << "{\"event\":\"a\"}\n{\"event\":\"b\"}\n{\"event\":\"torn";
  }
  set_log_file(sink);
  const std::size_t merged = merge_log_fragment(frag);
  reset_log_for_test();

  EXPECT_EQ(merged, 2u);
  const std::string content = read_file(sink);
  ::unlink(sink.c_str());
  EXPECT_NE(content.find("{\"event\":\"a\"}"), std::string::npos);
  EXPECT_NE(content.find("{\"event\":\"b\"}"), std::string::npos);
  EXPECT_EQ(content.find("torn"), std::string::npos);
  // The fragment is consumed.
  EXPECT_NE(::access(frag.c_str(), F_OK), 0);
  // Merging a nonexistent fragment is a quiet no-op.
  EXPECT_EQ(merge_log_fragment(frag), 0u);
}

TEST_F(TelemetryTest, QueryIdScopesNestAndStampLogLines) {
  EXPECT_TRUE(current_query_id().empty());
  const std::string outer = mint_query_id();
  const std::string inner = mint_query_id();
  EXPECT_NE(outer, inner);
  EXPECT_EQ(outer.rfind("q-", 0), 0u);

  const std::string path = temp_path("tel_log_qid");
  {
    QueryIdScope a(outer);
    EXPECT_EQ(current_query_id(), outer);
    EXPECT_STREQ(current_query_id_cstr(), outer.c_str());
    {
      QueryIdScope b(inner);
      EXPECT_EQ(current_query_id(), inner);
      set_log_file(path);
      PERFORMA_LOG(kInfo, "tel.qid").kv("x", 1);
      reset_log_for_test();
    }
    EXPECT_EQ(current_query_id(), outer);
  }
  EXPECT_TRUE(current_query_id().empty());

  const std::string content = read_file(path);
  ::unlink(path.c_str());
  EXPECT_NE(content.find("\"qid\":\"" + inner + "\""), std::string::npos);
}

// ------------------------------------------------------------------- flight

std::vector<std::string> flight_records(const std::string& path) {
  const std::string raw = read_file(path);
  std::vector<std::string> records;
  std::size_t start = 0;
  while (start < raw.size()) {
    if (raw[start] == '\0') {
      ++start;
      continue;
    }
    std::size_t end = raw.find('\0', start);
    if (end == std::string::npos) end = raw.size();
    const std::string rec = raw.substr(start, end - start);
    // Keep only structurally plausible records (the reader contract:
    // parse-or-skip; torn slots never count).
    if (!rec.empty() && rec.front() == '{' && rec.back() == '}') {
      records.push_back(rec);
    }
    start = end;
  }
  return records;
}

TEST_F(TelemetryTest, FlightRecordsSurviveAndCleanExitUnlinks) {
  const std::string prefix = temp_path("tel_flight");
  ASSERT_TRUE(init_flight(prefix));
  ASSERT_TRUE(flight_enabled());
  const std::string path = flight_path();
  EXPECT_EQ(path, prefix + ".flight." + std::to_string(::getpid()));

  const std::string ev = "{\"event\":\"tel.flight\",\"n\":1}";
  flight_record(ev.data(), ev.size());

  const auto records = flight_records(path);
  ASSERT_GE(records.size(), 2u);  // header + our event
  EXPECT_NE(records[0].find("\"event\":\"flight_header\""),
            std::string::npos);
  bool found = false;
  for (const auto& r : records) found = found || r == ev;
  EXPECT_TRUE(found);

  disable_flight(/*keep_file=*/false);
  EXPECT_FALSE(flight_enabled());
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // clean exit: no evidence
}

TEST_F(TelemetryTest, OversizedFlightRecordIsTruncatedNotCorrupting) {
  const std::string prefix = temp_path("tel_flight_big");
  ASSERT_TRUE(init_flight(prefix));
  const std::string path = flight_path();
  const std::string big(10 * kFlightSlotBytes, 'x');
  flight_record(big.data(), big.size());  // must not scribble past a slot
  const std::string after = "{\"event\":\"after\"}";
  flight_record(after.data(), after.size());
  const auto records = flight_records(path);
  bool found = false;
  for (const auto& r : records) found = found || r == after;
  EXPECT_TRUE(found);
  disable_flight(/*keep_file=*/false);
}

#if !defined(PERFORMA_OBS_DISABLED)
TEST_F(TelemetryTest, OversizedLogLineFallsBackToParseableFlightHeader) {
  const std::string prefix = temp_path("tel_flight_biglog");
  ASSERT_TRUE(init_flight(prefix));
  const std::string path = flight_path();
  set_log_file("/dev/null");

  // A kv payload far past the 256-byte slot: the full line cannot fit,
  // so the flight copy must degrade to the header fields plus a
  // truncation marker -- never a byte-truncated non-JSON prefix.
  QueryIdScope scope("q-biglog-1");
  PERFORMA_LOG(kWarn, "tel.biglog")
      .kv("payload", std::string(4 * kFlightSlotBytes, 'y'));

  bool found = false;
  for (const auto& r : flight_records(path)) {
    if (r.find("\"event\":\"tel.biglog\"") == std::string::npos) continue;
    found = true;
    EXPECT_LT(r.size(), kFlightSlotBytes);
    EXPECT_NE(r.find("\"qid\":\"q-biglog-1\""), std::string::npos) << r;
    EXPECT_NE(r.find("\"trunc\":true"), std::string::npos) << r;
    EXPECT_EQ(r.find("yyyy"), std::string::npos) << r;
  }
  EXPECT_TRUE(found);
  disable_flight(/*keep_file=*/false);
}
#endif  // !PERFORMA_OBS_DISABLED

TEST_F(TelemetryTest, CrashedChildLeavesFlightFileWithMarkerAndQid) {
  const std::string prefix = temp_path("tel_flight_crash");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: its own flight file, one in-flight query, then a fatal
    // signal. The handler stamps the crash marker and re-raises.
    if (!init_flight(prefix)) ::_exit(9);
    QueryIdScope scope("q-crash-77");
    const std::string ev = "{\"event\":\"child.work\"}";
    flight_record(ev.data(), ev.size());
    std::raise(SIGABRT);
    ::_exit(8);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string path =
      prefix + ".flight." + std::to_string(static_cast<long>(pid));
  const auto records = flight_records(path);
  ::unlink(path.c_str());
  ASSERT_GE(records.size(), 3u);  // header, crash marker, event
  bool crash = false, work = false;
  for (const auto& r : records) {
    if (r.find("\"event\":\"crash\"") != std::string::npos) {
      crash = true;
      EXPECT_NE(r.find("\"signal\":6"), std::string::npos) << r;
      // The marker names the in-flight query: a post-mortem can tie
      // the death to the request that caused it.
      EXPECT_NE(r.find("\"qid\":\"q-crash-77\""), std::string::npos) << r;
    }
    if (r.find("\"event\":\"child.work\"") != std::string::npos) work = true;
  }
  EXPECT_TRUE(crash);
  EXPECT_TRUE(work);
}
#endif  // !PERFORMA_OBS_DISABLED

}  // namespace
}  // namespace performa::obs
