// The shared repair facility (c crews, s spares) at the model level:
// state-space bookkeeping, the bit-for-bit delegation to LumpedAggregate
// when the facility never binds, and the qualitative contention ordering
// (fewer crews / fewer spares => lower availability).
#include "map/repair_facility.h"

#include <gtest/gtest.h>

#include "medist/tpt.h"
#include "test_util.h"

namespace performa::map {
namespace {

using medist::exponential_from_mean;
using medist::make_tpt;
using medist::MeDistribution;
using medist::TptSpec;

MeDistribution PaperUp() { return exponential_from_mean(90.0); }

MeDistribution PaperDown(unsigned t_phases) {
  if (t_phases <= 1) return exponential_from_mean(10.0);
  return make_tpt(TptSpec{t_phases, 1.4, 0.2, 10.0});
}

RepairFacility Make(unsigned n, unsigned crews, unsigned spares,
                    unsigned t_phases = 2) {
  return RepairFacility(PaperUp(), PaperDown(t_phases), 2.0, 0.2, n, crews,
                        spares);
}

TEST(RepairFacility, StateCountMatchesFormula) {
  for (unsigned n : {2u, 3u}) {
    for (unsigned c : {1u, 2u, 4u}) {
      for (unsigned s : {0u, 1u, 2u}) {
        const RepairFacility fac = Make(n, c, s);
        EXPECT_EQ(fac.state_count(),
                  repair_facility_state_count(2, 1, n, c, s))
            << "n=" << n << " c=" << c << " s=" << s;
      }
    }
  }
}

TEST(RepairFacility, HomogeneousFlagOnlyWhenFacilityNeverBinds) {
  EXPECT_TRUE(Make(2, 2, 0).homogeneous());
  EXPECT_TRUE(Make(2, 5, 0).homogeneous());
  EXPECT_FALSE(Make(2, 1, 0).homogeneous());
  EXPECT_FALSE(Make(2, 2, 1).homogeneous());  // spares change the process
}

TEST(RepairFacility, HomogeneousDelegatesToLumpedAggregateBitForBit) {
  const MeDistribution up = PaperUp();
  const MeDistribution down = PaperDown(3);
  const RepairFacility fac(up, down, 2.0, 0.2, 2, 2, 0);
  const LumpedAggregate agg(ServerModel(up, down, 2.0, 0.2), 2);

  ASSERT_TRUE(fac.homogeneous());
  ASSERT_EQ(fac.state_count(), agg.state_count());
  const Matrix& qf = fac.mmpp().generator();
  const Matrix& qa = agg.mmpp().generator();
  for (std::size_t i = 0; i < fac.state_count(); ++i) {
    EXPECT_DOUBLE_EQ(fac.mmpp().rates()[i], agg.mmpp().rates()[i]) << i;
    for (std::size_t j = 0; j < fac.state_count(); ++j) {
      EXPECT_DOUBLE_EQ(qf(i, j), qa(i, j)) << i << "," << j;
    }
  }
  // State bookkeeping agrees: failed = DOWN-occupancy sum = N - up_count.
  for (std::size_t i = 0; i < fac.state_count(); ++i) {
    EXPECT_EQ(fac.active_count(i), agg.up_count(i)) << i;
    EXPECT_EQ(fac.state(i).failed, 2u - agg.up_count(i)) << i;
    EXPECT_EQ(fac.waiting_count(i), 0u) << i;
    EXPECT_EQ(fac.spare_count(i), 0u) << i;
  }
}

TEST(RepairFacility, HomogeneousAvailabilityMatchesServerModel) {
  const MeDistribution up = PaperUp();
  const MeDistribution down = PaperDown(3);
  const RepairFacility fac(up, down, 2.0, 0.2, 3, 3, 0);
  const ServerModel server(up, down, 2.0, 0.2);
  // Independent units: E[a]/N equals the per-server availability.
  EXPECT_NEAR(fac.availability(), server.availability(), 1e-9);
}

TEST(RepairFacility, UnitAccountingIdentityHoldsInEveryState) {
  const RepairFacility fac = Make(3, 1, 2, 3);
  for (std::size_t i = 0; i < fac.state_count(); ++i) {
    // Every one of the N + s units is active, an idle spare, in repair,
    // or waiting for a crew.
    EXPECT_EQ(fac.active_count(i) + fac.spare_count(i) +
                  fac.in_repair_count(i) + fac.waiting_count(i),
              3u + 2u)
        << i;
    EXPECT_EQ(fac.in_repair_count(i) + fac.waiting_count(i),
              fac.state(i).failed)
        << i;
  }
}

TEST(RepairFacility, SerialRepairKeepsAtMostOneUnitInRepair) {
  const RepairFacility fac = Make(3, 1, 1, 4);
  for (std::size_t i = 0; i < fac.state_count(); ++i) {
    EXPECT_LE(fac.in_repair_count(i), 1u) << i;
  }
}

TEST(RepairFacility, ActiveCountDistributionNormalized) {
  const RepairFacility fac = Make(3, 1, 1, 3);
  const Vector dist = fac.active_count_distribution();
  ASSERT_EQ(dist.size(), 4u);
  double total = 0.0, mean = 0.0;
  for (std::size_t a = 0; a < dist.size(); ++a) {
    EXPECT_GE(dist[a], 0.0);
    total += dist[a];
    mean += static_cast<double>(a) * dist[a];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(fac.availability(), mean / 3.0, 1e-14);
}

TEST(RepairFacility, ContentionReducesAvailability) {
  // High-variance repairs (TPT, T = 5): a single crew queues recoveries,
  // so availability drops materially below the independent-repair model.
  const RepairFacility serial = Make(3, 1, 0, 5);
  const RepairFacility parallel = Make(3, 3, 0, 5);
  EXPECT_LT(serial.availability(), parallel.availability() - 0.01)
      << "serial=" << serial.availability()
      << " parallel=" << parallel.availability();
  EXPECT_GT(serial.mean_repair_queue(), parallel.mean_repair_queue());
}

TEST(RepairFacility, SparesImproveAvailability) {
  const RepairFacility bare = Make(3, 1, 0, 5);
  const RepairFacility spared = Make(3, 1, 2, 5);
  EXPECT_GT(spared.availability(), bare.availability());
  EXPECT_GT(spared.mean_idle_spares(), 0.0);
  EXPECT_DOUBLE_EQ(bare.mean_idle_spares(), 0.0);
}

TEST(RepairFacility, CrewUtilizationWithinUnitInterval) {
  for (unsigned c : {1u, 2u, 4u}) {
    const RepairFacility fac = Make(2, c, 1, 3);
    EXPECT_GT(fac.crew_utilization(), 0.0) << "c=" << c;
    EXPECT_LT(fac.crew_utilization(), 1.0) << "c=" << c;
  }
}

TEST(RepairFacility, ValidatesInput) {
  EXPECT_THROW(Make(2, 0, 0), InvalidArgument);  // no crews
  EXPECT_THROW(RepairFacility(PaperUp(), PaperDown(2), -1.0, 0.2, 2, 1, 0),
               InvalidArgument);
  EXPECT_THROW(RepairFacility(PaperUp(), PaperDown(2), 2.0, 1.5, 2, 1, 0),
               InvalidArgument);
  EXPECT_THROW(Make(0, 1, 0), InvalidArgument);  // no servers
}

TEST(RepairFacility, StateAccessorRejectsOutOfRange) {
  const RepairFacility fac = Make(2, 1, 0);
  EXPECT_THROW(fac.state(fac.state_count()), InvalidArgument);
}

}  // namespace
}  // namespace performa::map
