// ME/MMPP/1 and GI/M/1: QBDs with MAP arrivals (paper Sec. 2.4 extension).
#include <gtest/gtest.h>

#include <cmath>

#include "core/mm1.h"
#include "map/lumped_aggregate.h"
#include "medist/moment_fit.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "test_util.h"

namespace performa::qbd {
namespace {

using medist::erlang_dist;
using medist::exponential_from_mean;
using medist::hyperexponential_dist;
using performa::testing::ExpectClose;

map::Mmpp PaperClusterMmpp(unsigned t_phases) {
  const map::ServerModel server(exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, 2).mmpp();
}

TEST(MapArrivals, PoissonMapReducesToMMmpp1) {
  const auto mmpp = PaperClusterMmpp(3);
  const double lambda = 0.6 * mmpp.mean_rate();
  const QbdSolution plain(m_mmpp_1(mmpp, lambda));
  const QbdSolution via_map(map_mmpp_1(map::poisson_map(lambda), mmpp));
  ExpectClose(via_map.mean_queue_length(), plain.mean_queue_length(), 1e-8,
              "E[Q]");
  ExpectClose(via_map.probability_empty(), plain.probability_empty(), 1e-8,
              "P(empty)");
  ExpectClose(via_map.tail(50), plain.tail(50), 1e-7, "tail(50)");
}

TEST(MapArrivals, MapM1MatchesGiM1ClosedForm) {
  // GI/M/1: time-stationary P(N=n) = rho (1-sigma) sigma^{n-1} (n >= 1),
  // with sigma the root of sigma = A*(mu(1-sigma)); E[N] = rho/(1-sigma).
  const double mu = 1.0;
  const auto interarrival = erlang_dist(2, 2.0);  // rate 0.5, SCV 0.5
  const double rho = 0.5;

  // LST of Erlang-2 with stage rate 2/mean = 1: (1/(1+s))^2.
  auto lst = [](double s) { return std::pow(1.0 / (1.0 + s), 2.0); };
  double sigma = 0.5;
  for (int i = 0; i < 200; ++i) sigma = lst(mu * (1.0 - sigma));

  const QbdSolution sol(map_m_1(map::renewal_map(interarrival), mu));
  ExpectClose(sol.mean_queue_length(), rho / (1.0 - sigma), 1e-6, "E[N]");
  ExpectClose(sol.probability_empty(), 1.0 - rho, 1e-8, "P(empty)");
  // Geometric tail with ratio sigma.
  ExpectClose(sol.pmf(6) / sol.pmf(5), sigma, 1e-6, "decay");
}

TEST(MapArrivals, SmootherArrivalsShortenTheQueue) {
  // At identical arrival rate, Erlang-4 (SCV 0.25) < Poisson (SCV 1)
  // < HYP-2 (SCV 8) in mean queue length.
  const auto mmpp = PaperClusterMmpp(2);
  const double lambda = 0.6 * mmpp.mean_rate();

  const auto erl = map::renewal_map(erlang_dist(4, 1.0 / lambda));
  const auto poi = map::poisson_map(lambda);
  const auto hyp = map::renewal_map(
      medist::hyperexp_from_mean_scv(1.0 / lambda, 8.0));

  const double q_erl = QbdSolution(map_mmpp_1(erl, mmpp)).mean_queue_length();
  const double q_poi = QbdSolution(map_mmpp_1(poi, mmpp)).mean_queue_length();
  const double q_hyp = QbdSolution(map_mmpp_1(hyp, mmpp)).mean_queue_length();

  EXPECT_LT(q_erl, q_poi);
  EXPECT_LT(q_poi, q_hyp);
}

TEST(MapArrivals, PhaseDimIsProduct) {
  const auto mmpp = PaperClusterMmpp(2);
  const auto arr = map::renewal_map(erlang_dist(3, 1.0));
  const auto blocks = map_mmpp_1(arr, mmpp);
  EXPECT_EQ(blocks.phase_dim(), 3u * mmpp.dim());
  EXPECT_NO_THROW(blocks.validate());
}

TEST(MapArrivals, UtilizationMatchesRateRatio) {
  const auto mmpp = PaperClusterMmpp(2);
  const auto arr = map::renewal_map(erlang_dist(2, 1.0));  // rate 1
  const auto blocks = map_mmpp_1(arr, mmpp);
  ExpectClose(utilization(blocks), 1.0 / mmpp.mean_rate(), 1e-8, "rho");
}

TEST(MapArrivals, BlowupSurvivesNonPoissonArrivals) {
  // Sec. 2.4's point: the qualitative behaviour does not hinge on the
  // Poisson assumption. Erlang-2 arrivals into TPT-repair service still
  // blow up across rho_1.
  const auto mmpp = PaperClusterMmpp(9);
  auto mean_ql = [&](double rho) {
    const double lambda = rho * mmpp.mean_rate();
    const auto arr = map::renewal_map(erlang_dist(2, 1.0 / lambda));
    return QbdSolution(map_mmpp_1(arr, mmpp)).mean_queue_length() /
           core::mm1::mean_queue_length(rho);
  };
  EXPECT_GT(mean_ql(0.70), 10.0 * mean_ql(0.10));
}

TEST(MapArrivals, UnstableMapQueueThrows) {
  const auto mmpp = PaperClusterMmpp(2);
  const auto arr = map::poisson_map(1.1 * mmpp.mean_rate());
  EXPECT_THROW(QbdSolution(map_mmpp_1(arr, mmpp)), NumericalError);
}

// Property: GI/M/1 with varying interarrival SCV, checked against the
// sigma fixed-point for hyperexponential interarrivals.
class GiM1Property : public ::testing::TestWithParam<double> {};

TEST_P(GiM1Property, MatchesSigmaFixedPoint) {
  const double scv = GetParam();
  const double mu = 2.0;
  const double rho = 0.6;
  const auto inter = medist::hyperexp_from_mean_scv(1.0 / (rho * mu), scv);

  // LST of the hyperexponential mixture.
  auto lst = [&](double s) {
    const auto& p = inter.entry_vector();
    const auto& b = inter.rate_matrix();
    double acc = 0.0;
    for (std::size_t i = 0; i < inter.dim(); ++i) {
      acc += p[i] * b(i, i) / (b(i, i) + s);
    }
    return acc;
  };
  double sigma = 0.5;
  for (int i = 0; i < 500; ++i) sigma = lst(mu * (1.0 - sigma));

  const QbdSolution sol(map_m_1(map::renewal_map(inter), mu));
  ExpectClose(sol.mean_queue_length(), rho / (1.0 - sigma), 1e-5, "E[N]");
}

INSTANTIATE_TEST_SUITE_P(Scv, GiM1Property,
                         ::testing::Values(1.0, 1.5, 2.0, 5.0, 12.0));

}  // namespace
}  // namespace performa::qbd
