#!/usr/bin/env python3
"""Lint Prometheus text exposition (format 0.0.4). Stdlib only.

Usage:
    promtext_lint.py FILE        lint an exposition file ('-' for stdin)
    promtext_lint.py --selftest  run the built-in corpus

Checks (the subset a scrape actually depends on):
  - metric and label names match the exposition charsets
  - every sample line parses: name[{labels}] value [timestamp]
  - label values are properly quoted with closed escapes
  - at most one ``# TYPE`` per family, declared before its samples
  - no duplicate (name, label-set) sample
  - histogram families: cumulative non-decreasing buckets, a ``+Inf``
    bucket equal to ``_count``, and ``_sum``/``_count`` present

Exit 0 when clean, 1 with one ``file:line: message`` per problem.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
VALUE = re.compile(r"^[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|Inf|NaN)$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(text, errors, lineno):
    """Parse the inside of a {...} label block; returns list of (k, v)."""
    labels = []
    i = 0
    n = len(text)
    while i < n:
        eq = text.find("=", i)
        if eq < 0:
            errors.append((lineno, "label block: missing '='"))
            return labels
        name = text[i:eq].strip()
        if not LABEL_NAME.match(name):
            errors.append((lineno, "bad label name %r" % name))
        j = eq + 1
        if j >= n or text[j] != '"':
            errors.append((lineno, "label %r: value not quoted" % name))
            return labels
        j += 1
        value = []
        closed = False
        while j < n:
            c = text[j]
            if c == "\\":
                if j + 1 >= n:
                    errors.append((lineno, "label %r: dangling escape" % name))
                    return labels
                nxt = text[j + 1]
                if nxt not in ('"', "\\", "n"):
                    errors.append(
                        (lineno, "label %r: bad escape \\%s" % (name, nxt)))
                value.append(c + nxt)
                j += 2
                continue
            if c == '"':
                closed = True
                j += 1
                break
            if c == "\n":
                errors.append((lineno, "label %r: raw newline" % name))
            value.append(c)
            j += 1
        if not closed:
            errors.append((lineno, "label %r: unterminated value" % name))
            return labels
        labels.append((name, "".join(value)))
        if j < n and text[j] == ",":
            j += 1
        elif j < n:
            errors.append((lineno, "label block: expected ',' at %r" % text[j]))
            return labels
        i = j
    return labels


def lint(lines, source="<input>"):
    errors = []           # (lineno, message)
    types = {}            # family -> declared type
    type_line = {}        # family -> lineno of TYPE
    seen_samples = set()  # (name, frozen labels)
    samples = []          # (lineno, name, labels-dict, float value)

    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    errors.append((lineno, "malformed TYPE line"))
                    continue
                family, kind = parts[2], parts[3].strip()
                if not METRIC_NAME.match(family):
                    errors.append((lineno, "TYPE: bad family name %r" % family))
                if kind not in KNOWN_TYPES:
                    errors.append((lineno, "TYPE: unknown kind %r" % kind))
                if family in types:
                    errors.append(
                        (lineno, "duplicate TYPE for %s (first at line %d)"
                         % (family, type_line[family])))
                else:
                    types[family] = kind
                    type_line[family] = lineno
            continue  # other comments (# HELP, plain) are fine

        # Sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([^\s{]+)(\{.*\})?\s+(\S+)(\s+-?\d+)?\s*$", line)
        if not m:
            errors.append((lineno, "unparseable sample line"))
            continue
        name, label_block, value = m.group(1), m.group(2), m.group(3)
        if not METRIC_NAME.match(name):
            errors.append((lineno, "bad metric name %r" % name))
        if not VALUE.match(value):
            errors.append((lineno, "bad sample value %r" % value))
        labels = []
        if label_block:
            labels = parse_labels(label_block[1:-1], errors, lineno)
        key = (name, tuple(sorted(labels)))
        if key in seen_samples:
            errors.append((lineno, "duplicate sample %s%s" % (name,
                          "{...}" if labels else "")))
        seen_samples.add(key)
        try:
            fvalue = float(value.replace("Inf", "inf"))
        except ValueError:
            fvalue = float("nan")
        samples.append((lineno, name, dict(labels), fvalue))

    # TYPE declared after its first sample?
    first_sample_line = {}
    for lineno, name, labels, _ in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        for fam in (name, base):
            if fam not in first_sample_line:
                first_sample_line[fam] = lineno
    for family, tline in type_line.items():
        sline = first_sample_line.get(family)
        if sline is not None and sline < tline:
            errors.append(
                (tline, "TYPE for %s after its first sample (line %d)"
                 % (family, sline)))

    # Histogram invariants.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = {}  # label-set minus 'le' -> [(le, value, lineno)]
        sums = set()
        counts = {}
        for lineno, name, labels, value in samples:
            if name == family + "_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append((lineno, "%s_bucket without le" % family))
                    continue
                rest = tuple(sorted((k, v) for k, v in labels.items()
                                    if k != "le"))
                buckets.setdefault(rest, []).append((le, value, lineno))
            elif name == family + "_sum":
                sums.add(tuple(sorted(labels.items())))
            elif name == family + "_count":
                counts[tuple(sorted(labels.items()))] = value
        if not buckets:
            errors.append((type_line[family],
                           "histogram %s has no _bucket samples" % family))
        for rest, entries in buckets.items():
            def edge(le):
                return float("inf") if le == "+Inf" else float(le)
            prev = -1.0
            prev_edge = float("-inf")
            saw_inf = False
            for le, value, lineno in entries:
                try:
                    e = edge(le)
                except ValueError:
                    errors.append((lineno, "bad le=%r" % le))
                    continue
                if e <= prev_edge:
                    errors.append(
                        (lineno, "%s buckets out of order at le=%s"
                         % (family, le)))
                if value < prev:
                    errors.append(
                        (lineno, "%s buckets not cumulative at le=%s"
                         % (family, le)))
                prev, prev_edge = value, e
                saw_inf = saw_inf or le == "+Inf"
            if not saw_inf:
                errors.append(
                    (entries[-1][2], "histogram %s missing +Inf bucket"
                     % family))
            elif rest in counts and entries[-1][0] == "+Inf" \
                    and entries[-1][1] != counts[rest]:
                errors.append(
                    (entries[-1][2],
                     "%s +Inf bucket (%g) != _count (%g)"
                     % (family, entries[-1][1], counts[rest])))
        if not sums:
            errors.append((type_line[family],
                           "histogram %s missing _sum" % family))
        if not counts:
            errors.append((type_line[family],
                           "histogram %s missing _count" % family))

    return [(source, lineno, msg) for lineno, msg in sorted(errors)]


GOOD = """\
# TYPE daemon_requests counter
daemon_requests 42
# TYPE daemon_requests_by_op counter
daemon_requests_by_op{op="solve"} 40
daemon_requests_by_op{op="tail quoted \\"x\\" \\\\ and \\n"} 2
# TYPE daemon_queue_depth gauge
daemon_queue_depth 1.5
# TYPE solve_seconds histogram
solve_seconds_bucket{le="0.25"} 1
solve_seconds_bucket{le="0.5"} 3
solve_seconds_bucket{le="+Inf"} 4
solve_seconds_sum 1.75
solve_seconds_count 4
empty_value_nan NaN
"""

BAD_CASES = [
    ("bad name", "9lives 1\n", "bad metric name"),
    ("bad value", "x one\n", "bad sample value"),
    ("dup type", "# TYPE a counter\n# TYPE a gauge\na 1\n", "duplicate TYPE"),
    ("dup sample", "a{l=\"x\"} 1\na{l=\"x\"} 2\n", "duplicate sample"),
    ("open quote", "a{l=\"x} 1\n", "unterminated"),
    ("bad escape", "a{l=\"\\q\"} 1\n", "bad escape"),
    ("bad label", "a{9l=\"x\"} 1\n", "bad label name"),
    ("type after sample", "a 1\n# TYPE a counter\n", "after its first sample"),
    ("not cumulative",
     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
     "h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "not cumulative"),
    ("no inf",
     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
     "missing +Inf"),
    ("inf != count",
     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\n"
     "h_sum 1\nh_count 6\n", "!= _count"),
]


def selftest():
    failures = 0
    errs = lint(GOOD.splitlines(True), "good")
    if errs:
        failures += 1
        print("FAIL: clean corpus flagged:")
        for source, lineno, msg in errs:
            print("  %s:%d: %s" % (source, lineno, msg))
    for label, text, expect in BAD_CASES:
        errs = lint(text.splitlines(True), label)
        if not any(expect in msg for _, _, msg in errs):
            failures += 1
            print("FAIL: %r did not raise %r (got %r)"
                  % (label, expect, [m for _, _, m in errs]))
    print("selftest: %s" % ("FAIL" if failures else "OK"))
    return 1 if failures else 0


def main(argv):
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "--selftest":
        return selftest()
    if argv[1] == "-":
        lines = sys.stdin.readlines()
        source = "<stdin>"
    else:
        with open(argv[1]) as f:
            lines = f.readlines()
        source = argv[1]
    errs = lint(lines, source)
    for src, lineno, msg in errs:
        print("%s:%d: %s" % (src, lineno, msg))
    if not errs:
        print("%s: OK (%d lines)" % (source, len(lines)))
    return 1 if errs else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
