#!/usr/bin/env python3
"""Open-loop load generator for performad.

Drives a running performad instance over its Unix socket at a target
request rate (open-loop: send times are scheduled on a fixed grid, so a
slow daemon accumulates lag instead of silently throttling the load --
the honest way to measure shedding). Reports the outcome mix (ok /
overloaded / stale / deadline-exceeded / error) and latency percentiles.

Stdlib only. Examples:

    performad --socket /tmp/performad.sock &
    python3 bench/daemon_loadgen.py --socket /tmp/performad.sock \
        --qps 200 --duration 5
    python3 bench/daemon_loadgen.py --selftest

The CI chaos drill uses this to generate mixed load around kill -9s and
asserts on the JSON summary (--json).
"""

import argparse
import json
import socket
import sys
import threading
import time


def build_mix(deadline_ms):
    """A deterministic request mix: cache-friendly repeats of a handful
    of model points, some derived queries, and parameter-only ops."""
    mix = []
    for rho in (0.5, 0.6, 0.7, 0.8):
        mix.append({"op": "mean", "rho": rho})
        mix.append({"op": "tail", "rho": rho, "k": 25})
    mix.append({"op": "mean", "rho": 0.7, "repair": "tpt"})
    mix.append({"op": "availability"})
    mix.append({"op": "blowup", "repair": "tpt", "rho": 0.9})
    mix.append({"op": "ping"})
    if deadline_ms is not None:
        for request in mix:
            request["deadline_ms"] = deadline_ms
    return mix


def percentile(sorted_values, p):
    """Nearest-rank percentile; p in [0, 100]."""
    if not sorted_values:
        return float("nan")
    if p <= 0:
        return sorted_values[0]
    if p >= 100:
        return sorted_values[-1]
    rank = max(1, -(-len(sorted_values) * p // 100))  # ceil without math
    return sorted_values[int(rank) - 1]


class Stats:
    def __init__(self):
        self.lock = threading.Lock()
        self.latencies_ms = []
        self.outcomes = {}
        self.stale = 0
        self.transport_errors = 0
        self.sent = 0
        self.max_lag_s = 0.0

    def record(self, response, latency_ms):
        outcome = response.get("outcome", "missing")
        with self.lock:
            self.latencies_ms.append(latency_ms)
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            if response.get("stale"):
                self.stale += 1

    def summary(self):
        with self.lock:
            lat = sorted(self.latencies_ms)
            summary = {
                "sent": self.sent,
                "answered": len(lat),
                "outcomes": dict(sorted(self.outcomes.items())),
                "stale_serves": self.stale,
                "transport_errors": self.transport_errors,
                "max_scheduler_lag_s": round(self.max_lag_s, 3),
            }
        if lat:
            summary["latency_ms"] = {
                "p50": round(percentile(lat, 50), 3),
                "p90": round(percentile(lat, 90), 3),
                "p99": round(percentile(lat, 99), 3),
                "max": round(lat[-1], 3),
            }
        return summary


class Connection:
    """One socket: a sender schedules writes, a reader thread matches
    responses to send timestamps by request id."""

    def __init__(self, path, stats):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.stats = stats
        self.pending = {}  # id -> send time
        self.lock = threading.Lock()
        self.reader = threading.Thread(target=self._read_loop, daemon=True)
        self.reader.start()

    def send(self, request, request_id):
        request = dict(request)
        request["id"] = request_id
        line = json.dumps(request) + "\n"
        with self.lock:
            self.pending[request_id] = time.monotonic()
        try:
            self.sock.sendall(line.encode())
            return True
        except OSError:
            with self.lock:
                self.pending.pop(request_id, None)
            self.stats.transport_errors += 1
            return False

    def _read_loop(self):
        buffer = b""
        while True:
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                now = time.monotonic()
                try:
                    response = json.loads(line)
                except ValueError:
                    self.stats.transport_errors += 1
                    continue
                with self.lock:
                    sent_at = self.pending.pop(response.get("id"), None)
                if sent_at is None:
                    continue
                self.stats.record(response, (now - sent_at) * 1e3)

    def drain(self, timeout_s):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self.lock:
                if not self.pending:
                    return
            time.sleep(0.01)

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def run_load(args):
    stats = Stats()
    try:
        connections = [
            Connection(args.socket, stats) for _ in range(args.connections)
        ]
    except OSError as e:
        print(f"daemon_loadgen: cannot connect to {args.socket}: {e}",
              file=sys.stderr)
        return 1

    mix = build_mix(args.deadline_ms)
    total = (args.requests if args.requests
             else int(args.qps * args.duration))
    interval = 1.0 / args.qps
    start = time.monotonic()
    for i in range(total):
        # Open-loop schedule: request i belongs at start + i*interval,
        # regardless of how the daemon is doing.
        target = start + i * interval
        now = time.monotonic()
        if target > now:
            time.sleep(target - now)
        else:
            stats.max_lag_s = max(stats.max_lag_s, now - target)
        conn = connections[i % len(connections)]
        if conn.send(mix[i % len(mix)], f"lg-{i}"):
            stats.sent += 1

    for conn in connections:
        conn.drain(args.drain_timeout)
        conn.close()

    summary = stats.summary()
    if args.json:
        print(json.dumps(summary))
    else:
        print(json.dumps(summary, indent=2))
    return 0


def selftest():
    """Offline checks of the statistics and request-generation code."""
    assert percentile([], 50) != percentile([], 50)  # NaN
    assert percentile([5.0], 50) == 5.0
    values = sorted(float(i) for i in range(1, 101))
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0
    assert percentile(values, 0) == 1.0

    mix = build_mix(None)
    assert len(mix) >= 10
    assert all("op" in request for request in mix)
    assert not any("deadline_ms" in request for request in mix)
    with_deadline = build_mix(250)
    assert all(request["deadline_ms"] == 250 for request in with_deadline)
    # Requests must be valid flat JSON (the daemon's protocol).
    for request in mix:
        parsed = json.loads(json.dumps(request))
        assert all(not isinstance(v, (dict, list)) for v in parsed.values())

    stats = Stats()
    stats.sent = 3
    stats.record({"outcome": "ok", "id": "a"}, 1.0)
    stats.record({"outcome": "overloaded", "id": "b"}, 0.5)
    stats.record({"outcome": "deadline-exceeded", "stale": True, "id": "c"},
                 2.0)
    summary = stats.summary()
    assert summary["answered"] == 3
    assert summary["outcomes"] == {
        "deadline-exceeded": 1, "ok": 1, "overloaded": 1}
    assert summary["stale_serves"] == 1
    assert summary["latency_ms"]["p50"] == 1.0
    assert summary["latency_ms"]["max"] == 2.0
    print("daemon_loadgen selftest: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--socket", default="/tmp/performad.sock")
    parser.add_argument("--qps", type=float, default=100.0,
                        help="open-loop target request rate")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of load (ignored with --requests)")
    parser.add_argument("--requests", type=int, default=0,
                        help="exact request count (overrides --duration)")
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="attach this deadline to every request")
    parser.add_argument("--drain-timeout", type=float, default=5.0,
                        help="seconds to wait for in-flight responses")
    parser.add_argument("--json", action="store_true",
                        help="one-line JSON summary (for CI assertions)")
    parser.add_argument("--selftest", action="store_true",
                        help="run offline unit checks and exit")
    args = parser.parse_args()
    if args.selftest:
        return selftest()
    if args.qps <= 0:
        parser.error("--qps must be positive")
    return run_load(args)


if __name__ == "__main__":
    sys.exit(main())
