// Section 2.3 table: parameter correspondence between the cluster model
// (M/MMPP/1) and the N-Burst teletraffic model (MMPP/M/1), evaluated on
// the paper's running example so both columns carry actual numbers.
#include <cstdio>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/nburst.h"

using namespace performa;

int main() {
  bench::banner("Table (Sec. 2.3)",
                "cluster model vs N-Burst teletraffic model",
                "cluster: N=2, nu_p=2, delta=0, UP=exp(90), DOWN=exp(10); "
                "telco dual: ON<->DOWN, OFF<->UP, lambda_p = nu_p");

  core::ClusterParams cp;
  cp.delta = 0.0;  // the paper's table states the delta = 0 case
  const core::ClusterModel cluster(cp);

  core::NBurstParams np;
  np.n_sources = cp.n_servers;
  np.lambda_p = cp.nu_p;
  np.on = cp.down;
  np.off = cp.up;
  const core::NBurstModel telco(np);

  std::printf("%-38s | %-38s\n", "Cluster Model", "Telco Model");
  std::printf("%-38s | %-38s\n", "M/MMPP/1 queue", "MMPP/M/1 queue");
  std::printf("%-38s | %-38s\n", "number of servers N = 2",
              "number of sources N = 2");
  char left[64], right[64];
  std::snprintf(left, sizeof left, "service during UP nu_p = %.2f", cp.nu_p);
  std::snprintf(right, sizeof right, "arrival rate during ON lambda_p = %.2f",
                np.lambda_p);
  std::printf("%-38s | %-38s\n", left, right);
  std::snprintf(left, sizeof left, "avail. A = MTTF/(MTTF+MTTR) = %.3f",
                cluster.availability());
  std::snprintf(right, sizeof right, "burstiness b = OFF/(ON+OFF) = %.3f",
                telco.burstiness());
  std::printf("%-38s | %-38s\n", left, right);
  std::snprintf(left, sizeof left, "avg svc rate N nu_p A = %.3f",
                cluster.mean_service_rate());
  std::snprintf(right, sizeof right, "avg arr rate N lambda_p (1-b) = %.3f",
                telco.mean_arrival_rate());
  std::printf("%-38s | %-38s\n", left, right);

  // Demonstrate the duality numerically: both queues at utilization 0.7.
  const double rho = 0.7;
  const auto cluster_sol = cluster.solve(cluster.lambda_for_rho(rho));
  const auto telco_sol = telco.solve(telco.mu_for_rho(rho));
  std::printf("\n# both models solved at rho = %.1f:\n", rho);
  std::printf("cluster E[Q] = %.4f, telco E[Q] = %.4f\n",
              cluster_sol.mean_queue_length(), telco_sol.mean_queue_length());
  std::printf("# (the queue-length processes are analogous, not identical: "
              "arrival- vs service-side modulation)\n");
  return 0;
}
