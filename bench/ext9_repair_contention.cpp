// Extension 9: shared repair facility. The paper repairs every server
// independently; here N = 2 servers share c repair crews and an s-slot
// spares pool, so a second failure during a long (heavy-tailed) repair
// queues behind the first crew instead of healing in parallel.
//
// Expected shape: at the same offered load (rho of the *independent*
// model's capacity), c = 1 loses availability and queue length exactly in
// the high-variance regime (TPT T = 5); adding a spare buys most of it
// back for a fraction of a crew's cost, because the spare hides the
// repair queue from the service process until the pool drains.
//
// Every (c, s) point is one supervised runner point, so the grid is
// checkpointable, resumable, and golden-comparable: CI byte-diffs this
// CSV against bench/golden/ext9_repair_contention.csv with
// PERFORMA_THREADS pinned (the numbers are bit-identical for any thread
// count and --jobs value; pinning only fixes the banner).
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "map/repair_facility.h"
#include "medist/tpt.h"
#include "qbd/level_dependent.h"

using namespace performa;

int main() {
  bench::banner("Extension (shared repair facility)",
                "availability and queueing vs crews (c) and spares (s)",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(T=5, "
                "alpha=1.4, theta=0.2, mean=10), rho=0.7 of independent "
                "capacity, c in {1,2}, s in {0,1,2}");

  const auto up = medist::exponential_from_mean(90.0);
  const auto down = medist::make_tpt(medist::TptSpec{5, 1.4, 0.2, 10.0});

  // Every configuration faces the load the independent-repair cluster
  // (c >= N, no spares -- the paper's model) was sized for.
  const map::RepairFacility reference(up, down, 2.0, 0.2, 2, 2, 0);
  const double lambda = 0.7 * reference.mmpp().mean_rate();
  std::printf("# lambda = %.6f (0.7 x independent nu_bar %.6f)\n", lambda,
              reference.mmpp().mean_rate());

  std::vector<runner::SweepPointSpec> points;
  std::vector<std::pair<unsigned, unsigned>> grid;
  for (unsigned c = 1; c <= 2; ++c) {
    for (unsigned s = 0; s <= 2; ++s) {
      char id[32];
      std::snprintf(id, sizeof id, "c=%u,s=%u", c, s);
      grid.emplace_back(c, s);
      points.push_back({id, [&up, &down, c, s, lambda]() {
        runner::PointResult out;
        const map::RepairFacility fac(up, down, 2.0, 0.2, 2, c, s);
        out.metrics.emplace_back("availability", fac.availability());
        out.metrics.emplace_back("crew_util", fac.crew_utilization());
        out.metrics.emplace_back("repair_q", fac.mean_repair_queue());
        out.metrics.emplace_back("util", lambda / fac.mmpp().mean_rate());
        const qbd::LevelDependentSolution sol(
            qbd::repair_facility_level_dependent_blocks(fac, lambda));
        out.metrics.emplace_back("mean_ql", sol.mean_queue_length());
        out.metrics.emplace_back("tail50", sol.tail(50));
        out.metrics.emplace_back("trust",
                                 static_cast<double>(sol.trust().verdict));
        return out;
      }});
    }
  }
  runner::install_signal_handlers();
  const auto sweep = runner::run_sweep("ext9-repair-contention", points,
                                       bench::sweep_options_from_env());

  std::printf(
      "crews,spares,availability,crew_util,repair_q,util,mean_ql,tail50,"
      "trust\n");
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& pt = sweep.points[i];
    std::printf("%u,%u,%.6f,%.4f,%.4f,%.4f,%.4f,%.4e", grid[i].first,
                grid[i].second, pt.metric("availability"),
                pt.metric("crew_util"), pt.metric("repair_q"),
                pt.metric("util"), pt.metric("mean_ql"), pt.metric("tail50"));
    const double trust = pt.metric("trust");
    std::printf(",%s\n",
                std::isnan(trust)
                    ? "n/a"
                    : qbd::to_string(static_cast<qbd::TrustVerdict>(
                          static_cast<int>(trust))));
  }
  return bench::finish_sweep("ext9-repair-contention", sweep);
}
