// Figure 6: tail probabilities Pr(Q >= 500) for the 5-node cluster with
// high-variance HYP-2 repair times -- all five blow-up points visible.
//
// Expected shape (paper): five distinct shoulders in the tail-probability
// curve at rho_5 < rho_4 < ... < rho_1; the exponential-repair curve stays
// negligible until rho -> 1.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "medist/moment_fit.h"

using namespace performa;

namespace {

medist::MeDistribution RepairDist(unsigned t) {
  const auto tpt = medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, 10.0});
  if (t == 1) return tpt;
  return medist::fit_hyp2(tpt).to_distribution();
}

}  // namespace

int main() {
  bench::banner("Figure 6", "Pr(Q >= 500) for the 5-node cluster",
                "N=5, nu_p=2, delta=0.2, UP=exp(90), DOWN=HYP-2 matched to "
                "TPT(T), T in {1,9,10}");

  const std::vector<unsigned> t_values{1, 9, 10};
  std::vector<core::ClusterModel> models;
  for (unsigned t : t_values) {
    core::ClusterParams p;
    p.n_servers = 5;
    p.down = RepairDist(t);
    models.emplace_back(std::move(p));
  }

  {
    const auto bounds = core::blowup_utilizations(models[0].blowup_params());
    std::printf("# blow-up utilizations:");
    for (double b : bounds) std::printf(" %.4f", b);
    std::printf("\n");
    std::printf("# lumped state space: %zu states/server-phase config "
                "(Kronecker form would need %u^5)\n",
                models[1].aggregate().state_count(),
                static_cast<unsigned>(models[1].server().dim()));
  }

  std::printf("rho");
  for (unsigned t : t_values) std::printf(",tail_T%u", t);
  std::printf("\n");

  for (double rho = 0.04; rho < 0.97; rho += 0.04) {
    std::printf("%.2f", rho);
    for (const auto& model : models) {
      std::printf(",%.6e", model.solve(model.lambda_for_rho(rho)).tail(500));
    }
    std::printf("\n");
  }
  return 0;
}
