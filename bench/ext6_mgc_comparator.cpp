// Extension 6: the M/G/c completion-time comparator (the classical
// alternative the paper names in Sec. 2.2). Effective service times fold
// the repairs into each task (Resume semantics); an M/G/c two-moment
// approximation is then compared against the exact QBD solution.
//
// Expected shape: the comparator applies one variance multiplier at all
// loads -- roughly correct deep in the blow-up region, an order of
// magnitude too pessimistic in the intermediate region, and blind to the
// insensitive region and the blow-up boundaries. This is the
// justification for the matrix-analytic machinery.
#include <cstdio>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mgc.h"
#include "medist/tpt.h"

using namespace performa;

int main() {
  bench::banner("Extension (Sec. 2.2)",
                "M/G/c completion-time approximation vs exact QBD",
                "N=2, nu_p=2, delta=0 (crash), UP=exp(90), DOWN=TPT(T in "
                "{1,10}, alpha=1.4, theta=0.2, mean=10), Resume semantics");

  std::printf("rho,exact_T1,mgc_T1,exact_T10,mgc_T10\n");

  struct Case {
    core::ClusterModel model;
    core::Moments2 completion;
  };
  std::vector<Case> cases;
  for (unsigned t : {1u, 10u}) {
    core::ClusterParams p;
    p.delta = 0.0;
    p.down = medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, 10.0});
    auto completion = core::resume_completion_moments(
        medist::exponential_dist(2.0), 1.0 / 90.0, p.down);
    std::printf("# T=%u: E[C]=%.4f, SCV[C]=%.1f\n", t, completion.m1,
                completion.scv());
    cases.push_back(Case{core::ClusterModel(std::move(p)), completion});
  }

  for (double rho = 0.1; rho < 0.9; rho += 0.1) {
    std::printf("%.1f", rho);
    for (const auto& c : cases) {
      const double lambda = c.model.lambda_for_rho(rho);
      const double exact = c.model.solve(lambda).mean_queue_length();
      const double approx = core::mgc::mgc_mean_number(lambda, c.completion,
                                                       2);
      std::printf(",%.4f,%.4f", exact, approx);
    }
    std::printf("\n");
  }
  return 0;
}
