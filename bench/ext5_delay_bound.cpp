// Extension 5: validation of the paper's QoS mapping
//   Pr(S > d) ~ Pr(Q > d * nu_bar)
// (Sec. 2.2). The analytic queue-tail approximation is compared against
// sojourn times measured in the multiprocessor simulation, at a
// utilization in the intermediate region and one in the blow-up region.
//
// Expected shape: agreement within a small factor over the whole range of
// deadlines, including the power-law stretch -- the approximation links
// delay-bound QoS directly to the blow-up analysis.
#include <cstdio>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/qos.h"
#include "sim/cluster_sim.h"

using namespace performa;

int main() {
  bench::banner("Extension (Sec. 2.2)",
                "delay-bound QoS: queue-tail approximation vs simulation",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(T=5, "
                "alpha=1.4, theta=0.5, mean=10)");

  core::ClusterParams p;
  p.down = medist::make_tpt(medist::TptSpec{5, 1.4, 0.5, 10.0});
  const core::ClusterModel model(p);
  const double nu_bar = model.mean_service_rate();

  const std::size_t cycles = bench::scaled(60000);
  std::printf("# simulation: %zu cycles, single long run\n", cycles);
  std::printf("rho,d,analytic_PrS_gt_d,simulated_PrS_gt_d\n");

  for (double rho : {0.4, 0.7}) {
    const double lambda = model.lambda_for_rho(rho);
    const auto sol = model.solve(lambda);

    sim::ClusterSimConfig cfg;
    cfg.lambda = lambda;
    cfg.up = sim::me_sampler(p.up);
    cfg.down = sim::me_sampler(p.down);
    cfg.cycles = cycles;
    cfg.warmup_cycles = cycles / 10;
    cfg.seed = 27182 + static_cast<std::uint64_t>(rho * 10);
    const auto res = sim::simulate_cluster(cfg);

    for (double d : {1.0, 3.0, 10.0, 30.0, 100.0, 300.0}) {
      std::printf("%.1f,%.0f,%.4e,%.4e\n", rho, d,
                  core::delay_violation_probability(sol, d, nu_bar),
                  res.system_time_hist.tail(d));
    }
  }

  std::printf("\n# deadline planning: smallest d with Pr(S>d) <= eps\n");
  std::printf("rho,eps,min_deadline\n");
  for (double rho : {0.4, 0.7}) {
    const auto sol = model.solve(model.lambda_for_rho(rho));
    for (double eps : {1e-2, 1e-4, 1e-6}) {
      std::printf("%.1f,%.0e,%.1f\n", rho, eps,
                  core::min_deadline_for(sol, eps, nu_bar));
    }
  }
  return 0;
}
