// performad hot-path benchmarks: the daemon's reason to exist is that a
// warm cached query costs microseconds where a cold solve costs
// milliseconds. BM_WarmCacheQuery is the headline number EXPERIMENTS.md
// quotes and bench_compare.py holds to the regression threshold; the
// cold-solve and codec cases bound the other per-request costs.
#include <benchmark/benchmark.h>

#include <string>

#include "daemon/cache.h"
#include "daemon/journal.h"
#include "daemon/jsonio.h"
#include "daemon/query.h"
#include "obs/trace.h"

using namespace performa;

namespace {

daemon::EngineConfig BenchEngineConfig() {
  daemon::EngineConfig config;  // no journal: pure in-memory engine
  return config;
}

// --- the daemon's value proposition -----------------------------------

void BM_WarmCacheQuery(benchmark::State& state) {
  obs::disable_trace();
  daemon::QueryEngine engine(BenchEngineConfig());
  const std::string line = R"({"op":"mean","rho":0.7})";
  (void)engine.handle_line(line);  // warm the single entry
  for (auto _ : state) {
    std::string response = engine.handle_line(line);
    benchmark::DoNotOptimize(response);
  }
  state.SetLabel("hits=" + std::to_string(engine.cache().stats().hits));
}

void BM_WarmTailQuery(benchmark::State& state) {
  // tail(k) recomputes R^k powers from the cached solution: the cost of
  // a cached *derived* quantity, not just a memo lookup.
  obs::disable_trace();
  daemon::QueryEngine engine(BenchEngineConfig());
  const std::string line = R"({"op":"tail","rho":0.7,"k":25})";
  (void)engine.handle_line(line);
  for (auto _ : state) {
    std::string response = engine.handle_line(line);
    benchmark::DoNotOptimize(response);
  }
}

void BM_ColdSolveQuery(benchmark::State& state) {
  // refresh:true defeats the cache: every iteration pays the full QBD
  // solve (exponential repair -- the cheapest model; the point is the
  // warm/cold ratio, not the absolute solve time).
  obs::disable_trace();
  daemon::QueryEngine engine(BenchEngineConfig());
  const std::string line = R"({"op":"mean","rho":0.7,"refresh":true})";
  for (auto _ : state) {
    std::string response = engine.handle_line(line);
    benchmark::DoNotOptimize(response);
  }
}

// --- per-request codec costs ------------------------------------------

void BM_ParseRequestLine(benchmark::State& state) {
  const std::string line =
      R"({"op":"tail","rho":0.75,"k":25,"repair":"tpt","tpt_alpha":1.4,)"
      R"("deadline_ms":250,"id":"bench-0001"})";
  for (auto _ : state) {
    daemon::JsonObject obj;
    std::string error;
    bool ok = daemon::parse_json_object(line, obj, error);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(obj);
  }
}

void BM_CanonicalModelKey(benchmark::State& state) {
  daemon::ModelSpec spec;
  spec.repair = "tpt";
  spec.rho = 0.75;
  for (auto _ : state) {
    std::string key = daemon::canonical_model_key(spec);
    benchmark::DoNotOptimize(key);
  }
}

void BM_JournalRecordEncode(benchmark::State& state) {
  // The serialization cost a cache insertion adds before the write(2);
  // encode-only, so the benchmark measures CPU, not the filesystem.
  obs::disable_trace();
  daemon::QueryEngine engine(BenchEngineConfig());
  (void)engine.handle_line(R"({"op":"mean","rho":0.7})");
  daemon::CachedSolution entry;
  const auto snapshot = engine.cache().snapshot();
  entry = snapshot.front().second;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    std::string record =
        daemon::encode_journal_record(snapshot.front().first, entry, seq++);
    benchmark::DoNotOptimize(record);
  }
}

BENCHMARK(BM_WarmCacheQuery);
BENCHMARK(BM_WarmTailQuery);
BENCHMARK(BM_ColdSolveQuery);
BENCHMARK(BM_ParseRequestLine);
BENCHMARK(BM_CanonicalModelKey);
BENCHMARK(BM_JournalRecordEncode);

}  // namespace

BENCHMARK_MAIN();
