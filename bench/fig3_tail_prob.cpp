// Figure 3: tail probability Pr(Q >= 500) vs utilization for TPT repair
// times with T = 1, 5, 9, 10.
//
// Expected shape (paper): the exponential case (T=1) shows negligible
// tail mass until rho approaches 1; for larger T the same blow-up points
// as Fig. 1 are visible as sharp increases of the tail probability, which
// maps to the probability of violating a delay bound d ~ 500/nu_bar.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"

using namespace performa;

int main() {
  bench::banner("Figure 3", "Pr(Q >= 500) vs utilization",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(alpha=1.4, "
                "theta=0.2, mean=10), T in {1,5,9,10}");

  const std::vector<unsigned> t_values{1, 5, 9, 10};
  std::vector<core::ClusterModel> models;
  for (unsigned t : t_values) {
    core::ClusterParams p;
    p.down = medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, 10.0});
    models.emplace_back(std::move(p));
  }

  const std::size_t k = 500;
  std::printf("# delay-bound interpretation: Pr(S > d) ~ Pr(Q > d*nu_bar); "
              "here d ~ %zu / %.2f = %.1f time units\n",
              k, models[0].mean_service_rate(),
              static_cast<double>(k) / models[0].mean_service_rate());

  // Each rho is one supervised point; metrics round-trip through the
  // runner, so the sweep is checkpointable and golden-comparable.
  std::vector<runner::SweepPointSpec> points;
  for (double rho = 0.05; rho < 0.96; rho += 0.05) {
    char id[32];
    std::snprintf(id, sizeof id, "rho=%.2f", rho);
    points.push_back({id, [&models, &t_values, rho, k]() {
      runner::PointResult out;
      for (std::size_t i = 0; i < models.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "tail_T%u", t_values[i]);
        out.metrics.emplace_back(
            name, models[i].solve(models[i].lambda_for_rho(rho)).tail(k));
      }
      out.metrics.emplace_back("tail_mm1", core::mm1::tail(rho, k));
      return out;
    }});
  }
  runner::install_signal_handlers();
  const auto sweep = runner::run_sweep("fig3-tail-prob", points,
                                       bench::sweep_options_from_env());

  std::printf("rho");
  for (unsigned t : t_values) std::printf(",tail_T%u", t);
  std::printf(",tail_mm1\n");
  for (const auto& pt : sweep.points) {
    std::printf("%s", pt.id.c_str() + 4);  // strip the "rho=" prefix
    for (unsigned t : t_values) {
      char name[32];
      std::snprintf(name, sizeof name, "tail_T%u", t);
      std::printf(",%.6e", pt.metric(name));
    }
    std::printf(",%.6e\n", pt.metric("tail_mm1"));
  }
  return bench::finish_sweep("fig3-tail-prob", sweep);
}
