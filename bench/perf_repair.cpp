// Ablation A6: what the shared repair facility costs at solve time.
//
// The level-dependent solver's per-level blocks scale with the facility
// phase count, which grows combinatorially in crews and spares. These
// benchmarks separate (a) the state-space construction, (b) the
// level-dependent solve over facility blocks, and (c) the same solve over
// the paper's homogeneous independent-repair blocks, so a regression in
// any one layer is attributable.
#include <benchmark/benchmark.h>

#include "map/lumped_aggregate.h"
#include "map/repair_facility.h"
#include "medist/tpt.h"
#include "qbd/level_dependent.h"

using namespace performa;

namespace {

medist::MeDistribution Up() { return medist::exponential_from_mean(90.0); }

medist::MeDistribution Down(unsigned t_phases) {
  return medist::make_tpt(medist::TptSpec{t_phases, 1.4, 0.2, 10.0});
}

void BM_FacilityBuild(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto c = static_cast<unsigned>(state.range(1));
  const auto s = static_cast<unsigned>(state.range(2));
  const auto up = Up();
  const auto down = Down(5);
  std::size_t phases = 0;
  for (auto _ : state) {
    map::RepairFacility fac(up, down, 2.0, 0.2, n, c, s);
    phases = fac.state_count();
    benchmark::DoNotOptimize(fac);
  }
  state.SetLabel("phases=" + std::to_string(phases));
}

void BM_FacilitySolve(benchmark::State& state) {
  // Contention blocks: c = 1 crew, s spares, TPT(T) repairs at 60% of the
  // facility's own capacity.
  const auto n = static_cast<unsigned>(state.range(0));
  const auto s = static_cast<unsigned>(state.range(1));
  const auto t = static_cast<unsigned>(state.range(2));
  const map::RepairFacility fac(Up(), Down(t), 2.0, 0.2, n, 1, s);
  const auto blocks = qbd::repair_facility_level_dependent_blocks(
      fac, 0.6 * fac.mmpp().mean_rate());
  for (auto _ : state) {
    qbd::LevelDependentSolution sol(blocks);
    benchmark::DoNotOptimize(sol.mean_queue_length());
  }
  state.SetLabel("phases=" + std::to_string(blocks.phase_dim()));
}

void BM_HomogeneousSolve(benchmark::State& state) {
  // The paper's independent-repair cluster at the same sizes: the cost
  // baseline the facility's level dependence is measured against.
  const auto n = static_cast<unsigned>(state.range(0));
  const auto t = static_cast<unsigned>(state.range(1));
  const map::LumpedAggregate agg(map::ServerModel(Up(), Down(t), 2.0, 0.2),
                                 n);
  const auto blocks = qbd::cluster_level_dependent_blocks(
      agg, 2.0, 0.2, 0.6 * agg.mmpp().mean_rate());
  for (auto _ : state) {
    qbd::LevelDependentSolution sol(blocks);
    benchmark::DoNotOptimize(sol.mean_queue_length());
  }
  state.SetLabel("phases=" + std::to_string(blocks.phase_dim()));
}

}  // namespace

// (N, c, s): spares dominate the state count long before crews do.
BENCHMARK(BM_FacilityBuild)
    ->Args({2, 1, 0})
    ->Args({2, 1, 2})
    ->Args({3, 2, 2})
    ->Args({4, 2, 3})
    ->Unit(benchmark::kMillisecond);

// (N, s, T): solve cost vs cluster size, spares pool, repair variance.
BENCHMARK(BM_FacilitySolve)
    ->Args({2, 0, 5})
    ->Args({2, 2, 5})
    ->Args({3, 1, 5})
    ->Args({3, 1, 10})
    ->Unit(benchmark::kMillisecond);

// (N, T): the homogeneous baseline at matching sizes.
BENCHMARK(BM_HomogeneousSolve)
    ->Args({2, 5})
    ->Args({3, 5})
    ->Args({3, 10})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
