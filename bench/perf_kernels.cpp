// Kernel-level performance benchmarks for the numeric substrate: the
// costs that bound every experiment in this repository (matrix product,
// LU solve, GTH stationary vectors, matrix exponential, Kronecker sums).
#include <benchmark/benchmark.h>

#include <random>

#include "linalg/ctmc.h"
#include "linalg/expm.h"
#include "linalg/kron.h"
#include "linalg/lu.h"

using namespace performa::linalg;

namespace {

Matrix RandomDominant(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Matrix m(n, n);
  for (auto& x : m.data()) x = uni(rng);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += std::abs(m(i, j));
    m(i, i) += row + 1.0;
  }
  return m;
}

Matrix RandomGenerator(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.05, 2.0);
  Matrix q(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      q(r, c) = uni(rng);
      total += q(r, c);
    }
    q(r, r) = -total;
  }
  return q;
}

void BM_MatrixProduct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomDominant(n, 1);
  const Matrix b = RandomDominant(n, 2);
  for (auto _ : state) {
    Matrix c = a * b;
    benchmark::DoNotOptimize(c.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}

void BM_LuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomDominant(n, 3);
  const Vector b = ones(n);
  for (auto _ : state) {
    Vector x = Lu(a).solve(b);
    benchmark::DoNotOptimize(x);
  }
}

void BM_GthStationary(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix q = RandomGenerator(n, 4);
  for (auto _ : state) {
    Vector pi = stationary_distribution(q);
    benchmark::DoNotOptimize(pi);
  }
}

void BM_Expm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix q = RandomGenerator(n, 5);
  for (auto _ : state) {
    Matrix e = expm(10.0 * q);
    benchmark::DoNotOptimize(e.data());
  }
}

void BM_KronSum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix q = RandomGenerator(n, 6);
  for (auto _ : state) {
    Matrix k = kron_sum(q, q);
    benchmark::DoNotOptimize(k.data());
  }
}

}  // namespace

BENCHMARK(BM_MatrixProduct)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LuFactorSolve)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GthStationary)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Expm)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KronSum)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
