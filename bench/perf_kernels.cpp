// Kernel-level performance benchmarks for the numeric substrate: the
// costs that bound every experiment in this repository (matrix product,
// LU solve, GTH stationary vectors, matrix exponential, Kronecker sums).
//
// Every dense benchmark is parameterized over the kernel backend
// (final argument: 0 = reference scratch loops, 1 = blocked + threaded),
// so a run shows the speedup the tiled kernels buy at each size and the
// CI gate catches regressions in either backend independently.
#include <benchmark/benchmark.h>

#include <random>

#include "linalg/ctmc.h"
#include "linalg/expm.h"
#include "linalg/kernels.h"
#include "linalg/kron.h"
#include "linalg/lu.h"

using namespace performa::linalg;

namespace {

// Applies the backend named by `state.range(index)` and labels the run.
void UseBackendArg(benchmark::State& state, int index) {
  const KernelBackend backend = state.range(index) == 0
                                    ? KernelBackend::kReference
                                    : KernelBackend::kBlocked;
  set_kernel_backend(backend);
  state.SetLabel(to_string(backend));
}

Matrix RandomDominant(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Matrix m(n, n);
  for (auto& x : m.data()) x = uni(rng);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += std::abs(m(i, j));
    m(i, i) += row + 1.0;
  }
  return m;
}

Matrix RandomGenerator(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.05, 2.0);
  Matrix q(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      q(r, c) = uni(rng);
      total += q(r, c);
    }
    q(r, r) = -total;
  }
  return q;
}

void BM_MatrixProduct(benchmark::State& state) {
  UseBackendArg(state, 1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomDominant(n, 1);
  const Matrix b = RandomDominant(n, 2);
  for (auto _ : state) {
    Matrix c = a * b;
    benchmark::DoNotOptimize(c.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}

void BM_LuFactorSolve(benchmark::State& state) {
  UseBackendArg(state, 1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomDominant(n, 3);
  const Vector b = ones(n);
  for (auto _ : state) {
    Vector x = Lu(a).solve(b);
    benchmark::DoNotOptimize(x);
  }
}

void BM_GthStationary(benchmark::State& state) {
  UseBackendArg(state, 1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix q = RandomGenerator(n, 4);
  for (auto _ : state) {
    Vector pi = stationary_distribution(q);
    benchmark::DoNotOptimize(pi);
  }
}

void BM_Expm(benchmark::State& state) {
  UseBackendArg(state, 1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix q = RandomGenerator(n, 5);
  for (auto _ : state) {
    Matrix e = expm(10.0 * q);
    benchmark::DoNotOptimize(e.data());
  }
}

void BM_KronSum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix q = RandomGenerator(n, 6);
  for (auto _ : state) {
    Matrix k = kron_sum(q, q);
    benchmark::DoNotOptimize(k.data());
  }
}

// Matrix-free Kronecker-sum application Q^{(+)N} v against materializing
// the operator first: the structure that unlocks N in the hundreds.
void BM_KronSumApply(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const Matrix q = RandomGenerator(m, 7);
  std::size_t dim = 1;
  for (std::size_t i = 0; i < n; ++i) dim *= m;
  Vector v(dim, 1.0);
  for (auto _ : state) {
    Vector w = kron_sum_apply(q, n, v);
    benchmark::DoNotOptimize(w);
  }
  state.counters["dim"] = static_cast<double>(dim);
}

}  // namespace

// (n, backend): backend 0 = reference, 1 = blocked.
BENCHMARK(BM_MatrixProduct)
    ->ArgsProduct({{16, 64, 128, 256}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LuFactorSolve)
    ->ArgsProduct({{16, 64, 128, 256}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GthStationary)
    ->ArgsProduct({{16, 64, 128}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Expm)
    ->ArgsProduct({{8, 32, 64}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KronSum)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);
// (m, n): factor size, factor count.
BENCHMARK(BM_KronSumApply)
    ->Args({4, 4})->Args({4, 6})->Args({2, 12})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
