// Extension 3 (paper Sec. 2.4, "Nonexponential task arrival processes"):
// the M/MMPP/1 model with the Poisson stream replaced by matrix-
// exponential renewal arrivals of varying burstiness.
//
// Expected shape: smoother-than-Poisson arrivals (Erlang-4) shave a
// constant factor off the queue; burstier arrivals (HYP-2) add one; the
// blow-up points themselves do not move -- they are a property of the
// service side.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mm1.h"
#include "map/lumped_aggregate.h"
#include "medist/moment_fit.h"
#include "medist/tpt.h"
#include "qbd/solution.h"

using namespace performa;

int main() {
  bench::banner("Extension (Sec. 2.4)",
                "matrix-exponential renewal arrivals into the cluster",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(T=9); "
                "arrival SCV in {0.25, 1, 4}");

  const map::ServerModel server(medist::exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{9, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  const auto mmpp = map::LumpedAggregate(server, 2).mmpp();
  const double nu_bar = mmpp.mean_rate();

  std::printf("rho,nql_erlang4,nql_poisson,nql_hyp2scv4\n");
  for (double rho = 0.1; rho < 0.95; rho += 0.05) {
    const double lambda = rho * nu_bar;
    const double mm1 = core::mm1::mean_queue_length(rho);

    const auto erl = map::renewal_map(medist::erlang_dist(4, 1.0 / lambda));
    const auto poi = map::poisson_map(lambda);
    const auto hyp = map::renewal_map(
        medist::hyperexp_from_mean_scv(1.0 / lambda, 4.0));

    std::printf("%.2f,%.4f,%.4f,%.4f\n", rho,
                qbd::QbdSolution(qbd::map_mmpp_1(erl, mmpp))
                        .mean_queue_length() / mm1,
                qbd::QbdSolution(qbd::map_mmpp_1(poi, mmpp))
                        .mean_queue_length() / mm1,
                qbd::QbdSolution(qbd::map_mmpp_1(hyp, mmpp))
                        .mean_queue_length() / mm1);
  }
  return 0;
}
