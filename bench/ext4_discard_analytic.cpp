// Extension 4 (paper Sec. 2.4, last bullet): the analytic Discard model.
// Failures of a serving node become unsuccessful departures (service MAP
// with marked crash transitions), solved exactly and compared against the
// work-conserving (Resume-semantics) analytic model and the Discard
// simulation.
//
// Expected shape: the Discard curve sits below Resume everywhere (dropped
// work relieves the queue); the discard fraction stays small (faults are
// rare relative to task times) and grows mildly with utilization; the
// simulation tracks the analytic Discard model up to load-dependence.
#include <cstdio>

#include "bench_util.h"
#include "core/mm1.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "sim/cluster_sim.h"

using namespace performa;

int main() {
  bench::banner("Extension (Sec. 2.4)",
                "analytic Discard model (crash departures as MAP events)",
                "N=2, nu_p=2, delta=0 (crash), UP=exp(90), DOWN=TPT(T=5, "
                "alpha=1.4, theta=0.5, mean=10)");

  const auto repair = medist::make_tpt(medist::TptSpec{5, 1.4, 0.5, 10.0});
  const map::ServerModel server(medist::exponential_from_mean(90.0), repair,
                                2.0, 0.0);
  const map::LumpedAggregate cluster(server, 2);
  const double nu_bar = cluster.mmpp().mean_rate();

  const std::size_t cycles = bench::scaled(20000);
  std::printf("# nu_bar = %.3f; simulation: %zu cycles x 3 replications\n",
              nu_bar, cycles);
  std::printf(
      "rho,analytic_resume,analytic_discard,discard_fraction,sim_discard\n");
  for (double rho = 0.1; rho < 0.95; rho += 0.1) {
    const double lambda = rho * nu_bar;
    const qbd::QbdSolution resume(qbd::m_mmpp_1(cluster.mmpp(), lambda));
    const qbd::QbdSolution discard(qbd::m_mmpp_1_discard(cluster, lambda));
    const double frac =
        qbd::discard_fraction(cluster, lambda, discard.phase_marginal_busy());

    sim::ClusterSimConfig cfg;
    cfg.delta = 0.0;
    cfg.lambda = lambda;
    cfg.up = sim::exponential_sampler_mean(90.0);
    cfg.down = sim::me_sampler(repair);
    cfg.strategy = sim::FailureStrategy::kDiscard;
    cfg.cycles = cycles;
    cfg.warmup_cycles = cycles / 10;
    cfg.seed = 31337 + static_cast<std::uint64_t>(rho * 100);
    const auto sim_res = sim::mean_queue_length_summary(cfg, 3);

    std::printf("%.1f,%.4f,%.4f,%.5f,%.4f\n", rho,
                resume.mean_queue_length(), discard.mean_queue_length(),
                frac, sim_res.mean);
  }
  return 0;
}
