// Figure 1: normalized mean queue length of the 2-node cluster vs
// utilization, for TPT repair times with truncation T = 1, 5, 9, 10.
//
// Expected shape (paper): the T=1 (exponential) curve grows smoothly and
// stays within one decade of M/M/1; the large-T curves are insensitive
// below rho_2 = 21.7%, elevated between 21.7% and 60.9%, and blow up (two
// orders of magnitude above M/M/1) beyond rho_1 = 60.9%.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"

using namespace performa;

int main() {
  bench::banner("Figure 1", "normalized mean queue length vs utilization",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(alpha=1.4, "
                "theta=0.2, mean=10), T in {1,5,9,10}");

  const std::vector<unsigned> t_values{1, 5, 9, 10};
  std::vector<core::ClusterModel> models;
  models.reserve(t_values.size());
  for (unsigned t : t_values) {
    core::ClusterParams p;
    p.down = medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, 10.0});
    models.emplace_back(std::move(p));
  }

  const auto rho_bounds =
      core::blowup_utilizations(models.front().blowup_params());
  std::printf("# blow-up utilizations: rho_1 = %.4f, rho_2 = %.4f "
              "(paper: 0.609, 0.217)\n",
              rho_bounds[0], rho_bounds[1]);

  // Each rho is one supervised point; metrics round-trip through the
  // runner, so the sweep is checkpointable and golden-comparable.
  std::vector<runner::SweepPointSpec> points;
  for (double rho = 0.05; rho < 0.96; rho += 0.05) {
    char id[32];
    std::snprintf(id, sizeof id, "rho=%.2f", rho);
    points.push_back({id, [&models, &t_values, rho]() {
      runner::PointResult out;
      for (std::size_t i = 0; i < models.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "nql_T%u", t_values[i]);
        out.metrics.emplace_back(name,
                                 models[i].normalized_mean_queue_length(rho));
      }
      return out;
    }});
  }
  runner::install_signal_handlers();
  const auto sweep =
      runner::run_sweep("fig1-mean-ql", points, bench::sweep_options_from_env());

  std::printf("rho");
  for (unsigned t : t_values) std::printf(",nql_T%u", t);
  std::printf("\n");
  for (const auto& pt : sweep.points) {
    std::printf("%s", pt.id.c_str() + 4);  // strip the "rho=" prefix
    for (unsigned t : t_values) {
      char name[32];
      std::snprintf(name, sizeof name, "nql_T%u", t);
      std::printf(",%.4f", pt.metric(name));
    }
    std::printf("\n");
  }
  return bench::finish_sweep("fig1-mean-ql", sweep);
}
