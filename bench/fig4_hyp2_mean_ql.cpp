// Figure 4: normalized mean queue length with HYP-2 repair times matched
// to the first three moments of the TPT distributions of Fig. 1.
//
// Expected shape (paper): the same blow-up behaviour as Fig. 1; in the
// rightmost region the values closely match the TPT results, in the
// intermediate region the HYP-2 curve sits slightly lower.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/moment_fit.h"

using namespace performa;

int main() {
  bench::banner("Figure 4", "normalized mean queue length, HYP-2 repairs",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=HYP-2 matched to "
                "first 3 moments of TPT(T), T in {1,5,9,10}");

  const std::vector<unsigned> t_values{1, 5, 9, 10};
  std::vector<core::ClusterModel> hyp_models;
  std::vector<core::ClusterModel> tpt_models;
  for (unsigned t : t_values) {
    const auto tpt = medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, 10.0});
    core::ClusterParams p;
    p.down = t == 1 ? tpt : medist::fit_hyp2(tpt).to_distribution();
    std::printf("# T=%u: HYP-2 phases (p1, r1, r2) fitted to moments "
                "(%.4g, %.4g, %.4g)\n",
                t, tpt.moment(1), tpt.moment(2), tpt.moment(3));
    hyp_models.emplace_back(std::move(p));
    core::ClusterParams q;
    q.down = tpt;
    tpt_models.emplace_back(std::move(q));
  }

  std::printf("rho");
  for (unsigned t : t_values) std::printf(",nql_hyp2_T%u", t);
  for (unsigned t : t_values) std::printf(",nql_tpt_T%u", t);
  std::printf("\n");

  for (double rho = 0.05; rho < 0.96; rho += 0.05) {
    std::printf("%.2f", rho);
    for (const auto& m : hyp_models) {
      std::printf(",%.4f", m.normalized_mean_queue_length(rho));
    }
    for (const auto& m : tpt_models) {
      std::printf(",%.4f", m.normalized_mean_queue_length(rho));
    }
    std::printf("\n");
  }
  return 0;
}
