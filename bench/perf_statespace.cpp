// Ablation A1: lumped (exchangeable) vs full Kronecker state space.
//
// Expected outcome: identical metrics (verified in the test suite), but
// the lumped construction grows as C(N+m-1, m-1) instead of m^N -- the
// difference between milliseconds and minutes for N = 4..5 with
// multi-phase repair distributions.
#include <benchmark/benchmark.h>

#include "map/kron_aggregate.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"

using namespace performa;

namespace {

map::ServerModel Server(unsigned t_phases) {
  return map::ServerModel(medist::exponential_from_mean(90.0),
                          medist::make_tpt(
                              medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                          2.0, 0.2);
}

void BM_BuildLumped(benchmark::State& state) {
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    map::LumpedAggregate agg(server, n);
    benchmark::DoNotOptimize(agg.state_count());
  }
  state.counters["states"] = static_cast<double>(
      map::lumped_state_count(server.dim(), n));
}

void BM_BuildKron(benchmark::State& state) {
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    auto mmpp = map::kron_aggregate(server, n);
    benchmark::DoNotOptimize(mmpp.dim());
  }
  state.counters["states"] =
      static_cast<double>(map::kron_state_count(server, n));
}

void BM_SolveLumped(benchmark::State& state) {
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const map::LumpedAggregate agg(server, n);
  const auto blocks = qbd::m_mmpp_1(agg.mmpp(), 0.5 * agg.mmpp().mean_rate());
  for (auto _ : state) {
    qbd::QbdSolution sol(blocks);
    benchmark::DoNotOptimize(sol.mean_queue_length());
  }
  state.counters["states"] = static_cast<double>(agg.state_count());
}

void BM_SolveKron(benchmark::State& state) {
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const auto mmpp = map::kron_aggregate(server, n);
  const auto blocks = qbd::m_mmpp_1(mmpp, 0.5 * mmpp.mean_rate());
  for (auto _ : state) {
    qbd::QbdSolution sol(blocks);
    benchmark::DoNotOptimize(sol.mean_queue_length());
  }
  state.counters["states"] = static_cast<double>(mmpp.dim());
}

}  // namespace

// (T phases, N servers).
BENCHMARK(BM_BuildLumped)->Args({2, 2})->Args({2, 5})->Args({10, 2})->Args({10, 5})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildKron)->Args({2, 2})->Args({2, 5})->Args({10, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SolveLumped)->Args({2, 2})->Args({2, 5})->Args({10, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SolveKron)->Args({2, 2})->Args({2, 5})->Args({10, 2})->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
