// Ablation A1: lumped (exchangeable) vs full Kronecker state space.
//
// Expected outcome: identical metrics (verified in the test suite), but
// the lumped construction grows as C(N+m-1, m-1) instead of m^N -- the
// difference between milliseconds and minutes for N = 4..5 with
// multi-phase repair distributions.
//
// BM_SolveLumped is additionally parameterized over the kernel backend
// (third argument: 0 = reference, 1 = blocked + threaded): the N = 20
// pair quantifies what the tiled kernels buy on a 231-phase solve, and
// the (T=1, N=200) config demonstrates a certified 201-phase lumped
// solve -- two hundred servers, beyond anything the dense Kronecker
// chain (2^200 states) could ever touch.
#include <benchmark/benchmark.h>

#include "linalg/kernels.h"
#include "map/kron_aggregate.h"
#include "map/lumped_aggregate.h"
#include "medist/me_dist.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "qbd/trust.h"

using namespace performa;

namespace {

map::ServerModel Server(unsigned t_phases) {
  return map::ServerModel(
      medist::exponential_from_mean(90.0),
      t_phases <= 1
          ? medist::exponential_from_mean(10.0)
          : medist::make_tpt(medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
      2.0, 0.2);
}

void BM_BuildLumped(benchmark::State& state) {
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    map::LumpedAggregate agg(server, n);
    benchmark::DoNotOptimize(agg.state_count());
  }
  state.counters["states"] = static_cast<double>(
      map::lumped_state_count(server.dim(), n));
}

void BM_BuildKron(benchmark::State& state) {
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    auto mmpp = map::kron_aggregate(server, n);
    benchmark::DoNotOptimize(mmpp.dim());
  }
  state.counters["states"] =
      static_cast<double>(map::kron_state_count(server, n));
}

void BM_SolveLumped(benchmark::State& state) {
  linalg::set_kernel_backend(state.range(2) == 0
                                 ? linalg::KernelBackend::kReference
                                 : linalg::KernelBackend::kBlocked);
  state.SetLabel(linalg::to_string(linalg::kernel_backend()));
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const map::LumpedAggregate agg(server, n);
  const auto blocks = qbd::m_mmpp_1(agg.mmpp(), 0.5 * agg.mmpp().mean_rate());
  bool certified = false;
  for (auto _ : state) {
    qbd::QbdSolution sol(blocks);
    benchmark::DoNotOptimize(sol.mean_queue_length());
    certified = sol.trust().verdict == qbd::TrustVerdict::kCertified;
  }
  state.counters["states"] = static_cast<double>(agg.state_count());
  state.counters["certified"] = certified ? 1.0 : 0.0;
}

void BM_SolveKron(benchmark::State& state) {
  const auto server = Server(static_cast<unsigned>(state.range(0)));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const auto mmpp = map::kron_aggregate(server, n);
  const auto blocks = qbd::m_mmpp_1(mmpp, 0.5 * mmpp.mean_rate());
  for (auto _ : state) {
    qbd::QbdSolution sol(blocks);
    benchmark::DoNotOptimize(sol.mean_queue_length());
  }
  state.counters["states"] = static_cast<double>(mmpp.dim());
}

}  // namespace

// (T phases, N servers).
BENCHMARK(BM_BuildLumped)->Args({2, 2})->Args({2, 5})->Args({10, 2})->Args({10, 5})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildKron)->Args({2, 2})->Args({2, 5})->Args({10, 2})->Unit(benchmark::kMillisecond);
// (T phases, N servers, backend 0 = reference / 1 = blocked).
BENCHMARK(BM_SolveLumped)
    ->Args({2, 2, 1})
    ->Args({2, 5, 1})
    ->Args({10, 2, 1})
    ->Args({2, 20, 0})
    ->Args({2, 20, 1})
    ->Args({1, 200, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SolveKron)->Args({2, 2})->Args({2, 5})->Args({10, 2})->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
