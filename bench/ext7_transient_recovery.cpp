// Extension 7: transient recovery after an outage (uniformization).
//
// Scenario: a double failure left both servers DOWN and a backlog of 150
// tasks. How does the expected backlog evolve? With exponential repairs
// the conditional remaining repair time is short; with TPT repairs the
// inspection paradox bites -- being down *now* makes a long repair phase
// likely -- and the recovery stalls before draining. Stationary analysis
// cannot see any of this.
//
// Expected shape: both curves eventually drain at about nu_bar - lambda,
// but the TPT curve first rises (arrivals keep coming while the cluster
// crawls at delta*nu_p) and stays above the exponential curve throughout.
#include <cstdio>

#include "bench_util.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/transient.h"

using namespace performa;

namespace {

struct Scenario {
  map::LumpedAggregate cluster;
  qbd::TransientSolver solver;
  qbd::LevelState state;
};

}  // namespace

int main() {
  bench::banner("Extension (transient)",
                "backlog recovery after a double failure",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN in {exp(10), "
                "TPT(T=9)}, lambda = 0.4 nu_bar, backlog 150, both servers "
                "DOWN at t=0");

  const std::size_t cap = 400;
  const std::size_t backlog = 150;

  auto make = [&](unsigned t_phases) {
    const map::ServerModel server(
        medist::exponential_from_mean(90.0),
        medist::make_tpt(medist::TptSpec{t_phases, 1.4, 0.2, 10.0}), 2.0,
        0.2);
    map::LumpedAggregate cluster(server, 2);
    const double lambda = 0.4 * cluster.mmpp().mean_rate();
    qbd::TransientSolver solver(qbd::m_mmpp_1(cluster.mmpp(), lambda), cap);

    // Stationary phases conditioned on zero UP servers.
    linalg::Vector phases = cluster.mmpp().stationary_phases();
    for (std::size_t s = 0; s < cluster.state_count(); ++s) {
      if (cluster.up_count(s) != 0) phases[s] = 0.0;
    }
    const double mass = linalg::sum(phases);
    for (double& x : phases) x /= mass;

    auto state = solver.point_mass(backlog, phases);
    return Scenario{std::move(cluster), std::move(solver), std::move(state)};
  };

  Scenario exp_case = make(1);
  Scenario tpt_case = make(9);

  std::printf("t,mean_backlog_exp,mean_backlog_tpt,Pr_drained_exp,"
              "Pr_drained_tpt\n");
  double t_prev = 0.0;
  for (double t : {0.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0,
                   640.0}) {
    exp_case.state = exp_case.solver.evolve(exp_case.state, t - t_prev);
    tpt_case.state = tpt_case.solver.evolve(tpt_case.state, t - t_prev);
    t_prev = t;
    const auto pmf_exp = exp_case.solver.level_pmf(exp_case.state);
    const auto pmf_tpt = tpt_case.solver.level_pmf(tpt_case.state);
    double drained_exp = 0.0, drained_tpt = 0.0;
    for (std::size_t k = 0; k <= 10; ++k) {
      drained_exp += pmf_exp[k];
      drained_tpt += pmf_tpt[k];
    }
    std::printf("%.0f,%.2f,%.2f,%.4f,%.4f\n", t,
                exp_case.solver.mean_level(exp_case.state),
                tpt_case.solver.mean_level(tpt_case.state), drained_exp,
                drained_tpt);
  }
  return 0;
}
