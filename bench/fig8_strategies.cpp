// Figure 8: failure-handling strategies under crash faults (delta = 0)
// with exponential task times -- Discard vs Resume vs Restart simulations
// against the analytic M/MMPP/1 computation, with a 95% CI for Discard.
//
// Expected shape (paper): the three strategies behave almost identically
// for exponential task times, ordered Discard <= Resume <= Restart; the
// analytic curve (which models Resume semantics exactly, by memorylessness)
// tracks them.
//
// An extra section reproduces the paper's closing remark of Sec. 4: for
// Resume and Restart, back-of-queue placement beats front-of-queue.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"
#include "sim/cluster_sim.h"

using namespace performa;

namespace {

sim::ClusterSimConfig BaseSim(const core::ClusterParams& params,
                              double lambda, std::size_t cycles) {
  sim::ClusterSimConfig cs;
  cs.n_servers = params.n_servers;
  cs.nu_p = params.nu_p;
  cs.delta = 0.0;
  cs.lambda = lambda;
  cs.up = sim::me_sampler(params.up);
  cs.down = sim::me_sampler(params.down);
  cs.cycles = cycles;
  cs.warmup_cycles = cycles / 10;
  return cs;
}

}  // namespace

int main() {
  bench::banner("Figure 8",
                "failure-handling strategies, crash faults, exp tasks",
                "N=2, nu_p=2, delta=0 (crash), UP=exp(90), DOWN=TPT(T=10, "
                "alpha=1.4, theta=0.2, mean=10)");

  core::ClusterParams params;
  params.delta = 0.0;
  params.down = medist::make_tpt(medist::TptSpec{10, 1.4, 0.2, 10.0});
  const core::ClusterModel model(params);

  const std::size_t cycles = bench::scaled(40000);
  const std::size_t reps = std::max<std::size_t>(
      5, static_cast<std::size_t>(5 * bench::scale_factor()));
  std::printf("# nu_bar = %.2f; simulation: %zu cycles x %zu replications "
              "(paper: 2e5 x 10; set PERFORMA_BENCH_SCALE=5)\n",
              model.mean_service_rate(), cycles, reps);

  std::printf(
      "rho,analytic_nql,discard_nql,discard_ci,resume_nql,restart_nql\n");
  for (double rho = 0.1; rho < 0.85; rho += 0.1) {
    const double lambda = model.lambda_for_rho(rho);
    const double mm1 = core::mm1::mean_queue_length(rho);
    const double analytic = model.solve(lambda).mean_queue_length() / mm1;

    auto run = [&](sim::FailureStrategy s) {
      auto cs = BaseSim(params, lambda, cycles);
      cs.strategy = s;
      // Common random numbers across strategies: paired comparison
      // cancels the enormous repair-time sampling noise.
      cs.seed = 1234 + static_cast<std::uint64_t>(rho * 1000);
      return sim::mean_queue_length_summary(cs, reps);
    };
    const auto discard = run(sim::FailureStrategy::kDiscard);
    const auto resume = run(sim::FailureStrategy::kResumeBack);
    const auto restart = run(sim::FailureStrategy::kRestartBack);

    std::printf("%.1f,%.4f,%.4f,%.4f,%.4f,%.4f\n", rho, analytic,
                discard.mean / mm1, discard.ci_halfwidth / mm1,
                resume.mean / mm1, restart.mean / mm1);
  }

  // Placement study (paper Sec. 4, closing remark).
  std::printf("\n# placement study at rho = 0.6: back-of-queue insertion "
              "should not exceed front-of-queue in mean queue length\n");
  std::printf("strategy,front_nql,back_nql\n");
  const double rho = 0.6;
  const double lambda = model.lambda_for_rho(rho);
  const double mm1 = core::mm1::mean_queue_length(rho);
  for (auto [name, front, back] :
       {std::tuple{"Resume", sim::FailureStrategy::kResumeFront,
                   sim::FailureStrategy::kResumeBack},
        std::tuple{"Restart", sim::FailureStrategy::kRestartFront,
                   sim::FailureStrategy::kRestartBack}}) {
    auto run = [&](sim::FailureStrategy s) {
      auto cs = BaseSim(params, lambda, cycles);
      cs.strategy = s;
      cs.seed = 4321;  // common random numbers across placements
      return sim::mean_queue_length_summary(cs, reps).mean / mm1;
    };
    std::printf("%s,%.4f,%.4f\n", name, run(front), run(back));
  }
  return 0;
}
