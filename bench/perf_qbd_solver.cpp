// Ablation A2: logarithmic reduction vs successive substitution for the
// R-matrix, across repair-time variance and load.
//
// Expected outcome: LR cost is flat (quadratic convergence, ~tens of
// iterations) while SS cost explodes as sp(R) -> 1, i.e. exactly in the
// heavy-tail/high-load regime the paper studies. This is why LR is the
// production default.
#include <benchmark/benchmark.h>

#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"

using namespace performa;

namespace {

map::Mmpp ClusterMmpp(unsigned t_phases) {
  const map::ServerModel server(medist::exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, 2).mmpp();
}

void BM_LogarithmicReduction(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  const double rho = static_cast<double>(state.range(1)) / 100.0;
  const auto mmpp = ClusterMmpp(t);
  const auto blocks = qbd::m_mmpp_1(mmpp, rho * mmpp.mean_rate());
  for (auto _ : state) {
    auto result = qbd::solve_r(blocks);
    benchmark::DoNotOptimize(result.r);
  }
  state.SetLabel("phases=" + std::to_string(blocks.phase_dim()));
}

void BM_SuccessiveSubstitution(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  const double rho = static_cast<double>(state.range(1)) / 100.0;
  const auto mmpp = ClusterMmpp(t);
  const auto blocks = qbd::m_mmpp_1(mmpp, rho * mmpp.mean_rate());
  qbd::SolverOptions opts;
  opts.algorithm = qbd::RAlgorithm::kSuccessiveSubstitution;
  // Loose tolerance keeps the benchmark finite even near sp(R) ~ 1.
  opts.tolerance = 1e-8;
  opts.max_iterations = 2000000;
  unsigned iterations = 0;
  for (auto _ : state) {
    auto result = qbd::solve_r(blocks, opts);
    iterations = result.iterations;
    benchmark::DoNotOptimize(result.r);
  }
  state.counters["ss_iterations"] = iterations;
}

void BM_NewtonShifted(benchmark::State& state) {
  // Third tier of the fallback chain: linear convergence but cheap steps
  // (one LU per iteration), and it keeps contracting where the LR defect
  // stagnates near a blow-up point.
  const unsigned t = static_cast<unsigned>(state.range(0));
  const double rho = static_cast<double>(state.range(1)) / 100.0;
  const auto mmpp = ClusterMmpp(t);
  const auto blocks = qbd::m_mmpp_1(mmpp, rho * mmpp.mean_rate());
  qbd::SolverOptions opts;
  opts.algorithm = qbd::RAlgorithm::kNewtonShifted;
  unsigned iterations = 0;
  const char* winner = "?";
  for (auto _ : state) {
    auto result = qbd::solve_r(blocks, opts);
    iterations = result.iterations;
    winner = qbd::to_string(result.report.winner);
    benchmark::DoNotOptimize(result.r);
  }
  // Near a blow-up point Newton projects a miss and the chain fails over
  // to logarithmic reduction; the label records who actually won.
  state.SetLabel(std::string("winner=") + winner);
  state.counters["iterations"] = iterations;
}

void BM_FullSolution(benchmark::State& state) {
  // End-to-end: R + boundary + mean queue length, the per-point cost of
  // the Fig. 1 sweep.
  const unsigned t = static_cast<unsigned>(state.range(0));
  const auto mmpp = ClusterMmpp(t);
  const auto blocks = qbd::m_mmpp_1(mmpp, 0.7 * mmpp.mean_rate());
  for (auto _ : state) {
    qbd::QbdSolution sol(blocks);
    benchmark::DoNotOptimize(sol.mean_queue_length());
  }
}

}  // namespace

// (T, rho%): exponential repair at moderate load vs TPT at blow-up load.
BENCHMARK(BM_LogarithmicReduction)
    ->Args({1, 50})
    ->Args({5, 50})
    ->Args({10, 50})
    ->Args({10, 70})
    ->Args({10, 90})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SuccessiveSubstitution)
    ->Args({1, 30})
    ->Args({1, 50})
    ->Args({2, 50})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_NewtonShifted)
    ->Args({1, 50})
    ->Args({10, 50})
    ->Args({10, 90})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FullSolution)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
