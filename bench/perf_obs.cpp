// Observability overhead benchmarks: the no-op guarantee, measured.
//
// The obs layer claims that with tracing disabled a PERFORMA_SPAN costs
// one relaxed atomic load and a counter add is one relaxed fetch_add --
// i.e. instrumented hot paths (rsolver tiers, the cluster-simulator
// cycle loop) run at the same speed as before instrumentation. The
// BM_RSolver*/BM_ClusterSim* cases here exercise the real instrumented
// code with tracing off; bench_compare.py holds them (and the
// pre-existing solver/sim benchmarks, which now also run instrumented
// code) to the CI regression threshold. The micro cases bound the
// per-operation costs themselves.
#include <benchmark/benchmark.h>

#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "qbd/solution.h"
#include "sim/cluster_sim.h"

using namespace performa;

namespace {

map::Mmpp ClusterMmpp(unsigned t_phases) {
  const map::ServerModel server(medist::exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, 2).mmpp();
}

// --- micro: per-operation costs ---------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  obs::disable_trace();
  for (auto _ : state) {
    PERFORMA_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
}

void BM_SpanEnabledMemory(benchmark::State& state) {
  obs::enable_trace_memory();
  std::size_t n = 0;
  for (auto _ : state) {
    PERFORMA_SPAN("bench.enabled");
    // Drain periodically (outside the timed region) so the in-memory
    // sink does not grow with the iteration count.
    if (++n == 8192) {
      n = 0;
      state.PauseTiming();
      (void)obs::drain_memory_trace();
      state.ResumeTiming();
    }
  }
  obs::disable_trace();
  (void)obs::drain_memory_trace();
}

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
  }
  benchmark::DoNotOptimize(c.value());
}

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& h = obs::histogram("bench.histogram");
  double v = 1e-3;
  for (auto _ : state) {
    h.record(v);
    v += 1e-6;
  }
  benchmark::DoNotOptimize(h.count());
}

// A log site below the active level is the telemetry analogue of a
// disabled span: one relaxed atomic load and a predictable branch.
// This is the cost every PERFORMA_LOG(kDebug, ...) site adds to a hot
// path at the default (info) level -- the ~1 ns claim, bench-gated.
void BM_LogBelowLevel(benchmark::State& state) {
  obs::set_log_level(obs::LogLevel::kError);
  for (auto _ : state) {
    PERFORMA_LOG(kInfo, "bench.log.disabled").kv("i", 1);
    benchmark::ClobberMemory();
  }
  obs::set_log_level(obs::LogLevel::kInfo);
}

// An admitted-level site that the token bucket has exhausted: level
// gate, the site's static init check, and one failed admit. The cost a
// hot *warn* loop pays once its burst is spent.
void BM_LogSiteExhausted(benchmark::State& state) {
  obs::set_log_file("/dev/null");  // the burst's 16 lines go nowhere
  for (auto _ : state) {
    PERFORMA_LOG(kWarn, "bench.log.exhausted").kv("i", 1);
    benchmark::ClobberMemory();
  }
  obs::reset_log_for_test();
}

// Rendering the Prometheus exposition for a realistically sized
// registry: what one /metrics scrape costs the daemon's IO thread.
void BM_PromEncode(benchmark::State& state) {
  for (int i = 0; i < 40; ++i) {
    obs::counter("bench.prom.c" + std::to_string(i)).add(i);
  }
  for (int i = 0; i < 10; ++i) {
    obs::gauge("bench.prom.g" + std::to_string(i)).set(i * 0.5);
    obs::Histogram& h = obs::histogram("bench.prom.h" + std::to_string(i));
    for (int s = 0; s < 32; ++s) h.record(0.001 * (1 << (s % 12)));
  }
  for (auto _ : state) {
    std::string text = obs::prometheus_metrics();
    benchmark::DoNotOptimize(text.data());
  }
}

// --- macro: instrumented hot loops with tracing off -------------------

void BM_RSolverTracingOff(benchmark::State& state) {
  obs::disable_trace();
  const auto mmpp = ClusterMmpp(static_cast<unsigned>(state.range(0)));
  const auto blocks = qbd::m_mmpp_1(mmpp, 0.7 * mmpp.mean_rate());
  for (auto _ : state) {
    auto result = qbd::solve_r(blocks);
    benchmark::DoNotOptimize(result.r);
  }
}

void BM_ClusterSimTracingOff(benchmark::State& state) {
  obs::disable_trace();
  sim::ClusterSimConfig cfg;
  cfg.n_servers = 2;
  cfg.nu_p = 2.0;
  cfg.delta = 0.2;
  cfg.lambda = 2.0;
  cfg.up = sim::me_sampler(medist::exponential_from_mean(90.0));
  cfg.down = sim::me_sampler(medist::exponential_from_mean(10.0));
  cfg.cycles = static_cast<std::size_t>(state.range(0));
  cfg.warmup_cycles = cfg.cycles / 10;
  cfg.seed = 1234;
  for (auto _ : state) {
    auto result = sim::simulate_cluster(cfg);
    benchmark::DoNotOptimize(result.mean_queue_length);
  }
  state.SetLabel("cycles=" + std::to_string(cfg.cycles));
}

BENCHMARK(BM_SpanDisabled);
BENCHMARK(BM_SpanEnabledMemory);
BENCHMARK(BM_CounterAdd);
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_LogBelowLevel);
BENCHMARK(BM_LogSiteExhausted);
BENCHMARK(BM_PromEncode);
BENCHMARK(BM_RSolverTracingOff)->Arg(5)->Arg(10);
BENCHMARK(BM_ClusterSimTracingOff)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
