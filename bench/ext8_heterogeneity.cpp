// Extension 8: heterogeneous clusters. The paper assumes statistically
// identical nodes; the Kronecker construction removes that assumption.
//
// Design study: three clusters with identical aggregate capacity
// (nu_bar = 3.68) and identical per-node repair behaviour, but the
// capacity split differently across nodes:
//   (a) 2 x medium   (the paper's cluster),
//   (b) 1 fast + 1 slow (asymmetric),
//   (c) 4 x small    (more, weaker nodes).
//
// Expected shape: at equal utilization, more nodes = more redundancy =
// smaller queue under heavy-tailed repairs (each blow-up boundary needs
// one more simultaneous long repair); the asymmetric pair is worse than
// the symmetric pair at high load because losing the fast node removes
// most of the capacity.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mm1.h"
#include "map/kron_aggregate.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"

using namespace performa;

int main() {
  bench::banner("Extension (heterogeneous clusters)",
                "same capacity, different node mixes",
                "nu_bar = 3.68 in all cases; UP=exp(90), DOWN=TPT(T=5, "
                "alpha=1.4, theta=0.2, mean=10), delta=0.2");

  const auto repair = medist::make_tpt(medist::TptSpec{5, 1.4, 0.2, 10.0});
  const auto up = medist::exponential_from_mean(90.0);
  auto node = [&](double nu_p) {
    return map::ServerModel(up, repair, nu_p, 0.2);
  };

  struct Mix {
    const char* name;
    map::Mmpp mmpp;
  };
  // Homogeneous mixes use the lumped state space (126 states for 4x vs
  // 1296 in Kronecker form); the asymmetric pair requires the full
  // heterogeneous product.
  const std::vector<Mix> mixes{
      {"2x2.0", map::LumpedAggregate(node(2.0), 2).mmpp()},
      {"3.0+1.0", map::heterogeneous_aggregate({node(3.0), node(1.0)})},
      {"4x1.0", map::LumpedAggregate(node(1.0), 4).mmpp()},
  };
  for (const auto& m : mixes) {
    std::printf("# %s: nu_bar = %.4f, %zu phases\n", m.name,
                m.mmpp.mean_rate(), m.mmpp.dim());
  }

  std::printf("rho");
  for (const auto& m : mixes) std::printf(",nql_%s", m.name);
  std::printf("\n");
  for (double rho = 0.1; rho < 0.95; rho += 0.05) {
    std::printf("%.2f", rho);
    for (const auto& m : mixes) {
      const double lambda = rho * m.mmpp.mean_rate();
      const double nql =
          qbd::QbdSolution(qbd::m_mmpp_1(m.mmpp, lambda)).mean_queue_length() /
          core::mm1::mean_queue_length(rho);
      std::printf(",%.4f", nql);
    }
    std::printf("\n");
  }
  return 0;
}
