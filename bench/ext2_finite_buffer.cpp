// Extension 2 (paper Sec. 2.4, "Finite task queue at the dispatcher"):
// ME/MMPP/1/K. Sweeps the buffer size K at fixed utilization and reports
// the mean queue length and the blocking probability.
//
// Expected shape: for exponential repairs (T=1) modest buffers already
// remove all blocking; for heavy-tailed repairs (T=9) the blocking
// probability decays only polynomially with K inside a blow-up region --
// "just add buffer" does not work there -- while the qualitative blow-up
// in the mean persists for every large K (the paper's remark).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/finite.h"

using namespace performa;

namespace {

map::Mmpp Cluster(unsigned t) {
  const map::ServerModel server(medist::exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{t, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, 2).mmpp();
}

}  // namespace

int main() {
  bench::banner("Extension (Sec. 2.4)", "finite dispatcher buffer (K sweep)",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(T in {1,9}), "
                "rho = 0.7");

  const auto exp_repair = Cluster(1);
  const auto tpt_repair = Cluster(9);
  const double rho = 0.7;

  std::printf("K,mean_T1,block_T1,mean_T9,block_T9\n");
  for (std::size_t cap : {10u, 20u, 50u, 100u, 200u, 500u, 1000u, 2000u,
                          5000u}) {
    const qbd::FiniteQbdSolution a(
        qbd::m_mmpp_1(exp_repair, rho * exp_repair.mean_rate()), cap);
    const qbd::FiniteQbdSolution b(
        qbd::m_mmpp_1(tpt_repair, rho * tpt_repair.mean_rate()), cap);
    std::printf("%zu,%.4f,%.6e,%.4f,%.6e\n", cap, a.mean_queue_length(),
                a.blocking_probability(), b.mean_queue_length(),
                b.blocking_probability());
  }
  return 0;
}
