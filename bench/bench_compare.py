#!/usr/bin/env python3
"""Merge google-benchmark JSON outputs and gate on regressions.

Subcommands:
  merge OUT IN...        merge the `benchmarks` arrays of several
                         --benchmark_format=json files into OUT (the first
                         input's `context` is kept, annotated per-benchmark
                         with its source file).
  compare BASELINE NEW   compare NEW against BASELINE; exit 1 when any
                         benchmark slowed down by more than --threshold
                         (relative, default 0.25) beyond --abs-floor-ns.
  selftest BASELINE      prove the gate works: synthesize a run 2x the
                         threshold slower than BASELINE and require compare
                         to fail it, then a within-tolerance run and require
                         compare to pass it. Exits non-zero if either leg
                         misbehaves.

Only stdlib; aggregate rows (mean/median/stddev) are ignored so repeated
runs do not double-count. Benchmarks present on one side only are reported
but never fail the gate (new benchmarks must be able to land, and pruned
ones to leave, without editing the baseline in the same commit).
"""
import argparse
import copy
import json
import sys


def load_benchmarks(path):
    with open(path) as fh:
        doc = json.load(fh)
    rows = {}
    for row in doc.get("benchmarks", []):
        # Skip aggregate rows; keep one entry per benchmark name.
        if row.get("run_type") == "aggregate":
            continue
        rows[row["name"]] = row
    return doc, rows


def cmd_merge(args):
    merged = None
    for path in args.inputs:
        doc, _ = load_benchmarks(path)
        for row in doc.get("benchmarks", []):
            row.setdefault("source_file", path)
        if merged is None:
            merged = doc
        else:
            merged["benchmarks"].extend(doc.get("benchmarks", []))
    if merged is None:
        print("bench_compare: merge needs at least one input", file=sys.stderr)
        return 2
    with open(args.out, "w") as fh:
        json.dump(merged, fh, indent=1)
        fh.write("\n")
    print(f"merged {len(args.inputs)} file(s), "
          f"{len(merged['benchmarks'])} benchmark rows -> {args.out}")
    return 0


def compare_rows(base_rows, new_rows, threshold, abs_floor_ns, metric):
    """Return (regressions, improvements, missing, added) lists."""
    regressions, improvements, missing, added = [], [], [], []
    for name, base in base_rows.items():
        if name not in new_rows:
            missing.append(name)
            continue
        old = float(base[metric])
        new = float(new_rows[name][metric])
        if old <= 0:
            continue
        # Below the absolute noise floor, timer jitter dwarfs any signal.
        if old < abs_floor_ns and new < abs_floor_ns:
            continue
        rel = (new - old) / old
        if rel > threshold:
            regressions.append((name, old, new, rel))
        elif rel < -threshold:
            improvements.append((name, old, new, rel))
    for name in new_rows:
        if name not in base_rows:
            added.append(name)
    return regressions, improvements, missing, added


def cmd_compare(args):
    _, base_rows = load_benchmarks(args.baseline)
    _, new_rows = load_benchmarks(args.new)
    regressions, improvements, missing, added = compare_rows(
        base_rows, new_rows, args.threshold, args.abs_floor_ns, args.metric)

    def fmt(rows, label, sign):
        for name, old, new, rel in rows:
            print(f"  {label} {name}: {old:.0f} ns -> {new:.0f} ns "
                  f"({sign}{abs(rel) * 100:.1f}%)")

    print(f"compared {len(base_rows)} baseline benchmark(s) "
          f"against {len(new_rows)} (threshold {args.threshold * 100:.0f}%, "
          f"noise floor {args.abs_floor_ns:.0f} ns, metric {args.metric})")
    if improvements:
        print(f"{len(improvements)} improvement(s) beyond threshold:")
        fmt(improvements, "FASTER", "-")
    if missing:
        print(f"{len(missing)} baseline benchmark(s) not in this run "
              f"(not failing the gate): {', '.join(sorted(missing))}")
    if added:
        print(f"{len(added)} new benchmark(s) without a baseline "
              f"(not failing the gate): {', '.join(sorted(added))}")
    if regressions:
        print(f"{len(regressions)} REGRESSION(S):")
        fmt(regressions, "SLOWER", "+")
        return 1
    print("no regressions beyond threshold")
    return 0


def cmd_selftest(args):
    _, base_rows = load_benchmarks(args.baseline)
    if not base_rows:
        print("selftest: baseline holds no benchmarks", file=sys.stderr)
        return 2

    def synthesize(factor):
        rows = copy.deepcopy(base_rows)
        for row in rows.values():
            row[args.metric] = float(row[args.metric]) * factor
        return rows

    # A slowdown at 2x the threshold must trip the gate...
    slow = synthesize(1.0 + 2.0 * args.threshold)
    r, _, _, _ = compare_rows(base_rows, slow, args.threshold,
                              args.abs_floor_ns, args.metric)
    if not r:
        print("selftest FAILED: synthetic slowdown was not detected",
              file=sys.stderr)
        return 1
    # ... and a slowdown at half the threshold must pass.
    ok = synthesize(1.0 + 0.5 * args.threshold)
    r, _, _, _ = compare_rows(base_rows, ok, args.threshold,
                              args.abs_floor_ns, args.metric)
    if r:
        print("selftest FAILED: within-tolerance run was flagged",
              file=sys.stderr)
        return 1
    print(f"selftest ok: +{2 * args.threshold * 100:.0f}% fails the gate, "
          f"+{0.5 * args.threshold * 100:.0f}% passes it")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_merge = sub.add_parser("merge")
    p_merge.add_argument("out")
    p_merge.add_argument("inputs", nargs="+")

    def tolerance_args(p):
        p.add_argument("--threshold", type=float, default=0.25,
                       help="relative slowdown that fails the gate")
        p.add_argument("--abs-floor-ns", type=float, default=100.0,
                       help="ignore benchmarks faster than this on both "
                            "sides (timer noise)")
        p.add_argument("--metric", default="cpu_time",
                       choices=["cpu_time", "real_time"])

    p_compare = sub.add_parser("compare")
    p_compare.add_argument("baseline")
    p_compare.add_argument("new")
    tolerance_args(p_compare)

    p_selftest = sub.add_parser("selftest")
    p_selftest.add_argument("baseline")
    tolerance_args(p_selftest)

    args = parser.parse_args()
    if args.cmd == "merge":
        return cmd_merge(args)
    if args.cmd == "compare":
        return cmd_compare(args)
    return cmd_selftest(args)


if __name__ == "__main__":
    sys.exit(main())
