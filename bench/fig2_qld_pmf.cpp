// Figure 2: probability mass function of the queue length (log-log) for
// the 2-node cluster with TPT(T=9) repair times at rho = 0.1, 0.3, 0.7,
// plus the M/M/1 pmf at rho = 0.7 for comparison.
//
// Expected shape (paper): geometric decay at rho=0.1 (like M/M/1);
// truncated power laws at rho=0.3 and rho=0.7 with different slopes
// (beta_2 = 1.8 vs beta_1 = 1.4 for alpha = 1.4).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"

using namespace performa;

int main() {
  bench::banner("Figure 2", "queue-length pmf at rho = 0.1 / 0.3 / 0.7",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(T=9, "
                "alpha=1.4, theta=0.2, mean=10)");

  core::ClusterParams p;
  p.down = medist::make_tpt(medist::TptSpec{9, 1.4, 0.2, 10.0});
  const core::ClusterModel model(p);

  std::printf("# expected mid-range slopes: rho=0.3 -> -%.1f, "
              "rho=0.7 -> -%.1f\n",
              core::tail_exponent(2, 1.4), core::tail_exponent(1, 1.4));

  const std::vector<double> rhos{0.1, 0.3, 0.7};
  const std::size_t k_max = 10000;

  std::vector<linalg::Vector> pmfs;
  for (double rho : rhos) {
    pmfs.push_back(model.solve(model.lambda_for_rho(rho)).pmf_upto(k_max));
  }

  std::printf("q,pmf_rho0.1,pmf_rho0.3,pmf_rho0.7,pmf_mm1_rho0.7\n");
  // Log-spaced sample points, as in the paper's log-log plot.
  for (std::size_t k = 1; k <= k_max;
       k = std::max(k + 1, static_cast<std::size_t>(k * 1.25))) {
    std::printf("%zu", k);
    for (const auto& pmf : pmfs) std::printf(",%.6e", pmf[k]);
    std::printf(",%.6e\n", core::mm1::pmf(0.7, k));
  }
  return 0;
}
