// Figure 7: validation of the analytic model by simulation.
// Four series over utilization:
//   (1) the exact matrix-geometric M/2-Burst/1 solution,
//   (2) a simulation of exactly that load-independent process (crosses),
//   (3) a simulation of the physical multiprocessor system (circles),
//   (4) the M/M/1 mean for reference,
// plus (5) the level-dependent analytic extension (ablation A3), which
// should land between (1) and (3).
//
// Expected shape (paper): (2) matches (1); (3) exceeds (1) at small rho
// (a lone task cannot use both servers) and converges to it as rho grows.
// Following the paper, T = 5 and theta = 0.5 keep the repair tail
// samplable in reasonable simulated time.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"
#include "sim/cluster_sim.h"
#include "sim/mmpp_queue_sim.h"

using namespace performa;

int main() {
  bench::banner("Figure 7", "analytic model vs simulations",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(T=5, "
                "alpha=1.4, theta=0.5, mean=10)");

  core::ClusterParams params;
  params.down = medist::make_tpt(medist::TptSpec{5, 1.4, 0.5, 10.0});
  const core::ClusterModel model(params);

  const std::size_t cycles = bench::scaled(20000);
  const std::size_t reps = std::max<std::size_t>(
      3, static_cast<std::size_t>(3 * bench::scale_factor()));
  std::printf("# simulation: %zu UP/DOWN cycles per run, %zu replications "
              "(paper: 2e5 cycles; set PERFORMA_BENCH_SCALE=10)\n",
              cycles, reps);

  // Each rho is one supervised point (the expensive stage of this figure
  // is simulation, so the per-point timeout/retry protection and
  // checkpoint reuse matter most here). The worker also reports the
  // final RNG-stream position of the M/MMPP/1 run, persisted in the
  // checkpoint for replay audits.
  std::vector<runner::SweepPointSpec> points;
  for (double rho = 0.1; rho < 0.95; rho += 0.1) {
    char id[32];
    std::snprintf(id, sizeof id, "rho=%.1f", rho);
    points.push_back({id, [&model, &params, cycles, reps, rho]() {
      runner::PointResult out;
      const double lambda = model.lambda_for_rho(rho);

      out.metrics.emplace_back("analytic",
                               model.solve(lambda).mean_queue_length());
      out.metrics.emplace_back(
          "analytic_ld",
          model.solve_load_dependent(lambda).mean_queue_length());

      // Load-independent M/MMPP/1 simulation.
      sim::MmppQueueSimConfig mq;
      mq.lambda = lambda;
      mq.horizon = 50.0 * static_cast<double>(cycles);
      mq.warmup = 0.1 * mq.horizon;
      mq.seed = 7001 + static_cast<std::uint64_t>(rho * 100);
      const auto mmpp_sim =
          sim::simulate_mmpp_queue(model.aggregate().mmpp(), mq);
      out.metrics.emplace_back("sim_mmpp", mmpp_sim.mean_queue_length);
      out.rng_state = mmpp_sim.final_rng_state;

      // Multiprocessor simulation.
      sim::ClusterSimConfig cs;
      cs.lambda = lambda;
      cs.up = sim::me_sampler(params.up);
      cs.down = sim::me_sampler(params.down);
      cs.cycles = cycles;
      cs.warmup_cycles = cycles / 10;
      cs.seed = 9001 + static_cast<std::uint64_t>(rho * 100);
      const auto mp = sim::mean_queue_length_summary(cs, reps);
      out.metrics.emplace_back("sim_multiproc", mp.mean);
      out.metrics.emplace_back("sim_multiproc_ci", mp.ci_halfwidth);

      out.metrics.emplace_back("mm1", core::mm1::mean_queue_length(rho));
      return out;
    }});
  }
  runner::install_signal_handlers();
  const auto sweep = runner::run_sweep("fig7-sim-validation", points,
                                       bench::sweep_options_from_env());

  std::printf(
      "rho,analytic,sim_mmpp,sim_multiproc,sim_multiproc_ci,analytic_level_"
      "dependent,mm1\n");
  for (const auto& pt : sweep.points) {
    std::printf("%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", pt.id.c_str() + 4,
                pt.metric("analytic"), pt.metric("sim_mmpp"),
                pt.metric("sim_multiproc"), pt.metric("sim_multiproc_ci"),
                pt.metric("analytic_ld"), pt.metric("mm1"));
  }
  return bench::finish_sweep("fig7-sim-validation", sweep);
}
