// Shared plumbing for the figure-reproduction harnesses.
//
// Every fig*_ binary prints a self-describing header (which figure of the
// paper it regenerates, with the parameters) followed by CSV rows, so the
// output can be piped into any plotting tool.
//
// Simulation-backed figures accept the environment variable
// PERFORMA_BENCH_SCALE (default 1): cycles and replications are multiplied
// by it. Scale 10 reproduces the paper's 2e5-cycle / 10-replication runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace performa::bench {

/// Multiplier for simulation effort (cycles, replications).
inline double scale_factor() {
  const char* env = std::getenv("PERFORMA_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline std::size_t scaled(std::size_t base) {
  return static_cast<std::size_t>(static_cast<double>(base) * scale_factor());
}

/// Print the standard experiment banner.
inline void banner(const char* figure, const char* title,
                   const char* params) {
  std::printf("# %s -- %s\n", figure, title);
  std::printf("# paper: Schwefel & Antonios, \"Performability Models for "
              "Multi-Server Systems with High-Variance Repair Durations\", "
              "DSN 2007\n");
  std::printf("# parameters: %s\n", params);
  if (scale_factor() != 1.0) {
    std::printf("# PERFORMA_BENCH_SCALE=%g\n", scale_factor());
  }
}

}  // namespace performa::bench
