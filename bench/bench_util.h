// Shared plumbing for the figure-reproduction harnesses.
//
// Every fig*_ binary prints a self-describing header (which figure of the
// paper it regenerates, with the parameters) followed by CSV rows, so the
// output can be piped into any plotting tool.
//
// Simulation-backed figures accept the environment variable
// PERFORMA_BENCH_SCALE (default 1): cycles and replications are multiplied
// by it. Scale 10 reproduces the paper's 2e5-cycle / 10-replication runs.
//
// Figures ported to the supervised runner (fig1, fig3, fig7) additionally
// honour:
//   PERFORMA_CHECKPOINT     checkpoint file (completed points appended)
//   PERFORMA_RESUME=1       reuse completed points from the checkpoint
//   PERFORMA_POINT_TIMEOUT  per-point wall-clock budget in seconds
//   PERFORMA_RUNNER_ISOLATE=0  run points in-process (no fork/timeout)
//   PERFORMA_GOLDEN         golden checkpoint to regression-compare against
//   PERFORMA_JOBS           points in flight at once (default: one per
//                           hardware thread; the CSV is identical either way)
//   PERFORMA_PROGRESS=1     stderr line per completed point
//   PERFORMA_TRACE          trace_event JSONL trace of the run (Perfetto)
//   PERFORMA_METRICS        metrics-registry JSON snapshot written at the
//                           end of the sweep
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "linalg/kernels.h"
#include "linalg/pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/golden.h"
#include "runner/sweep.h"

namespace performa::bench {

/// Multiplier for simulation effort (cycles, replications).
inline double scale_factor() {
  const char* env = std::getenv("PERFORMA_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline std::size_t scaled(std::size_t base) {
  return static_cast<std::size_t>(static_cast<double>(base) * scale_factor());
}

/// Sweep-runner options from the PERFORMA_* environment (see file header).
/// Also arms tracing/metrics output from $PERFORMA_TRACE/$PERFORMA_METRICS
/// so every runner-backed figure harness is traceable without code changes.
inline runner::SweepOptions sweep_options_from_env() {
  obs::init_trace_from_env();
  obs::init_metrics_from_env();
  runner::SweepOptions opts;
  opts.jobs = 0;  // one worker per hardware thread unless overridden
  if (const char* v = std::getenv("PERFORMA_CHECKPOINT")) {
    opts.checkpoint_path = v;
  }
  if (const char* v = std::getenv("PERFORMA_RESUME")) {
    opts.resume = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("PERFORMA_POINT_TIMEOUT")) {
    opts.timeout_seconds = std::atof(v);
  }
  if (const char* v = std::getenv("PERFORMA_RUNNER_ISOLATE")) {
    opts.isolate = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("PERFORMA_JOBS")) {
    const int jobs = std::atoi(v);
    if (jobs > 0) opts.jobs = static_cast<unsigned>(jobs);
  }
  if (const char* v = std::getenv("PERFORMA_PROGRESS")) {
    opts.progress = std::atoi(v) != 0;
  }
  if (!opts.isolate) opts.jobs = 1;  // inline mode is sequential
  return opts;
}

/// Post-sweep epilogue: report degraded points, honour PERFORMA_GOLDEN,
/// and map interruption to the conventional exit code. Returns the
/// process exit status (0 ok, 3 golden mismatch, 130 interrupted).
inline int finish_sweep(const char* name, const runner::SweepResult& sweep) {
  obs::flush_trace();
  obs::write_metrics_if_configured();
  for (const auto& pt : sweep.points) {
    if (pt.outcome != runner::Outcome::kOk) {
      std::printf("# degraded %s: %s after %u attempt(s): %s\n",
                  pt.id.c_str(), runner::to_string(pt.outcome), pt.attempts,
                  pt.message.c_str());
    }
  }
  if (sweep.interrupted) {
    std::fprintf(stderr,
                 "%s: sweep interrupted; checkpoint flushed, set "
                 "PERFORMA_RESUME=1 to continue\n",
                 name);
    return 130;
  }
  if (const char* g = std::getenv("PERFORMA_GOLDEN")) {
    const auto golden = runner::load_checkpoint(g);
    runner::SweepCheckpoint actual;
    actual.sweep_name = name;
    actual.points = sweep.points;
    const auto report = runner::compare_to_golden(golden, actual);
    std::fprintf(stderr, "%s", report.to_string().c_str());
    if (!report.ok()) return 3;
  }
  return 0;
}

/// Print the standard experiment banner.
inline void banner(const char* figure, const char* title,
                   const char* params) {
  std::printf("# %s -- %s\n", figure, title);
  std::printf("# paper: Schwefel & Antonios, \"Performability Models for "
              "Multi-Server Systems with High-Variance Repair Durations\", "
              "DSN 2007\n");
  std::printf("# parameters: %s\n", params);
  // Numeric provenance: backend and pool width are bit-transparent, so a
  // golden byte-diff only needs PERFORMA_THREADS pinned, not the machine.
  std::printf("# kernel: %s, threads: %u\n",
              linalg::to_string(linalg::kernel_backend()),
              linalg::pool_threads());
  if (scale_factor() != 1.0) {
    std::printf("# PERFORMA_BENCH_SCALE=%g\n", scale_factor());
  }
}

}  // namespace performa::bench
