#!/usr/bin/env python3
"""Aggregate a performa trace_event JSONL trace into per-span statistics.

The obs layer writes Chrome trace_event files: a `[` header line, then
one complete-duration (`ph:"X"`) record per line, each line terminated
with a comma, closing `]` optional (a SIGKILLed process still leaves a
loadable file). This tool folds such a trace -- including merged worker
fragments from a parallel sweep -- into a per-span-name table: count,
total/mean/percentile wall time, total CPU time, and the number of
distinct processes that recorded the span.

Usage:
    trace_summary.py TRACE.jsonl [--csv] [--sort total|mean|count|name]
    trace_summary.py selftest

stdlib only; no third-party dependencies.
"""

import json
import math
import os
import sys


def parse_trace_lines(lines):
    """Yield trace_event record dicts from JSONL lines.

    Skips the array brackets and anything structurally torn (a worker
    SIGKILLed mid-write leaves at most one such line per fragment).
    """
    for line in lines:
        line = line.strip()
        if not line or line in ("[", "]"):
            continue
        if line.endswith(","):
            line = line[:-1]
        if not (line.startswith("{") and line.endswith("}")):
            continue  # torn tail
        try:
            record = json.loads(line)
        except ValueError:
            continue  # damaged record: skip, do not abort the summary
        if record.get("ph") == "X":
            yield record


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def summarize(records):
    """Fold records into {name: stats} with durations in milliseconds."""
    spans = {}
    for rec in records:
        name = rec.get("name", "?")
        entry = spans.setdefault(
            name, {"durs_us": [], "cpu_us": 0.0, "pids": set()}
        )
        entry["durs_us"].append(float(rec.get("dur", 0.0)))
        entry["cpu_us"] += float(rec.get("args", {}).get("cpu_us", 0.0))
        entry["pids"].add(rec.get("pid", 0))

    table = []
    for name, entry in spans.items():
        durs = sorted(entry["durs_us"])
        total_us = sum(durs)
        table.append(
            {
                "name": name,
                "count": len(durs),
                "total_ms": total_us / 1e3,
                "mean_ms": total_us / len(durs) / 1e3,
                "p50_ms": percentile(durs, 0.50) / 1e3,
                "p90_ms": percentile(durs, 0.90) / 1e3,
                "p99_ms": percentile(durs, 0.99) / 1e3,
                "cpu_ms": entry["cpu_us"] / 1e3,
                "pids": len(entry["pids"]),
            }
        )
    return table


COLUMNS = ("name", "count", "total_ms", "mean_ms", "p50_ms", "p90_ms",
           "p99_ms", "cpu_ms", "pids")


def render(table, sort_key="total_ms", csv=False):
    rows = sorted(
        table,
        key=lambda r: r[sort_key],
        reverse=sort_key != "name",
    )
    out = []
    if csv:
        out.append(",".join(COLUMNS))
        for r in rows:
            out.append(",".join(
                r["name"] if c == "name"
                else str(r[c]) if c in ("count", "pids")
                else "%.3f" % r[c]
                for c in COLUMNS
            ))
    else:
        out.append("%-28s %8s %12s %10s %10s %10s %10s %12s %5s" % (
            "span", "count", "total_ms", "mean_ms", "p50_ms", "p90_ms",
            "p99_ms", "cpu_ms", "pids"))
        for r in rows:
            out.append(
                "%-28s %8d %12.3f %10.3f %10.3f %10.3f %10.3f %12.3f %5d"
                % (r["name"], r["count"], r["total_ms"], r["mean_ms"],
                   r["p50_ms"], r["p90_ms"], r["p99_ms"], r["cpu_ms"],
                   r["pids"]))
    return "\n".join(out)


def selftest():
    """Verify parsing, torn-tail tolerance, and the aggregation math."""
    lines = [
        "[",
        '{"name":"a","cat":"performa","ph":"X","ts":0,"dur":1000.0,'
        '"pid":1,"tid":1,"args":{"cpu_us":800.0}},',
        '{"name":"a","cat":"performa","ph":"X","ts":5,"dur":3000.0,'
        '"pid":2,"tid":2,"args":{"cpu_us":2500.0}},',
        '{"name":"b","cat":"performa","ph":"X","ts":9,"dur":500.0,'
        '"pid":1,"tid":1,"args":{"cpu_us":100.0}},',
        # Metadata-style record with a different phase: must be ignored.
        '{"name":"meta","ph":"M","pid":1},',
        # Torn tail, as left by a SIGKILLed worker mid-write.
        '{"name":"torn","ph":"X","pi',
    ]
    table = summarize(parse_trace_lines(lines))
    by_name = {r["name"]: r for r in table}

    assert set(by_name) == {"a", "b"}, by_name
    a = by_name["a"]
    assert a["count"] == 2, a
    assert abs(a["total_ms"] - 4.0) < 1e-9, a
    assert abs(a["mean_ms"] - 2.0) < 1e-9, a
    assert abs(a["p50_ms"] - 1.0) < 1e-9, a  # nearest-rank: first of two
    assert abs(a["p99_ms"] - 3.0) < 1e-9, a
    assert abs(a["cpu_ms"] - 3.3) < 1e-9, a
    assert a["pids"] == 2, a
    b = by_name["b"]
    assert b["count"] == 1 and b["pids"] == 1, b

    # Sorting: 'a' dominates by total, 'b' comes first by name.
    text = render(table, sort_key="total_ms")
    lines_out = text.splitlines()
    assert lines_out[1].startswith("a "), text
    csv_text = render(table, sort_key="name", csv=True)
    assert csv_text.splitlines()[0] == ",".join(COLUMNS), csv_text
    assert csv_text.splitlines()[1].startswith("a,2,4.000"), csv_text

    # Empty / header-only traces summarize to an empty table.
    assert summarize(parse_trace_lines(["[", "]"])) == []
    print("trace_summary selftest: ok")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "selftest":
        return selftest()
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 1:
        sys.stderr.write(__doc__)
        return 2
    csv = "--csv" in opts
    sort_key = "total_ms"
    for opt in opts:
        if opt.startswith("--sort="):
            key = opt.split("=", 1)[1]
            mapping = {"total": "total_ms", "mean": "mean_ms",
                       "count": "count", "name": "name"}
            if key not in mapping:
                sys.stderr.write("unknown sort key: %s\n" % key)
                return 2
            sort_key = mapping[key]
        elif opt not in ("--csv",):
            sys.stderr.write("unknown option: %s\n" % opt)
            return 2
    try:
        with open(args[0], "r") as fh:
            table = summarize(parse_trace_lines(fh))
    except OSError as e:
        sys.stderr.write("trace_summary: %s\n" % e)
        return 1
    print(render(table, sort_key=sort_key, csv=csv))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. `trace_summary.py t.jsonl | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(128 + 13)  # die as SIGPIPE would have us die
