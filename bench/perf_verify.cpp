// Ablation: what does certifying an answer cost?
//
// The trust layer grades every solving QbdSolution with six a posteriori
// checks (see src/qbd/trust.h). This harness measures that verification
// against the full solve it is amortized over, at the sizes and loads the
// paper's sweeps actually use. Expected outcome: the warm-path overhead
// (certified solve vs trust-disabled solve) stays under ~5% -- the checks
// are O(m^2)-O(m^3) with tiny constants while the solve is iterated
// O(m^3) -- and the verify-only cost shows the a posteriori re-check a
// rehydrated cache hit pays.
#include <benchmark/benchmark.h>

#include "map/lumped_aggregate.h"
#include "medist/tpt.h"
#include "qbd/solution.h"
#include "qbd/trust.h"

using namespace performa;

namespace {

map::Mmpp ClusterMmpp(unsigned t_phases) {
  const map::ServerModel server(medist::exponential_from_mean(90.0),
                                medist::make_tpt(
                                    medist::TptSpec{t_phases, 1.4, 0.2, 10.0}),
                                2.0, 0.2);
  return map::LumpedAggregate(server, 2).mmpp();
}

// Full solve with the default policy: verification included, the number
// the other two benchmarks are compared against.
void BM_CertifiedSolve(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  const double rho = static_cast<double>(state.range(1)) / 100.0;
  const auto mmpp = ClusterMmpp(t);
  const auto blocks = qbd::m_mmpp_1(mmpp, rho * mmpp.mean_rate());
  for (auto _ : state) {
    qbd::QbdSolution sol(blocks);
    benchmark::DoNotOptimize(sol.trust().verdict);
  }
  state.SetLabel("phases=" + std::to_string(blocks.phase_dim()));
}

// The same solve with trust disabled: the baseline that isolates the
// verification overhead on the warm (certified-first-try) path.
void BM_UnverifiedSolve(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  const double rho = static_cast<double>(state.range(1)) / 100.0;
  const auto mmpp = ClusterMmpp(t);
  const auto blocks = qbd::m_mmpp_1(mmpp, rho * mmpp.mean_rate());
  qbd::SolverOptions opts;
  opts.trust.enabled = false;
  for (auto _ : state) {
    qbd::QbdSolution sol(blocks, opts);
    benchmark::DoNotOptimize(sol.mean_queue_length());
  }
}

// Verification alone on an already-solved answer: the incremental cost of
// re-certifying a rehydrated solution against its generator blocks.
void BM_VerifyOnly(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  const double rho = static_cast<double>(state.range(1)) / 100.0;
  const auto mmpp = ClusterMmpp(t);
  const auto blocks = qbd::m_mmpp_1(mmpp, rho * mmpp.mean_rate());
  qbd::QbdSolution sol(blocks);
  for (auto _ : state) {
    const qbd::TrustReport& trust = sol.verify(blocks);
    benchmark::DoNotOptimize(trust.verdict);
  }
}

}  // namespace

// (T, rho%): small exponential-repair model at moderate load through the
// heavy-tail TPT model at blow-up load.
BENCHMARK(BM_CertifiedSolve)
    ->Args({1, 50})
    ->Args({10, 50})
    ->Args({10, 90})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_UnverifiedSolve)
    ->Args({1, 50})
    ->Args({10, 50})
    ->Args({10, 90})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_VerifyOnly)
    ->Args({1, 50})
    ->Args({10, 50})
    ->Args({10, 90})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
