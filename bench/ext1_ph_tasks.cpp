// Extension 1 (paper Sec. 2.4, "Hyperexponential task times"): the exact
// analytic counterpart of the Fig. 9 simulation. Task times are made
// phase-type (Erlang-2, exponential, HYP-2 with SCV 5.3) and the cluster
// is solved as an M/MAP/1 queue with the lumped N-server service MAP.
//
// Expected shape: the same blow-up structure as Fig. 1 for every task
// distribution; at fixed utilization the queue grows with task-time
// variance (Erlang < exp < HYP-2), the analytic analogue of the Fig. 9
// Resume curve ordering.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mm1.h"
#include "map/server_task_model.h"
#include "medist/moment_fit.h"
#include "medist/tpt.h"
#include "qbd/solution.h"

using namespace performa;

int main() {
  bench::banner("Extension (Sec. 2.4)",
                "phase-type task times, analytic M/MAP/1 solution",
                "N=2, nu_p=2, delta=0.2, UP=exp(90), DOWN=TPT(T=5, "
                "alpha=1.4, theta=0.2, mean=10); task SCV in "
                "{0.5, 1.0, 5.3}");

  const auto repair = medist::make_tpt(medist::TptSpec{5, 1.4, 0.2, 10.0});
  const auto up = medist::exponential_from_mean(90.0);

  struct TaskCase {
    const char* name;
    medist::MeDistribution dist;
  };
  const std::vector<TaskCase> tasks{
      {"erlang2(scv=.5)", medist::erlang_dist(2, 0.5)},
      {"exp(scv=1)", medist::exponential_dist(2.0)},
      {"hyp2(scv=5.3)", medist::hyperexp_from_mean_scv(0.5, 5.3)},
  };

  std::vector<map::Map> services;
  for (const auto& t : tasks) {
    const map::ServerTaskModel server(up, repair, 2.0, 0.2, t.dist);
    services.push_back(
        map::LumpedMapAggregate(server.service_map(), 2).aggregate());
    std::printf("# %s: aggregate phases = %zu, nu_bar = %.4f\n", t.name,
                services.back().dim(), services.back().mean_rate());
  }

  std::printf("rho");
  for (const auto& t : tasks) std::printf(",nql_%s", t.name);
  std::printf("\n");
  for (double rho = 0.1; rho < 0.95; rho += 0.05) {
    std::printf("%.2f", rho);
    for (const auto& svc : services) {
      const double lambda = rho * svc.mean_rate();
      const double nql =
          qbd::QbdSolution(qbd::m_map_1(svc, lambda)).mean_queue_length() /
          core::mm1::mean_queue_length(rho);
      std::printf(",%.4f", nql);
    }
    std::printf("\n");
  }
  return 0;
}
