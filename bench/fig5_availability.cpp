// Figure 5: normalized mean queue length of the 2-node cluster while the
// per-node availability A varies, at fixed arrival rate lambda = 1.8 and
// fixed UP+DOWN cycle length 100 (lower A = shorter MTTF and longer MTTR).
// Repair times are high-variance HYP-2 matched to the first three moments
// of the corresponding TPT distribution.
//
// Expected shape (paper): instability below A ~ 0.3125 (vertical
// asymptote); no insensitive region for any A < 1 because lambda = 1.8
// already exceeds nu_2; the high-variance curves dominate the exponential
// one over the whole range and the gap grows toward low availability.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/moment_fit.h"

using namespace performa;

namespace {

medist::MeDistribution RepairDist(unsigned t, double mttr) {
  const auto tpt = medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, mttr});
  if (t == 1) return tpt;
  return medist::fit_hyp2(tpt).to_distribution();
}

}  // namespace

int main() {
  bench::banner("Figure 5", "normalized mean queue length vs availability",
                "N=2, nu_p=2, delta=0.2, lambda=1.8, UP+DOWN cycle=100, "
                "DOWN=HYP-2 matched to TPT(T), T in {1,5,9,10}");

  const double lambda = 1.8;
  const double cycle = 100.0;
  const std::vector<unsigned> t_values{1, 5, 9, 10};

  {
    core::BlowupParams bp{2, 2.0, 0.2, 0.9};
    std::printf("# stability boundary: A > %.4f (paper: ~0.31); "
                "region-1 boundary A_1 = %.4f\n",
                core::stability_availability(bp, lambda),
                core::availability_boundary(bp, 1, lambda));
  }

  std::printf("A");
  for (unsigned t : t_values) std::printf(",nql_T%u", t);
  std::printf("\n");

  for (double a = 0.34; a < 0.995; a += 0.02) {
    const double mttf = a * cycle;
    const double mttr = (1.0 - a) * cycle;
    std::printf("%.2f", a);
    for (unsigned t : t_values) {
      core::ClusterParams p;
      p.up = medist::exponential_from_mean(mttf);
      p.down = RepairDist(t, mttr);
      const core::ClusterModel model(p);
      const double rho = model.rho_for_lambda(lambda);
      const double nql = model.solve(lambda).mean_queue_length() /
                         core::mm1::mean_queue_length(rho);
      std::printf(",%.4f", nql);
    }
    std::printf("\n");
  }
  return 0;
}
