// Figure 9: the strategy comparison of Fig. 8 repeated with
// non-exponential (HYP-2, variance 5.3) task service times.
//
// Expected shape (paper): the ordering Discard <= Resume <= Restart holds,
// but the differences grow substantially -- a restarted high-variance task
// repeats a potentially enormous work requirement from scratch ([4] shows
// the completion time then becomes power-tailed). The blow-up behaviour
// remains visible for all three strategies.
#include <cstdio>

#include "bench_util.h"
#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/moment_fit.h"
#include "sim/cluster_sim.h"

using namespace performa;

int main() {
  bench::banner("Figure 9",
                "failure-handling strategies, HYP-2 task times (var 5.3)",
                "N=2, nu_p=2, delta=0 (crash), UP=exp(90), DOWN=TPT(T=10, "
                "alpha=1.4, theta=0.2, mean=10), task work ~ HYP-2 with "
                "mean 1, variance 5.3");

  core::ClusterParams params;
  params.delta = 0.0;
  params.down = medist::make_tpt(medist::TptSpec{10, 1.4, 0.2, 10.0});
  const core::ClusterModel model(params);

  const auto task_dist = medist::hyperexp_from_mean_scv(1.0, 5.3);
  std::printf("# task work: HYP-2 p=(%.4f, %.4f), rates=(%.4f, %.4f)\n",
              task_dist.entry_vector()[0], task_dist.entry_vector()[1],
              task_dist.rate_matrix()(0, 0), task_dist.rate_matrix()(1, 1));

  const std::size_t cycles = bench::scaled(40000);
  const std::size_t reps = std::max<std::size_t>(
      5, static_cast<std::size_t>(5 * bench::scale_factor()));
  std::printf("# simulation: %zu cycles x %zu replications\n", cycles, reps);
  std::printf("# note: under Restart, high-variance tasks can make the "
              "effective load exceed 1 (completion times become power-"
              "tailed, see Fiorini et al. 2006); very large values at "
              "high rho indicate that regime, not estimator noise\n");

  std::printf("rho,discard_nql,resume_nql,restart_nql\n");
  for (double rho = 0.1; rho < 0.85; rho += 0.1) {
    const double lambda = model.lambda_for_rho(rho);
    const double mm1 = core::mm1::mean_queue_length(rho);

    auto run = [&](sim::FailureStrategy s) {
      sim::ClusterSimConfig cs;
      cs.delta = 0.0;
      cs.lambda = lambda;
      cs.up = sim::me_sampler(params.up);
      cs.down = sim::me_sampler(params.down);
      cs.task_work = sim::me_sampler(task_dist);
      cs.strategy = s;
      cs.cycles = cycles;
      cs.warmup_cycles = cycles / 10;
      // Common random numbers across strategies (paired comparison).
      cs.seed = 777 + static_cast<std::uint64_t>(rho * 1000);
      return sim::mean_queue_length_summary(cs, reps).mean / mm1;
    };

    std::printf("%.1f,%.4f,%.4f,%.4f\n", rho,
                run(sim::FailureStrategy::kDiscard),
                run(sim::FailureStrategy::kResumeBack),
                run(sim::FailureStrategy::kRestartBack));
  }
  return 0;
}
