// From repair logs to capacity decisions.
//
// Operators rarely know the repair-time *distribution*; they have logs.
// This example generates a synthetic repair log (mixing process restarts,
// reboots and hardware swaps -- the multi-time-scale story of Sec. 2.1),
// then walks the full pipeline:
//
//   1. sample moments + Hill tail-exponent estimate,
//   2. fit a HYP-2 and a TPT model,
//   3. solve the cluster with each fitted model,
//   4. compare against the naive "exponential with the same MTTR" model.
//
//   $ ./build/examples/fit_from_logs
#include <cstdio>
#include <random>
#include <vector>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "medist/empirical.h"

using namespace performa;

namespace {

// Synthetic repair log: 84% process restarts (~1 min), 15% reboots
// (~15 min), 1% hardware swaps (~10 h) -- time unit: minutes.
std::vector<double> SyntheticRepairLog(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> log;
  log.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = uni(rng);
    const double mean = u < 0.84 ? 1.0 : (u < 0.99 ? 15.0 : 600.0);
    log.push_back(std::exponential_distribution<double>(1.0 / mean)(rng));
  }
  return log;
}

}  // namespace

int main() {
  const auto log = SyntheticRepairLog(50000, 424242);
  const auto moments = medist::sample_moments(log);
  std::printf("repair log: %zu entries, mean %.2f min, SCV %.1f\n",
              moments.count, moments.m1, moments.scv());

  const auto hyp2 = medist::fit_hyp2_samples(log).to_distribution();
  std::printf("HYP-2 fit: p1=%.4f, means %.2f / %.2f min\n",
              hyp2.entry_vector()[0], 1.0 / hyp2.rate_matrix()(0, 0),
              1.0 / hyp2.rate_matrix()(1, 1));

  const double alpha = medist::hill_tail_exponent(log, 400);
  std::printf("Hill tail-exponent estimate (k=400): alpha ~ %.2f\n\n",
              alpha);

  // Cluster: 2 nodes, MTTF chosen for A = 0.99 given the measured MTTR.
  const double mttr = moments.m1;
  const double mttf = 99.0 * mttr;
  auto solve_with = [&](const medist::MeDistribution& down, double rho) {
    core::ClusterParams p;
    p.up = medist::exponential_from_mean(mttf);
    p.down = down;
    const core::ClusterModel model(p);
    return model.solve(model.lambda_for_rho(rho)).mean_queue_length();
  };

  std::printf("%6s %16s %16s %12s\n", "rho", "E[Q] exp-fit", "E[Q] HYP2-fit",
              "M/M/1");
  for (double rho : {0.3, 0.6, 0.8, 0.9}) {
    std::printf("%6.2f %16.3f %16.3f %12.3f\n", rho,
                solve_with(medist::exponential_from_mean(mttr), rho),
                solve_with(hyp2, rho), core::mm1::mean_queue_length(rho));
  }

  std::printf(
      "\nThe exponential fit -- same MTTR, same availability -- "
      "underestimates the queue by\nlarge factors at high load: the 1%% "
      "hardware-swap tail dominates the queueing\nbehaviour even though it "
      "barely moves the mean repair time.\n");
  return 0;
}
