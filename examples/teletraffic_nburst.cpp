// The N-Burst teletraffic dual (paper Sec. 2.3): the same mathematics
// that explains cluster blow-ups explains delay blow-ups in packet
// networks fed by ON/OFF sources with heavy-tailed burst lengths.
//
// A router buffer is fed by N sources that emit at peak rate lambda_p
// while ON; ON periods are heavy-tailed (file sizes!), OFF periods are
// exponential, and the link drains at rate mu. The correspondence:
//
//   cluster DOWN/repair  <->  source ON/burst
//   availability A       <->  1 - burstiness b
//   nu_p (UP service)    <->  lambda_p (peak arrival)
//
//   $ ./build/examples/teletraffic_nburst
#include <cstdio>

#include "core/mm1.h"
#include "core/nburst.h"
#include "medist/tpt.h"

using namespace performa;

int main() {
  core::NBurstParams params;
  params.n_sources = 2;
  params.lambda_p = 2.0;  // packets per time unit while ON
  params.off = medist::exponential_from_mean(90.0);

  std::printf("N-Burst link model: %u ON/OFF sources, peak rate %.1f\n\n",
              params.n_sources, params.lambda_p);

  std::printf("%6s  %18s  %18s  %10s\n", "rho", "E[Q] exp bursts",
              "E[Q] TPT bursts", "M/M/1");
  for (double rho : {0.3, 0.5, 0.7, 0.85}) {
    core::NBurstParams exp_p = params;
    exp_p.on = medist::exponential_from_mean(10.0);
    core::NBurstParams tpt_p = params;
    tpt_p.on = medist::make_tpt(medist::TptSpec{9, 1.4, 0.2, 10.0});

    const core::NBurstModel exp_model(exp_p);
    const core::NBurstModel tpt_model(tpt_p);
    std::printf("%6.2f  %18.2f  %18.2f  %10.2f\n", rho,
                exp_model.solve(exp_model.mu_for_rho(rho))
                    .mean_queue_length(),
                tpt_model.solve(tpt_model.mu_for_rho(rho))
                    .mean_queue_length(),
                core::mm1::mean_queue_length(rho));
  }

  core::NBurstParams tpt_p = params;
  tpt_p.on = medist::make_tpt(medist::TptSpec{9, 1.4, 0.2, 10.0});
  const core::NBurstModel model(tpt_p);
  std::printf("\nburstiness b = %.3f, mean load %.3f pkt/unit\n",
              model.burstiness(), model.mean_arrival_rate());

  // Buffer-sizing view: how big must the buffer be for loss ~ 1e-6?
  // With heavy-tailed bursts the tail of the queue is a power law above
  // the blow-up load, so the answer explodes.
  std::printf("\nPr(Q >= k) at the link, rho = 0.7:\n%8s %14s %14s\n", "k",
              "exp bursts", "TPT bursts");
  core::NBurstParams exp_p = params;
  exp_p.on = medist::exponential_from_mean(10.0);
  const core::NBurstModel exp_model(exp_p);
  const auto tpt_sol = model.solve(model.mu_for_rho(0.7));
  const auto exp_sol = exp_model.solve(exp_model.mu_for_rho(0.7));
  for (std::size_t k : {10u, 100u, 1000u, 10000u}) {
    std::printf("%8zu %14.3e %14.3e\n", k, exp_sol.tail(k), tpt_sol.tail(k));
  }
  std::printf("\nThe exponential-burst model would suggest a small buffer "
              "suffices; with heavy-tailed\nbursts the loss target is "
              "unreachable by buffering -- the same blow-up mechanism as "
              "in\nthe cluster model, acting on the arrival side.\n");
  return 0;
}
