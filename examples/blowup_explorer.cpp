// Blow-up design-space explorer.
//
// Given a cluster design (N, nu_p, delta, availability) and a repair-time
// tail exponent alpha, print the complete blow-up structure: the service
// rate ladder nu_i, the blow-up utilizations, the availability boundaries
// for a target arrival rate, and the queue-tail exponents per region --
// everything a designer needs to know to stay out of the bad regions
// without solving any queue.
//
//   $ ./build/examples/blowup_explorer [N] [nu_p] [delta] [A] [lambda] [alpha]
#include <cstdio>
#include <cstdlib>

#include "core/blowup.h"
#include "linalg/errors.h"

using namespace performa;

int main(int argc, char** argv) {
  core::BlowupParams p;
  p.n_servers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  p.nu_p = argc > 2 ? std::atof(argv[2]) : 2.0;
  p.delta = argc > 3 ? std::atof(argv[3]) : 0.2;
  p.availability = argc > 4 ? std::atof(argv[4]) : 0.9;
  const double lambda = argc > 5 ? std::atof(argv[5]) : 0.0;
  const double alpha = argc > 6 ? std::atof(argv[6]) : 1.4;
  p.validate();

  std::printf("cluster: N=%u, nu_p=%.3g, delta=%.3g, A=%.3g, repair tail "
              "alpha=%.3g\n\n",
              p.n_servers, p.nu_p, p.delta, p.availability, alpha);

  const auto nu = core::service_rate_ladder(p);
  const auto rho = core::blowup_utilizations(p);
  std::printf("service-rate ladder (i = servers stuck in a LONG repair):\n");
  std::printf("%4s %12s %18s %18s\n", "i", "nu_i", "rho boundary",
              "queue-tail beta_i");
  std::printf("%4u %12.4f %18s %18s\n", 0u, nu[0], "-", "(geometric)");
  for (unsigned i = 1; i <= p.n_servers; ++i) {
    std::printf("%4u %12.4f %18.4f %18.4f\n", i, nu[i], rho[i - 1],
                core::tail_exponent(i, alpha));
  }

  std::printf("\ninterpretation: operating at utilization in "
              "(rho_{i}, rho_{i-1}) means the queue-length\ndistribution "
              "has a truncated power tail with exponent beta_i; only below "
              "rho_%u = %.4f is\nthe system insensitive to the repair-time "
              "distribution.\n",
              p.n_servers, rho.back());

  if (lambda > 0.0) {
    std::printf("\nfor target arrival rate lambda = %.4g:\n", lambda);
    std::printf("  minimal availability for stability: A > %.4f\n",
                core::stability_availability(p, lambda));
    // A < A_i means lambda > nu_i(A): i simultaneous long repairs already
    // oversaturate, so lowering availability moves the system into worse
    // (lower-index) regions.
    for (unsigned i = p.n_servers - 1; i >= 1; --i) {
      const double a_i = core::availability_boundary(p, i, lambda);
      if (a_i > 0.0 && a_i < 1.0) {
        std::printf("  below A = %.4f: region <= %u (%u simultaneous long "
                    "repair%s oversaturate%s)\n",
                    a_i, i, i, i == 1 ? "" : "s", i == 1 ? "s" : "");
      }
    }
    if (!core::has_blowup(p, lambda)) {
      std::printf("  lambda <= N*nu_p*delta = %.4g: no blow-up region "
                  "exists -- degraded capacity alone\n  carries the load, "
                  "the repair-time distribution is irrelevant.\n",
                  p.n_servers * p.nu_p * p.delta);
    }
  }
  return 0;
}
