// perfctl -- command-line front end to the performa library.
//
//   perfctl blowup  [N nu_p delta A alpha]         blow-up structure
//   perfctl solve   [N nu_p delta mttf mttr rho T] one stationary solution
//   perfctl sweep   [N nu_p delta mttf mttr T]     rho sweep (CSV)
//   perfctl simulate [N nu_p delta mttf mttr rho cycles seed]
//                                                  multiprocessor simulation
//
// Flags (anywhere on the command line):
//   --report             solve/sweep: print the solver's SolveReport
//   --inject <scenario>  simulate: run a fault-injection scenario
//
// Arguments are positional with defaults matching the paper's running
// example; `perfctl <cmd>` with no arguments reproduces paper numbers.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "core/qos.h"
#include "qbd/solve_report.h"
#include "sim/cluster_sim.h"

using namespace performa;

namespace {

// Flags stripped from argv before positional parsing.
struct Flags {
  bool report = false;
  std::string inject;  // fault-injection scenario spec (empty = none)
};

double Arg(int argc, char** argv, int index, double fallback) {
  return argc > index ? std::atof(argv[index]) : fallback;
}

core::ClusterParams MakeParams(double n, double nu_p, double delta,
                               double mttf, double mttr, double t_phases) {
  core::ClusterParams p;
  p.n_servers = static_cast<unsigned>(n);
  p.nu_p = nu_p;
  p.delta = delta;
  p.up = medist::exponential_from_mean(mttf);
  const auto t = static_cast<unsigned>(t_phases);
  p.down = t <= 1 ? medist::exponential_from_mean(mttr)
                  : medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, mttr});
  return p;
}

int CmdBlowup(int argc, char** argv) {
  core::BlowupParams p;
  p.n_servers = static_cast<unsigned>(Arg(argc, argv, 2, 2));
  p.nu_p = Arg(argc, argv, 3, 2.0);
  p.delta = Arg(argc, argv, 4, 0.2);
  p.availability = Arg(argc, argv, 5, 0.9);
  const double alpha = Arg(argc, argv, 6, 1.4);

  std::printf("nu_bar = %.4f\n", core::mean_service_rate(p));
  const auto nu = core::service_rate_ladder(p);
  const auto rho = core::blowup_utilizations(p);
  std::printf("%3s %10s %12s %10s\n", "i", "nu_i", "rho_i", "beta_i");
  for (unsigned i = 1; i <= p.n_servers; ++i) {
    std::printf("%3u %10.4f %12.4f %10.4f\n", i, nu[i], rho[i - 1],
                core::tail_exponent(i, alpha));
  }
  return 0;
}

int CmdSolve(int argc, char** argv, const Flags& flags) {
  const auto p = MakeParams(Arg(argc, argv, 2, 2), Arg(argc, argv, 3, 2.0),
                            Arg(argc, argv, 4, 0.2), Arg(argc, argv, 5, 90.0),
                            Arg(argc, argv, 6, 10.0),
                            Arg(argc, argv, 8, 10));
  const double rho = Arg(argc, argv, 7, 0.7);
  const core::ClusterModel model(p);
  const auto sol = model.solve(model.lambda_for_rho(rho));
  const double nu_bar = model.mean_service_rate();

  std::printf("availability      %.4f\n", model.availability());
  std::printf("nu_bar            %.4f\n", nu_bar);
  std::printf("lambda            %.4f\n", model.lambda_for_rho(rho));
  std::printf("E[Q]              %.4f\n", sol.mean_queue_length());
  std::printf("E[Q] normalized   %.4f\n",
              sol.mean_queue_length() / core::mm1::mean_queue_length(rho));
  std::printf("P(empty)          %.4f\n", sol.probability_empty());
  std::printf("sp(R)             %.6f\n", sol.decay_rate());
  for (std::size_t k : {100u, 500u}) {
    std::printf("Pr(Q >= %-4zu)     %.4e\n", k, sol.tail(k));
  }
  std::printf("min d, eps=1e-4   %.2f time units\n",
              core::min_deadline_for(sol, 1e-4, nu_bar));
  if (flags.report) {
    std::printf("--- solve report ---\n%s", sol.report().to_string().c_str());
  }
  return 0;
}

int CmdSweep(int argc, char** argv) {
  const auto p = MakeParams(Arg(argc, argv, 2, 2), Arg(argc, argv, 3, 2.0),
                            Arg(argc, argv, 4, 0.2), Arg(argc, argv, 5, 90.0),
                            Arg(argc, argv, 6, 10.0),
                            Arg(argc, argv, 7, 10));
  const core::ClusterModel model(p);
  std::printf("rho,mean_ql,normalized,p_empty,tail500\n");
  for (double rho = 0.05; rho < 0.96; rho += 0.05) {
    const auto sol = model.solve(model.lambda_for_rho(rho));
    std::printf("%.2f,%.4f,%.4f,%.4f,%.4e\n", rho, sol.mean_queue_length(),
                sol.mean_queue_length() / core::mm1::mean_queue_length(rho),
                sol.probability_empty(), sol.tail(500));
  }
  return 0;
}

int CmdSimulate(int argc, char** argv, const Flags& flags) {
  const auto p = MakeParams(Arg(argc, argv, 2, 2), Arg(argc, argv, 3, 2.0),
                            Arg(argc, argv, 4, 0.2), Arg(argc, argv, 5, 90.0),
                            Arg(argc, argv, 6, 10.0), 10);
  const double rho = Arg(argc, argv, 7, 0.5);
  const core::ClusterModel model(p);

  sim::ClusterSimConfig cfg;
  cfg.n_servers = p.n_servers;
  cfg.nu_p = p.nu_p;
  cfg.delta = p.delta;
  cfg.lambda = model.lambda_for_rho(rho);
  cfg.up = sim::me_sampler(p.up);
  cfg.down = sim::me_sampler(p.down);
  cfg.cycles = static_cast<std::size_t>(Arg(argc, argv, 8, 20000));
  cfg.warmup_cycles = cfg.cycles / 10;
  cfg.seed = static_cast<std::uint64_t>(Arg(argc, argv, 9, 1));
  if (!flags.inject.empty()) {
    cfg.faults = sim::parse_scenario(flags.inject);
    // Injected scenarios can make the system unstable; cap the run so a
    // runaway queue returns degraded partial statistics instead of hanging.
    cfg.budget.max_events = 50'000'000;
    cfg.budget.max_wall_seconds = 60.0;
  }

  const auto res = sim::simulate_cluster(cfg);
  std::printf("simulated time    %.1f\n", res.sim_time);
  std::printf("arrivals          %zu\n", res.arrivals);
  std::printf("completed         %zu\n", res.completed);
  std::printf("E[Q] (sim)        %.4f\n", res.mean_queue_length);
  std::printf("E[Q] (analytic)   %.4f\n",
              model.solve(cfg.lambda).mean_queue_length());
  if (res.system_time.count() > 0) {
    std::printf("E[system time]    %.4f\n", res.system_time.mean());
  }
  if (!flags.inject.empty()) {
    std::printf("injected crashes  %zu\n", res.injected_crashes);
    std::printf("injected arrivals %zu\n", res.injected_arrivals);
    std::printf("repair preempts   %zu\n", res.repair_preemptions);
  }
  if (res.degraded) {
    std::printf("DEGRADED          %s\n", res.degraded_reason.c_str());
  }
  return 0;
}

void Usage() {
  std::printf(
      "usage: perfctl <command> [args] [flags]\n"
      "  blowup   [N nu_p delta A alpha]\n"
      "  solve    [N nu_p delta mttf mttr rho T]\n"
      "  sweep    [N nu_p delta mttf mttr T]\n"
      "  simulate [N nu_p delta mttf mttr rho cycles seed]\n"
      "flags:\n"
      "  --report             print solver diagnostics (solve)\n"
      "  --inject <scenario>  run a fault-injection scenario (simulate)\n"
      "%s",
      sim::scenario_grammar().c_str());
}

// Strips --report / --inject <spec> out of argv; remaining arguments keep
// their relative order so positional parsing is unaffected.
Flags StripFlags(int& argc, char** argv) {
  Flags flags;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      flags.report = true;
    } else if (std::strcmp(argv[i], "--inject") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perfctl: --inject needs a scenario\n%s",
                     sim::scenario_grammar().c_str());
        std::exit(1);
      }
      flags.inject = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = StripFlags(argc, argv);
  if (argc < 2) {
    Usage();
    return 1;
  }
  try {
    if (std::strcmp(argv[1], "blowup") == 0) return CmdBlowup(argc, argv);
    if (std::strcmp(argv[1], "solve") == 0) return CmdSolve(argc, argv, flags);
    if (std::strcmp(argv[1], "sweep") == 0) return CmdSweep(argc, argv);
    if (std::strcmp(argv[1], "simulate") == 0)
      return CmdSimulate(argc, argv, flags);
  } catch (const qbd::SolverFailure& e) {
    std::fprintf(stderr, "perfctl: solver failed\n%s\n", e.what());
    return 2;
  } catch (const qbd::UnstableModel& e) {
    std::fprintf(stderr, "perfctl: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perfctl: %s\n", e.what());
    return 2;
  }
  Usage();
  return 1;
}
