// perfctl -- command-line front end to the performa library.
//
//   perfctl blowup  [N nu_p delta A alpha]         blow-up structure
//   perfctl solve   [N nu_p delta mttf mttr rho T] one stationary solution
//   perfctl sweep   [N nu_p delta mttf mttr T]     supervised rho sweep (CSV)
//   perfctl simulate [N nu_p delta mttf mttr rho cycles seed]
//                                                  multiprocessor simulation
//   perfctl repair-econ [N nu_p delta mttf mttr T rho cmax smax cc sc]
//                                                  crew/spares trade-off (CSV)
//
// Flags (anywhere on the command line):
//   --report             solve: print the solver's SolveReport
//   --inject <scenario>  simulate: run a fault-injection scenario
//   --checkpoint <path>  sweep: append completed points to a checkpoint
//   --resume             sweep: reuse completed points from --checkpoint
//   --sync               sweep: fsync every checkpoint append
//   --golden <path>      sweep: regression-compare against a golden file
//   --timeout <seconds>  sweep: per-point wall-clock budget (0 = none)
//   --retries <n>        sweep: attempts per point for transient failures
//   --sim-cycles <n>     sweep: also simulate each point (n UP/DOWN cycles)
//   --no-isolate         sweep: run points in-process (no fork, no timeout)
//   -j/--jobs <n>        sweep: points in flight at once (default: nproc)
//   --progress           sweep: live pool status on stderr (plain lines
//                        when stderr is not a tty)
//   --trace <path>       write a Chrome trace_event JSONL trace (loads in
//                        Perfetto / about://tracing); $PERFORMA_TRACE too
//   --metrics <path>     dump the metrics registry as JSON at exit;
//                        $PERFORMA_METRICS too
//   --metrics-prom <path> dump the registry in Prometheus text format
//   --trust-floor <x>    clamp every verification threshold to x (0 forces
//                        the TrustRejected exit-4 path for drills)
//   --threads <n>        linalg pool width for the blocked kernels
//                        (default $PERFORMA_THREADS, else hardware);
//                        results are bit-identical for every value
//   --kernel <name>      dense-kernel backend: blocked (default) or
//                        reference ($PERFORMA_KERNEL_BACKEND too)
//
// The sweep runs up to --jobs points at once, each in a supervised
// worker subprocess: hung points are SIGKILLed at the timeout and
// retried with backoff, solver failures become degraded placeholder
// rows instead of aborting, and SIGINT/SIGTERM wind the sweep down
// (in-flight workers drain, nothing new starts) with the checkpoint
// flushed -- `--resume` then picks up where it stopped, reproducing
// completed points bit-exactly. The CSV on stdout is byte-identical for
// every --jobs value.
//
// Arguments are positional with defaults matching the paper's running
// example; `perfctl <cmd>` with no arguments reproduces paper numbers.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/cluster_model.h"
#include "core/mm1.h"
#include "core/qos.h"
#include "linalg/kernels.h"
#include "linalg/pool.h"
#include "map/repair_facility.h"
#include "qbd/level_dependent.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "qbd/solve_report.h"
#include "qbd/trust.h"
#include "runner/golden.h"
#include "runner/sweep.h"
#include "sim/cluster_sim.h"

using namespace performa;

int FinishObservability(int code);

namespace {

// Flags stripped from argv before positional parsing.
struct Flags {
  bool report = false;
  std::string inject;      // fault-injection scenario spec (empty = none)
  std::string checkpoint;  // sweep checkpoint path (empty = off)
  std::string golden;      // golden-result file to compare against
  std::string trace;       // trace_event JSONL output path (empty = off)
  std::string metrics;     // metrics JSON output path (empty = off)
  std::string metrics_prom;  // Prometheus text-format output path
  double trust_floor = -1.0;  // >= 0: clamp every trust threshold to this
  bool resume = false;
  bool sync = false;
  bool isolate = true;
  bool progress = false;
  double timeout_seconds = 0.0;
  unsigned retries = 3;
  unsigned jobs = 0;  // points in flight; 0 = one per hardware thread
  unsigned threads = 0;  // linalg pool width; 0 = environment default
  std::size_t sim_cycles = 0;  // per-point simulation effort (0 = analytic only)
};

double Arg(int argc, char** argv, int index, double fallback) {
  return argc > index ? std::atof(argv[index]) : fallback;
}

// CSV provenance comment: which dense-kernel backend and pool width
// produced the numbers. Both are bit-transparent (every combination
// computes identical doubles), so a byte-diff against a golden CSV only
// needs the environment pinned, not the hardware.
void PrintProvenance() {
  std::printf("# kernel: %s, threads: %u\n",
              linalg::to_string(linalg::kernel_backend()),
              linalg::pool_threads());
}

core::ClusterParams MakeParams(double n, double nu_p, double delta,
                               double mttf, double mttr, double t_phases) {
  core::ClusterParams p;
  p.n_servers = static_cast<unsigned>(n);
  p.nu_p = nu_p;
  p.delta = delta;
  p.up = medist::exponential_from_mean(mttf);
  const auto t = static_cast<unsigned>(t_phases);
  p.down = t <= 1 ? medist::exponential_from_mean(mttr)
                  : medist::make_tpt(medist::TptSpec{t, 1.4, 0.2, mttr});
  return p;
}

int CmdBlowup(int argc, char** argv) {
  core::BlowupParams p;
  p.n_servers = static_cast<unsigned>(Arg(argc, argv, 2, 2));
  p.nu_p = Arg(argc, argv, 3, 2.0);
  p.delta = Arg(argc, argv, 4, 0.2);
  p.availability = Arg(argc, argv, 5, 0.9);
  const double alpha = Arg(argc, argv, 6, 1.4);

  std::printf("nu_bar = %.4f\n", core::mean_service_rate(p));
  const auto nu = core::service_rate_ladder(p);
  const auto rho = core::blowup_utilizations(p);
  std::printf("%3s %10s %12s %10s\n", "i", "nu_i", "rho_i", "beta_i");
  for (unsigned i = 1; i <= p.n_servers; ++i) {
    std::printf("%3u %10.4f %12.4f %10.4f\n", i, nu[i], rho[i - 1],
                core::tail_exponent(i, alpha));
  }
  return 0;
}

// --trust-floor X: clamp every verification threshold (certified and
// rejected alike) to X. X=0 rejects any answer with a measurable defect
// -- the supported way to force the TrustRejected exit path (used by the
// CI drill asserting telemetry sinks flush on exit 4).
qbd::SolverOptions SolveOptions(const Flags& flags) {
  qbd::SolverOptions opts;
  if (flags.trust_floor >= 0.0) {
    qbd::TrustPolicy& t = opts.trust;
    t.escalate = false;  // fail fast; healing cannot beat a zero floor
    t.r_residual_certified = t.r_residual_rejected = flags.trust_floor;
    t.boundary_residual_certified = t.boundary_residual_rejected =
        flags.trust_floor;
    t.mass_defect_certified = t.mass_defect_rejected = flags.trust_floor;
    t.phase_agreement_certified = t.phase_agreement_rejected =
        flags.trust_floor;
    t.forward_error_certified = t.forward_error_rejected = flags.trust_floor;
  }
  return opts;
}

int CmdSolve(int argc, char** argv, const Flags& flags) {
  const auto p = MakeParams(Arg(argc, argv, 2, 2), Arg(argc, argv, 3, 2.0),
                            Arg(argc, argv, 4, 0.2), Arg(argc, argv, 5, 90.0),
                            Arg(argc, argv, 6, 10.0),
                            Arg(argc, argv, 8, 10));
  const double rho = Arg(argc, argv, 7, 0.7);
  const core::ClusterModel model(p);
  const auto sol = model.solve(model.lambda_for_rho(rho),
                               SolveOptions(flags));
  const double nu_bar = model.mean_service_rate();

  std::printf("availability      %.4f\n", model.availability());
  std::printf("nu_bar            %.4f\n", nu_bar);
  std::printf("lambda            %.4f\n", model.lambda_for_rho(rho));
  std::printf("E[Q]              %.4f\n", sol.mean_queue_length());
  std::printf("E[Q] normalized   %.4f\n",
              sol.mean_queue_length() / core::mm1::mean_queue_length(rho));
  std::printf("P(empty)          %.4f\n", sol.probability_empty());
  std::printf("sp(R)             %.6f\n", sol.decay_rate());
  for (std::size_t k : {100u, 500u}) {
    std::printf("Pr(Q >= %-4zu)     %.4e\n", k, sol.tail(k));
  }
  std::printf("min d, eps=1e-4   %.2f time units\n",
              core::min_deadline_for(sol, 1e-4, nu_bar));
  std::printf("trust             %s\n", sol.trust().summary().c_str());
  if (flags.report) {
    std::printf("--- solve report ---\n%s", sol.report().to_string().c_str());
    std::printf("--- trust report ---\n%s", sol.trust().to_string().c_str());
  }
  return 0;
}

int CmdSweep(int argc, char** argv, const Flags& flags) {
  const auto p = MakeParams(Arg(argc, argv, 2, 2), Arg(argc, argv, 3, 2.0),
                            Arg(argc, argv, 4, 0.2), Arg(argc, argv, 5, 90.0),
                            Arg(argc, argv, 6, 10.0),
                            Arg(argc, argv, 7, 10));
  const core::ClusterModel model(p);

  // One supervised point per utilization. The worker computes in a
  // subprocess, so a hang or crash at one rho cannot take the sweep down.
  std::vector<runner::SweepPointSpec> points;
  for (double rho = 0.05; rho < 0.96; rho += 0.05) {
    char id[32];
    std::snprintf(id, sizeof id, "rho=%.2f", rho);
    const std::size_t index = points.size();
    points.push_back({id, [&model, &p, &flags, rho, index]() {
      runner::PointResult out;
      const auto sol = model.solve(model.lambda_for_rho(rho));
      out.metrics.emplace_back("mean_ql", sol.mean_queue_length());
      out.metrics.emplace_back(
          "normalized",
          sol.mean_queue_length() / core::mm1::mean_queue_length(rho));
      out.metrics.emplace_back("p_empty", sol.probability_empty());
      out.metrics.emplace_back("tail500", sol.tail(500));
      // Verdict travels as its ordinal (checkpoint metrics are doubles);
      // the CSV printer maps it back to a word.
      out.metrics.emplace_back(
          "trust", static_cast<double>(sol.trust().verdict));
      if (flags.sim_cycles > 0) {
        sim::ClusterSimConfig cfg;
        cfg.n_servers = p.n_servers;
        cfg.nu_p = p.nu_p;
        cfg.delta = p.delta;
        cfg.lambda = model.lambda_for_rho(rho);
        cfg.up = sim::me_sampler(p.up);
        cfg.down = sim::me_sampler(p.down);
        cfg.cycles = flags.sim_cycles;
        cfg.warmup_cycles = flags.sim_cycles / 10;
        cfg.seed = sim::derive_seed(4242, index);
        const auto res = sim::simulate_cluster(cfg);
        out.metrics.emplace_back("sim_mean_ql", res.mean_queue_length);
        out.rng_state = res.final_rng_state;
      }
      return out;
    }});
  }

  runner::SweepOptions opts;
  opts.checkpoint_path = flags.checkpoint;
  opts.resume = flags.resume;
  opts.sync_checkpoint = flags.sync;
  opts.timeout_seconds = flags.timeout_seconds;
  opts.retry.max_attempts = flags.retries;
  opts.isolate = flags.isolate;
  opts.jobs = flags.isolate ? flags.jobs : 1;  // inline mode is sequential
  opts.verbose = flags.report;
  opts.progress = flags.progress;
  runner::install_signal_handlers();
  const auto sweep = runner::run_sweep("perfctl-sweep", points, opts);

  PrintProvenance();
  std::printf("rho,mean_ql,normalized,p_empty,tail500,trust%s\n",
              flags.sim_cycles > 0 ? ",sim_mean_ql" : "");
  for (const auto& pt : sweep.points) {
    // Degraded points print as NaN placeholder rows; metric() returns
    // NaN for anything the worker never delivered.
    std::printf("%s,%.4f,%.4f,%.4f,%.4e", pt.id.c_str() + 4,
                pt.metric("mean_ql"), pt.metric("normalized"),
                pt.metric("p_empty"), pt.metric("tail500"));
    const double trust = pt.metric("trust");
    std::printf(",%s",
                std::isnan(trust)
                    ? "n/a"
                    : qbd::to_string(static_cast<qbd::TrustVerdict>(
                          static_cast<int>(trust))));
    if (flags.sim_cycles > 0) std::printf(",%.4f", pt.metric("sim_mean_ql"));
    std::printf("\n");
    if (pt.outcome != runner::Outcome::kOk) {
      std::printf("# degraded %s: %s after %u attempt(s): %s\n",
                  pt.id.c_str(), runner::to_string(pt.outcome), pt.attempts,
                  pt.message.c_str());
    }
  }
  if (sweep.reused > 0) {
    std::printf("# resumed: %zu point(s) reused from %s\n", sweep.reused,
                flags.checkpoint.c_str());
  }
  if (sweep.interrupted) {
    std::fprintf(stderr,
                 "perfctl: sweep interrupted; checkpoint is flushed, rerun "
                 "with --resume to continue\n");
    return 130;
  }

  if (!flags.golden.empty()) {
    const auto golden = runner::load_checkpoint(flags.golden);
    runner::SweepCheckpoint actual;
    actual.sweep_name = "perfctl-sweep";
    actual.points = sweep.points;
    const auto report = runner::compare_to_golden(golden, actual);
    std::fprintf(stderr, "%s", report.to_string().c_str());
    if (!report.ok()) return 3;
  }
  return 0;
}

// Repair-economics report: sweep the (crews, spares) grid at one fixed
// arrival rate (rho times the *independent-repair* capacity, the budget a
// deployment was sized for) and price each configuration with a linear
// cost model. Contention-starved corners can be unstable at that rate;
// those points come back as degraded facility-only rows with the blow-up
// utilization still printed, which is the point of the exercise.
int CmdRepairEcon(int argc, char** argv, const Flags& flags) {
  const auto p = MakeParams(Arg(argc, argv, 2, 2), Arg(argc, argv, 3, 2.0),
                            Arg(argc, argv, 4, 0.2), Arg(argc, argv, 5, 90.0),
                            Arg(argc, argv, 6, 10.0),
                            Arg(argc, argv, 7, 5));
  const double rho = Arg(argc, argv, 8, 0.7);
  const unsigned n = p.n_servers;
  const auto cmax =
      static_cast<unsigned>(Arg(argc, argv, 9, static_cast<double>(n)));
  const auto smax = static_cast<unsigned>(Arg(argc, argv, 10, 2));
  const double crew_cost = Arg(argc, argv, 11, 10.0);
  const double spare_cost = Arg(argc, argv, 12, 3.0);

  // The reference capacity: c >= N crews, no spares, i.e. the paper's
  // independent-repair cluster. Every grid point faces this same lambda.
  const map::RepairFacility reference(p.up, p.down, p.nu_p, p.delta, n, n, 0);
  const double lambda = rho * reference.mmpp().mean_rate();

  std::vector<runner::SweepPointSpec> points;
  std::vector<std::pair<unsigned, unsigned>> grid;
  for (unsigned c = 1; c <= cmax; ++c) {
    for (unsigned s = 0; s <= smax; ++s) {
      char id[32];
      std::snprintf(id, sizeof id, "c=%u,s=%u", c, s);
      grid.emplace_back(c, s);
      points.push_back({id, [&p, n, c, s, lambda, crew_cost, spare_cost]() {
        runner::PointResult out;
        const map::RepairFacility fac(p.up, p.down, p.nu_p, p.delta, n, c, s);
        out.metrics.emplace_back("cost", crew_cost * c + spare_cost * s);
        out.metrics.emplace_back("availability", fac.availability());
        out.metrics.emplace_back("crew_util", fac.crew_utilization());
        out.metrics.emplace_back("repair_q", fac.mean_repair_queue());
        out.metrics.emplace_back("util", lambda / fac.mmpp().mean_rate());
        try {
          const qbd::LevelDependentSolution sol(
              qbd::repair_facility_level_dependent_blocks(fac, lambda));
          out.metrics.emplace_back("mean_ql", sol.mean_queue_length());
          out.metrics.emplace_back("tail50", sol.tail(50));
          out.metrics.emplace_back(
              "trust", static_cast<double>(sol.trust().verdict));
        } catch (const qbd::UnstableModel&) {
          // util >= 1 at this (c, s): the facility cannot carry the
          // reference load. Keep the facility metrics; the queue columns
          // stay NaN and the blow-up shows in the util column.
        }
        return out;
      }});
    }
  }

  runner::SweepOptions opts;
  opts.checkpoint_path = flags.checkpoint;
  opts.resume = flags.resume;
  opts.sync_checkpoint = flags.sync;
  opts.timeout_seconds = flags.timeout_seconds;
  opts.retry.max_attempts = flags.retries;
  opts.isolate = flags.isolate;
  opts.jobs = flags.isolate ? flags.jobs : 1;  // inline mode is sequential
  opts.verbose = flags.report;
  opts.progress = flags.progress;
  runner::install_signal_handlers();
  const auto sweep = runner::run_sweep("perfctl-repair-econ", points, opts);

  PrintProvenance();
  std::printf("# lambda = %.6f (rho = %g of independent-repair capacity "
              "%.6f), cost = %g*crews + %g*spares\n",
              lambda, rho, reference.mmpp().mean_rate(), crew_cost,
              spare_cost);
  std::printf(
      "crews,spares,cost,availability,crew_util,repair_q,util,mean_ql,"
      "tail50,trust\n");
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& pt = sweep.points[i];
    std::printf("%u,%u,%.1f,%.6f,%.4f,%.4f,%.4f,%.4f,%.4e", grid[i].first,
                grid[i].second, pt.metric("cost"), pt.metric("availability"),
                pt.metric("crew_util"), pt.metric("repair_q"),
                pt.metric("util"), pt.metric("mean_ql"), pt.metric("tail50"));
    const double trust = pt.metric("trust");
    std::printf(",%s\n",
                std::isnan(trust)
                    ? "n/a"
                    : qbd::to_string(static_cast<qbd::TrustVerdict>(
                          static_cast<int>(trust))));
    if (pt.outcome != runner::Outcome::kOk) {
      std::printf("# degraded %s: %s after %u attempt(s): %s\n",
                  pt.id.c_str(), runner::to_string(pt.outcome), pt.attempts,
                  pt.message.c_str());
    }
  }
  if (sweep.reused > 0) {
    std::printf("# resumed: %zu point(s) reused from %s\n", sweep.reused,
                flags.checkpoint.c_str());
  }
  if (sweep.interrupted) {
    std::fprintf(stderr,
                 "perfctl: sweep interrupted; checkpoint is flushed, rerun "
                 "with --resume to continue\n");
    return 130;
  }
  if (!flags.golden.empty()) {
    const auto golden = runner::load_checkpoint(flags.golden);
    runner::SweepCheckpoint actual;
    actual.sweep_name = "perfctl-repair-econ";
    actual.points = sweep.points;
    const auto report = runner::compare_to_golden(golden, actual);
    std::fprintf(stderr, "%s", report.to_string().c_str());
    if (!report.ok()) return 3;
  }
  return 0;
}

int CmdSimulate(int argc, char** argv, const Flags& flags) {
  const auto p = MakeParams(Arg(argc, argv, 2, 2), Arg(argc, argv, 3, 2.0),
                            Arg(argc, argv, 4, 0.2), Arg(argc, argv, 5, 90.0),
                            Arg(argc, argv, 6, 10.0), 10);
  const double rho = Arg(argc, argv, 7, 0.5);
  const core::ClusterModel model(p);

  sim::ClusterSimConfig cfg;
  cfg.n_servers = p.n_servers;
  cfg.nu_p = p.nu_p;
  cfg.delta = p.delta;
  cfg.lambda = model.lambda_for_rho(rho);
  cfg.up = sim::me_sampler(p.up);
  cfg.down = sim::me_sampler(p.down);
  cfg.cycles = static_cast<std::size_t>(Arg(argc, argv, 8, 20000));
  cfg.warmup_cycles = cfg.cycles / 10;
  cfg.seed = static_cast<std::uint64_t>(Arg(argc, argv, 9, 1));
  if (!flags.inject.empty()) {
    cfg.faults = sim::parse_scenario(flags.inject);
    // Injected scenarios can make the system unstable; cap the run so a
    // runaway queue returns degraded partial statistics instead of hanging.
    cfg.budget.max_events = 50'000'000;
    cfg.budget.max_wall_seconds = 60.0;
  }

  const auto res = sim::simulate_cluster(cfg);
  std::printf("simulated time    %.1f\n", res.sim_time);
  std::printf("arrivals          %zu\n", res.arrivals);
  std::printf("completed         %zu\n", res.completed);
  std::printf("E[Q] (sim)        %.4f\n", res.mean_queue_length);
  std::printf("E[Q] (analytic)   %.4f\n",
              model.solve(cfg.lambda).mean_queue_length());
  if (res.system_time.count() > 0) {
    std::printf("E[system time]    %.4f\n", res.system_time.mean());
  }
  if (!flags.inject.empty()) {
    std::printf("injected crashes  %zu\n", res.injected_crashes);
    std::printf("injected arrivals %zu\n", res.injected_arrivals);
    std::printf("repair preempts   %zu\n", res.repair_preemptions);
  }
  if (res.degraded) {
    std::printf("DEGRADED          %s\n", res.degraded_reason.c_str());
  }
  return 0;
}

void Usage() {
  std::printf(
      "usage: perfctl <command> [args] [flags]\n"
      "  blowup   [N nu_p delta A alpha]\n"
      "  solve    [N nu_p delta mttf mttr rho T]\n"
      "  sweep    [N nu_p delta mttf mttr T]\n"
      "  simulate [N nu_p delta mttf mttr rho cycles seed]\n"
      "  repair-econ [N nu_p delta mttf mttr T rho cmax smax cc sc]\n"
      "           (c, s) crew/spares trade-off CSV; cc/sc = unit costs\n"
      "flags:\n"
      "  --report             print solver diagnostics (solve) / progress (sweep)\n"
      "  --inject <scenario>  run a fault-injection scenario (simulate)\n"
      "  --checkpoint <path>  sweep: append completed points to a checkpoint\n"
      "  --resume             sweep: reuse completed points from --checkpoint\n"
      "  --sync               sweep: fsync every checkpoint append (power-loss\n"
      "                       durability at a disk round-trip per point)\n"
      "  --golden <path>      sweep: compare results against a golden file\n"
      "  --timeout <seconds>  sweep: per-point wall-clock budget (0 = none)\n"
      "  --retries <n>        sweep: attempts per point on transient failure\n"
      "  --sim-cycles <n>     sweep: also simulate each point (n cycles)\n"
      "  --no-isolate         sweep: run points in-process (no fork/timeout)\n"
      "  -j, --jobs <n>       sweep: points in flight at once (default nproc;\n"
      "                       CSV output is identical for every value)\n"
      "  --progress           sweep: live pool status on stderr (plain\n"
      "                       lines when stderr is not a tty)\n"
      "  --trace <path>       write a Perfetto-loadable trace_event JSONL\n"
      "                       trace ($PERFORMA_TRACE works too)\n"
      "  --metrics <path>     dump the metrics registry as JSON at exit\n"
      "                       ($PERFORMA_METRICS works too)\n"
      "  --metrics-prom <path> dump the metrics registry in Prometheus\n"
      "                       text format (0.0.4) at exit\n"
      "  --trust-floor <x>    clamp every verification threshold to x\n"
      "                       (0 forces rejection of any imperfect answer;\n"
      "                       exercises the exit-4 trust-rejection path)\n"
      "  --threads <n>        linalg pool width for the blocked kernels\n"
      "                       (default $PERFORMA_THREADS, else hardware;\n"
      "                       every value computes identical bits)\n"
      "  --kernel <name>      dense-kernel backend: blocked (default)\n"
      "                       or reference ($PERFORMA_KERNEL_BACKEND too)\n"
      "%s",
      sim::scenario_grammar().c_str());
}

// Usage errors exit through the same observability flush as every other
// path: an env-configured metrics sink ($PERFORMA_METRICS) still gets
// its dump even when the command line was malformed.
[[noreturn]] void UsageExit() {
  obs::init_trace_from_env();
  obs::init_metrics_from_env();
  std::exit(FinishObservability(1));
}

// Strips flags out of argv; remaining arguments keep their relative
// order so positional parsing is unaffected.
Flags StripFlags(int& argc, char** argv) {
  Flags flags;
  // Flags taking a value; missing values are a usage error.
  const auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "perfctl: %s needs a value\n", flag);
      UsageExit();
    }
    return argv[++i];
  };
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      flags.report = true;
    } else if (std::strcmp(argv[i], "--inject") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perfctl: --inject needs a scenario\n%s",
                     sim::scenario_grammar().c_str());
        UsageExit();
      }
      flags.inject = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      flags.checkpoint = value(i, "--checkpoint");
    } else if (std::strcmp(argv[i], "--golden") == 0) {
      flags.golden = value(i, "--golden");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      flags.trace = value(i, "--trace");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      flags.metrics = value(i, "--metrics");
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0) {
      flags.metrics_prom = value(i, "--metrics-prom");
    } else if (std::strcmp(argv[i], "--trust-floor") == 0) {
      flags.trust_floor = std::atof(value(i, "--trust-floor"));
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      flags.resume = true;
    } else if (std::strcmp(argv[i], "--sync") == 0) {
      flags.sync = true;
    } else if (std::strcmp(argv[i], "--no-isolate") == 0) {
      flags.isolate = false;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      flags.progress = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 ||
               std::strcmp(argv[i], "-j") == 0) {
      flags.jobs = static_cast<unsigned>(std::atoi(value(i, "--jobs")));
      if (flags.jobs == 0) {
        std::fprintf(stderr, "perfctl: --jobs needs a positive count\n");
        UsageExit();
      }
    } else if (std::strncmp(argv[i], "-j", 2) == 0 && argv[i][2] != '\0') {
      flags.jobs = static_cast<unsigned>(std::atoi(argv[i] + 2));
      if (flags.jobs == 0) {
        std::fprintf(stderr, "perfctl: -jN needs a positive count\n");
        UsageExit();
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      flags.threads = static_cast<unsigned>(std::atoi(value(i, "--threads")));
      if (flags.threads == 0) {
        std::fprintf(stderr, "perfctl: --threads needs a positive count\n");
        UsageExit();
      }
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      const char* name = value(i, "--kernel");
      if (std::strcmp(name, "reference") == 0) {
        linalg::set_kernel_backend(linalg::KernelBackend::kReference);
      } else if (std::strcmp(name, "blocked") == 0) {
        linalg::set_kernel_backend(linalg::KernelBackend::kBlocked);
      } else {
        std::fprintf(stderr,
                     "perfctl: --kernel wants 'reference' or 'blocked', "
                     "got '%s'\n",
                     name);
        UsageExit();
      }
    } else if (std::strcmp(argv[i], "--timeout") == 0) {
      flags.timeout_seconds = std::atof(value(i, "--timeout"));
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      flags.retries = static_cast<unsigned>(std::atoi(value(i, "--retries")));
    } else if (std::strcmp(argv[i], "--sim-cycles") == 0) {
      flags.sim_cycles =
          static_cast<std::size_t>(std::atoll(value(i, "--sim-cycles")));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flags;
}

}  // namespace

// Prometheus dump path for FinishObservability (set once in main).
std::string g_metrics_prom;

// Flush observability outputs on every exit path: the trace sink closes
// cleanly and the metrics snapshot lands where --metrics pointed. The
// linalg pool is joined first so the snapshot reports zero live workers
// and no thread outlives main (the TSan drill asserts both). Error
// exits flush too -- a rejected answer (exit 4) must still leave its
// counters behind, or the rejection itself is invisible to monitoring.
int FinishObservability(int code) {
  try {
    linalg::pool_shutdown();
    obs::flush_trace();
    obs::disable_trace();
    obs::write_metrics_if_configured();
    if (!g_metrics_prom.empty()) {
      obs::write_prometheus_file(g_metrics_prom);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perfctl: observability flush failed: %s\n",
                 e.what());
    if (code == 0) code = 2;
  }
  return code;
}

int main(int argc, char** argv) {
  const Flags flags = StripFlags(argc, argv);
  try {
    if (flags.threads != 0) {
      linalg::set_pool_threads(flags.threads);
    }
    if (!flags.trace.empty()) {
      obs::enable_trace_file(flags.trace);
    } else {
      obs::init_trace_from_env();
    }
    if (!flags.metrics.empty()) {
      obs::set_metrics_path(flags.metrics);
    } else {
      obs::init_metrics_from_env();
    }
    g_metrics_prom = flags.metrics_prom;
    obs::init_log_from_env();
    // One qid per perfctl invocation: every span and SolveReport this
    // run produces carries it, mirroring the daemon's per-request ids.
    obs::QueryIdScope qid_scope(obs::mint_query_id());
    if (argc < 2) {
      Usage();
      return FinishObservability(1);
    }
    int code = 1;
    if (std::strcmp(argv[1], "blowup") == 0) {
      code = CmdBlowup(argc, argv);
    } else if (std::strcmp(argv[1], "solve") == 0) {
      code = CmdSolve(argc, argv, flags);
    } else if (std::strcmp(argv[1], "sweep") == 0) {
      code = CmdSweep(argc, argv, flags);
    } else if (std::strcmp(argv[1], "repair-econ") == 0) {
      code = CmdRepairEcon(argc, argv, flags);
    } else if (std::strcmp(argv[1], "simulate") == 0) {
      code = CmdSimulate(argc, argv, flags);
    } else {
      Usage();
    }
    return FinishObservability(code);
  } catch (const qbd::SolverFailure& e) {
    std::fprintf(stderr, "perfctl: solver failed\n%s\n", e.what());
    return FinishObservability(2);
  } catch (const qbd::TrustRejected& e) {
    // The answer exists but is wrong in digits a caller would read;
    // refusing it beats printing it.
    std::fprintf(stderr, "perfctl: answer rejected by verification\n%s\n",
                 e.trust().to_string().c_str());
    return FinishObservability(4);
  } catch (const qbd::UnstableModel& e) {
    std::fprintf(stderr, "perfctl: %s\n", e.what());
    return FinishObservability(2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perfctl: %s\n", e.what());
    return FinishObservability(2);
  }
}
