// Choosing a crash-failure handling strategy by simulation.
//
// Crash-prone workers (delta = 0) interrupt the task they are running.
// The dispatcher can Discard it, Restart it from scratch, or Resume it
// from a checkpoint -- each at the head or tail of the queue. This example
// quantifies the trade-offs the paper discusses in Sec. 2/4: queue length,
// task loss (Discard) and completion latency, for exponential and for
// high-variance task work.
//
//   $ ./build/examples/failure_strategy_study [rho]
#include <cstdio>
#include <cstdlib>

#include "core/cluster_model.h"
#include "medist/moment_fit.h"
#include "sim/cluster_sim.h"

using namespace performa;

namespace {

void RunStudy(const char* title, const sim::Sampler& work, double lambda,
              const core::ClusterParams& params) {
  std::printf("\n%s\n", title);
  std::printf("%-16s %10s %12s %12s %12s\n", "strategy", "E[Q]", "CI95",
              "E[sys time]", "%% discarded");

  for (sim::FailureStrategy s :
       {sim::FailureStrategy::kDiscard, sim::FailureStrategy::kResumeBack,
        sim::FailureStrategy::kResumeFront, sim::FailureStrategy::kRestartBack,
        sim::FailureStrategy::kRestartFront}) {
    sim::ClusterSimConfig cfg;
    cfg.n_servers = params.n_servers;
    cfg.nu_p = params.nu_p;
    cfg.delta = 0.0;
    cfg.lambda = lambda;
    cfg.up = sim::me_sampler(params.up);
    cfg.down = sim::me_sampler(params.down);
    cfg.task_work = work;
    cfg.strategy = s;
    cfg.cycles = 30000;
    cfg.warmup_cycles = 3000;
    cfg.seed = 4242;  // common random numbers across strategies

    const auto runs = sim::replicate_cluster(cfg, 5);
    std::vector<double> mql, mst;
    std::size_t discarded = 0, arrivals = 0;
    for (const auto& r : runs) {
      mql.push_back(r.mean_queue_length);
      mst.push_back(r.system_time.mean());
      discarded += r.discarded;
      arrivals += r.arrivals;
    }
    const auto q = sim::summarize_replications(mql);
    const auto t = sim::summarize_replications(mst);
    std::printf("%-16s %10.2f %12.2f %12.2f %11.2f%%\n", to_string(s), q.mean,
                q.ci_halfwidth, t.mean,
                100.0 * static_cast<double>(discarded) /
                    static_cast<double>(arrivals));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double rho = argc > 1 ? std::atof(argv[1]) : 0.5;
  PERFORMA_EXPECTS(rho > 0.0 && rho < 1.0, "usage: failure_strategy_study "
                                           "[rho in (0,1)]");

  core::ClusterParams params;
  params.delta = 0.0;
  params.down = medist::make_tpt(medist::TptSpec{5, 1.4, 0.5, 10.0});
  const core::ClusterModel model(params);
  const double lambda = model.lambda_for_rho(rho);

  std::printf("2-node cluster, crash faults, rho = %.2f (lambda = %.3f), "
              "TPT repairs (T=5, theta=0.5, MTTR=10)\n",
              rho, lambda);
  std::printf("analytic E[Q] (Resume semantics, exp tasks): %.2f\n",
              model.solve(lambda).mean_queue_length());

  RunStudy("--- exponential task work (SCV = 1) ---",
           sim::exponential_sampler(1.0), lambda, params);
  RunStudy("--- high-variance task work (HYP-2, SCV = 5.3) ---",
           sim::me_sampler(medist::hyperexp_from_mean_scv(1.0, 5.3)), lambda,
           params);

  std::printf(
      "\nReading the table: Discard keeps the queue shortest but loses "
      "work; Resume needs\ncheckpointing; Restart is free but amplifies "
      "high-variance tasks (a long task hit\nby a crash repeats all of its "
      "work). Back-of-queue placement does not hurt the\nqueue and avoids "
      "blocking fresh short tasks behind a re-queued long one.\n");
  return 0;
}
