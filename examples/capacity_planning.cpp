// Capacity planning under a delay SLA.
//
// Scenario: a dispatcher feeds N worker nodes; the operator must admit the
// highest task rate such that the probability of a task seeing a backlog
// of more than K tasks stays below epsilon. How much does the admissible
// load depend on how repair times are modelled?
//
// The example sweeps three repair models with the SAME availability and
// MTTR -- exponential, HYP-2 (3-moment TPT fit) and full TPT -- and binary
// searches the maximal admissible arrival rate for each. It then shows the
// same exercise as the cluster grows from 2 to 6 nodes.
//
//   $ ./build/examples/capacity_planning
#include <cstdio>

#include "core/cluster_model.h"
#include "medist/moment_fit.h"

using namespace performa;

namespace {

// Largest lambda with Pr(Q >= backlog) <= eps, by bisection on (0, nu_bar).
double admissible_lambda(const core::ClusterModel& model, std::size_t backlog,
                         double eps) {
  double lo = 1e-6;
  double hi = 0.999 * model.mean_service_rate();
  if (model.solve(hi).tail(backlog) <= eps) return hi;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (model.solve(mid).tail(backlog) <= eps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main() {
  const std::size_t backlog = 200;
  const double eps = 1e-6;
  std::printf("SLA: Pr(Q >= %zu) <= %.0e\n\n", backlog, eps);

  const auto tpt = medist::make_tpt(medist::TptSpec{10, 1.4, 0.2, 10.0});

  std::printf("%-28s %12s %12s %10s\n", "repair model (MTTR=10, A=0.9)",
              "max lambda", "max rho", "SCV");
  struct Case {
    const char* name;
    medist::MeDistribution down;
  };
  const Case cases[] = {
      {"exponential", medist::exponential_from_mean(10.0)},
      {"HYP-2 (TPT 3-moment fit)", medist::fit_hyp2(tpt).to_distribution()},
      {"TPT (T=10, alpha=1.4)", tpt},
  };
  for (const auto& c : cases) {
    core::ClusterParams p;
    p.down = c.down;
    const core::ClusterModel model(p);
    const double lam = admissible_lambda(model, backlog, eps);
    std::printf("%-28s %12.3f %12.3f %10.1f\n", c.name, lam,
                model.rho_for_lambda(lam), c.down.scv());
  }

  std::printf("\nSame SLA, TPT repairs, growing the cluster:\n");
  std::printf("%4s %12s %14s %22s\n", "N", "max lambda", "max rho",
              "lambda gain vs N=2");
  double base = 0.0;
  for (unsigned n = 2; n <= 6; ++n) {
    core::ClusterParams p;
    p.n_servers = n;
    p.down = medist::fit_hyp2(tpt).to_distribution();  // keep state space small
    const core::ClusterModel model(p);
    const double lam = admissible_lambda(model, backlog, eps);
    if (n == 2) base = lam;
    std::printf("%4u %12.3f %14.3f %20.2fx\n", n, lam,
                model.rho_for_lambda(lam), lam / base);
  }
  std::printf("\nTakeaway: with heavy-tailed repairs the admissible load is "
              "capped near the first\nblow-up boundary, so extra nodes add "
              "capacity almost linearly -- each node pushes\nthe blow-up "
              "boundaries outward -- while with exponential repairs the "
              "cluster could\nalready run near saturation.\n");
  return 0;
}
