// Quickstart: model a 2-node cluster whose repairs have high variance,
// solve it exactly, and see why the repair-time *distribution* (not just
// the MTTR) decides the queueing behaviour.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/cluster_model.h"
#include "core/mm1.h"

using namespace performa;

int main() {
  // A cluster of 2 nodes, each serving 2 tasks/s when healthy and slowed
  // to 20% by faults. Nodes run 90 time units between faults and need 10
  // to recover on average -- availability 0.9 either way. The *shape* of
  // the repair-time distribution is the experiment:
  core::ClusterParams exp_repair;           // exponential repairs
  core::ClusterParams heavy_repair;         // truncated power-tail repairs
  heavy_repair.down =
      medist::make_tpt(medist::TptSpec{/*phases=*/10, /*alpha=*/1.4,
                                       /*theta=*/0.2, /*mean=*/10.0});

  const core::ClusterModel mild(exp_repair);
  const core::ClusterModel heavy(heavy_repair);

  std::printf("availability (both models): %.3f\n", heavy.availability());
  std::printf("aggregate service rate:     %.3f tasks/s\n\n",
              heavy.mean_service_rate());

  // Where does behaviour change qualitatively? The blow-up utilizations.
  const auto bounds = core::blowup_utilizations(heavy.blowup_params());
  std::printf("blow-up utilizations: rho_1 = %.3f, rho_2 = %.3f\n\n",
              bounds[0], bounds[1]);

  std::printf("%6s  %14s  %14s  %10s\n", "rho", "E[Q] exp-rep",
              "E[Q] heavy-rep", "M/M/1");
  for (double rho : {0.10, 0.40, 0.70}) {
    const auto mild_sol = mild.solve(mild.lambda_for_rho(rho));
    const auto heavy_sol = heavy.solve(heavy.lambda_for_rho(rho));
    std::printf("%6.2f  %14.2f  %14.2f  %10.2f\n", rho,
                mild_sol.mean_queue_length(), heavy_sol.mean_queue_length(),
                core::mm1::mean_queue_length(rho));
  }

  // Delay-bound QoS: Pr(system time > d) ~ Pr(Q > d * nu_bar).
  const double d = 136.0;  // time units
  const double rho = 0.70;
  const auto sol = heavy.solve(heavy.lambda_for_rho(rho));
  const auto k = static_cast<std::size_t>(d * heavy.mean_service_rate());
  std::printf("\nAt rho = %.2f, Pr(system time > %.0f) ~ Pr(Q >= %zu) = "
              "%.2e\n",
              rho, d, k, sol.tail(k));
  std::printf("With exponential repairs the same bound gives %.2e -- the "
              "MTTR alone tells you almost nothing.\n",
              mild.solve(mild.lambda_for_rho(rho)).tail(k));
  return 0;
}
