// Prometheus text exposition (format version 0.0.4) for the metrics
// registry -- zero dependencies, pure string rendering over a
// MetricsSnapshot.
//
// Registry names map onto Prometheus families: a plain name like
// "qbd.rsolver.solves" becomes family `qbd_rsolver_solves`; a name
// carrying labels, written `base{key="value",...}` at registration
// time, contributes one labelled sample to family `base`. Invalid
// name characters are folded to '_', label values are escaped per the
// exposition spec, and a family keeps the kind of its first (sorted)
// entry -- later entries of a different kind are dropped rather than
// emitting a family with two TYPE lines.
//
// Histograms render as cumulative `_bucket{le="..."}` lines over the
// power-of-two bucket edges actually populated, a `+Inf` bucket that
// absorbs the overflow bin, and `_sum`/`_count`.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace performa::obs {

/// A registry name split into family base and label pairs.
/// "d.q{op="solve"}" -> base "d.q", labels {{"op","solve"}}.
struct ParsedMetricName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Parse the `base{k="v",...}` registration convention. A name without
/// a well-formed label block is returned whole as the base.
ParsedMetricName parse_metric_name(const std::string& name);

/// Fold a registry name into the Prometheus metric-name charset
/// [a-zA-Z0-9_:], mapping '.' and every other invalid character to '_'
/// and prefixing '_' when the first character is a digit.
std::string sanitize_metric_name(const std::string& name);

/// Same for label names: charset [a-zA-Z0-9_], no leading digit.
std::string sanitize_label_name(const std::string& name);

/// Escape a label value per the exposition format: backslash, double
/// quote and newline become \\, \" and \n.
std::string escape_label_value(const std::string& value);

/// Render a snapshot as Prometheus text exposition. Deterministic:
/// families appear in snapshot (name-sorted) order.
std::string to_prometheus(const MetricsSnapshot& snap);

/// snapshot_metrics() rendered by to_prometheus().
std::string prometheus_metrics();

/// Write prometheus_metrics() to `path` (perfctl --metrics-prom).
/// Throws std::runtime_error when the file cannot be written.
void write_prometheus_file(const std::string& path);

}  // namespace performa::obs
