#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>

namespace performa::obs {

namespace {

bool valid_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

bool valid_label_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return true;
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

// Render a double as valid exposition-format value text.
std::string number_text(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string uint_text(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Join sanitized/escaped label pairs into `{k="v",...}`; "" when empty.
// `extra` appends one more pair (the `le` of histogram buckets).
std::string label_block(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key = "", const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_label_name(k);
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;  // le edges need no escaping
    out += '"';
  }
  out += '}';
  return out;
}

const char* kind_name(MetricsSnapshot::Entry::Kind kind) {
  switch (kind) {
    case MetricsSnapshot::Entry::Kind::kCounter:
      return "counter";
    case MetricsSnapshot::Entry::Kind::kGauge:
      return "gauge";
    case MetricsSnapshot::Entry::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

ParsedMetricName parse_metric_name(const std::string& name) {
  ParsedMetricName parsed;
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    parsed.base = name;
    return parsed;
  }
  std::vector<std::pair<std::string, std::string>> labels;
  std::size_t i = brace + 1;
  const std::size_t end = name.size() - 1;  // the closing '}'
  while (i < end) {
    const std::size_t eq = name.find('=', i);
    if (eq == std::string::npos || eq >= end || eq == i ||
        eq + 1 >= end || name[eq + 1] != '"') {
      parsed.base = name;  // malformed: keep the whole name as the base
      return parsed;
    }
    const std::string key = name.substr(i, eq - i);
    std::string value;
    std::size_t j = eq + 2;
    bool closed = false;
    while (j < end) {
      const char c = name[j];
      if (c == '\\' && j + 1 < end) {
        value += name[j + 1];
        j += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++j;
        break;
      }
      value += c;
      ++j;
    }
    if (!closed) {
      parsed.base = name;
      return parsed;
    }
    labels.emplace_back(key, value);
    if (j < end) {
      if (name[j] != ',') {
        parsed.base = name;
        return parsed;
      }
      ++j;
    }
    i = j;
  }
  parsed.base = name.substr(0, brace);
  parsed.labels = std::move(labels);
  return parsed;
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  // A leading digit is legal *after* position 0: prefix rather than
  // mangle, so "9lives" keeps its digit as "_9lives".
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
  for (const char c : name) {
    out += valid_name_char(c, out.empty()) ? c : '_';
  }
  if (out.empty()) return "_";
  return out;
}

std::string sanitize_label_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
  for (const char c : name) {
    out += valid_label_char(c, out.empty()) ? c : '_';
  }
  if (out.empty()) return "_";
  return out;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  // Group snapshot entries into families keyed by sanitized base name,
  // preserving first-appearance (name-sorted) order. A family's kind is
  // fixed by its first entry; a later entry of a different kind under
  // the same base (possible only across distinct registry names that
  // sanitize together) is dropped -- one family, one TYPE line.
  struct Sample {
    const MetricsSnapshot::Entry* entry;
    std::vector<std::pair<std::string, std::string>> labels;
  };
  struct Family {
    std::string base;
    MetricsSnapshot::Entry::Kind kind;
    std::vector<Sample> samples;
    std::set<std::string> seen_label_blocks;  // dedupe colliding names
  };
  std::vector<Family> families;
  std::map<std::string, std::size_t> index;
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    ParsedMetricName parsed = parse_metric_name(e.name);
    const std::string base = sanitize_metric_name(parsed.base);
    auto [it, inserted] = index.emplace(base, families.size());
    if (inserted) {
      families.push_back(Family{base, e.kind, {}, {}});
    }
    Family& fam = families[it->second];
    if (fam.kind != e.kind) continue;  // kind mismatch: drop the sample
    const std::string block = label_block(parsed.labels);
    if (!fam.seen_label_blocks.insert(block).second) continue;
    fam.samples.push_back(Sample{&e, std::move(parsed.labels)});
  }

  std::string out;
  for (const Family& fam : families) {
    if (fam.samples.empty()) continue;
    out += "# TYPE ";
    out += fam.base;
    out += ' ';
    out += kind_name(fam.kind);
    out += '\n';
    for (const Sample& s : fam.samples) {
      const MetricsSnapshot::Entry& e = *s.entry;
      switch (fam.kind) {
        case MetricsSnapshot::Entry::Kind::kCounter:
          out += fam.base + label_block(s.labels) + ' ' +
                 uint_text(static_cast<std::uint64_t>(e.value)) + '\n';
          break;
        case MetricsSnapshot::Entry::Kind::kGauge:
          out += fam.base + label_block(s.labels) + ' ' +
                 number_text(e.value) + '\n';
          break;
        case MetricsSnapshot::Entry::Kind::kHistogram: {
          // Cumulative buckets over populated power-of-two edges; the
          // +Inf bucket absorbs the overflow bin and equals _count.
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < e.buckets.size(); ++b) {
            if (e.buckets[b] == 0) continue;
            cumulative += e.buckets[b];
            char edge[32];
            std::snprintf(edge, sizeof edge, "%.9g",
                          std::ldexp(1.0, static_cast<int>(b) - 31));
            out += fam.base + "_bucket" +
                   label_block(s.labels, "le", edge) + ' ' +
                   uint_text(cumulative) + '\n';
          }
          out += fam.base + "_bucket" + label_block(s.labels, "le", "+Inf") +
                 ' ' + uint_text(e.count) + '\n';
          out += fam.base + "_sum" + label_block(s.labels) + ' ' +
                 number_text(e.sum) + '\n';
          out += fam.base + "_count" + label_block(s.labels) + ' ' +
                 uint_text(e.count) + '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string prometheus_metrics() { return to_prometheus(snapshot_metrics()); }

void write_prometheus_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("obs: cannot open metrics file: " + path);
  }
  const std::string text = prometheus_metrics();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace performa::obs
