#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <variant>

namespace performa::obs {

void Gauge::add(double delta) noexcept {
#if !defined(PERFORMA_OBS_DISABLED)
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
#else
  (void)delta;
#endif
}

void Histogram::record(double v) noexcept {
#if !defined(PERFORMA_OBS_DISABLED)
  if (std::isnan(v)) return;
  int bucket = 0;
  if (v > 0.0) {
    int exp = 0;
    std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
    bucket = std::max(exp + 31, 0);
  }
  if (bucket >= kBuckets) {
    // Above the top finite edge (2^32): overflow bin, tracking the max
    // so quantiles there can report a real bound.
    overflow_.fetch_add(1, std::memory_order_relaxed);
    double cur_max = overflow_max_.load(std::memory_order_relaxed);
    while (v > cur_max && !overflow_max_.compare_exchange_weak(
                              cur_max, v, std::memory_order_relaxed)) {
    }
  } else {
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (static_cast<double>(seen) >= target) {
      return std::ldexp(1.0, b - 31);  // bucket upper bound
    }
  }
  // The quantile falls in the overflow bin: the largest sample seen
  // there is an exact upper bound on it.
  const double omax = overflow_max();
  return omax > 0.0 ? omax : std::ldexp(1.0, kBuckets - 32);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  overflow_max_.store(0.0, std::memory_order_relaxed);
}

namespace {

using Instrument = std::variant<std::unique_ptr<Counter>,
                                std::unique_ptr<Gauge>,
                                std::unique_ptr<Histogram>>;

struct MetricsRegistry {
  std::mutex mutex;
  std::map<std::string, Instrument> instruments;
  std::string output_path;
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked: shutdown-safe
  return *r;
}

template <typename T>
T& lookup(const std::string& name, const char* kind) {
  MetricsRegistry& reg = metrics_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.instruments.find(name);
  if (it == reg.instruments.end()) {
    it = reg.instruments.emplace(name, std::make_unique<T>()).first;
  }
  auto* slot = std::get_if<std::unique_ptr<T>>(&it->second);
  if (slot == nullptr) {
    throw std::runtime_error("obs: metric '" + name +
                             "' already registered as a different kind than " +
                             kind);
  }
  return **slot;
}

}  // namespace

Counter& counter(const std::string& name) {
  return lookup<Counter>(name, "counter");
}

Gauge& gauge(const std::string& name) { return lookup<Gauge>(name, "gauge"); }

Histogram& histogram(const std::string& name) {
  return lookup<Histogram>(name, "histogram");
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const noexcept {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  char buf[192];
  for (const Entry& e : entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += e.name;  // registry names are code literals: no escaping needed
    out += "\",\"kind\":\"";
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += "counter\"";
        std::snprintf(buf, sizeof buf, ",\"value\":%.17g", e.value);
        out += buf;
        break;
      case Entry::Kind::kGauge:
        out += "gauge\"";
        std::snprintf(buf, sizeof buf, ",\"value\":%.17g", e.value);
        out += buf;
        break;
      case Entry::Kind::kHistogram:
        out += "histogram\"";
        std::snprintf(buf, sizeof buf,
                      ",\"count\":%llu,\"sum\":%.17g,\"mean\":%.17g"
                      ",\"p50\":%.6g,\"p90\":%.6g,\"p99\":%.6g"
                      ",\"overflow\":%llu",
                      static_cast<unsigned long long>(e.count), e.sum, e.value,
                      e.p50, e.p90, e.p99,
                      static_cast<unsigned long long>(e.overflow));
        out += buf;
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

MetricsSnapshot snapshot_metrics() {
  MetricsRegistry& reg = metrics_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  MetricsSnapshot snap;
  snap.entries.reserve(reg.instruments.size());
  for (const auto& [name, instrument] : reg.instruments) {
    MetricsSnapshot::Entry e;
    e.name = name;
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&instrument)) {
      e.kind = MetricsSnapshot::Entry::Kind::kCounter;
      e.value = static_cast<double>((*c)->value());
    } else if (const auto* g =
                   std::get_if<std::unique_ptr<Gauge>>(&instrument)) {
      e.kind = MetricsSnapshot::Entry::Kind::kGauge;
      e.value = (*g)->value();
    } else {
      const auto& h = *std::get<std::unique_ptr<Histogram>>(instrument);
      e.kind = MetricsSnapshot::Entry::Kind::kHistogram;
      e.count = h.count();
      e.sum = h.sum();
      e.value = h.mean();
      e.p50 = h.quantile(0.5);
      e.p90 = h.quantile(0.9);
      e.p99 = h.quantile(0.99);
      e.buckets.resize(Histogram::kBuckets);
      for (int b = 0; b < Histogram::kBuckets; ++b) e.buckets[b] = h.bucket(b);
      e.overflow = h.overflow();
      e.overflow_max = h.overflow_max();
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;  // std::map iteration is already name-sorted
}

void write_metrics_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("obs: cannot open metrics file: " + path);
  }
  const std::string json = snapshot_metrics().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

void set_metrics_path(const std::string& path) {
  MetricsRegistry& reg = metrics_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.output_path = path;
}

bool init_metrics_from_env() {
  MetricsRegistry& reg = metrics_registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (!reg.output_path.empty()) return true;
  }
  const char* path = std::getenv("PERFORMA_METRICS");
  if (path == nullptr || path[0] == '\0') return false;
  set_metrics_path(path);
  return true;
}

bool write_metrics_if_configured() {
  std::string path;
  {
    MetricsRegistry& reg = metrics_registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    path = reg.output_path;
  }
  if (path.empty()) return false;
  write_metrics_file(path);
  return true;
}

void reset_metrics_for_test() {
  MetricsRegistry& reg = metrics_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, instrument] : reg.instruments) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&instrument)) {
      (*c)->reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&instrument)) {
      (*g)->reset();
    } else {
      std::get<std::unique_ptr<Histogram>>(instrument)->reset();
    }
  }
}

}  // namespace performa::obs
