// Named counters, gauges and histograms with a registry snapshot API.
//
// Instruments are registered once by name (`obs::counter("x")` returns
// a stable reference; call sites cache it in a function-local static)
// and updated lock-free: counters and histogram buckets are relaxed
// atomics, gauges are CAS loops over double bit patterns. Updates are
// therefore race-free under any thread mix -- the registry lock is
// taken only on first registration and when snapshotting.
//
// Instrumentation discipline: hot loops never update an instrument per
// iteration; they accumulate locally and batch-add at a stage boundary
// (one attempt, one simulation run), so metrics stay on even when
// tracing is off -- this is what lets `perfctl sweep --progress` show
// live pool statistics without any flag. Defining PERFORMA_OBS_DISABLED
// compiles every update path to a true no-op.
//
// Metrics are per-process: a forked worker inherits a snapshot of the
// registry and its increments die with it (its spans are merged back
// via the trace fragment instead). The supervisor's registry describes
// the supervisor.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace performa::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if !defined(PERFORMA_OBS_DISABLED)
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
#if !defined(PERFORMA_OBS_DISABLED)
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(double delta) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram of non-negative samples (latencies,
/// sizes). Bucket b holds samples in [2^(b-32), 2^(b-31)), so the
/// usable range spans ~2^-32 .. 2^31 with <= 2x relative quantile
/// error -- plenty for "where did the time go" diagnostics. Samples at
/// or above the top bucket edge (2^32) land in an explicit overflow
/// bin that also tracks the largest sample seen, so quantiles falling
/// there report a true upper bound instead of silently clamping to the
/// last finite edge (and the Prometheus mapping gets an honest +Inf
/// bucket). Updates are relaxed atomics; a snapshot taken concurrently
/// with updates is a consistent-enough view (each bucket individually
/// exact).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double v) noexcept;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]);
  /// 0 when empty. A quantile landing in the overflow bin reports the
  /// largest sample recorded there (an exact bound, not a bucket edge).
  double quantile(double q) const noexcept;
  std::uint64_t bucket(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Samples >= 2^32 (above the top finite bucket).
  std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }
  /// Largest overflow sample seen; 0 when the overflow bin is empty.
  double overflow_max() const noexcept {
    return overflow_max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<double> overflow_max_{0.0};
};

/// Registry lookup: returns the instrument registered under `name`,
/// creating it on first use. References stay valid for the process
/// lifetime. Registering one name as two different kinds throws
/// std::runtime_error.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    double value = 0.0;         ///< counter/gauge value; histogram mean
    std::uint64_t count = 0;    ///< histogram sample count
    double sum = 0.0;           ///< histogram sample sum
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
    std::vector<std::uint64_t> buckets;  ///< histogram per-bucket counts
    std::uint64_t overflow = 0;          ///< samples above the top bucket
    double overflow_max = 0.0;           ///< largest overflow sample
  };
  std::vector<Entry> entries;  ///< sorted by name

  const Entry* find(const std::string& name) const noexcept;
  /// One JSON object: {"metrics":[{...},...]}.
  std::string to_json() const;
};

MetricsSnapshot snapshot_metrics();

/// Write snapshot_metrics().to_json() to `path` (perfctl --metrics).
/// Throws std::runtime_error when the file cannot be written.
void write_metrics_file(const std::string& path);

/// Remember $PERFORMA_METRICS as the metrics output path. Returns true
/// when a path is configured (env or a prior set_metrics_path call).
bool init_metrics_from_env();
void set_metrics_path(const std::string& path);
/// Write the snapshot to the configured path, if any. Returns true
/// when a file was written.
bool write_metrics_if_configured();

/// Zero every registered instrument (tests).
void reset_metrics_for_test();

}  // namespace performa::obs
