// Structured NDJSON logging: one JSON object per line, leveled,
// rate-limited per call site, fork-safe, and feeding the crash flight
// recorder.
//
// Call sites use the PERFORMA_LOG macro:
//
//   PERFORMA_LOG(kInfo, "daemon.start")
//       .kv("socket", config.socket_path)
//       .kv("workers", config.workers);
//
// Cost model mirrors spans: a site below the active level costs one
// relaxed atomic load and a predictable branch (~1 ns, bench-gated);
// PERFORMA_OBS_DISABLED compiles every site out entirely. An admitted
// line is rendered into a local buffer and written with a single
// write(2), so concurrent writers never interleave mid-line.
//
// Rate limiting is per call site: each PERFORMA_LOG expansion owns a
// function-local static LogSite holding a token bucket (burst
// LogSite::kBurst, refill LogSite::kRefillPerSec tokens/s). A hot
// error loop therefore cannot drown the log; the next admitted line
// from that site carries `"suppressed":N` so nothing vanishes
// silently.
//
// Fork boundary: like the trace sink, a forked worker must not share
// the parent's log fd offset bookkeeping. reopen_log_in_child() points
// the child at a private fragment file; merge_log_fragment() appends
// the fragment's structurally complete lines back to the parent sink
// and drops a torn tail from a SIGKILLed writer.
//
// Every line automatically carries ts (unix seconds), level, event,
// pid, tid, and -- when a QueryIdScope is active on the thread -- the
// query id, which is how daemon logs join against wire replies, slow
// query records, spans and flight-recorder dumps.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace performa::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level) noexcept;

namespace detail {
extern std::atomic<int> g_log_level;  // minimum admitted level
}  // namespace detail

/// True when `level` is at or above the active threshold. One relaxed
/// atomic load: this is the disabled-path cost of a log site.
inline bool log_enabled(LogLevel level) noexcept {
#if !defined(PERFORMA_OBS_DISABLED)
  return static_cast<int>(level) >=
         detail::g_log_level.load(std::memory_order_relaxed);
#else
  (void)level;
  return false;
#endif
}

/// Set the minimum admitted level (default kInfo).
void set_log_level(LogLevel level);

/// Route log lines to `path` (O_APPEND; a single write(2) per line).
/// Throws std::runtime_error when the file cannot be opened. An empty
/// path routes back to stderr (the default sink).
void set_log_file(const std::string& path);

/// Path of the installed file sink; empty when logging to stderr.
/// Workers derive fragment paths from this.
const std::string& log_file_path();

/// Honor $PERFORMA_LOG (sink path) and $PERFORMA_LOG_LEVEL
/// (debug|info|warn|error). Returns true when a file sink is (now)
/// configured.
bool init_log_from_env();

/// Close any file sink and return to stderr at the default level
/// (tests).
void reset_log_for_test();

/// Call in a freshly forked child: replaces the inherited sink with a
/// private fragment file (falling back to stderr when it cannot be
/// opened).
void reopen_log_in_child(const std::string& fragment_path);

/// Append a worker fragment's structurally complete lines to the
/// current sink and unlink the fragment; a torn final line is dropped.
/// Returns the number of lines merged. Safe when the fragment does not
/// exist.
std::size_t merge_log_fragment(const std::string& fragment_path);

/// Per-call-site token bucket. Zero-initialized statics start full.
struct LogSite {
  static constexpr std::int64_t kBurst = 16;
  static constexpr std::int64_t kRefillPerSec = 4;

  std::atomic<std::int64_t> tokens_milli{kBurst * 1000};
  std::atomic<std::int64_t> last_refill_ns{0};
  std::atomic<std::uint64_t> suppressed{0};

  /// Take one token; counts the line as suppressed when none are left.
  bool admit() noexcept;
  /// Suppressed-line count since the last admitted line (and reset).
  std::uint64_t take_suppressed() noexcept {
    return suppressed.exchange(0, std::memory_order_relaxed);
  }
};

/// One log line under construction. The destructor renders and emits
/// it; `kv` chains append fields. Only ever constructed by the macro
/// after level + rate-limit admission.
class LogLine {
 public:
  LogLine(LogLevel level, const char* event, LogSite* site);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& kv(const char* key, const std::string& value);
  LogLine& kv(const char* key, const char* value);
  LogLine& kv(const char* key, double value);
  LogLine& kv(const char* key, std::uint64_t value);
  LogLine& kv(const char* key, std::int64_t value);
  LogLine& kv(const char* key, int value) {
    return kv(key, static_cast<std::int64_t>(value));
  }
  LogLine& kv(const char* key, bool value);

 private:
  std::string buf_;
  std::size_t header_len_ = 0;  ///< end of ts..qid prefix (flight fallback)
};

namespace detail {
/// Level gate + site admission in one call; returns the site when the
/// line should be emitted, nullptr otherwise. `make_site` is only
/// invoked (constructing the static) once the level gate passes.
template <typename MakeSite>
LogSite* admit_site(LogLevel level, MakeSite make_site) noexcept {
  if (!log_enabled(level)) return nullptr;
  LogSite* site = make_site();
  return site->admit() ? site : nullptr;
}
}  // namespace detail

/// Statement-shaped macro: expands to an if/else so the disabled path
/// is a single load+branch, with the LogLine temporary living only in
/// the admitted branch. Usable anywhere a statement is; the `.kv`
/// chain hangs off the expression.
#if defined(PERFORMA_OBS_DISABLED)
#define PERFORMA_LOG(level, event)                        \
  if (true) {                                             \
  } else                                                  \
    ::performa::obs::LogLine(::performa::obs::LogLevel::level, event, nullptr)
#else
#define PERFORMA_LOG(level, event)                                          \
  if (::performa::obs::LogSite* performa_obs_log_site_ =                    \
          ::performa::obs::detail::admit_site(                              \
              ::performa::obs::LogLevel::level, []() noexcept {             \
                static ::performa::obs::LogSite performa_obs_site_;         \
                return &performa_obs_site_;                                 \
              });                                                           \
      performa_obs_log_site_ == nullptr) {                                  \
  } else                                                                    \
    ::performa::obs::LogLine(::performa::obs::LogLevel::level, event,       \
                             performa_obs_log_site_)
#endif

// ---------------------------------------------------------------------------
// Query identity: a per-request id minted at daemon admission (or by
// perfctl at startup), carried in a thread-local scope alongside
// DeadlineScope, stamped onto every log line, span, SolveReport and
// wire reply produced while the scope is active.

/// Mint a process-unique query id: "q-<pid>-<seq>".
std::string mint_query_id();

/// The query id active on this thread; empty outside any scope.
const std::string& current_query_id() noexcept;

/// NUL-terminated view of the active query id kept in a fixed
/// thread-local buffer -- readable from a signal handler on the
/// faulting thread without touching the allocator.
const char* current_query_id_cstr() noexcept;

/// RAII thread-local query-id scope; nests (restores the previous id).
class QueryIdScope {
 public:
  explicit QueryIdScope(std::string qid);
  ~QueryIdScope();
  QueryIdScope(const QueryIdScope&) = delete;
  QueryIdScope& operator=(const QueryIdScope&) = delete;

 private:
  std::string prev_;
};

}  // namespace performa::obs
