// Cooperative deadlines and cancellation for long-running computations.
//
// A Deadline is a shared token combining an optional wall-clock expiry
// with an explicit cancellation flag. It is *cooperative*: nothing is
// preempted; instead, iterative kernels (the QBD R-solver tiers, expm's
// squaring phase, LU factorization of large systems, solution assembly)
// poll `deadline_expired()` between iterations and abort with a typed
// DeadlineError, so a slow solve returns control in bounded time instead
// of wedging its worker.
//
// Installation is thread-local, via RAII: the serving layer wraps each
// request in a DeadlineScope and the whole solver stack below it becomes
// deadline-aware without threading a parameter through every signature.
// Scopes nest; an inner scope never *extends* the outer budget (the
// effective deadline is the minimum), so a library call cannot opt out
// of its caller's deadline.
//
// Cost model: deadline_expired() with no scope installed is one
// thread-local pointer load. With a scope installed it is the pointer
// load, one relaxed atomic load (the cancel flag), and -- only when a
// wall-clock expiry is armed -- one steady_clock read. Hot loops poll at
// their natural stage cadence (once per iteration of an O(m^3) kernel),
// where that cost vanishes.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace performa::obs {

/// Shared deadline/cancellation token. Copies share one state: any
/// holder can cancel(), every holder observes it. Default-constructed
/// tokens are unlimited (never expire, but remain cancellable).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: no wall-clock expiry (still cancellable).
  Deadline() : state_(std::make_shared<State>()) {}

  /// Expires `seconds` from now. Non-positive budgets are already
  /// expired -- useful for deterministic tests of the abort paths.
  static Deadline after_seconds(double seconds);

  /// Expires at `at`.
  static Deadline at(Clock::time_point at);

  /// True when cancelled or past the wall-clock expiry.
  bool expired() const noexcept;

  /// Raise the cancellation flag (idempotent, thread-safe). The watchdog
  /// uses this to revoke a stuck solve from outside its thread.
  void cancel() noexcept { state_->cancelled.store(true, std::memory_order_relaxed); }

  bool cancelled() const noexcept {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  bool has_wall_deadline() const noexcept { return state_->has_expiry; }

  /// Seconds until the wall-clock expiry; +infinity when unlimited,
  /// negative once past it, 0 when cancelled.
  double remaining_seconds() const noexcept;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_expiry = false;
    Clock::time_point expires_at{};
  };
  std::shared_ptr<State> state_;
};

/// RAII thread-local installation. The installed deadline is the
/// *minimum* of `d` and any enclosing scope's deadline (a nested scope
/// can only tighten the budget); destruction restores the outer scope.
class DeadlineScope {
 public:
  explicit DeadlineScope(Deadline d);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  Deadline* previous_;
  Deadline effective_;
};

/// True when the calling thread runs under an installed deadline that
/// has expired or been cancelled. The poll the solver loops call.
bool deadline_expired() noexcept;

/// Remaining budget of the calling thread's installed deadline;
/// +infinity when no scope is installed or the scope is unlimited.
double deadline_remaining_seconds() noexcept;

/// The calling thread's installed deadline, or nullptr outside any
/// scope (exposed so layers can hand the token across threads).
const Deadline* current_deadline() noexcept;

}  // namespace performa::obs
