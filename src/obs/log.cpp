#include "obs/log.h"

#include <fcntl.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "obs/flight.h"
#include "obs/trace.h"

namespace performa::obs {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
}  // namespace detail

namespace {

std::int64_t monotonic_ns() noexcept {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

double realtime_seconds() noexcept {
  struct timespec ts;
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::uint64_t thread_id() noexcept {
  thread_local const std::uint64_t tid =
      static_cast<std::uint64_t>(::syscall(SYS_gettid));
  return tid;
}

// Sink state: a file descriptor plus the path it was opened from.
// fd == STDERR_FILENO means "no file sink". Guarded by a mutex -- the
// hot path never reaches here (level gate + token bucket run first),
// and one write(2) per line keeps concurrent lines unsplit anyway.
struct LogRegistry {
  std::mutex mutex;
  int fd = STDERR_FILENO;
  std::string path;
};

LogRegistry& log_registry() {
  static LogRegistry* r = new LogRegistry;  // leaked: shutdown-safe
  return *r;
}

void write_all_fd(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void install_log_fd(int fd, std::string path) {
  LogRegistry& reg = log_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.fd != STDERR_FILENO) ::close(reg.fd);
  reg.fd = fd;
  reg.path = std::move(path);
}

// A structurally complete NDJSON line: `{...}` (the emitter writes one
// '\n'-terminated object per write(2)).
bool is_complete_log_record(const std::string& line) {
  return line.size() >= 2 && line.front() == '{' && line.back() == '}';
}

// Query-id state: the std::string is what the process reads; the fixed
// char buffer shadows it so a fatal-signal handler on this thread can
// read the id without touching the allocator.
thread_local std::string t_query_id;
thread_local char t_query_id_c[64] = {0};

void sync_query_id_cstr() noexcept {
  const std::size_t n =
      std::min(t_query_id.size(), sizeof t_query_id_c - 1);
  std::memcpy(t_query_id_c, t_query_id.data(), n);
  t_query_id_c[n] = '\0';
}

std::atomic<std::uint64_t> g_query_seq{0};

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}

void set_log_file(const std::string& path) {
  if (path.empty()) {
    install_log_fd(STDERR_FILENO, "");
    return;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    throw std::runtime_error("obs: cannot open log file: " + path);
  }
  install_log_fd(fd, path);
}

const std::string& log_file_path() {
  LogRegistry& reg = log_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.path;
}

bool init_log_from_env() {
  const char* level = std::getenv("PERFORMA_LOG_LEVEL");
  if (level != nullptr && level[0] != '\0') {
    const std::string name = level;
    if (name == "debug") {
      set_log_level(LogLevel::kDebug);
    } else if (name == "info") {
      set_log_level(LogLevel::kInfo);
    } else if (name == "warn") {
      set_log_level(LogLevel::kWarn);
    } else if (name == "error") {
      set_log_level(LogLevel::kError);
    }
  }
  {
    LogRegistry& reg = log_registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.fd != STDERR_FILENO) return true;  // already configured
  }
  const char* path = std::getenv("PERFORMA_LOG");
  if (path == nullptr || path[0] == '\0' ||
      std::strcmp(path, "stderr") == 0) {
    return false;
  }
  set_log_file(path);
  return true;
}

void reset_log_for_test() {
  install_log_fd(STDERR_FILENO, "");
  detail::g_log_level.store(static_cast<int>(LogLevel::kInfo),
                            std::memory_order_relaxed);
}

void reopen_log_in_child(const std::string& fragment_path) {
  // The inherited fd is the parent's: close our copy and swap in a
  // private fragment. Nothing buffers between lines, so no parent
  // bytes can be duplicated.
  const int fd =
      ::open(fragment_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    install_log_fd(STDERR_FILENO, "");  // run unlogged-to-file
    return;
  }
  install_log_fd(fd, fragment_path);
}

std::size_t merge_log_fragment(const std::string& fragment_path) {
  std::FILE* in = std::fopen(fragment_path.c_str(), "r");
  if (in == nullptr) return 0;  // worker died before its first line
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) content.append(buf, n);
  std::fclose(in);
  ::unlink(fragment_path.c_str());

  std::size_t merged = 0;
  LogRegistry& reg = log_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;  // torn tail: drop
    const std::string line = content.substr(start, nl - start);
    start = nl + 1;
    if (!is_complete_log_record(line)) continue;
    const std::string out = line + '\n';
    write_all_fd(reg.fd, out.data(), out.size());
    ++merged;
  }
  return merged;
}

bool LogSite::admit() noexcept {
  const std::int64_t now = monotonic_ns();
  std::int64_t last = last_refill_ns.load(std::memory_order_relaxed);
  if (last == 0) {
    // First use: stamp the clock; the bucket starts full.
    last_refill_ns.compare_exchange_strong(last, now,
                                           std::memory_order_relaxed);
  } else if (now > last &&
             last_refill_ns.compare_exchange_strong(
                 last, now, std::memory_order_relaxed)) {
    // This thread won the refill interval [last, now).
    const std::int64_t refill_milli =
        (now - last) * kRefillPerSec / 1000000;  // ns -> milli-tokens
    if (refill_milli > 0) {
      std::int64_t cur = tokens_milli.load(std::memory_order_relaxed);
      std::int64_t next;
      do {
        next = std::min(cur + refill_milli, kBurst * 1000);
      } while (!tokens_milli.compare_exchange_weak(
          cur, next, std::memory_order_relaxed));
    }
  }
  if (tokens_milli.fetch_sub(1000, std::memory_order_relaxed) - 1000 < 0) {
    tokens_milli.fetch_add(1000, std::memory_order_relaxed);
    suppressed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

LogLine::LogLine(LogLevel level, const char* event, LogSite* site) {
  buf_.reserve(256);
  char head[96];
  std::snprintf(head, sizeof head, "{\"ts\":%.6f,\"level\":\"%s\"",
                realtime_seconds(), log_level_name(level));
  buf_ += head;
  buf_ += ",\"event\":\"";
  append_json_escaped(buf_, event);
  buf_ += '"';
  std::snprintf(head, sizeof head, ",\"pid\":%d,\"tid\":%llu",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(thread_id()));
  buf_ += head;
  const std::string& qid = current_query_id();
  if (!qid.empty()) append_json_kv(buf_, "qid", qid);
  if (site != nullptr) {
    const std::uint64_t suppressed = site->take_suppressed();
    if (suppressed > 0) {
      std::snprintf(head, sizeof head, ",\"suppressed\":%llu",
                    static_cast<unsigned long long>(suppressed));
      buf_ += head;
    }
  }
  header_len_ = buf_.size();
}

LogLine::~LogLine() {
  buf_ += '}';
  if (flight_enabled()) {
    // A flight slot holds 255 payload bytes. A byte-truncated line
    // would fail the reader's parse-or-skip contract and vanish from
    // the black box, so an oversized line falls back to its header
    // fields (ts/level/event/pid/tid/qid) plus a truncation marker --
    // still joinable by qid, still valid JSON.
    if (buf_.size() < kFlightSlotBytes) {
      flight_record(buf_.data(), buf_.size());
    } else {
      std::string compact = buf_.substr(0, header_len_);
      compact += ",\"trunc\":true}";
      flight_record(compact.data(), compact.size());
    }
  }
  buf_ += '\n';
  LogRegistry& reg = log_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  write_all_fd(reg.fd, buf_.data(), buf_.size());
}

LogLine& LogLine::kv(const char* key, const std::string& value) {
  append_json_kv(buf_, key, value);
  return *this;
}

LogLine& LogLine::kv(const char* key, const char* value) {
  return kv(key, std::string(value));
}

LogLine& LogLine::kv(const char* key, double value) {
  append_json_kv(buf_, key, value);
  return *this;
}

LogLine& LogLine::kv(const char* key, std::uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  buf_ += buf;
  return *this;
}

LogLine& LogLine::kv(const char* key, std::int64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%lld", key,
                static_cast<long long>(value));
  buf_ += buf;
  return *this;
}

LogLine& LogLine::kv(const char* key, bool value) {
  buf_ += ",\"";
  buf_ += key;
  buf_ += value ? "\":true" : "\":false";
  return *this;
}

std::string mint_query_id() {
  char buf[48];
  std::snprintf(buf, sizeof buf, "q-%d-%llu", static_cast<int>(::getpid()),
                static_cast<unsigned long long>(
                    g_query_seq.fetch_add(1, std::memory_order_relaxed) + 1));
  return buf;
}

const std::string& current_query_id() noexcept { return t_query_id; }

const char* current_query_id_cstr() noexcept { return t_query_id_c; }

QueryIdScope::QueryIdScope(std::string qid) : prev_(std::move(t_query_id)) {
  t_query_id = std::move(qid);
  sync_query_id_cstr();
}

QueryIdScope::~QueryIdScope() {
  t_query_id = std::move(prev_);
  sync_query_id_cstr();
}

}  // namespace performa::obs
