#include "obs/deadline.h"

#include <limits>

namespace performa::obs {

namespace {

thread_local Deadline* t_current = nullptr;

}  // namespace

Deadline Deadline::after_seconds(double seconds) {
  return at(Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds)));
}

Deadline Deadline::at(Clock::time_point at) {
  Deadline d;
  d.state_->has_expiry = true;
  d.state_->expires_at = at;
  return d;
}

bool Deadline::expired() const noexcept {
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  return state_->has_expiry && Clock::now() >= state_->expires_at;
}

double Deadline::remaining_seconds() const noexcept {
  if (state_->cancelled.load(std::memory_order_relaxed)) return 0.0;
  if (!state_->has_expiry) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(state_->expires_at - Clock::now())
      .count();
}

DeadlineScope::DeadlineScope(Deadline d)
    : previous_(t_current), effective_(std::move(d)) {
  // A nested scope must not outlive its parent's budget: keep whichever
  // wall-clock expiry is earlier. Cancellation does not merge -- the
  // inner token stays independently cancellable -- but the solver polls
  // both through deadline_expired(), which checks the installed token,
  // and an expired outer scope re-asserts itself on scope exit.
  if (previous_ != nullptr && previous_->has_wall_deadline() &&
      (!effective_.has_wall_deadline() ||
       previous_->remaining_seconds() < effective_.remaining_seconds())) {
    effective_ = *previous_;
  }
  t_current = &effective_;
}

DeadlineScope::~DeadlineScope() { t_current = previous_; }

bool deadline_expired() noexcept {
  return t_current != nullptr && t_current->expired();
}

double deadline_remaining_seconds() noexcept {
  return t_current == nullptr ? std::numeric_limits<double>::infinity()
                              : t_current->remaining_seconds();
}

const Deadline* current_deadline() noexcept { return t_current; }

}  // namespace performa::obs
