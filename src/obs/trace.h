// Zero-dependency tracing: RAII scoped spans recording wall and CPU
// time, buffered thread-locally and flushed to a pluggable sink as
// Chrome trace_event-compatible complete-duration (`ph:"X"`) records.
// A trace file written by the JSONL sink opens directly in
// about://tracing and Perfetto.
//
// Cost model: when no sink is installed (the default), PERFORMA_SPAN
// compiles to a constructor that reads one relaxed atomic and returns
// -- hot loops pay a single predictable branch. Defining
// PERFORMA_OBS_DISABLED at compile time removes even that (the macro
// expands to nothing). When tracing is enabled, span start/finish reads
// two clocks and appends to a thread-local buffer; serialization
// happens at flush granularity, off the instrumented path.
//
// Fork boundary: a forked worker must not share its parent's sink (two
// writers would interleave mid-line). The worker calls
// reopen_trace_in_child() with a private fragment path right after
// fork; the supervisor merges the fragment back with
// merge_trace_fragment() once the worker is reaped. Fragment records
// carry the worker's pid, so a merged sweep trace shows one timeline
// per process.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace performa::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;
}  // namespace detail

/// True when a sink is installed and spans record; spans constructed
/// while disabled are inert for their whole lifetime.
inline bool trace_enabled() noexcept {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// One completed span. `name` must be a string with static storage
/// duration (the macro passes literals); `args` is a pre-rendered JSON
/// fragment of extra key/values (possibly empty).
struct TraceEvent {
  const char* name = "";
  double ts_us = 0.0;   ///< CLOCK_MONOTONIC microseconds at span start
  double dur_us = 0.0;  ///< wall-clock duration
  double cpu_us = 0.0;  ///< thread CPU time consumed inside the span
  int pid = 0;
  std::uint64_t tid = 0;
  std::string args;     ///< extra JSON: `,"key":"value"` fragments
};

/// Where serialized trace records go. Implementations must be safe to
/// call from multiple threads (the flusher serializes under one lock).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Append one span record.
  virtual void write(const TraceEvent& event) = 0;
  /// Append one pre-serialized record line (fragment merging).
  virtual void write_raw(const std::string& json_line) = 0;
  virtual void flush() {}
};

/// Route spans to `path` as a Chrome trace_event JSON array, one record
/// per line (`[` first, then `{...},` lines; the closing bracket is
/// optional per the trace_event spec, so a killed process still leaves
/// a loadable trace). Throws std::runtime_error when the file cannot
/// be opened. Replaces any previously installed sink.
void enable_trace_file(const std::string& path);

/// Route spans to an in-memory buffer (tests).
void enable_trace_memory();

/// Flush and drop the sink; spans become no-ops again.
void disable_trace();

/// Drain the calling thread's span buffer into the sink and flush it.
void flush_trace();

/// Path of the file sink currently installed; empty for memory sink or
/// disabled tracing. Workers derive fragment paths from this.
const std::string& trace_file_path();

/// Flush, then move the memory sink's accumulated events out (tests).
/// Returns an empty vector when the sink is not the memory sink.
std::vector<TraceEvent> drain_memory_trace();

/// Raw record lines appended to the memory sink via write_raw (tests).
std::vector<std::string> drain_memory_raw_lines();

/// Call in a freshly forked child: discards span state inherited from
/// the parent (without flushing it -- those records belong to the
/// parent) and installs a private file sink at `fragment_path`.
void reopen_trace_in_child(const std::string& fragment_path);

/// Merge a worker's fragment file into the current sink and unlink it:
/// every structurally complete record line is appended verbatim (pids
/// recorded by the worker are preserved); a torn final line -- the
/// worker was SIGKILLed mid-write -- is dropped. Returns the number of
/// records merged. Safe to call when the fragment does not exist (a
/// worker killed before its first flush): merges nothing.
std::size_t merge_trace_fragment(const std::string& fragment_path);

/// Install a file sink from $PERFORMA_TRACE when set and tracing is not
/// already configured. Returns true when tracing is (now) enabled.
bool init_trace_from_env();

/// RAII scoped span. Construction snapshots wall + CPU clocks;
/// destruction records a complete `ph:"X"` event into the thread-local
/// buffer. Inert (one branch) when tracing is disabled. Unwinding
/// destroys spans innermost-first, so nesting balances under
/// exceptions by construction.
class Span {
 public:
  explicit Span(const char* name) noexcept {
#if !defined(PERFORMA_OBS_DISABLED)
    if (trace_enabled()) start(name);
#else
    (void)name;
#endif
  }
  ~Span() {
    if (armed_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an extra key to the record (JSON-escaped). No-ops on an
  /// inert span.
  void annotate(const char* key, const std::string& value);
  void annotate(const char* key, double value);
  void annotate(const char* key, std::uint64_t value);

  /// Wall-clock seconds since construction; 0.0 on an inert span.
  double elapsed_seconds() const noexcept;

 private:
  void start(const char* name) noexcept;
  void finish() noexcept;

  bool armed_ = false;
  const char* name_ = "";
  double ts_us_ = 0.0;
  double cpu0_us_ = 0.0;
  std::string args_;
};

#define PERFORMA_OBS_CONCAT_(a, b) a##b
#define PERFORMA_OBS_CONCAT(a, b) PERFORMA_OBS_CONCAT_(a, b)
#if defined(PERFORMA_OBS_DISABLED)
#define PERFORMA_SPAN(name)
#else
/// Scoped span covering the rest of the enclosing block.
#define PERFORMA_SPAN(name) \
  ::performa::obs::Span PERFORMA_OBS_CONCAT(performa_obs_span_, \
                                            __LINE__)(name)
#endif

/// Append `,"key":"escaped value"` to a JSON fragment string (shared
/// with the metrics serializer; exposed for tests).
void append_json_kv(std::string& out, const char* key,
                    const std::string& value);
void append_json_kv(std::string& out, const char* key, double value);

/// Append `value` JSON-string-escaped (no surrounding quotes); shared
/// with the structured-log serializer.
void append_json_escaped(std::string& out, const std::string& value);

}  // namespace performa::obs
