#include "obs/trace.h"

#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/flight.h"
#include "obs/log.h"

namespace performa::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

namespace {

double monotonic_us() noexcept {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

double thread_cpu_us() noexcept {
  struct timespec ts;
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

std::uint64_t thread_id() noexcept {
  return static_cast<std::uint64_t>(::syscall(SYS_gettid));
}

void append_escaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string serialize(const TraceEvent& ev) {
  std::string line = "{\"name\":\"";
  append_escaped(line, ev.name);
  line += "\",\"cat\":\"performa\",\"ph\":\"X\"";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%llu",
                ev.ts_us, ev.dur_us, ev.pid,
                static_cast<unsigned long long>(ev.tid));
  line += buf;
  line += ",\"args\":{";
  std::snprintf(buf, sizeof buf, "\"cpu_us\":%.3f", ev.cpu_us);
  line += buf;
  line += ev.args;  // pre-rendered `,"key":value` fragments
  line += "}},";
  return line;
}

/// File sink: Chrome trace_event JSON array, one record per line. Every
/// batch ends in fflush so (a) a SIGKILL loses at most the last line
/// and (b) a fork never duplicates buffered stdio bytes into a child.
class FileSink final : public TraceSink {
 public:
  explicit FileSink(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {
    if (file_ == nullptr) {
      throw std::runtime_error("obs: cannot open trace file: " + path);
    }
    std::fputs("[\n", file_);
    std::fflush(file_);
  }
  ~FileSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  void write(const TraceEvent& event) override {
    const std::string line = serialize(event);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
  }
  void write_raw(const std::string& json_line) override {
    std::fwrite(json_line.data(), 1, json_line.size(), file_);
    std::fputc('\n', file_);
  }
  void flush() override { std::fflush(file_); }

 private:
  std::FILE* file_;
};

class MemorySink final : public TraceSink {
 public:
  void write(const TraceEvent& event) override { events_.push_back(event); }
  void write_raw(const std::string& json_line) override {
    raw_lines_.push_back(json_line);
  }
  std::vector<TraceEvent> drain_events() { return std::move(events_); }
  std::vector<std::string> drain_raw() { return std::move(raw_lines_); }

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> raw_lines_;
};

// Sink registry. The mutex guards the sink pointer and every write
// through it; span hot paths never take it (they only append to the
// thread-local buffer).
struct Registry {
  std::mutex mutex;
  std::unique_ptr<TraceSink> sink;
  MemorySink* memory = nullptr;  ///< non-null when sink is the memory sink
  std::string file_path;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during shutdown
  return *r;
}

constexpr std::size_t kFlushThreshold = 512;

// Thread-local span buffer, flushed into the sink on overflow and when
// the thread ends.
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  ~ThreadBuffer() { flush(); }
  void flush() {
    if (events.empty()) return;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.sink != nullptr) {
      for (const TraceEvent& ev : events) reg.sink->write(ev);
      reg.sink->flush();
    }
    events.clear();
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

void install_sink(std::unique_ptr<TraceSink> sink, MemorySink* memory,
                  std::string path) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.sink = std::move(sink);
  reg.memory = memory;
  reg.file_path = std::move(path);
  detail::g_trace_on.store(reg.sink != nullptr, std::memory_order_relaxed);
}

// A structurally complete record line: one `{...}` object, optionally
// comma-terminated. Anything else (the `[` header, a torn tail from a
// SIGKILLed writer) is not mergeable.
bool is_complete_record(const std::string& line) {
  if (line.empty() || line.front() != '{') return false;
  std::size_t end = line.size();
  if (line.back() == ',') --end;
  return end >= 2 && line[end - 1] == '}';
}

}  // namespace

void enable_trace_file(const std::string& path) {
  install_sink(std::make_unique<FileSink>(path), nullptr, path);
}

void enable_trace_memory() {
  auto sink = std::make_unique<MemorySink>();
  MemorySink* memory = sink.get();
  install_sink(std::move(sink), memory, "");
}

void disable_trace() {
  flush_trace();
  install_sink(nullptr, nullptr, "");
}

void flush_trace() {
  thread_buffer().flush();
}

const std::string& trace_file_path() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.file_path;
}

std::vector<TraceEvent> drain_memory_trace() {
  flush_trace();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.memory == nullptr) return {};
  return reg.memory->drain_events();
}

std::vector<std::string> drain_memory_raw_lines() {
  flush_trace();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.memory == nullptr) return {};
  return reg.memory->drain_raw();
}

void reopen_trace_in_child(const std::string& fragment_path) {
  // Inherited buffered spans belong to the parent: drop them without
  // flushing. The parent's FileSink fflushes after every batch, so no
  // serialized bytes are duplicated either; destroying the inherited
  // sink below closes the child's copy of the fd with an empty stdio
  // buffer.
  thread_buffer().events.clear();
  install_sink(std::make_unique<FileSink>(fragment_path), nullptr,
               fragment_path);
}

std::size_t merge_trace_fragment(const std::string& fragment_path) {
  std::FILE* in = std::fopen(fragment_path.c_str(), "r");
  if (in == nullptr) return 0;  // worker died before its first flush
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) content.append(buf, n);
  std::fclose(in);
  ::unlink(fragment_path.c_str());

  std::size_t merged = 0;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t nl = content.find('\n', start);
    const bool torn = nl == std::string::npos;
    std::string line =
        content.substr(start, torn ? std::string::npos : nl - start);
    start = torn ? content.size() : nl + 1;
    if (!is_complete_record(line)) continue;  // `[` header or torn tail
    if (line.back() != ',') line += ',';
    if (reg.sink != nullptr) {
      reg.sink->write_raw(line);
      ++merged;
    }
  }
  if (reg.sink != nullptr && merged > 0) reg.sink->flush();
  return merged;
}

bool init_trace_from_env() {
  if (trace_enabled()) return true;
  const char* path = std::getenv("PERFORMA_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  enable_trace_file(path);
  return true;
}

void Span::start(const char* name) noexcept {
  armed_ = true;
  name_ = name;
  ts_us_ = monotonic_us();
  cpu0_us_ = thread_cpu_us();
}

void Span::finish() noexcept {
  armed_ = false;
  // A sink swap between start and finish is benign: the record lands in
  // the thread buffer and the next flush routes it to whatever sink is
  // installed then (or drops it when tracing was disabled).
  TraceEvent ev;
  ev.name = name_;
  ev.ts_us = ts_us_;
  ev.dur_us = monotonic_us() - ts_us_;
  ev.cpu_us = thread_cpu_us() - cpu0_us_;
  ev.pid = static_cast<int>(::getpid());
  ev.tid = thread_id();
  ev.args = std::move(args_);
  // Spans produced while a query id is in scope carry it, joining the
  // trace against log lines, wire replies and flight dumps.
  const std::string& qid = current_query_id();
  if (!qid.empty()) append_json_kv(ev.args, "qid", qid);
  // The flight ring sees completed spans immediately (the thread
  // buffer may never flush before a crash).
  if (flight_enabled()) {
    const std::string line = serialize(ev);
    flight_record(line.data(), line.size() - 1);  // minus trailing comma
  }
  ThreadBuffer& buffer = thread_buffer();
  buffer.events.push_back(std::move(ev));
  if (buffer.events.size() >= kFlushThreshold) buffer.flush();
}

void Span::annotate(const char* key, const std::string& value) {
  if (!armed_) return;
  append_json_kv(args_, key, value);
}

void Span::annotate(const char* key, double value) {
  if (!armed_) return;
  append_json_kv(args_, key, value);
}

void Span::annotate(const char* key, std::uint64_t value) {
  if (!armed_) return;
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  args_ += buf;
}

double Span::elapsed_seconds() const noexcept {
  return armed_ ? (monotonic_us() - ts_us_) * 1e-6 : 0.0;
}

void append_json_kv(std::string& out, const char* key,
                    const std::string& value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  append_escaped(out, value);
  out += '"';
}

void append_json_kv(std::string& out, const char* key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.6g", key, value);
  out += buf;
}

void append_json_escaped(std::string& out, const std::string& value) {
  append_escaped(out, value);
}

}  // namespace performa::obs
