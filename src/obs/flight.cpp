#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/log.h"

namespace performa::obs {

namespace detail {
std::atomic<bool> g_flight_on{false};
}  // namespace detail

namespace {

constexpr std::size_t kRingFirstSlot = 2;  // 0 = header, 1 = crash marker
constexpr std::size_t kRingSlots = kFlightSlots - kRingFirstSlot;
constexpr std::size_t kFileBytes = kFlightSlots * kFlightSlotBytes;

// The mapping pointer is written under g_mutex before g_flight_on is
// set and read by recorders after loading g_flight_on; the handlers
// read it directly (they may fire at any time, but a non-null value is
// always a valid mapping -- we never unmap while the flag is up).
char* g_base = nullptr;
std::atomic<std::uint64_t> g_next{0};
std::mutex g_mutex;
std::string g_path;
std::string g_prefix;
bool g_handlers_installed = false;

// Async-signal-safe unsigned decimal formatting; returns chars written.
std::size_t format_u64(char* out, std::uint64_t v) noexcept {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

// Fill one slot with `len` bytes of text and NUL padding.
void write_slot(std::size_t slot, const char* data, std::size_t len) noexcept {
  char* p = g_base + slot * kFlightSlotBytes;
  if (len > kFlightSlotBytes - 1) len = kFlightSlotBytes - 1;
  std::memcpy(p, data, len);
  std::memset(p + len, 0, kFlightSlotBytes - len);
}

// Fatal-signal handler: stamp the crash marker (signal number + the
// faulting thread's query id) using only memcpy and hand-rolled
// formatting, then re-raise with the default disposition (SA_RESETHAND
// already restored it) so wait status and core dumps are untouched.
void crash_handler(int sig) noexcept {
  char* base = g_base;
  if (base != nullptr && flight_enabled()) {
    char line[kFlightSlotBytes];
    std::size_t n = 0;
    const char* head = "{\"event\":\"crash\",\"signal\":";
    std::memcpy(line + n, head, std::strlen(head));
    n += std::strlen(head);
    n += format_u64(line + n, static_cast<std::uint64_t>(sig));
    const char* mid = ",\"pid\":";
    std::memcpy(line + n, mid, std::strlen(mid));
    n += std::strlen(mid);
    n += format_u64(line + n, static_cast<std::uint64_t>(::getpid()));
    const char* qid = current_query_id_cstr();
    const std::size_t qlen = std::strlen(qid);
    if (qlen > 0 && n + qlen + 16 < sizeof line) {
      const char* qhead = ",\"qid\":\"";
      std::memcpy(line + n, qhead, std::strlen(qhead));
      n += std::strlen(qhead);
      std::memcpy(line + n, qid, qlen);
      n += qlen;
      line[n++] = '"';
    }
    line[n++] = '}';
    write_slot(1, line, n);
  }
  ::raise(sig);
}

void install_crash_handlers() {
  if (g_handlers_installed) return;
  g_handlers_installed = true;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sa.sa_flags = SA_RESETHAND;
  ::sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

// Detach the current mapping (caller holds g_mutex).
void detach_locked(bool keep_file) noexcept {
  detail::g_flight_on.store(false, std::memory_order_relaxed);
  if (g_base != nullptr) {
    ::munmap(g_base, kFileBytes);
    g_base = nullptr;
  }
  if (!keep_file && !g_path.empty()) ::unlink(g_path.c_str());
  g_path.clear();
}

}  // namespace

bool init_flight(const std::string& path_prefix) {
  std::lock_guard<std::mutex> lock(g_mutex);
  detach_locked(/*keep_file=*/false);
  const std::string path =
      path_prefix + ".flight." + std::to_string(::getpid());
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (::ftruncate(fd, static_cast<off_t>(kFileBytes)) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  void* map = ::mmap(nullptr, kFileBytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    ::unlink(path.c_str());
    return false;
  }
  g_base = static_cast<char*>(map);
  g_path = path;
  g_prefix = path_prefix;
  g_next.store(0, std::memory_order_relaxed);

  char header[kFlightSlotBytes];
  const int n = std::snprintf(
      header, sizeof header,
      "{\"event\":\"flight_header\",\"version\":1,\"pid\":%d"
      ",\"slots\":%zu,\"slot_bytes\":%zu}",
      static_cast<int>(::getpid()), kFlightSlots, kFlightSlotBytes);
  write_slot(0, header, static_cast<std::size_t>(n));

  install_crash_handlers();
  detail::g_flight_on.store(true, std::memory_order_relaxed);
  return true;
}

bool init_flight_from_env() {
  if (flight_enabled()) return true;
  const char* prefix = std::getenv("PERFORMA_FLIGHT");
  if (prefix == nullptr || prefix[0] == '\0') return false;
  return init_flight(prefix);
}

void flight_record(const char* data, std::size_t len) noexcept {
  if (!flight_enabled()) return;
  char* base = g_base;
  if (base == nullptr) return;
  while (len > 0 && (data[len - 1] == '\n' || data[len - 1] == '\0')) --len;
  const std::uint64_t seq = g_next.fetch_add(1, std::memory_order_relaxed);
  write_slot(kRingFirstSlot + static_cast<std::size_t>(seq % kRingSlots),
             data, len);
}

std::string flight_path() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_path;
}

void disable_flight(bool keep_file) noexcept {
  std::lock_guard<std::mutex> lock(g_mutex);
  detach_locked(keep_file);
}

void reopen_flight_in_child() {
  std::string prefix;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!flight_enabled()) return;
    // The mapped file belongs to the parent; let go without unlinking.
    detach_locked(/*keep_file=*/true);
    prefix = g_prefix;
  }
  init_flight(prefix);
}

}  // namespace performa::obs
