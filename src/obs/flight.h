// Crash flight recorder: a fixed-size ring of recent log/span events
// in a mmap(MAP_SHARED) file, so the last ~4k events survive any kind
// of death -- including SIGKILL, which no handler can observe.
//
// Why mmap instead of a handler that dumps a heap ring: dirty pages of
// a MAP_SHARED file mapping live in the page cache, which the kernel
// writes back regardless of how the process died. Every flight_record
// is therefore already "on disk" the moment the memcpy retires; a
// SIGKILLed daemon leaves a readable black box with zero code running
// at death. Catchable fatal signals (SIGSEGV/SIGBUS/SIGFPE/SIGILL/
// SIGABRT) additionally stamp a crash-marker slot -- the handler only
// formats integers by hand and memcpys into the mapping, all
// async-signal-safe -- then re-raise with default disposition so exit
// status and core dumps are unchanged.
//
// File layout (<prefix>.flight.<pid>, 1 MiB): 4096 slots x 256 bytes.
// Slot 0 is a header record, slot 1 the crash marker (all-NUL until a
// fatal signal), slots 2.. a ring claimed by one atomic fetch_add per
// event. Each slot holds one NUL-padded JSON object; a reader splits
// on NULs and keeps the chunks that parse, so a torn slot (writer
// preempted mid-memcpy, or overwritten after wrap) is skipped, never
// misread.
//
// The file is unlinked on clean shutdown (disable_flight): like the
// daemon journal, a flight file that exists is evidence of a crash.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace performa::obs {

namespace detail {
extern std::atomic<bool> g_flight_on;
}  // namespace detail

inline bool flight_enabled() noexcept {
  return detail::g_flight_on.load(std::memory_order_relaxed);
}

constexpr std::size_t kFlightSlotBytes = 256;
constexpr std::size_t kFlightSlots = 4096;  // header + marker + ring

/// Map <prefix>.flight.<pid> and start recording; also installs the
/// fatal-signal handlers. Returns false (disabled) when the file
/// cannot be created. Replaces any previously active flight file
/// (which is unlinked).
bool init_flight(const std::string& path_prefix);

/// Honor $PERFORMA_FLIGHT as the path prefix.
bool init_flight_from_env();

/// Append one event to the ring, truncated to the slot size. Safe from
/// any thread; a no-op while disabled.
void flight_record(const char* data, std::size_t len) noexcept;

/// Path of the active flight file; empty while disabled.
std::string flight_path();

/// Stop recording and unlink the file (clean shutdown: no crash, no
/// evidence). keep_file=true detaches without unlinking -- used by a
/// forked child letting go of its parent's mapping.
void disable_flight(bool keep_file = false) noexcept;

/// Call in a freshly forked child: detach from the parent's flight
/// file (without unlinking it) and open a private one under the same
/// prefix and the child's pid. No-op when the parent had no flight.
void reopen_flight_in_child();

}  // namespace performa::obs
