// The paper-facing model: an N-node degradable cluster served through one
// dispatcher queue (Sec. 2), solved exactly as an M/MMPP/1 QBD.
//
// Typical use:
//
//   ClusterParams params;                       // N=2, nu_p=2, delta=0.2,
//   params.down = make_tpt({10, 1.4, 0.2, 10}); // TPT repair, MTTR=10
//   ClusterModel model(params);
//   auto sol = model.solve(model.lambda_for_rho(0.7));
//   double nql = sol.mean_queue_length() / core::mm1::mean_queue_length(0.7);
#pragma once

#include <memory>

#include "core/blowup.h"
#include "map/lumped_aggregate.h"
#include "medist/me_dist.h"
#include "medist/tpt.h"
#include "qbd/level_dependent.h"
#include "qbd/solution.h"

namespace performa::core {

/// Cluster description (defaults reproduce the paper's running example:
/// 2 nodes, nu_p = 2, delta = 0.2, exponential MTTF 90, repair MTTR 10).
struct ClusterParams {
  unsigned n_servers = 2;
  double nu_p = 2.0;
  double delta = 0.2;
  medist::MeDistribution up = medist::exponential_from_mean(90.0);
  medist::MeDistribution down = medist::exponential_from_mean(10.0);
};

/// Analytic cluster model. Construction builds the lumped N-server MMPP;
/// each solve() call runs the matrix-geometric machinery for one arrival
/// rate.
class ClusterModel {
 public:
  explicit ClusterModel(ClusterParams params);

  const ClusterParams& params() const noexcept { return params_; }
  const map::ServerModel& server() const noexcept { return server_; }
  const map::LumpedAggregate& aggregate() const noexcept { return aggregate_; }

  /// Steady-state per-node availability A = MTTF / (MTTF + MTTR).
  double availability() const;

  /// nu_bar = N nu_p (A + delta (1 - A)).
  double mean_service_rate() const;

  /// Arrival rate achieving utilization rho, i.e. rho * nu_bar.
  double lambda_for_rho(double rho) const;
  double rho_for_lambda(double lambda) const;

  /// Blow-up analysis parameters for this cluster.
  BlowupParams blowup_params() const;

  /// Exact stationary solution of the load-independent M/MMPP/1 model.
  /// Throws NumericalError if lambda >= nu_bar (unstable).
  qbd::QbdSolution solve(double lambda,
                         const qbd::SolverOptions& opts = {}) const;

  /// Level-dependent extension: service capacity limited by the number of
  /// tasks present (Sec. 2.4); the load-independent model is an upper
  /// bound on service (hence a lower bound on queue length).
  qbd::LevelDependentSolution solve_load_dependent(
      double lambda, const qbd::SolverOptions& opts = {}) const;

  /// Mean queue length at utilization rho divided by the M/M/1 value
  /// rho/(1-rho) -- the y-axis of Figs. 1, 4, 5.
  double normalized_mean_queue_length(
      double rho, const qbd::SolverOptions& opts = {}) const;

 private:
  ClusterParams params_;
  map::ServerModel server_;
  map::LumpedAggregate aggregate_;
};

}  // namespace performa::core
