// Closed-form M/M/1 results. Every figure in the paper normalizes the
// cluster's mean queue length by the M/M/1 value at the same utilization,
// and Fig. 2 plots the M/M/1 pmf for comparison.
#pragma once

#include <cstddef>

namespace performa::core::mm1 {

/// E[Q] (number in system) = rho / (1 - rho); throws InvalidArgument for
/// rho outside [0, 1).
double mean_queue_length(double rho);

/// Pr(Q = k) = (1 - rho) rho^k.
double pmf(double rho, std::size_t k);

/// Pr(Q >= k) = rho^k.
double tail(double rho, std::size_t k);

/// Var[Q] = rho / (1-rho)^2.
double variance(double rho);

/// Mean system (sojourn) time for arrival rate lambda = rho * mu:
/// 1 / (mu - lambda).
double mean_system_time(double lambda, double mu);

}  // namespace performa::core::mm1
