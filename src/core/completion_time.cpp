#include "core/completion_time.h"

#include "linalg/errors.h"

namespace performa::core {

Moments2 resume_completion_moments(const medist::MeDistribution& task,
                                   double failure_rate,
                                   const medist::MeDistribution& repair) {
  PERFORMA_EXPECTS(failure_rate >= 0.0,
                   "resume_completion_moments: failure rate >= 0");
  const double t1 = task.moment(1);
  const double t2 = task.moment(2);
  const double r1 = repair.moment(1);
  const double r2 = repair.moment(2);
  const double inflation = 1.0 + failure_rate * r1;

  Moments2 c;
  c.m1 = t1 * inflation;
  c.m2 = inflation * inflation * t2 + failure_rate * t1 * r2;
  return c;
}

Moments2 restart_completion_moments_exp_task(
    double task_rate, double failure_rate,
    const medist::MeDistribution& repair) {
  PERFORMA_EXPECTS(task_rate > 0.0,
                   "restart_completion_moments_exp_task: task rate > 0");
  return resume_completion_moments(medist::exponential_dist(task_rate),
                                   failure_rate, repair);
}

}  // namespace performa::core
