#include "core/qos.h"

#include <cmath>

#include "linalg/errors.h"

namespace performa::core {

double delay_violation_probability(const qbd::QbdSolution& solution,
                                   double deadline, double nu_bar) {
  PERFORMA_EXPECTS(deadline >= 0.0,
                   "delay_violation_probability: deadline >= 0");
  PERFORMA_EXPECTS(nu_bar > 0.0, "delay_violation_probability: nu_bar > 0");
  const auto k = static_cast<std::size_t>(std::floor(deadline * nu_bar));
  // Pr(Q > k) = Pr(Q >= k+1).
  return solution.tail(k + 1);
}

double min_deadline_for(const qbd::QbdSolution& solution, double eps,
                        double nu_bar, std::size_t k_max) {
  PERFORMA_EXPECTS(eps > 0.0 && eps < 1.0,
                   "min_deadline_for: eps must lie in (0,1)");
  PERFORMA_EXPECTS(nu_bar > 0.0, "min_deadline_for: nu_bar > 0");
  // Find the smallest k with Pr(Q > k) <= eps; the tail is nonincreasing
  // in k, so exponential search + bisection applies.
  std::size_t hi = 1;
  while (hi < k_max && solution.tail(hi + 1) > eps) hi *= 2;
  if (solution.tail(hi + 1) > eps) {
    throw NumericalError(
        "min_deadline_for: tail does not fall below eps within k_max");
  }
  std::size_t lo = hi / 2;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (solution.tail(mid + 1) <= eps) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const std::size_t k = solution.tail(lo + 1) <= eps ? lo : hi;
  return static_cast<double>(k) / nu_bar;
}

double deadline_success_probability(const qbd::QbdSolution& solution,
                                    double deadline, double nu_bar) {
  return 1.0 - delay_violation_probability(solution, deadline, nu_bar);
}

}  // namespace performa::core
