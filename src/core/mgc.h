// Multi-server queue approximations: exact M/M/c (Erlang-C) and the
// Lee-Longton M/G/c approximation
//
//   E[W_q(M/G/c)] ~ (SCV_s + 1)/2 * E[W_q(M/M/c)],
//
// used as the completion-time comparator baseline (see
// completion_time.h). All quantities count the *number in system* to
// match the rest of the library.
#pragma once

#include "core/completion_time.h"

namespace performa::core::mgc {

/// Erlang-C: probability an arriving customer waits in M/M/c.
/// `a` = offered load lambda/mu (in Erlangs), `c` servers; requires
/// a < c.
double erlang_c(double a, unsigned c);

/// Mean waiting time in queue for M/M/c.
double mmc_mean_wait(double lambda, double mu, unsigned c);

/// Mean number in system for M/M/c.
double mmc_mean_number(double lambda, double mu, unsigned c);

/// Lee-Longton M/G/c approximation of the mean number in system, given
/// the first two service-time moments.
double mgc_mean_number(double lambda, const Moments2& service, unsigned c);

}  // namespace performa::core::mgc
