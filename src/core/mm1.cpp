#include "core/mm1.h"

#include <cmath>

#include "linalg/errors.h"

namespace performa::core::mm1 {

namespace {
void check_rho(double rho) {
  PERFORMA_EXPECTS(rho >= 0.0 && rho < 1.0, "mm1: rho must lie in [0,1)");
}
}  // namespace

double mean_queue_length(double rho) {
  check_rho(rho);
  return rho / (1.0 - rho);
}

double pmf(double rho, std::size_t k) {
  check_rho(rho);
  return (1.0 - rho) * std::pow(rho, static_cast<double>(k));
}

double tail(double rho, std::size_t k) {
  check_rho(rho);
  return std::pow(rho, static_cast<double>(k));
}

double variance(double rho) {
  check_rho(rho);
  return rho / ((1.0 - rho) * (1.0 - rho));
}

double mean_system_time(double lambda, double mu) {
  PERFORMA_EXPECTS(mu > lambda && lambda >= 0.0,
                   "mm1: need mu > lambda >= 0");
  return 1.0 / (mu - lambda);
}

}  // namespace performa::core::mm1
