// The N-Burst teletraffic dual (Sec. 2.3 of the paper).
//
// N statistically identical ON/OFF sources emit packets at peak rate
// lambda_p while ON; the aggregate feeds a single exponential server of
// rate mu. This is an MMPP/M/1 queue built from exactly the same
// machinery as the cluster model with the roles of arrival and service
// processes swapped:
//
//   cluster (M/MMPP/1)                 telco (MMPP/M/1)
//   -------------------                ------------------
//   N servers                          N sources
//   service rate during UP: nu_p       arrival rate during ON: lambda_p
//   availability A = MTTF/(MTTF+MTTR)  burstiness b = OFF/(ON+OFF)
//   avg service rate N nu_p A (d=0)    avg arrival rate N lambda_p (1-b)
//
// High-variance OFF... no: high-variance *ON* periods play the role the
// high-variance repair (DOWN) periods play in the cluster -- both modulate
// the rate that saturates the queue.
#pragma once

#include "map/lumped_aggregate.h"
#include "medist/me_dist.h"
#include "qbd/solution.h"

namespace performa::core {

/// N-Burst traffic model parameters.
struct NBurstParams {
  unsigned n_sources = 2;
  double lambda_p = 2.0;  ///< peak packet rate while ON
  medist::MeDistribution on = medist::exponential_from_mean(10.0);
  medist::MeDistribution off = medist::exponential_from_mean(90.0);
  double background_rate = 0.0;  ///< optional non-bursty Poisson background
};

/// MMPP/M/1 queue fed by N aggregated ON/OFF sources.
class NBurstModel {
 public:
  explicit NBurstModel(NBurstParams params);

  const NBurstParams& params() const noexcept { return params_; }

  /// Fraction of time a source is OFF (the paper's burst parameter b).
  double burstiness() const;

  /// Long-run aggregate arrival rate N lambda_p (1-b) + background.
  double mean_arrival_rate() const;

  /// Service rate giving utilization rho: mu = mean_arrival_rate() / rho.
  double mu_for_rho(double rho) const;

  /// The aggregated arrival MMPP.
  const map::Mmpp& arrivals() const noexcept { return aggregate_.mmpp(); }

  /// Stationary solution of the MMPP/M/1 queue with service rate mu.
  qbd::QbdSolution solve(double mu,
                         const qbd::SolverOptions& opts = {}) const;

 private:
  NBurstParams params_;
  map::ServerModel source_;  // reuses the UP/DOWN machinery: ON<->UP
  map::LumpedAggregate aggregate_;
};

}  // namespace performa::core
