#include "core/cluster_model.h"

#include <utility>

#include "core/mm1.h"

namespace performa::core {

ClusterModel::ClusterModel(ClusterParams params)
    : params_(std::move(params)),
      server_(params_.up, params_.down, params_.nu_p, params_.delta),
      aggregate_(server_, params_.n_servers) {}

double ClusterModel::availability() const { return server_.availability(); }

double ClusterModel::mean_service_rate() const {
  return params_.n_servers * server_.mean_service_rate();
}

double ClusterModel::lambda_for_rho(double rho) const {
  PERFORMA_EXPECTS(rho > 0.0 && rho < 1.0,
                   "lambda_for_rho: rho must lie in (0,1)");
  return rho * mean_service_rate();
}

double ClusterModel::rho_for_lambda(double lambda) const {
  PERFORMA_EXPECTS(lambda > 0.0, "rho_for_lambda: lambda must be positive");
  return lambda / mean_service_rate();
}

BlowupParams ClusterModel::blowup_params() const {
  BlowupParams p;
  p.n_servers = params_.n_servers;
  p.nu_p = params_.nu_p;
  p.delta = params_.delta;
  p.availability = availability();
  return p;
}

qbd::QbdSolution ClusterModel::solve(double lambda,
                                     const qbd::SolverOptions& opts) const {
  return qbd::QbdSolution(qbd::m_mmpp_1(aggregate_.mmpp(), lambda), opts);
}

qbd::LevelDependentSolution ClusterModel::solve_load_dependent(
    double lambda, const qbd::SolverOptions& opts) const {
  return qbd::LevelDependentSolution(
      qbd::cluster_level_dependent_blocks(aggregate_, params_.nu_p,
                                          params_.delta, lambda),
      opts);
}

double ClusterModel::normalized_mean_queue_length(
    double rho, const qbd::SolverOptions& opts) const {
  const double mql = solve(lambda_for_rho(rho), opts).mean_queue_length();
  return mql / mm1::mean_queue_length(rho);
}

}  // namespace performa::core
