#include "core/mgc.h"

#include <cmath>

#include "linalg/errors.h"

namespace performa::core::mgc {

double erlang_c(double a, unsigned c) {
  PERFORMA_EXPECTS(c >= 1, "erlang_c: need at least one server");
  PERFORMA_EXPECTS(a >= 0.0 && a < static_cast<double>(c),
                   "erlang_c: offered load must satisfy a < c");
  // Stable recurrence over the Erlang-B blocking probability:
  // B(0) = 1, B(k) = a B(k-1) / (k + a B(k-1)); C = B(c)/(1 - rho (1 - B(c))).
  double b = 1.0;
  for (unsigned k = 1; k <= c; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  const double rho = a / static_cast<double>(c);
  return b / (1.0 - rho * (1.0 - b));
}

double mmc_mean_wait(double lambda, double mu, unsigned c) {
  PERFORMA_EXPECTS(lambda > 0.0 && mu > 0.0, "mmc_mean_wait: rates > 0");
  const double a = lambda / mu;
  const double rho = a / static_cast<double>(c);
  PERFORMA_EXPECTS(rho < 1.0, "mmc_mean_wait: unstable (rho >= 1)");
  return erlang_c(a, c) / (static_cast<double>(c) * mu - lambda);
}

double mmc_mean_number(double lambda, double mu, unsigned c) {
  return lambda * (mmc_mean_wait(lambda, mu, c) + 1.0 / mu);
}

double mgc_mean_number(double lambda, const Moments2& service, unsigned c) {
  PERFORMA_EXPECTS(lambda > 0.0 && service.m1 > 0.0,
                   "mgc_mean_number: positive rates required");
  const double mu = 1.0 / service.m1;
  const double wq_mmc = mmc_mean_wait(lambda, mu, c);
  const double wq = 0.5 * (service.scv() + 1.0) * wq_mmc;
  return lambda * (wq + service.m1);
}

}  // namespace performa::core::mgc
