#include "core/blowup.h"

#include "linalg/errors.h"

namespace performa::core {

void BlowupParams::validate() const {
  PERFORMA_EXPECTS(n_servers >= 1, "BlowupParams: n_servers must be >= 1");
  PERFORMA_EXPECTS(nu_p > 0.0, "BlowupParams: nu_p must be positive");
  PERFORMA_EXPECTS(delta >= 0.0 && delta <= 1.0,
                   "BlowupParams: delta must lie in [0,1]");
  PERFORMA_EXPECTS(availability > 0.0 && availability <= 1.0,
                   "BlowupParams: availability must lie in (0,1]");
}

std::vector<double> service_rate_ladder(const BlowupParams& p) {
  p.validate();
  const double up_rate = p.nu_p * (p.availability +
                                   p.delta * (1.0 - p.availability));
  std::vector<double> nu(p.n_servers + 1);
  for (unsigned i = 0; i <= p.n_servers; ++i) {
    nu[i] = (p.n_servers - i) * up_rate + i * p.delta * p.nu_p;
  }
  return nu;
}

double mean_service_rate(const BlowupParams& p) {
  p.validate();
  return p.n_servers * p.nu_p *
         (p.availability + p.delta * (1.0 - p.availability));
}

std::vector<double> blowup_utilizations(const BlowupParams& p) {
  const std::vector<double> nu = service_rate_ladder(p);
  const double nu_bar = nu[0];
  std::vector<double> rho(p.n_servers);
  for (unsigned i = 1; i <= p.n_servers; ++i) rho[i - 1] = nu[i] / nu_bar;
  return rho;  // descending: rho_1 > rho_2 > ... > rho_N
}

unsigned blowup_region(const BlowupParams& p, double rho) {
  PERFORMA_EXPECTS(rho >= 0.0 && rho < 1.0,
                   "blowup_region: rho must lie in [0,1)");
  const std::vector<double> nu = service_rate_ladder(p);
  const double lambda = rho * nu[0];
  // Region i: nu_i < lambda < nu_{i-1}; region 0 if lambda <= nu_N.
  for (unsigned i = 1; i <= p.n_servers; ++i) {
    if (lambda > nu[i]) return i;
  }
  return 0;
}

double tail_exponent(unsigned region, double alpha) {
  PERFORMA_EXPECTS(region >= 1, "tail_exponent: region must be >= 1");
  PERFORMA_EXPECTS(alpha > 1.0, "tail_exponent: alpha must exceed 1");
  return region * (alpha - 1.0) + 1.0;
}

double availability_boundary(const BlowupParams& p, unsigned i,
                             double lambda) {
  p.validate();
  PERFORMA_EXPECTS(i < p.n_servers,
                   "availability_boundary: i must lie in [0, N-1]");
  PERFORMA_EXPECTS(p.delta < 1.0,
                   "availability_boundary: undefined for delta = 1");
  PERFORMA_EXPECTS(lambda > 0.0, "availability_boundary: lambda > 0");
  const double share = (lambda - i * p.delta * p.nu_p) /
                       ((p.n_servers - i) * p.nu_p);
  return (share - p.delta) / (1.0 - p.delta);
}

double stability_availability(const BlowupParams& p, double lambda) {
  return availability_boundary(p, 0, lambda);
}

bool has_blowup(const BlowupParams& p, double lambda) {
  p.validate();
  return lambda > p.n_servers * p.nu_p * p.delta;
}

}  // namespace performa::core
