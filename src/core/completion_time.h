// Completion-time analysis: the classical alternative the paper mentions
// in Sec. 2.2 ("the heavy-tailed repair periods can be modeled as
// occasional heavy-tailed services ... M/G/1 or M/G/c type analysis").
//
// For a crash-prone server with Resume semantics, an exponential task of
// mean E[T], failures hitting a *busy* server at rate f, and repairs R,
// the effective service ("completion") time is
//
//   C = T + sum_{i=1}^{N(T)} R_i,     N(T) | T ~ Poisson(f T),
//
// with moments
//
//   E[C]   = E[T] (1 + f E[R])
//   E[C^2] = (1 + f E[R])^2 E[T^2] + f E[T] E[R^2].
//
// Feeding these into an M/G/c approximation gives the comparator used in
// bench/ext6_mgc_comparator -- which demonstrates *why* the QBD model is
// necessary: the M/G/c view has no notion of the blow-up regions, because
// it scrambles the temporal correlation of repairs across servers.
#pragma once

#include "medist/me_dist.h"

namespace performa::core {

/// First two moments of a positive random variable.
struct Moments2 {
  double m1 = 0.0;
  double m2 = 0.0;

  double variance() const { return m2 - m1 * m1; }
  double scv() const { return variance() / (m1 * m1); }
};

/// Completion-time moments for Resume semantics (see file comment).
/// `task`: the task-time distribution (any ME distribution; only its
/// first two moments enter). `failure_rate` = 1/MTTF. `repair`: the
/// repair-duration distribution.
Moments2 resume_completion_moments(const medist::MeDistribution& task,
                                   double failure_rate,
                                   const medist::MeDistribution& repair);

/// Completion-time moments for Restart semantics with exponential task
/// times: by memorylessness the re-done work is again exponential, so for
/// exponential tasks Restart and Resume coincide in distribution (the
/// paper's queue-length equivalence); provided separately so call sites
/// document their intent.
Moments2 restart_completion_moments_exp_task(double task_rate,
                                             double failure_rate,
                                             const medist::MeDistribution& repair);

}  // namespace performa::core
