// Blow-up point characterization (Sec. 3.1 of the paper).
//
// While i of the N servers sit in a *long* repair period, the cluster's
// mean service rate degrades to
//
//   nu_i = (N - i)(nu_p A + delta nu_p (1 - A)) + i delta nu_p ,  i = 0..N
//
// with nu_0 = nu_bar, the long-term average rate. If the arrival rate
// lambda falls in (nu_i, nu_{i-1}), at least i simultaneous long repairs
// are needed to oversaturate the queue; with power-tail repair times of
// exponent alpha the queue-length pmf then shows a (truncated) power tail
// with exponent beta_i = i(alpha - 1) + 1. The boundaries nu_i / nu_bar
// are the blow-up utilizations; crossing one changes the performance
// qualitatively ("blow-up points", Fig. 1/3/4/5/6).
#pragma once

#include <cstddef>
#include <vector>

namespace performa::core {

/// Static cluster parameters entering the blow-up analysis.
struct BlowupParams {
  unsigned n_servers = 2;   ///< N
  double nu_p = 2.0;        ///< full service rate of one UP server
  double delta = 0.2;       ///< degradation factor in [0,1]
  double availability = 0.9;///< A = MTTF / (MTTF + MTTR)

  void validate() const;
};

/// nu_i for i = 0..N (i servers in a long repair period).
/// nu_0 = nu_bar >= nu_1 >= ... >= nu_N = N delta nu_p.
std::vector<double> service_rate_ladder(const BlowupParams& p);

/// Long-term average service rate nu_bar = N nu_p (A + delta (1 - A)).
double mean_service_rate(const BlowupParams& p);

/// Blow-up utilizations rho_i = nu_i / nu_bar for i = 1..N, descending.
/// rho < rho_N: insensitive region; rho in (rho_i, rho_{i-1}): region i.
std::vector<double> blowup_utilizations(const BlowupParams& p);

/// Blow-up region index for a given utilization:
/// 0 = insensitive (even all-N long repairs cannot oversaturate),
/// i in 1..N = at least i simultaneous long repairs oversaturate,
/// i.e. lambda in (nu_i, nu_{i-1}).
/// Throws InvalidArgument if rho is not in [0, 1).
unsigned blowup_region(const BlowupParams& p, double rho);

/// Queue-length tail exponent in region i >= 1 for repair-time tail
/// exponent alpha: beta_i = i (alpha - 1) + 1.
double tail_exponent(unsigned region, double alpha);

/// Availability at which lambda equals nu_i, i.e. the region-i boundary
/// of Fig. 5 (Eq. 5 of the paper solved for A):
///
///   A_i = ((lambda - i delta nu_p) / ((N - i) nu_p) - delta) / (1 - delta)
///
/// defined for i = 0..N-1 and delta < 1. The A_i increase with i:
/// A > A_0 is the stability region, and availability A in (A_{i-1}, A_i)
/// puts the model in blow-up region i (i simultaneous long repairs
/// oversaturate). Above A_{N-1} the model sits in region N if
/// has_blowup(), else in the insensitive region.
double availability_boundary(const BlowupParams& p, unsigned i, double lambda);

/// Smallest availability keeping the queue stable at arrival rate lambda
/// (A_0 above). Values <= 0 mean "stable for every availability";
/// values >= 1 mean "unstable even at A = 1".
double stability_availability(const BlowupParams& p, double lambda);

/// True iff a blow-up region exists at all for this lambda: the paper's
/// condition lambda > N nu_p delta (otherwise even N crashed/degraded
/// servers keep up and the repair-time distribution is irrelevant).
bool has_blowup(const BlowupParams& p, double lambda);

}  // namespace performa::core
