// QoS / delay-bound analysis (paper Sec. 2.2):
//
//   Pr(S > d)  ~  Pr(Q > d * nu_bar)
//
// links the system-time (sojourn) distribution to the queue-length tail
// through the average service rate nu_bar; for a task with deadline d the
// right-hand side estimates the probability of missing it. These helpers
// make the mapping explicit, and bench/ext5_delay_bound validates it
// against simulated sojourn times.
#pragma once

#include <cstddef>

#include "qbd/solution.h"

namespace performa::core {

/// Pr(S > d) via the paper's queue-tail approximation: Pr(Q > d*nu_bar).
/// `nu_bar` is the long-run average service rate of the cluster.
double delay_violation_probability(const qbd::QbdSolution& solution,
                                   double deadline, double nu_bar);

/// Smallest deadline d such that Pr(S > d) <= eps under the same
/// approximation (bisection over the queue tail; bin granularity is one
/// task, i.e. 1/nu_bar time units).
double min_deadline_for(const qbd::QbdSolution& solution, double eps,
                        double nu_bar, std::size_t k_max = 2000000);

/// Fraction of tasks that meet deadline d: 1 - delay violation.
double deadline_success_probability(const qbd::QbdSolution& solution,
                                    double deadline, double nu_bar);

}  // namespace performa::core
