#include "core/nburst.h"

#include <utility>

namespace performa::core {

namespace {

// A source is a "server" whose UP periods are the ON periods: it emits at
// lambda_p while ON and at rate 0 while OFF (delta = 0). The optional
// background Poisson rate is added uniformly to every phase afterwards.
map::ServerModel make_source(const NBurstParams& p) {
  return map::ServerModel(p.on, p.off, p.lambda_p, 0.0);
}

}  // namespace

NBurstModel::NBurstModel(NBurstParams params)
    : params_(std::move(params)),
      source_(make_source(params_)),
      aggregate_(source_, params_.n_sources) {
  PERFORMA_EXPECTS(params_.background_rate >= 0.0,
                   "NBurstModel: background rate must be non-negative");
}

double NBurstModel::burstiness() const {
  // availability() is the ON fraction here; b is the OFF fraction.
  return 1.0 - source_.availability();
}

double NBurstModel::mean_arrival_rate() const {
  return params_.n_sources * params_.lambda_p * (1.0 - burstiness()) +
         params_.background_rate;
}

double NBurstModel::mu_for_rho(double rho) const {
  PERFORMA_EXPECTS(rho > 0.0 && rho < 1.0, "mu_for_rho: rho in (0,1)");
  return mean_arrival_rate() / rho;
}

qbd::QbdSolution NBurstModel::solve(double mu,
                                    const qbd::SolverOptions& opts) const {
  if (params_.background_rate == 0.0) {
    return qbd::QbdSolution(qbd::mmpp_m_1(aggregate_.mmpp(), mu), opts);
  }
  // Shift every modulated rate by the background Poisson stream.
  linalg::Vector rates = aggregate_.mmpp().rates();
  for (double& r : rates) r += params_.background_rate;
  const map::Mmpp with_bg(aggregate_.mmpp().generator(), rates);
  return qbd::QbdSolution(qbd::mmpp_m_1(with_bg, mu), opts);
}

}  // namespace performa::core
