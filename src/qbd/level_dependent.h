// Level-dependent boundary extension of the cluster queue (Sec. 2.4 of the
// paper, following the approach of Krieger/Naumov and Schwefel's TCP
// model): with fewer tasks than servers, not all servers can be busy, so
// the service-completion rates in the first N level rows differ.
//
// Levels 0..C-1 carry level-specific service matrices M_k (rate of the
// k -> k-1 transition); from level C on the process is homogeneous and the
// usual matrix-geometric tail pi_{C+j} = pi_C R^j applies.
//
// Like QbdSolution, every solving construction is verified a posteriori:
// the released solution carries the R solve's SolveReport plus a
// TrustReport grading the r-residual, the defect of the full
// (pre-normalization) boundary balance system, and compensated
// probability-mass conservation. A suspect first verdict triggers one
// tighter-tolerance re-solve; a final rejected verdict throws
// TrustRejected instead of releasing wrong numbers.
#pragma once

#include <vector>

#include "map/lumped_aggregate.h"
#include "map/repair_facility.h"
#include "qbd/solution.h"

namespace performa::qbd {

/// Description of a QBD whose first C levels are inhomogeneous.
struct LevelDependentBlocks {
  Matrix q;                       ///< phase-process generator
  double lambda = 0.0;            ///< Poisson arrival rate
  std::vector<Matrix> service;    ///< service[k] = M_{k+1}, k = 0..C-1;
                                  ///< service.back() repeats for levels > C
  std::size_t phase_dim() const noexcept { return q.rows(); }
  std::size_t boundary_levels() const noexcept { return service.size(); }
};

/// Stationary solution of the level-dependent QBD.
class LevelDependentSolution {
 public:
  /// Solves R and the boundary system, verifies per opts.trust and
  /// re-solves once at tighter tolerance on a suspect verdict. Throws
  /// NumericalError if the queue is unstable or the solvers fail, and
  /// TrustRejected if the healed answer still fails a rejection threshold.
  explicit LevelDependentSolution(const LevelDependentBlocks& blocks,
                                  const SolverOptions& opts = {});

  /// Pr(Q = k).
  double pmf(std::size_t k) const;
  /// Pr(Q >= k).
  double tail(std::size_t k) const;
  double mean_queue_length() const;
  double probability_empty() const;

  /// Boundary level count C (levels with their own pi_k vector).
  std::size_t boundary_levels() const noexcept { return pis_.size() - 1; }

  /// Boundary vector pi_k, k = 0..C.
  const Vector& pi(std::size_t k) const;
  /// Rate matrix of the homogeneous tail (levels >= C).
  const Matrix& r() const noexcept { return r_; }

  /// Guardrail diagnostics of the underlying R solve.
  const SolveReport& report() const noexcept { return report_; }
  /// A posteriori trust verdict with per-check evidence.
  const TrustReport& trust() const noexcept { return trust_; }

 private:
  /// One full solve pass; returns the scaled R-residual and stores the
  /// pre-normalization boundary defect in boundary_defect_.
  double solve(const LevelDependentBlocks& blocks, const SolverOptions& opts);
  void run_checks(const TrustPolicy& policy, double r_resid);

  std::vector<Vector> pis_;  // pi_0 .. pi_C
  Matrix r_;
  Matrix i_minus_r_inv_;
  double boundary_defect_ = 0.0;
  SolveReport report_;
  TrustReport trust_;
};

/// Build the load-dependent cluster queue on the lumped state space:
/// with k tasks in the system and occupancy state s (u UP servers), the
/// service rate is
///
///   nu_k(s) = nu_p * min(k, u) + delta * nu_p * min(max(k-u, 0), N-u),
///
/// i.e. the dispatcher keeps as many tasks as possible on fully
/// operational servers and overflow tasks run degraded. For k >= N this
/// equals the load-independent Eq. (2) of the paper.
LevelDependentBlocks cluster_level_dependent_blocks(
    const map::LumpedAggregate& cluster, double nu_p, double delta,
    double lambda);

/// Same construction on the shared-repair-facility process: the per-state
/// operational-slot count a replaces the UP count, so repair contention
/// (fewer operational slots, longer DOWN excursions) feeds straight into
/// the service rates. When the facility is homogeneous (c >= N, s = 0)
/// the blocks equal cluster_level_dependent_blocks on the delegated
/// LumpedAggregate bit-for-bit.
LevelDependentBlocks repair_facility_level_dependent_blocks(
    const map::RepairFacility& facility, double lambda);

}  // namespace performa::qbd
