// Finite-buffer queue (paper Sec. 2.4, second bullet): the dispatcher can
// hold at most K tasks (including those in service); arrivals finding the
// system full are lost. The resulting finite QBD is solved exactly by
// backward block elimination:
//
//   pi_K = pi_{K-1} R_K,   R_K = A0 (-(A1 + A0))^{-1},
//   pi_k = pi_{k-1} R_k,   R_k = A0 (-(A1 + R_{k+1} A2))^{-1},  k < K,
//   pi_0 (B00 + R_1 A2) = 0, normalized over all levels.
//
// Cost is O(K m^3); K in the tens of thousands is practical.
#pragma once

#include <vector>

#include "qbd/qbd.h"

namespace performa::qbd {

/// Stationary solution of a QBD truncated at level K (blocked arrivals
/// are lost; the local block at level K is A1 + A0).
class FiniteQbdSolution {
 public:
  /// `capacity` = K >= 1, the maximal number of tasks in the system.
  FiniteQbdSolution(const QbdBlocks& blocks, std::size_t capacity);

  std::size_t capacity() const noexcept { return pis_.size() - 1; }

  double pmf(std::size_t k) const;
  double tail(std::size_t k) const;
  double mean_queue_length() const;
  double probability_empty() const;

  /// Probability that the system is full (time-stationary). For Poisson
  /// arrivals this is also the blocking probability by PASTA.
  double probability_full() const;

  /// Blocking probability seen by arrivals: the event-stationary
  /// probability of finding the system full, i.e. the arrival rate out of
  /// full states divided by the total arrival rate. Equals
  /// probability_full() for Poisson arrivals.
  double blocking_probability() const;

  /// Per-phase stationary vector at level k (diagnostics).
  const linalg::Vector& level(std::size_t k) const;

 private:
  std::vector<linalg::Vector> pis_;
  QbdBlocks blocks_;
};

}  // namespace performa::qbd
