// Solver diagnostics threaded through the matrix-geometric machinery.
//
// Every R/G solve produces a SolveReport describing what was attempted,
// which algorithm won, and how good the result is. On failure the report
// travels inside a SolverFailure exception so callers (and the perfctl
// CLI) can print *why* a solve died instead of a bare one-line message.
#pragma once

#include <string>
#include <vector>

#include "linalg/errors.h"

namespace performa::qbd {

/// Algorithms the tiered R/G solver can attempt, in escalation order.
enum class SolveAlgorithm {
  kSuccessiveSubstitution,  ///< linear convergence, bulletproof
  kLogarithmicReduction,    ///< quadratic convergence (Latouche-Ramaswami)
  kNewtonShifted,           ///< one-sided Newton with per-step shifted block
};

const char* to_string(SolveAlgorithm a) noexcept;

/// One entry in the fallback chain: what was tried and how it ended.
struct SolveAttempt {
  SolveAlgorithm algorithm = SolveAlgorithm::kSuccessiveSubstitution;
  unsigned iterations = 0;  ///< iterations consumed by this attempt
  double defect = 0.0;      ///< best *scaled* defect/residual reached
  double seconds = 0.0;     ///< wall-clock time (span-backed, obs layer)
  bool converged = false;
  std::string note;         ///< failure reason when !converged
};

/// Full diagnostics of one R-matrix solve.
struct SolveReport {
  bool converged = false;
  /// The solve aborted cooperatively: the thread's installed deadline
  /// (obs::DeadlineScope) expired or was cancelled mid-iteration. The
  /// interrupted attempt's note records where the budget ran out.
  bool deadline_exceeded = false;
  SolveAlgorithm winner = SolveAlgorithm::kLogarithmicReduction;
  unsigned iterations = 0;       ///< iterations of the winning attempt
  /// Scaled residual ||A0 + R A1 + R^2 A2||_inf / (||A0|| + ||A1|| +
  /// ||A2||) at return -- dimensionless, comparable across rate
  /// magnitudes, and the quantity the trust thresholds grade.
  double final_defect = 0.0;
  /// The raw (unscaled) residual norm, kept for diagnostics: defect *
  /// block scale, in the model's rate units.
  double final_defect_raw = 0.0;
  double spectral_radius = 0.0;  ///< sp(R) estimate (caudal characteristic)
  double condition = 0.0;        ///< kappa_1 estimate of the final linear solve
  double utilization = 0.0;      ///< mean-drift rho from the pre-check
  /// Query id active when the solve started (obs::current_query_id());
  /// empty outside a request scope. Joins this report against daemon
  /// wire replies, slow-query log records and flight-recorder dumps.
  std::string query_id;
  std::vector<SolveAttempt> attempts;

  /// Multi-line human-readable rendering (perfctl --report).
  std::string to_string() const;

  /// Single-line rendering for contexts where the full report does not
  /// fit (sweep-runner progress lines, checkpoint records).
  std::string summary() const;
};

/// Solve failed after exhausting the fallback chain; carries the report.
class SolverFailure : public NumericalError {
 public:
  SolverFailure(const std::string& what, SolveReport report)
      : NumericalError(what + "\n" + report.to_string()),
        report_(std::move(report)) {}

  const SolveReport& report() const noexcept { return report_; }

 private:
  SolveReport report_;
};

/// The solve was aborted cooperatively because the calling thread's
/// deadline expired (or its token was cancelled) between iterations;
/// carries the partial report with deadline_exceeded set. The solve did
/// not fail -- it ran out of budget -- so callers with a cached prior
/// answer can degrade to it instead of erroring.
class DeadlineExceeded : public DeadlineError {
 public:
  DeadlineExceeded(const std::string& what, SolveReport report)
      : DeadlineError(what), report_(std::move(report)) {
    report_.deadline_exceeded = true;
  }

  const SolveReport& report() const noexcept { return report_; }

 private:
  SolveReport report_;
};

/// Stability pre-check rejected the model: mean drift is non-negative
/// (utilization >= 1), so no stationary solution exists. Thrown *before*
/// any iteration budget is spent.
class UnstableModel : public NumericalError {
 public:
  UnstableModel(const std::string& what, double utilization)
      : NumericalError(what), utilization_(utilization) {}

  double utilization() const noexcept { return utilization_; }

 private:
  double utilization_;
};

}  // namespace performa::qbd
