// Transient analysis of the (capacity-truncated) cluster queue by
// uniformization: how does the queue-length distribution evolve from an
// arbitrary initial condition -- e.g. the backlog left behind by an
// outage? Performability questions of the "how long until we recover"
// kind are answered here; the stationary solvers only give the limit.
//
// The method is standard randomization: with Lambda >= max_i |q_ii| and
// P = I + Q/Lambda,  v(t) = sum_n Pois(Lambda t; n) v(0) P^n. The
// implementation never materializes the full generator; it applies the
// block-tridiagonal operator level by level, and splits long horizons
// into segments to keep the Poisson weights well-conditioned.
#pragma once

#include <vector>

#include "qbd/qbd.h"

namespace performa::qbd {

/// Distribution over the truncated state space: one phase vector per
/// level 0..K.
using LevelState = std::vector<linalg::Vector>;

class TransientSolver {
 public:
  /// Queue truncated at `capacity` levels (arrivals into a full system
  /// are lost, matching FiniteQbdSolution).
  TransientSolver(const QbdBlocks& blocks, std::size_t capacity);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t phase_dim() const noexcept { return blocks_.phase_dim(); }

  /// Point mass at `level` with the given phase distribution (must sum
  /// to 1; length = phase_dim()).
  LevelState point_mass(std::size_t level, const Vector& phases) const;

  /// Evolve a distribution forward by time t. `tol` bounds the truncation
  /// error of the Poisson series (total-variation).
  LevelState evolve(const LevelState& initial, double t,
                    double tol = 1e-10) const;

  /// Marginal level distribution (queue-length pmf) of a state.
  Vector level_pmf(const LevelState& state) const;

  /// Mean queue length of a state.
  double mean_level(const LevelState& state) const;

  /// Total probability mass (must stay ~1; exposed for testing).
  double total_mass(const LevelState& state) const;

 private:
  /// w = v * P with P = I + Q/Lambda over the truncated block structure.
  LevelState apply(const LevelState& v) const;

  QbdBlocks blocks_;
  std::size_t capacity_;
  double uniformization_rate_;
  Matrix local_top_;  // A1 + A0 (level K local block)
};

}  // namespace performa::qbd
