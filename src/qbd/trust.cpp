#include "qbd/trust.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace performa::qbd {

const char* to_string(TrustVerdict v) noexcept {
  switch (v) {
    case TrustVerdict::kCertified:
      return "certified";
    case TrustVerdict::kSuspect:
      return "suspect";
    case TrustVerdict::kRejected:
      return "rejected";
  }
  return "?";
}

TrustVerdict TrustCheck::verdict() const noexcept {
  if (!std::isfinite(measured)) return TrustVerdict::kRejected;
  if (measured > rejected_above) return TrustVerdict::kRejected;
  if (measured < certified_below) return TrustVerdict::kCertified;
  return TrustVerdict::kSuspect;
}

double TrustCheck::severity() const noexcept {
  if (!std::isfinite(measured)) return std::numeric_limits<double>::infinity();
  if (certified_below <= 0.0) return std::numeric_limits<double>::infinity();
  return measured / certified_below;
}

const TrustCheck* TrustReport::worst() const noexcept {
  const TrustCheck* out = nullptr;
  for (const TrustCheck& c : checks) {
    if (out == nullptr || c.severity() > out->severity()) out = &c;
  }
  return out;
}

double TrustReport::severity() const noexcept {
  const TrustCheck* w = worst();
  return w == nullptr ? 0.0 : w->severity();
}

void TrustReport::grade() noexcept {
  verified = true;
  verdict = TrustVerdict::kCertified;
  for (const TrustCheck& c : checks) {
    const TrustVerdict v = c.verdict();
    if (static_cast<int>(v) > static_cast<int>(verdict)) verdict = v;
  }
}

std::string TrustReport::to_string() const {
  if (!verified) return "TrustReport: unverified\n";
  char line[224];
  std::string out;
  std::snprintf(line, sizeof line,
                "TrustReport: %s (refinements=%u re-solves=%u%s%s)\n",
                qbd::to_string(verdict), refinements, resolves,
                healing.empty() ? "" : ", ", healing.c_str());
  out += line;
  for (const TrustCheck& c : checks) {
    std::snprintf(line, sizeof line,
                  "  check %-18s %-9s measured=%.3e certified<%.1e "
                  "rejected>%.1e%s",
                  c.name.c_str(), qbd::to_string(c.verdict()), c.measured,
                  c.certified_below, c.rejected_above,
                  c.detail.empty() ? "" : ": ");
    out += line;
    out += c.detail;
    out += '\n';
  }
  return out;
}

std::string TrustReport::summary() const {
  if (!verified) return "unverified";
  std::string out = qbd::to_string(verdict);
  if (const TrustCheck* w = worst()) {
    char line[160];
    std::snprintf(line, sizeof line,
                  " (worst %s=%.3e, certified<%.1e; %u refinement(s), %u "
                  "re-solve(s))",
                  w->name.c_str(), w->measured, w->certified_below,
                  refinements, resolves);
    out += line;
  }
  if (!healing.empty()) {
    out += " [";
    out += healing;
    out += ']';
  }
  return out;
}

}  // namespace performa::qbd
