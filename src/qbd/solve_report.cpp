#include "qbd/solve_report.h"

#include <cstdio>

namespace performa::qbd {

const char* to_string(SolveAlgorithm a) noexcept {
  switch (a) {
    case SolveAlgorithm::kSuccessiveSubstitution:
      return "successive-substitution";
    case SolveAlgorithm::kLogarithmicReduction:
      return "logarithmic-reduction";
    case SolveAlgorithm::kNewtonShifted:
      return "newton-shifted";
  }
  return "?";
}

std::string SolveReport::to_string() const {
  char line[192];
  std::string out;
  std::snprintf(line, sizeof line,
                "SolveReport: %s, winner=%s, iterations=%u\n",
                converged          ? "converged"
                : deadline_exceeded ? "DEADLINE EXCEEDED"
                                    : "FAILED",
                qbd::to_string(winner), iterations);
  out += line;
  std::snprintf(line, sizeof line,
                "  defect=%.3e (raw %.3e)  sp(R)=%.6f  cond~%.3e  rho=%.6f\n",
                final_defect, final_defect_raw, spectral_radius, condition,
                utilization);
  out += line;
  if (!query_id.empty()) {
    out += "  qid=";
    out += query_id;
    out += '\n';
  }
  for (const SolveAttempt& a : attempts) {
    std::snprintf(line, sizeof line,
                  "  attempt %-24s it=%-6u defect=%.3e t=%.3fs %s%s",
                  qbd::to_string(a.algorithm), a.iterations, a.defect,
                  a.seconds, a.converged ? "ok" : "failed",
                  a.note.empty() ? "" : ": ");
    out += line;
    out += a.note;
    out += '\n';
  }
  return out;
}

std::string SolveReport::summary() const {
  // One line carrying the full per-attempt trail: each attempt renders
  // as algorithm:iterations/wall-time, with the winning tier marked by
  // '*' so its iteration count and cost are identifiable without the
  // multi-line report.
  char line[224];
  std::snprintf(line, sizeof line,
                "%s: %s after %u its over %zu attempt(s), defect=%.3e, "
                "sp(R)=%.4f, rho=%.4f",
                converged          ? "converged"
                : deadline_exceeded ? "deadline exceeded"
                                    : "solver failed",
                qbd::to_string(winner), iterations, attempts.size(),
                final_defect, spectral_radius, utilization);
  std::string out = line;
  out += " [";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const SolveAttempt& a = attempts[i];
    const bool won = a.converged && a.algorithm == winner;
    std::snprintf(line, sizeof line, "%s%s%s:%uit/%.3fs", i > 0 ? " " : "",
                  won ? "*" : "", qbd::to_string(a.algorithm), a.iterations,
                  a.seconds);
    out += line;
  }
  out += ']';
  return out;
}

}  // namespace performa::qbd
