// Stationary solution of a level-independent QBD and the queue-length
// metrics the paper reports: mean queue length, pmf, tail probabilities,
// and the geometric decay rate.
#pragma once

#include "qbd/rsolver.h"

namespace performa::qbd {

/// Matrix-geometric stationary solution:
///   pi_0 (boundary), pi_k = pi_1 R^{k-1} for k >= 1.
class QbdSolution {
 public:
  /// Solves R and the boundary system. Throws NumericalError if the queue
  /// is unstable or the solvers fail to converge.
  explicit QbdSolution(const QbdBlocks& blocks, const SolverOptions& opts = {});

  /// Rebuild a solution from previously computed parts -- the daemon's
  /// cache-journal rehydration path. `r`, `pi0`, `pi1` must come from an
  /// earlier successful solve of the same model; (I-R)^{-1} is
  /// recomputed, shapes and the matrix-geometric normalization are
  /// re-validated (a corrupted or mismatched triple throws instead of
  /// silently serving wrong probabilities).
  QbdSolution(Matrix r, Vector pi0, Vector pi1, SolveReport report = {});

  const Matrix& r() const noexcept { return r_; }
  const Vector& pi0() const noexcept { return pi0_; }
  const Vector& pi1() const noexcept { return pi1_; }
  std::size_t phase_dim() const noexcept { return pi0_.size(); }

  /// Pr(Q = 0) -- the probability of an empty system.
  double probability_empty() const;

  /// Pr(Q = k), where Q counts all tasks in the system.
  double pmf(std::size_t k) const;

  /// Pr(Q = 0..k_max) as a vector (computed by one sweep).
  Vector pmf_upto(std::size_t k_max) const;

  /// Tail probability Pr(Q >= k).
  double tail(std::size_t k) const;

  /// E[Q] = pi_1 (I-R)^{-2} e.
  double mean_queue_length() const;

  /// E[Q^2]; with mean_queue_length gives Var[Q].
  double second_moment() const;
  double variance() const;

  /// Geometric decay rate of the queue-length distribution: sp(R)
  /// (the caudal characteristic eta, Pr(Q = k) ~ c eta^k for large k
  /// away from blow-up regions).
  double decay_rate() const;

  /// Marginal distribution over service phases (sums the level
  /// expansion); equals the stationary phase vector of the modulating
  /// process -- used as an internal consistency check.
  Vector phase_marginal() const;

  /// Phase mass restricted to busy levels: pi_1 (I-R)^{-1}. Sums to
  /// 1 - probability_empty(); used e.g. by discard_fraction().
  Vector phase_marginal_busy() const;

  /// Convergence diagnostics from the R solve.
  unsigned r_iterations() const noexcept { return r_iterations_; }
  double r_residual() const noexcept { return r_residual_; }

  /// Full guardrail diagnostics: fallback-chain attempts, final defect,
  /// spectral-radius and condition estimates, drift utilization.
  const SolveReport& report() const noexcept { return report_; }

 private:
  Matrix r_;
  Matrix i_minus_r_inv_;  // (I - R)^{-1}, reused by every metric
  Vector pi0_;
  Vector pi1_;
  unsigned r_iterations_ = 0;
  double r_residual_ = 0.0;
  SolveReport report_;
};

/// One-line helper for the common case: mean queue length of an
/// M/MMPP/1 cluster queue.
double mean_queue_length(const map::Mmpp& service, double lambda,
                         const SolverOptions& opts = {});

}  // namespace performa::qbd
