// Stationary solution of a level-independent QBD and the queue-length
// metrics the paper reports: mean queue length, pmf, tail probabilities,
// and the geometric decay rate.
//
// Every solving construction is verified a posteriori (qbd/trust.h): the
// released solution carries a TrustReport, and a suspect first verdict
// triggers the self-healing escalation ladder
//
//   1. one iterative-refinement pass (Newton step on R from the current
//      iterate + fresh boundary solve),
//   2. a tighter-tolerance re-solve,
//   3. a re-solve on an alternate solver tier,
//
// keeping the best state seen; a final rejected verdict throws
// TrustRejected instead of releasing wrong numbers.
#pragma once

#include "qbd/rsolver.h"

namespace performa::qbd {

/// Matrix-geometric stationary solution:
///   pi_0 (boundary), pi_k = pi_1 R^{k-1} for k >= 1.
class QbdSolution {
 public:
  /// Solves R and the boundary system, then verifies and (if needed)
  /// self-heals per opts.trust. Throws NumericalError if the queue is
  /// unstable or the solvers fail to converge, and TrustRejected if the
  /// healed answer still fails a rejection threshold.
  explicit QbdSolution(const QbdBlocks& blocks, const SolverOptions& opts = {});

  /// Rebuild a solution from previously computed parts -- the daemon's
  /// cache-journal rehydration path. `r`, `pi0`, `pi1` must come from an
  /// earlier successful solve of the same model; (I-R)^{-1} is
  /// recomputed, shapes and the matrix-geometric normalization are
  /// re-validated (a corrupted or mismatched triple throws instead of
  /// silently serving wrong probabilities). The blocks are not available
  /// here, so the attached TrustReport carries the reduced check set
  /// (finiteness, sp(R), mass conservation).
  QbdSolution(Matrix r, Vector pi0, Vector pi1, SolveReport report = {});

  const Matrix& r() const noexcept { return r_; }
  const Vector& pi0() const noexcept { return pi0_; }
  const Vector& pi1() const noexcept { return pi1_; }
  std::size_t phase_dim() const noexcept { return pi0_.size(); }

  /// Tail closure (I-R)^{-1}, reused by every metric.
  const Matrix& tail_closure() const noexcept { return i_minus_r_inv_; }

  /// Pr(Q = 0) -- the probability of an empty system.
  double probability_empty() const;

  /// Pr(Q = k), where Q counts all tasks in the system.
  double pmf(std::size_t k) const;

  /// Pr(Q = 0..k_max) as a vector (computed by one sweep).
  Vector pmf_upto(std::size_t k_max) const;

  /// Tail probability Pr(Q >= k).
  double tail(std::size_t k) const;

  /// E[Q] = pi_1 (I-R)^{-2} e.
  double mean_queue_length() const;

  /// E[Q^2]; with mean_queue_length gives Var[Q].
  double second_moment() const;
  double variance() const;

  /// Geometric decay rate of the queue-length distribution: sp(R)
  /// (the caudal characteristic eta, Pr(Q = k) ~ c eta^k for large k
  /// away from blow-up regions).
  double decay_rate() const;

  /// Marginal distribution over service phases (sums the level
  /// expansion); equals the stationary phase vector of the modulating
  /// process -- used as an internal consistency check.
  Vector phase_marginal() const;

  /// Phase mass restricted to busy levels: pi_1 (I-R)^{-1}. Sums to
  /// 1 - probability_empty(); used e.g. by discard_fraction().
  Vector phase_marginal_busy() const;

  /// Convergence diagnostics from the R solve.
  unsigned r_iterations() const noexcept { return r_iterations_; }
  double r_residual() const noexcept { return r_residual_; }

  /// Full guardrail diagnostics: fallback-chain attempts, final defect,
  /// spectral-radius and condition estimates, drift utilization.
  const SolveReport& report() const noexcept { return report_; }

  /// The a posteriori trust verdict and its per-check evidence.
  const TrustReport& trust() const noexcept { return trust_; }

  /// Recompute the full trust report against `blocks` from scratch
  /// (every check re-derived from the stored R/pi0/pi1, nothing reused
  /// from the solve). Stores and returns the report; grades only, never
  /// escalates or throws.
  const TrustReport& verify(const QbdBlocks& blocks,
                            const TrustPolicy& policy = {});

  /// One self-healing pass: a one-sided Newton step on R from the current
  /// iterate plus a fresh boundary solve (with one step of iterative
  /// refinement). Leaves the trust report untouched -- callers re-verify.
  void refine(const QbdBlocks& blocks);

 private:
  /// (I-R)^{-1} + boundary solve + range clips, from the current r_.
  void assemble(const QbdBlocks& blocks);
  /// Grade the current state, reusing `r_resid` as the (already scaled)
  /// R-residual instead of recomputing it.
  void run_checks(const QbdBlocks& blocks, const TrustPolicy& policy,
                  double r_resid);
  /// verify + escalation ladder; throws TrustRejected on a final reject.
  void certify(const QbdBlocks& blocks, const SolverOptions& opts);
  /// The reduced check set for the blocks-free rehydration path.
  void verify_rehydrated();

  Matrix r_;
  Matrix i_minus_r_inv_;  // (I - R)^{-1}, reused by every metric
  Vector pi0_;
  Vector pi1_;
  unsigned r_iterations_ = 0;
  double r_residual_ = 0.0;
  SolveReport report_;
  TrustReport trust_;
};

/// One-line helper for the common case: mean queue length of an
/// M/MMPP/1 cluster queue.
double mean_queue_length(const map::Mmpp& service, double lambda,
                         const SolverOptions& opts = {});

}  // namespace performa::qbd
