// A posteriori trust verdicts for matrix-geometric solutions.
//
// A converged solve is not a correct solve: the iteration can stop on a
// stagnated update while the residual is still large, the boundary system
// can be ill-conditioned enough to lose half the digits, and a cached R
// can rot (journal corruption, bit flips) without any iteration count to
// look at. The trust layer grades every released QbdSolution with
// independent, cheap a posteriori checks:
//
//   r-residual       scaled defect ||A0 + R A1 + R^2 A2|| / sum||Ai||
//   boundary-residual relative defect of the level-0/1 balance equations
//   mass-conservation |1 - (pi0 e + pi1 (I-R)^{-1} e)|, compensated long
//                     double evaluation (the most sensitive corruption
//                     detector: (I-R)^{-1} amplifies any R perturbation
//                     by ~E[Q] near blow-up points)
//   phase-stationary  GTH-vs-LU cross-check of the phase process (two
//                     algorithms with disjoint failure modes)
//   phase-marginal    solution's phase marginal vs the GTH vector
//   forward-error     condition-scaled estimate kappa * r-residual
//
// Each check is graded against a two-threshold policy into {certified,
// suspect, rejected}; the report's verdict is the worst check. A suspect
// verdict triggers the self-healing escalation ladder inside QbdSolution
// (iterative refinement -> tighter-tolerance re-solve -> alternate solver
// tier); a final rejected verdict throws TrustRejected, which the runner
// maps to its own outcome and the daemon answers explicitly (and never
// caches or journals).
#pragma once

#include <string>
#include <vector>

#include "linalg/errors.h"

namespace performa::qbd {

/// Trustworthiness of a released answer, worst-first orderable:
/// certified < suspect < rejected.
enum class TrustVerdict {
  kCertified,  ///< every check passed its certified threshold
  kSuspect,    ///< at least one check landed between the thresholds
  kRejected,   ///< at least one check exceeded its rejection threshold
};

const char* to_string(TrustVerdict v) noexcept;

/// One a posteriori check: a dimensionless measured defect graded against
/// the policy's two thresholds for this check.
struct TrustCheck {
  std::string name;
  double measured = 0.0;
  double certified_below = 0.0;  ///< certified when measured < this
  double rejected_above = 0.0;   ///< rejected when measured > this
  std::string detail;            ///< optional context (what was compared)

  /// Grade of this check alone; a non-finite measurement is rejected.
  TrustVerdict verdict() const noexcept;

  /// measured / certified_below -- how far from the certified band the
  /// check sits (< 1 means certified).
  double severity() const noexcept;
};

/// Thresholds and switches for verification. The certified thresholds sit
/// ~3 orders of magnitude above the empirical double-precision floors of
/// healthy solves (see DESIGN.md section 11), the rejection thresholds
/// ~3 further orders up: a rejected answer is not borderline, it is wrong
/// in digits a caller would read.
struct TrustPolicy {
  bool enabled = true;   ///< verify every solving construction
  bool escalate = true;  ///< run the self-healing ladder on suspect

  double r_residual_certified = 1e-9;
  double r_residual_rejected = 1e-4;
  double boundary_residual_certified = 1e-9;
  double boundary_residual_rejected = 1e-4;
  // Empirical floors (probe over exp/erlang/TPT models, dim 3..1820, rho
  // up to 0.95, rates scaled 1e-6..1e6): pristine solves sit at <= 5e-16
  // *independently of dimension* -- the check is evaluated in compensated
  // long double, so its floor does not grow with the state space. An
  // all-entries 1-ulp corruption of R surfaces at ~eps * E[Q] through the
  // (I-R)^{-1} amplification (5e-13 at E[Q] ~ 4300), which is why this
  // threshold sits closer to its floor than the others: it is the one
  // check whose floor permits catching per-ulp rot.
  double mass_defect_certified = 5e-14;
  double mass_defect_rejected = 1e-6;
  double phase_agreement_certified = 1e-8;
  double phase_agreement_rejected = 1e-3;
  double forward_error_certified = 1e-6;
  double forward_error_rejected = 1e-1;
};

/// The evidence attached to every released solution: per-check
/// measurements plus the collapsed verdict and the healing trail that led
/// to it.
struct TrustReport {
  /// False until a verification actually ran (policy disabled, or a
  /// default-constructed solution); the verdict is meaningless then.
  bool verified = false;
  TrustVerdict verdict = TrustVerdict::kSuspect;
  std::vector<TrustCheck> checks;
  unsigned refinements = 0;  ///< self-healing refinement passes applied
  unsigned resolves = 0;     ///< tighter-tolerance / alternate-tier re-solves
  std::string healing;       ///< escalation trail, e.g. "refine->certified"

  /// Worst check by severity; nullptr when no checks ran.
  const TrustCheck* worst() const noexcept;

  /// Largest per-check severity (0 when no checks ran).
  double severity() const noexcept;

  /// Set verdict to the worst per-check verdict and mark verified.
  void grade() noexcept;

  /// Multi-line rendering (perfctl --report).
  std::string to_string() const;

  /// One-line rendering for wire protocols and progress lines.
  std::string summary() const;
};

/// The escalation ladder ran dry and the answer still fails a rejection
/// threshold: the numbers are wrong in digits a caller would read, so
/// they must not be released, cached, or journaled. Carries the full
/// evidence.
class TrustRejected : public NumericalError {
 public:
  TrustRejected(const std::string& what, TrustReport trust)
      : NumericalError(what + "\n" + trust.to_string()),
        trust_(std::move(trust)) {}

  const TrustReport& trust() const noexcept { return trust_; }

 private:
  TrustReport trust_;
};

}  // namespace performa::qbd
