#include "qbd/solution.h"

#include <cmath>

#include "linalg/lu.h"
#include "obs/deadline.h"
#include "obs/trace.h"

namespace performa::qbd {

namespace {

// x^T columns stacked: solve for [pi0 pi1] from
//   pi0 B00 + pi1 B10 = 0
//   pi0 B01 + pi1 (A1 + R A2) = 0
// with one equation replaced by the normalization
//   pi0 e + pi1 (I-R)^{-1} e = 1.
void solve_boundary(const QbdBlocks& b, const Matrix& r,
                    const Matrix& i_minus_r_inv, Vector& pi0, Vector& pi1) {
  const std::size_t m = b.phase_dim();
  const Matrix lower_right = b.a1 + r * b.a2;
  const Vector norm_tail = i_minus_r_inv * linalg::ones(m);

  // Row-vector system x M = 0 becomes M^T y = 0 with y = x^T; replace the
  // first equation with the normalization row.
  Matrix sys(2 * m, 2 * m, 0.0);
  Vector rhs(2 * m, 0.0);

  // Equation index 0: normalization.
  for (std::size_t j = 0; j < m; ++j) {
    sys(0, j) = 1.0;                // pi0 . e
    sys(0, m + j) = norm_tail[j];   // pi1 . (I-R)^{-1} e
  }
  rhs[0] = 1.0;

  // Equations 1..m-1 from the first block column (balance at level 0),
  // skipping component 0 which the normalization replaced.
  for (std::size_t c = 1; c < m; ++c) {
    for (std::size_t j = 0; j < m; ++j) {
      sys(c, j) = b.b00(j, c);
      sys(c, m + j) = b.b10(j, c);
    }
  }
  // Equations m..2m-1 from the second block column (balance at level 1).
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t j = 0; j < m; ++j) {
      sys(m + c, j) = b.b01(j, c);
      sys(m + c, m + j) = lower_right(j, c);
    }
  }

  const Vector y = linalg::Lu(sys).solve(rhs);
  pi0.assign(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(m));
  pi1.assign(y.begin() + static_cast<std::ptrdiff_t>(m), y.end());
}

}  // namespace

QbdSolution::QbdSolution(const QbdBlocks& blocks, const SolverOptions& opts) {
  RSolveResult rs = solve_r(blocks, opts);
  r_ = std::move(rs.r);
  r_iterations_ = rs.iterations;
  r_residual_ = rs.residual;
  report_ = std::move(rs.report);

  PERFORMA_SPAN("qbd.solution.assemble");
  if (obs::deadline_expired()) {
    report_.deadline_exceeded = true;
    throw DeadlineExceeded(
        "QbdSolution: deadline expired before boundary assembly", report_);
  }
  const std::size_t m = blocks.phase_dim();
  i_minus_r_inv_ = linalg::inverse(Matrix::identity(m) - r_);
  solve_boundary(blocks, r_, i_minus_r_inv_, pi0_, pi1_);
  linalg::check_finite(pi0_, "QbdSolution: boundary vector pi0");
  linalg::check_finite(pi1_, "QbdSolution: boundary vector pi1");

  // The boundary solve can produce tiny negative round-off; clip and
  // renormalize so downstream probabilities stay in range.
  for (Vector* vec : {&pi0_, &pi1_}) {
    for (double& x : *vec) {
      if (x < 0.0 && x > -1e-12) x = 0.0;
      if (x < 0.0) {
        throw NumericalError(
            "QbdSolution: boundary solve produced a negative probability");
      }
    }
  }
  const double total = linalg::sum(pi0_) +
          linalg::dot(pi1_, i_minus_r_inv_ * linalg::ones(m));
  if (std::abs(total - 1.0) > 1e-8) {
    throw NumericalError("QbdSolution: boundary normalization failed");
  }
}

QbdSolution::QbdSolution(Matrix r, Vector pi0, Vector pi1,
                         SolveReport report)
    : r_(std::move(r)),
      pi0_(std::move(pi0)),
      pi1_(std::move(pi1)),
      report_(std::move(report)) {
  const std::size_t m = r_.rows();
  PERFORMA_EXPECTS(r_.is_square() && m > 0 && pi0_.size() == m &&
                       pi1_.size() == m,
                   "QbdSolution: rehydrated R/pi0/pi1 shapes disagree");
  linalg::check_finite(r_, "QbdSolution: rehydrated R");
  linalg::check_finite(pi0_, "QbdSolution: rehydrated pi0");
  linalg::check_finite(pi1_, "QbdSolution: rehydrated pi1");
  if (spectral_radius(r_) >= 1.0) {
    throw NumericalError(
        "QbdSolution: rehydrated R has spectral radius >= 1 (corrupt or "
        "mismatched journal entry)");
  }
  i_minus_r_inv_ = linalg::inverse(Matrix::identity(m) - r_);
  const double total = linalg::sum(pi0_) +
          linalg::dot(pi1_, i_minus_r_inv_ * linalg::ones(m));
  if (std::abs(total - 1.0) > 1e-6) {
    throw NumericalError(
        "QbdSolution: rehydrated solution is not normalized (corrupt or "
        "mismatched journal entry)");
  }
  report_.converged = true;
  r_iterations_ = report_.iterations;
  r_residual_ = report_.final_defect;
}

double QbdSolution::probability_empty() const { return linalg::sum(pi0_); }

double QbdSolution::pmf(std::size_t k) const {
  if (k == 0) return probability_empty();
  Vector v = pi1_;
  for (std::size_t i = 1; i < k; ++i) v = v * r_;
  return linalg::sum(v);
}

Vector QbdSolution::pmf_upto(std::size_t k_max) const {
  Vector out(k_max + 1);
  out[0] = probability_empty();
  Vector v = pi1_;
  for (std::size_t k = 1; k <= k_max; ++k) {
    // QoS bisection sweeps k_max into the millions; poll the cooperative
    // deadline so a tail expansion honours its request budget too.
    if ((k & 4095u) == 0 && obs::deadline_expired()) {
      throw DeadlineError("pmf_upto: deadline expired during level sweep");
    }
    out[k] = linalg::sum(v);
    v = v * r_;
  }
  return out;
}

double QbdSolution::tail(std::size_t k) const {
  if (k == 0) return 1.0;
  // pi_1 R^{k-1} (I-R)^{-1} e via iterated vector-matrix products for
  // small k and binary powering for large k.
  const std::size_t steps = k - 1;
  Vector v = pi1_;
  if (steps <= 64) {
    for (std::size_t i = 0; i < steps; ++i) v = v * r_;
  } else {
    // Binary powering of R.
    Matrix pow = Matrix::identity(r_.rows());
    Matrix base = r_;
    std::size_t n = steps;
    while (n > 0) {
      if (n & 1u) pow = pow * base;
      n >>= 1u;
      if (n > 0) base = base * base;
    }
    v = v * pow;
  }
  return linalg::dot(v, i_minus_r_inv_ * linalg::ones(phase_dim()));
}

double QbdSolution::mean_queue_length() const {
  // sum_{k>=1} k pi_1 R^{k-1} e = pi_1 (I-R)^{-2} e
  const Vector e = linalg::ones(phase_dim());
  return linalg::dot(pi1_, i_minus_r_inv_ * (i_minus_r_inv_ * e));
}

double QbdSolution::second_moment() const {
  // sum_{k>=1} k^2 R^{k-1} = (I+R)(I-R)^{-3}
  const std::size_t m = phase_dim();
  const Vector e = linalg::ones(m);
  const Matrix inv3 = i_minus_r_inv_ * i_minus_r_inv_ * i_minus_r_inv_;
  return linalg::dot(pi1_, (Matrix::identity(m) + r_) * (inv3 * e));
}

double QbdSolution::variance() const {
  const double mean = mean_queue_length();
  return second_moment() - mean * mean;
}

double QbdSolution::decay_rate() const { return spectral_radius(r_); }

Vector QbdSolution::phase_marginal_busy() const {
  return pi1_ * i_minus_r_inv_;
}

Vector QbdSolution::phase_marginal() const {
  Vector out = pi0_;
  const Vector tail_mass = pi1_ * i_minus_r_inv_;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += tail_mass[i];
  return out;
}

double mean_queue_length(const map::Mmpp& service, double lambda,
                         const SolverOptions& opts) {
  return QbdSolution(m_mmpp_1(service, lambda), opts).mean_queue_length();
}

}  // namespace performa::qbd
