#include "qbd/solution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "linalg/compensated.h"
#include "linalg/ctmc.h"
#include "linalg/lu.h"
#include "obs/deadline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace performa::qbd {

namespace {

// x^T columns stacked: solve for [pi0 pi1] from
//   pi0 B00 + pi1 B10 = 0
//   pi0 B01 + pi1 (A1 + R A2) = 0
// with one equation replaced by the normalization
//   pi0 e + pi1 (I-R)^{-1} e = 1.
void solve_boundary(const QbdBlocks& b, const Matrix& r,
                    const Matrix& i_minus_r_inv, Vector& pi0, Vector& pi1) {
  const std::size_t m = b.phase_dim();
  const Matrix lower_right = b.a1 + r * b.a2;
  const Vector norm_tail = i_minus_r_inv * linalg::ones(m);

  // Row-vector system x M = 0 becomes M^T y = 0 with y = x^T; replace the
  // first equation with the normalization row.
  const std::size_t n = 2 * m;
  Matrix sys(n, n, 0.0);
  Vector rhs(n, 0.0);

  // Equation index 0: normalization.
  for (std::size_t j = 0; j < m; ++j) {
    sys(0, j) = 1.0;                // pi0 . e
    sys(0, m + j) = norm_tail[j];   // pi1 . (I-R)^{-1} e
  }
  rhs[0] = 1.0;

  // Equations 1..m-1 from the first block column (balance at level 0),
  // skipping component 0 which the normalization replaced.
  for (std::size_t c = 1; c < m; ++c) {
    for (std::size_t j = 0; j < m; ++j) {
      sys(c, j) = b.b00(j, c);
      sys(c, m + j) = b.b10(j, c);
    }
  }
  // Equations m..2m-1 from the second block column (balance at level 1).
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t j = 0; j < m; ++j) {
      sys(m + c, j) = b.b01(j, c);
      sys(m + c, m + j) = lower_right(j, c);
    }
  }

  const linalg::Lu lu(sys);
  Vector y = lu.solve(rhs);
  // One step of fixed-precision iterative refinement with a compensated
  // long-double residual: two extra triangular sweeps (O(m^2)) recover
  // the digits the factorization loses when the boundary system is
  // ill-conditioned (kappa grows like 1/(1-rho) toward saturation).
  Vector resid(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::CompensatedSum<long double> acc(
        static_cast<long double>(rhs[i]));
    for (std::size_t j = 0; j < n; ++j) {
      acc.add(-static_cast<long double>(sys(i, j)) * y[j]);
    }
    resid[i] = static_cast<double>(acc.value());
  }
  const Vector dy = lu.solve(resid);
  for (std::size_t i = 0; i < n; ++i) y[i] += dy[i];

  pi0.assign(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(m));
  pi1.assign(y.begin() + static_cast<std::ptrdiff_t>(m), y.end());
}

// |1 - (pi0 e + pi1 (I-R)^{-1} e)| in compensated long double: the
// probability-mass conservation defect. (I-R)^{-1} amplifies an R
// perturbation dR by roughly (I-R)^{-1} dR (I-R)^{-1}, i.e. by ~E[Q]^2
// near saturation, which is what makes this the most sensitive detector
// of a corrupted or under-converged R.
double mass_defect(const Vector& pi0, const Vector& pi1, const Matrix& inv) {
  linalg::CompensatedSum<long double> acc;
  for (double x : pi0) acc.add(static_cast<long double>(x));
  const std::size_t m = pi1.size();
  for (std::size_t j = 0; j < m; ++j) {
    linalg::CompensatedSum<long double> row;
    for (std::size_t k = 0; k < m; ++k) {
      row.add(static_cast<long double>(inv(j, k)));
    }
    acc.add(static_cast<long double>(pi1[j]) * row.value());
  }
  return std::abs(static_cast<double>(acc.value() - 1.0L));
}

// Relative defect of the two boundary balance equations
//   pi0 B00 + pi1 B10 = 0,   pi0 B01 + pi1 (A1 + R A2) = 0,
// evaluated component-wise in compensated long double. Component 0 of
// the first equation is NOT enforced by the boundary solve (the
// normalization row replaced it), so this measures genuine solution
// quality, not just how well LU inverted its own system.
double boundary_defect(const QbdBlocks& b, const Matrix& r, const Vector& pi0,
                       const Vector& pi1) {
  const std::size_t m = pi0.size();
  const Matrix lower_right = b.a1 + r * b.a2;
  long double worst = 0.0L;
  for (std::size_t c = 0; c < m; ++c) {
    linalg::CompensatedSum<long double> e0;
    linalg::CompensatedSum<long double> e1;
    for (std::size_t j = 0; j < m; ++j) {
      e0.add(static_cast<long double>(pi0[j]) * b.b00(j, c));
      e0.add(static_cast<long double>(pi1[j]) * b.b10(j, c));
      e1.add(static_cast<long double>(pi0[j]) * b.b01(j, c));
      e1.add(static_cast<long double>(pi1[j]) * lower_right(j, c));
    }
    worst = std::max(worst, std::abs(e0.value()));
    worst = std::max(worst, std::abs(e1.value()));
  }
  const double coeff = linalg::norm_inf(b.b00) + linalg::norm_inf(b.b10) +
                       linalg::norm_inf(b.b01) + linalg::norm_inf(lower_right);
  const double mass = std::max(linalg::norm_inf(pi0), linalg::norm_inf(pi1));
  const double scale = std::max(coeff * mass, 1e-300);
  return static_cast<double>(worst) / scale;
}

// Stationary vector of a generator via plain LU (transpose + replace one
// equation by normalization): deliberately a different algorithm family
// than GTH, so the two agreeing certifies the phase process and the two
// disagreeing flags ill-conditioning that GTH's cancellation-free
// elimination would otherwise hide.
Vector stationary_lu(const Matrix& gen) {
  const std::size_t m = gen.rows();
  Matrix sys(m, m, 0.0);
  Vector rhs(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) sys(0, j) = 1.0;
  rhs[0] = 1.0;
  for (std::size_t c = 1; c < m; ++c) {
    for (std::size_t j = 0; j < m; ++j) sys(c, j) = gen(j, c);
  }
  return linalg::Lu(sys).solve(rhs);
}

}  // namespace

QbdSolution::QbdSolution(const QbdBlocks& blocks, const SolverOptions& opts) {
  RSolveResult rs = solve_r(blocks, opts);
  r_ = std::move(rs.r);
  r_iterations_ = rs.iterations;
  r_residual_ = rs.residual;
  report_ = std::move(rs.report);

  assemble(blocks);
  if (opts.trust.enabled) certify(blocks, opts);
}

QbdSolution::QbdSolution(Matrix r, Vector pi0, Vector pi1,
                         SolveReport report)
    : r_(std::move(r)),
      pi0_(std::move(pi0)),
      pi1_(std::move(pi1)),
      report_(std::move(report)) {
  const std::size_t m = r_.rows();
  PERFORMA_EXPECTS(r_.is_square() && m > 0 && pi0_.size() == m &&
                       pi1_.size() == m,
                   "QbdSolution: rehydrated R/pi0/pi1 shapes disagree");
  linalg::check_finite(r_, "QbdSolution: rehydrated R");
  linalg::check_finite(pi0_, "QbdSolution: rehydrated pi0");
  linalg::check_finite(pi1_, "QbdSolution: rehydrated pi1");
  if (spectral_radius(r_) >= 1.0) {
    throw NumericalError(
        "QbdSolution: rehydrated R has spectral radius >= 1 (corrupt or "
        "mismatched journal entry)");
  }
  i_minus_r_inv_ = linalg::inverse(Matrix::identity(m) - r_);
  const double total = linalg::sum(pi0_) +
          linalg::dot(pi1_, i_minus_r_inv_ * linalg::ones(m));
  if (std::abs(total - 1.0) > 1e-6) {
    throw NumericalError(
        "QbdSolution: rehydrated solution is not normalized (corrupt or "
        "mismatched journal entry)");
  }
  report_.converged = true;
  r_iterations_ = report_.iterations;
  r_residual_ = report_.final_defect;
  verify_rehydrated();
}

void QbdSolution::assemble(const QbdBlocks& blocks) {
  PERFORMA_SPAN("qbd.solution.assemble");
  if (obs::deadline_expired()) {
    report_.deadline_exceeded = true;
    throw DeadlineExceeded(
        "QbdSolution: deadline expired before boundary assembly", report_);
  }
  const std::size_t m = blocks.phase_dim();
  i_minus_r_inv_ = linalg::inverse(Matrix::identity(m) - r_);
  solve_boundary(blocks, r_, i_minus_r_inv_, pi0_, pi1_);
  linalg::check_finite(pi0_, "QbdSolution: boundary vector pi0");
  linalg::check_finite(pi1_, "QbdSolution: boundary vector pi1");

  // The boundary solve can produce tiny negative round-off; clip and
  // renormalize so downstream probabilities stay in range.
  for (Vector* vec : {&pi0_, &pi1_}) {
    for (double& x : *vec) {
      if (x < 0.0 && x > -1e-12) x = 0.0;
      if (x < 0.0) {
        throw NumericalError(
            "QbdSolution: boundary solve produced a negative probability");
      }
    }
  }
  const double total = linalg::sum(pi0_) +
          linalg::dot(pi1_, i_minus_r_inv_ * linalg::ones(m));
  if (std::abs(total - 1.0) > 1e-8) {
    throw NumericalError("QbdSolution: boundary normalization failed");
  }
}

void QbdSolution::run_checks(const QbdBlocks& blocks,
                             const TrustPolicy& policy, double r_resid) {
  PERFORMA_SPAN("qbd.solution.verify");
  TrustReport t;

  t.checks.push_back({"r-residual", r_resid, policy.r_residual_certified,
                      policy.r_residual_rejected,
                      "scaled ||A0 + R A1 + R^2 A2||"});

  t.checks.push_back({"boundary-residual",
                      boundary_defect(blocks, r_, pi0_, pi1_),
                      policy.boundary_residual_certified,
                      policy.boundary_residual_rejected,
                      "level-0/1 balance equations"});

  t.checks.push_back({"mass-conservation",
                      mass_defect(pi0_, pi1_, i_minus_r_inv_),
                      policy.mass_defect_certified,
                      policy.mass_defect_rejected,
                      "|1 - pi . tail closure|, compensated"});

  // Independent cross-check of the phase process: GTH (cancellation-free
  // elimination) vs plain LU on the same generator, then the solution's
  // own phase marginal against the GTH vector. The two solvers share no
  // failure modes; the marginal ties the boundary/tail machinery back to
  // the phase process it must reproduce.
  const Matrix gen = blocks.a0 + blocks.a1 + blocks.a2;
  try {
    const Vector pi_gth = linalg::stationary_distribution(gen);
    const Vector pi_lu = stationary_lu(gen);
    t.checks.push_back({"phase-stationary",
                        linalg::max_abs_diff(pi_gth, pi_lu),
                        policy.phase_agreement_certified,
                        policy.phase_agreement_rejected, "GTH vs LU"});
    t.checks.push_back({"phase-marginal",
                        linalg::max_abs_diff(phase_marginal(), pi_gth),
                        policy.phase_agreement_certified,
                        policy.phase_agreement_rejected,
                        "solution marginal vs GTH"});
  } catch (const NumericalError& e) {
    t.checks.push_back({"phase-stationary",
                        std::numeric_limits<double>::quiet_NaN(),
                        policy.phase_agreement_certified,
                        policy.phase_agreement_rejected, e.what()});
  }

  // Condition-scaled forward-error estimate: kappa of the winning
  // attempt's final linear solve times the scaled residual bounds the
  // relative error the solve can have committed. Skipped when no
  // condition estimate is available (rehydrated reports).
  if (report_.condition > 0.0) {
    t.checks.push_back({"forward-error", report_.condition * r_resid,
                        policy.forward_error_certified,
                        policy.forward_error_rejected,
                        "cond(final solve) * r-residual"});
  }

  t.grade();
  // Preserve the healing trail across re-gradings within one escalation.
  t.refinements = trust_.refinements;
  t.resolves = trust_.resolves;
  t.healing = trust_.healing;
  trust_ = std::move(t);
}

const TrustReport& QbdSolution::verify(const QbdBlocks& blocks,
                                       const TrustPolicy& policy) {
  run_checks(blocks, policy, r_residual_norm(blocks, r_));
  return trust_;
}

void QbdSolution::refine(const QbdBlocks& blocks) {
  PERFORMA_SPAN("qbd.solution.refine");
  static obs::Counter& refinements = obs::counter("qbd.trust.refinements");
  refinements.add();
  // One-sided Newton step from the current iterate:
  //   R' = A0 (-(A1 + R A2))^{-1}.
  // The map contracts toward the minimal solution from any nearby
  // perturbed iterate, so a single step strips an injected perturbation
  // down to roundoff; the boundary re-solve then re-normalizes the
  // probability mass against the refined tail closure exactly.
  const linalg::Lu shifted(-1.0 * (blocks.a1 + r_ * blocks.a2));
  Matrix next = shifted.solve_left(blocks.a0);
  linalg::check_finite(next, "QbdSolution::refine: refined R");
  r_ = std::move(next);
  r_residual_ = r_residual_norm(blocks, r_);
  report_.final_defect = r_residual_;
  report_.final_defect_raw = r_residual_ * residual_scale(blocks);
  report_.condition = shifted.condition_estimate();
  assemble(blocks);
}

void QbdSolution::certify(const QbdBlocks& blocks, const SolverOptions& opts) {
  PERFORMA_SPAN("qbd.solution.certify");
  const TrustPolicy& policy = opts.trust;
  // First grading reuses the scaled residual solve_r just computed on
  // this exact R: the warm path pays the cheap checks only.
  run_checks(blocks, policy, r_residual_);

  if (trust_.verdict != TrustVerdict::kCertified && policy.escalate) {
    static obs::Counter& escalations = obs::counter("qbd.trust.escalations");
    escalations.add();

    struct Snapshot {
      Matrix r, inv;
      Vector p0, p1;
      SolveReport rep;
      unsigned iterations;
      double residual;
      TrustReport trust;
    };
    const auto take = [this] {
      return Snapshot{r_,      i_minus_r_inv_, pi0_,        pi1_,
                      report_, r_iterations_,  r_residual_, trust_};
    };
    const auto put_back = [this](const Snapshot& s) {
      r_ = s.r;
      i_minus_r_inv_ = s.inv;
      pi0_ = s.p0;
      pi1_ = s.p1;
      report_ = s.rep;
      r_iterations_ = s.iterations;
      r_residual_ = s.residual;
      trust_ = s.trust;
    };
    const auto better = [](const TrustReport& a, const TrustReport& b) {
      if (a.verdict != b.verdict) {
        return static_cast<int>(a.verdict) < static_cast<int>(b.verdict);
      }
      return a.severity() < b.severity();
    };

    Snapshot best = take();
    unsigned refinements = 0;
    unsigned resolves = 0;
    std::string trail;
    bool out_of_budget = false;

    // Rung 1: one self-healing refinement pass.
    try {
      refine(blocks);
      ++refinements;
      trail = "refine";
      verify(blocks, policy);
      if (better(trust_, best.trust)) best = take();
    } catch (const DeadlineError&) {
      trail = "refine(deadline)";
      out_of_budget = true;
      put_back(best);
    } catch (const NumericalError&) {
      trail = "refine(failed)";
      put_back(best);
    }

    // Rung 2: tighter-tolerance re-solve from scratch.
    if (!out_of_budget && best.trust.verdict != TrustVerdict::kCertified) {
      SolverOptions tight = opts;
      tight.tolerance = std::max(opts.tolerance * 1e-2, 1e-15);
      try {
        RSolveResult rs = solve_r(blocks, tight);
        r_ = std::move(rs.r);
        r_iterations_ = rs.iterations;
        r_residual_ = rs.residual;
        report_ = std::move(rs.report);
        assemble(blocks);
        ++resolves;
        trail += "->tight-resolve";
        verify(blocks, policy);
        if (better(trust_, best.trust)) best = take();
      } catch (const DeadlineError&) {
        trail += "->tight-resolve(deadline)";
        out_of_budget = true;
        put_back(best);
      } catch (const NumericalError&) {
        trail += "->tight-resolve(failed)";
        put_back(best);
      }
    }

    // Rung 3: alternate solver tier -- a different algorithm family may
    // not share the winner's stagnation mode.
    if (!out_of_budget && best.trust.verdict != TrustVerdict::kCertified) {
      SolverOptions alt = opts;
      alt.algorithm =
          best.rep.winner == SolveAlgorithm::kLogarithmicReduction
              ? RAlgorithm::kNewtonShifted
              : RAlgorithm::kLogarithmicReduction;
      try {
        RSolveResult rs = solve_r(blocks, alt);
        r_ = std::move(rs.r);
        r_iterations_ = rs.iterations;
        r_residual_ = rs.residual;
        report_ = std::move(rs.report);
        assemble(blocks);
        ++resolves;
        trail += "->alternate-tier";
        verify(blocks, policy);
        if (better(trust_, best.trust)) best = take();
      } catch (const DeadlineError&) {
        trail += "->alternate-tier(deadline)";
        put_back(best);
      } catch (const NumericalError&) {
        trail += "->alternate-tier(failed)";
        put_back(best);
      }
    }

    put_back(best);
    trust_.refinements = refinements;
    trust_.resolves = resolves;
    trust_.healing = trail + "->" + qbd::to_string(trust_.verdict);
  }

  static obs::Counter& certified = obs::counter("qbd.trust.certified");
  static obs::Counter& suspect = obs::counter("qbd.trust.suspect");
  static obs::Counter& rejected = obs::counter("qbd.trust.rejected");
  switch (trust_.verdict) {
    case TrustVerdict::kCertified:
      certified.add();
      break;
    case TrustVerdict::kSuspect:
      suspect.add();
      break;
    case TrustVerdict::kRejected:
      rejected.add();
      break;
  }
  if (trust_.verdict == TrustVerdict::kRejected) {
    throw TrustRejected(
        "QbdSolution: answer failed a rejection threshold after the "
        "self-healing ladder; refusing to release it",
        trust_);
  }
}

void QbdSolution::verify_rehydrated() {
  const TrustPolicy policy;
  TrustReport t;
  t.checks.push_back({"mass-conservation",
                      mass_defect(pi0_, pi1_, i_minus_r_inv_),
                      policy.mass_defect_certified,
                      policy.mass_defect_rejected,
                      "|1 - pi . tail closure|, compensated"});
  t.grade();
  t.healing = "rehydrated: reduced checks (generator blocks unavailable)";
  trust_ = std::move(t);
}

double QbdSolution::probability_empty() const { return linalg::sum(pi0_); }

double QbdSolution::pmf(std::size_t k) const {
  if (k == 0) return probability_empty();
  Vector v = pi1_;
  for (std::size_t i = 1; i < k; ++i) v = v * r_;
  return linalg::sum(v);
}

Vector QbdSolution::pmf_upto(std::size_t k_max) const {
  Vector out(k_max + 1);
  out[0] = probability_empty();
  Vector v = pi1_;
  for (std::size_t k = 1; k <= k_max; ++k) {
    // QoS bisection sweeps k_max into the millions; poll the cooperative
    // deadline so a tail expansion honours its request budget too.
    if ((k & 4095u) == 0 && obs::deadline_expired()) {
      throw DeadlineError("pmf_upto: deadline expired during level sweep");
    }
    out[k] = linalg::sum(v);
    v = v * r_;
  }
  return out;
}

double QbdSolution::tail(std::size_t k) const {
  if (k == 0) return 1.0;
  // pi_1 R^{k-1} (I-R)^{-1} e via iterated vector-matrix products for
  // small k and binary powering for large k.
  const std::size_t steps = k - 1;
  Vector v = pi1_;
  if (steps <= 64) {
    for (std::size_t i = 0; i < steps; ++i) v = v * r_;
  } else {
    // Binary powering of R.
    Matrix pow = Matrix::identity(r_.rows());
    Matrix base = r_;
    std::size_t n = steps;
    while (n > 0) {
      if (n & 1u) pow = pow * base;
      n >>= 1u;
      if (n > 0) base = base * base;
    }
    v = v * pow;
  }
  return linalg::dot(v, i_minus_r_inv_ * linalg::ones(phase_dim()));
}

double QbdSolution::mean_queue_length() const {
  // sum_{k>=1} k pi_1 R^{k-1} e = pi_1 (I-R)^{-2} e
  const Vector e = linalg::ones(phase_dim());
  return linalg::dot(pi1_, i_minus_r_inv_ * (i_minus_r_inv_ * e));
}

double QbdSolution::second_moment() const {
  // sum_{k>=1} k^2 R^{k-1} = (I+R)(I-R)^{-3}
  const std::size_t m = phase_dim();
  const Vector e = linalg::ones(m);
  const Matrix inv3 = i_minus_r_inv_ * i_minus_r_inv_ * i_minus_r_inv_;
  return linalg::dot(pi1_, (Matrix::identity(m) + r_) * (inv3 * e));
}

double QbdSolution::variance() const {
  const double mean = mean_queue_length();
  return second_moment() - mean * mean;
}

double QbdSolution::decay_rate() const { return spectral_radius(r_); }

Vector QbdSolution::phase_marginal_busy() const {
  return pi1_ * i_minus_r_inv_;
}

Vector QbdSolution::phase_marginal() const {
  Vector out = pi0_;
  const Vector tail_mass = pi1_ * i_minus_r_inv_;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += tail_mass[i];
  return out;
}

double mean_queue_length(const map::Mmpp& service, double lambda,
                         const SolverOptions& opts) {
  return QbdSolution(m_mmpp_1(service, lambda), opts).mean_queue_length();
}

}  // namespace performa::qbd
