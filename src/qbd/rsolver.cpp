#include "qbd/rsolver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "linalg/kernels.h"
#include "linalg/lu.h"
#include "linalg/pool.h"
#include "obs/deadline.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace performa::qbd {

namespace {

double residual_norm(const QbdBlocks& b, const Matrix& r) {
  return r_residual_norm(b, r);
}

// One fallback-chain attempt: the candidate R (meaningful only when the
// attempt converged), its bookkeeping record, and the condition estimate
// of the attempt's final linear solve.
struct Candidate {
  Matrix r;
  SolveAttempt attempt;
  double condition = 0.0;
  // The attempt was cut off by the thread's cooperative deadline, not by
  // a numerical failure: solve_r must stop the chain (a fallback tier
  // would blow the same budget) and surface DeadlineExceeded.
  bool deadline_expired = false;
};

// Both linearly convergent tiers (successive substitution and the
// one-sided Newton scheme) contract the update by ~sp(R) per step, and
// near a blow-up point sp(R) -> 1. Every kRateWindow iterations the
// observed contraction rate is extrapolated; when even the remaining
// budget cannot reach the tolerance, the attempt bails out right away --
// the honest "this tier cannot make it" costs dozens of iterations
// instead of tens of thousands, and the fallback chain moves on.
constexpr unsigned kRateWindow = 64;

// Returns a failure note when the extrapolation says "hopeless", nullptr
// to keep iterating. `buf` backs the formatted note.
const char* projected_miss(double diff, double window_diff, double tol,
                           unsigned it, unsigned budget, char* buf,
                           std::size_t buf_size) {
  if (diff >= window_diff) return "update stagnated";
  const double rate = std::pow(diff / window_diff, 1.0 / kRateWindow);
  const double needed = std::log(tol / diff) / std::log(rate);
  if (needed > static_cast<double>(budget - it)) {
    std::snprintf(buf, buf_size,
                  "contraction rate ~%.6f projects %.3g more iterations, "
                  "beyond the %u budget",
                  rate, needed, budget);
    return buf;
  }
  return nullptr;
}

Candidate attempt_successive(const QbdBlocks& b, double tol, unsigned budget) {
  Candidate c;
  c.attempt.algorithm = SolveAlgorithm::kSuccessiveSubstitution;

  const std::size_t m = b.phase_dim();
  const linalg::Lu neg_a1(-1.0 * b.a1);
  c.condition = neg_a1.condition_estimate();

  Matrix r = Matrix::zeros(m, m);
  double window_diff = std::numeric_limits<double>::infinity();
  char note[160];
  for (unsigned it = 1; it <= budget; ++it) {
    if (obs::deadline_expired()) {
      c.attempt.defect = residual_norm(b, r);
      c.attempt.note = "aborted: deadline expired";
      c.deadline_expired = true;
      return c;
    }
    // R_{k+1} (-A1) = A0 + R_k^2 A2
    const Matrix next = neg_a1.solve_left(b.a0 + r * r * b.a2);
    c.attempt.iterations = it;
    if (!linalg::is_finite(next)) {
      c.attempt.defect = residual_norm(b, r);
      c.attempt.note = "iterate became non-finite";
      return c;
    }
    const double diff = linalg::max_abs_diff(next, r);
    r = next;
    if (diff < tol) {
      c.attempt.defect = residual_norm(b, r);
      c.attempt.converged = true;
      c.r = std::move(r);
      return c;
    }
    if (it % kRateWindow == 0) {
      if (const char* why = projected_miss(diff, window_diff, tol, it, budget,
                                           note, sizeof note)) {
        c.attempt.defect = residual_norm(b, r);
        c.attempt.note = why;
        return c;
      }
      window_diff = diff;
    }
  }
  c.attempt.defect = residual_norm(b, r);
  c.attempt.note = "iteration budget exhausted";
  return c;
}

// Logarithmic reduction for G; never throws on non-convergence (the
// caller decides whether that is fatal).
GSolveResult logred_impl(const QbdBlocks& b, double tol, unsigned budget) {
  const std::size_t m = b.phase_dim();
  const Matrix eye = Matrix::identity(m);
  const linalg::Lu neg_a1(-1.0 * b.a1);

  // H = (-A1)^{-1} A0, L = (-A1)^{-1} A2.
  Matrix h = neg_a1.solve(b.a0);
  Matrix l = neg_a1.solve(b.a2);
  GSolveResult out;
  out.g = l;
  Matrix t = h;

  const Vector e = linalg::ones(m);
  // Quadratic convergence: ~log2 of the effective time horizon; 64
  // doublings cover any double-precision-representable scale, but allow
  // the caller's cap to bind first. The defect |1 - G e| bottoms out at a
  // model-dependent roundoff floor that can sit above a very tight
  // tolerance, so stagnation at a small defect is also accepted.
  const unsigned cap = std::min<unsigned>(budget, 64);
  double best_defect = std::numeric_limits<double>::infinity();
  unsigned stagnant = 0;
  for (unsigned it = 1; it <= cap; ++it) {
    if (obs::deadline_expired()) {
      out.defect = best_defect;
      out.deadline_expired = true;
      return out;
    }
    const Matrix u = h * l + l * h;
    const linalg::Lu eye_minus_u(eye - u);
    h = eye_minus_u.solve(h * h);
    l = eye_minus_u.solve(l * l);
    out.g += t * l;
    t = t * h;
    out.iterations = it;
    if (!linalg::is_finite(out.g)) {
      out.defect = best_defect;
      return out;
    }

    double defect = 0.0;
    const Vector ge = out.g * e;
    for (std::size_t i = 0; i < m; ++i)
      defect = std::max(defect, std::abs(1.0 - ge[i]));
    best_defect = std::min(best_defect, defect);
    out.defect = best_defect;
    if (defect < tol) {
      out.converged = true;
      return out;
    }
    // The next update to G is bounded by ||T|| ||L||; once T has decayed
    // to roundoff the iteration cannot improve further -- the remaining
    // defect is accumulated floating-point error (grows toward the
    // stability boundary), not missing probability mass.
    if (linalg::norm_inf(t) < 1e-14 && defect < 1e-5) {
      out.converged = true;
      return out;
    }
    if (defect <= best_defect) {
      stagnant = 0;
    } else if (++stagnant >= 3 && best_defect < 1e-7) {
      out.converged = true;  // converged to the roundoff floor
      return out;
    }
  }
  return out;
}

Candidate attempt_logred(const QbdBlocks& b, double tol, unsigned budget) {
  Candidate c;
  c.attempt.algorithm = SolveAlgorithm::kLogarithmicReduction;

  const GSolveResult g = logred_impl(b, tol, budget);
  c.attempt.iterations = g.iterations;
  if (g.deadline_expired) {
    c.attempt.defect = g.defect;
    c.attempt.note = "aborted: deadline expired";
    c.deadline_expired = true;
    return c;
  }
  if (!g.converged) {
    c.attempt.defect = g.defect;
    char note[96];
    std::snprintf(note, sizeof note,
                  "G defect stagnated at %.3e (tolerance %.1e)", g.defect,
                  tol);
    c.attempt.note = note;
    return c;
  }
  // R = A0 * (-(A1 + A0 G))^{-1}
  // Stability was established via the drift condition before this attempt
  // ran; sp(R) < 1 is then guaranteed analytically (power-iteration
  // estimates of it can overshoot 1 by rounding when the decay rate is
  // extremely close to 1, e.g. TPT repair at rho ~ 0.95, so it must not
  // be used as a gate here).
  const linalg::Lu shifted(-1.0 * (b.a1 + b.a0 * g.g));
  c.condition = shifted.condition_estimate();
  Matrix r = shifted.solve_left(b.a0);
  if (!linalg::is_finite(r)) {
    c.attempt.defect = g.defect;
    c.attempt.note = "R recovery from G produced a non-finite matrix";
    return c;
  }
  c.attempt.defect = residual_norm(b, r);
  c.attempt.converged = true;
  c.r = std::move(r);
  return c;
}

Candidate attempt_newton_shifted(const QbdBlocks& b, double tol,
                                 unsigned budget) {
  Candidate c;
  c.attempt.algorithm = SolveAlgorithm::kNewtonShifted;

  const std::size_t m = b.phase_dim();
  Matrix r = Matrix::zeros(m, m);
  double window_diff = std::numeric_limits<double>::infinity();
  char note[160];
  for (unsigned it = 1; it <= budget; ++it) {
    if (obs::deadline_expired()) {
      c.attempt.defect = residual_norm(b, r);
      c.attempt.note = "aborted: deadline expired";
      c.deadline_expired = true;
      return c;
    }
    // One-sided Newton step: freeze the quadratic term's leading factor at
    // the current iterate, giving R_{k+1} = A0 * (-(A1 + R_k A2))^{-1}.
    // The local block is re-shifted by the current down-drift R_k A2 every
    // step, so each iteration solves against a fresh, better-conditioned
    // matrix than the bare -A1 of successive substitution; the iteration
    // increases monotonically from 0 to the minimal solution.
    const linalg::Lu shifted(-1.0 * (b.a1 + r * b.a2));
    const Matrix next = shifted.solve_left(b.a0);
    c.attempt.iterations = it;
    if (!linalg::is_finite(next)) {
      c.attempt.defect = residual_norm(b, r);
      c.attempt.note = "iterate became non-finite";
      return c;
    }
    const double diff = linalg::max_abs_diff(next, r);
    r = next;
    if (diff < tol) {
      c.condition = shifted.condition_estimate();
      c.attempt.defect = residual_norm(b, r);
      c.attempt.converged = true;
      c.r = std::move(r);
      return c;
    }
    if (it % kRateWindow == 0) {
      if (const char* why = projected_miss(diff, window_diff, tol, it, budget,
                                           note, sizeof note)) {
        c.attempt.defect = residual_norm(b, r);
        c.attempt.note = why;
        return c;
      }
      window_diff = diff;
    }
  }
  c.attempt.defect = residual_norm(b, r);
  c.attempt.note = "iteration budget exhausted";
  return c;
}

SolveAlgorithm tier_of(RAlgorithm a) noexcept {
  switch (a) {
    case RAlgorithm::kSuccessiveSubstitution:
      return SolveAlgorithm::kSuccessiveSubstitution;
    case RAlgorithm::kNewtonShifted:
      return SolveAlgorithm::kNewtonShifted;
    case RAlgorithm::kLogarithmicReduction:
      break;
  }
  return SolveAlgorithm::kLogarithmicReduction;
}

const char* span_name_of(SolveAlgorithm tier) noexcept {
  switch (tier) {
    case SolveAlgorithm::kSuccessiveSubstitution:
      return "qbd.rsolver.ss";
    case SolveAlgorithm::kLogarithmicReduction:
      return "qbd.rsolver.logred";
    case SolveAlgorithm::kNewtonShifted:
      return "qbd.rsolver.newton";
  }
  return "qbd.rsolver.?";
}

Candidate run_tier(SolveAlgorithm tier, const QbdBlocks& b,
                   const SolverOptions& opts, bool is_fallback) {
  obs::Span span(span_name_of(tier));
  // The attempt duration is measured here (not derived from the span)
  // so SolveReport::summary() carries wall times even when tracing is
  // off; the span mirrors the same interval into the trace.
  const auto started = std::chrono::steady_clock::now();
  const auto stamp = [&](Candidate c) {
    c.attempt.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    static obs::Counter& iterations = obs::counter("qbd.rsolver.iterations");
    iterations.add(c.attempt.iterations);
    span.annotate("iterations",
                  static_cast<std::uint64_t>(c.attempt.iterations));
    span.annotate("converged", c.attempt.converged ? 1.0 : 0.0);
    return c;
  };
  // Fallback attempts run on a bounded budget: they exist to rescue a
  // stalled primary, not to burn the full cap a second time.
  const unsigned max_it = opts.max_iterations;
  switch (tier) {
    case SolveAlgorithm::kSuccessiveSubstitution:
      return stamp(attempt_successive(
          b, opts.tolerance, is_fallback ? std::min(max_it, 5000u) : max_it));
    case SolveAlgorithm::kLogarithmicReduction:
      return stamp(attempt_logred(b, opts.tolerance, max_it));
    case SolveAlgorithm::kNewtonShifted:
      return stamp(attempt_newton_shifted(
          b, opts.tolerance, is_fallback ? std::min(max_it, 10000u) : max_it));
  }
  throw NumericalError("solve_r: unknown algorithm tier");
}

}  // namespace

// Scale that makes the R-residual dimensionless: a backward-stable
// iterate satisfies ||A0 + R A1 + R^2 A2|| <~ eps * sum_i ||Ai||, so
// dividing by the block norms gives a defect comparable across rate
// magnitudes (a model with rates in 1e6/s must not look 6 orders worse
// than the same model in 1/s).
double residual_scale(const QbdBlocks& b) noexcept {
  const double s =
      linalg::norm_inf(b.a0) + linalg::norm_inf(b.a1) + linalg::norm_inf(b.a2);
  return s > 0.0 ? s : 1.0;
}

double r_residual_norm(const QbdBlocks& b, const Matrix& r) {
  if (b.phase_kron != nullptr && b.phase_kron->dim() == b.phase_dim()) {
    // Kronecker fast path (blocks from m_mmpp_1_kron): A1 = Q_N - A0 - A2
    // with diagonal A0, A2, so
    //   A0 + R A1 + R^2 A2 = A0 + R·Q_N - R·(D0 + D2) + R·(R·D2),
    // where R·Q_N is computed matrix-free by kron_sum_apply and the
    // diagonal products are column scalings. Only one dense m^N-order
    // product (R·(R·D2)) survives; the R·A1 product never materializes.
    static obs::Counter& kron_residuals =
        obs::counter("qbd.rsolver.kron_residuals");
    kron_residuals.add();
    const std::size_t n = b.phase_dim();
    Matrix res = b.phase_kron->apply_left(r);  // R · Q_N
    Matrix rd2(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) rd2(i, j) = r(i, j) * b.a2(j, j);
    const Matrix r2d2 = r * rd2;  // R^2 A2
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        res(i, j) += r2d2(i, j) - r(i, j) * (b.a0(j, j) + b.a2(j, j));
      }
      res(i, i) += b.a0(i, i);
    }
    return linalg::norm_inf(res) / residual_scale(b);
  }
  return linalg::norm_inf(b.a0 + r * b.a1 + r * r * b.a2) / residual_scale(b);
}

GSolveResult solve_g_logred(const QbdBlocks& b, const SolverOptions& opts) {
  GSolveResult g = logred_impl(b, opts.tolerance, opts.max_iterations);
  if (g.deadline_expired) {
    throw DeadlineError(
        "solve_g_logred: deadline expired mid-iteration (cooperative abort)");
  }
  if (!g.converged) {
    char msg[256];
    std::snprintf(msg, sizeof msg,
                  "solve_g_logred: logarithmic reduction did not converge "
                  "(achieved defect %.3e after %u doublings); the QBD is "
                  "likely not positive recurrent (utilization >= 1)",
                  g.defect, g.iterations);
    throw NumericalError(msg);
  }
  return g;
}

RSolveResult solve_r(const QbdBlocks& blocks, const SolverOptions& opts) {
  obs::Span span("qbd.rsolver.solve");
  static obs::Counter& solves = obs::counter("qbd.rsolver.solves");
  static obs::Counter& fallbacks = obs::counter("qbd.rsolver.fallbacks");
  static obs::Counter& failures = obs::counter("qbd.rsolver.failures");
  solves.add();
  span.annotate("kernel_backend", linalg::to_string(linalg::kernel_backend()));
  span.annotate("threads", static_cast<std::uint64_t>(linalg::pool_threads()));
  span.annotate("kron", blocks.phase_kron != nullptr ? 1.0 : 0.0);
  blocks.validate();

  SolveReport report;
  report.query_id = obs::current_query_id();
  // A request that arrives with its budget already spent must not buy
  // even the stability pre-check (one GTH solve): abort immediately so
  // the serving layer can degrade to a cached answer.
  if (obs::deadline_expired()) {
    report.deadline_exceeded = true;
    throw DeadlineExceeded(
        "solve_r: deadline already expired before the stability pre-check",
        std::move(report));
  }
  // Stability pre-check: the mean-drift condition on the aggregated phase
  // process costs one GTH solve and rejects hopeless configurations
  // before any iteration budget is spent.
  report.utilization = utilization(blocks);
  if (report.utilization >= 1.0) {
    char msg[160];
    std::snprintf(msg, sizeof msg,
                  "solve_r: mean drift is non-negative (utilization %.6f "
                  ">= 1), the queue has no stationary distribution",
                  report.utilization);
    throw UnstableModel(msg, report.utilization);
  }

  // Escalation chain: the preferred algorithm first, then -- if fallbacks
  // are enabled -- the remaining tiers, most robust first.
  std::vector<SolveAlgorithm> chain{tier_of(opts.algorithm)};
  if (opts.enable_fallbacks) {
    for (SolveAlgorithm tier : {SolveAlgorithm::kNewtonShifted,
                                SolveAlgorithm::kLogarithmicReduction,
                                SolveAlgorithm::kSuccessiveSubstitution}) {
      if (std::find(chain.begin(), chain.end(), tier) == chain.end()) {
        chain.push_back(tier);
      }
    }
  }

  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) {
      fallbacks.add();
      // The previous tier's failure note is in the report; a fallback
      // is the first sign of the near-blow-up pathology the slow-query
      // log exists to surface, so say so as it happens.
      PERFORMA_LOG(kWarn, "qbd.rsolver.fallback")
          .kv("tier", qbd::to_string(chain[i]))
          .kv("prev_tier", qbd::to_string(chain[i - 1]))
          .kv("prev_note", report.attempts.back().note)
          .kv("utilization", report.utilization);
    }
    Candidate c;
    try {
      c = run_tier(chain[i], blocks, opts, /*is_fallback=*/i > 0);
    } catch (const DeadlineError& e) {
      // An inner kernel (LU, expm) hit the deadline first; same abort
      // path as the tier loops noticing it themselves.
      c.attempt.algorithm = chain[i];
      c.attempt.note = e.what();
      c.deadline_expired = true;
    } catch (const NumericalError& e) {
      c.attempt.algorithm = chain[i];
      c.attempt.note = e.what();
    }
    report.attempts.push_back(c.attempt);
    if (c.deadline_expired) {
      // Escalating to a fallback tier would burn the same exhausted
      // budget: stop the chain and report the cooperative abort.
      report.deadline_exceeded = true;
      throw DeadlineExceeded(
          "solve_r: deadline expired mid-solve (cooperative abort)",
          std::move(report));
    }
    if (!c.attempt.converged) continue;

    report.converged = true;
    report.winner = c.attempt.algorithm;
    report.iterations = c.attempt.iterations;
    report.final_defect = c.attempt.defect;
    report.final_defect_raw = c.attempt.defect * residual_scale(blocks);
    report.condition = c.condition;
    report.spectral_radius = spectral_radius(c.r, 1e-10, 5000);

    span.annotate("winner", qbd::to_string(report.winner));
    span.annotate("iterations", static_cast<std::uint64_t>(report.iterations));
    RSolveResult out;
    out.r = std::move(c.r);
    out.iterations = report.iterations;
    out.residual = report.final_defect;
    out.report = std::move(report);
    return out;
  }

  failures.add();
  throw SolverFailure(
      opts.enable_fallbacks
          ? "solve_r: every algorithm in the fallback chain failed"
          : "solve_r: the selected algorithm failed (fallbacks disabled)",
      report);
}

double spectral_radius(const Matrix& m, double tol, unsigned max_iter) {
  PERFORMA_EXPECTS(m.is_square() && !m.empty(),
                   "spectral_radius: matrix must be square");
  const std::size_t n = m.rows();

  // Power iteration on m converges like (|lambda_2|/lambda_1)^k, and for
  // QBD R matrices that ratio sits painfully close to 1 -- the plain
  // iteration used to exhaust its whole budget without reaching tol.
  // Squaring the operand squares the ratio, so a handful of doublings
  // (cheap dense products for the sizes we solve) turns thousands of
  // stalled steps into tens of converging ones: we iterate on
  // b ~ m^(2^T) and unwind lambda_1(m) = lambda_1(b)^(1/2^T). Each
  // doubling rescales by the largest entry -- R is non-negative, so the
  // products never cancel -- and the scale factors are unwound in log
  // space at the end.
  constexpr unsigned kDoublings = 8;
  Matrix b = m;
  double log_scale = 0.0;  // m^(2^t) == b * exp(log_scale)
  unsigned doublings = 0;
  for (; n > 1 && doublings < kDoublings; ++doublings) {
    double nb = 0.0;
    for (const double x : b.data()) nb = std::max(nb, std::abs(x));
    if (nb == 0.0) return 0.0;  // nilpotent or zero matrix
    const double inv = 1.0 / nb;
    for (double& x : b.data()) x *= inv;
    b = b * b;
    log_scale = 2.0 * (log_scale + std::log(nb));
  }

  Vector v = linalg::ones(n);
  double lambda = 0.0;
  for (unsigned it = 0; it < max_iter; ++it) {
    Vector w = b * v;
    const double nrm = linalg::norm_inf(w);
    if (nrm == 0.0) return 0.0;  // nilpotent or zero matrix
    for (double& x : w) x /= nrm;
    const double diff = std::abs(nrm - lambda);
    lambda = nrm;
    v = std::move(w);
    if (diff < tol * std::max(1.0, lambda) && it > 3) break;
  }
  // Best estimate either way; callers treat this as approximate.
  if (doublings == 0) return lambda;
  return std::exp((std::log(lambda) + log_scale) /
                  static_cast<double>(1u << doublings));
}

}  // namespace performa::qbd
