#include "qbd/rsolver.h"

#include <cmath>
#include <limits>

#include "linalg/lu.h"

namespace performa::qbd {

namespace {

double residual_norm(const QbdBlocks& b, const Matrix& r) {
  return linalg::norm_inf(b.a0 + r * b.a1 + r * r * b.a2);
}

RSolveResult solve_r_successive(const QbdBlocks& b, const SolverOptions& opts) {
  const std::size_t m = b.phase_dim();
  const linalg::Lu neg_a1(-1.0 * b.a1);

  Matrix r = Matrix::zeros(m, m);
  for (unsigned it = 1; it <= opts.max_iterations; ++it) {
    // R_{k+1} (-A1) = A0 + R_k^2 A2
    const Matrix next = neg_a1.solve_left(b.a0 + r * r * b.a2);
    const double diff = linalg::max_abs_diff(next, r);
    r = next;
    if (diff < opts.tolerance) {
      return RSolveResult{r, it, residual_norm(b, r)};
    }
  }
  throw NumericalError(
      "solve_r: successive substitution did not converge (queue unstable or "
      "max_iterations too small)");
}

}  // namespace

Matrix solve_g_logred(const QbdBlocks& b, const SolverOptions& opts) {
  const std::size_t m = b.phase_dim();
  const Matrix eye = Matrix::identity(m);
  const linalg::Lu neg_a1(-1.0 * b.a1);

  // H = (-A1)^{-1} A0, L = (-A1)^{-1} A2.
  Matrix h = neg_a1.solve(b.a0);
  Matrix l = neg_a1.solve(b.a2);
  Matrix g = l;
  Matrix t = h;

  const Vector e = linalg::ones(m);
  // Quadratic convergence: ~log2 of the effective time horizon; 64
  // doublings cover any double-precision-representable scale, but allow
  // the caller's cap to bind first. The defect |1 - G e| bottoms out at a
  // model-dependent roundoff floor that can sit above a very tight
  // tolerance, so stagnation at a small defect is also accepted.
  const unsigned cap = std::min<unsigned>(opts.max_iterations, 64);
  double best_defect = std::numeric_limits<double>::infinity();
  unsigned stagnant = 0;
  for (unsigned it = 1; it <= cap; ++it) {
    const Matrix u = h * l + l * h;
    const linalg::Lu eye_minus_u(eye - u);
    h = eye_minus_u.solve(h * h);
    l = eye_minus_u.solve(l * l);
    g += t * l;
    t = t * h;

    double defect = 0.0;
    const Vector ge = g * e;
    for (std::size_t i = 0; i < m; ++i)
      defect = std::max(defect, std::abs(1.0 - ge[i]));
    if (defect < opts.tolerance) return g;
    // The next update to G is bounded by ||T|| ||L||; once T has decayed
    // to roundoff the iteration cannot improve further -- the remaining
    // defect is accumulated floating-point error (grows toward the
    // stability boundary), not missing probability mass.
    if (linalg::norm_inf(t) < 1e-14 && defect < 1e-5) return g;
    if (defect < 0.5 * best_defect) {
      best_defect = defect;
      stagnant = 0;
    } else if (++stagnant >= 3 && best_defect < 1e-7) {
      return g;  // converged to the roundoff floor
    }
  }
  throw NumericalError(
      "solve_g_logred: logarithmic reduction did not converge; the QBD is "
      "likely not positive recurrent (utilization >= 1)");
}

RSolveResult solve_r(const QbdBlocks& blocks, const SolverOptions& opts) {
  blocks.validate();
  if (utilization(blocks) >= 1.0) {
    throw NumericalError(
        "solve_r: mean drift is non-negative (utilization >= 1), the queue "
        "has no stationary distribution");
  }
  if (opts.algorithm == RAlgorithm::kSuccessiveSubstitution) {
    return solve_r_successive(blocks, opts);
  }
  const Matrix g = solve_g_logred(blocks, opts);
  // R = A0 * (-(A1 + A0 G))^{-1}
  // Stability was established via the drift condition above; sp(R) < 1 is
  // then guaranteed analytically (power-iteration estimates of it can
  // overshoot 1 by rounding when the decay rate is extremely close to 1,
  // e.g. TPT repair at rho ~ 0.95, so it must not be used as a gate here).
  const Matrix r =
      linalg::Lu(-1.0 * (blocks.a1 + blocks.a0 * g)).solve_left(blocks.a0);
  return RSolveResult{r, 0, residual_norm(blocks, r)};
}

double spectral_radius(const Matrix& m, double tol, unsigned max_iter) {
  PERFORMA_EXPECTS(m.is_square() && !m.empty(),
                   "spectral_radius: matrix must be square");
  Vector v = linalg::ones(m.rows());
  double lambda = 0.0;
  for (unsigned it = 0; it < max_iter; ++it) {
    Vector w = m * v;
    const double nrm = linalg::norm_inf(w);
    if (nrm == 0.0) return 0.0;  // nilpotent or zero matrix
    for (double& x : w) x /= nrm;
    const double diff = std::abs(nrm - lambda);
    lambda = nrm;
    v = std::move(w);
    if (diff < tol * std::max(1.0, lambda) && it > 3) return lambda;
  }
  return lambda;  // best estimate; callers treat this as approximate
}

}  // namespace performa::qbd
