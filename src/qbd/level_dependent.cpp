#include "qbd/level_dependent.h"

#include <algorithm>
#include <cmath>

#include "linalg/lu.h"

namespace performa::qbd {

LevelDependentSolution::LevelDependentSolution(
    const LevelDependentBlocks& blocks, const SolverOptions& opts) {
  PERFORMA_EXPECTS(!blocks.service.empty(),
                   "LevelDependentSolution: need at least one service level");
  PERFORMA_EXPECTS(blocks.lambda > 0.0,
                   "LevelDependentSolution: lambda must be positive");
  const std::size_t m = blocks.phase_dim();
  const std::size_t c_levels = blocks.service.size();  // C
  for (const Matrix& svc : blocks.service) {
    PERFORMA_EXPECTS(svc.rows() == m && svc.cols() == m,
                     "LevelDependentSolution: service block shape mismatch");
  }

  // R from the homogeneous part (levels >= C).
  QbdBlocks homogeneous;
  const Matrix lam = blocks.lambda * Matrix::identity(m);
  const Matrix& m_top = blocks.service.back();
  homogeneous.b00 = blocks.q - lam;  // unused by solve_r but validated
  homogeneous.b01 = lam;
  homogeneous.b10 = m_top;
  homogeneous.a0 = lam;
  homogeneous.a1 = blocks.q - lam - m_top;
  homogeneous.a2 = m_top;
  r_ = solve_r(homogeneous, opts).r;
  i_minus_r_inv_ = linalg::inverse(Matrix::identity(m) - r_);

  // Assemble the boundary system over y = [pi_0 .. pi_C] (row vector).
  const std::size_t n_unknowns = (c_levels + 1) * m;
  Matrix sys(n_unknowns, n_unknowns, 0.0);
  Vector rhs(n_unknowns, 0.0);

  // add_block(k, j, B): equation block j gains contribution pi_k * B.
  auto add_block = [&](std::size_t k, std::size_t j, const Matrix& b) {
    for (std::size_t col = 0; col < m; ++col)
      for (std::size_t i = 0; i < m; ++i) sys(j * m + col, k * m + i) += b(i, col);
  };

  const Matrix local0 = blocks.q - lam;
  add_block(0, 0, local0);
  add_block(1, 0, blocks.service[0]);
  for (std::size_t j = 1; j + 1 <= c_levels; ++j) {
    add_block(j - 1, j, lam);
    add_block(j, j, blocks.q - lam - blocks.service[j - 1]);
    add_block(j + 1, j, blocks.service[j]);
  }
  // Level C equation: pi_{C-1} lambda + pi_C (Q - lam - M_C + R M_C) = 0.
  add_block(c_levels - 1, c_levels, lam);
  add_block(c_levels, c_levels, blocks.q - lam - m_top + r_ * m_top);

  // Replace equation component (0,0) with the normalization row.
  const Vector norm_tail = i_minus_r_inv_ * linalg::ones(m);
  for (std::size_t i = 0; i < n_unknowns; ++i) sys(0, i) = 0.0;
  for (std::size_t k = 0; k < c_levels; ++k)
    for (std::size_t i = 0; i < m; ++i) sys(0, k * m + i) = 1.0;
  for (std::size_t i = 0; i < m; ++i) sys(0, c_levels * m + i) = norm_tail[i];
  rhs[0] = 1.0;

  const Vector y = linalg::Lu(sys).solve(rhs);
  pis_.resize(c_levels + 1);
  for (std::size_t k = 0; k <= c_levels; ++k) {
    pis_[k].assign(y.begin() + static_cast<std::ptrdiff_t>(k * m),
                   y.begin() + static_cast<std::ptrdiff_t>((k + 1) * m));
    for (double& x : pis_[k]) {
      if (x < 0.0 && x > -1e-10) x = 0.0;
      if (x < 0.0) {
        throw NumericalError(
            "LevelDependentSolution: negative boundary probability");
      }
    }
  }
}

double LevelDependentSolution::probability_empty() const {
  return linalg::sum(pis_[0]);
}

double LevelDependentSolution::pmf(std::size_t k) const {
  const std::size_t c_levels = boundary_levels();
  if (k <= c_levels) return linalg::sum(pis_[k]);
  Vector v = pis_[c_levels];
  for (std::size_t i = c_levels; i < k; ++i) v = v * r_;
  return linalg::sum(v);
}

double LevelDependentSolution::tail(std::size_t k) const {
  const std::size_t c_levels = boundary_levels();
  const Vector e = linalg::ones(pis_[0].size());
  if (k > c_levels) {
    Vector v = pis_[c_levels];
    for (std::size_t i = c_levels; i < k; ++i) v = v * r_;
    return linalg::dot(v, i_minus_r_inv_ * e);
  }
  double acc = 0.0;
  for (std::size_t j = k; j <= c_levels; ++j) acc += linalg::sum(pis_[j]);
  // Mass strictly above level C.
  acc += linalg::dot(pis_[c_levels] * r_, i_minus_r_inv_ * e);
  return acc;
}

double LevelDependentSolution::mean_queue_length() const {
  const std::size_t c_levels = boundary_levels();
  const Vector e = linalg::ones(pis_[0].size());
  double acc = 0.0;
  for (std::size_t k = 1; k <= c_levels; ++k)
    acc += static_cast<double>(k) * linalg::sum(pis_[k]);
  // sum_{j>=1} (C+j) pi_C R^j e
  const Vector pc_r = pis_[c_levels] * r_;
  acc += static_cast<double>(c_levels) *
         linalg::dot(pc_r, i_minus_r_inv_ * e);
  acc += linalg::dot(pc_r, i_minus_r_inv_ * (i_minus_r_inv_ * e));
  return acc;
}

LevelDependentBlocks cluster_level_dependent_blocks(
    const map::LumpedAggregate& cluster, double nu_p, double delta,
    double lambda) {
  PERFORMA_EXPECTS(nu_p > 0.0, "cluster_level_dependent_blocks: nu_p > 0");
  PERFORMA_EXPECTS(delta >= 0.0 && delta <= 1.0,
                   "cluster_level_dependent_blocks: delta in [0,1]");
  const unsigned n = cluster.n_servers();
  const std::size_t m = cluster.state_count();

  LevelDependentBlocks blocks;
  blocks.q = cluster.mmpp().generator();
  blocks.lambda = lambda;
  blocks.service.reserve(n);
  for (unsigned k = 1; k <= n; ++k) {
    Vector rates(m, 0.0);
    for (std::size_t s = 0; s < m; ++s) {
      const unsigned up = cluster.up_count(s);
      const unsigned busy_up = std::min(k, up);
      const unsigned busy_down = std::min(k - busy_up, n - up);
      rates[s] = nu_p * busy_up + delta * nu_p * busy_down;
    }
    blocks.service.push_back(Matrix::diag(rates));
  }
  return blocks;
}

}  // namespace performa::qbd
