#include "qbd/level_dependent.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/compensated.h"
#include "linalg/lu.h"

namespace performa::qbd {

double LevelDependentSolution::solve(const LevelDependentBlocks& blocks,
                                     const SolverOptions& opts) {
  PERFORMA_EXPECTS(!blocks.service.empty(),
                   "LevelDependentSolution: need at least one service level");
  PERFORMA_EXPECTS(blocks.lambda > 0.0,
                   "LevelDependentSolution: lambda must be positive");
  const std::size_t m = blocks.phase_dim();
  const std::size_t c_levels = blocks.service.size();  // C
  for (const Matrix& svc : blocks.service) {
    PERFORMA_EXPECTS(svc.rows() == m && svc.cols() == m,
                     "LevelDependentSolution: service block shape mismatch");
  }

  // R from the homogeneous part (levels >= C).
  QbdBlocks homogeneous;
  const Matrix lam = blocks.lambda * Matrix::identity(m);
  const Matrix& m_top = blocks.service.back();
  homogeneous.b00 = blocks.q - lam;  // unused by solve_r but validated
  homogeneous.b01 = lam;
  homogeneous.b10 = m_top;
  homogeneous.a0 = lam;
  homogeneous.a1 = blocks.q - lam - m_top;
  homogeneous.a2 = m_top;
  const RSolveResult rres = solve_r(homogeneous, opts);
  r_ = rres.r;
  report_ = rres.report;
  i_minus_r_inv_ = linalg::inverse(Matrix::identity(m) - r_);

  // Assemble the boundary system over y = [pi_0 .. pi_C] (row vector).
  const std::size_t n_unknowns = (c_levels + 1) * m;
  Matrix sys(n_unknowns, n_unknowns, 0.0);
  Vector rhs(n_unknowns, 0.0);

  // add_block(k, j, B): equation block j gains contribution pi_k * B.
  auto add_block = [&](std::size_t k, std::size_t j, const Matrix& b) {
    for (std::size_t col = 0; col < m; ++col)
      for (std::size_t i = 0; i < m; ++i) sys(j * m + col, k * m + i) += b(i, col);
  };

  const Matrix local0 = blocks.q - lam;
  add_block(0, 0, local0);
  add_block(1, 0, blocks.service[0]);
  for (std::size_t j = 1; j + 1 <= c_levels; ++j) {
    add_block(j - 1, j, lam);
    add_block(j, j, blocks.q - lam - blocks.service[j - 1]);
    add_block(j + 1, j, blocks.service[j]);
  }
  // Level C equation: pi_{C-1} lambda + pi_C (Q - lam - M_C + R M_C) = 0.
  add_block(c_levels - 1, c_levels, lam);
  add_block(c_levels, c_levels, blocks.q - lam - m_top + r_ * m_top);

  // Keep the balance system before the normalization row overwrites
  // equation component 0: that component is not enforced by the solve, so
  // grading the solution against the full original system measures
  // genuine quality, not how well LU inverted its own matrix.
  const Matrix balance = sys;

  // Replace equation component (0,0) with the normalization row.
  const Vector norm_tail = i_minus_r_inv_ * linalg::ones(m);
  for (std::size_t i = 0; i < n_unknowns; ++i) sys(0, i) = 0.0;
  for (std::size_t k = 0; k < c_levels; ++k)
    for (std::size_t i = 0; i < m; ++i) sys(0, k * m + i) = 1.0;
  for (std::size_t i = 0; i < m; ++i) sys(0, c_levels * m + i) = norm_tail[i];
  rhs[0] = 1.0;

  const Vector y = linalg::Lu(sys).solve(rhs);

  // Relative defect of the pre-normalization balance equations, evaluated
  // in compensated long double.
  long double worst = 0.0L;
  for (std::size_t i = 0; i < n_unknowns; ++i) {
    linalg::CompensatedSum<long double> acc;
    for (std::size_t j = 0; j < n_unknowns; ++j) {
      acc.add(static_cast<long double>(balance(i, j)) * y[j]);
    }
    worst = std::max(worst, std::abs(acc.value()));
  }
  const double scale =
      std::max(linalg::norm_inf(balance) * linalg::norm_inf(y), 1e-300);
  boundary_defect_ = static_cast<double>(worst) / scale;

  pis_.resize(c_levels + 1);
  for (std::size_t k = 0; k <= c_levels; ++k) {
    pis_[k].assign(y.begin() + static_cast<std::ptrdiff_t>(k * m),
                   y.begin() + static_cast<std::ptrdiff_t>((k + 1) * m));
    for (double& x : pis_[k]) {
      if (x < 0.0 && x > -1e-10) x = 0.0;
      if (x < 0.0) {
        throw NumericalError(
            "LevelDependentSolution: negative boundary probability");
      }
    }
  }
  return rres.residual;
}

void LevelDependentSolution::run_checks(const TrustPolicy& policy,
                                        double r_resid) {
  trust_.checks.clear();
  trust_.checks.push_back({"r-residual", r_resid, policy.r_residual_certified,
                           policy.r_residual_rejected,
                           "||A0 + R A1 + R^2 A2|| / sum||Ai||"});
  trust_.checks.push_back({"boundary-residual", boundary_defect_,
                           policy.boundary_residual_certified,
                           policy.boundary_residual_rejected,
                           "level-dependent balance system, compensated"});
  // Probability-mass conservation: sum_k<C pi_k e + pi_C (I-R)^{-1} e = 1,
  // in compensated long double ((I-R)^{-1} amplifies any R perturbation).
  linalg::CompensatedSum<long double> acc;
  const std::size_t c_levels = pis_.size() - 1;
  for (std::size_t k = 0; k < c_levels; ++k) {
    for (double x : pis_[k]) acc.add(static_cast<long double>(x));
  }
  const std::size_t m = pis_[c_levels].size();
  for (std::size_t j = 0; j < m; ++j) {
    linalg::CompensatedSum<long double> row;
    for (std::size_t k = 0; k < m; ++k) {
      row.add(static_cast<long double>(i_minus_r_inv_(j, k)));
    }
    acc.add(static_cast<long double>(pis_[c_levels][j]) * row.value());
  }
  const double mass_defect =
      std::abs(static_cast<double>(acc.value() - 1.0L));
  trust_.checks.push_back({"mass-conservation", mass_defect,
                           policy.mass_defect_certified,
                           policy.mass_defect_rejected,
                           "sum_k pi_k e + pi_C (I-R)^{-1} e vs 1"});
  trust_.grade();
}

LevelDependentSolution::LevelDependentSolution(
    const LevelDependentBlocks& blocks, const SolverOptions& opts) {
  double r_resid = solve(blocks, opts);
  const TrustPolicy& policy = opts.trust;
  if (!policy.enabled) return;  // trust_ stays unverified
  run_checks(policy, r_resid);
  if (trust_.verdict == TrustVerdict::kSuspect && policy.escalate) {
    SolverOptions tighter = opts;
    tighter.tolerance = std::max(opts.tolerance * 1e-2, 1e-16);
    r_resid = solve(blocks, tighter);
    run_checks(policy, r_resid);
    trust_.resolves = 1;
    trust_.healing =
        std::string("re-solve(tolerance/100)->") + to_string(trust_.verdict);
  }
  if (trust_.verdict == TrustVerdict::kRejected) {
    throw TrustRejected(
        "LevelDependentSolution: answer fails a rejection threshold", trust_);
  }
}

const Vector& LevelDependentSolution::pi(std::size_t k) const {
  PERFORMA_EXPECTS(k < pis_.size(),
                   "LevelDependentSolution::pi: level beyond boundary");
  return pis_[k];
}

double LevelDependentSolution::probability_empty() const {
  return linalg::sum(pis_[0]);
}

double LevelDependentSolution::pmf(std::size_t k) const {
  const std::size_t c_levels = boundary_levels();
  if (k <= c_levels) return linalg::sum(pis_[k]);
  Vector v = pis_[c_levels];
  for (std::size_t i = c_levels; i < k; ++i) v = v * r_;
  return linalg::sum(v);
}

double LevelDependentSolution::tail(std::size_t k) const {
  const std::size_t c_levels = boundary_levels();
  const Vector e = linalg::ones(pis_[0].size());
  if (k > c_levels) {
    Vector v = pis_[c_levels];
    for (std::size_t i = c_levels; i < k; ++i) v = v * r_;
    return linalg::dot(v, i_minus_r_inv_ * e);
  }
  double acc = 0.0;
  for (std::size_t j = k; j <= c_levels; ++j) acc += linalg::sum(pis_[j]);
  // Mass strictly above level C.
  acc += linalg::dot(pis_[c_levels] * r_, i_minus_r_inv_ * e);
  return acc;
}

double LevelDependentSolution::mean_queue_length() const {
  const std::size_t c_levels = boundary_levels();
  const Vector e = linalg::ones(pis_[0].size());
  double acc = 0.0;
  for (std::size_t k = 1; k <= c_levels; ++k)
    acc += static_cast<double>(k) * linalg::sum(pis_[k]);
  // sum_{j>=1} (C+j) pi_C R^j e
  const Vector pc_r = pis_[c_levels] * r_;
  acc += static_cast<double>(c_levels) *
         linalg::dot(pc_r, i_minus_r_inv_ * e);
  acc += linalg::dot(pc_r, i_minus_r_inv_ * (i_minus_r_inv_ * e));
  return acc;
}

LevelDependentBlocks cluster_level_dependent_blocks(
    const map::LumpedAggregate& cluster, double nu_p, double delta,
    double lambda) {
  PERFORMA_EXPECTS(nu_p > 0.0, "cluster_level_dependent_blocks: nu_p > 0");
  PERFORMA_EXPECTS(delta >= 0.0 && delta <= 1.0,
                   "cluster_level_dependent_blocks: delta in [0,1]");
  const unsigned n = cluster.n_servers();
  const std::size_t m = cluster.state_count();

  LevelDependentBlocks blocks;
  blocks.q = cluster.mmpp().generator();
  blocks.lambda = lambda;
  blocks.service.reserve(n);
  for (unsigned k = 1; k <= n; ++k) {
    Vector rates(m, 0.0);
    for (std::size_t s = 0; s < m; ++s) {
      const unsigned up = cluster.up_count(s);
      const unsigned busy_up = std::min(k, up);
      const unsigned busy_down = std::min(k - busy_up, n - up);
      rates[s] = nu_p * busy_up + delta * nu_p * busy_down;
    }
    blocks.service.push_back(Matrix::diag(rates));
  }
  return blocks;
}

LevelDependentBlocks repair_facility_level_dependent_blocks(
    const map::RepairFacility& facility, double lambda) {
  const unsigned n = facility.n_servers();
  const std::size_t m = facility.state_count();
  const double nu_p = facility.nu_p();
  const double delta = facility.delta();

  LevelDependentBlocks blocks;
  blocks.q = facility.mmpp().generator();
  blocks.lambda = lambda;
  blocks.service.reserve(n);
  for (unsigned k = 1; k <= n; ++k) {
    Vector rates(m, 0.0);
    for (std::size_t s = 0; s < m; ++s) {
      const unsigned a = facility.active_count(s);
      const unsigned busy_up = std::min(k, a);
      const unsigned busy_down = std::min(k - busy_up, n - a);
      rates[s] = nu_p * busy_up + delta * nu_p * busy_down;
    }
    blocks.service.push_back(Matrix::diag(rates));
  }
  return blocks;
}

}  // namespace performa::qbd
