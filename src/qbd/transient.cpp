#include "qbd/transient.h"

#include <cmath>

namespace performa::qbd {

TransientSolver::TransientSolver(const QbdBlocks& blocks,
                                 std::size_t capacity)
    : blocks_(blocks), capacity_(capacity) {
  PERFORMA_EXPECTS(capacity >= 1, "TransientSolver: capacity must be >= 1");
  blocks.validate();
  local_top_ = blocks_.a1 + blocks_.a0;

  // Uniformization rate: the largest total outflow over all levels. The
  // diagonal of each local block is (minus) that outflow.
  double rate = 0.0;
  const std::size_t m = blocks_.phase_dim();
  for (std::size_t i = 0; i < m; ++i) {
    rate = std::max(rate, -blocks_.b00(i, i));
    rate = std::max(rate, -blocks_.a1(i, i));
    rate = std::max(rate, -local_top_(i, i));
  }
  PERFORMA_EXPECTS(rate > 0.0, "TransientSolver: degenerate generator");
  uniformization_rate_ = 1.02 * rate;  // small head-room
}

LevelState TransientSolver::point_mass(std::size_t level,
                                       const Vector& phases) const {
  PERFORMA_EXPECTS(level <= capacity_, "point_mass: level beyond capacity");
  PERFORMA_EXPECTS(phases.size() == phase_dim(),
                   "point_mass: phase vector length mismatch");
  PERFORMA_EXPECTS(std::abs(linalg::sum(phases) - 1.0) < 1e-9,
                   "point_mass: phase vector must sum to 1");
  LevelState state(capacity_ + 1, Vector(phase_dim(), 0.0));
  state[level] = phases;
  return state;
}

LevelState TransientSolver::apply(const LevelState& v) const {
  const std::size_t m = phase_dim();
  const double inv = 1.0 / uniformization_rate_;
  LevelState w(capacity_ + 1, Vector(m, 0.0));

  // Level 0: from itself (B00), from level 1 down (B10).
  {
    Vector acc = v[0] * blocks_.b00;
    linalg::axpy(1.0, v[1] * blocks_.b10, acc);
    for (std::size_t i = 0; i < m; ++i) w[0][i] = v[0][i] + inv * acc[i];
  }
  // Interior levels.
  for (std::size_t k = 1; k <= capacity_; ++k) {
    Vector acc(m, 0.0);
    // Up-transition into level k.
    if (k == 1) {
      acc = v[0] * blocks_.b01;
    } else {
      acc = v[k - 1] * blocks_.a0;
    }
    // Local block.
    const Matrix& local = (k == capacity_) ? local_top_ : blocks_.a1;
    linalg::axpy(1.0, v[k] * local, acc);
    // Down-transition from level k+1.
    if (k + 1 <= capacity_) {
      linalg::axpy(1.0, v[k + 1] * blocks_.a2, acc);
    }
    for (std::size_t i = 0; i < m; ++i) w[k][i] = v[k][i] + inv * acc[i];
  }
  return w;
}

LevelState TransientSolver::evolve(const LevelState& initial, double t,
                                   double tol) const {
  PERFORMA_EXPECTS(t >= 0.0, "evolve: t must be >= 0");
  PERFORMA_EXPECTS(initial.size() == capacity_ + 1,
                   "evolve: state has wrong number of levels");
  PERFORMA_EXPECTS(tol > 0.0 && tol < 1.0, "evolve: tol in (0,1)");
  if (t == 0.0) return initial;

  // Split the horizon so each segment has Lambda*dt <= 64: keeps the
  // Poisson weights representable and the per-segment series short.
  const double total = uniformization_rate_ * t;
  const auto segments =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(total / 64.0)));
  const double seg_mean = total / static_cast<double>(segments);
  const double seg_tol = tol / static_cast<double>(segments);

  LevelState state = initial;
  for (std::size_t seg = 0; seg < segments; ++seg) {
    LevelState power = state;  // v P^n
    LevelState acc(capacity_ + 1, Vector(phase_dim(), 0.0));
    double weight = std::exp(-seg_mean);  // Pois(n=0)
    double cumulative = weight;
    for (std::size_t k = 0; k <= capacity_; ++k) {
      for (std::size_t i = 0; i < phase_dim(); ++i) {
        acc[k][i] = weight * power[k][i];
      }
    }
    std::size_t n = 0;
    while (cumulative < 1.0 - seg_tol) {
      ++n;
      power = apply(power);
      weight *= seg_mean / static_cast<double>(n);
      cumulative += weight;
      for (std::size_t k = 0; k <= capacity_; ++k) {
        linalg::axpy(weight, power[k], acc[k]);
      }
      if (n > 100000) {
        throw NumericalError("TransientSolver::evolve: series too long");
      }
    }
    // Renormalize the truncated series (mass deficit <= seg_tol).
    const double mass = total_mass(acc);
    for (auto& level : acc) {
      for (double& x : level) x /= mass;
    }
    state = std::move(acc);
  }
  return state;
}

Vector TransientSolver::level_pmf(const LevelState& state) const {
  Vector pmf(state.size());
  for (std::size_t k = 0; k < state.size(); ++k) {
    pmf[k] = linalg::sum(state[k]);
  }
  return pmf;
}

double TransientSolver::mean_level(const LevelState& state) const {
  double acc = 0.0;
  for (std::size_t k = 1; k < state.size(); ++k) {
    acc += static_cast<double>(k) * linalg::sum(state[k]);
  }
  return acc;
}

double TransientSolver::total_mass(const LevelState& state) const {
  double acc = 0.0;
  for (const auto& level : state) acc += linalg::sum(level);
  return acc;
}

}  // namespace performa::qbd
