// Level-independent Quasi-Birth-Death process with a single boundary level.
//
// Infinitesimal generator, in block-tridiagonal form:
//
//        [ B00  B01            ]
//        [ B10  A1   A0        ]
//   Q =  [      A2   A1   A0   ]
//        [           A2   A1  ... ]
//
// Level 0 is the boundary (empty queue: no service events), levels >= 1
// are homogeneous. All blocks share one phase dimension m.
#pragma once

#include <memory>

#include "map/kron_aggregate.h"
#include "map/lumped_aggregate.h"
#include "map/map_process.h"
#include "map/mmpp.h"

namespace performa::qbd {

using linalg::Matrix;
using linalg::Vector;

/// Block description of a QBD queue.
struct QbdBlocks {
  Matrix b00;  ///< boundary local block (level 0)
  Matrix b01;  ///< boundary up-transitions (level 0 -> 1)
  Matrix b10;  ///< down-transitions from level 1 to the boundary
  Matrix a0;   ///< up (arrival) block, levels >= 1
  Matrix a1;   ///< local block, levels >= 1
  Matrix a2;   ///< down (service) block, levels >= 2

  /// Optional structure certificate set by m_mmpp_1_kron: the phase
  /// process is the Kronecker sum Q1^{⊕N} and A0/A2 are diagonal. When
  /// present, utilization() skips the O(m^3N) GTH elimination (the
  /// stationary phases are pi1^{⊗N} by independence) and r_residual_norm
  /// computes R·A1 matrix-free through kron_sum_apply instead of a dense
  /// m^N-order product. Plain dense blocks leave this null and nothing
  /// changes.
  std::shared_ptr<const map::KronMmpp> phase_kron;

  std::size_t phase_dim() const noexcept { return a1.rows(); }

  /// Throws InvalidArgument unless all blocks are m x m and the block rows
  /// form valid generator rows (non-negative off-level blocks, level rows
  /// summing to zero).
  void validate() const;
};

/// M/MMPP/1 queue: Poisson(lambda) arrivals into a single queue whose
/// service completions follow the MMPP <Q, M> (the aggregated cluster of
/// Sec. 2.2). Blocks: B00 = Q - lambda I, B01 = A0 = lambda I,
/// B10 = A2 = M, A1 = Q - lambda I - M.
QbdBlocks m_mmpp_1(const map::Mmpp& service, double lambda);

/// M/MMPP/1 queue over the full (distinguishable-server) Kronecker state
/// space, carrying the matrix-free structure certificate. Blocks are the
/// same as m_mmpp_1 on cluster.materialize(); solver-side residual and
/// stability checks exploit the Kronecker form (see QbdBlocks::phase_kron).
QbdBlocks m_mmpp_1_kron(const map::KronMmpp& cluster, double lambda);

/// MAP/M/1 dual (the N-Burst teletraffic model of Sec. 2.3): MMPP arrivals
/// <Q, L> into a single exponential server of rate mu.
QbdBlocks mmpp_m_1(const map::Mmpp& arrivals, double mu);

/// General MAP/MMPP/1 queue (paper Sec. 2.4, first bullet): MAP arrivals
/// <D0, D1> -- e.g. a matrix-exponential renewal process -- into the
/// cluster's MMPP service process. The phase space is the Kronecker
/// product (arrival phases) x (service phases):
///   A0 = D1 (x) I,   A1 = D0 (x) I + I (x) (Q - M),   A2 = I (x) M,
///   B00 = D0 (x) I + I (x) Q.
QbdBlocks map_mmpp_1(const map::Map& arrivals, const map::Mmpp& service);

/// MAP/M/1: MAP arrivals into one exponential server of rate mu.
QbdBlocks map_m_1(const map::Map& arrivals, double mu);

/// M/MAP/1: Poisson arrivals into a MAP *service* process -- the model
/// for phase-type task times in the cluster (Sec. 2.4, "Hyperexponential
/// task times"). The service phase process free-runs while the queue is
/// empty (its marked events are simply not completions then), exactly the
/// convention the MMPP special case uses:
///   A0 = lambda I, A1 = D0 - lambda I, A2 = D1, B00 = D0 + D1 - lambda I.
QbdBlocks m_map_1(const map::Map& service, double lambda);

/// Analytic Discard model for crash faults (paper Sec. 2.4, last bullet):
/// the service process becomes a MAP in which every failure of an UP
/// server is also a (unsuccessful) departure that removes the task being
/// executed. Only valid for delta = 0 clusters (degraded servers do not
/// interrupt tasks). Blocks:
///   A2 = M + C,  A1 = (Q - C) - lambda I - M,  A0 = lambda I,
///   B00 = Q - lambda I  (an empty system loses no task on a crash),
/// where C collects the lumped transitions in which up_count decreases.
QbdBlocks m_mmpp_1_discard(const map::LumpedAggregate& cluster,
                           double lambda);

/// Long-run fraction of arriving tasks that the Discard model removes
/// (crash interruptions per arrival), computed from a solved QBD.
/// `pi_levels_ge1` is the phase marginal over levels >= 1, i.e.
/// pi_1 (I-R)^{-1}; see QbdSolution::phase_marginal_busy().
double discard_fraction(const map::LumpedAggregate& cluster, double lambda,
                        const linalg::Vector& pi_levels_ge1);

/// Stability: mean drift up < mean drift down, i.e. the stationary event
/// rate of A0 is less than that of A2 under the phase process generator.
/// For m_mmpp_1 this is lambda < mean service rate.
bool is_stable(const QbdBlocks& blocks);

/// Utilization rho = (stationary up-rate) / (stationary down-rate).
double utilization(const QbdBlocks& blocks);

}  // namespace performa::qbd
