#include "qbd/qbd.h"

#include <cmath>

#include "linalg/ctmc.h"
#include "linalg/kron.h"
#include "obs/metrics.h"

namespace performa::qbd {

void QbdBlocks::validate() const {
  const std::size_t m = a1.rows();
  PERFORMA_EXPECTS(m > 0, "QbdBlocks: empty phase space");
  auto check_shape = [m](const Matrix& blk, const char* name) {
    PERFORMA_EXPECTS(blk.rows() == m && blk.cols() == m,
                     std::string("QbdBlocks: block ") + name +
                         " has wrong shape");
  };
  check_shape(b00, "B00");
  check_shape(b01, "B01");
  check_shape(b10, "B10");
  check_shape(a0, "A0");
  check_shape(a1, "A1");
  check_shape(a2, "A2");

  // Sentinel at the model -> solver boundary: a NaN in a block would
  // otherwise survive the sign/row-sum checks in surprising ways and
  // poison every iteration downstream.
  for (const Matrix* blk : {&b00, &b01, &b10, &a0, &a1, &a2}) {
    linalg::check_finite(*blk, "QbdBlocks");
  }

  // Off-level blocks must be non-negative (they are transition rates).
  auto check_nonneg = [](const Matrix& blk, const char* name) {
    for (double x : blk.data()) {
      PERFORMA_EXPECTS(x >= -1e-12, std::string("QbdBlocks: block ") + name +
                                        " has a negative rate");
    }
  };
  check_nonneg(b01, "B01");
  check_nonneg(b10, "B10");
  check_nonneg(a0, "A0");
  check_nonneg(a2, "A2");

  // Each block row of the full generator must sum to zero:
  // boundary: B00 + B01; level 1: B10 + A1 + A0; levels >= 2: A2 + A1 + A0.
  auto check_rowsum = [m](const Matrix& total, const char* what) {
    for (std::size_t r = 0; r < m; ++r) {
      double s = 0.0;
      double scale = 1.0;
      for (std::size_t c = 0; c < m; ++c) {
        s += total(r, c);
        scale = std::max(scale, std::abs(total(r, c)));
      }
      PERFORMA_EXPECTS(std::abs(s) <= 1e-9 * scale,
                       std::string("QbdBlocks: ") + what +
                           " rows do not sum to zero");
    }
  };
  check_rowsum(b00 + b01, "boundary level");
  check_rowsum(b10 + a1 + a0, "level 1");
  check_rowsum(a2 + a1 + a0, "repeating levels");
}

QbdBlocks m_mmpp_1(const map::Mmpp& service, double lambda) {
  PERFORMA_EXPECTS(lambda > 0.0, "m_mmpp_1: lambda must be positive");
  const std::size_t m = service.dim();
  const Matrix& q = service.generator();
  const Matrix lam = lambda * Matrix::identity(m);
  const Matrix svc = service.rate_matrix();

  QbdBlocks blocks;
  blocks.b00 = q - lam;
  blocks.b01 = lam;
  blocks.b10 = svc;
  blocks.a0 = lam;
  blocks.a1 = q - lam - svc;
  blocks.a2 = svc;
  blocks.validate();
  return blocks;
}

QbdBlocks m_mmpp_1_kron(const map::KronMmpp& cluster, double lambda) {
  QbdBlocks blocks = m_mmpp_1(cluster.materialize(), lambda);
  blocks.phase_kron = std::make_shared<const map::KronMmpp>(cluster);
  return blocks;
}

QbdBlocks mmpp_m_1(const map::Mmpp& arrivals, double mu) {
  PERFORMA_EXPECTS(mu > 0.0, "mmpp_m_1: mu must be positive");
  const std::size_t m = arrivals.dim();
  const Matrix& q = arrivals.generator();
  const Matrix arr = arrivals.rate_matrix();
  const Matrix srv = mu * Matrix::identity(m);

  QbdBlocks blocks;
  blocks.b00 = q - arr;
  blocks.b01 = arr;
  blocks.b10 = srv;
  blocks.a0 = arr;
  blocks.a1 = q - arr - srv;
  blocks.a2 = srv;
  blocks.validate();
  return blocks;
}

QbdBlocks map_mmpp_1(const map::Map& arrivals, const map::Mmpp& service) {
  const std::size_t a = arrivals.dim();
  const std::size_t m = service.dim();
  const Matrix ia = Matrix::identity(a);
  const Matrix im = Matrix::identity(m);
  const Matrix svc = service.rate_matrix();

  QbdBlocks blocks;
  blocks.a0 = linalg::kron(arrivals.d1(), im);
  blocks.a2 = linalg::kron(ia, svc);
  blocks.a1 = linalg::kron(arrivals.d0(), im) +
              linalg::kron(ia, service.generator() - svc);
  blocks.b00 = linalg::kron(arrivals.d0(), im) +
               linalg::kron(ia, service.generator());
  blocks.b01 = blocks.a0;
  blocks.b10 = blocks.a2;
  blocks.validate();
  return blocks;
}

QbdBlocks map_m_1(const map::Map& arrivals, double mu) {
  PERFORMA_EXPECTS(mu > 0.0, "map_m_1: mu must be positive");
  const map::Mmpp server(Matrix{{0.0}}, Vector{mu});
  return map_mmpp_1(arrivals, server);
}

QbdBlocks m_map_1(const map::Map& service, double lambda) {
  PERFORMA_EXPECTS(lambda > 0.0, "m_map_1: lambda must be positive");
  const std::size_t m = service.dim();
  const Matrix lam = lambda * Matrix::identity(m);

  QbdBlocks blocks;
  blocks.a0 = lam;
  blocks.a1 = service.d0() - lam;
  blocks.a2 = service.d1();
  blocks.b00 = service.generator() - lam;
  blocks.b01 = lam;
  blocks.b10 = service.d1();
  blocks.validate();
  return blocks;
}

namespace {

// Crash-transition matrix of a lumped cluster: the portion of the
// generator in which the number of UP servers decreases (an UP server
// fails). In the Discard model each such transition also removes the task
// the failing server was executing.
Matrix crash_transitions(const map::LumpedAggregate& cluster) {
  const Matrix& q = cluster.mmpp().generator();
  const std::size_t m = cluster.state_count();
  Matrix c(m, m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j || q(i, j) <= 0.0) continue;
      if (cluster.up_count(j) < cluster.up_count(i)) c(i, j) = q(i, j);
    }
  }
  return c;
}

}  // namespace

QbdBlocks m_mmpp_1_discard(const map::LumpedAggregate& cluster,
                           double lambda) {
  PERFORMA_EXPECTS(lambda > 0.0, "m_mmpp_1_discard: lambda must be positive");
  const map::Mmpp& mmpp = cluster.mmpp();
  // Discard semantics require crash faults (delta = 0): a degraded server
  // keeps executing its task, so nothing is discarded. delta > 0 shows up
  // as a positive service rate in all-DOWN states.
  for (std::size_t s = 0; s < cluster.state_count(); ++s) {
    if (cluster.up_count(s) == 0) {
      PERFORMA_EXPECTS(mmpp.rates()[s] == 0.0,
                       "m_mmpp_1_discard: cluster has delta > 0; the Discard "
                       "model applies to crash faults only");
    }
  }
  const std::size_t m = mmpp.dim();
  const Matrix lam = lambda * Matrix::identity(m);
  const Matrix svc = mmpp.rate_matrix();
  const Matrix crash = crash_transitions(cluster);

  QbdBlocks blocks;
  blocks.a0 = lam;
  blocks.a2 = svc + crash;
  blocks.a1 = mmpp.generator() - crash - lam - svc;
  blocks.b00 = mmpp.generator() - lam;
  blocks.b01 = lam;
  blocks.b10 = blocks.a2;
  blocks.validate();
  return blocks;
}

double discard_fraction(const map::LumpedAggregate& cluster, double lambda,
                        const linalg::Vector& pi_levels_ge1) {
  PERFORMA_EXPECTS(lambda > 0.0, "discard_fraction: lambda must be positive");
  PERFORMA_EXPECTS(pi_levels_ge1.size() == cluster.state_count(),
                   "discard_fraction: marginal length mismatch");
  const Matrix crash = crash_transitions(cluster);
  const Vector crash_rates = crash * linalg::ones(cluster.state_count());
  return linalg::dot(pi_levels_ge1, crash_rates) / lambda;
}

namespace {

// Stationary phase vector of the full phase process A = A0 + A1 + A2.
Vector phase_stationary(const QbdBlocks& blocks) {
  return linalg::stationary_distribution(blocks.a0 + blocks.a1 + blocks.a2);
}

}  // namespace

double utilization(const QbdBlocks& blocks) {
  const std::size_t m = blocks.phase_dim();
  Vector pi;
  if (blocks.phase_kron != nullptr && blocks.phase_kron->dim() == m) {
    // Kronecker structure: the joint modulating chain is N independent
    // copies, so its stationary vector is the product pi1^{⊗N} -- exact,
    // and O(N·m) instead of a GTH elimination on m^N states.
    static obs::Counter& hits = obs::counter("qbd.kron.stationary");
    hits.add();
    pi = blocks.phase_kron->stationary();
  } else {
    pi = phase_stationary(blocks);
  }
  const Vector e = linalg::ones(m);
  const double up = linalg::dot(pi, blocks.a0 * e);
  const double down = linalg::dot(pi, blocks.a2 * e);
  PERFORMA_EXPECTS(down > 0.0, "utilization: no service transitions");
  return up / down;
}

bool is_stable(const QbdBlocks& blocks) { return utilization(blocks) < 1.0; }

}  // namespace performa::qbd
