// Solvers for the matrix-quadratic equations of QBD theory:
//
//   R:  A0 + R A1 + R^2 A2 = 0   (rate matrix, Neuts)
//   G:  A2 + A1 G + A0 G^2 = 0   (first-passage matrix)
//
// Two algorithms are provided: classic successive substitution (linear
// convergence, trivially correct -- kept for cross-validation and as the
// ablation baseline) and Latouche-Ramaswami logarithmic reduction
// (quadratic convergence, the production default).
#pragma once

#include "qbd/qbd.h"

namespace performa::qbd {

/// Algorithm selector for R computation.
enum class RAlgorithm {
  kLogarithmicReduction,    ///< default: quadratically convergent
  kSuccessiveSubstitution,  ///< baseline: linearly convergent
};

/// Options shared by the iterative solvers.
struct SolverOptions {
  double tolerance = 1e-13;      ///< infinity-norm stopping threshold
  unsigned max_iterations = 100000;  ///< hard cap; NumericalError beyond
  RAlgorithm algorithm = RAlgorithm::kLogarithmicReduction;
};

/// Result of an R computation with convergence diagnostics.
struct RSolveResult {
  Matrix r;                ///< the minimal non-negative solution R
  unsigned iterations = 0; ///< iterations used
  double residual = 0.0;   ///< ||A0 + R A1 + R^2 A2||_inf at return
};

/// Compute R by the selected algorithm. The QBD must be irreducible and
/// stable; otherwise NumericalError is thrown (no convergence / sp(R)>=1).
RSolveResult solve_r(const QbdBlocks& blocks, const SolverOptions& opts = {});

/// Compute G with logarithmic reduction (used internally by solve_r and
/// exposed for tests: G is stochastic iff the chain is recurrent).
Matrix solve_g_logred(const QbdBlocks& blocks, const SolverOptions& opts = {});

/// Spectral radius estimate of a non-negative matrix via power iteration;
/// for R this is the caudal characteristic (geometric decay rate) of the
/// queue-length distribution.
double spectral_radius(const Matrix& m, double tol = 1e-12,
                       unsigned max_iter = 20000);

}  // namespace performa::qbd
