// Solvers for the matrix-quadratic equations of QBD theory:
//
//   R:  A0 + R A1 + R^2 A2 = 0   (rate matrix, Neuts)
//   G:  A2 + A1 G + A0 G^2 = 0   (first-passage matrix)
//
// Three algorithms are provided, forming the tiers of the fallback chain:
// classic successive substitution (linear convergence, trivially correct --
// kept for cross-validation and as the ablation baseline),
// Latouche-Ramaswami logarithmic reduction (quadratic convergence, the
// production default), and a one-sided Newton scheme with a per-step
// shifted local block (linear but fast in practice, robust where the
// logarithmic-reduction defect stagnates near a blow-up point).
//
// solve_r() runs a guarded solve: stability pre-check first (typed
// UnstableModel error before any iteration budget is spent), then the
// preferred algorithm, then the remaining tiers as fallbacks; every
// attempt is recorded in a SolveReport, and exhausting the chain throws
// SolverFailure carrying that report.
#pragma once

#include "qbd/qbd.h"
#include "qbd/solve_report.h"
#include "qbd/trust.h"

namespace performa::qbd {

/// Algorithm selector for R computation.
enum class RAlgorithm {
  kLogarithmicReduction,    ///< default: quadratically convergent
  kSuccessiveSubstitution,  ///< baseline: linearly convergent
  kNewtonShifted,           ///< one-sided Newton, shifted local block
};

/// Options shared by the iterative solvers.
struct SolverOptions {
  double tolerance = 1e-13;      ///< infinity-norm stopping threshold
  unsigned max_iterations = 100000;  ///< hard cap per attempt
  RAlgorithm algorithm = RAlgorithm::kLogarithmicReduction;
  /// When the preferred algorithm fails, escalate through the remaining
  /// tiers instead of throwing immediately. Disable to reproduce the
  /// single-algorithm behaviour (ablation benches).
  bool enable_fallbacks = true;
  /// A posteriori verification thresholds and self-healing switches,
  /// applied by QbdSolution's solving constructor (see qbd/trust.h).
  /// solve_r itself only computes the scaled residual the checks grade.
  TrustPolicy trust;
};

/// Result of an R computation with convergence diagnostics.
struct RSolveResult {
  Matrix r;                ///< the minimal non-negative solution R
  unsigned iterations = 0; ///< iterations used by the winning attempt
  /// Scaled residual ||A0 + R A1 + R^2 A2||_inf / sum_i ||Ai||_inf at
  /// return (the raw norm is report.final_defect_raw).
  double residual = 0.0;
  SolveReport report;      ///< full guardrail diagnostics
};

/// Result of a G computation (logarithmic reduction).
struct GSolveResult {
  Matrix g;                 ///< first-passage matrix (stochastic iff stable)
  unsigned iterations = 0;  ///< doubling steps used
  double defect = 0.0;      ///< max_i |1 - (G e)_i| actually achieved
  bool converged = false;
  /// The iteration was cut off by the calling thread's cooperative
  /// deadline (obs::DeadlineScope) rather than by non-convergence.
  bool deadline_expired = false;
};

/// Compute R by the selected algorithm, with guarded fallbacks (see file
/// comment). The QBD must be irreducible and stable; an unstable model
/// throws UnstableModel from the drift pre-check, and a solve that
/// exhausts the fallback chain throws SolverFailure with the report.
RSolveResult solve_r(const QbdBlocks& blocks, const SolverOptions& opts = {});

/// Compute G with logarithmic reduction (used internally by solve_r and
/// exposed for tests: G is stochastic iff the chain is recurrent).
/// Throws NumericalError -- with the achieved defect in the message --
/// when the iteration fails to converge.
GSolveResult solve_g_logred(const QbdBlocks& blocks,
                            const SolverOptions& opts = {});

/// Block scale sum_i ||Ai||_inf used to normalize R-residuals (1 for an
/// all-zero QBD, so the scaled residual is always well defined).
double residual_scale(const QbdBlocks& blocks) noexcept;

/// Scaled residual ||A0 + R A1 + R^2 A2||_inf / residual_scale(blocks):
/// the dimensionless defect reported in SolveReport::final_defect and
/// graded by the trust thresholds.
double r_residual_norm(const QbdBlocks& blocks, const Matrix& r);

/// Spectral radius estimate of a non-negative matrix via power iteration;
/// for R this is the caudal characteristic (geometric decay rate) of the
/// queue-length distribution.
double spectral_radius(const Matrix& m, double tol = 1e-12,
                       unsigned max_iter = 20000);

}  // namespace performa::qbd
