#include "qbd/finite.h"

#include "linalg/ctmc.h"
#include "linalg/lu.h"

namespace performa::qbd {

FiniteQbdSolution::FiniteQbdSolution(const QbdBlocks& blocks,
                                     std::size_t capacity)
    : blocks_(blocks) {
  PERFORMA_EXPECTS(capacity >= 1, "FiniteQbdSolution: capacity must be >= 1");
  blocks.validate();

  // Backward sweep: R_k for k = K down to 1 (R_k maps pi_{k-1} to pi_k).
  std::vector<Matrix> rs(capacity + 1);
  rs[capacity] =
      linalg::Lu(-1.0 * (blocks.a1 + blocks.a0)).solve_left(blocks.a0);
  for (std::size_t k = capacity; k-- > 1;) {
    rs[k] = linalg::Lu(-1.0 * (blocks.a1 + rs[k + 1] * blocks.a2))
                .solve_left(blocks.a0);
  }

  // Censored generator on level 0: B00 + R_1 B10.
  const Matrix censored = blocks.b00 + rs[1] * blocks.b10;
  Vector pi0 = linalg::stationary_distribution(censored);

  pis_.resize(capacity + 1);
  pis_[0] = pi0;
  double total = linalg::sum(pi0);
  for (std::size_t k = 1; k <= capacity; ++k) {
    pis_[k] = pis_[k - 1] * rs[k];
    total += linalg::sum(pis_[k]);
  }
  for (auto& pi : pis_) {
    for (double& x : pi) x /= total;
  }
}

double FiniteQbdSolution::pmf(std::size_t k) const {
  if (k >= pis_.size()) return 0.0;
  return linalg::sum(pis_[k]);
}

double FiniteQbdSolution::tail(std::size_t k) const {
  double acc = 0.0;
  for (std::size_t j = k; j < pis_.size(); ++j) acc += linalg::sum(pis_[j]);
  return acc;
}

double FiniteQbdSolution::mean_queue_length() const {
  double acc = 0.0;
  for (std::size_t k = 1; k < pis_.size(); ++k) {
    acc += static_cast<double>(k) * linalg::sum(pis_[k]);
  }
  return acc;
}

double FiniteQbdSolution::probability_empty() const {
  return linalg::sum(pis_.front());
}

double FiniteQbdSolution::probability_full() const {
  return linalg::sum(pis_.back());
}

double FiniteQbdSolution::blocking_probability() const {
  const Vector arrival_rates =
      blocks_.a0 * linalg::ones(blocks_.phase_dim());
  double blocked = linalg::dot(pis_.back(), arrival_rates);
  double total = 0.0;
  for (const auto& pi : pis_) total += linalg::dot(pi, arrival_rates);
  return blocked / total;
}

const linalg::Vector& FiniteQbdSolution::level(std::size_t k) const {
  PERFORMA_EXPECTS(k < pis_.size(), "FiniteQbdSolution::level: out of range");
  return pis_[k];
}

}  // namespace performa::qbd
