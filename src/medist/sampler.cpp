#include "medist/sampler.h"

#include <algorithm>
#include <cmath>

namespace performa::medist {

PhaseSampler::PhaseSampler(const MeDistribution& dist) {
  PERFORMA_EXPECTS(dist.is_phase_type(),
                   "PhaseSampler: distribution is not phase-type; exact "
                   "phase simulation is undefined");
  const Matrix& b = dist.rate_matrix();
  const Vector& p = dist.entry_vector();
  const std::size_t n = dist.dim();

  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] <= 0.0) continue;
    acc += p[i];
    entry_cdf_.push_back(acc);
    entry_target_.push_back(static_cast<int>(i));
  }
  // Guard the last bucket against rounding.
  entry_cdf_.back() = 1.0;

  const Vector exits = dist.exit_rates();
  phases_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Phase& ph = phases_[i];
    ph.rate = b(i, i);
    double cum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double rate_ij = -b(i, j);
      if (rate_ij <= 0.0) continue;
      cum += rate_ij / ph.rate;
      ph.next_cdf.push_back(cum);
      ph.next.push_back(static_cast<int>(j));
    }
    // Absorption takes the remaining probability mass.
    ph.next_cdf.push_back(1.0);
    ph.next.push_back(-1);
  }
}

std::size_t PhaseSampler::pick_index(const std::vector<double>& cdf,
                                     double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf.begin(),
                               static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

}  // namespace performa::medist
