#include "medist/me_dist.h"

#include <cmath>
#include <utility>

#include "linalg/expm.h"
#include "linalg/lu.h"

namespace performa::medist {

MeDistribution::MeDistribution(Vector p, Matrix b, std::string name)
    : p_(std::move(p)), b_(std::move(b)), name_(std::move(name)) {
  PERFORMA_EXPECTS(!p_.empty(), "MeDistribution: empty entry vector");
  PERFORMA_EXPECTS(b_.is_square() && b_.rows() == p_.size(),
                   "MeDistribution: p/B shape mismatch");
  double total = 0.0;
  for (double x : p_) {
    PERFORMA_EXPECTS(x >= -1e-12, "MeDistribution: negative entry probability");
    total += x;
  }
  PERFORMA_EXPECTS(std::abs(total - 1.0) < 1e-9,
                   "MeDistribution: entry vector must sum to 1");
  const double m = moment(1);
  PERFORMA_EXPECTS(std::isfinite(m) && m > 0.0,
                   "MeDistribution: mean must be finite and positive");
}

double MeDistribution::moment(unsigned k) const {
  PERFORMA_EXPECTS(k >= 1, "MeDistribution::moment: k must be >= 1");
  // E[X^k] = k! p (B^{-1})^k e: repeated solves against B.
  const linalg::Lu lu(b_);
  Vector v = linalg::ones(dim());
  double factorial = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    v = lu.solve(v);
    factorial *= i;
  }
  return factorial * linalg::dot(p_, v);
}

double MeDistribution::variance() const {
  const double m1 = moment(1);
  return moment(2) - m1 * m1;
}

double MeDistribution::scv() const {
  const double m1 = moment(1);
  return variance() / (m1 * m1);
}

double MeDistribution::reliability(double t) const {
  PERFORMA_EXPECTS(t >= 0.0, "reliability: t must be >= 0");
  if (t == 0.0) return 1.0;
  const Matrix e = linalg::expm(-t * b_);
  return linalg::dot(p_, e * linalg::ones(dim()));
}

double MeDistribution::density(double t) const {
  PERFORMA_EXPECTS(t >= 0.0, "density: t must be >= 0");
  const Matrix e = linalg::expm(-t * b_);
  return linalg::dot(p_, e * exit_rates());
}

Vector MeDistribution::exit_rates() const {
  return b_ * linalg::ones(dim());
}

MeDistribution MeDistribution::scaled_to_mean(double new_mean) const {
  PERFORMA_EXPECTS(new_mean > 0.0, "scaled_to_mean: mean must be positive");
  const double factor = mean() / new_mean;
  return MeDistribution(p_, factor * b_, name_);
}

bool MeDistribution::is_phase_type(double tol) const noexcept {
  for (std::size_t i = 0; i < dim(); ++i) {
    if (b_(i, i) <= 0.0) return false;
    for (std::size_t j = 0; j < dim(); ++j) {
      if (i != j && b_(i, j) > tol) return false;
    }
  }
  const Vector exits = b_ * linalg::ones(dim());
  for (double x : exits) {
    if (x < -tol) return false;
  }
  return true;
}

MeDistribution exponential_dist(double rate) {
  PERFORMA_EXPECTS(rate > 0.0, "exponential_dist: rate must be positive");
  return MeDistribution(Vector{1.0}, Matrix{{rate}}, "exp");
}

MeDistribution exponential_from_mean(double mean) {
  PERFORMA_EXPECTS(mean > 0.0, "exponential_from_mean: mean must be positive");
  return exponential_dist(1.0 / mean);
}

MeDistribution erlang_dist(unsigned k, double mean) {
  PERFORMA_EXPECTS(k >= 1, "erlang_dist: k must be >= 1");
  PERFORMA_EXPECTS(mean > 0.0, "erlang_dist: mean must be positive");
  const double rate = static_cast<double>(k) / mean;
  Matrix b(k, k, 0.0);
  for (unsigned i = 0; i < k; ++i) {
    b(i, i) = rate;
    if (i + 1 < k) b(i, i + 1) = -rate;
  }
  Vector p(k, 0.0);
  p[0] = 1.0;
  return MeDistribution(std::move(p), std::move(b), "erlang-" + std::to_string(k));
}

MeDistribution hyperexponential_dist(const Vector& probs, const Vector& rates,
                                     std::string name) {
  PERFORMA_EXPECTS(!probs.empty() && probs.size() == rates.size(),
                   "hyperexponential_dist: probs/rates length mismatch");
  for (double r : rates) {
    PERFORMA_EXPECTS(r > 0.0, "hyperexponential_dist: rates must be positive");
  }
  return MeDistribution(probs, Matrix::diag(rates), std::move(name));
}

}  // namespace performa::medist
