// Fitting repair-time models to measured data. The paper's motivation
// rests on the empirical observation (Palmer & Mitrani 2005) that real
// repair durations are fitted far better by hyperexponentials than by
// exponentials; this module provides the pipeline from a log of repair
// durations to the distributions the analytic model consumes:
//
//   samples -> sample moments -> HYP-2 (3-moment fit)
//   samples -> Hill tail-exponent estimate -> TPT(alpha, mean)
#pragma once

#include <vector>

#include "medist/moment_fit.h"
#include "medist/tpt.h"

namespace performa::medist {

/// First three raw sample moments of positive observations.
struct SampleMoments {
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
  std::size_t count = 0;

  double variance() const { return m2 - m1 * m1; }
  double scv() const { return variance() / (m1 * m1); }
};

/// Throws InvalidArgument on an empty sample or non-positive entries.
SampleMoments sample_moments(const std::vector<double>& samples);

/// HYP-2 fitted to the first three sample moments; throws NumericalError
/// when the sample is under-dispersed (SCV < 1) or otherwise infeasible.
Hyp2Fit fit_hyp2_samples(const std::vector<double>& samples);

/// Hill estimator of the tail exponent alpha from the `k` largest
/// observations: alpha_hat = k / sum_{i<=k} ln(x_(n-i+1) / x_(n-k)).
/// Requires 2 <= k < n. Consistent for power tails; for a truncated
/// power tail choose k well below the truncation knee.
double hill_tail_exponent(std::vector<double> samples, std::size_t k);

/// Full pipeline: TPT with the sample mean and the Hill alpha estimate
/// (theta and the phase count remain modeling choices).
TptSpec fit_tpt_from_samples(const std::vector<double>& samples,
                             unsigned phases, double theta,
                             std::size_t hill_k);

}  // namespace performa::medist
