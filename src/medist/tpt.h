// Truncated power-tail (TPT) distributions after Greiner, Jobmann and
// Lipsky ("The Importance of Power-tail Distributions for Telecommunication
// Traffic Models", Operations Research 47(2), 1999).
//
// The TPT(T, alpha, theta) is a T-phase hyperexponential whose entry
// probabilities decay geometrically (p_i ~ theta^i) while the phase means
// grow geometrically (1/mu_i ~ gamma^i with gamma = theta^{-1/alpha}).
// Its reliability function behaves like t^{-alpha} over roughly
// gamma^T time scales before dropping off exponentially -- the paper's
// model for multi-time-scale repair durations (process restart, reboot,
// hardware swap, machine replacement). T = 1 degenerates to an
// exponential.
#pragma once

#include "medist/me_dist.h"

namespace performa::medist {

/// Parameter set for a TPT distribution.
struct TptSpec {
  unsigned phases = 1;   ///< T, the truncation parameter (number of phases)
  double alpha = 1.4;    ///< power-tail exponent (1 < alpha < 2 => infinite variance as T->inf)
  double theta = 0.2;    ///< geometric weight decay, 0 < theta < 1
  double mean = 1.0;     ///< target mean of the distribution

  /// gamma = theta^{-1/alpha}: geometric growth factor of phase means.
  double gamma() const;

  /// Time scale of the longest phase relative to the shortest
  /// (gamma^{T-1}); the "range" over which power-law behaviour holds.
  double range() const;
};

/// Build the TPT distribution for a given spec.
/// Throws InvalidArgument for out-of-range parameters.
MeDistribution make_tpt(const TptSpec& spec);

/// Entry probabilities p_i = theta^i (1-theta)/(1-theta^T), i = 0..T-1.
Vector tpt_entry_probabilities(const TptSpec& spec);

/// Phase rates mu_i = mu0 * gamma^{-i}, with mu0 chosen so the overall
/// mean matches spec.mean.
Vector tpt_phase_rates(const TptSpec& spec);

}  // namespace performa::medist
