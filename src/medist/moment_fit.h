// Moment-matching fits.
//
// Figure 4/5/6/9 of the paper replace the T-phase TPT repair distribution
// with a 2-phase hyperexponential (HYP-2) matched to the TPT's first three
// moments -- fewer phases, better numerical behaviour, same blow-up
// qualitative structure.
#pragma once

#include "medist/me_dist.h"

namespace performa::medist {

/// Parameters of a fitted 2-phase hyperexponential.
struct Hyp2Fit {
  double p1 = 0.0;      ///< entry probability of phase 1
  double rate1 = 0.0;   ///< rate of phase 1 (the fast phase)
  double rate2 = 0.0;   ///< rate of phase 2 (the slow phase)

  MeDistribution to_distribution() const;
};

/// Fit a HYP-2 to raw moments (m1, m2, m3).
///
/// Feasibility requires SCV >= 1 and a third moment large enough for the
/// induced 2-point distribution of phase means to have real, positive
/// atoms; otherwise NumericalError is thrown. An SCV within `tol` of 1
/// collapses to an exponential fit (p1 = 1, rate1 = rate2 = 1/m1).
Hyp2Fit fit_hyp2_moments(double m1, double m2, double m3, double tol = 1e-9);

/// Convenience: fit a HYP-2 to the first three moments of `d`.
Hyp2Fit fit_hyp2(const MeDistribution& d);

/// Two-moment HYP-2 fit with balanced means (p1/rate1 = p2/rate2), the
/// standard way to realize a target mean and SCV >= 1 when no third
/// moment is prescribed (used for the paper's "HYP-2 task times with
/// variance 5.3" in Fig. 9). SCV == 1 collapses to an exponential.
MeDistribution hyperexp_from_mean_scv(double mean, double scv);

}  // namespace performa::medist
