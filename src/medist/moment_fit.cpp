#include "medist/moment_fit.h"

#include <cmath>

namespace performa::medist {

MeDistribution Hyp2Fit::to_distribution() const {
  if (p1 >= 1.0) return exponential_dist(rate1);
  return hyperexponential_dist(Vector{p1, 1.0 - p1}, Vector{rate1, rate2},
                               "hyp2-fit");
}

Hyp2Fit fit_hyp2_moments(double m1, double m2, double m3, double tol) {
  PERFORMA_EXPECTS(m1 > 0.0 && m2 > 0.0 && m3 > 0.0,
                   "fit_hyp2_moments: moments must be positive");

  // Work with reduced moments r_k = m_k / k! = p1 u1^k + p2 u2^k, where
  // u_j = 1/rate_j are the phase means: the problem becomes fitting a
  // 2-atom discrete distribution on {u1, u2} from its first three power
  // sums.
  const double r1 = m1;
  const double r2 = m2 / 2.0;
  const double r3 = m3 / 6.0;

  // SCV - 1 = (m2 - 2 m1^2) / m1^2; zero exactly for an exponential.
  const double scv_excess = m2 / (m1 * m1) - 2.0;
  if (std::abs(scv_excess) <= tol) {
    // Borderline: exponential.
    return Hyp2Fit{1.0, 1.0 / m1, 1.0 / m1};
  }
  if (scv_excess < 0.0) {
    throw NumericalError(
        "fit_hyp2_moments: SCV < 1, hyperexponential fit infeasible");
  }

  // u1, u2 are the roots of u^2 - a u + b with the Hankel relations
  //   a r1 - b = r2
  //   a r2 - b r1 = r3
  const double denom = r2 - r1 * r1;
  const double a = (r3 - r1 * r2) / denom;
  const double b = a * r1 - r2;
  const double disc = a * a - 4.0 * b;
  if (disc <= 0.0) {
    throw NumericalError(
        "fit_hyp2_moments: discriminant non-positive, third moment "
        "inconsistent with a 2-phase hyperexponential");
  }
  const double root = std::sqrt(disc);
  const double u_fast = (a - root) / 2.0;  // smaller mean -> faster phase
  const double u_slow = (a + root) / 2.0;
  if (u_fast <= 0.0) {
    throw NumericalError(
        "fit_hyp2_moments: fitted phase mean non-positive, moments "
        "infeasible for HYP-2");
  }
  const double p1 = (u_slow - r1) / (u_slow - u_fast);
  if (p1 <= 0.0 || p1 >= 1.0) {
    throw NumericalError(
        "fit_hyp2_moments: fitted entry probability outside (0,1)");
  }
  return Hyp2Fit{p1, 1.0 / u_fast, 1.0 / u_slow};
}

Hyp2Fit fit_hyp2(const MeDistribution& d) {
  return fit_hyp2_moments(d.moment(1), d.moment(2), d.moment(3));
}

MeDistribution hyperexp_from_mean_scv(double mean, double scv) {
  PERFORMA_EXPECTS(mean > 0.0, "hyperexp_from_mean_scv: mean must be positive");
  PERFORMA_EXPECTS(scv >= 1.0 - 1e-12,
                   "hyperexp_from_mean_scv: SCV must be >= 1");
  if (scv <= 1.0 + 1e-12) return exponential_from_mean(mean);
  // Balanced means: p1 u1 = p2 u2 = mean/2 with u_i the phase means.
  // Then SCV = 2 p1 p2^{-1}... solving the standard equations gives
  //   p1 = (1 + sqrt((scv-1)/(scv+1))) / 2,
  //   rate1 = 2 p1 / mean, rate2 = 2 (1-p1) / mean.
  const double p1 = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double rate1 = 2.0 * p1 / mean;
  const double rate2 = 2.0 * (1.0 - p1) / mean;
  return hyperexponential_dist(Vector{p1, 1.0 - p1}, Vector{rate1, rate2},
                               "hyp2-scv");
}

}  // namespace performa::medist
