#include "medist/empirical.h"

#include <algorithm>
#include <cmath>

namespace performa::medist {

SampleMoments sample_moments(const std::vector<double>& samples) {
  PERFORMA_EXPECTS(!samples.empty(), "sample_moments: empty sample");
  SampleMoments m;
  m.count = samples.size();
  for (double x : samples) {
    PERFORMA_EXPECTS(x > 0.0, "sample_moments: observations must be > 0");
    m.m1 += x;
    m.m2 += x * x;
    m.m3 += x * x * x;
  }
  const double n = static_cast<double>(m.count);
  m.m1 /= n;
  m.m2 /= n;
  m.m3 /= n;
  return m;
}

Hyp2Fit fit_hyp2_samples(const std::vector<double>& samples) {
  const SampleMoments m = sample_moments(samples);
  return fit_hyp2_moments(m.m1, m.m2, m.m3);
}

double hill_tail_exponent(std::vector<double> samples, std::size_t k) {
  PERFORMA_EXPECTS(k >= 2 && k < samples.size(),
                   "hill_tail_exponent: need 2 <= k < sample size");
  // Partial sort: the k+1 largest observations to the front.
  std::partial_sort(samples.begin(),
                    samples.begin() + static_cast<std::ptrdiff_t>(k + 1),
                    samples.end(), std::greater<double>());
  const double threshold = samples[k];
  PERFORMA_EXPECTS(threshold > 0.0,
                   "hill_tail_exponent: non-positive threshold");
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += std::log(samples[i] / threshold);
  }
  if (acc <= 0.0) {
    throw NumericalError(
        "hill_tail_exponent: degenerate upper order statistics");
  }
  return static_cast<double>(k) / acc;
}

TptSpec fit_tpt_from_samples(const std::vector<double>& samples,
                             unsigned phases, double theta,
                             std::size_t hill_k) {
  const SampleMoments m = sample_moments(samples);
  TptSpec spec;
  spec.phases = phases;
  spec.theta = theta;
  spec.mean = m.m1;
  spec.alpha = hill_tail_exponent(samples, hill_k);
  // Validate by construction.
  (void)make_tpt(spec);
  return spec;
}

}  // namespace performa::medist
