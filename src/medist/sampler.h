// Exact sampling from phase-type distributions by simulating the
// underlying absorbing Markov chain. Used by the discrete-event simulator
// for UP/DOWN durations and non-exponential task times.
#pragma once

#include <random>
#include <vector>

#include "medist/me_dist.h"

namespace performa::medist {

/// Sampler for a phase-type <p, B> distribution.
///
/// Construction precomputes, for every phase, the exponential holding rate
/// and the discrete distribution over "next phase or absorb"; sampling is
/// then a plain CTMC walk. Throws InvalidArgument if the distribution does
/// not have phase-type sign structure (general ME distributions cannot be
/// simulated this way).
class PhaseSampler {
 public:
  explicit PhaseSampler(const MeDistribution& dist);

  /// Draw one variate using any standard uniform random bit generator.
  template <class Urbg>
  double sample(Urbg& rng) const {
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    double t = 0.0;
    int phase = entry_target_[pick_index(entry_cdf_, uni(rng))];
    while (phase >= 0) {
      const auto& ph = phases_[static_cast<std::size_t>(phase)];
      t += std::exponential_distribution<double>(ph.rate)(rng);
      phase = ph.next[pick_index(ph.next_cdf, uni(rng))];
    }
    return t;
  }

  std::size_t dim() const noexcept { return phases_.size(); }

 private:
  struct Phase {
    double rate = 0.0;             // total outflow rate (holding rate)
    std::vector<double> next_cdf;  // cumulative probabilities
    std::vector<int> next;         // target phase, -1 = absorb
  };

  /// Index of the first cdf entry >= u (cdf is nondecreasing, ends at ~1).
  static std::size_t pick_index(const std::vector<double>& cdf, double u);

  std::vector<double> entry_cdf_;
  std::vector<int> entry_target_;
  std::vector<Phase> phases_;
};

}  // namespace performa::medist
