#include "medist/tpt.h"

#include <cmath>

namespace performa::medist {

double TptSpec::gamma() const { return std::pow(theta, -1.0 / alpha); }

double TptSpec::range() const {
  return std::pow(gamma(), static_cast<double>(phases) - 1.0);
}

namespace {

void validate(const TptSpec& spec) {
  PERFORMA_EXPECTS(spec.phases >= 1, "TptSpec: phases must be >= 1");
  PERFORMA_EXPECTS(spec.alpha > 0.0, "TptSpec: alpha must be positive");
  PERFORMA_EXPECTS(spec.theta > 0.0 && spec.theta < 1.0,
                   "TptSpec: theta must be in (0,1)");
  PERFORMA_EXPECTS(spec.mean > 0.0, "TptSpec: mean must be positive");
}

}  // namespace

Vector tpt_entry_probabilities(const TptSpec& spec) {
  validate(spec);
  const unsigned t = spec.phases;
  Vector p(t);
  const double norm =
      (1.0 - spec.theta) / (1.0 - std::pow(spec.theta, static_cast<double>(t)));
  double w = norm;
  for (unsigned i = 0; i < t; ++i) {
    p[i] = w;
    w *= spec.theta;
  }
  return p;
}

Vector tpt_phase_rates(const TptSpec& spec) {
  validate(spec);
  const unsigned t = spec.phases;
  const double g = spec.gamma();
  const Vector p = tpt_entry_probabilities(spec);

  // Unnormalized mean with mu0 = 1: sum_i p_i * gamma^i.
  double unnorm_mean = 0.0;
  double gi = 1.0;
  for (unsigned i = 0; i < t; ++i) {
    unnorm_mean += p[i] * gi;
    gi *= g;
  }
  const double mu0 = unnorm_mean / spec.mean;

  Vector rates(t);
  double scale = mu0;
  for (unsigned i = 0; i < t; ++i) {
    rates[i] = scale;
    scale /= g;
  }
  return rates;
}

MeDistribution make_tpt(const TptSpec& spec) {
  const Vector p = tpt_entry_probabilities(spec);
  const Vector rates = tpt_phase_rates(spec);
  return hyperexponential_dist(p, rates,
                               "tpt-T" + std::to_string(spec.phases));
}

}  // namespace performa::medist
