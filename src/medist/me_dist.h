// Matrix-exponential (ME) distributions in LAQT vector-matrix notation.
//
// A distribution is the pair <p, B> (Lipsky, "Queueing Theory: A Linear
// Algebraic Approach"): p is the entry (startup) row vector and B the
// service-rate matrix, giving
//
//   reliability  R(t) = Pr(X > t) = p exp(-B t) e
//   moments      E[X^k]           = k! * p B^{-k} e
//
// For phase-type members of the family (everything this paper needs:
// exponential, Erlang, hyperexponential, truncated power-tail), B = -T
// where T is the transient generator block, so B has positive diagonal
// and non-positive off-diagonal entries.
#pragma once

#include <string>

#include "linalg/matrix.h"

namespace performa::medist {

using linalg::Matrix;
using linalg::Vector;

/// Immutable matrix-exponential distribution <p, B>.
class MeDistribution {
 public:
  /// Construct from an entry vector and rate matrix. `name` is carried
  /// along for diagnostics and plot legends.
  /// Throws InvalidArgument if p/B shapes mismatch, p is not a probability
  /// vector, or the implied mean is not finite and positive.
  MeDistribution(Vector p, Matrix b, std::string name = "me");

  const Vector& entry_vector() const noexcept { return p_; }
  const Matrix& rate_matrix() const noexcept { return b_; }
  const std::string& name() const noexcept { return name_; }
  std::size_t dim() const noexcept { return p_.size(); }

  /// k-th raw moment E[X^k] (k >= 1): k! * p B^{-k} e.
  double moment(unsigned k) const;

  double mean() const { return moment(1); }
  double variance() const;
  /// Squared coefficient of variation Var/Mean^2.
  double scv() const;

  /// Reliability function Pr(X > t); evaluated via the matrix exponential.
  double reliability(double t) const;
  /// CDF Pr(X <= t).
  double cdf(double t) const { return 1.0 - reliability(t); }
  /// Density f(t) = p exp(-B t) B e.
  double density(double t) const;

  /// Exit-rate (absorption) vector b = B e.
  Vector exit_rates() const;

  /// Copy rescaled so that the mean equals `new_mean` (time-scale change:
  /// B is multiplied by mean()/new_mean).
  MeDistribution scaled_to_mean(double new_mean) const;

  /// True iff <p,B> has phase-type sign structure (positive diagonal,
  /// non-positive off-diagonal, non-negative exit rates), so the phase
  /// interpretation -- and exact simulation -- is valid.
  bool is_phase_type(double tol = 1e-12) const noexcept;

 private:
  Vector p_;
  Matrix b_;
  std::string name_;
};

// --- factories --------------------------------------------------------------

/// Exponential distribution with the given rate (1 phase).
MeDistribution exponential_dist(double rate);

/// Exponential distribution with the given mean.
MeDistribution exponential_from_mean(double mean);

/// Erlang-k with given overall mean (k sequential phases of rate k/mean).
MeDistribution erlang_dist(unsigned k, double mean);

/// General hyperexponential: entry probability probs[i] into an
/// exponential phase of rate rates[i]. probs must sum to 1.
MeDistribution hyperexponential_dist(const Vector& probs, const Vector& rates,
                                     std::string name = "hyperexp");

}  // namespace performa::medist
