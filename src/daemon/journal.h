// Append-only cache journal: performad's crash-only persistence.
//
// Every solution the daemon computes is serialized into one
// self-checksummed record (the runner's checkpoint codec: CRC-32 over
// the payload, hex-float numbers for bit-exact round-trips) and
// appended to the journal with a *single write(2)* on an O_APPEND fd.
// A whole record in one syscall cannot be torn by SIGKILL -- the kernel
// either has the bytes or it does not -- so the only window left is
// power loss before the page reaches disk, which the `sync` flag
// (fsync per append, the daemon's default) closes.
//
//   performad-cache v1
//   P <crc32-hex> <seq>|<model-key>|ok|1|||<metrics>
//
// <metrics> carries the solution itself: `m` (phase dimension), `nu`,
// `av`, `u`, `lam` (derived scalars), then the R matrix row-major as
// `r0..r{m*m-1}` and the boundary vectors as `a0..` (pi0) / `b0..`
// (pi1).
//
// Recovery is load-and-validate: records with a bad CRC are dropped
// (counted), later records for the same key win (a re-solved model
// supersedes its old record -- deliberately *unlike* the sweep
// checkpoint's v2 duplicate rejection, because a cache legitimately
// rewrites entries), and each surviving triple is pushed through
// QbdSolution's validating rehydration constructor, so a record that
// is well-formed but numerically nonsensical is also dropped rather
// than served. A SIGKILLed daemon restarted on the same journal starts
// with its cache warm.
//
// The journal only grows; compact() rewrites it from a cache snapshot
// via write-temp-then-rename, so even a crash mid-compaction leaves
// either the old or the new journal, never a hybrid.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "daemon/cache.h"

namespace performa::daemon {

inline constexpr int kJournalVersion = 1;

/// Serialize one cache entry into a checkpoint-codec record line
/// (without trailing newline). Exposed for tests.
std::string encode_journal_record(const std::string& key,
                                  const CachedSolution& entry,
                                  std::uint64_t seq);

/// Inverse of encode_journal_record: CRC check, field parse, and
/// QbdSolution rehydration. Returns false on any damage.
bool decode_journal_record(const std::string& line, std::string& key,
                           CachedSolution& entry);

/// Result of loading a journal from disk.
struct JournalLoad {
  /// Latest valid record per key, in journal order of first appearance.
  std::vector<std::pair<std::string, CachedSolution>> entries;
  std::size_t records = 0;          ///< valid records seen (incl. superseded)
  std::size_t dropped_records = 0;  ///< CRC/parse/rehydration failures
};

/// Writer handle for the append-only journal file.
class CacheJournal {
 public:
  /// Open (creating with a header when absent) for appending. With
  /// `sync`, every append is fsync'd. Throws NumericalError on I/O
  /// failure, InvalidArgument when an existing file has a foreign
  /// header.
  CacheJournal(std::string path, bool sync);
  ~CacheJournal();

  CacheJournal(const CacheJournal&) = delete;
  CacheJournal& operator=(const CacheJournal&) = delete;

  /// Append one entry (one record, one write syscall). I/O errors
  /// throw; the in-memory cache is the source of truth, so a failed
  /// append degrades durability, not correctness.
  void append(const std::string& key, const CachedSolution& entry);

  /// Rewrite the journal to hold exactly `entries` (a cache snapshot),
  /// atomically via temp file + rename. The append fd is reopened on
  /// the new file.
  void compact(
      const std::vector<std::pair<std::string, CachedSolution>>& entries);

  const std::string& path() const noexcept { return path_; }
  std::uint64_t appended() const noexcept { return seq_; }

 private:
  void open_for_append();

  std::string path_;
  bool sync_;
  int fd_ = -1;
  std::uint64_t seq_ = 0;
};

/// Load and validate a journal. A missing file yields an empty load
/// (first boot); a present file with a foreign header throws
/// InvalidArgument.
JournalLoad load_journal(const std::string& path);

}  // namespace performa::daemon
