// Minimal JSON codec for the performad wire protocol.
//
// The protocol is newline-delimited JSON with *flat* objects: every
// request and response is one line holding one object whose values are
// null, booleans, numbers or strings (responses may additionally carry
// arrays of numbers). That restriction buys a codec small enough to
// audit, with no dependency and no recursion on attacker-controlled
// input -- a malformed or adversarial line costs O(length) and produces
// a typed parse error, never UB or unbounded work.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace performa::daemon {

/// One JSON scalar.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
};

/// A parsed flat JSON object: ordered key/value pairs with typed,
/// defaulted accessors (the protocol treats absent and null alike).
class JsonObject {
 public:
  void add(std::string key, JsonValue value) {
    fields_.emplace_back(std::move(key), std::move(value));
  }

  bool has(const std::string& key) const noexcept;
  const JsonValue* find(const std::string& key) const noexcept;

  /// Typed lookups; return `fallback` when the key is absent or null.
  /// A present key of the *wrong* type is a protocol error the caller
  /// should reject -- check with has()/find() -- but these accessors
  /// still behave (fallback) rather than throw.
  double number(const std::string& key, double fallback) const noexcept;
  bool boolean(const std::string& key, bool fallback) const noexcept;
  std::string string(const std::string& key,
                     const std::string& fallback) const;

  const std::vector<std::pair<std::string, JsonValue>>& fields()
      const noexcept {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

/// Parse one flat JSON object. Returns false with a position-bearing
/// message in `error` on malformed input, non-object input, or nested
/// containers (which the protocol does not use).
bool parse_json_object(const std::string& text, JsonObject& out,
                       std::string& error);

/// Incremental writer for one flat JSON object line.
class JsonWriter {
 public:
  JsonWriter() : out_("{") {}

  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::uint64_t value);
  void field(const std::string& key, bool value);
  void field_null(const std::string& key);
  void field_array(const std::string& key, const std::vector<double>& values);

  /// Finish and return `{...}` (no trailing newline).
  std::string str() &&;

 private:
  void key(const std::string& k);
  std::string out_;
  bool first_ = true;
};

/// JSON string escaping (shared with tests).
std::string json_escape(const std::string& text);

/// Render a double as JSON: shortest round-trip decimal; NaN/Inf (not
/// representable in JSON) become null.
std::string json_number(double value);

}  // namespace performa::daemon
