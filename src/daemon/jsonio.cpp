#include "daemon/jsonio.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace performa::daemon {

namespace {

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  bool eof() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return eof() ? '\0' : text[pos]; }
  char take() noexcept { return eof() ? '\0' : text[pos++]; }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
};

bool fail(Cursor& c, std::string& error, const std::string& why) {
  error = "json: " + why + " at position " + std::to_string(c.pos);
  return false;
}

bool parse_literal(Cursor& c, const char* word, std::string& error) {
  const std::size_t len = std::strlen(word);
  if (c.text.compare(c.pos, len, word) != 0) {
    return fail(c, error, std::string("expected '") + word + "'");
  }
  c.pos += len;
  return true;
}

// Parses a JSON string (cursor on the opening quote). Handles the
// escapes the protocol emits; \uXXXX is decoded for the BMP only
// (surrogate pairs are rejected -- the protocol never produces them).
bool parse_string(Cursor& c, std::string& out, std::string& error) {
  if (c.take() != '"') return fail(c, error, "expected '\"'");
  out.clear();
  while (true) {
    if (c.eof()) return fail(c, error, "unterminated string");
    char ch = c.take();
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) {
      return fail(c, error, "raw control character in string");
    }
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.eof()) return fail(c, error, "unterminated escape");
    const char esc = c.take();
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (c.pos + 4 > c.text.size()) {
          return fail(c, error, "truncated \\u escape");
        }
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.take();
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
          else return fail(c, error, "bad hex digit in \\u escape");
        }
        if (cp >= 0xD800 && cp <= 0xDFFF) {
          return fail(c, error, "surrogate \\u escape unsupported");
        }
        // UTF-8 encode the BMP code point.
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default:
        return fail(c, error, "unknown escape");
    }
  }
}

bool parse_number(Cursor& c, double& out, std::string& error) {
  const std::size_t start = c.pos;
  if (c.peek() == '-') c.take();
  while (!c.eof()) {
    const char ch = c.peek();
    if ((ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' ||
        ch == '+' || ch == '-') {
      c.take();
    } else {
      break;
    }
  }
  const std::string token = c.text.substr(start, c.pos - start);
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    c.pos = start;
    return fail(c, error, "malformed number");
  }
  return true;
}

bool parse_value(Cursor& c, JsonValue& out, std::string& error) {
  c.skip_ws();
  const char ch = c.peek();
  if (ch == '"') {
    out.kind = JsonValue::Kind::kString;
    return parse_string(c, out.string, error);
  }
  if (ch == 't') {
    out.kind = JsonValue::Kind::kBool;
    out.boolean = true;
    return parse_literal(c, "true", error);
  }
  if (ch == 'f') {
    out.kind = JsonValue::Kind::kBool;
    out.boolean = false;
    return parse_literal(c, "false", error);
  }
  if (ch == 'n') {
    out.kind = JsonValue::Kind::kNull;
    return parse_literal(c, "null", error);
  }
  if (ch == '{' || ch == '[') {
    return fail(c, error, "nested containers not allowed (flat protocol)");
  }
  out.kind = JsonValue::Kind::kNumber;
  return parse_number(c, out.number, error);
}

}  // namespace

bool JsonObject::has(const std::string& key) const noexcept {
  return find(key) != nullptr;
}

const JsonValue* JsonObject::find(const std::string& key) const noexcept {
  // Later duplicates win, matching the appends-win convention used by
  // the journal: scan from the back.
  for (auto it = fields_.rbegin(); it != fields_.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

double JsonObject::number(const std::string& key,
                          double fallback) const noexcept {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return fallback;
  return v->number;
}

bool JsonObject::boolean(const std::string& key, bool fallback) const noexcept {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) return fallback;
  return v->boolean;
}

std::string JsonObject::string(const std::string& key,
                               const std::string& fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) return fallback;
  return v->string;
}

bool parse_json_object(const std::string& text, JsonObject& out,
                       std::string& error) {
  out = JsonObject{};
  Cursor c{text};
  c.skip_ws();
  if (c.take() != '{') return fail(c, error, "expected '{'");
  c.skip_ws();
  if (c.peek() == '}') {
    c.take();
    c.skip_ws();
    if (!c.eof()) return fail(c, error, "trailing bytes after object");
    return true;
  }
  while (true) {
    c.skip_ws();
    std::string key;
    if (!parse_string(c, key, error)) return false;
    c.skip_ws();
    if (c.take() != ':') return fail(c, error, "expected ':'");
    JsonValue value;
    if (!parse_value(c, value, error)) return false;
    out.add(std::move(key), std::move(value));
    c.skip_ws();
    const char sep = c.take();
    if (sep == ',') continue;
    if (sep == '}') break;
    return fail(c, error, "expected ',' or '}'");
  }
  c.skip_ws();
  if (!c.eof()) return fail(c, error, "trailing bytes after object");
  return true;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof probe, "%.*g", prec, value);
    if (std::strtod(probe, nullptr) == value) return probe;
  }
  return buf;
}

void JsonWriter::key(const std::string& k) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

void JsonWriter::field(const std::string& k, const std::string& value) {
  key(k);
  out_ += '"';
  out_ += json_escape(value);
  out_ += '"';
}

void JsonWriter::field(const std::string& k, const char* value) {
  field(k, std::string(value));
}

void JsonWriter::field(const std::string& k, double value) {
  key(k);
  out_ += json_number(value);
}

void JsonWriter::field(const std::string& k, std::uint64_t value) {
  key(k);
  out_ += std::to_string(value);
}

void JsonWriter::field(const std::string& k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
}

void JsonWriter::field_null(const std::string& k) {
  key(k);
  out_ += "null";
}

void JsonWriter::field_array(const std::string& k,
                             const std::vector<double>& values) {
  key(k);
  out_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ += ',';
    out_ += json_number(values[i]);
  }
  out_ += ']';
}

std::string JsonWriter::str() && {
  out_ += '}';
  return std::move(out_);
}

}  // namespace performa::daemon
