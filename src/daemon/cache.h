// Memoized stationary solutions for performad.
//
// Solving a cluster model is the expensive step (R-matrix iteration plus
// the boundary system); evaluating queries against a solved model is
// cheap. The daemon therefore caches QbdSolution objects keyed by a
// canonical model hash, under a *byte* budget rather than an entry
// count -- solutions for large phase spaces cost quadratically more
// memory than small ones, and an entry-count budget would let a handful
// of big models evict hundreds of cheap ones' worth of RAM headroom.
//
// Entries are shared_ptr<const QbdSolution>: a lookup hands out a
// reference that stays valid even if the entry is evicted (or the cache
// budget shrinks via SIGHUP reload) while the query is still computing
// against it.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "qbd/solution.h"

namespace performa::daemon {

/// One cached model solution plus the derived scalars queries need
/// (recomputing them from params on every hit would be cheap but
/// journal rehydration has no params to recompute from).
struct CachedSolution {
  std::shared_ptr<const qbd::QbdSolution> solution;
  double nu_bar = 0.0;        ///< mean cluster service rate
  double availability = 0.0;  ///< per-node steady-state availability
  double utilization = 0.0;   ///< rho the model was solved at
  double lambda = 0.0;        ///< arrival rate of the solve
};

/// Approximate resident footprint of one cached solution: the R matrix,
/// its (I-R)^{-1} companion, the two boundary vectors, plus fixed
/// bookkeeping overhead. Used for the cache's byte budget.
std::size_t solution_footprint_bytes(const CachedSolution& entry,
                                     const std::string& key);

/// Monotonic counters exposed through the daemon's stats op.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t stale_serves = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t budget_bytes = 0;
};

/// Thread-safe LRU cache of model solutions with a byte-size budget.
class SolutionCache {
 public:
  explicit SolutionCache(std::size_t budget_bytes);

  /// Lookup; a hit refreshes recency. `count_stats` lets internal
  /// callers (stale fallback probes) peek without skewing hit ratios.
  bool get(const std::string& key, CachedSolution& out,
           bool count_stats = true);

  /// Insert or replace, then evict LRU entries until within budget.
  /// An entry larger than the whole budget is still admitted alone --
  /// refusing it would make the daemon useless for exactly the models
  /// that are most expensive to recompute.
  void put(const std::string& key, CachedSolution entry);

  /// Record that a cached entry was served past its freshness (solver
  /// failed or deadline expired and the old answer was used).
  void note_stale_serve();

  /// Shrink/grow the budget (SIGHUP reload); shrinking evicts at once.
  void set_budget_bytes(std::size_t budget_bytes);

  CacheStats stats() const;

  /// Snapshot of all live entries, most-recently-used first. Used for
  /// journal compaction (rewriting only what is still worth keeping).
  std::vector<std::pair<std::string, CachedSolution>> snapshot() const;

 private:
  void evict_to_budget_locked();

  mutable std::mutex mutex_;
  std::size_t budget_bytes_;
  std::size_t bytes_ = 0;
  // MRU-first list of (key, entry, footprint); map points into it.
  struct Node {
    std::string key;
    CachedSolution entry;
    std::size_t footprint = 0;
  };
  std::list<Node> lru_;
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  CacheStats stats_;
};

}  // namespace performa::daemon
