#include "daemon/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "linalg/errors.h"
#include "obs/metrics.h"
#include "runner/checkpoint.h"

namespace performa::daemon {

namespace {

constexpr char kHeaderPrefix[] = "performad-cache v";

std::string header_line() {
  return std::string(kHeaderPrefix) + std::to_string(kJournalVersion);
}

bool parse_header(const std::string& line, int& version) {
  const std::size_t prefix = sizeof kHeaderPrefix - 1;
  if (line.compare(0, prefix, kHeaderPrefix) != 0) return false;
  const std::string digits = line.substr(prefix);
  if (digits.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size()) return false;
  version = static_cast<int>(v);
  return true;
}

// Parses "r123" -> (kind 'r', 123). Returns false for scalar names.
bool parse_indexed(const std::string& name, char& kind, std::size_t& index) {
  if (name.size() < 2) return false;
  kind = name[0];
  if (kind != 'r' && kind != 'a' && kind != 'b') return false;
  char* end = nullptr;
  const unsigned long long i = std::strtoull(name.c_str() + 1, &end, 10);
  if (end != name.c_str() + name.size()) return false;
  index = static_cast<std::size_t>(i);
  return true;
}

// fsync the directory holding `path` so a rename survives power loss.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

std::string encode_journal_record(const std::string& key,
                                  const CachedSolution& entry,
                                  std::uint64_t seq) {
  PERFORMA_EXPECTS(entry.solution != nullptr,
                   "encode_journal_record: empty entry");
  const qbd::QbdSolution& sol = *entry.solution;
  const std::size_t dim = sol.phase_dim();

  runner::CheckpointPoint point;
  point.index = static_cast<std::size_t>(seq);
  point.id = key;
  point.outcome = runner::Outcome::kOk;
  point.attempts = 1;
  point.metrics.reserve(5 + dim * dim + 2 * dim);
  point.metrics.emplace_back("m", static_cast<double>(dim));
  point.metrics.emplace_back("nu", entry.nu_bar);
  point.metrics.emplace_back("av", entry.availability);
  point.metrics.emplace_back("u", entry.utilization);
  point.metrics.emplace_back("lam", entry.lambda);
  const auto indexed = [](char kind, std::size_t i) {
    std::string name(1, kind);
    name += std::to_string(i);
    return name;
  };
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      point.metrics.emplace_back(indexed('r', i * dim + j), sol.r()(i, j));
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    point.metrics.emplace_back(indexed('a', i), sol.pi0()[i]);
  }
  for (std::size_t i = 0; i < dim; ++i) {
    point.metrics.emplace_back(indexed('b', i), sol.pi1()[i]);
  }
  return runner::encode_point(point);
}

bool decode_journal_record(const std::string& line, std::string& key,
                           CachedSolution& entry) {
  runner::CheckpointPoint point;
  if (!runner::decode_point(line, point)) return false;
  if (point.outcome != runner::Outcome::kOk) return false;

  // One pass over the metric pairs: scalars by name, matrix/vector
  // entries by parsed index (metric(name) lookups would be quadratic
  // in the phase dimension).
  double dim_value = -1.0;
  CachedSolution out;
  std::vector<std::pair<std::size_t, double>> r_entries, pi0_entries,
      pi1_entries;
  for (const auto& [name, value] : point.metrics) {
    char kind = 0;
    std::size_t index = 0;
    if (parse_indexed(name, kind, index)) {
      if (kind == 'r') r_entries.emplace_back(index, value);
      else if (kind == 'a') pi0_entries.emplace_back(index, value);
      else pi1_entries.emplace_back(index, value);
    } else if (name == "m") {
      dim_value = value;
    } else if (name == "nu") {
      out.nu_bar = value;
    } else if (name == "av") {
      out.availability = value;
    } else if (name == "u") {
      out.utilization = value;
    } else if (name == "lam") {
      out.lambda = value;
    } else {
      return false;  // unknown field: a future format, not this one
    }
  }
  if (dim_value < 1.0 || dim_value != static_cast<double>(
                             static_cast<std::size_t>(dim_value))) {
    return false;
  }
  const std::size_t dim = static_cast<std::size_t>(dim_value);
  if (r_entries.size() != dim * dim || pi0_entries.size() != dim ||
      pi1_entries.size() != dim) {
    return false;
  }

  linalg::Matrix r(dim, dim, 0.0);
  linalg::Vector pi0(dim, 0.0), pi1(dim, 0.0);
  std::vector<bool> seen_r(dim * dim, false), seen_a(dim, false),
      seen_b(dim, false);
  for (const auto& [index, value] : r_entries) {
    if (index >= dim * dim || seen_r[index]) return false;
    seen_r[index] = true;
    r(index / dim, index % dim) = value;
  }
  for (const auto& [index, value] : pi0_entries) {
    if (index >= dim || seen_a[index]) return false;
    seen_a[index] = true;
    pi0[index] = value;
  }
  for (const auto& [index, value] : pi1_entries) {
    if (index >= dim || seen_b[index]) return false;
    seen_b[index] = true;
    pi1[index] = value;
  }

  try {
    out.solution = std::make_shared<qbd::QbdSolution>(
        std::move(r), std::move(pi0), std::move(pi1));
  } catch (const std::exception&) {
    return false;  // well-formed record, numerically nonsensical triple
  }
  key = point.id;
  entry = std::move(out);
  return true;
}

CacheJournal::CacheJournal(std::string path, bool sync)
    : path_(std::move(path)), sync_(sync) {
  PERFORMA_EXPECTS(!path_.empty(), "CacheJournal: empty path");
  // Validate an existing header before blindly appending to the file.
  if (std::FILE* existing = std::fopen(path_.c_str(), "r")) {
    char line[256];
    const bool got = std::fgets(line, sizeof line, existing) != nullptr;
    std::fclose(existing);
    if (got) {
      std::string have = line;
      while (!have.empty() && (have.back() == '\n' || have.back() == '\r')) {
        have.pop_back();
      }
      int version = 0;
      PERFORMA_EXPECTS(
          parse_header(have, version) && version >= 1 &&
              version <= kJournalVersion,
          "CacheJournal: '" + path_ + "' exists but is not a performad "
          "cache journal (header '" + have + "')");
    }
  }
  open_for_append();
}

CacheJournal::~CacheJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CacheJournal::open_for_append() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0) {
    throw NumericalError("CacheJournal: cannot open '" + path_ + "': " +
                         std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    const std::string header = header_line() + "\n";
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      throw NumericalError("CacheJournal: cannot write header to '" + path_ +
                           "'");
    }
    if (sync_) ::fsync(fd_);
  }
}

void CacheJournal::append(const std::string& key,
                          const CachedSolution& entry) {
  const std::string record = encode_journal_record(key, entry, seq_) + "\n";
  // One write(2) for the whole record: O_APPEND writes are atomic with
  // respect to SIGKILL (the kernel has all the bytes or none), so the
  // journal cannot hold a torn record from a process kill -- only a
  // short write (ENOSPC) can truncate one, and the CRC drops it at load.
  const ssize_t n = ::write(fd_, record.data(), record.size());
  if (n != static_cast<ssize_t>(record.size())) {
    throw NumericalError("CacheJournal: short write to '" + path_ + "': " +
                         std::strerror(errno));
  }
  if (sync_ && ::fsync(fd_) != 0) {
    throw NumericalError("CacheJournal: fsync failed on '" + path_ + "'");
  }
  ++seq_;

  static obs::Counter& records = obs::counter("daemon.journal.records");
  static obs::Counter& bytes = obs::counter("daemon.journal.bytes");
  records.add(1);
  bytes.add(record.size());
}

void CacheJournal::compact(
    const std::vector<std::pair<std::string, CachedSolution>>& entries) {
  const std::string tmp = path_ + ".tmp";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    throw NumericalError("CacheJournal: cannot create '" + tmp + "'");
  }
  std::string out = header_line() + "\n";
  std::uint64_t seq = 0;
  for (const auto& [key, entry] : entries) {
    out += encode_journal_record(key, entry, seq++);
    out += '\n';
  }
  const bool ok =
      ::write(tfd, out.data(), out.size()) == static_cast<ssize_t>(out.size()) &&
      ::fsync(tfd) == 0;
  ::close(tfd);
  if (!ok) {
    ::unlink(tmp.c_str());
    throw NumericalError("CacheJournal: cannot write '" + tmp + "'");
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw NumericalError("CacheJournal: rename to '" + path_ + "' failed");
  }
  sync_parent_dir(path_);
  if (fd_ >= 0) ::close(fd_);
  open_for_append();
  static obs::Counter& compactions = obs::counter("daemon.journal.compactions");
  compactions.add(1);
}

JournalLoad load_journal(const std::string& path) {
  JournalLoad load;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return load;  // first boot: nothing to recover

  std::string line;
  char buf[4096];
  bool saw_header = false;
  // key -> position in load.entries, for later-records-win.
  std::unordered_map<std::string, std::size_t> by_key;
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    line += buf;
    if ((line.empty() || line.back() != '\n') && !std::feof(f)) {
      continue;  // long record, keep reading
    }
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (!saw_header) {
      int version = 0;
      if (!parse_header(line, version) || version < 1 ||
          version > kJournalVersion) {
        std::fclose(f);
        throw InvalidArgument("load_journal: '" + path + "' is not a v1.." +
                              std::to_string(kJournalVersion) +
                              " performad cache journal (header '" + line +
                              "')");
      }
      saw_header = true;
    } else if (!line.empty()) {
      std::string key;
      CachedSolution entry;
      if (decode_journal_record(line, key, entry)) {
        ++load.records;
        auto it = by_key.find(key);
        if (it != by_key.end()) {
          load.entries[it->second].second = std::move(entry);  // later wins
        } else {
          by_key.emplace(key, load.entries.size());
          load.entries.emplace_back(std::move(key), std::move(entry));
        }
      } else {
        ++load.dropped_records;
      }
    }
    line.clear();
  }
  std::fclose(f);
  if (!saw_header && load.records == 0) {
    // Zero-length file (daemon killed between create and header write):
    // treat as first boot rather than corruption.
    return load;
  }
  return load;
}

}  // namespace performa::daemon
