#include "daemon/query.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include <optional>

#include "core/blowup.h"
#include "core/cluster_model.h"
#include "core/qos.h"
#include "linalg/errors.h"
#include "medist/tpt.h"
#include "obs/deadline.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qbd/solve_report.h"

namespace performa::daemon {

namespace {

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Histogram& solve_latency() {
  static obs::Histogram& h = obs::histogram("daemon.solve.seconds");
  return h;
}

/// Uniform error response; carries the thread's active query id.
std::string error_response(const std::string& id, const std::string& op,
                           const std::string& outcome,
                           const std::string& message) {
  JsonWriter w;
  if (!id.empty()) w.field("id", id);
  if (!op.empty()) w.field("op", op);
  if (!obs::current_query_id().empty()) {
    w.field("qid", obs::current_query_id());
  }
  w.field("ok", false);
  w.field("outcome", outcome);
  w.field("error", message);
  return std::move(w).str();
}

/// Compact residual trail for the slow-query log: one token per
/// fallback-chain attempt, `algorithm:iterations:defect` with the
/// winner starred -- the per-tier evidence the paper's near-blow-up
/// pathologies show up in first.
std::string solver_trail(const qbd::SolveReport& report) {
  std::string out;
  char buf[96];
  for (const qbd::SolveAttempt& a : report.attempts) {
    const bool won = a.converged && a.algorithm == report.winner;
    std::snprintf(buf, sizeof buf, "%s%s%s:%uit:%.3e", out.empty() ? "" : " ",
                  won ? "*" : "", qbd::to_string(a.algorithm), a.iterations,
                  a.defect);
    out += buf;
  }
  return out;
}

bool require_number(const JsonObject& request, const std::string& key,
                    double& out, std::string& error) {
  const JsonValue* v = request.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    error = "missing or non-numeric field '" + key + "'";
    return false;
  }
  out = v->number;
  return true;
}

bool get_unsigned(const JsonObject& request, const std::string& key,
                  unsigned& out, std::string& error) {
  const JsonValue* v = request.find(key);
  if (v == nullptr) return true;  // keep default
  if (v->kind != JsonValue::Kind::kNumber || v->number < 0.0 ||
      v->number != std::floor(v->number) || v->number > 1e9) {
    error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  out = static_cast<unsigned>(v->number);
  return true;
}

bool get_double(const JsonObject& request, const std::string& key, double& out,
                std::string& error) {
  const JsonValue* v = request.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kNumber) {
    error = "field '" + key + "' must be a number";
    return false;
  }
  out = v->number;
  return true;
}

core::ClusterParams cluster_params(const ModelSpec& spec) {
  core::ClusterParams params;
  params.n_servers = spec.n_servers;
  params.nu_p = spec.nu_p;
  params.delta = spec.delta;
  params.up = medist::exponential_from_mean(spec.mttf);
  if (spec.repair == "exp") {
    params.down = medist::exponential_from_mean(spec.mttr);
  } else if (spec.repair == "erlang") {
    params.down = medist::erlang_dist(spec.erlang_k, spec.mttr);
  } else {
    medist::TptSpec tpt;
    tpt.phases = spec.tpt_phases;
    tpt.alpha = spec.tpt_alpha;
    tpt.theta = spec.tpt_theta;
    tpt.mean = spec.mttr;
    params.down = medist::make_tpt(tpt);
  }
  return params;
}

core::BlowupParams blowup_params(const ModelSpec& spec) {
  core::BlowupParams p;
  p.n_servers = spec.n_servers;
  p.nu_p = spec.nu_p;
  p.delta = spec.delta;
  p.availability = spec.availability();
  return p;
}

}  // namespace

double ModelSpec::mean_service_rate() const noexcept {
  const double a = availability();
  return n_servers * nu_p * (a + delta * (1.0 - a));
}

bool parse_model(const JsonObject& request, ModelSpec& spec,
                 std::string& error) {
  ModelSpec s;
  if (!get_unsigned(request, "n", s.n_servers, error)) return false;
  if (!get_double(request, "nu_p", s.nu_p, error)) return false;
  if (!get_double(request, "delta", s.delta, error)) return false;
  if (!get_double(request, "mttf", s.mttf, error)) return false;
  if (!get_double(request, "mttr", s.mttr, error)) return false;
  if (!get_unsigned(request, "tpt_phases", s.tpt_phases, error)) return false;
  if (!get_double(request, "tpt_alpha", s.tpt_alpha, error)) return false;
  if (!get_double(request, "tpt_theta", s.tpt_theta, error)) return false;
  if (!get_unsigned(request, "erlang_k", s.erlang_k, error)) return false;
  if (!get_double(request, "rho", s.rho, error)) return false;
  if (const JsonValue* v = request.find("repair")) {
    if (v->kind != JsonValue::Kind::kString) {
      error = "field 'repair' must be a string";
      return false;
    }
    s.repair = v->string;
  }

  if (s.n_servers < 1 || s.n_servers > 64) {
    error = "n must be in 1..64";
    return false;
  }
  if (!(s.nu_p > 0.0) || !std::isfinite(s.nu_p)) {
    error = "nu_p must be positive";
    return false;
  }
  if (!(s.delta >= 0.0 && s.delta <= 1.0)) {
    error = "delta must be in [0,1]";
    return false;
  }
  if (!(s.mttf > 0.0) || !std::isfinite(s.mttf)) {
    error = "mttf must be positive";
    return false;
  }
  if (!(s.mttr > 0.0) || !std::isfinite(s.mttr)) {
    error = "mttr must be positive";
    return false;
  }
  if (s.repair != "exp" && s.repair != "erlang" && s.repair != "tpt") {
    error = "repair must be one of exp|erlang|tpt, got '" + s.repair + "'";
    return false;
  }
  if (s.repair == "tpt") {
    if (s.tpt_phases < 1 || s.tpt_phases > 64) {
      error = "tpt_phases must be in 1..64";
      return false;
    }
    if (!(s.tpt_alpha > 1.0) || !std::isfinite(s.tpt_alpha)) {
      error = "tpt_alpha must be > 1";
      return false;
    }
    if (!(s.tpt_theta > 0.0 && s.tpt_theta < 1.0)) {
      error = "tpt_theta must be in (0,1)";
      return false;
    }
  }
  if (s.repair == "erlang" && (s.erlang_k < 1 || s.erlang_k > 64)) {
    error = "erlang_k must be in 1..64";
    return false;
  }
  if (!(s.rho > 0.0 && s.rho < 1.0)) {
    error = "rho must be in (0,1)";
    return false;
  }
  spec = s;
  return true;
}

std::string canonical_model_key(const ModelSpec& spec) {
  std::string key = "n=" + std::to_string(spec.n_servers);
  key += ";nu_p=" + hex_double(spec.nu_p);
  key += ";delta=" + hex_double(spec.delta);
  key += ";mttf=" + hex_double(spec.mttf);
  key += ";repair=" + spec.repair;
  key += ";mttr=" + hex_double(spec.mttr);
  if (spec.repair == "tpt") {
    key += ";T=" + std::to_string(spec.tpt_phases);
    key += ";alpha=" + hex_double(spec.tpt_alpha);
    key += ";theta=" + hex_double(spec.tpt_theta);
  } else if (spec.repair == "erlang") {
    key += ";k=" + std::to_string(spec.erlang_k);
  }
  key += ";rho=" + hex_double(spec.rho);
  return key;
}

QueryEngine::QueryEngine(EngineConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_budget_bytes),
      slow_query_seconds_(config_.slow_query_seconds) {
  if (!config_.journal_path.empty()) {
    journal_ = std::make_unique<CacheJournal>(config_.journal_path,
                                              config_.sync_journal);
  }
}

JournalLoad QueryEngine::rehydrate() {
  PERFORMA_SPAN("daemon.rehydrate");
  JournalLoad load;
  if (config_.journal_path.empty()) return load;
  load = load_journal(config_.journal_path);
  // Insert oldest-first so journal order becomes LRU order (the last
  // journal entry ends up most recently used). Entries are copied --
  // the shared_ptr is cheap -- so the returned load stays inspectable.
  for (const auto& [key, entry] : load.entries) {
    cache_.put(key, entry);
  }
  static obs::Counter& recovered = obs::counter("daemon.journal.recovered");
  static obs::Counter& dropped = obs::counter("daemon.journal.dropped");
  recovered.add(load.entries.size());
  dropped.add(load.dropped_records);
  return load;
}

std::string QueryEngine::handle_line(const std::string& line) {
  JsonObject request;
  std::string parse_error;
  if (!parse_json_object(line, request, parse_error)) {
    return error_response("", "", "parse-error", parse_error);
  }
  return handle(request);
}

std::string QueryEngine::handle(const JsonObject& request) {
  const std::string id = request.string("id", "");
  const std::string op = request.string("op", "");

  // The daemon mints a query id at admission and installs the scope in
  // its worker; a bare engine (tests, future embedders) mints its own
  // here so every reply still carries one.
  std::optional<obs::QueryIdScope> local_scope;
  if (obs::current_query_id().empty()) {
    local_scope.emplace(obs::mint_query_id());
  }
  const std::string qid = obs::current_query_id();

  if (op == "ping") {
    JsonWriter w;
    if (!id.empty()) w.field("id", id);
    w.field("op", op);
    w.field("qid", qid);
    w.field("ok", true);
    w.field("outcome", "ok");
    return std::move(w).str();
  }

  if (op == "stats") {
    const CacheStats cs = cache_.stats();
    const EngineStats es = stats();
    JsonWriter w;
    if (!id.empty()) w.field("id", id);
    w.field("op", op);
    w.field("qid", qid);
    w.field("ok", true);
    w.field("outcome", "ok");
    w.field("cache_entries", static_cast<std::uint64_t>(cs.entries));
    w.field("cache_bytes", static_cast<std::uint64_t>(cs.bytes));
    w.field("cache_budget_bytes",
            static_cast<std::uint64_t>(cs.budget_bytes));
    w.field("cache_hits", cs.hits);
    w.field("cache_misses", cs.misses);
    w.field("cache_evictions", cs.evictions);
    w.field("stale_serves", cs.stale_serves);
    w.field("solves", es.solves);
    w.field("solve_failures", es.solve_failures);
    w.field("deadline_exceeded", es.deadline_exceeded);
    w.field("rejected", es.rejected);
    return std::move(w).str();
  }

  if (op == "debug-sleep") {
    if (!config_.debug_ops) {
      return error_response(id, op, "unknown-op",
                            "debug ops are disabled (start with --debug-ops)");
    }
    double seconds = 0.0;
    std::string field_error;
    if (!require_number(request, "seconds", seconds, field_error) ||
        seconds < 0.0 || seconds > 600.0) {
      return error_response(id, op, "invalid-argument",
                            field_error.empty() ? "seconds out of range"
                                                : field_error);
    }
    const bool ignore_cancel = request.boolean("ignore_cancel", false);
    const double until = now_seconds() + seconds;
    while (now_seconds() < until) {
      if (!ignore_cancel && obs::deadline_expired()) {
        return error_response(id, op, "deadline-exceeded",
                              "debug-sleep cancelled");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    JsonWriter w;
    if (!id.empty()) w.field("id", id);
    w.field("op", op);
    w.field("qid", qid);
    w.field("ok", true);
    w.field("outcome", "ok");
    w.field("slept_s", seconds);
    return std::move(w).str();
  }

  const bool is_model_op = op == "solve" || op == "mean" || op == "tail" ||
                           op == "pmf" || op == "qos" ||
                           op == "availability" || op == "blowup";
  if (!is_model_op) {
    return error_response(id, op, "unknown-op",
                          "unknown op '" + op +
                              "' (expected ping|stats|solve|mean|tail|pmf|"
                              "qos|availability|blowup)");
  }

  ModelSpec spec;
  std::string model_error;
  if (!parse_model(request, spec, model_error)) {
    return error_response(id, op, "invalid-argument", model_error);
  }

  // Parameter-only ops: answered from the spec, no solve, no cache.
  if (op == "availability" || op == "blowup") {
    JsonWriter w;
    if (!id.empty()) w.field("id", id);
    w.field("op", op);
    w.field("qid", qid);
    w.field("ok", true);
    w.field("outcome", "ok");
    w.field("availability", spec.availability());
    w.field("nu_bar", spec.mean_service_rate());
    if (op == "blowup") {
      try {
        const core::BlowupParams bp = blowup_params(spec);
        w.field("region",
                static_cast<std::uint64_t>(core::blowup_region(bp, spec.rho)));
        w.field_array("blowup_utilizations",
                      core::blowup_utilizations(bp));
        const double lambda = spec.rho * spec.mean_service_rate();
        w.field("has_blowup", core::has_blowup(bp, lambda));
        if (spec.repair == "tpt") {
          const unsigned region = core::blowup_region(bp, spec.rho);
          if (region >= 1) {
            w.field("tail_exponent",
                    core::tail_exponent(region, spec.tpt_alpha));
          }
        }
      } catch (const InvalidArgument& e) {
        return error_response(id, op, "invalid-argument", e.what());
      }
    }
    return std::move(w).str();
  }

  // Solution ops: serve from cache, solving (and journaling) on miss.
  const std::string key = canonical_model_key(spec);
  const bool refresh = request.boolean("refresh", false);

  CachedSolution entry;
  bool cached = cache_.get(key, entry, /*count_stats=*/!refresh);
  bool stale = false;
  std::string degrade_outcome;
  std::string degrade_message;
  double solve_seconds = -1.0;
  std::optional<qbd::SolveReport> failure_report;

  // Threshold-based slow-query log: a fresh solve that took at least
  // slow_query_seconds (or blew its deadline) leaves one structured
  // record carrying the per-tier solver trail, trust verdict and cache
  // disposition, joined to the wire reply by the qid.
  const auto maybe_log_slow = [&](const char* disposition) {
    const double threshold =
        slow_query_seconds_.load(std::memory_order_relaxed);
    if (threshold <= 0.0) return;
    const bool deadline_blown = degrade_outcome == "deadline-exceeded";
    if (!deadline_blown && !(solve_seconds >= threshold)) return;
    const qbd::SolveReport* rep =
        failure_report              ? &*failure_report
        : (cached && entry.solution) ? &entry.solution->report()
                                     : nullptr;
    std::string trust_text = "unknown";
    if (cached && entry.solution) {
      const qbd::TrustReport& tr = entry.solution->trust();
      trust_text =
          tr.verified ? std::string(qbd::to_string(tr.verdict)) : "unverified";
    }
    PERFORMA_LOG(kWarn, "daemon.slow_query")
        .kv("op", op)
        .kv("key", key)
        .kv("solve_s", solve_seconds < 0.0 ? 0.0 : solve_seconds)
        .kv("threshold_s", threshold)
        .kv("outcome",
            degrade_outcome.empty() ? std::string("ok") : degrade_outcome)
        .kv("disposition", disposition)
        .kv("trust", trust_text)
        .kv("solver", rep ? rep->summary() : std::string("no-report"))
        .kv("trail", rep ? solver_trail(*rep) : std::string());
  };

  if (!cached || refresh) {
    try {
      const double t0 = now_seconds();
      entry = solve_and_store(spec, key);
      solve_seconds = now_seconds() - t0;
      cached = true;
    } catch (const qbd::DeadlineExceeded& e) {
      degrade_outcome = "deadline-exceeded";
      degrade_message = e.what();
      failure_report = e.report();
    } catch (const DeadlineError& e) {
      degrade_outcome = "deadline-exceeded";
      degrade_message = e.what();
    } catch (const InvalidArgument& e) {
      return error_response(id, op, "invalid-argument", e.what());
    } catch (const qbd::TrustRejected& e) {
      // The answer exists but failed verification: it was never cached
      // or journaled (solve_and_store throws before either), and the
      // wire carries the explicit outcome. The compact trust summary
      // travels instead of the multi-line evidence.
      degrade_outcome = "rejected-answer";
      degrade_message = e.trust().summary();
    } catch (const qbd::SolverFailure& e) {
      degrade_outcome = "solver-failure";
      degrade_message = e.what();
      failure_report = e.report();
    } catch (const NumericalError& e) {
      degrade_outcome = "solver-failure";
      degrade_message = e.what();
    }
    if (!degrade_outcome.empty()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        if (degrade_outcome == "deadline-exceeded") {
          ++stats_.deadline_exceeded;
        } else if (degrade_outcome == "rejected-answer") {
          ++stats_.rejected;
        } else {
          ++stats_.solve_failures;
        }
      }
      // Graceful degradation: fall back to the last known-good answer.
      CachedSolution fallback;
      if (cache_.get(key, fallback, /*count_stats=*/false)) {
        entry = std::move(fallback);
        cached = true;
        stale = true;
        cache_.note_stale_serve();
        maybe_log_slow("stale-fallback");
      } else {
        maybe_log_slow("error");
        return error_response(id, op, degrade_outcome, degrade_message);
      }
    } else if (solve_seconds >= 0.0) {
      maybe_log_slow("solved");
    }
  }

  // Evaluate the query against the (possibly stale) solution. Metric
  // sweeps poll the deadline too; past this point a deadline hit on a
  // *served* solution is a plain error (there is nothing staler left).
  try {
    const qbd::QbdSolution& sol = *entry.solution;
    JsonWriter w;
    if (!id.empty()) w.field("id", id);
    w.field("op", op);
    w.field("qid", qid);
    w.field("ok", true);
    w.field("outcome", stale ? degrade_outcome : std::string("ok"));
    w.field("stale", stale);
    if (stale) w.field("error", degrade_message);
    w.field("cached", solve_seconds < 0.0);
    if (solve_seconds >= 0.0) w.field("solve_ms", solve_seconds * 1e3);
    w.field("rho", spec.rho);
    w.field("nu_bar", entry.nu_bar);
    w.field("availability", entry.availability);
    w.field("lambda", entry.lambda);
    w.field("phase_dim", static_cast<std::uint64_t>(sol.phase_dim()));
    // Every served answer carries its trust verdict; anything short of
    // certified also carries the worst-check evidence so a caller can
    // decide whether the answer is good enough for its purpose.
    const qbd::TrustReport& trust = sol.trust();
    w.field("trust", trust.verified ? qbd::to_string(trust.verdict)
                                    : "unverified");
    if (!trust.verified || trust.verdict != qbd::TrustVerdict::kCertified) {
      w.field("trust_detail", trust.summary());
    }

    if (op == "solve") {
      w.field("mean_queue_length", sol.mean_queue_length());
      w.field("decay_rate", sol.decay_rate());
    } else if (op == "mean") {
      const double mql = sol.mean_queue_length();
      w.field("value", mql);
      w.field("normalized", mql / (spec.rho / (1.0 - spec.rho)));
      w.field("variance", sol.variance());
    } else if (op == "tail" || op == "pmf") {
      double k_value = 0.0;
      std::string field_error;
      if (!require_number(request, "k", k_value, field_error) ||
          k_value < 0.0 || k_value != std::floor(k_value) ||
          k_value > 1e8) {
        return error_response(id, op, "invalid-argument",
                              field_error.empty()
                                  ? "k must be a non-negative integer <= 1e8"
                                  : field_error);
      }
      const std::size_t k = static_cast<std::size_t>(k_value);
      w.field("k", static_cast<std::uint64_t>(k));
      w.field("value", op == "tail" ? sol.tail(k) : sol.pmf(k));
      if (op == "tail") w.field("decay_rate", sol.decay_rate());
    } else if (op == "qos") {
      double deadline = 0.0;
      std::string field_error;
      if (!require_number(request, "d", deadline, field_error) ||
          !(deadline > 0.0)) {
        return error_response(
            id, op, "invalid-argument",
            field_error.empty() ? "d must be a positive deadline"
                                : field_error);
      }
      const double violation =
          core::delay_violation_probability(sol, deadline, entry.nu_bar);
      w.field("d", deadline);
      w.field("value", violation);
      w.field("success", 1.0 - violation);
      double eps = 0.0;
      if (get_double(request, "eps", eps, field_error) && eps > 0.0 &&
          eps < 1.0) {
        w.field("min_deadline",
                core::min_deadline_for(sol, eps, entry.nu_bar));
      }
    }
    return std::move(w).str();
  } catch (const DeadlineError& e) {
    return error_response(id, op, "deadline-exceeded", e.what());
  } catch (const NumericalError& e) {
    return error_response(id, op, "solver-failure", e.what());
  }
}

CachedSolution QueryEngine::solve_and_store(const ModelSpec& spec,
                                            const std::string& key) {
  PERFORMA_SPAN("daemon.solve");
  const double t0 = now_seconds();
  const core::ClusterModel model(cluster_params(spec));
  const double lambda = model.lambda_for_rho(spec.rho);
  qbd::SolverOptions opts;
  opts.trust = config_.trust;
  qbd::QbdSolution solution = model.solve(lambda, opts);
  solve_latency().record(now_seconds() - t0);

  CachedSolution entry;
  entry.solution =
      std::make_shared<qbd::QbdSolution>(std::move(solution));
  entry.nu_bar = model.mean_service_rate();
  entry.availability = model.availability();
  entry.utilization = spec.rho;
  entry.lambda = lambda;

  cache_.put(key, entry);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.solves;
  }
  if (journal_) {
    std::lock_guard<std::mutex> lock(journal_mutex_);
    journal_->append(key, entry);
  }
  return entry;
}

void QueryEngine::compact_journal() {
  if (!journal_) return;
  std::lock_guard<std::mutex> lock(journal_mutex_);
  journal_->compact(cache_.snapshot());
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void QueryEngine::set_cache_budget(std::size_t bytes) {
  cache_.set_budget_bytes(bytes);
}

void QueryEngine::set_slow_query_seconds(double seconds) {
  slow_query_seconds_.store(seconds, std::memory_order_relaxed);
}

}  // namespace performa::daemon
