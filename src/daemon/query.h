// performad's query engine: request -> (cached) solution -> answer.
//
// The engine is the transport-independent core of the daemon. It owns
// the solution cache and its journal; the socket server hands it one
// parsed request at a time (with a cooperative obs::DeadlineScope
// already installed on the calling thread) and gets back exactly one
// JSON response line.
//
// Degradation contract: a request whose solve blows its deadline or
// fails numerically is answered from the last known-good cached
// solution for the same model when one exists -- tagged `stale: true`
// with the failure's outcome -- and only becomes an error response when
// the cache has nothing to fall back to. Invalid requests never fall
// back (a bad model spec has no meaningful stale answer).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "daemon/cache.h"
#include "daemon/journal.h"
#include "daemon/jsonio.h"
#include "qbd/trust.h"

namespace performa::daemon {

/// The model parameters a request may carry, with the paper's running
/// example as defaults (2 nodes, nu_p = 2, delta = 0.2, exponential
/// MTTF 90, repair MTTR 10).
struct ModelSpec {
  unsigned n_servers = 2;
  double nu_p = 2.0;
  double delta = 0.2;
  double mttf = 90.0;
  std::string repair = "exp";  ///< "exp" | "erlang" | "tpt"
  double mttr = 10.0;
  unsigned tpt_phases = 10;
  double tpt_alpha = 1.4;
  double tpt_theta = 0.5;
  unsigned erlang_k = 2;
  double rho = 0.7;  ///< utilization the model is solved at

  /// Per-node steady-state availability MTTF / (MTTF + MTTR).
  double availability() const noexcept { return mttf / (mttf + mttr); }
  /// nu_bar = N nu_p (A + delta (1 - A)).
  double mean_service_rate() const noexcept;
};

/// Fill `spec` from a request's fields; false + message on out-of-range
/// or unknown values. Absent fields keep their defaults.
bool parse_model(const JsonObject& request, ModelSpec& spec,
                 std::string& error);

/// Canonical cache key: every parameter that influences the solution,
/// ';'-separated, doubles as hex-floats so two specs share a key iff
/// they are bit-identical. Erlang/TPT shape fields only appear for the
/// repair kinds that use them (an exp spec's key is insensitive to
/// leftover tpt_* fields in the request).
std::string canonical_model_key(const ModelSpec& spec);

struct EngineConfig {
  std::size_t cache_budget_bytes = std::size_t{64} << 20;
  std::string journal_path;  ///< empty disables persistence
  bool sync_journal = true;  ///< fsync per journal append (crash-only default)
  bool debug_ops = false;    ///< enable the "debug-sleep" test op
  /// A model op whose fresh solve takes at least this long (or blows
  /// its deadline) emits a structured `daemon.slow_query` log record
  /// with the full solver trail. <= 0 disables the slow-query log.
  double slow_query_seconds = 1.0;
  /// Verification thresholds applied to every solve. A solve whose
  /// answer is rejected is answered with outcome "rejected-answer" and
  /// is never cached or journaled (the throw happens before either).
  qbd::TrustPolicy trust;
};

/// Statistics the server's "stats" op reports alongside cache counters.
struct EngineStats {
  std::uint64_t solves = 0;
  std::uint64_t solve_failures = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t rejected = 0;  ///< answers refused by verification
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineConfig config);

  /// Load the journal (when configured) into the cache. Returns the
  /// load summary; corrupt records are dropped, not fatal.
  JournalLoad rehydrate();

  /// Handle one raw request line; always returns one JSON object (no
  /// trailing newline), even for unparseable input.
  std::string handle_line(const std::string& line);

  /// Handle a parsed request. The caller's thread-local DeadlineScope
  /// (if any) bounds all solver work.
  std::string handle(const JsonObject& request);

  /// Rewrite the journal from the current cache snapshot.
  void compact_journal();

  SolutionCache& cache() noexcept { return cache_; }
  const EngineConfig& config() const noexcept { return config_; }
  EngineStats stats() const;

  /// SIGHUP reload: apply a new cache budget.
  void set_cache_budget(std::size_t bytes);

  /// SIGHUP reload: apply a new slow-query threshold (<= 0 disables).
  void set_slow_query_seconds(double seconds);

 private:
  /// Build and solve the model (throws DeadlineExceeded /
  /// NumericalError / InvalidArgument), cache + journal the result.
  CachedSolution solve_and_store(const ModelSpec& spec,
                                 const std::string& key);

  EngineConfig config_;
  SolutionCache cache_;
  std::unique_ptr<CacheJournal> journal_;
  std::mutex journal_mutex_;
  mutable std::mutex stats_mutex_;
  EngineStats stats_;
  /// Reloadable copy of config_.slow_query_seconds (workers read it
  /// while SIGHUP writes it).
  std::atomic<double> slow_query_seconds_;
};

}  // namespace performa::daemon
