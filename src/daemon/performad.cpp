// performad: the crash-only performability query daemon.
//
// Loads and solves cluster models on demand, memoizes the solutions
// under a byte budget, journals every solve so a SIGKILLed daemon
// restarts warm, and answers newline-delimited JSON queries over a
// Unix socket (optionally loopback TCP).
//
//   performad --socket /tmp/performad.sock --journal /var/lib/performad.journal
//   echo '{"op":"mean","repair":"tpt","rho":0.7}' | performa-query
//
// Signals: SIGTERM/SIGINT drain and exit 0; SIGHUP reloads --config;
// SIGKILL is *safe* -- that is the point -- the journal rehydrates the
// cache on the next start.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "daemon/server.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [options]\n"
      "\n"
      "  --socket PATH        Unix socket to listen on (required)\n"
      "  --tcp-port N         also listen on 127.0.0.1:N (default: off)\n"
      "  --workers N          solve worker threads (default 2)\n"
      "  --queue-capacity N   admission queue bound (default 64)\n"
      "  --cache-budget-mb N  solution cache budget in MiB (default 64)\n"
      "  --journal PATH       append-only cache journal (default: none)\n"
      "  --no-sync            skip fsync per journal append (faster,\n"
      "                       loses power-loss durability; SIGKILL is\n"
      "                       still safe either way)\n"
      "  --default-deadline-ms N  deadline for requests without one\n"
      "                           (default 30000)\n"
      "  --max-deadline-ms N      cap on client deadlines (default 300000)\n"
      "  --watchdog-grace-ms N    escalation step past a blown deadline\n"
      "                           (default 2000)\n"
      "  --config PATH        key=value file re-read on SIGHUP\n"
      "  --debug-ops          enable the debug-sleep test op\n"
      "  --slow-query-ms N    log `daemon.slow_query` for solves at\n"
      "                       least this slow (default 1000; 0 disables)\n"
      "  --flight PREFIX      crash flight recorder: keep the last ring\n"
      "                       of log/span events in PREFIX.flight.<pid>\n"
      "                       (mmap'd; survives SIGKILL, removed on a\n"
      "                       clean exit)\n"
      "\n"
      "Telemetry env: PERFORMA_LOG (NDJSON log path), PERFORMA_LOG_LEVEL,\n"
      "PERFORMA_FLIGHT (like --flight), PERFORMA_TRACE, PERFORMA_METRICS.\n"
      "GET /metrics on the TCP or Unix listener answers a Prometheus\n"
      "text-format scrape.\n",
      argv0);
}

bool parse_number(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  performa::daemon::DaemonConfig config;
  config.engine.sync_journal = true;
  std::string flight_prefix;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    double value = 0.0;
    if (arg == "--socket" && has_value) {
      config.socket_path = argv[++i];
    } else if (arg == "--tcp-port" && has_value &&
               parse_number(argv[++i], value)) {
      config.tcp_port = static_cast<int>(value);
    } else if (arg == "--workers" && has_value &&
               parse_number(argv[++i], value)) {
      config.workers = static_cast<unsigned>(value);
    } else if (arg == "--queue-capacity" && has_value &&
               parse_number(argv[++i], value)) {
      config.queue_capacity = static_cast<std::size_t>(value);
    } else if (arg == "--cache-budget-mb" && has_value &&
               parse_number(argv[++i], value)) {
      config.engine.cache_budget_bytes =
          static_cast<std::size_t>(value * 1024.0 * 1024.0);
    } else if (arg == "--journal" && has_value) {
      config.engine.journal_path = argv[++i];
    } else if (arg == "--no-sync") {
      config.engine.sync_journal = false;
    } else if (arg == "--default-deadline-ms" && has_value &&
               parse_number(argv[++i], value)) {
      config.default_deadline_s = value / 1e3;
    } else if (arg == "--max-deadline-ms" && has_value &&
               parse_number(argv[++i], value)) {
      config.max_deadline_s = value / 1e3;
    } else if (arg == "--watchdog-grace-ms" && has_value &&
               parse_number(argv[++i], value)) {
      config.watchdog_grace_s = value / 1e3;
    } else if (arg == "--config" && has_value) {
      config.config_path = argv[++i];
    } else if (arg == "--debug-ops") {
      config.engine.debug_ops = true;
    } else if (arg == "--slow-query-ms" && has_value &&
               parse_number(argv[++i], value)) {
      config.engine.slow_query_seconds = value / 1e3;
    } else if (arg == "--flight" && has_value) {
      flight_prefix = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "performad: bad argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (config.socket_path.empty()) {
    std::fprintf(stderr, "performad: --socket is required\n");
    usage(argv[0]);
    return 2;
  }
  if (!config.config_path.empty()) {
    std::string error;
    if (!performa::daemon::parse_config_file(config.config_path, config,
                                             error)) {
      std::fprintf(stderr, "performad: %s\n", error.c_str());
      return 2;
    }
  }

  performa::obs::init_trace_from_env();
  performa::obs::init_metrics_from_env();
  performa::obs::init_log_from_env();
  if (!flight_prefix.empty()) {
    performa::obs::init_flight(flight_prefix);
  } else {
    performa::obs::init_flight_from_env();
  }

  try {
    performa::daemon::Server server(std::move(config));
    server.install_signal_handlers();
    PERFORMA_LOG(kInfo, "daemon.start")
        .kv("socket", server.config().socket_path)
        .kv("tcp_port", static_cast<std::int64_t>(server.config().tcp_port))
        .kv("workers",
            static_cast<std::uint64_t>(server.config().workers))
        .kv("slow_query_s", server.config().engine.slow_query_seconds)
        .kv("flight", performa::obs::flight_path());
    // The human-facing line stays: scripts (and humans) watch for it.
    std::fprintf(stderr, "performad: listening on %s\n",
                 server.config().socket_path.c_str());
    const int rc = server.run();
    performa::obs::write_metrics_if_configured();
    // A clean drain needs no post-mortem: remove the flight file so
    // only crashed/killed daemons leave one behind.
    performa::obs::disable_flight(/*keep_file=*/false);
    return rc;
  } catch (const std::exception& e) {
    PERFORMA_LOG(kError, "daemon.fatal").kv("error", e.what());
    std::fprintf(stderr, "performad: fatal: %s\n", e.what());
    performa::obs::disable_flight(/*keep_file=*/true);
    return 1;
  }
}
