#include "daemon/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <unordered_map>

#include "linalg/errors.h"
#include "obs/deadline.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace performa::daemon {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string simple_response(const std::string& id, const std::string& op,
                            const std::string& qid, bool ok,
                            const std::string& outcome,
                            const std::string& message = "") {
  JsonWriter w;
  if (!id.empty()) w.field("id", id);
  if (!op.empty()) w.field("op", op);
  if (!qid.empty()) w.field("qid", qid);
  w.field("ok", ok);
  w.field("outcome", outcome);
  if (!message.empty()) w.field("error", message);
  return std::move(w).str();
}

// Signal handlers route to one server instance per process.
std::atomic<Server*> g_signal_server{nullptr};

void on_terminate_signal(int) {
  if (Server* s = g_signal_server.load()) s->request_shutdown();
}

void on_hup_signal(int) {
  if (Server* s = g_signal_server.load()) s->request_reload();
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool parse_config_file(const std::string& path, DaemonConfig& config,
                       std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open config file '" + path + "'";
    return false;
  }
  DaemonConfig next = config;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = path + ":" + std::to_string(lineno) + ": expected key = value";
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    const bool numeric =
        !value.empty() && end == value.c_str() + value.size();
    if (!numeric) {
      error = path + ":" + std::to_string(lineno) + ": non-numeric value '" +
              value + "'";
      return false;
    }
    if (key == "cache_budget_bytes") {
      if (v < 0) {
        error = path + ":" + std::to_string(lineno) +
                ": cache_budget_bytes must be >= 0";
        return false;
      }
      next.engine.cache_budget_bytes = static_cast<std::size_t>(v);
    } else if (key == "default_deadline_s") {
      next.default_deadline_s = v;
    } else if (key == "max_deadline_s") {
      next.max_deadline_s = v;
    } else if (key == "watchdog_grace_s") {
      next.watchdog_grace_s = v;
    } else if (key == "slow_query_s") {
      next.engine.slow_query_seconds = v;
    } else {
      error = path + ":" + std::to_string(lineno) + ": unknown key '" + key +
              "' (the whole file is rejected; fix or remove the line)";
      return false;
    }
  }
  config = next;
  return true;
}

// ---------------------------------------------------------------------------

struct Server::Connection {
  int fd = -1;
  std::string buffer;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  void send_line(const std::string& line) { send_raw(line + '\n'); }

  void send_raw(const std::string& out) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!open.load()) return;
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        open.store(false);  // peer went away; IO loop reaps the fd
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }
};

struct Server::Request {
  std::shared_ptr<Connection> conn;
  JsonObject body;
  std::string id;
  std::string op;
  std::string qid;  ///< query id minted at admission
  obs::Deadline deadline;
  Clock::time_point enqueued_at{};
  /// Whoever flips this false->true owns the response (worker on
  /// normal completion, watchdog on abandonment) -- exactly one reply
  /// per request, no double-send race.
  std::atomic<bool> completed{false};
  /// Watchdog-only escalation state. remaining_seconds() clamps to 0
  /// once cancelled, so the stage-2 timer must run off the kick time,
  /// not off the (now clamped) deadline.
  bool watchdog_kicked = false;
  Clock::time_point kicked_at{};
};

struct Server::WorkerSlot {
  std::thread thread;
  std::atomic<bool> busy{false};
  std::atomic<bool> retired{false};
  std::mutex mutex;  // guards current/started_at
  std::shared_ptr<Request> current;
  Clock::time_point started_at{};
};

struct Server::Impl {
  // Listeners.
  int unix_fd = -1;
  int tcp_fd = -1;

  // Connections, owned by the IO thread.
  std::unordered_map<int, std::shared_ptr<Connection>> connections;

  // Admission queue.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::shared_ptr<Request>> queue;
  bool stop_workers = false;

  // Worker pool; grows when the watchdog replaces an abandoned worker.
  std::mutex slots_mutex;
  std::vector<std::unique_ptr<WorkerSlot>> slots;

  std::thread watchdog;
  std::atomic<bool> stop_watchdog{false};
  std::atomic<int> inflight{0};
  std::atomic<double> watchdog_grace_s{2.0};
};

Server::Server(DaemonConfig config)
    : config_(std::move(config)),
      engine_(config_.engine),
      impl_(std::make_unique<Impl>()) {
  PERFORMA_EXPECTS(!config_.socket_path.empty(),
                   "Server: socket_path is required");
  PERFORMA_EXPECTS(config_.workers >= 1, "Server: workers must be >= 1");
  PERFORMA_EXPECTS(config_.queue_capacity >= 1,
                   "Server: queue_capacity must be >= 1");
  impl_->watchdog_grace_s.store(config_.watchdog_grace_s);
}

Server::~Server() {
  if (g_signal_server.load() == this) g_signal_server.store(nullptr);
}

void Server::install_signal_handlers() {
  g_signal_server.store(this);
  struct ::sigaction sa {};
  sa.sa_handler = on_terminate_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = on_hup_signal;
  ::sigaction(SIGHUP, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

bool Server::wait_ready(double timeout_s) const {
  const Clock::time_point until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  while (Clock::now() < until) {
    if (ready_.load()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return ready_.load();
}

namespace {

int open_unix_listener(const std::string& path) {
  PERFORMA_EXPECTS(path.size() < sizeof(sockaddr_un{}.sun_path),
                   "Server: socket path too long: '" + path + "'");
  // Non-blocking listener: the IO loop accepts in a drain loop after
  // POLLIN, which must end with EAGAIN rather than a blocking accept.
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    throw NumericalError(std::string("Server: socket(AF_UNIX): ") +
                         std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale socket from a previous (killed) daemon
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw NumericalError("Server: cannot listen on '" + path + "': " + why);
  }
  return fd;
}

int open_tcp_listener(int port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    throw NumericalError(std::string("Server: socket(AF_INET): ") +
                         std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw NumericalError("Server: cannot listen on 127.0.0.1:" +
                         std::to_string(port) + ": " + why);
  }
  return fd;
}

}  // namespace

int Server::run() {
  PERFORMA_SPAN("daemon.run");

  const JournalLoad recovered = engine_.rehydrate();
  if (recovered.records > 0 || recovered.dropped_records > 0) {
    PERFORMA_LOG(kInfo, "daemon.journal_rehydrated")
        .kv("entries", static_cast<std::uint64_t>(recovered.entries.size()))
        .kv("records", static_cast<std::uint64_t>(recovered.records))
        .kv("dropped", static_cast<std::uint64_t>(recovered.dropped_records));
  }

  impl_->unix_fd = open_unix_listener(config_.socket_path);
  if (config_.tcp_port > 0) {
    impl_->tcp_fd = open_tcp_listener(config_.tcp_port);
  }

  {
    std::lock_guard<std::mutex> lock(impl_->slots_mutex);
    for (unsigned i = 0; i < config_.workers; ++i) {
      auto slot = std::make_unique<WorkerSlot>();
      WorkerSlot* raw = slot.get();
      slot->thread = std::thread([this, raw] { worker_loop_for(raw); });
      impl_->slots.push_back(std::move(slot));
    }
  }
  impl_->watchdog = std::thread([this] { watchdog_loop(); });

  ready_.store(true);
  io_loop();
  ready_.store(false);

  // Wind-down: stop the pool (the queue is already drained), the
  // watchdog, and persist a compacted journal. Abandoned workers are
  // joined too -- a truly wedged thread blocks exit here, and the
  // orchestrator's escalation to SIGKILL is exactly the crash the
  // journal is designed to absorb.
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->stop_workers = true;
  }
  impl_->queue_cv.notify_all();
  impl_->stop_watchdog.store(true);
  if (impl_->watchdog.joinable()) impl_->watchdog.join();
  {
    std::lock_guard<std::mutex> lock(impl_->slots_mutex);
    for (auto& slot : impl_->slots) {
      if (slot->thread.joinable()) slot->thread.join();
    }
  }
  for (auto& [fd, conn] : impl_->connections) {
    conn->open.store(false);
    ::close(fd);
  }
  impl_->connections.clear();
  if (impl_->unix_fd >= 0) ::close(impl_->unix_fd);
  if (impl_->tcp_fd >= 0) ::close(impl_->tcp_fd);
  ::unlink(config_.socket_path.c_str());
  try {
    engine_.compact_journal();
  } catch (const std::exception& e) {
    PERFORMA_LOG(kError, "daemon.compact_failed").kv("error", e.what());
  }
  PERFORMA_LOG(kInfo, "daemon.drained");
  return 0;
}

void Server::io_loop() {
  static obs::Gauge& conn_gauge = obs::gauge("daemon.connections");
  std::vector<pollfd> fds;

  while (true) {
    if (reload_.exchange(false)) apply_reload();

    if (shutdown_.load() && !draining_.load()) {
      draining_.store(true);
      if (impl_->unix_fd >= 0) {
        ::close(impl_->unix_fd);
        impl_->unix_fd = -1;
      }
      if (impl_->tcp_fd >= 0) {
        ::close(impl_->tcp_fd);
        impl_->tcp_fd = -1;
      }
    }
    if (draining_.load()) {
      std::unique_lock<std::mutex> lock(impl_->queue_mutex);
      const bool queue_empty = impl_->queue.empty();
      lock.unlock();
      if (queue_empty && impl_->inflight.load() == 0) break;
    }

    fds.clear();
    if (impl_->unix_fd >= 0) fds.push_back({impl_->unix_fd, POLLIN, 0});
    if (impl_->tcp_fd >= 0) fds.push_back({impl_->tcp_fd, POLLIN, 0});
    const std::size_t first_conn = fds.size();
    for (const auto& [fd, conn] : impl_->connections) {
      fds.push_back({fd, POLLIN, 0});
    }

    const int nready = ::poll(fds.data(), fds.size(), 100);
    if (nready < 0 && errno != EINTR) break;
    if (nready <= 0) continue;

    // Accept on ready listeners.
    for (std::size_t i = 0; i < first_conn; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      while (true) {
        const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
        if (cfd < 0) break;
        auto conn = std::make_shared<Connection>();
        conn->fd = cfd;
        impl_->connections.emplace(cfd, std::move(conn));
      }
    }
    conn_gauge.set(static_cast<double>(impl_->connections.size()));

    // Read ready connections.
    std::vector<int> dead;
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      const auto it = impl_->connections.find(fds[i].fd);
      if (it == impl_->connections.end()) continue;
      const std::shared_ptr<Connection>& conn = it->second;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        dead.push_back(fds[i].fd);
        continue;
      }
      if ((fds[i].revents & POLLIN) == 0) {
        if (!conn->open.load()) dead.push_back(fds[i].fd);
        continue;
      }
      char buf[65536];
      const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        dead.push_back(fds[i].fd);
        continue;
      }
      conn->buffer.append(buf, static_cast<std::size_t>(n));
      if (conn->buffer.size() > (std::size_t{1} << 20)) {
        conn->send_line(simple_response("", "", "", false, "parse-error",
                                        "request line exceeds 1 MiB"));
        dead.push_back(fds[i].fd);
        continue;
      }
      std::size_t start = 0;
      while (true) {
        const std::size_t nl = conn->buffer.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = conn->buffer.substr(start, nl - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        start = nl + 1;
        if (!line.empty()) dispatch_line(conn, line);
      }
      conn->buffer.erase(0, start);
      if (!conn->open.load()) dead.push_back(fds[i].fd);
    }
    for (int fd : dead) {
      const auto it = impl_->connections.find(fd);
      if (it == impl_->connections.end()) continue;
      it->second->open.store(false);
      ::close(fd);
      impl_->connections.erase(it);
    }
  }
}

void Server::dispatch_line(const std::shared_ptr<Connection>& conn,
                           const std::string& line) {
  static obs::Counter& requests = obs::counter("daemon.requests");
  static obs::Counter& shed = obs::counter("daemon.queue.shed");
  static obs::Counter& scrapes = obs::counter("daemon.scrapes");
  static obs::Gauge& depth = obs::gauge("daemon.queue.depth");
  if (!conn->open.load()) return;  // trailing HTTP header lines

  // HTTP-ish plane: a Prometheus scraper speaks `GET /metrics` at the
  // TCP listener. One minimal HTTP/1.0 exchange per connection -- the
  // exposition is rendered on the IO thread (snapshot + string build,
  // no solver work) and the connection closes, exactly the lifecycle a
  // scraper expects. Anything else GET-shaped gets a 404.
  if (line.rfind("GET ", 0) == 0) {
    const std::size_t path_end = line.find(' ', 4);
    const std::string target =
        line.substr(4, path_end == std::string::npos ? std::string::npos
                                                     : path_end - 4);
    std::string body;
    const char* status = "404 Not Found";
    if (target == "/metrics") {
      scrapes.add(1);
      body = obs::prometheus_metrics();
      status = "200 OK";
    } else {
      body = "performad: unknown path " + target + "\n";
    }
    std::string reply = "HTTP/1.0 ";
    reply += status;
    reply +=
        "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
        "\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    reply += body;
    conn->send_raw(reply);
    conn->open.store(false);  // IO loop reaps the fd after this batch
    return;
  }

  requests.add(1);
  // Query identity starts here: every reply this line provokes --
  // including parse errors and sheds -- carries a fresh qid that
  // matching log lines, spans and flight records also carry.
  const std::string qid = obs::mint_query_id();

  JsonObject body;
  std::string parse_error;
  if (!parse_json_object(line, body, parse_error)) {
    conn->send_line(simple_response("", "", qid, false, "parse-error",
                                    parse_error));
    return;
  }
  const std::string id = body.string("id", "");
  const std::string op = body.string("op", "");

  // Liveness plane: answered on the IO thread so probes keep working
  // while every worker is wedged or the queue is full.
  if (op == "healthz") {
    conn->send_line(simple_response(id, op, qid, true, "ok"));
    return;
  }
  if (op == "readyz") {
    const bool ok = ready_.load() && !draining_.load();
    conn->send_line(simple_response(id, op, qid, ok, ok ? "ok" : "not-ready"));
    return;
  }
  if (op == "reload") {
    request_reload();
    conn->send_line(simple_response(id, op, qid, true, "ok"));
    return;
  }
  if (op == "shutdown") {
    conn->send_line(simple_response(id, op, qid, true, "ok"));
    request_shutdown();
    return;
  }

  if (draining_.load()) {
    shed.add(1);
    conn->send_line(simple_response(id, op, qid, false, "overloaded",
                                    "daemon is draining"));
    return;
  }

  auto request = std::make_shared<Request>();
  request->conn = conn;
  request->body = std::move(body);
  request->id = id;
  request->op = op;
  request->qid = qid;
  double deadline_s = config_.default_deadline_s;
  const JsonValue* dl = request->body.find("deadline_ms");
  if (dl != nullptr && dl->kind == JsonValue::Kind::kNumber) {
    deadline_s = dl->number / 1e3;  // <= 0 means "already expired"
  }
  deadline_s = std::min(deadline_s, config_.max_deadline_s);
  request->deadline = obs::Deadline::after_seconds(deadline_s);
  request->enqueued_at = Clock::now();

  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    if (impl_->queue.size() >= config_.queue_capacity) {
      shed.add(1);
      PERFORMA_LOG(kWarn, "daemon.overloaded")
          .kv("qid", qid)
          .kv("op", op)
          .kv("queue_capacity",
              static_cast<std::uint64_t>(config_.queue_capacity));
      conn->send_line(simple_response(
          id, op, qid, false, "overloaded",
          "admission queue full (" + std::to_string(config_.queue_capacity) +
              " waiting); retry with backoff"));
      return;
    }
    impl_->queue.push_back(std::move(request));
    depth.set(static_cast<double>(impl_->queue.size()));
  }
  impl_->queue_cv.notify_one();
}

void Server::worker_loop_for(WorkerSlot* slot) {
  static obs::Gauge& depth = obs::gauge("daemon.queue.depth");
  static obs::Gauge& inflight_gauge = obs::gauge("daemon.inflight");
  while (true) {
    std::shared_ptr<Request> request;
    {
      std::unique_lock<std::mutex> lock(impl_->queue_mutex);
      impl_->queue_cv.wait(lock, [this] {
        return impl_->stop_workers || !impl_->queue.empty();
      });
      if (impl_->queue.empty()) {
        if (impl_->stop_workers) return;
        continue;
      }
      request = std::move(impl_->queue.front());
      impl_->queue.pop_front();
      depth.set(static_cast<double>(impl_->queue.size()));
    }
    impl_->inflight.fetch_add(1);
    inflight_gauge.set(static_cast<double>(impl_->inflight.load()));
    {
      std::lock_guard<std::mutex> lock(slot->mutex);
      slot->current = request;
      slot->started_at = Clock::now();
    }
    slot->busy.store(true);

    handle_request(request, slot);

    slot->busy.store(false);
    {
      std::lock_guard<std::mutex> lock(slot->mutex);
      slot->current.reset();
    }
    if (slot->retired.load()) return;  // a replacement already runs
  }
}

void Server::handle_request(const std::shared_ptr<Request>& request,
                            WorkerSlot* slot) {
  static obs::Histogram& latency = obs::histogram("daemon.request.seconds");
  static obs::Gauge& inflight_gauge = obs::gauge("daemon.inflight");
  (void)slot;

  std::string response;
  try {
    // The qid scope makes every log line, span and SolveReport produced
    // by this solve carry the request's query id; the deadline scope
    // bounds the work.
    obs::QueryIdScope qid_scope(request->qid);
    obs::DeadlineScope scope(request->deadline);
    response = engine_.handle(request->body);
  } catch (const std::exception& e) {
    PERFORMA_LOG(kError, "daemon.request_failed")
        .kv("qid", request->qid)
        .kv("op", request->op)
        .kv("error", e.what());
    response = simple_response(request->id, request->op, request->qid, false,
                               "solver-failure", e.what());
  }

  if (!request->completed.exchange(true)) {
    request->conn->send_line(response);
    latency.record(seconds_since(request->enqueued_at));
    impl_->inflight.fetch_sub(1);
    inflight_gauge.set(static_cast<double>(impl_->inflight.load()));
  }
}

void Server::watchdog_loop() {
  static obs::Counter& cancelled = obs::counter("daemon.watchdog.cancelled");
  static obs::Counter& abandoned = obs::counter("daemon.watchdog.abandoned");
  static obs::Gauge& inflight_gauge = obs::gauge("daemon.inflight");

  while (!impl_->stop_watchdog.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double grace = impl_->watchdog_grace_s.load();

    std::vector<WorkerSlot*> slots;
    {
      std::lock_guard<std::mutex> lock(impl_->slots_mutex);
      slots.reserve(impl_->slots.size());
      for (auto& s : impl_->slots) slots.push_back(s.get());
    }
    for (WorkerSlot* slot : slots) {
      if (!slot->busy.load() || slot->retired.load()) continue;
      std::shared_ptr<Request> request;
      {
        std::lock_guard<std::mutex> lock(slot->mutex);
        request = slot->current;
      }
      if (!request || request->completed.load()) continue;

      // Stage 1: cooperative kick once the deadline is a full grace
      // period past due. cancel() additionally covers code that polls
      // only the flag.
      if (!request->watchdog_kicked) {
        if (request->deadline.remaining_seconds() > -grace) continue;
        request->deadline.cancel();
        request->watchdog_kicked = true;
        request->kicked_at = Clock::now();
        cancelled.add(1);
        PERFORMA_LOG(kWarn, "daemon.watchdog_cancelled")
            .kv("qid", request->qid)
            .kv("op", request->op)
            .kv("grace_s", grace);
        continue;
      }
      if (seconds_since(request->kicked_at) < grace) continue;

      // Stage 2: the worker ignored the deadline for a full extra
      // grace period -- abandon it. The client gets its error now, a
      // fresh worker restores pool capacity, and the stuck thread
      // exits quietly whenever it finally returns.
      if (!request->completed.exchange(true)) {
        request->conn->send_line(simple_response(
            request->id, request->op, request->qid, false,
            "deadline-exceeded",
            "watchdog: solve ignored its deadline; worker abandoned"));
        impl_->inflight.fetch_sub(1);
        inflight_gauge.set(static_cast<double>(impl_->inflight.load()));
      }
      slot->retired.store(true);
      abandoned.add(1);
      PERFORMA_LOG(kError, "daemon.watchdog_abandoned")
          .kv("qid", request->qid)
          .kv("op", request->op)
          .kv("grace_s", grace);
      {
        std::lock_guard<std::mutex> lock(impl_->slots_mutex);
        auto fresh = std::make_unique<WorkerSlot>();
        WorkerSlot* raw = fresh.get();
        fresh->thread = std::thread([this, raw] { worker_loop_for(raw); });
        impl_->slots.push_back(std::move(fresh));
      }
    }
  }
}

void Server::apply_reload() {
  static obs::Counter& reloads = obs::counter("daemon.reloads");
  reloads.add(1);
  if (config_.config_path.empty()) {
    PERFORMA_LOG(kWarn, "daemon.reload_skipped")
        .kv("reason", "SIGHUP received but no --config file to reload");
    return;
  }
  DaemonConfig next = config_;
  std::string error;
  if (!parse_config_file(config_.config_path, next, error)) {
    PERFORMA_LOG(kError, "daemon.reload_rejected").kv("error", error);
    return;
  }
  config_.default_deadline_s = next.default_deadline_s;
  config_.max_deadline_s = next.max_deadline_s;
  config_.watchdog_grace_s = next.watchdog_grace_s;
  impl_->watchdog_grace_s.store(next.watchdog_grace_s);
  if (next.engine.cache_budget_bytes != config_.engine.cache_budget_bytes) {
    config_.engine.cache_budget_bytes = next.engine.cache_budget_bytes;
    engine_.set_cache_budget(next.engine.cache_budget_bytes);
  }
  if (next.engine.slow_query_seconds != config_.engine.slow_query_seconds) {
    config_.engine.slow_query_seconds = next.engine.slow_query_seconds;
    engine_.set_slow_query_seconds(next.engine.slow_query_seconds);
  }
  PERFORMA_LOG(kInfo, "daemon.config_reloaded")
      .kv("cache_budget_bytes",
          static_cast<std::uint64_t>(config_.engine.cache_budget_bytes))
      .kv("default_deadline_s", config_.default_deadline_s)
      .kv("watchdog_grace_s", config_.watchdog_grace_s)
      .kv("slow_query_s", config_.engine.slow_query_seconds);
}

}  // namespace performa::daemon
