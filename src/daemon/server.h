// performad's socket server: admission control, deadline propagation,
// and the watchdog, wrapped around a QueryEngine.
//
// Transport is newline-delimited JSON over a Unix domain socket (and
// optionally loopback TCP). One IO thread owns accept/read/parse and
// the *shed* path; a fixed pool of worker threads owns the solve path.
// The IO thread never blocks on a solve, so liveness probes (healthz /
// readyz) are answered even while every worker is busy -- exactly when
// an orchestrator most needs them to work.
//
// Admission control is a bounded queue between the two: when the queue
// is at capacity, new requests are answered immediately with
// `outcome: "overloaded"` rather than being buffered into unbounded
// latency. In-flight work is bounded by the worker count; there is no
// hidden concurrency.
//
// Every admitted request runs under a cooperative obs::DeadlineScope
// derived from its `deadline_ms` field (capped by the server's
// maximum). The watchdog escalates on requests that blow through it:
// at deadline + grace the request's token is cancelled (a cooperative
// kick for paths that poll cancellation but carry no wall clock); at
// deadline + 2*grace the worker is *abandoned* -- the client gets an
// error response right away, a replacement worker is spawned so pool
// capacity recovers, and the stuck thread is left to finish in the
// background and exit quietly. That is the thread-pool analogue of
// "kill and respawn the stuck worker": the client-facing contract
// (bounded response time, restored capacity) is identical.
//
// Signals: SIGTERM/SIGINT drain (stop accepting, finish the queue,
// compact the journal, exit); SIGHUP reloads the config file (cache
// budget, default deadline) without dropping connections.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "daemon/query.h"

namespace performa::daemon {

struct DaemonConfig {
  std::string socket_path;      ///< Unix socket path (required)
  int tcp_port = 0;             ///< optional loopback TCP listener, 0 = off
  unsigned workers = 2;         ///< solve worker threads (>= 1)
  std::size_t queue_capacity = 64;  ///< admission queue bound
  double default_deadline_s = 30.0; ///< applied when a request has none
  double max_deadline_s = 300.0;    ///< cap on client-supplied deadlines
  double watchdog_grace_s = 2.0;    ///< escalation step past the deadline
  std::string config_path;      ///< key=value file re-read on SIGHUP
  EngineConfig engine;
};

/// Parse a `key = value` config file (one pair per line, '#' comments)
/// into overrides on `config`. Recognized keys: cache_budget_bytes,
/// default_deadline_s, max_deadline_s, watchdog_grace_s, slow_query_s.
/// Unknown keys are reported in `error` (first offender) and the file
/// is rejected wholesale -- a typo must not silently half-apply.
bool parse_config_file(const std::string& path, DaemonConfig& config,
                       std::string& error);

class Server {
 public:
  explicit Server(DaemonConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Rehydrate the cache, open the listeners, run until shutdown.
  /// Returns a process exit code (0 on clean drain).
  int run();

  /// Ask the server to drain and exit (signal-safe flag; also callable
  /// from tests around a run() thread).
  void request_shutdown() noexcept { shutdown_.store(true); }

  /// Ask the server to re-read its config file (SIGHUP path).
  void request_reload() noexcept { reload_.store(true); }

  /// True once listeners are open and the journal is rehydrated.
  bool ready() const noexcept { return ready_.load(); }

  /// Spin until ready() or `timeout_s` elapses; false on timeout.
  bool wait_ready(double timeout_s) const;

  QueryEngine& engine() noexcept { return engine_; }
  const DaemonConfig& config() const noexcept { return config_; }

  /// Install SIGTERM/SIGINT -> shutdown, SIGHUP -> reload handlers
  /// routing to this server instance (one instance per process).
  void install_signal_handlers();

 private:
  struct Connection;
  struct Request;
  struct WorkerSlot;
  struct Impl;

  void io_loop();
  void worker_loop_for(WorkerSlot* slot);
  void watchdog_loop();
  void handle_request(const std::shared_ptr<Request>& request,
                      WorkerSlot* slot);
  void dispatch_line(const std::shared_ptr<Connection>& conn,
                     const std::string& line);
  void apply_reload();

  DaemonConfig config_;
  QueryEngine engine_;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> reload_{false};
  std::atomic<bool> ready_{false};
  std::atomic<bool> draining_{false};
};

}  // namespace performa::daemon
