// performa-query: a small client for performad.
//
// Sends one request per input line (stdin, or a single request built
// from --op and passthrough JSON via --json) to the daemon's Unix
// socket, prints one response line per request, and exits non-zero
// when any response carries ok:false.
//
//   performa-query --socket /tmp/performad.sock --json '{"op":"ping"}'
//   printf '%s\n' '{"op":"mean","rho":0.7}' | performa-query
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--deadline-ms N] [--json LINE]\n"
               "\n"
               "  --socket PATH    daemon socket (default /tmp/performad.sock)\n"
               "  --deadline-ms N  inject a deadline_ms field into requests\n"
               "                   that lack one\n"
               "  --json LINE      send this one request instead of stdin\n",
               argv0);
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly one '\n'-terminated response line.
bool recv_line(int fd, std::string& carry, std::string& line) {
  while (true) {
    const std::size_t nl = carry.find('\n');
    if (nl != std::string::npos) {
      line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      return true;
    }
    char buf[8192];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    carry.append(buf, static_cast<std::size_t>(n));
  }
}

/// Splice `,"deadline_ms":N` into a request that lacks the field.
std::string with_deadline(const std::string& line, double deadline_ms) {
  if (line.find("\"deadline_ms\"") != std::string::npos) return line;
  const std::size_t brace = line.rfind('}');
  if (brace == std::string::npos) return line;
  char field[64];
  std::snprintf(field, sizeof field, "%s\"deadline_ms\":%g",
                line.find(':') == std::string::npos ? "" : ",", deadline_ms);
  std::string out = line;
  out.insert(brace, field);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/performad.sock";
  std::string one_shot;
  double deadline_ms = 0.0;
  bool have_deadline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      socket_path = argv[++i];
    } else if (arg == "--json" && has_value) {
      one_shot = argv[++i];
    } else if (arg == "--deadline-ms" && has_value) {
      char* end = nullptr;
      deadline_ms = std::strtod(argv[++i], &end);
      have_deadline = end != argv[i] && *end == '\0';
      if (!have_deadline) {
        std::fprintf(stderr, "performa-query: bad --deadline-ms\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "performa-query: bad argument '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<std::string> requests;
  if (!one_shot.empty()) {
    requests.push_back(one_shot);
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) requests.push_back(line);
    }
  }
  if (requests.empty()) {
    std::fprintf(stderr, "performa-query: nothing to send\n");
    return 2;
  }

  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "performa-query: cannot connect to '%s': %s\n",
                 socket_path.c_str(), std::strerror(errno));
    return 1;
  }

  int rc = 0;
  std::string carry;
  for (const std::string& request : requests) {
    std::string line =
        have_deadline ? with_deadline(request, deadline_ms) : request;
    line += '\n';
    if (!send_all(fd, line)) {
      std::fprintf(stderr, "performa-query: send failed\n");
      rc = 1;
      break;
    }
    std::string response;
    if (!recv_line(fd, carry, response)) {
      std::fprintf(stderr, "performa-query: daemon closed the connection\n");
      rc = 1;
      break;
    }
    std::printf("%s\n", response.c_str());
    if (response.find("\"ok\":false") != std::string::npos) rc = 3;
  }
  ::close(fd);
  return rc;
}
