#include "daemon/cache.h"

#include "obs/metrics.h"

namespace performa::daemon {

std::size_t solution_footprint_bytes(const CachedSolution& entry,
                                     const std::string& key) {
  if (!entry.solution) return key.size() + 128;
  const std::size_t dim = entry.solution->phase_dim();
  // r_ + i_minus_r_inv_ (dim^2 doubles each), pi0_ + pi1_ (dim doubles
  // each), plus list/map node and key overhead.
  return 2 * dim * dim * sizeof(double) + 2 * dim * sizeof(double) +
         key.size() + 256;
}

namespace {

obs::Gauge& cache_bytes_gauge() {
  static obs::Gauge& g = obs::gauge("daemon.cache.bytes");
  return g;
}

obs::Gauge& cache_entries_gauge() {
  static obs::Gauge& g = obs::gauge("daemon.cache.entries");
  return g;
}

}  // namespace

SolutionCache::SolutionCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

bool SolutionCache::get(const std::string& key, CachedSolution& out,
                        bool count_stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (count_stats) {
      ++stats_.misses;
      static obs::Counter& misses = obs::counter("daemon.cache.miss");
      misses.add(1);
    }
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  out = it->second->entry;
  if (count_stats) {
    ++stats_.hits;
    static obs::Counter& hits = obs::counter("daemon.cache.hit");
    hits.add(1);
  }
  return true;
}

void SolutionCache::put(const std::string& key, CachedSolution entry) {
  const std::size_t footprint = solution_footprint_bytes(entry, key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->footprint;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Node{key, std::move(entry), footprint});
  index_[key] = lru_.begin();
  bytes_ += footprint;
  ++stats_.insertions;
  evict_to_budget_locked();
  cache_bytes_gauge().set(static_cast<double>(bytes_));
  cache_entries_gauge().set(static_cast<double>(lru_.size()));
}

void SolutionCache::note_stale_serve() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stale_serves;
  static obs::Counter& stale = obs::counter("daemon.cache.stale_serves");
  stale.add(1);
}

void SolutionCache::set_budget_bytes(std::size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget_bytes;
  evict_to_budget_locked();
  cache_bytes_gauge().set(static_cast<double>(bytes_));
  cache_entries_gauge().set(static_cast<double>(lru_.size()));
}

CacheStats SolutionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.budget_bytes = budget_bytes_;
  return s;
}

std::vector<std::pair<std::string, CachedSolution>> SolutionCache::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, CachedSolution>> out;
  out.reserve(lru_.size());
  for (const Node& n : lru_) out.emplace_back(n.key, n.entry);
  return out;
}

void SolutionCache::evict_to_budget_locked() {
  // Never evict the sole entry: a single over-budget solution is more
  // useful resident than recomputed on every query.
  while (bytes_ > budget_bytes_ && lru_.size() > 1) {
    const Node& victim = lru_.back();
    bytes_ -= victim.footprint;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    static obs::Counter& evictions = obs::counter("daemon.cache.evictions");
    evictions.add(1);
  }
}

}  // namespace performa::daemon
