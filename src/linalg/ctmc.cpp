#include "linalg/ctmc.h"

#include <cmath>

namespace performa::linalg {

bool is_generator(const Matrix& q, double tol) noexcept {
  if (!q.is_square() || q.empty()) return false;
  for (std::size_t r = 0; r < q.rows(); ++r) {
    double row_sum = 0.0;
    double scale = 0.0;
    for (std::size_t c = 0; c < q.cols(); ++c) {
      const double x = q(r, c);
      if (r != c && x < -tol) return false;
      row_sum += x;
      scale = std::max(scale, std::abs(x));
    }
    if (std::abs(row_sum) > tol * std::max(1.0, scale)) return false;
  }
  return true;
}

void validate_generator(const Matrix& q, double tol) {
  PERFORMA_EXPECTS(q.is_square() && !q.empty(),
                   "generator must be square and nonempty");
  for (std::size_t r = 0; r < q.rows(); ++r) {
    double row_sum = 0.0;
    double scale = 0.0;
    for (std::size_t c = 0; c < q.cols(); ++c) {
      const double x = q(r, c);
      PERFORMA_EXPECTS(r == c || x >= -tol,
                       "generator has a negative off-diagonal entry");
      row_sum += x;
      scale = std::max(scale, std::abs(x));
    }
    PERFORMA_EXPECTS(std::abs(row_sum) <= tol * std::max(1.0, scale),
                     "generator row does not sum to zero");
  }
}

bool is_stochastic(const Matrix& p, double tol) noexcept {
  if (!p.is_square() || p.empty()) return false;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      const double x = p(r, c);
      if (x < -tol || x > 1.0 + tol) return false;
      row_sum += x;
    }
    if (std::abs(row_sum - 1.0) > tol) return false;
  }
  return true;
}

Vector stationary_distribution(const Matrix& q) {
  PERFORMA_EXPECTS(q.is_square() && !q.empty(),
                   "stationary_distribution: generator must be square");
  const std::size_t n = q.rows();
  if (n == 1) return Vector{1.0};

  // GTH elimination works on the off-diagonal rates only; diagonals are
  // implied by row sums, which is what removes the cancellation.
  Matrix a = q;

  // Eliminate states n-1 down to 1.
  for (std::size_t k = n - 1; k >= 1; --k) {
    double out_rate = 0.0;  // total rate out of state k into states < k
    for (std::size_t c = 0; c < k; ++c) out_rate += a(k, c);
    if (out_rate <= 0.0) {
      throw NumericalError(
          "stationary_distribution: generator is reducible (state has no "
          "path to lower-numbered states)");
    }
    for (std::size_t i = 0; i < k; ++i) {
      const double f = a(i, k) / out_rate;
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        a(i, j) += f * a(k, j);
      }
    }
  }

  // Back-substitution: unnormalized pi with pi_0 = 1.
  Vector pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double out_rate = 0.0;
    for (std::size_t c = 0; c < k; ++c) out_rate += a(k, c);
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += pi[i] * a(i, k);
    pi[k] = acc / out_rate;
  }

  const double total = sum(pi);
  for (double& x : pi) x /= total;
  return pi;
}

Vector stationary_distribution_dtmc(const Matrix& p) {
  PERFORMA_EXPECTS(p.is_square() && !p.empty(),
                   "stationary_distribution_dtmc: matrix must be square");
  Matrix q = p;
  for (std::size_t i = 0; i < q.rows(); ++i) q(i, i) -= 1.0;
  return stationary_distribution(q);
}

double stationary_reward(const Matrix& q, const Vector& r) {
  const Vector pi = stationary_distribution(q);
  return dot(pi, r);
}

}  // namespace performa::linalg
